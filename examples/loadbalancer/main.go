// Loadbalancer: the Fig 3 / Fig 4 narrative. Against a load-balanced site
// the dual connection test's shared-IPID assumption breaks — prevalidation
// rejects the host — while the SYN test, whose two packets share a flow
// key, measures the same path without trouble.
package main

import (
	"errors"
	"fmt"
	"log"

	"reorder"
)

func main() {
	// A popular site: one published address, four backends behind a
	// transparent per-flow load balancer, each with its own IPID counter.
	net := reorder.NewSimNet(reorder.SimConfig{
		Seed: 7,
		Backends: []reorder.HostProfile{
			reorder.FreeBSD4(), reorder.Linux22(), reorder.Windows2000(), reorder.FreeBSD4(),
		},
		Forward: reorder.PathSpec{SwapProb: 0.08},
	})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 8)

	// The dual connection test validates the IPID stream first and should
	// refuse to produce spurious numbers here.
	_, err := p.DualConnectionTest(reorder.DCTOptions{Samples: 15})
	switch {
	case errors.Is(err, reorder.ErrIPIDUnusable):
		fmt.Println("dual connection test: correctly ruled out (connections landed on different backends)")
	case err == nil:
		fmt.Println("dual connection test: ran (both validation connections happened to share a backend)")
	default:
		log.Fatal(err)
	}

	// The SYN test's two packets differ only in sequence number, so the
	// balancer must deliver both to the same backend.
	res, err := p.SYNTest(reorder.SYNOptions{Samples: 100})
	if err != nil {
		log.Fatal(err)
	}
	f := res.Forward()
	fmt.Printf("syn test: forward reordering %.1f%% over %d valid samples\n", f.Rate()*100, f.Valid())
}
