// Comparetests: run all four techniques against the same path and compare
// their estimates — the sanity check of §IV-B, where the paper validates
// the tests against one another in lieu of Internet ground truth. Also
// demonstrates the data transfer test's blind spot: it cannot see the
// forward path at all.
package main

import (
	"fmt"

	"reorder"
)

func main() {
	const fwdTruth, revTruth = 0.10, 0.04
	net := reorder.NewSimNet(reorder.SimConfig{
		Seed:    21,
		Server:  reorder.FreeBSD4(),
		Forward: reorder.PathSpec{SwapProb: fwdTruth},
		Reverse: reorder.PathSpec{SwapProb: revTruth},
	})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 22)

	fmt.Printf("configured truth: forward %.0f%%, reverse %.0f%%\n\n", fwdTruth*100, revTruth*100)
	fmt.Printf("%-10s %9s %9s\n", "test", "forward", "reverse")

	row := func(name string, res *reorder.Result, err error) {
		if err != nil {
			fmt.Printf("%-10s error: %v\n", name, err)
			return
		}
		f, r := res.Forward(), res.Reverse()
		fwd := "n/a"
		if f.Valid() > 0 {
			fwd = fmt.Sprintf("%8.1f%%", f.Rate()*100)
		}
		rev := "n/a"
		if r.Valid() > 0 {
			rev = fmt.Sprintf("%8.1f%%", r.Rate()*100)
		}
		fmt.Printf("%-10s %9s %9s\n", name, fwd, rev)
	}

	res, err := p.SingleConnectionTest(reorder.SCTOptions{Samples: 300, Reversed: true})
	row("single", res, err)
	res, err = p.DualConnectionTest(reorder.DCTOptions{Samples: 300})
	row("dual", res, err)
	res, err = p.SYNTest(reorder.SYNOptions{Samples: 300})
	row("syn", res, err)
	res, err = p.DataTransferTest(reorder.TransferOptions{})
	row("transfer", res, err)

	fmt.Println("\nThe three active tests agree on both directions; the transfer test")
	fmt.Println("sees only the reverse path, as the paper's comparison table shows.")
}
