// Quickstart: measure forward and reverse reordering on one path with the
// single connection test, using only the public reorder package.
package main

import (
	"fmt"
	"log"

	"reorder"
)

func main() {
	// A simulated path that swaps adjacent packets 5% of the time on the
	// way to the server and 2% of the time on the way back.
	net := reorder.NewSimNet(reorder.SimConfig{
		Seed:    1,
		Server:  reorder.FreeBSD4(),
		Forward: reorder.PathSpec{SwapProb: 0.05},
		Reverse: reorder.PathSpec{SwapProb: 0.02},
	})

	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 2)
	res, err := p.SingleConnectionTest(reorder.SCTOptions{Samples: 100, Reversed: true})
	if err != nil {
		log.Fatal(err)
	}

	f, r := res.Forward(), res.Reverse()
	fmt.Printf("measured %d samples against %s\n", len(res.Samples), res.Target)
	fmt.Printf("forward path: %.1f%% reordered (%d/%d valid)\n", f.Rate()*100, f.Reordered, f.Valid())
	fmt.Printf("reverse path: %.1f%% reordered (%d/%d valid)\n", r.Rate()*100, r.Reordered, r.Valid())
}
