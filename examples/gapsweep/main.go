// Gapsweep: the §IV-C time-domain distribution. Reordering on a striped
// trunk comes from queue imbalance between parallel links, so the
// probability that a packet pair is exchanged falls off as the pair is
// spread apart in time. This example measures the full distribution with
// the public GapSweep API and then answers the question the paper argues
// only a distribution (not a scalar rate) can: how much pacing makes this
// path's reordering irrelevant?
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"reorder"
)

func main() {
	net := reorder.NewSimNet(reorder.SimConfig{
		Seed:   42,
		Server: reorder.FreeBSD4(),
		Forward: reorder.PathSpec{
			LinkRate: 1_000_000_000,
			Trunk: &reorder.TrunkConfig{
				FanOut:         2,
				RateBps:        1_000_000_000,
				BurstProb:      0.35,
				MeanBurstBytes: 2500,
			},
		},
	})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 43)

	dist, err := p.GapSweep(reorder.GapSweepOptions{
		Gaps: []time.Duration{
			0, 10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
			100 * time.Microsecond, 150 * time.Microsecond, 250 * time.Microsecond,
			500 * time.Microsecond,
		},
		SamplesPerGap: 400,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("gap        reordering")
	for _, pt := range dist.Points {
		fmt.Printf("%-9s %8.2f%% |%s\n", pt.Gap, pt.Forward*100, strings.Repeat("#", int(pt.Forward*300)))
	}

	if gap, ok := dist.DecayGap(0.01); ok {
		fmt.Printf("\npacing packets %v apart reduces this path's reordering below 1%%.\n", gap)
	}
	fmt.Println("Back-to-back minimum-sized packets see the most reordering; a protocol")
	fmt.Println("whose packets are serialization-spread (bulk data) sees almost none —")
	fmt.Println("which is why the data transfer test underestimates (§IV-B/C).")
}
