// Wireless: reordering from layer-2 retransmission, one of the causes the
// paper's conclusion enumerates. An out-of-order ARQ link recovers
// corrupted frames ~2ms late while later frames pass — producing *deep*
// reordering (large extents), unlike the adjacent exchanges of queue
// imbalance. The burst test recovers the full arrival permutation via
// IPIDs, and the sequence metrics translate it into protocol impact:
// how many events would a TCP sender's fast retransmit misread as loss?
package main

import (
	"fmt"
	"log"
	"time"

	"reorder"
)

func main() {
	net := reorder.NewSimNet(reorder.SimConfig{
		Seed:   3,
		Server: reorder.FreeBSD4(),
		Forward: reorder.PathSpec{
			LinkRate: 1_000_000_000,
			ARQ: &reorder.ARQConfig{
				FrameErrorRate:  0.15,
				RetransmitDelay: 2 * time.Millisecond,
			},
		},
	})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 4)

	res, err := p.BurstTest(reorder.BurstOptions{
		BurstSize: 8,
		Bursts:    50,
		Gap:       100 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	f := res.ForwardAggregate()
	fmt.Printf("sent %d packets in %d trains of %d across a lossy wireless hop\n",
		f.Sent, len(res.Bursts), res.Options.BurstSize)
	fmt.Printf("received: %d   reordered: %d (ratio %.1f%%)\n", f.Received, f.Reordered, f.Ratio()*100)
	fmt.Printf("max reordering extent: %d packets\n", f.MaxExtent())
	for n := 1; n <= f.MaxExtent() && n <= 6; n++ {
		fmt.Printf("  %d-reordered packets: %d\n", n, f.NReordered(n))
	}
	fmt.Printf("\nevents a dupthresh-3 TCP sender would misread as loss: %d\n",
		f.SpuriousFastRetransmits(3))
	fmt.Println("(compare: queue-imbalance reordering is almost all extent-1,")
	fmt.Println(" which never triggers fast retransmit — the distribution, not")
	fmt.Println(" the scalar rate, is what predicts protocol impact)")
}
