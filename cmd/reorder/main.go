// Command reorder runs one reordering measurement against a simulated
// path and prints per-sample verdicts and the summary rates — the
// interactive face of the library, analogous to running the paper's sting
// extension against one host.
//
// Usage:
//
//	reorder -test single -samples 15 -fwd 0.05 -rev 0.02
//	reorder -test dual -gap 50us -trunk
//	reorder -test syn -lb
//	reorder -test transfer -rev 0.1
//	reorder -test ipid -profile linux24
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"reorder/internal/cli"
	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/simnet"
	"reorder/internal/trace"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("reorder", flag.ContinueOnError)
	var (
		test     = fs.String("test", "single", "technique: single, dual, syn, transfer, ipid")
		samples  = fs.Int("samples", 15, "samples per measurement")
		gap      = fs.Duration("gap", 0, "inter-packet gap between sample pairs")
		fwd      = fs.Float64("fwd", 0.05, "forward path swap probability")
		rev      = fs.Float64("rev", 0.02, "reverse path swap probability")
		loss     = fs.Float64("loss", 0, "loss probability on both paths")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		reversed = fs.Bool("reversed", true, "single connection test: reversed send order")
		lb       = fs.Bool("lb", false, "place a load balancer with 4 backends in front of the server")
		trunk    = fs.Bool("trunk", false, "route the forward path over a striped 2-link trunk")
		profile  = fs.String("profile", "freebsd4", "server profile (freebsd4, linux22, linux24, openbsd3, solaris8, win2000, spec, dual-rst)")
		verbose  = fs.Bool("v", false, "print each sample")
		pcapPfx  = fs.String("pcap", "", "write ground-truth captures to <prefix>-{probe-egress,host-ingress,host-egress,probe-ingress}.pcap")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	prof, ok := profileByName(*profile)
	if !ok {
		return cli.Usagef("unknown profile %q", *profile)
	}
	cfg := simnet.Config{
		Seed:    *seed,
		Server:  prof,
		Forward: simnet.PathSpec{SwapProb: *fwd, Loss: *loss},
		Reverse: simnet.PathSpec{SwapProb: *rev, Loss: *loss},
	}
	if *trunk {
		cfg.Forward.Trunk = &netem.TrunkConfig{FanOut: 2, BurstProb: 0.35, MeanBurstBytes: 2500, RateBps: 1_000_000_000}
	}
	if *lb {
		cfg.Backends = []host.Profile{prof, host.FreeBSD4(), host.Linux22(), host.Windows2000()}
	}
	n := simnet.New(cfg)
	p := core.NewProber(n.Probe(), n.ServerAddr(), *seed+1)

	var res *core.Result
	var err error
	switch *test {
	case "single":
		res, err = p.SingleConnectionTest(core.SCTOptions{Samples: *samples, Gap: *gap, Reversed: *reversed})
	case "dual":
		res, err = p.DualConnectionTest(core.DCTOptions{Samples: *samples, Gap: *gap})
	case "syn":
		res, err = p.SYNTest(core.SYNOptions{Samples: *samples, Gap: *gap})
	case "transfer":
		res, err = p.DataTransferTest(core.TransferOptions{})
	case "ipid":
		rep, err := p.ValidateIPID(core.IPIDCheckOptions{Probes: 16})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "IPID prevalidation of %s (%s): usable=%v score=%.2f constant=%v samples=%d\n",
			n.ServerAddr(), n.Hosts[0].IPIDPolicy(), rep.Usable(), rep.Score, rep.Constant, rep.Samples)
		return nil
	default:
		return cli.Usagef("unknown test %q", *test)
	}
	if err != nil {
		return err
	}

	if *verbose {
		for i, s := range res.Samples {
			fmt.Fprintf(stdout, "sample %2d: forward=%-9s reverse=%-9s gap=%s rtt=%s\n", i, s.Forward, s.Reverse, s.Gap, s.RTT)
		}
	}
	if *pcapPfx != "" {
		if err := dumpCaptures(stdout, *pcapPfx, n); err != nil {
			return err
		}
	}
	f, r := res.Forward(), res.Reverse()
	fmt.Fprintf(stdout, "%s test against %s (%s profile)\n", res.Test, res.Target, prof.Name)
	fmt.Fprintf(stdout, "forward: %3d in-order, %3d reordered, %3d discarded -> rate %.4f\n",
		f.InOrder, f.Reordered, f.Discarded, f.Rate())
	fmt.Fprintf(stdout, "reverse: %3d in-order, %3d reordered, %3d discarded -> rate %.4f\n",
		r.InOrder, r.Reordered, r.Discarded, r.Rate())
	fmt.Fprintf(stdout, "mean RTT: %s, virtual time elapsed: %s\n", res.MeanRTT(), n.Loop.Now())
	return nil
}

// dumpCaptures writes the four ground-truth captures as pcap files.
func dumpCaptures(stdout io.Writer, prefix string, n *simnet.Net) error {
	caps := map[string]*trace.Capture{
		"probe-egress":  n.ProbeEgress,
		"host-ingress":  n.HostIngress,
		"host-egress":   n.HostEgress,
		"probe-ingress": n.ProbeIngress,
	}
	for name, c := range caps {
		path := fmt.Sprintf("%s-%s.pcap", prefix, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := c.WritePcap(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d packets)\n", path, c.Len())
	}
	return nil
}

func profileByName(name string) (host.Profile, bool) {
	for _, p := range host.Catalog() {
		if p.Name == name {
			return p, true
		}
	}
	return host.Profile{}, false
}
