// Command validate regenerates E1, the paper's §IV-A controlled
// validation: every technique is run over a dummynet-style swapper at each
// rate combination and its verdicts are scored against trace ground truth.
// The full grid is the paper's 114 runs of 100 samples; -quick runs a
// reduced grid.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"reorder/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grid for a fast smoke run")
	samples := flag.Int("samples", 0, "override samples per run")
	csvPath := flag.String("csv", "", "also write the per-run table as CSV to this path")
	flag.Parse()

	cfg := experiments.DefaultValidation()
	if *quick {
		cfg = experiments.QuickValidation()
	}
	if *samples > 0 {
		cfg.Samples = *samples
	}
	rep := experiments.RunValidation(cfg)
	rep.WriteText(os.Stdout)
	if *csvPath != "" {
		if err := writeCSVFile(*csvPath, rep.WriteCSV); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func writeCSVFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
