// Command validate regenerates E1, the paper's §IV-A controlled
// validation: every technique is run over a dummynet-style swapper at each
// rate combination and its verdicts are scored against trace ground truth.
// The full grid is the paper's 114 runs of 100 samples; -quick runs a
// reduced grid.
package main

import (
	"flag"
	"io"

	"reorder/internal/cli"
	"reorder/internal/experiments"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced grid for a fast smoke run")
	samples := fs.Int("samples", 0, "override samples per run")
	workers := fs.Int("workers", 0, "parallel runs (0 = GOMAXPROCS); the report is identical at any worker count")
	csvPath := fs.String("csv", "", "also write the per-run table as CSV to this path")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	cfg := experiments.DefaultValidation()
	if *quick {
		cfg = experiments.QuickValidation()
	}
	if *samples > 0 {
		cfg.Samples = *samples
	}
	cfg.Workers = *workers
	rep := experiments.RunValidation(cfg)
	rep.WriteText(stdout)
	if *csvPath != "" {
		return cli.WriteCSVFile(*csvPath, rep.WriteCSV)
	}
	return nil
}
