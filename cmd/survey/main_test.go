package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the quick survey through the CLI entry point.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"survey:", "Fig 5 CDF", "paths with some reordering"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunWorkerInvariance checks that surveying concurrently does not
// change the report: the campaign scheduler's hermetic-host guarantee.
func TestRunWorkerInvariance(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run([]string{"-quick", "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-workers", "16"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatal("worker count changed the survey report")
	}
}

// TestRunBadFlag checks flag errors surface instead of exiting.
func TestRunBadFlag(t *testing.T) {
	fsOut := &bytes.Buffer{}
	if err := run([]string{"-definitely-not-a-flag"}, fsOut); err == nil {
		t.Fatal("bad flag accepted")
	}
}
