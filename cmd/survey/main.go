// Command survey regenerates the §IV-B host-survey experiments: the Fig 5
// CDF of per-path reordering rates with the IPID exclusion counts (E2/E6),
// the E4 pairwise technique-agreement table, the Fig 6 time series on a
// load-balanced path (E3), and the E7 prior-art baselines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"reorder/internal/experiments"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "reduced population and rounds")
		timeseries = flag.Bool("timeseries", false, "also run the Fig 6 time series (E3)")
		agreement  = flag.Bool("agreement", false, "also run the technique agreement analysis (E4)")
		baselines  = flag.Bool("baselines", false, "also run the prior-art baselines (E7)")
		coop       = flag.Bool("cooperative", false, "also validate against a cooperative IPPM session (E10)")
		all        = flag.Bool("all", false, "run everything")
		csvPath    = flag.String("csv", "", "also write the Fig 5 CDF as CSV to this path")
	)
	flag.Parse()

	cfg := experiments.DefaultSurvey()
	if *quick {
		cfg = experiments.QuickSurvey()
	}
	survey := experiments.RunSurvey(cfg)
	survey.WriteText(os.Stdout)
	if *csvPath != "" {
		if err := writeCSVFile(*csvPath, survey.WriteCSV); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *agreement || *all {
		fmt.Println()
		experiments.RunAgreement(survey, 0.999).WriteText(os.Stdout)
	}
	if *timeseries || *all {
		fmt.Println()
		tcfg := experiments.DefaultTimeSeries()
		if *quick {
			tcfg = experiments.QuickTimeSeries()
		}
		rep, err := experiments.RunTimeSeries(tcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.WriteText(os.Stdout)
	}
	if *baselines || *all {
		fmt.Println()
		bcfg := experiments.DefaultBaselines()
		if *quick {
			bcfg = experiments.QuickBaselines()
		}
		rep, err := experiments.RunBaselines(bcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.WriteText(os.Stdout)
	}
	if *coop || *all {
		fmt.Println()
		ccfg := experiments.DefaultCooperative()
		if *quick {
			ccfg = experiments.QuickCooperative()
		}
		rep, err := experiments.RunCooperative(ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.WriteText(os.Stdout)
	}
}

func writeCSVFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
