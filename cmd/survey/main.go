// Command survey regenerates the §IV-B host-survey experiments: the Fig 5
// CDF of per-path reordering rates with the IPID exclusion counts (E2/E6),
// the E4 pairwise technique-agreement table, the Fig 6 time series on a
// load-balanced path (E3), and the E7 prior-art baselines. Hosts are
// surveyed concurrently by the campaign scheduler; for arbitrary target
// populations beyond the paper's survey shape, see cmd/campaign.
package main

import (
	"flag"
	"fmt"
	"io"

	"reorder/internal/cli"
	"reorder/internal/experiments"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("survey", flag.ContinueOnError)
	var (
		quick      = fs.Bool("quick", false, "reduced population and rounds")
		workers    = fs.Int("workers", 0, "concurrent survey workers (0 = scheduler default)")
		timeseries = fs.Bool("timeseries", false, "also run the Fig 6 time series (E3)")
		agreement  = fs.Bool("agreement", false, "also run the technique agreement analysis (E4)")
		baselines  = fs.Bool("baselines", false, "also run the prior-art baselines (E7)")
		coop       = fs.Bool("cooperative", false, "also validate against a cooperative IPPM session (E10)")
		all        = fs.Bool("all", false, "run everything")
		csvPath    = fs.String("csv", "", "also write the Fig 5 CDF as CSV to this path")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	cfg := experiments.DefaultSurvey()
	if *quick {
		cfg = experiments.QuickSurvey()
	}
	cfg.Workers = *workers
	survey := experiments.RunSurvey(cfg)
	survey.WriteText(stdout)
	if *csvPath != "" {
		if err := cli.WriteCSVFile(*csvPath, survey.WriteCSV); err != nil {
			return err
		}
	}

	if *agreement || *all {
		fmt.Fprintln(stdout)
		experiments.RunAgreement(survey, 0.999).WriteText(stdout)
	}
	if *timeseries || *all {
		fmt.Fprintln(stdout)
		tcfg := experiments.DefaultTimeSeries()
		if *quick {
			tcfg = experiments.QuickTimeSeries()
		}
		rep, err := experiments.RunTimeSeries(tcfg)
		if err != nil {
			return err
		}
		rep.WriteText(stdout)
	}
	if *baselines || *all {
		fmt.Fprintln(stdout)
		bcfg := experiments.DefaultBaselines()
		if *quick {
			bcfg = experiments.QuickBaselines()
		}
		rep, err := experiments.RunBaselines(bcfg)
		if err != nil {
			return err
		}
		rep.WriteText(stdout)
	}
	if *coop || *all {
		fmt.Fprintln(stdout)
		ccfg := experiments.DefaultCooperative()
		if *quick {
			ccfg = experiments.QuickCooperative()
		}
		rep, err := experiments.RunCooperative(ccfg)
		if err != nil {
			return err
		}
		rep.WriteText(stdout)
	}
	return nil
}
