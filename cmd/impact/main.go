// Command impact regenerates E9 (extension): the protocol-impact sweep
// quantifying the paper's motivation. For each reordering intensity it
// runs a classic Reno bulk transfer and one with an adaptive duplicate-ACK
// threshold (the class of fixes the paper cites), alongside the paper's
// own measurements of the same path — showing that the measured
// reordering-extent distribution predicts the damage.
package main

import (
	"flag"
	"io"

	"reorder/internal/cli"
	"reorder/internal/experiments"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("impact", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "fewer intensities, smaller transfers")
	csvPath := fs.String("csv", "", "also write the sweep as CSV to this path")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	cfg := experiments.DefaultImpact()
	if *quick {
		cfg = experiments.QuickImpact()
	}
	rep, err := experiments.RunImpact(cfg)
	if err != nil {
		return err
	}
	rep.WriteText(stdout)
	if *csvPath != "" {
		return cli.WriteCSVFile(*csvPath, rep.WriteCSV)
	}
	return nil
}
