// Command impact regenerates E9 (extension): the protocol-impact sweep
// quantifying the paper's motivation. For each reordering intensity it
// runs a classic Reno bulk transfer and one with an adaptive duplicate-ACK
// threshold (the class of fixes the paper cites), alongside the paper's
// own measurements of the same path — showing that the measured
// reordering-extent distribution predicts the damage.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"reorder/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "fewer intensities, smaller transfers")
	csvPath := flag.String("csv", "", "also write the sweep as CSV to this path")
	flag.Parse()

	cfg := experiments.DefaultImpact()
	if *quick {
		cfg = experiments.QuickImpact()
	}
	rep, err := experiments.RunImpact(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.WriteText(os.Stdout)
	if *csvPath != "" {
		if err := writeCSVFile(*csvPath, rep.WriteCSV); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func writeCSVFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
