package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives a small end-to-end campaign through the CLI entry
// point, including JSONL/CSV output and the deterministic summary.
func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	csv := filepath.Join(dir, "out.csv")
	args := []string{
		"-quick", "-samples", "4", "-workers", "8",
		"-profiles", "freebsd4,linux24",
		"-impairments", "clean,swap-heavy",
		"-out", out, "-csv", csv,
	}

	var a bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), "campaign:") || !strings.Contains(a.String(), "single") {
		t.Fatalf("summary missing expected content:\n%s", a.String())
	}
	jsonl, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// 2 profiles × 2 impairments × 2 tests (quick) × 2 seeds = 16 records.
	if got := bytes.Count(jsonl, []byte("\n")); got != 16 {
		t.Fatalf("JSONL has %d records, want 16", got)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Fatal(err)
	}

	// The summary on stdout must be byte-identical across runs.
	var b bytes.Buffer
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CLI summary not deterministic across runs")
	}
}

// TestRunListTargets checks the enumeration listing path.
func TestRunListTargets(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-list-targets", "-profiles", "freebsd4", "-impairments", "clean", "-tests", "syn", "-seeds", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("listed %d targets, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "freebsd4 clean syn ") {
		t.Fatalf("bad target line: %s", lines[0])
	}
}

// TestRunForceRestart exercises the escape hatch for a changed config:
// -resume refuses on the fingerprint mismatch, -force-restart archives the
// old output and checkpoint instead of truncating them and runs fresh.
func TestRunForceRestart(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	csv := filepath.Join(dir, "out.csv")
	ckpt := filepath.Join(dir, "camp.ckpt")
	base := []string{
		"-samples", "4", "-workers", "8",
		"-profiles", "freebsd4", "-impairments", "clean", "-tests", "syn",
		"-out", out, "-csv", csv, "-checkpoint", ckpt,
	}

	if err := run(append([]string{"-seeds", "2"}, base...), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	oldJSONL, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	// A config change (different seed count) dead-ends -resume on the
	// fingerprint refusal...
	err = run(append([]string{"-seeds", "3", "-resume"}, base...), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("changed config not refused by -resume: %v", err)
	}
	// ...and -force-restart with -resume is an error, not a silent pick.
	err = run(append([]string{"-seeds", "3", "-resume", "-force-restart"}, base...), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-force-restart -resume accepted: %v", err)
	}

	// -force-restart archives and reruns.
	var buf bytes.Buffer
	if err := run(append([]string{"-seeds", "3", "-force-restart"}, base...), &buf); err != nil {
		t.Fatal(err)
	}
	archived, err := os.ReadFile(out + ".old1")
	if err != nil {
		t.Fatalf("old output not archived: %v", err)
	}
	if !bytes.Equal(archived, oldJSONL) {
		t.Fatal("archived output differs from the original")
	}
	for _, p := range []string{csv + ".old1", ckpt + ".old1"} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("%s not archived: %v", p, err)
		}
	}
	newJSONL, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// 1 profile × 1 impairment × 1 test × 3 seeds = 3 fresh records.
	if got := bytes.Count(newJSONL, []byte("\n")); got != 3 {
		t.Fatalf("fresh JSONL has %d records, want 3", got)
	}

	// A second forced restart picks the next free archive suffix.
	if err := run(append([]string{"-seeds", "3", "-force-restart"}, base...), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out + ".old2"); err != nil {
		t.Fatalf("second archive missing: %v", err)
	}
}

// TestRunBadFlags checks argument validation surfaces as errors.
func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-profiles", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if err := run([]string{"-targets", "/nonexistent/targets.txt"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing targets file accepted")
	}
}

// TestRunBadDistFlags checks the distributed-plane knobs are validated up
// front with one-line errors, before any campaign state is touched.
func TestRunBadDistFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"negative max-respawn", []string{"-spawn", "2", "-max-respawn", "-1"}},
		{"zero reconnect-backoff", []string{"-worker", "-connect", "sock", "-reconnect-backoff", "0s"}},
		{"negative reconnect-backoff", []string{"-worker", "-connect", "sock", "-reconnect-backoff", "-5ms"}},
		{"faultnet without coordinator", []string{"-faultnet", "7"}},
	}
	for _, tc := range cases {
		if err := run(tc.args, &bytes.Buffer{}); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
