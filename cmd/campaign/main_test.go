package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives a small end-to-end campaign through the CLI entry
// point, including JSONL/CSV output and the deterministic summary.
func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	csv := filepath.Join(dir, "out.csv")
	args := []string{
		"-quick", "-samples", "4", "-workers", "8",
		"-profiles", "freebsd4,linux24",
		"-impairments", "clean,swap-heavy",
		"-out", out, "-csv", csv,
	}

	var a bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), "campaign:") || !strings.Contains(a.String(), "single") {
		t.Fatalf("summary missing expected content:\n%s", a.String())
	}
	jsonl, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// 2 profiles × 2 impairments × 2 tests (quick) × 2 seeds = 16 records.
	if got := bytes.Count(jsonl, []byte("\n")); got != 16 {
		t.Fatalf("JSONL has %d records, want 16", got)
	}
	if _, err := os.Stat(csv); err != nil {
		t.Fatal(err)
	}

	// The summary on stdout must be byte-identical across runs.
	var b bytes.Buffer
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CLI summary not deterministic across runs")
	}
}

// TestRunListTargets checks the enumeration listing path.
func TestRunListTargets(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-list-targets", "-profiles", "freebsd4", "-impairments", "clean", "-tests", "syn", "-seeds", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("listed %d targets, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "freebsd4 clean syn ") {
		t.Fatalf("bad target line: %s", lines[0])
	}
}

// TestRunBadFlags checks argument validation surfaces as errors.
func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-profiles", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if err := run([]string{"-targets", "/nonexistent/targets.txt"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing targets file accepted")
	}
}
