// Command campaign runs a production-scale measurement campaign: the four
// techniques against an enumerated (or file-loaded) population of
// thousands of simulated targets, probed by a bounded worker pool with
// retry, rate limiting, streaming JSONL/CSV output and checkpoint/resume.
// The default enumeration — every host profile × every path impairment ×
// every test × 7 seeds — is a 2016-target survey; results for a fixed
// -seed are byte-reproducible at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/cli"
	"reorder/internal/experiments"
	"reorder/internal/obs"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	var (
		profiles     = fs.String("profiles", "", "comma-separated host profiles (default: all)")
		impairments  = fs.String("impairments", "", "comma-separated path impairments (default: all)")
		tests        = fs.String("tests", "", "comma-separated techniques (default: single,dual,syn,transfer)")
		seeds        = fs.Int("seeds", 0, "seed replicas per profile×impairment×test combination (0 = auto: 7, or 2 with -quick)")
		baseSeed     = fs.Uint64("seed", 719, "base seed; fixes every scenario draw in the campaign")
		topologies   = fs.String("topology", "", "comma-separated topology graphs from the catalog (\"p2p\" is the point-to-point control); adds a topology dimension to the enumeration")
		congestion   = fs.Bool("congestion", false, "run the congestion experiment instead of a raw campaign: clean-path probes over routed topologies, techniques cross-checked for agreement")
		targetsPath  = fs.String("targets", "", "targets file (profile impairment test seed [topology] per line); overrides enumeration")
		samples      = fs.Int("samples", 8, "samples per measurement")
		workers      = fs.Int("workers", 16, "concurrent probe workers")
		retries      = fs.Int("retries", 1, "extra attempts for a failed target")
		backoff      = fs.Duration("backoff", 50*time.Millisecond, "delay before first retry (doubles per attempt)")
		rate         = fs.Float64("rate", 0, "max probe launches per second (0 = unlimited)")
		window       = fs.Int("window", 0, "max targets probed ahead of the in-order emit frontier; bounds re-sequencing memory (0 = adaptive from observed completion spread, capped at max(4×workers, 64))")
		batch        = fs.Int("batch", 0, "targets per dispatch span: workers claim contiguous runs of this many targets and results flush to the sinks in whole pre-encoded batches (0 = adaptive; output is byte-identical at any batch size)")
		out          = fs.String("out", "", "stream per-target results as JSONL to this path")
		csvPath      = fs.String("csv", "", "stream per-target results as CSV to this path")
		ckpt         = fs.String("checkpoint", "", "checkpoint file enabling -resume")
		resume       = fs.Bool("resume", false, "resume an interrupted campaign from -checkpoint")
		forceRestart = fs.Bool("force-restart", false, "archive existing -out/-csv/-checkpoint files (to <path>.oldN) and start fresh; the escape hatch when -resume refuses a changed config")
		stopAfter    = fs.Int("stop-after", 0, "stop cleanly after this many results (0 = run to completion)")
		listTargets  = fs.Bool("list-targets", false, "print the enumerated target list and exit")
		progress     = fs.Duration("progress", 0, "print progress to stderr at this interval, with cumulative and EWMA instantaneous rates (0 = off)")
		quick        = fs.Bool("quick", false, "small campaign (2 seeds, single+syn) for smoke runs")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile of the campaign to this path")
		memProfile   = fs.String("memprofile", "", "write an allocation profile (taken at completion) to this path")
		listen       = fs.String("listen", "", "serve live telemetry over HTTP on this address (/metrics, /campaign/progress, /debug/pprof); \":0\" picks a free port")
		tracePath    = fs.String("trace", "", "write a structured JSONL run trace (span lifecycle, retries, checkpoints) to this path")
		statsReport  = fs.Bool("stats", false, "append a telemetry report (scheduler, probe latency, sim, netem, sinks) to the summary")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	// Profiling hooks, so field campaigns can be profiled the way the
	// benchmarks were (go tool pprof <binary> <profile>).
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *congestion {
		rep, err := experiments.RunCongestion(experiments.CongestionConfig{
			Topologies: splitList(*topologies),
			Replicas:   *seeds,
			Samples:    *samples,
			Workers:    *workers,
			Seed:       *baseSeed,
		})
		if err != nil {
			return err
		}
		rep.WriteText(stdout)
		return nil
	}

	var targets []campaign.Target
	if *targetsPath != "" {
		f, err := os.Open(*targetsPath)
		if err != nil {
			return err
		}
		targets, err = campaign.LoadTargets(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		spec := campaign.EnumSpec{
			Profiles:    splitList(*profiles),
			Impairments: splitList(*impairments),
			Tests:       splitList(*tests),
			Seeds:       *seeds,
			BaseSeed:    *baseSeed,
			Topologies:  splitList(*topologies),
		}
		// -quick shrinks only the dimensions the user did not set
		// explicitly, so e.g. `-quick -seeds 5` keeps 5 seed replicas.
		if spec.Seeds == 0 {
			spec.Seeds = 7
			if *quick {
				spec.Seeds = 2
			}
		}
		if *quick && spec.Tests == nil {
			spec.Tests = []string{"single", "syn"}
		}
		var err error
		targets, err = campaign.Enumerate(spec)
		if err != nil {
			return err
		}
	}
	if *listTargets {
		return campaign.WriteTargets(stdout, targets)
	}

	if *forceRestart {
		if *resume {
			return fmt.Errorf("campaign: -force-restart and -resume are mutually exclusive (restart archives the old state; resume continues it)")
		}
		for _, p := range []string{*ckpt, *out, *csvPath} {
			if p == "" {
				continue
			}
			archived, err := archiveFile(p)
			if err != nil {
				return err
			}
			if archived != "" {
				fmt.Fprintf(os.Stderr, "campaign: archived %s -> %s\n", p, archived)
			}
		}
	}

	cfg := campaign.Config{
		Targets:        targets,
		Samples:        *samples,
		Workers:        *workers,
		Retries:        *retries,
		Backoff:        *backoff,
		RatePerSec:     *rate,
		Window:         *window,
		Batch:          *batch,
		OutputPath:     *out,
		CSVPath:        *csvPath,
		CheckpointPath: *ckpt,
		Resume:         *resume,
		StopAfter:      *stopAfter,
	}
	// The telemetry registry exists only when a surface asked for it —
	// a plain run keeps the zero-instrumentation fast path.
	var reg *obs.Campaign
	if *listen != "" || *tracePath != "" || *statsReport || *progress > 0 {
		reg = obs.NewCampaign(cfg.Workers)
		cfg.Obs = reg
	}
	if *listen != "" {
		srv, err := obs.Serve(*listen, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "campaign: telemetry on http://%s/metrics\n", srv.Addr())
	}
	var trace *obs.Trace
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		trace = obs.NewTrace(f)
		cfg.Trace = trace
	}
	if *progress > 0 {
		// Progress callbacks are span-granular and serial; the interval
		// gates printing. The instantaneous rate is the registry's EWMA,
		// the cumulative average is computed from the run clock.
		interval := *progress
		began := time.Now()
		var lastPrint time.Time
		cfg.Progress = func(done, total int) {
			now := time.Now()
			if now.Sub(lastPrint) < interval && done != total {
				return
			}
			lastPrint = now
			_, _, inst := reg.Progress()
			avg := float64(done) / now.Sub(began).Seconds()
			fmt.Fprintf(os.Stderr, "campaign: %d/%d targets (avg %.0f/s, inst %.0f/s)\n",
				done, total, avg, inst)
		}
	}

	// First signal: quiesce — stop dispatching, drain in-flight spans,
	// checkpoint the drain point, report the partial summary. Second
	// signal: abort immediately.
	interrupt := make(chan struct{})
	runDone := make(chan struct{})
	defer close(runDone)
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		select {
		case <-sigCh:
		case <-runDone:
			return
		}
		fmt.Fprintf(os.Stderr, "campaign: signal received — draining in-flight spans (interrupt again to abort)\n")
		close(interrupt)
		select {
		case <-sigCh:
			fmt.Fprintln(os.Stderr, "campaign: aborted")
			os.Exit(1)
		case <-runDone:
		}
	}()
	cfg.Interrupt = interrupt

	began := time.Now()
	sum, err := campaign.Run(cfg)
	if cerr := trace.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	// The summary itself is deterministic; throughput goes to stderr so
	// stdout stays byte-reproducible for a fixed seed.
	elapsed := time.Since(began)
	fmt.Fprintf(os.Stderr, "campaign: %d targets in %v (%.0f targets/s, %d workers)\n",
		sum.Targets, elapsed.Round(time.Millisecond), float64(sum.Targets)/elapsed.Seconds(), cfg.Workers)
	sum.WriteText(stdout)
	if *statsReport {
		// Opt-in: the telemetry block carries wall-clock timings, so the
		// default stdout stays byte-reproducible for a fixed seed.
		reg.Snapshot().WriteText(stdout)
	}
	return nil
}

// archiveFile moves path aside to the first free <path>.oldN name, so a
// forced restart preserves the previous campaign's output instead of
// truncating it. It returns the archive name, or "" if path did not exist.
func archiveFile(path string) (string, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return "", nil
	} else if err != nil {
		return "", err
	}
	for n := 1; ; n++ {
		cand := fmt.Sprintf("%s.old%d", path, n)
		if _, err := os.Stat(cand); os.IsNotExist(err) {
			return cand, os.Rename(path, cand)
		} else if err != nil {
			return "", err
		}
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
