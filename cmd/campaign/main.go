// Command campaign runs a production-scale measurement campaign: the four
// techniques against an enumerated (or file-loaded) population of
// thousands of simulated targets, probed by a bounded worker pool with
// retry, rate limiting, streaming JSONL/CSV output and checkpoint/resume.
// The default enumeration — every host profile × every path impairment ×
// every test × 7 seeds — is a 2016-target survey; results for a fixed
// -seed are byte-reproducible at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/cli"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	var (
		profiles     = fs.String("profiles", "", "comma-separated host profiles (default: all)")
		impairments  = fs.String("impairments", "", "comma-separated path impairments (default: all)")
		tests        = fs.String("tests", "", "comma-separated techniques (default: single,dual,syn,transfer)")
		seeds        = fs.Int("seeds", 0, "seed replicas per profile×impairment×test combination (0 = auto: 7, or 2 with -quick)")
		baseSeed     = fs.Uint64("seed", 719, "base seed; fixes every scenario draw in the campaign")
		targetsPath  = fs.String("targets", "", "targets file (profile impairment test seed per line); overrides enumeration")
		samples      = fs.Int("samples", 8, "samples per measurement")
		workers      = fs.Int("workers", 16, "concurrent probe workers")
		retries      = fs.Int("retries", 1, "extra attempts for a failed target")
		backoff      = fs.Duration("backoff", 50*time.Millisecond, "delay before first retry (doubles per attempt)")
		rate         = fs.Float64("rate", 0, "max probe launches per second (0 = unlimited)")
		window       = fs.Int("window", 0, "max targets probed ahead of the in-order emit frontier; bounds re-sequencing memory (0 = adaptive from observed completion spread, capped at max(4×workers, 64))")
		batch        = fs.Int("batch", 0, "targets per dispatch span: workers claim contiguous runs of this many targets and results flush to the sinks in whole pre-encoded batches (0 = adaptive; output is byte-identical at any batch size)")
		out          = fs.String("out", "", "stream per-target results as JSONL to this path")
		csvPath      = fs.String("csv", "", "stream per-target results as CSV to this path")
		ckpt         = fs.String("checkpoint", "", "checkpoint file enabling -resume")
		resume       = fs.Bool("resume", false, "resume an interrupted campaign from -checkpoint")
		forceRestart = fs.Bool("force-restart", false, "archive existing -out/-csv/-checkpoint files (to <path>.oldN) and start fresh; the escape hatch when -resume refuses a changed config")
		stopAfter    = fs.Int("stop-after", 0, "stop cleanly after this many results (0 = run to completion)")
		listTargets  = fs.Bool("list-targets", false, "print the enumerated target list and exit")
		progress     = fs.Bool("progress", false, "print progress to stderr")
		quick        = fs.Bool("quick", false, "small campaign (2 seeds, single+syn) for smoke runs")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile of the campaign to this path")
		memProfile   = fs.String("memprofile", "", "write an allocation profile (taken at completion) to this path")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	// Profiling hooks, so field campaigns can be profiled the way the
	// benchmarks were (go tool pprof <binary> <profile>).
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	var targets []campaign.Target
	if *targetsPath != "" {
		f, err := os.Open(*targetsPath)
		if err != nil {
			return err
		}
		targets, err = campaign.LoadTargets(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		spec := campaign.EnumSpec{
			Profiles:    splitList(*profiles),
			Impairments: splitList(*impairments),
			Tests:       splitList(*tests),
			Seeds:       *seeds,
			BaseSeed:    *baseSeed,
		}
		// -quick shrinks only the dimensions the user did not set
		// explicitly, so e.g. `-quick -seeds 5` keeps 5 seed replicas.
		if spec.Seeds == 0 {
			spec.Seeds = 7
			if *quick {
				spec.Seeds = 2
			}
		}
		if *quick && spec.Tests == nil {
			spec.Tests = []string{"single", "syn"}
		}
		var err error
		targets, err = campaign.Enumerate(spec)
		if err != nil {
			return err
		}
	}
	if *listTargets {
		return campaign.WriteTargets(stdout, targets)
	}

	if *forceRestart {
		if *resume {
			return fmt.Errorf("campaign: -force-restart and -resume are mutually exclusive (restart archives the old state; resume continues it)")
		}
		for _, p := range []string{*ckpt, *out, *csvPath} {
			if p == "" {
				continue
			}
			archived, err := archiveFile(p)
			if err != nil {
				return err
			}
			if archived != "" {
				fmt.Fprintf(os.Stderr, "campaign: archived %s -> %s\n", p, archived)
			}
		}
	}

	cfg := campaign.Config{
		Targets:        targets,
		Samples:        *samples,
		Workers:        *workers,
		Retries:        *retries,
		Backoff:        *backoff,
		RatePerSec:     *rate,
		Window:         *window,
		Batch:          *batch,
		OutputPath:     *out,
		CSVPath:        *csvPath,
		CheckpointPath: *ckpt,
		Resume:         *resume,
		StopAfter:      *stopAfter,
	}
	if *progress {
		// Progress is batch-granular, so report on every crossed
		// 250-target boundary rather than exact multiples (a batch may
		// step right over one).
		last := 0
		cfg.Progress = func(done, total int) {
			if done/250 > last/250 || done == total {
				fmt.Fprintf(os.Stderr, "campaign: %d/%d targets\n", done, total)
			}
			last = done
		}
	}

	began := time.Now()
	sum, err := campaign.Run(cfg)
	if err != nil {
		return err
	}
	// The summary itself is deterministic; throughput goes to stderr so
	// stdout stays byte-reproducible for a fixed seed.
	elapsed := time.Since(began)
	fmt.Fprintf(os.Stderr, "campaign: %d targets in %v (%.0f targets/s, %d workers)\n",
		sum.Targets, elapsed.Round(time.Millisecond), float64(sum.Targets)/elapsed.Seconds(), cfg.Workers)
	sum.WriteText(stdout)
	return nil
}

// archiveFile moves path aside to the first free <path>.oldN name, so a
// forced restart preserves the previous campaign's output instead of
// truncating it. It returns the archive name, or "" if path did not exist.
func archiveFile(path string) (string, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return "", nil
	} else if err != nil {
		return "", err
	}
	for n := 1; ; n++ {
		cand := fmt.Sprintf("%s.old%d", path, n)
		if _, err := os.Stat(cand); os.IsNotExist(err) {
			return cand, os.Rename(path, cand)
		} else if err != nil {
			return "", err
		}
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
