// Command campaign runs a production-scale measurement campaign: the four
// techniques against an enumerated (or file-loaded) population of
// thousands of simulated targets, probed by a bounded worker pool with
// retry, rate limiting, streaming JSONL/CSV output and checkpoint/resume.
// The default enumeration — every host profile × every path impairment ×
// every test × 7 seeds — is a 2016-target survey; results for a fixed
// -seed are byte-reproducible at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/campaign/dist"
	"reorder/internal/cli"
	"reorder/internal/experiments"
	"reorder/internal/faultnet"
	"reorder/internal/obs"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	var (
		profiles      = fs.String("profiles", "", "comma-separated host profiles (default: all)")
		impairments   = fs.String("impairments", "", "comma-separated path impairments (default: all)")
		tests         = fs.String("tests", "", "comma-separated techniques (default: single,dual,syn,transfer)")
		seeds         = fs.Int("seeds", 0, "seed replicas per profile×impairment×test combination (0 = auto: 7, or 2 with -quick)")
		baseSeed      = fs.Uint64("seed", 719, "base seed; fixes every scenario draw in the campaign")
		topologies    = fs.String("topology", "", "comma-separated topology graphs from the catalog (\"p2p\" is the point-to-point control); adds a topology dimension to the enumeration")
		scenarioList  = fs.String("scenario", "", "comma-separated fault schedules from the scenario catalog; adds a time-varying/adversarial dimension to the enumeration")
		congestion    = fs.Bool("congestion", false, "run the congestion experiment instead of a raw campaign: clean-path probes over routed topologies, techniques cross-checked for agreement")
		chaos         = fs.Bool("chaos", false, "run the chaos experiment instead of a raw campaign: probes under every fault schedule, techniques cross-checked for agreement")
		listCatalogs  = fs.Bool("list", false, "print the profile, impairment, topology and scenario catalogs and exit")
		targetsPath   = fs.String("targets", "", "targets file (profile impairment test seed [topology [scenario]] per line); overrides enumeration")
		samples       = fs.Int("samples", 8, "samples per measurement")
		workers       = fs.Int("workers", 16, "concurrent probe workers")
		retries       = fs.Int("retries", 1, "extra attempts for a failed target")
		backoff       = fs.Duration("backoff", 50*time.Millisecond, "delay before first retry (doubles per attempt)")
		rate          = fs.Float64("rate", 0, "max probe launches per second (0 = unlimited)")
		window        = fs.Int("window", 0, "max targets probed ahead of the in-order emit frontier; bounds re-sequencing memory (0 = adaptive from observed completion spread, capped at max(4×workers, 64))")
		batch         = fs.Int("batch", 0, "targets per dispatch span: workers claim contiguous runs of this many targets and results flush to the sinks in whole pre-encoded batches (0 = adaptive; output is byte-identical at any batch size)")
		out           = fs.String("out", "", "stream per-target results as JSONL to this path")
		csvPath       = fs.String("csv", "", "stream per-target results as CSV to this path")
		ckpt          = fs.String("checkpoint", "", "checkpoint file enabling -resume")
		resume        = fs.Bool("resume", false, "resume an interrupted campaign from -checkpoint")
		forceRestart  = fs.Bool("force-restart", false, "archive existing -out/-csv/-checkpoint files (to <path>.oldN) and start fresh; the escape hatch when -resume refuses a changed config")
		stopAfter     = fs.Int("stop-after", 0, "stop cleanly after this many results (0 = run to completion)")
		listTargets   = fs.Bool("list-targets", false, "print the enumerated target list and exit")
		progress      = fs.Duration("progress", 0, "print progress to stderr at this interval, with cumulative and EWMA instantaneous rates (0 = off)")
		quick         = fs.Bool("quick", false, "small campaign (2 seeds, single+syn) for smoke runs")
		cpuProfile    = fs.String("cpuprofile", "", "write a CPU profile of the campaign to this path")
		memProfile    = fs.String("memprofile", "", "write an allocation profile (taken at completion) to this path")
		listen        = fs.String("listen", "", "serve live telemetry over HTTP on this address (/metrics, /campaign/progress, /debug/pprof); \":0\" picks a free port")
		tracePath     = fs.String("trace", "", "write a structured JSONL run trace (span lifecycle, retries, checkpoints) to this path")
		statsReport   = fs.Bool("stats", false, "append a telemetry report (scheduler, probe latency, sim, netem, sinks) to the summary")
		workerMode    = fs.Bool("worker", false, "run as a distributed campaign worker: probe spans leased by the coordinator at -connect (enumeration flags must match the coordinator's)")
		connect       = fs.String("connect", "", "coordinator address for -worker (host:port, or a unix socket path)")
		coordinate    = fs.String("coordinate", "", "run as a distributed campaign coordinator listening on this address; workers connect with -worker -connect")
		spawnN        = fs.Int("spawn", 0, "coordinate and fork this many local worker processes over an auto-created unix socket (combine with -coordinate to also accept remote workers)")
		expectN       = fs.Int("expect", 0, "worker processes expected to connect; sizes the per-worker rate-budget split and dispatch window (default: -spawn count, else 1)")
		leaseTimeout  = fs.Duration("lease-timeout", 0, "re-issue a silent worker's leased spans after this long (default 15s)")
		maxRespawn    = fs.Int("max-respawn", 2, "total respawns of crashed -spawn workers before the coordinator drains (0 = never respawn)")
		reconnBackoff = fs.Duration("reconnect-backoff", 100*time.Millisecond, "worker base delay between reconnect attempts after a lost coordinator connection (doubles with jitter per consecutive failure)")
		faultSeed     = fs.Uint64("faultnet", 0, "inject seeded control-plane faults (resets, stalls, dup/truncated lines, accept failures) into coordinator connections — chaos rehearsal for the dist plane; 0 = off")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if err := validateFlags(fs, *scenarioList, *connect, *workerMode, *spawnN, *coordinate, *maxRespawn, *faultSeed); err != nil {
		return err
	}
	if *listCatalogs {
		printCatalogs(stdout)
		return nil
	}

	// Profiling hooks, so field campaigns can be profiled the way the
	// benchmarks were (go tool pprof <binary> <profile>).
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *congestion {
		rep, err := experiments.RunCongestion(experiments.CongestionConfig{
			Topologies: splitList(*topologies),
			Replicas:   *seeds,
			Samples:    *samples,
			Workers:    *workers,
			Seed:       *baseSeed,
		})
		if err != nil {
			return err
		}
		rep.WriteText(stdout)
		return nil
	}
	if *chaos {
		rep, err := experiments.RunChaos(experiments.ChaosConfig{
			Scenarios: splitList(*scenarioList),
			Replicas:  *seeds,
			Samples:   *samples,
			Workers:   *workers,
			Seed:      *baseSeed,
		})
		if err != nil {
			return err
		}
		rep.WriteText(stdout)
		return nil
	}

	var targets []campaign.Target
	if *targetsPath != "" {
		f, err := os.Open(*targetsPath)
		if err != nil {
			return err
		}
		targets, err = campaign.LoadTargets(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		spec := campaign.EnumSpec{
			Profiles:    splitList(*profiles),
			Impairments: splitList(*impairments),
			Tests:       splitList(*tests),
			Seeds:       *seeds,
			BaseSeed:    *baseSeed,
			Topologies:  splitList(*topologies),
			Scenarios:   splitList(*scenarioList),
		}
		// -quick shrinks only the dimensions the user did not set
		// explicitly, so e.g. `-quick -seeds 5` keeps 5 seed replicas.
		if spec.Seeds == 0 {
			spec.Seeds = 7
			if *quick {
				spec.Seeds = 2
			}
		}
		if *quick && spec.Tests == nil {
			spec.Tests = []string{"single", "syn"}
		}
		var err error
		targets, err = campaign.Enumerate(spec)
		if err != nil {
			return err
		}
	}
	if *listTargets {
		return campaign.WriteTargets(stdout, targets)
	}

	if *workerMode {
		if *connect == "" {
			return fmt.Errorf("campaign: -worker requires -connect")
		}
		if *coordinate != "" || *spawnN > 0 {
			return fmt.Errorf("campaign: -worker is mutually exclusive with -coordinate/-spawn")
		}
		// Ctrl+C reaches the whole process group; the coordinator owns the
		// drain, so the worker ignores the interrupt and finishes its
		// in-flight span instead of dying with the lease.
		signal.Ignore(os.Interrupt)
		return dist.RunWorker(dist.WorkerConfig{
			Connect:          *connect,
			Targets:          targets,
			Samples:          *samples,
			Obs:              obs.NewCampaign(1),
			ReconnectBackoff: *reconnBackoff,
		})
	}
	if *connect != "" {
		return fmt.Errorf("campaign: -connect requires -worker")
	}
	distMode := *coordinate != "" || *spawnN > 0

	if *forceRestart {
		if *resume {
			return fmt.Errorf("campaign: -force-restart and -resume are mutually exclusive (restart archives the old state; resume continues it)")
		}
		for _, p := range []string{*ckpt, *out, *csvPath} {
			if p == "" {
				continue
			}
			archived, err := archiveFile(p)
			if err != nil {
				return err
			}
			if archived != "" {
				fmt.Fprintf(os.Stderr, "campaign: archived %s -> %s\n", p, archived)
			}
		}
	}

	cfg := campaign.Config{
		Targets:        targets,
		Samples:        *samples,
		Workers:        *workers,
		Retries:        *retries,
		Backoff:        *backoff,
		RatePerSec:     *rate,
		Window:         *window,
		Batch:          *batch,
		OutputPath:     *out,
		CSVPath:        *csvPath,
		CheckpointPath: *ckpt,
		Resume:         *resume,
		StopAfter:      *stopAfter,
	}
	// The telemetry registry exists only when a surface asked for it —
	// a plain run keeps the zero-instrumentation fast path.
	var reg *obs.Campaign
	if *listen != "" || *tracePath != "" || *statsReport || *progress > 0 {
		reg = obs.NewCampaign(cfg.Workers)
		cfg.Obs = reg
	}
	if *listen != "" {
		srv, err := obs.Serve(*listen, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "campaign: telemetry on http://%s/metrics\n", srv.Addr())
	}
	var trace *obs.Trace
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		trace = obs.NewTrace(f)
		cfg.Trace = trace
	}
	if *progress > 0 {
		// Progress callbacks are span-granular and serial; the interval
		// gates printing. The instantaneous rate is the registry's EWMA,
		// the cumulative average is computed from the run clock.
		interval := *progress
		began := time.Now()
		var lastPrint time.Time
		cfg.Progress = func(done, total int) {
			now := time.Now()
			if now.Sub(lastPrint) < interval && done != total {
				return
			}
			lastPrint = now
			_, _, inst := reg.Progress()
			avg := float64(done) / now.Sub(began).Seconds()
			fmt.Fprintf(os.Stderr, "campaign: %d/%d targets (avg %.0f/s, inst %.0f/s)\n",
				done, total, avg, inst)
		}
	}

	// First signal: quiesce — stop dispatching, drain in-flight spans,
	// checkpoint the drain point, report the partial summary. Second
	// signal: abort immediately.
	interrupt := make(chan struct{})
	runDone := make(chan struct{})
	defer close(runDone)
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		select {
		case <-sigCh:
		case <-runDone:
			return
		}
		fmt.Fprintf(os.Stderr, "campaign: signal received — draining in-flight spans (interrupt again to abort)\n")
		close(interrupt)
		select {
		case <-sigCh:
			fmt.Fprintln(os.Stderr, "campaign: aborted")
			os.Exit(1)
		case <-runDone:
		}
	}()
	cfg.Interrupt = interrupt

	began := time.Now()
	var sum *campaign.Summary
	var err error
	workersDesc := fmt.Sprintf("%d workers", cfg.Workers)
	if distMode {
		expect := *expectN
		if expect <= 0 {
			expect = *spawnN
		}
		if expect <= 0 {
			expect = 1
		}
		// Workers re-enumerate the target list from their own flags (the
		// fingerprint handshake proves both sides agree), so the child argv
		// carries exactly the enumeration knobs — never the coordinator-owned
		// sink, checkpoint or schedule flags.
		var childArgs []string
		if *targetsPath != "" {
			childArgs = append(childArgs, "-targets", *targetsPath)
		} else {
			if *profiles != "" {
				childArgs = append(childArgs, "-profiles", *profiles)
			}
			if *impairments != "" {
				childArgs = append(childArgs, "-impairments", *impairments)
			}
			if *tests != "" {
				childArgs = append(childArgs, "-tests", *tests)
			}
			if *seeds != 0 {
				childArgs = append(childArgs, "-seeds", strconv.Itoa(*seeds))
			}
			childArgs = append(childArgs, "-seed", strconv.FormatUint(*baseSeed, 10))
			if *topologies != "" {
				childArgs = append(childArgs, "-topology", *topologies)
			}
			if *scenarioList != "" {
				childArgs = append(childArgs, "-scenario", *scenarioList)
			}
			if *quick {
				childArgs = append(childArgs, "-quick")
			}
		}
		childArgs = append(childArgs, "-samples", strconv.Itoa(*samples))
		childArgs = append(childArgs, "-reconnect-backoff", reconnBackoff.String())
		sum, err = runCoordinator(cfg, *coordinate, *spawnN, expect, *batch, *window, *leaseTimeout, *maxRespawn, *faultSeed, childArgs)
		workersDesc = fmt.Sprintf("%d worker procs expected", expect)
	} else {
		sum, err = campaign.Run(cfg)
	}
	if cerr := trace.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	// The summary itself is deterministic; throughput goes to stderr so
	// stdout stays byte-reproducible for a fixed seed.
	elapsed := time.Since(began)
	fmt.Fprintf(os.Stderr, "campaign: %d targets in %v (%.0f targets/s, %s)\n",
		sum.Targets, elapsed.Round(time.Millisecond), float64(sum.Targets)/elapsed.Seconds(), workersDesc)
	sum.WriteText(stdout)
	if *statsReport {
		// Opt-in: the telemetry block carries wall-clock timings, so the
		// default stdout stays byte-reproducible for a fixed seed.
		reg.Snapshot().WriteText(stdout)
	}
	return nil
}

// runCoordinator runs the distributed-campaign coordinator: listen (on an
// auto-created unix socket when no address was given), fork local workers
// under a respawning supervisor when asked, serve the lease protocol, and
// reap the children. Worker failures after a successful run are advisory —
// their leases were re-issued and the output is complete. Exhausting the
// respawn budget folds into the ordinary interrupt path: the coordinator
// drains, checkpoints, and the run resumes later.
func runCoordinator(cfg campaign.Config, addr string, spawnN, expect, spanSize, window int,
	leaseTimeout time.Duration, maxRespawn int, faultSeed uint64, childArgs []string) (*campaign.Summary, error) {
	if addr == "" {
		dir, err := os.MkdirTemp("", "campaign-dist-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		addr = filepath.Join(dir, "coord.sock")
	}
	ln, err := dist.Listen(addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "campaign: coordinating on %s\n", addr)
	if faultSeed != 0 {
		// Chaos rehearsal: every worker connection runs through the seeded
		// fault injector. The self-healing machinery (reconnects, lease
		// re-issue, respawn) must still produce byte-identical output.
		ln = faultnet.Wrap(ln, faultnet.Chaos(faultSeed))
		fmt.Fprintf(os.Stderr, "campaign: faultnet enabled (seed %d)\n", faultSeed)
	}
	var sup *dist.Supervisor
	if spawnN > 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		args := append([]string{"-worker", "-connect", addr}, childArgs...)
		sup, err = dist.Supervise(spawnN, exe, args, maxRespawn, os.Stderr, cfg.Obs)
		if err != nil {
			return nil, err
		}
		// A spent respawn budget means the fleet cannot finish; merge it
		// into the interrupt channel so Serve drains and checkpoints
		// instead of waiting forever for dead workers.
		orig := cfg.Interrupt
		merged := make(chan struct{})
		stopMerge := make(chan struct{})
		defer close(stopMerge)
		go func() {
			select {
			case <-orig:
			case <-sup.Exhausted():
				fmt.Fprintln(os.Stderr, "campaign: worker respawn budget exhausted — draining")
			case <-stopMerge:
				return
			}
			close(merged)
		}()
		cfg.Interrupt = merged
	}
	sum, err := dist.Serve(dist.Config{
		Campaign:      cfg,
		Listener:      ln,
		SpanSize:      spanSize,
		Window:        window,
		LeaseTimeout:  leaseTimeout,
		ExpectWorkers: expect,
		Log:           os.Stderr,
	})
	if sup != nil {
		if err != nil {
			// A failed serve may leave children blocked on a dead socket.
			sup.Kill()
		}
		if werr := sup.Wait(2 * time.Second); werr != nil && err == nil {
			fmt.Fprintf(os.Stderr, "campaign: %v (its leases were re-issued; output is complete)\n", werr)
		}
	}
	return sum, err
}

// archiveFile moves path aside to the first free <path>.oldN name, so a
// forced restart preserves the previous campaign's output instead of
// truncating it. It returns the archive name, or "" if path did not exist.
func archiveFile(path string) (string, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return "", nil
	} else if err != nil {
		return "", err
	}
	for n := 1; ; n++ {
		cand := fmt.Sprintf("%s.old%d", path, n)
		if _, err := os.Stat(cand); os.IsNotExist(err) {
			return cand, os.Rename(path, cand)
		} else if err != nil {
			return "", err
		}
	}
}

// validateFlags rejects contradictory or unknown flag values up front, with
// one-line errors, before any targets are enumerated or files touched.
func validateFlags(fs *flag.FlagSet, scenarios, connect string, worker bool, spawnN int, coordinate string,
	maxRespawn int, faultSeed uint64) error {
	var badLease, badReconn bool
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "lease-timeout":
			if d, err := time.ParseDuration(f.Value.String()); err == nil && d <= 0 {
				badLease = true
			}
		case "reconnect-backoff":
			if d, err := time.ParseDuration(f.Value.String()); err == nil && d <= 0 {
				badReconn = true
			}
		}
	})
	if badLease {
		return fmt.Errorf("campaign: -lease-timeout must be positive (omit it for the 15s default)")
	}
	if badReconn {
		return fmt.Errorf("campaign: -reconnect-backoff must be positive (omit it for the 100ms default)")
	}
	if maxRespawn < 0 {
		return fmt.Errorf("campaign: -max-respawn must be non-negative")
	}
	if faultSeed != 0 && coordinate == "" && spawnN == 0 {
		return fmt.Errorf("campaign: -faultnet only applies to a coordinator (-coordinate or -spawn)")
	}
	if spawnN < 0 {
		return fmt.Errorf("campaign: -spawn must be non-negative")
	}
	if spawnN > 0 && connect != "" {
		return fmt.Errorf("campaign: -spawn (coordinate and fork workers) and -connect (be a worker) are mutually exclusive")
	}
	if worker && (coordinate != "" || spawnN > 0) {
		return fmt.Errorf("campaign: -worker is mutually exclusive with -coordinate/-spawn")
	}
	if connect != "" && !worker {
		return fmt.Errorf("campaign: -connect requires -worker")
	}
	for _, s := range splitList(scenarios) {
		if !knownScenario(s) {
			return fmt.Errorf("campaign: unknown scenario %q (see -list for the catalog)", s)
		}
	}
	return nil
}

// knownScenario reports catalog membership; "" is the static control.
func knownScenario(name string) bool {
	if name == "" {
		return true
	}
	for _, s := range campaign.ScenarioNames() {
		if s == name {
			return true
		}
	}
	return false
}

// printCatalogs lists every enumerable dimension, one catalog per block.
func printCatalogs(w io.Writer) {
	block := func(title string, names []string) {
		fmt.Fprintf(w, "%s:\n", title)
		for _, n := range names {
			fmt.Fprintf(w, "  %s\n", n)
		}
	}
	block("profiles", campaign.Profiles())
	block("impairments", campaign.ImpairmentNames())
	block("topologies", campaign.TopologyNames())
	block("scenarios", campaign.ScenarioNames())
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
