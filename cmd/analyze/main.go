// Command analyze is an offline, tcptrace-style reordering analyzer: it
// reads a raw-IP pcap (such as those cmd/reorder -pcap writes, or any
// capture converted to LINKTYPE_RAW), groups TCP data segments by flow,
// and reports per-flow reordering statistics — the Paxson-style counters
// and the RFC-4737-style sequence metrics (ratio, max extent,
// n-reordering), including the spurious-fast-retransmit exposure at
// TCP's classic duplicate-ACK threshold.
//
// Usage:
//
//	analyze capture.pcap [more.pcap ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"reorder/internal/baseline"
	"reorder/internal/cli"
	"reorder/internal/trace"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	minSegs := fs.Int("min", 4, "minimum data segments for a flow to be reported")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return cli.Usagef("usage: analyze [-min N] capture.pcap [...]")
	}
	var failed bool
	for _, path := range fs.Args() {
		if err := analyzeFile(stdout, path, *minSegs); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		return cli.ErrReported
	}
	return nil
}

func analyzeFile(stdout io.Writer, path string, minSegs int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cap, err := trace.ReadPcap(f)
	if err != nil {
		return err
	}
	flows := baseline.AnalyzeAllFlows(cap, minSegs)
	fmt.Fprintf(stdout, "%s: %d packets, %d data flows with >=%d segments\n", path, cap.Len(), len(flows), minSegs)
	if len(flows) == 0 {
		return nil
	}
	fmt.Fprintf(stdout, "%-44s %6s %6s %6s %7s %7s %8s %8s\n",
		"flow", "segs", "rexmt", "ooo", "rate", "exchg", "max-ext", "3-reord")
	for _, fr := range flows {
		m := fr.Metrics
		fmt.Fprintf(stdout, "%-44s %6d %6d %6d %7.4f %7d %8d %8d\n",
			fr.Flow, fr.Paxson.DataPackets, fr.Paxson.Retransmissions, fr.Paxson.OutOfOrder,
			fr.Paxson.Rate(), m.Exchanges, m.MaxExtent(), m.NReordered(3))
	}
	return nil
}
