// Command bench runs the campaign-engine benchmarks programmatically and
// writes the figures of merit to a JSON file, the first point of the
// performance trajectory future PRs measure against. Unlike `go test
// -bench`, its output is a machine-readable record (ns/op, B/op,
// allocs/op, targets/s) that CI and later sessions can diff.
//
// Usage:
//
//	go run ./cmd/bench [-o BENCH_probe.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"reorder/internal/campaign"
	"reorder/internal/cli"
)

func main() { cli.Main(run) }

// point is one benchmark's recorded figures of merit.
type point struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	BPerOp    int64   `json:"b_per_op"`
	AllocsOp  int64   `json:"allocs_per_op"`
	TargetsPS float64 `json:"targets_per_sec,omitempty"`
	N         int     `json:"n"`
}

// report is the BENCH_probe.json schema. Append-only: future PRs add
// fields, never rename them, so trajectories stay comparable.
type report struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Points     []point `json:"points"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_probe.json", "output path for the benchmark record")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	targets, err := campaign.Enumerate(campaign.EnumSpec{
		Impairments: []string{"clean", "swap-heavy"},
		Seeds:       2,
		BaseSeed:    11,
	})
	if err != nil {
		return err
	}

	rep := report{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	record := func(name string, perOpTargets int, bench func(b *testing.B)) {
		res := testing.Benchmark(bench)
		p := point{
			Name:     name,
			NsPerOp:  float64(res.T.Nanoseconds()) / float64(res.N),
			BPerOp:   res.AllocedBytesPerOp(),
			AllocsOp: res.AllocsPerOp(),
			N:        res.N,
		}
		if perOpTargets > 0 && res.T > 0 {
			p.TargetsPS = float64(res.N*perOpTargets) / res.T.Seconds()
		}
		rep.Points = append(rep.Points, p)
		fmt.Fprintf(stdout, "%-28s %12.0f ns/op %10d B/op %8d allocs/op", name, p.NsPerOp, p.BPerOp, p.AllocsOp)
		if p.TargetsPS > 0 {
			fmt.Fprintf(stdout, " %10.0f targets/s", p.TargetsPS)
		}
		fmt.Fprintln(stdout)
	}

	// CampaignProbe: the steady-state unit cost — one target probed
	// through a reused worker arena, as campaign.Run does it.
	probeTarget := campaign.Target{Profile: "freebsd4", Impairment: "swap-heavy", Test: "single", Seed: 7}
	arena := campaign.NewProbeArena()
	if res := arena.ProbeTarget(probeTarget, 8, 0); res.Err != "" {
		return fmt.Errorf("bench: warmup probe failed: %s", res.Err)
	}
	record("CampaignProbe", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := arena.ProbeTarget(probeTarget, 8, 0); res.Err != "" {
				b.Fatal(res.Err)
			}
		}
	})

	// CampaignThroughput: the orchestrator end to end over the benchmark
	// work list.
	record("CampaignThroughput", len(targets), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := campaign.Run(campaign.Config{Targets: targets, Samples: 8, Workers: 16}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// CampaignAggregator: aggregation cost isolated from probe cost, over
	// the same synthetic workload BenchmarkCampaignAggregator measures.
	results := campaign.SyntheticResults(10_000)
	record("CampaignAggregator-10k", 10_000, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg := campaign.NewAggregator(16)
			for j, r := range results {
				agg.Shard(j % 16).Add(r)
			}
			if sum := agg.Summary(); sum.Targets != len(results) {
				b.Fatalf("summary covered %d targets, want %d", sum.Targets, len(results))
			}
		}
	})

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}
