// Command bench runs the campaign-engine benchmarks programmatically and
// appends the figures of merit to a JSON history file — the performance
// trajectory future PRs measure against. Unlike `go test -bench`, its
// output is a machine-readable record (ns/op, B/op, allocs/op, targets/s)
// that CI and later sessions can diff; unlike a snapshot, the history
// keeps every committed run (go version, GOMAXPROCS, git revision), and
// each run prints its deltas against the previous record.
//
// Usage:
//
//	go run ./cmd/bench [-o BENCH_probe.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/campaign/dist"
	"reorder/internal/cli"
	"reorder/internal/netem"
	"reorder/internal/obs"
	"reorder/internal/packet"
)

func main() { cli.Main(run) }

// point is one benchmark's recorded figures of merit.
type point struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	BPerOp    int64   `json:"b_per_op"`
	AllocsOp  int64   `json:"allocs_per_op"`
	TargetsPS float64 `json:"targets_per_sec,omitempty"`
	N         int     `json:"n"`
}

// record is one bench run. Append-only: future PRs add fields, never
// rename them, so trajectories stay comparable.
type record struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu,omitempty"`
	GitRev     string  `json:"git_rev,omitempty"`
	Points     []point `json:"points"`
	// WallSeconds is the wall-clock duration of the whole bench run, a
	// coarse sanity figure alongside the per-point ns/op.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Telemetry is the obs registry snapshot accumulated across the
	// telemetry-enabled throughput leg's iterations: scheduler, probe
	// latency, sim/netem and sink figures for the recorded hardware.
	Telemetry *obs.Snapshot `json:"telemetry,omitempty"`
}

// history is the BENCH_probe.json schema: every committed run, oldest
// first. The pre-history schema was a single bare record; loadHistory
// upgrades it to a one-entry history so old trajectories are preserved.
type history struct {
	Records []record `json:"records"`
}

// loadHistory reads the existing trajectory, tolerating both the history
// schema and the original single-record schema. A missing file is an
// empty history.
func loadHistory(path string) (history, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return history{}, nil
	}
	if err != nil {
		return history{}, err
	}
	var h history
	if err := json.Unmarshal(data, &h); err == nil && len(h.Records) > 0 {
		return h, nil
	}
	var legacy record
	if err := json.Unmarshal(data, &legacy); err == nil && len(legacy.Points) > 0 {
		return history{Records: []record{legacy}}, nil
	}
	return history{}, fmt.Errorf("bench: %s: unrecognized schema", path)
}

// gitRev returns the short HEAD revision, or "" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// benchTargets is the canonical bench work list; the dist worker child
// re-enumerates it so its campaign fingerprint matches the coordinator's.
func benchTargets() ([]campaign.Target, error) {
	return campaign.Enumerate(campaign.EnumSpec{
		Impairments: []string{"clean", "swap-heavy"},
		Seeds:       2,
		BaseSeed:    11,
	})
}

// parallelDegree extracts the parallelism a benchmark leg needs from its
// name suffix (CampaignParallel-p4 → 4, CampaignDist-w2 → 2; 0 when the
// leg has no such requirement). The regression gate skips legs whose
// degree exceeds the host's CPU count: a 1-core runner repeating the
// capped figure must not be held to a multi-core box's scaling numbers.
func parallelDegree(name string) int {
	for _, marker := range []string{"-p", "-w"} {
		if i := strings.LastIndex(name, marker); i >= 0 {
			n := 0
			for _, r := range name[i+len(marker):] {
				if r < '0' || r > '9' {
					return 0
				}
				n = n*10 + int(r-'0')
			}
			if n > 0 {
				return n
			}
		}
	}
	return 0
}

func run(args []string, stdout io.Writer) error {
	// Dist worker child: the CampaignDist legs re-exec this binary with the
	// coordinator address in the environment, before any flag handling.
	if addr := os.Getenv("BENCH_DIST_WORKER"); addr != "" {
		targets, err := benchTargets()
		if err != nil {
			return err
		}
		return dist.RunWorker(dist.WorkerConfig{Connect: addr, Targets: targets, Samples: 8})
	}

	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_probe.json", "benchmark history file (appended, not overwritten)")
	maxRegression := fs.Float64("max-regression", 0,
		"fail (exit non-zero) when any benchmark's ns/op regresses more than this percentage over the best prior history record (0 disables)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	targets, err := benchTargets()
	if err != nil {
		return err
	}

	hist, err := loadHistory(*out)
	if err != nil {
		return err
	}
	var prev *record
	if len(hist.Records) > 0 {
		prev = &hist.Records[len(hist.Records)-1]
	}
	prevPoint := func(name string) *point {
		if prev == nil {
			return nil
		}
		for i := range prev.Points {
			if prev.Points[i].Name == name {
				return &prev.Points[i]
			}
		}
		return nil
	}

	began := time.Now()
	rec := record{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU: runtime.NumCPU(), GitRev: gitRev()}
	recordPoint := func(name string, perOpTargets int, bench func(b *testing.B)) {
		res := testing.Benchmark(bench)
		p := point{
			Name:     name,
			NsPerOp:  float64(res.T.Nanoseconds()) / float64(res.N),
			BPerOp:   res.AllocedBytesPerOp(),
			AllocsOp: res.AllocsPerOp(),
			N:        res.N,
		}
		if perOpTargets > 0 && res.T > 0 {
			p.TargetsPS = float64(res.N*perOpTargets) / res.T.Seconds()
		}
		rec.Points = append(rec.Points, p)
		fmt.Fprintf(stdout, "%-28s %12.0f ns/op %10d B/op %8d allocs/op", name, p.NsPerOp, p.BPerOp, p.AllocsOp)
		if p.TargetsPS > 0 {
			fmt.Fprintf(stdout, " %10.0f targets/s", p.TargetsPS)
		}
		// The trajectory item: every run shows where it stands against
		// the last committed record.
		if pp := prevPoint(name); pp != nil && pp.NsPerOp > 0 {
			fmt.Fprintf(stdout, "   [ns/op %+.1f%%", (p.NsPerOp/pp.NsPerOp-1)*100)
			if pp.TargetsPS > 0 && p.TargetsPS > 0 {
				fmt.Fprintf(stdout, ", targets/s %+.1f%%", (p.TargetsPS/pp.TargetsPS-1)*100)
			}
			fmt.Fprintf(stdout, ", allocs %+d]", p.AllocsOp-pp.AllocsOp)
		}
		fmt.Fprintln(stdout)
	}

	// RouterForward: the topology graph's per-frame routing cost — flow
	// classification, destination lookup and round-robin spray across a
	// two-port group — with Discard ports, so the figure isolates the
	// router from link queueing.
	router := netem.NewRouter()
	routed := netip.AddrFrom4([4]byte{10, 0, 1, 1})
	router.AddRoute(routed, router.AddGroup(netem.Discard, netem.Discard))
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Dst: routed},
		&packet.TCPHeader{SrcPort: 5000, DstPort: 80, Seq: 1, Flags: packet.FlagACK}, nil)
	if err != nil {
		return err
	}
	routedFrame := &netem.Frame{ID: 1, Data: raw}
	recordPoint("RouterForward", 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			router.Input(routedFrame)
		}
	})

	// CampaignProbe: the steady-state unit cost — one target probed
	// through a reused worker arena, as campaign.Run does it.
	probeTarget := campaign.Target{Profile: "freebsd4", Impairment: "swap-heavy", Test: "single", Seed: 7}
	arena := campaign.NewProbeArena()
	if res := arena.ProbeTarget(probeTarget, 8, 0); res.Err != "" {
		return fmt.Errorf("bench: warmup probe failed: %s", res.Err)
	}
	recordPoint("CampaignProbe", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := arena.ProbeTarget(probeTarget, 8, 0); res.Err != "" {
				b.Fatal(res.Err)
			}
		}
	})

	// CampaignProbe-multihop: the same unit cost over a routed multi-hop
	// graph with cross traffic — what a topology target adds on top of the
	// point-to-point fast path (graph build/reset, router hops, background
	// flows sharing the bottleneck).
	multihopTarget := campaign.Target{
		Profile: "freebsd4", Impairment: "clean", Test: "single", Seed: 7,
		Topology: "multihop",
	}
	if res := arena.ProbeTarget(multihopTarget, 8, 0); res.Err != "" {
		return fmt.Errorf("bench: multihop warmup probe failed: %s", res.Err)
	}
	recordPoint("CampaignProbe-multihop", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := arena.ProbeTarget(multihopTarget, 8, 0); res.Err != "" {
				b.Fatal(res.Err)
			}
		}
	})

	// CampaignThroughput: the orchestrator end to end over the benchmark
	// work list, at the historical 16-worker configuration so the series
	// stays comparable, then at 8 workers (the parallel-scaling
	// reference) and with an explicit batch size.
	campaignBench := func(workers, batch int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := campaign.Run(campaign.Config{
					Targets: targets, Samples: 8, Workers: workers, Batch: batch,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	recordPoint("CampaignThroughput", len(targets), campaignBench(16, 0))
	recordPoint("CampaignThroughput-w8", len(targets), campaignBench(8, 0))
	recordPoint("CampaignThroughput-w8-b16", len(targets), campaignBench(8, 16))

	// CampaignThroughput-topo: the orchestrator over routed topology
	// targets — pooled graph reuse, multi-hop forwarding and cross-traffic
	// flows inside every probe.
	topoTargets, err := campaign.Enumerate(campaign.EnumSpec{
		Profiles:    []string{"freebsd4", "linux22"},
		Impairments: []string{"clean"},
		Tests:       []string{"single", "dual"},
		Seeds:       2,
		BaseSeed:    11,
		Topologies:  []string{"bottleneck", "multihop"},
	})
	if err != nil {
		return err
	}
	recordPoint("CampaignThroughput-topo", len(topoTargets), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := campaign.Run(campaign.Config{
				Targets: topoTargets, Samples: 8, Workers: 16,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// CampaignThroughput-obs: the 16-worker campaign with the telemetry
	// registry attached — the leg the instrumentation-overhead budget
	// (<3% vs the bare CampaignThroughput) is held against. The registry
	// accumulates across iterations; its final snapshot is recorded so
	// the committed history carries real scheduler/sim/sink figures for
	// the hardware that produced the timings.
	reg := obs.NewCampaign(16)
	recordPoint("CampaignThroughput-obs", len(targets), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := campaign.Run(campaign.Config{
				Targets: targets, Samples: 8, Workers: 16, Obs: reg,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	snap := reg.Snapshot()
	rec.Telemetry = &snap

	// CampaignParallel: the BenchmarkCampaignParallel legs — the 8-worker
	// batched campaign pinned to GOMAXPROCS 1, 4 and 8 — so the committed
	// record carries real multi-core scaling, not just whatever the bench
	// host happened to default to. On machines with fewer cores the higher
	// legs repeat the capped figure.
	for _, procs := range []int{1, 4, 8} {
		procs := procs
		recordPoint(fmt.Sprintf("CampaignParallel-p%d", procs), len(targets), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := campaign.Run(campaign.Config{
					Targets: targets, Samples: 8, Workers: 8, Batch: 16,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// CampaignDist: the distributed engine end to end — coordinator plus
	// forked worker processes over TCP loopback, per iteration — so the
	// history records what process distribution costs (fork, handshake,
	// span leasing, payload streaming, exact merge) against the in-process
	// legs above. On a single-core host the figure records coordination
	// overhead only; the regression gate skips these legs there.
	distBench := func(nWorkers int) func(b *testing.B) {
		return func(b *testing.B) {
			exe, err := os.Executable()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				ln, err := dist.Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				addr := ln.Addr().String()
				cmds := make([]*exec.Cmd, 0, nWorkers)
				for w := 0; w < nWorkers; w++ {
					cmd := exec.Command(exe)
					cmd.Env = append(os.Environ(), "BENCH_DIST_WORKER="+addr)
					cmd.Stderr = os.Stderr
					if err := cmd.Start(); err != nil {
						b.Fatal(err)
					}
					cmds = append(cmds, cmd)
				}
				if _, err := dist.Serve(dist.Config{
					Campaign:      campaign.Config{Targets: targets, Samples: 8},
					Listener:      ln,
					ExpectWorkers: nWorkers,
				}); err != nil {
					b.Fatal(err)
				}
				for _, cmd := range cmds {
					if err := cmd.Wait(); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	recordPoint("CampaignDist-w2", len(targets), distBench(2))
	recordPoint("CampaignDist-w4", len(targets), distBench(4))

	// CampaignAggregator: aggregation cost isolated from probe cost, over
	// the same synthetic workload BenchmarkCampaignAggregator measures.
	results := campaign.SyntheticResults(10_000)
	recordPoint("CampaignAggregator-10k", 10_000, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agg := campaign.NewAggregator(16)
			for j, r := range results {
				agg.Shard(j % 16).Add(r)
			}
			if sum := agg.Summary(); sum.Targets != len(results) {
				b.Fatalf("summary covered %d targets, want %d", sum.Targets, len(results))
			}
		}
	})

	// Regression gate: each point is held against the BEST (lowest) ns/op
	// any comparable prior record achieved for that name — regressing
	// against your best, not just your previous, is what keeps a slow
	// creep of small losses from hiding inside run-to-run noise.
	// Comparable means same GOMAXPROCS and go version: the history mixes
	// records from different machines, and holding a CI runner to a
	// faster developer box's figures (or an 8-core box to a 1-core one)
	// would make the gate fire on hardware, not code.
	var regressions []string
	if *maxRegression > 0 {
		best := map[string]float64{}
		for _, r := range hist.Records {
			if r.GOMAXPROCS != rec.GOMAXPROCS || r.GoVersion != rec.GoVersion {
				continue
			}
			for _, p := range r.Points {
				if p.NsPerOp > 0 && (best[p.Name] == 0 || p.NsPerOp < best[p.Name]) {
					best[p.Name] = p.NsPerOp
				}
			}
		}
		for _, p := range rec.Points {
			if d := parallelDegree(p.Name); d > runtime.NumCPU() {
				continue // a leg needing more cores than the host has
			}
			b, ok := best[p.Name]
			if !ok || b <= 0 {
				continue // no prior baseline for this point
			}
			if limit := b * (1 + *maxRegression/100); p.NsPerOp > limit {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f ns/op exceeds best %.0f ns/op by more than %.0f%%",
						p.Name, p.NsPerOp, b, *maxRegression))
			}
		}
	}

	rec.WallSeconds = time.Since(began).Seconds()
	hist.Records = append(hist.Records, rec)
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "appended record %d to %s\n", len(hist.Records), *out)
	if len(regressions) > 0 {
		return fmt.Errorf("bench: performance regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}
