// Command timedist regenerates E5 (Fig 7): the reordering probability of
// minimum-sized packet pairs as a function of inter-packet spacing,
// measured with the dual connection test over a striped-trunk path. In
// addition to the table it renders a small ASCII plot of the decay curve.
package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"reorder/internal/cli"
	"reorder/internal/experiments"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("timedist", flag.ContinueOnError)
	var (
		quick      = fs.Bool("quick", false, "sparse schedule, fewer samples per point")
		samples    = fs.Int("samples", 0, "override samples per point (paper: 1000)")
		plot       = fs.Bool("plot", true, "render an ASCII plot of the curve")
		mechanisms = fs.Bool("mechanisms", false, "compare the gap signatures of trunk striping, multi-path routing and L2 ARQ (E8)")
		csvPath    = fs.String("csv", "", "also write the curve(s) as CSV to this path")
		workers    = fs.Int("workers", 0, "concurrent sweep points (0 = default pool); output is identical at any worker count")
	)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	if *mechanisms {
		mcfg := experiments.DefaultMechanisms()
		if *quick {
			mcfg = experiments.QuickMechanisms()
		}
		mcfg.Workers = *workers
		rep, err := experiments.RunMechanisms(mcfg)
		if err != nil {
			return err
		}
		rep.WriteText(stdout)
		if *csvPath != "" {
			return cli.WriteCSVFile(*csvPath, rep.WriteCSV)
		}
		return nil
	}

	cfg := experiments.DefaultGapSweep()
	if *quick {
		cfg = experiments.QuickGapSweep()
	}
	if *samples > 0 {
		cfg.SamplesPerPoint = *samples
	}
	cfg.Workers = *workers
	rep, err := experiments.RunGapSweep(cfg)
	if err != nil {
		return err
	}
	rep.WriteText(stdout)
	if *csvPath != "" {
		if err := cli.WriteCSVFile(*csvPath, rep.WriteCSV); err != nil {
			return err
		}
	}
	if *plot {
		fmt.Fprintln(stdout)
		asciiPlot(stdout, rep)
	}
	return nil
}

// asciiPlot renders rate-vs-gap as rows of bars, downsampling to at most
// 40 rows.
func asciiPlot(w io.Writer, rep *experiments.GapSweepReport) {
	pts := rep.Points
	if len(pts) == 0 {
		return
	}
	step := (len(pts) + 39) / 40
	maxRate := 0.0
	for _, p := range pts {
		if p.Rate > maxRate {
			maxRate = p.Rate
		}
	}
	if maxRate == 0 {
		maxRate = 1
	}
	fmt.Fprintln(w, "gap        rate")
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		width := int(p.Rate / maxRate * 50)
		fmt.Fprintf(w, "%-9s %7.4f |%s\n", p.Gap.Round(time.Microsecond), p.Rate, strings.Repeat("#", width))
	}
}
