// Command timedist regenerates E5 (Fig 7): the reordering probability of
// minimum-sized packet pairs as a function of inter-packet spacing,
// measured with the dual connection test over a striped-trunk path. In
// addition to the table it renders a small ASCII plot of the decay curve.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"reorder/internal/experiments"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "sparse schedule, fewer samples per point")
		samples    = flag.Int("samples", 0, "override samples per point (paper: 1000)")
		plot       = flag.Bool("plot", true, "render an ASCII plot of the curve")
		mechanisms = flag.Bool("mechanisms", false, "compare the gap signatures of trunk striping, multi-path routing and L2 ARQ (E8)")
		csvPath    = flag.String("csv", "", "also write the curve(s) as CSV to this path")
	)
	flag.Parse()

	if *mechanisms {
		mcfg := experiments.DefaultMechanisms()
		if *quick {
			mcfg = experiments.QuickMechanisms()
		}
		rep, err := experiments.RunMechanisms(mcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep.WriteText(os.Stdout)
		if *csvPath != "" {
			if err := writeCSVFile(*csvPath, rep.WriteCSV); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	cfg := experiments.DefaultGapSweep()
	if *quick {
		cfg = experiments.QuickGapSweep()
	}
	if *samples > 0 {
		cfg.SamplesPerPoint = *samples
	}
	rep, err := experiments.RunGapSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.WriteText(os.Stdout)
	if *csvPath != "" {
		if err := writeCSVFile(*csvPath, rep.WriteCSV); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *plot {
		fmt.Println()
		asciiPlot(rep)
	}
}

func writeCSVFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// asciiPlot renders rate-vs-gap as rows of bars, downsampling to at most
// 40 rows.
func asciiPlot(rep *experiments.GapSweepReport) {
	pts := rep.Points
	if len(pts) == 0 {
		return
	}
	step := (len(pts) + 39) / 40
	maxRate := 0.0
	for _, p := range pts {
		if p.Rate > maxRate {
			maxRate = p.Rate
		}
	}
	if maxRate == 0 {
		maxRate = 1
	}
	fmt.Println("gap        rate")
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		width := int(p.Rate / maxRate * 50)
		fmt.Printf("%-9s %7.4f |%s\n", p.Gap.Round(time.Microsecond), p.Rate, strings.Repeat("#", width))
	}
}
