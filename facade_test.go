package reorder_test

import (
	"errors"
	"testing"
	"time"

	"reorder"
)

// The facade must support the README's workflows end to end without
// touching internal packages.

func TestFacadeQuickstart(t *testing.T) {
	net := reorder.NewSimNet(reorder.SimConfig{
		Seed:    1,
		Server:  reorder.FreeBSD4(),
		Forward: reorder.PathSpec{SwapProb: 0.05},
		Reverse: reorder.PathSpec{SwapProb: 0.02},
	})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 2)
	res, err := p.SingleConnectionTest(reorder.SCTOptions{Samples: 50, Reversed: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forward().Valid() != 50 {
		t.Fatalf("forward: %+v", res.Forward())
	}
	if res.MeanRTT() <= 0 {
		t.Fatal("no RTT measured")
	}
}

func TestFacadeAllTechniques(t *testing.T) {
	net := reorder.NewSimNet(reorder.SimConfig{Seed: 3, Server: reorder.FreeBSD4()})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 4)
	if _, err := p.DualConnectionTest(reorder.DCTOptions{Samples: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SYNTest(reorder.SYNOptions{Samples: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DataTransferTest(reorder.TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.BurstTest(reorder.BurstOptions{BurstSize: 4, Bursts: 2}); err != nil {
		t.Fatal(err)
	}
	if rep, err := p.ValidateIPID(reorder.IPIDCheckOptions{}); err != nil || !rep.Usable() {
		t.Fatalf("IPID validation: %v %+v", err, rep)
	}
}

func TestFacadeErrorsAndProfiles(t *testing.T) {
	net := reorder.NewSimNet(reorder.SimConfig{Seed: 5, Server: reorder.Linux24()})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 6)
	if _, err := p.DualConnectionTest(reorder.DCTOptions{Samples: 2}); !errors.Is(err, reorder.ErrIPIDUnusable) {
		t.Fatalf("err = %v, want ErrIPIDUnusable", err)
	}
	if len(reorder.HostCatalog()) < 8 {
		t.Fatal("catalog too small")
	}
}

func TestFacadeGapSweep(t *testing.T) {
	net := reorder.NewSimNet(reorder.SimConfig{
		Seed:   7,
		Server: reorder.FreeBSD4(),
		Forward: reorder.PathSpec{
			LinkRate: 1_000_000_000,
			Trunk:    &reorder.TrunkConfig{FanOut: 2, RateBps: 1_000_000_000, BurstProb: 0.2, MeanBurstBytes: 2500},
		},
	})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 8)
	dist, err := p.GapSweep(reorder.GapSweepOptions{
		Gaps:          []time.Duration{0, 300 * time.Microsecond},
		SamplesPerGap: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dist.ForwardAt(0) <= dist.ForwardAt(300*time.Microsecond) {
		t.Fatal("no gap decay through the facade")
	}
}

func TestFacadeVerdictConstants(t *testing.T) {
	if reorder.VerdictReordered.String() != "reordered" || !reorder.VerdictInOrder.Valid() {
		t.Fatal("verdict constants wrong")
	}
}
