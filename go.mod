module reorder

go 1.22
