// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's experiment index), plus ablations of the design choices
// the implementation makes. The figures-of-merit are reported as custom
// metrics (rates, fractions) alongside the usual time/op; wall-clock here
// measures simulation throughput, since all experiments run in virtual
// time.
package reorder_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"reorder"
	"reorder/internal/campaign"
	"reorder/internal/core"
	"reorder/internal/experiments"
	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/obs"
	"reorder/internal/simnet"
)

// BenchmarkValidation regenerates E1 (§IV-A): tool verdicts vs trace ground
// truth over the swap-rate grid. Metric: fraction of samples correct
// (paper: 0.9999).
func BenchmarkValidation(b *testing.B) {
	var correct float64
	for i := 0; i < b.N; i++ {
		rep := experiments.RunValidation(experiments.QuickValidation())
		correct = rep.CorrectFraction()
	}
	b.ReportMetric(correct, "correct-frac")
}

// BenchmarkSurveyCDF regenerates E2 (Fig 5): the CDF of per-path reordering
// rates over the host population. Metric: fraction of paths with some
// reordering (paper: >0.40).
func BenchmarkSurveyCDF(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		rep := experiments.RunSurvey(experiments.QuickSurvey())
		frac = rep.FractionWithReordering()
	}
	b.ReportMetric(frac, "paths-reordering-frac")
}

// BenchmarkIPIDScreen regenerates E6: the prevalidation pass over the
// population, counting hosts the dual connection test must exclude
// (paper: 9 zero-IPID + 8 non-monotonic of 50).
func BenchmarkIPIDScreen(b *testing.B) {
	var excluded int
	for i := 0; i < b.N; i++ {
		rep := experiments.RunSurvey(experiments.QuickSurvey())
		ex := rep.DCTExclusions()
		excluded = ex["zero-ipid"] + ex["non-monotonic"]
	}
	b.ReportMetric(float64(excluded), "hosts-excluded")
}

// BenchmarkAgreement regenerates E4 (§IV-B): the pairwise paired-difference
// comparison at 99.9% confidence. Metric: single/syn forward null-support
// fraction (paper: 0.78).
func BenchmarkAgreement(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.QuickSurvey()
		cfg.Rounds = 8
		survey := experiments.RunSurvey(cfg)
		rep := experiments.RunAgreement(survey, 0.999)
		if p, ok := rep.Pair("single", "syn", "forward"); ok {
			frac = p.NullFraction()
		}
	}
	b.ReportMetric(frac, "single-syn-null-frac")
}

// BenchmarkTimeSeries regenerates E3 (Fig 6): interleaved SCT and SYN
// measurements of a drifting load-balanced path. Metric: correlation of
// the two series (the figure's visual claim).
func BenchmarkTimeSeries(b *testing.B) {
	var corr float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunTimeSeries(experiments.QuickTimeSeries())
		if err != nil {
			b.Fatal(err)
		}
		corr = rep.Correlation()
	}
	b.ReportMetric(corr, "sct-syn-corr")
}

// BenchmarkGapSweep regenerates E5 (Fig 7): reordering probability vs
// inter-packet spacing. Metrics: the rates at 0, 50µs and 250µs (paper:
// >0.10, <0.02, ≈0).
func BenchmarkGapSweep(b *testing.B) {
	var r0, r50, r250 float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunGapSweep(experiments.QuickGapSweep())
		if err != nil {
			b.Fatal(err)
		}
		r0 = rep.RateAt(0)
		r50 = rep.RateAt(50 * time.Microsecond)
		r250 = rep.RateAt(250 * time.Microsecond)
	}
	b.ReportMetric(r0, "rate-at-0us")
	b.ReportMetric(r50, "rate-at-50us")
	b.ReportMetric(r250, "rate-at-250us")
}

// BenchmarkBaselines regenerates E7 (§II): Bennett ICMP bursts and Paxson
// passive analysis on a heavy-reordering path. Metric: fraction of small
// bursts with reordering (Bennett: >0.90 on his pathological path).
func BenchmarkBaselines(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunBaselines(experiments.QuickBaselines())
		if err != nil {
			b.Fatal(err)
		}
		frac = rep.SmallBurstReordered
	}
	b.ReportMetric(frac, "bursts-reordered-frac")
}

// --- Ablations (DESIGN.md §5) ---

// runSCT measures sample efficiency of the single connection test variant
// against a delayed-ACK-heavy stack.
func runSCT(b *testing.B, reversed bool) (validFrac float64, elapsed time.Duration) {
	b.Helper()
	n := simnet.New(simnet.Config{Seed: 97, Server: host.SpecStack()}) // 500ms delayed ACKs
	p := core.NewProber(n.Probe(), n.ServerAddr(), 98)
	res, err := p.SingleConnectionTest(core.SCTOptions{Samples: 40, Reversed: reversed})
	if err != nil {
		b.Fatal(err)
	}
	f := res.Forward()
	return float64(f.Valid()) / float64(len(res.Samples)), n.Loop.Now().Duration()
}

// BenchmarkAblationSCTSendOrder compares normal vs reversed sample order on
// a maximal-delayed-ACK stack. The reversed variant's in-order case elicits
// only immediate ACKs, so it completes in far less virtual time per sample
// — the §III-B rationale.
func BenchmarkAblationSCTSendOrder(b *testing.B) {
	var normal, reversed time.Duration
	for i := 0; i < b.N; i++ {
		_, normal = runSCT(b, false)
		_, reversed = runSCT(b, true)
	}
	b.ReportMetric(normal.Seconds(), "normal-vtime-s")
	b.ReportMetric(reversed.Seconds(), "reversed-vtime-s")
}

// BenchmarkAblationValidationProbes measures the IPID prevalidation
// false-accept rate on random-IPID hosts as the probe count varies — the
// window-size trade-off DESIGN.md calls out.
func BenchmarkAblationValidationProbes(b *testing.B) {
	for _, probes := range []int{4, 8, 16} {
		b.Run(byteCount(probes), func(b *testing.B) {
			accepts := 0
			trials := 0
			for i := 0; i < b.N; i++ {
				for s := uint64(0); s < 10; s++ {
					n := simnet.New(simnet.Config{Seed: 1000 + s, Server: host.OpenBSD3()})
					p := core.NewProber(n.Probe(), n.ServerAddr(), s)
					rep, err := p.ValidateIPID(core.IPIDCheckOptions{Probes: probes})
					if err != nil {
						b.Fatal(err)
					}
					trials++
					if rep.Usable() {
						accepts++
					}
				}
			}
			b.ReportMetric(float64(accepts)/float64(trials), "false-accept-frac")
		})
	}
}

func byteCount(n int) string {
	switch n {
	case 4:
		return "probes-4"
	case 8:
		return "probes-8"
	default:
		return "probes-16"
	}
}

// BenchmarkAblationTrunkBurstSize compares cross-traffic burst sizes on the
// striped trunk: the mean backlog sets the Fig 7 decay constant, so larger
// bursts leave measurable reordering at gaps where small bursts have
// already decayed to zero. (Fan-out does not matter for isolated pairs —
// round-robin always separates a back-to-back pair — which is itself a
// property of the §IV-C model worth knowing.)
func BenchmarkAblationTrunkBurstSize(b *testing.B) {
	rateFor := func(meanBytes float64, gap time.Duration) float64 {
		trunk := &netem.TrunkConfig{FanOut: 2, RateBps: 1_000_000_000, BurstProb: 0.35, MeanBurstBytes: meanBytes}
		n := simnet.New(simnet.Config{Seed: 55, Server: host.FreeBSD4(), Forward: simnet.PathSpec{Trunk: trunk}})
		p := core.NewProber(n.Probe(), n.ServerAddr(), 56)
		res, err := p.DualConnectionTest(core.DCTOptions{Samples: 300, Gap: gap})
		if err != nil {
			b.Fatal(err)
		}
		return res.Forward().Rate()
	}
	var small, large float64
	for i := 0; i < b.N; i++ {
		small = rateFor(1250, 40*time.Microsecond)
		large = rateFor(5000, 40*time.Microsecond)
	}
	b.ReportMetric(small, "rate-1250B-at-40us")
	b.ReportMetric(large, "rate-5000B-at-40us")
}

// BenchmarkAblationDelAckTimeout sweeps the server's delayed-ACK timeout
// and reports the virtual time one normal-order SCT measurement takes: the
// cost the delayed-ACK mitigation avoids.
func BenchmarkAblationDelAckTimeout(b *testing.B) {
	for _, timeout := range []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond} {
		b.Run(timeout.String(), func(b *testing.B) {
			var vtime time.Duration
			for i := 0; i < b.N; i++ {
				prof := host.FreeBSD4()
				prof.TCP.DelAckTimeout = timeout
				prof.TCP.DelAckThreshold = 4 // force the timer path
				n := simnet.New(simnet.Config{Seed: 77, Server: prof})
				p := core.NewProber(n.Probe(), n.ServerAddr(), 78)
				if _, err := p.SingleConnectionTest(core.SCTOptions{Samples: 20}); err != nil {
					b.Fatal(err)
				}
				vtime = n.Loop.Now().Duration()
			}
			b.ReportMetric(vtime.Seconds(), "vtime-s")
		})
	}
}

// BenchmarkProberThroughput measures raw engine speed: samples per second
// of wall-clock across the full stack (prober, network, server TCP).
func BenchmarkProberThroughput(b *testing.B) {
	net := reorder.NewSimNet(reorder.SimConfig{Seed: 5, Server: reorder.FreeBSD4()})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.DualConnectionTest(reorder.DCTOptions{Samples: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCampaignTargets enumerates a fixed work list for the campaign
// benchmarks: every profile and test over two impairments, 144 targets.
func benchCampaignTargets(b *testing.B) []campaign.Target {
	b.Helper()
	targets, err := campaign.Enumerate(campaign.EnumSpec{
		Impairments: []string{"clean", "swap-heavy"},
		Seeds:       2,
		BaseSeed:    11,
	})
	if err != nil {
		b.Fatal(err)
	}
	return targets
}

// BenchmarkCampaignThroughput measures orchestrator speed end to end —
// scheduling, probing, sharded aggregation and summary merge — as
// targets per second of wall clock, the scaling figure the campaign
// subsystem exists to improve.
func BenchmarkCampaignThroughput(b *testing.B) {
	targets := benchCampaignTargets(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sum *campaign.Summary
	for i := 0; i < b.N; i++ {
		var err error
		sum, err = campaign.Run(campaign.Config{Targets: targets, Samples: 8, Workers: 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(targets)*b.N)/b.Elapsed().Seconds(), "targets/s")
	b.ReportMetric(sum.FractionWithReordering(), "targets-reordering-frac")
}

// BenchmarkCampaignThroughputObserved is BenchmarkCampaignThroughput with
// the telemetry registry attached: every scheduler claim, probe, sim event
// and sink write lands in a per-worker shard. The delta against the bare
// benchmark is the total cost of observability, budgeted at <3%.
func BenchmarkCampaignThroughputObserved(b *testing.B) {
	targets := benchCampaignTargets(b)
	reg := obs.NewCampaign(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := campaign.Run(campaign.Config{Targets: targets, Samples: 8, Workers: 16, Obs: reg}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(targets)*b.N)/b.Elapsed().Seconds(), "targets/s")
	snap := reg.Snapshot()
	b.ReportMetric(float64(snap.Workers.SimEvents)/float64(snap.Workers.Targets), "sim-events/target")
}

// BenchmarkCampaignWorkers sweeps the pool size, exposing how far the
// per-target hermetic design scales before contention or core count caps
// it.
func BenchmarkCampaignWorkers(b *testing.B) {
	targets := benchCampaignTargets(b)
	for _, workers := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "workers-1", 4: "workers-4", 16: "workers-16"}[workers], func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := campaign.Run(campaign.Config{Targets: targets, Samples: 8, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(targets)*b.N)/b.Elapsed().Seconds(), "targets/s")
		})
	}
}

// BenchmarkCampaignBatch sweeps the dispatch span size at a fixed pool,
// isolating what batching buys: span claims, completion reports and sink
// writes are paid per batch, so targets/s should rise from batch-1
// (per-target channel discipline, the pre-batching behaviour) and flatten
// once orchestration is amortized. Output is byte-identical across the
// sweep (pinned by TestCampaignBatchMatrixGolden).
func BenchmarkCampaignBatch(b *testing.B) {
	targets := benchCampaignTargets(b)
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := campaign.Run(campaign.Config{Targets: targets, Samples: 8, Workers: 8, Batch: batch}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(targets)*b.N)/b.Elapsed().Seconds(), "targets/s")
		})
	}
}

// BenchmarkCampaignParallel measures parallel scaling: the 8-worker
// campaign at GOMAXPROCS 1, 4 and 8. Probes are hermetic and workers
// share nothing but the span cursor, the window gate and per-span
// handoffs, so targets/s should track available cores; the GOMAXPROCS-1
// leg doubles as the orchestration-overhead floor (it is the same work on
// one core). On machines with fewer cores the higher legs simply repeat
// the 1-core figure.
func BenchmarkCampaignParallel(b *testing.B) {
	targets := benchCampaignTargets(b)
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("gomaxprocs-%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := campaign.Run(campaign.Config{Targets: targets, Samples: 8, Workers: 8, Batch: 16}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(targets)*b.N)/b.Elapsed().Seconds(), "targets/s")
		})
	}
}

// BenchmarkCampaignProbe isolates one hermetic target probe the way a
// campaign worker runs it — scenario re-seeding in a reused arena plus one
// measurement — the steady-state unit cost every campaign scales from.
// Results are byte-identical to fresh construction (pinned by
// TestArenaReuseMatchesFreshProbes).
func BenchmarkCampaignProbe(b *testing.B) {
	tg := campaign.Target{Profile: "freebsd4", Impairment: "swap-heavy", Test: "single", Seed: 7}
	arena := campaign.NewProbeArena()
	if res := arena.ProbeTarget(tg, 8, 0); res.Err != "" {
		b.Fatal(res.Err) // warm the arena outside the timed loop
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := arena.ProbeTarget(tg, 8, 0); res.Err != "" {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkCampaignProbeCold is the pre-arena unit cost — a fresh scenario
// constructed and discarded per target — kept as the baseline the fast
// path is measured against.
func BenchmarkCampaignProbeCold(b *testing.B) {
	tg := campaign.Target{Profile: "freebsd4", Impairment: "swap-heavy", Test: "single", Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := campaign.ProbeTarget(tg, 8, 0); res.Err != "" {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkCampaignAggregator measures aggregation memory at scale: per-
// target allocated bytes must stay flat from 10k to 100k targets, the
// constant-memory contract of the histogram shards (the former raw sample
// pools grew 8+ bytes per target per pooled statistic). The workload is
// campaign.SyntheticResults, shared with cmd/bench so the two record
// comparable numbers.
func BenchmarkCampaignAggregator(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("targets-%d", n), func(b *testing.B) {
			results := campaign.SyntheticResults(n)
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			b.ReportAllocs()
			b.ResetTimer()
			var sum *campaign.Summary
			for i := 0; i < b.N; i++ {
				agg := campaign.NewAggregator(16)
				for j, r := range results {
					agg.Shard(j % 16).Add(r)
				}
				sum = agg.Summary()
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(n*b.N), "B/target")
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "targets/s")
			if sum.Targets != n {
				b.Fatalf("summary covered %d targets, want %d", sum.Targets, n)
			}
		})
	}
}

// BenchmarkMechanisms regenerates E8 (extension): the gap signatures of
// trunk striping, multi-path routing and L2 ARQ. Metrics: each mechanism's
// rate at a 100µs gap, where the three curves separate sharply.
func BenchmarkMechanisms(b *testing.B) {
	var trunk, mp, arq float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunMechanisms(experiments.QuickMechanisms())
		if err != nil {
			b.Fatal(err)
		}
		at := 100 * time.Microsecond
		if c, ok := rep.Curve("trunk"); ok {
			trunk = c.RateAt(at)
		}
		if c, ok := rep.Curve("multipath"); ok {
			mp = c.RateAt(at)
		}
		if c, ok := rep.Curve("l2-arq"); ok {
			arq = c.RateAt(at)
		}
	}
	b.ReportMetric(trunk, "trunk-at-100us")
	b.ReportMetric(mp, "multipath-at-100us")
	b.ReportMetric(arq, "arq-at-100us")
}

// BenchmarkBurstTest measures the k-packet burst generalization and its
// sequence-metric analysis over a deep-reordering (ARQ) path. Metric:
// events a dupthresh-3 TCP would misread as loss, per 100 packets.
func BenchmarkBurstTest(b *testing.B) {
	var spurious float64
	for i := 0; i < b.N; i++ {
		n := simnet.New(simnet.Config{
			Seed: 91, Server: host.FreeBSD4(),
			Forward: simnet.PathSpec{
				LinkRate: 1_000_000_000,
				ARQ:      &netem.ARQConfig{FrameErrorRate: 0.15, RetransmitDelay: 2 * time.Millisecond},
			},
		})
		p := core.NewProber(n.Probe(), n.ServerAddr(), 92)
		res, err := p.BurstTest(core.BurstOptions{BurstSize: 8, Bursts: 25, Gap: 100 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		f := res.ForwardAggregate()
		if f.Received > 0 {
			spurious = float64(f.SpuriousFastRetransmits(3)) / float64(f.Received) * 100
		}
	}
	b.ReportMetric(spurious, "spurious-frexmit-per-100pkt")
}

// BenchmarkImpact regenerates E9 (extension): Reno vs adaptive dupthresh
// under reordering. Metric: the adaptive sender's throughput advantage on
// the reordering path (ratio > 1 means the cited proposals' fix works).
func BenchmarkImpact(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunImpact(experiments.QuickImpact())
		if err != nil {
			b.Fatal(err)
		}
		dirty := rep.Rows[len(rep.Rows)-1]
		if t := dirty.Reno.Throughput(); t > 0 {
			ratio = dirty.Adaptive.Throughput() / t
		}
	}
	b.ReportMetric(ratio, "adaptive-speedup")
}

// BenchmarkCooperative regenerates E10 (extension): single-ended DCT vs a
// cooperative IPPM-style session on identical paths. Metric: the maximum
// rate disagreement (small = the paper's tool matches the ground-truth
// methodology without its deployment cost).
func BenchmarkCooperative(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunCooperative(experiments.QuickCooperative())
		if err != nil {
			b.Fatal(err)
		}
		worst = rep.MaxDisagreement()
	}
	b.ReportMetric(worst, "max-disagreement")
}
