package core

import (
	"time"

	"reorder/internal/packet"
	"reorder/internal/sim"
)

// SCTOptions configures the single connection test (§III-B).
type SCTOptions struct {
	// Samples is the number of packet-pair measurements (paper used 15 per
	// measurement).
	Samples int
	// Gap spaces the two sample packets (0 = back-to-back).
	Gap time.Duration
	// Reversed sends the high-sequence sample first, which elicits only
	// immediate ACKs in the common in-order case, sidestepping delayed
	// acknowledgments at the cost of a loss/reorder ambiguity.
	Reversed bool
	// Port is the target TCP port (default 80).
	Port uint16
	// ReplyTimeout bounds each wait for an acknowledgment. It must exceed
	// the target's delayed-ACK timeout plus one RTT (default 1s).
	ReplyTimeout time.Duration
	// PrepRetries bounds the hole-preparation and repair retransmissions.
	PrepRetries int
	// SampleTOS marks the two sample packets (in send order) with IP TOS
	// values, exposing DiffServ-style cross-class reordering: a strict-
	// priority scheduler reorders a flow only when its packets carry
	// mixed markings. Zero values leave the default best-effort marking.
	SampleTOS [2]uint8
	// PrimerBytes, when nonzero, sends a payload of this size to a closed
	// port immediately before the sample pair, occupying the bottleneck
	// queue so scheduler effects (priority overtaking) become observable
	// on a pair of minimum-sized samples.
	PrimerBytes int
}

// discardPort is where queue-primer filler is addressed; nothing listens
// there, so at most a RST comes back on a distinct port pair.
const discardPort = 9

func (o SCTOptions) defaults() SCTOptions {
	if o.Samples == 0 {
		o.Samples = 15
	}
	if o.Port == 0 {
		o.Port = 80
	}
	if o.ReplyTimeout == 0 {
		o.ReplyTimeout = time.Second
	}
	if o.PrepRetries == 0 {
		o.PrepRetries = 5
	}
	return o
}

// SingleConnectionTest measures forward- and reverse-path reordering using
// one TCP connection. Each sample prepares a sequence hole at the receiver
// (an out-of-order byte queued beyond the expected sequence number), then
// sends two one-byte samples straddling the hole. The receiver's
// acknowledgment pattern distinguishes delivery order, and the arrival
// order of the acknowledgments exposes reverse-path exchanges.
func (p *Prober) SingleConnectionTest(o SCTOptions) (*Result, error) {
	o = o.defaults()
	c, err := p.connect(o.Port, defaultConnect())
	if err != nil {
		return nil, err
	}
	defer c.reset()

	res := &Result{Test: "single", Target: p.target}
	res.Samples = make([]Sample, 0, o.Samples)
	base := c.iss + 1 // the next byte the server expects from us
	for i := 0; i < o.Samples; i++ {
		s := p.sctSample(c, &base, o)
		s.Gap = o.Gap
		res.Samples = append(res.Samples, s)
	}
	return res, nil
}

// sctSample runs one prepare/measure/repair cycle. base is the server's
// current rcvNxt for our data and advances by 3 on success.
func (p *Prober) sctSample(c *conn, base *uint32, o SCTOptions) Sample {
	b := *base
	p.flushPort(c.lport) // discard any stale acknowledgments

	// Preparation: queue one byte at b+1 until the server acknowledges
	// that it still expects b — proof the hole exists.
	prepared := false
	for try := 0; try < o.PrepRetries && !prepared; try++ {
		c.sendSeg(packet.FlagACK, b+1, c.rcvNxt, []byte{'h'}, nil)
		prepared = c.awaitAckValue(o.ReplyTimeout, b)
	}
	if !prepared {
		return Sample{Forward: VerdictLost, Reverse: VerdictLost}
	}

	// Measurement: two 1-byte samples straddling the queued byte.
	low, high := b, b+2
	first, second := low, high
	if o.Reversed {
		first, second = high, low
	}
	var s Sample
	if o.PrimerBytes > 0 {
		// A filler datagram to a discard port: it elicits at most a RST on
		// a different port pair (filtered out by the waiters) and keeps
		// the bottleneck transmitter busy while the samples queue behind.
		p.sendRawTOS(o.SampleTOS[0], c.lport, discardPort, packet.FlagACK, 1, 1, 0,
			make([]byte, o.PrimerBytes), nil)
	}
	sentAt := p.tp.Now()
	s.SentIDs[0] = c.sendSegTOS(o.SampleTOS[0], packet.FlagACK, first, c.rcvNxt, []byte{'1'}, nil)
	if o.Gap > 0 {
		p.tp.Sleep(o.Gap)
	}
	s.SentIDs[1] = c.sendSegTOS(o.SampleTOS[1], packet.FlagACK, second, c.rcvNxt, []byte{'2'}, nil)

	// Collect up to two acknowledgments.
	acks, ids, firstAt := p.collectAcks(c, 2, o.ReplyTimeout)
	copy(s.ReplyIDs[:], ids)
	if len(acks) > 0 {
		s.RTT = firstAt.Sub(sentAt)
	}
	s.Forward, s.Reverse = classifySCT(acks, b, o.Reversed)

	// Repair: retransmit the full three bytes until the server confirms
	// rcvNxt = b+3, so the next sample starts from known state even after
	// losses.
	for try := 0; try < o.PrepRetries; try++ {
		c.sendSeg(packet.FlagACK, b, c.rcvNxt, []byte{'1', 'h', '2'}, nil)
		if c.awaitAckValue(o.ReplyTimeout, b+3) {
			break
		}
	}
	*base = b + 3
	return s
}

// collectAcks gathers up to n pure-ACK values on the connection, in arrival
// order with their frame IDs and the first reply's arrival time, waiting at
// most timeout for each. The returned slices are prober-owned scratch,
// valid until the next collectAcks call.
func (p *Prober) collectAcks(c *conn, n int, timeout time.Duration) ([]uint32, []uint64, sim.Time) {
	acks := p.acksBuf[:0]
	ids := p.ackIDs[:0]
	var firstAt sim.Time
	for len(acks) < n {
		pkt, id, ok := c.awaitSeg(timeout, func(h *packet.TCPHeader) bool {
			return h.HasFlags(packet.FlagACK) && h.Flags&(packet.FlagSYN|packet.FlagRST|packet.FlagFIN) == 0
		})
		if !ok {
			break
		}
		if len(acks) == 0 {
			firstAt = p.tp.Now()
		}
		acks = append(acks, pkt.TCP.Ack)
		ids = append(ids, id)
		p.release(pkt)
	}
	p.acksBuf, p.ackIDs = acks, ids
	return acks, ids, firstAt
}

// classifySCT maps the acknowledgment pattern to per-direction verdicts.
//
// With hole base b (byte b+1 queued, samples at b and b+2):
//
//	normal send order (low first):
//	  in-order delivery  -> ack(b+2) then ack(b+3)
//	  reordered delivery -> ack(b)   then ack(b+3)
//	reversed send order (high first):
//	  in-order delivery  -> ack(b)   then ack(b+3)
//	  reordered delivery -> ack(b+2) then ack(b+3)
//
// In both modes the acknowledgment of the complete sequence, ack(b+3), is
// sent last; receiving it first means the acknowledgments themselves were
// exchanged on the reverse path.
func classifySCT(acks []uint32, b uint32, reversed bool) (fwd, rev Verdict) {
	midInOrder, midReordered := b+2, b
	if reversed {
		midInOrder, midReordered = b, b+2
	}
	full := b + 3

	classifyMid := func(a uint32) Verdict {
		switch a {
		case midInOrder:
			return VerdictInOrder
		case midReordered:
			return VerdictReordered
		default:
			return VerdictAmbiguous
		}
	}

	switch len(acks) {
	case 2:
		a1, a2 := acks[0], acks[1]
		switch {
		case a2 == full && a1 != full:
			return classifyMid(a1), VerdictInOrder
		case a1 == full && a2 != full:
			// The full-sequence ACK overtook the mid ACK: reverse-path
			// exchange; the mid ACK still reveals the forward order.
			return classifyMid(a2), VerdictReordered
		default:
			return VerdictAmbiguous, VerdictAmbiguous
		}
	case 1:
		// A single acknowledgment cannot separate loss from reordering:
		// a lone mid ACK may mean the other sample never arrived, and the
		// paper's "lone ack 4" may be a reverse loss or a forward
		// reordering. Such samples are discarded (§III-B).
		if acks[0] == full {
			return VerdictAmbiguous, VerdictLost
		}
		return VerdictLost, VerdictLost
	default:
		return VerdictLost, VerdictLost
	}
}
