package core

import (
	"time"

	"reorder/internal/ipid"
	"reorder/internal/packet"
)

// DCTOptions configures the dual connection test (§III-C).
type DCTOptions struct {
	// Samples is the number of packet-pair measurements.
	Samples int
	// Gap spaces the two sample packets; sweeping it yields the Fig 7
	// time-domain distribution.
	Gap time.Duration
	// Port is the target TCP port (default 80).
	Port uint16
	// ReplyTimeout bounds each wait for an acknowledgment (default 1s;
	// all DCT acknowledgments are immediate, so this only covers RTT).
	ReplyTimeout time.Duration
	// ValidationProbes is the number of IPID observations collected by the
	// prevalidation pass (default 12).
	ValidationProbes int
	// SkipValidation runs the test without the prevalidation pass —
	// exactly the mistake the paper warns produces spurious results; it
	// exists so experiments can demonstrate the failure.
	SkipValidation bool
}

func (o DCTOptions) defaults() DCTOptions {
	if o.Samples == 0 {
		o.Samples = 15
	}
	if o.Port == 0 {
		o.Port = 80
	}
	if o.ReplyTimeout == 0 {
		o.ReplyTimeout = time.Second
	}
	if o.ValidationProbes == 0 {
		o.ValidationProbes = 12
	}
	return o
}

// DualConnectionTest measures both directions using two TCP connections and
// the remote host's IPID stream. Each sample sends one out-of-window packet
// on each connection; the receiver acknowledges both immediately (no
// delayed-ACK interference), and the IPIDs stamped on the acknowledgments
// recover the order the remote host received — and sent — them.
//
// Unless SkipValidation is set, the target's IPID behaviour is validated
// first; ErrIPIDUnusable is returned for hosts with random or constant
// IPIDs or whose connections terminate on different machines behind a load
// balancer (Fig 3).
func (p *Prober) DualConnectionTest(o DCTOptions) (*Result, error) {
	o = o.defaults()

	ca, err := p.connect(o.Port, defaultConnect())
	if err != nil {
		return nil, err
	}
	defer ca.reset()
	cb, err := p.connect(o.Port, defaultConnect())
	if err != nil {
		return nil, err
	}
	defer cb.reset()

	if !o.SkipValidation {
		rep := p.validateIPID(ca, cb, o)
		if !rep.Usable() {
			return nil, ErrIPIDUnusable
		}
	}

	res := &Result{Test: "dual", Target: p.target}
	for i := 0; i < o.Samples; i++ {
		s := p.dctSample(ca, cb, o)
		s.Gap = o.Gap
		res.Samples = append(res.Samples, s)
	}
	return res, nil
}

// ping sends the connection's out-of-window probe: one byte one past the
// sequence the server expects, which is queued out-of-order and acknowledged
// immediately without advancing any state. It can be repeated indefinitely.
func (c *conn) ping() uint64 {
	return c.sendSeg(packet.FlagACK, c.iss+2, c.rcvNxt, []byte{'p'}, nil)
}

// awaitPingAck waits for the immediate duplicate ACK a ping elicits
// (ack = iss+1) and returns the packet for its IPID.
func (c *conn) awaitPingAck(timeout time.Duration) (*packet.Packet, uint64, bool) {
	return c.awaitSeg(timeout, func(h *packet.TCPHeader) bool {
		return h.HasFlags(packet.FlagACK) && h.Flags&(packet.FlagSYN|packet.FlagRST|packet.FlagFIN) == 0 &&
			h.Ack == c.iss+1
	})
}

// dctSample sends the pair (connection A first) and classifies.
func (p *Prober) dctSample(ca, cb *conn, o DCTOptions) Sample {
	p.flushPort(ca.lport)
	p.flushPort(cb.lport)

	var s Sample
	sentAt := p.tp.Now()
	s.SentIDs[0] = ca.ping()
	if o.Gap > 0 {
		p.tp.Sleep(o.Gap)
	}
	s.SentIDs[1] = cb.ping()

	// Collect both acknowledgments in arrival order. Fixed-size state (two
	// connections, at most two replies) keeps the per-sample loop off the
	// heap.
	type reply struct {
		conn *conn
		ipid uint16
		id   uint64
	}
	var replies [2]reply
	nreplies := 0
	deadline := p.tp.Now().Add(o.ReplyTimeout)
	var seenA, seenB bool
	match := func(q *packet.Packet) bool {
		if !seenA && q.TCP.SrcPort == ca.rport && q.TCP.DstPort == ca.lport &&
			q.TCP.HasFlags(packet.FlagACK) &&
			q.TCP.Flags&(packet.FlagSYN|packet.FlagRST|packet.FlagFIN) == 0 &&
			q.TCP.Ack == ca.iss+1 {
			return true
		}
		if !seenB && q.TCP.SrcPort == cb.rport && q.TCP.DstPort == cb.lport &&
			q.TCP.HasFlags(packet.FlagACK) &&
			q.TCP.Flags&(packet.FlagSYN|packet.FlagRST|packet.FlagFIN) == 0 &&
			q.TCP.Ack == cb.iss+1 {
			return true
		}
		return false
	}
	for nreplies < 2 {
		remaining := deadline.Sub(p.tp.Now())
		if remaining <= 0 {
			break
		}
		pkt, id, ok := p.awaitTCP(remaining, match)
		if !ok {
			break
		}
		which := ca
		if pkt.TCP.DstPort == cb.lport {
			which = cb
		}
		if nreplies == 0 {
			s.RTT = p.tp.Now().Sub(sentAt)
		}
		if which == ca {
			seenA = true
		} else {
			seenB = true
		}
		replies[nreplies] = reply{conn: which, ipid: pkt.IP.ID, id: id}
		nreplies++
		p.release(pkt)
	}

	if nreplies < 2 {
		return Sample{Forward: VerdictLost, Reverse: VerdictLost, SentIDs: s.SentIDs, RTT: s.RTT}
	}
	s.ReplyIPIDs = [2]uint16{replies[0].ipid, replies[1].ipid}
	s.ReplyIDs = [2]uint64{replies[0].id, replies[1].id}

	// Identify each connection's acknowledgment IPID.
	var ia, ib uint16
	for _, r := range replies {
		if r.conn == ca {
			ia = r.ipid
		} else {
			ib = r.ipid
		}
	}
	if ia == ib {
		// A shared strictly increasing counter cannot produce equal IPIDs;
		// prevalidation should have caught this, but classify defensively.
		return Sample{Forward: VerdictAmbiguous, Reverse: VerdictAmbiguous, SentIDs: s.SentIDs, ReplyIPIDs: s.ReplyIPIDs}
	}

	// Forward: we sent A's sample first; the server stamped whichever
	// arrived first with the smaller IPID.
	if packet.IPIDLess(ia, ib) {
		s.Forward = VerdictInOrder
	} else {
		s.Forward = VerdictReordered
	}
	// Reverse: the server transmitted the acknowledgments in IPID order;
	// receiving the larger IPID first means they were exchanged in flight.
	if packet.IPIDLess(replies[0].ipid, replies[1].ipid) {
		s.Reverse = VerdictInOrder
	} else {
		s.Reverse = VerdictReordered
	}
	return s
}

// IPIDCheckOptions configures the standalone IPID prevalidation.
type IPIDCheckOptions struct {
	// Probes is the number of observations (default 12).
	Probes int
	// Port is the target TCP port (default 80).
	Port uint16
	// ReplyTimeout bounds each wait (default 1s).
	ReplyTimeout time.Duration
}

// ValidateIPID opens two connections to the target, elicits acknowledgments
// strictly one at a time while alternating connections, and analyzes the
// observed IPID stream per §III-C: cross-connection differences must be
// small positive steps dominated by within-connection differences. The
// returned report's Usable method gates the dual connection test.
func (p *Prober) ValidateIPID(o IPIDCheckOptions) (*ipid.Report, error) {
	if o.Probes == 0 {
		o.Probes = 12
	}
	if o.Port == 0 {
		o.Port = 80
	}
	if o.ReplyTimeout == 0 {
		o.ReplyTimeout = time.Second
	}
	ca, err := p.connect(o.Port, defaultConnect())
	if err != nil {
		return nil, err
	}
	defer ca.reset()
	cb, err := p.connect(o.Port, defaultConnect())
	if err != nil {
		return nil, err
	}
	defer cb.reset()
	return p.validateIPID(ca, cb, DCTOptions{ValidationProbes: o.Probes, ReplyTimeout: o.ReplyTimeout}), nil
}

// validateIPID runs the elicitation over existing connections. The
// observation slice is prober-owned scratch (ipid.Validate does not retain
// it).
func (p *Prober) validateIPID(ca, cb *conn, o DCTOptions) *ipid.Report {
	obs := p.obsScratch[:0]
	conns := [2]*conn{ca, cb}
	for i := 0; i < o.ValidationProbes; i++ {
		c := conns[i%2]
		c.ping()
		pkt, _, ok := c.awaitPingAck(o.ReplyTimeout)
		if !ok {
			continue // lost probe or ack; the report's sample count shrinks
		}
		obs = append(obs, ipid.Observation{Conn: i % 2, ID: pkt.IP.ID})
		p.release(pkt)
	}
	p.obsScratch = obs
	return ipid.Validate(obs)
}
