package core

import (
	"time"

	"reorder/internal/packet"
)

// SYNOptions configures the SYN test (§III-D).
type SYNOptions struct {
	// Samples is the number of SYN-pair measurements.
	Samples int
	// Gap spaces the two SYNs.
	Gap time.Duration
	// Port is the target TCP port (default 80).
	Port uint16
	// ReplyTimeout bounds each wait for a reply (default 1s).
	ReplyTimeout time.Duration
	// SeqOffset is how far the second SYN's sequence number is advanced
	// from the first (default 64).
	SeqOffset uint32
	// Pace is the idle time between samples; the paper rate-limited SYNs
	// to avoid resembling a SYN flood (default 10ms of transport time).
	Pace time.Duration
}

func (o SYNOptions) defaults() SYNOptions {
	if o.Samples == 0 {
		o.Samples = 15
	}
	if o.Port == 0 {
		o.Port = 80
	}
	if o.ReplyTimeout == 0 {
		o.ReplyTimeout = time.Second
	}
	if o.SeqOffset == 0 {
		o.SeqOffset = 64
	}
	if o.Pace == 0 {
		o.Pace = 10 * time.Millisecond
	}
	return o
}

// SYNTest measures both directions using pairs of SYN packets that are
// identical except for slightly offset sequence numbers. Because both SYNs
// share the 4-tuple, per-flow load balancers deliver them to the same
// backend, making this the technique of choice for load-balanced sites
// where the dual connection test is invalid.
//
// The first SYN to arrive elicits the SYN/ACK; its acknowledgment number
// identifies which one that was (forward path). The second SYN elicits a
// RST from common stacks (or a pure ACK from spec-following ones), always
// after the SYN/ACK, so the arrival order of the two replies exposes
// reverse-path exchanges. After each sample the connection is completed and
// reset, per the paper's SYN-flood etiquette.
func (p *Prober) SYNTest(o SYNOptions) (*Result, error) {
	o = o.defaults()
	res := &Result{Test: "syn", Target: p.target}
	for i := 0; i < o.Samples; i++ {
		s := p.synSample(o)
		s.Gap = o.Gap
		res.Samples = append(res.Samples, s)
		if o.Pace > 0 {
			p.tp.Sleep(o.Pace)
		}
	}
	return res, nil
}

func (p *Prober) synSample(o SYNOptions) Sample {
	lport := p.allocPort()
	iss := p.rng.Uint32()
	seq1, seq2 := iss, iss+o.SeqOffset

	var s Sample
	sentAt := p.tp.Now()
	s.SentIDs[0] = p.sendRaw(lport, o.Port, packet.FlagSYN, seq1, 0, 65535, nil, nil)
	if o.Gap > 0 {
		p.tp.Sleep(o.Gap)
	}
	s.SentIDs[1] = p.sendRaw(lport, o.Port, packet.FlagSYN, seq2, 0, 65535, nil, nil)

	// Collect up to two replies on this 4-tuple in arrival order. A few
	// implementations send two RSTs; the extra reply is flushed afterward.
	// The slice is prober-owned scratch, reused across samples.
	replies := p.synReplies[:0]
	deadline := p.tp.Now().Add(o.ReplyTimeout)
	for len(replies) < 2 {
		remaining := deadline.Sub(p.tp.Now())
		if remaining <= 0 {
			break
		}
		pkt, id, ok := p.awaitTCP(remaining, func(q *packet.Packet) bool {
			return q.TCP.SrcPort == o.Port && q.TCP.DstPort == lport
		})
		if !ok {
			break
		}
		if len(replies) == 0 {
			s.RTT = p.tp.Now().Sub(sentAt)
		}
		if len(replies) < 2 {
			s.ReplyIDs[len(replies)] = id
		}
		replies = append(replies, pkt)
	}

	s.Forward, s.Reverse = classifySYN(replies, seq1, seq2)

	// Etiquette: complete the handshake the server is holding open, then
	// tear it down, so we never leave half-open state resembling an attack.
	for _, r := range replies {
		if r.TCP.HasFlags(packet.FlagSYN | packet.FlagACK) {
			p.sendRaw(lport, o.Port, packet.FlagACK, r.TCP.Ack, r.TCP.Seq+1, 65535, nil, nil)
			p.sendRaw(lport, o.Port, packet.FlagRST, r.TCP.Ack, 0, 0, nil, nil)
			break
		}
	}
	for _, r := range replies {
		p.release(r)
	}
	p.synReplies = replies[:0]
	p.flushPort(lport)
	return s
}

// classifySYN derives the verdicts from the replies to a SYN pair with
// sequence numbers seq1 (sent first) and seq2.
func classifySYN(replies []*packet.Packet, seq1, seq2 uint32) (fwd, rev Verdict) {
	var synAck *packet.Packet
	synAckIdx := -1
	for i, r := range replies {
		if r.TCP.HasFlags(packet.FlagSYN | packet.FlagACK) {
			synAck = r
			synAckIdx = i
			break
		}
	}
	if synAck == nil {
		// No SYN/ACK at all: both SYNs or the SYN/ACK lost, or the target
		// does not accept connections.
		return VerdictLost, VerdictLost
	}

	// Forward: the SYN/ACK acknowledges the first SYN the server received.
	switch synAck.TCP.Ack {
	case seq1 + 1:
		fwd = VerdictInOrder
	case seq2 + 1:
		fwd = VerdictReordered
	default:
		fwd = VerdictAmbiguous
	}

	// Reverse: the server sends the SYN/ACK before the second SYN's
	// RST/ACK. Observing the RST (or challenge ACK) first means the
	// replies were exchanged in flight.
	if len(replies) < 2 {
		// One reply only (e.g. implementations that ignore the second
		// SYN): the reverse direction is unmeasurable this sample.
		rev = VerdictLost
		return fwd, rev
	}
	if synAckIdx == 0 {
		rev = VerdictInOrder
	} else {
		rev = VerdictReordered
	}
	return fwd, rev
}
