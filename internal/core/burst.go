package core

import (
	"fmt"
	"time"

	"reorder/internal/metrics"
	"reorder/internal/packet"
)

// BurstOptions configures the k-packet burst test, a generalization of the
// dual connection test from pairs to trains. The paper proposes the
// pairwise exchange as a primitive "that can be further parameterized to
// capture more sophisticated phenomena"; recovering the full arrival
// permutation of a k-packet train is the natural next step, and feeding it
// to the sequence metrics (internal/metrics) yields reordering extents and
// n-reordering — the quantities that predict protocol impact (e.g.
// spurious fast retransmits at TCP's dupthresh).
type BurstOptions struct {
	// BurstSize is the number of packets per train, one connection each
	// (default 5, Bennett's small burst for comparability).
	BurstSize int
	// Bursts is the number of trains (default 10).
	Bursts int
	// Gap spaces consecutive packets within a train.
	Gap time.Duration
	// Port is the target TCP port (default 80).
	Port uint16
	// ReplyTimeout bounds the wait for each train's acknowledgments.
	ReplyTimeout time.Duration
	// ValidationProbes for the IPID prevalidation pass (default 12).
	ValidationProbes int
	// Pace is the idle time between trains (default 10ms).
	Pace time.Duration
}

func (o BurstOptions) defaults() BurstOptions {
	if o.BurstSize == 0 {
		o.BurstSize = 5
	}
	if o.Bursts == 0 {
		o.Bursts = 10
	}
	if o.Port == 0 {
		o.Port = 80
	}
	if o.ReplyTimeout == 0 {
		o.ReplyTimeout = time.Second
	}
	if o.ValidationProbes == 0 {
		o.ValidationProbes = 12
	}
	if o.Pace == 0 {
		o.Pace = 10 * time.Millisecond
	}
	return o
}

// BurstSample is one train's outcome.
type BurstSample struct {
	// Sent is the train length; Received the acknowledged count.
	Sent, Received int
	// ForwardArrivals are the send positions of the train's packets in
	// the order the server received them, recovered from the IPID order
	// of the acknowledgments. Missing packets are omitted.
	ForwardArrivals []int
	// ReverseArrivals are the send positions of the server's
	// acknowledgments (IPID order defines the send positions) in probe
	// arrival order.
	ReverseArrivals []int
}

// Forward returns the sequence metrics of the train's forward direction.
func (s *BurstSample) Forward() *metrics.Report { return metrics.Analyze(s.ForwardArrivals) }

// Reverse returns the sequence metrics of the reverse direction.
func (s *BurstSample) Reverse() *metrics.Report { return metrics.Analyze(s.ReverseArrivals) }

// BurstResult aggregates the trains.
type BurstResult struct {
	Target  string
	Bursts  []BurstSample
	Options BurstOptions
}

// ForwardAggregate concatenates all trains' forward metrics into one
// report (each train analyzed independently, counts summed).
func (r *BurstResult) ForwardAggregate() *metrics.Report {
	return aggregate(r.Bursts, (*BurstSample).Forward)
}

// ReverseAggregate concatenates all trains' reverse metrics.
func (r *BurstResult) ReverseAggregate() *metrics.Report {
	return aggregate(r.Bursts, (*BurstSample).Reverse)
}

func aggregate(bursts []BurstSample, dir func(*BurstSample) *metrics.Report) *metrics.Report {
	total := &metrics.Report{}
	for i := range bursts {
		rep := dir(&bursts[i])
		total.Sent += rep.Sent
		total.Received += rep.Received
		total.Exchanges += rep.Exchanges
		total.Reordered += rep.Reordered
		total.Extents = append(total.Extents, rep.Extents...)
		for n, c := range rep.NReordering {
			for len(total.NReordering) <= n {
				total.NReordering = append(total.NReordering, 0)
			}
			total.NReordering[n] += c
		}
	}
	return total
}

// BurstTest sends trains of k out-of-window probes, one per connection,
// and recovers the full forward and reverse arrival permutations from the
// acknowledgments' IPIDs and arrival order. IPID prevalidation gates the
// test exactly as for the dual connection test.
func (p *Prober) BurstTest(o BurstOptions) (*BurstResult, error) {
	o = o.defaults()

	conns := make([]*conn, o.BurstSize)
	for i := range conns {
		c, err := p.connect(o.Port, defaultConnect())
		if err != nil {
			return nil, err
		}
		defer c.reset()
		conns[i] = c
	}
	if rep := p.validateIPID(conns[0], conns[1], DCTOptions{ValidationProbes: o.ValidationProbes, ReplyTimeout: o.ReplyTimeout}); !rep.Usable() {
		return nil, ErrIPIDUnusable
	}

	res := &BurstResult{Target: p.target.String(), Options: o}
	for b := 0; b < o.Bursts; b++ {
		res.Bursts = append(res.Bursts, p.burstOnce(conns, o))
		p.tp.Sleep(o.Pace)
	}
	return res, nil
}

func (p *Prober) burstOnce(conns []*conn, o BurstOptions) BurstSample {
	for _, c := range conns {
		p.flushPort(c.lport)
	}
	s := BurstSample{Sent: len(conns)}
	for i, c := range conns {
		if i > 0 && o.Gap > 0 {
			p.tp.Sleep(o.Gap)
		}
		c.ping()
	}

	// Collect one acknowledgment per connection, in arrival order.
	var acks []ackRec
	byPort := map[uint16]int{}
	for i, c := range conns {
		byPort[c.lport] = i
	}
	pending := map[int]bool{}
	for i := range conns {
		pending[i] = true
	}
	deadline := p.tp.Now().Add(o.ReplyTimeout)
	for len(acks) < len(conns) {
		remaining := deadline.Sub(p.tp.Now())
		if remaining <= 0 {
			break
		}
		pkt, _, ok := p.awaitTCP(remaining, func(q *packet.Packet) bool {
			i, isOurs := byPort[q.TCP.DstPort]
			if !isOurs || !pending[i] {
				return false
			}
			c := conns[i]
			return q.TCP.SrcPort == c.rport && q.TCP.HasFlags(packet.FlagACK) &&
				q.TCP.Flags&(packet.FlagSYN|packet.FlagRST|packet.FlagFIN) == 0 &&
				q.TCP.Ack == c.iss+1
		})
		if !ok {
			break
		}
		i := byPort[pkt.TCP.DstPort]
		delete(pending, i)
		acks = append(acks, ackRec{pos: i, ipid: pkt.IP.ID})
		p.release(pkt)
	}
	s.Received = len(acks)

	// Reverse permutation: acks are already in probe arrival order; their
	// send order at the server is their IPID order. Rank IPIDs to get
	// send positions.
	ranks := ipidRanks(acks)
	for i := range acks {
		s.ReverseArrivals = append(s.ReverseArrivals, ranks[i])
	}

	// Forward permutation: the server acknowledged in receive order and
	// its IPIDs expose that order; sorting the acks by IPID gives server
	// receive order, and each ack's connection index is the send
	// position.
	order := make([]int, len(acks))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by IPID with wraparound compare (k is tiny).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && packet.IPIDLess(acks[order[j]].ipid, acks[order[j-1]].ipid); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, idx := range order {
		s.ForwardArrivals = append(s.ForwardArrivals, acks[idx].pos)
	}
	return s
}

// ackRec pairs a send position (connection index) with the IPID of its
// acknowledgment.
type ackRec struct {
	pos  int
	ipid uint16
}

// ipidRanks maps each ack to the rank of its IPID (0 = smallest = sent
// first by the server), wrap-aware.
func ipidRanks(acks []ackRec) []int {
	ranks := make([]int, len(acks))
	for i := range acks {
		r := 0
		for j := range acks {
			if j != i && packet.IPIDLess(acks[j].ipid, acks[i].ipid) {
				r++
			}
		}
		ranks[i] = r
	}
	return ranks
}

// String summarizes the burst result.
func (r *BurstResult) String() string {
	f, v := r.ForwardAggregate(), r.ReverseAggregate()
	return fmt.Sprintf("burst test %s: %d trains of %d; forward %s; reverse %s",
		r.Target, len(r.Bursts), r.Options.BurstSize, f, v)
}
