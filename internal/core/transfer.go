package core

import (
	"sort"
	"time"

	"reorder/internal/packet"
)

// TransferOptions configures the TCP data transfer test.
type TransferOptions struct {
	// Port is the target TCP port (default 80).
	Port uint16
	// MSS is the maximum segment size advertised to the server. Clamping
	// it small yields many small data packets per object (default 256).
	MSS uint16
	// Window is the receive window advertised, bounding how many segments
	// the server keeps in flight (default 1024 = 4 segments at MSS 256).
	Window uint16
	// Request is the application request that triggers the transfer
	// (default "GET / HTTP/1.0\r\n\r\n").
	Request string
	// IdleTimeout ends the transfer when no data arrives for this long
	// (default 2s).
	IdleTimeout time.Duration
	// MaxSegments caps the transfer length (default 512 segments).
	MaxSegments int
}

func (o TransferOptions) defaults() TransferOptions {
	if o.Port == 0 {
		o.Port = 80
	}
	if o.MSS == 0 {
		o.MSS = 256
	}
	if o.Window == 0 {
		o.Window = 1024
	}
	if o.Request == "" {
		o.Request = "GET / HTTP/1.0\r\n\r\n"
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Second
	}
	if o.MaxSegments == 0 {
		o.MaxSegments = 512
	}
	return o
}

// DataTransferTest initiates a download from the target and classifies the
// arrival order of the data packets — the passive, in-situ style of
// measurement (Paxson's) the paper uses as its baseline. Only the reverse
// path (server to probe) is measurable; every sample's Forward verdict is
// VerdictUnknown.
//
// Two mitigations from the paper temper TCP's congestion-control dynamics:
// the advertised MSS and window are artificially small, and the prober
// acknowledges the largest sequence number received even across holes, so
// loss does not stall or reshape the sending pattern.
func (p *Prober) DataTransferTest(o TransferOptions) (*Result, error) {
	o = o.defaults()
	cc := defaultConnect()
	cc.mss = o.MSS
	cc.window = o.Window
	c, err := p.connect(o.Port, cc)
	if err != nil {
		return nil, err
	}
	defer c.reset()

	c.sendSeg(packet.FlagACK|packet.FlagPSH, c.iss+1, c.rcvNxt, []byte(o.Request), nil)

	var (
		arrivals []uint32 // first-transmission data seqs in arrival order
		seen     = map[uint32]bool{}
		maxEnd   = c.rcvNxt
	)
	for len(arrivals) < o.MaxSegments {
		pkt, _, ok := c.awaitSeg(o.IdleTimeout, func(h *packet.TCPHeader) bool { return true })
		if !ok {
			break
		}
		rst := pkt.TCP.HasFlags(packet.FlagRST)
		n := uint32(len(pkt.Payload))
		seq := pkt.TCP.Seq
		p.release(pkt)
		if rst {
			break
		}
		if n == 0 {
			continue
		}
		if end := seq + n; packet.SeqGT(end, maxEnd) {
			maxEnd = end
		}
		// Acknowledge the largest byte received regardless of holes, per
		// the paper, so the server never stalls on a loss.
		c.sendSeg(packet.FlagACK, c.iss+1+uint32(len(o.Request)), maxEnd, nil, nil)
		if seen[seq] {
			continue // retransmission: not a fresh arrival sample
		}
		seen[seq] = true
		arrivals = append(arrivals, seq)
	}
	if len(arrivals) == 0 {
		return nil, ErrNoData
	}

	// Each adjacent pair of first-transmission arrivals is one sample: the
	// server sent data in sequence order, so a lower sequence number
	// arriving after a higher one is an exchange.
	res := &Result{Test: "transfer", Target: p.target}
	for i := 1; i < len(arrivals); i++ {
		s := Sample{Forward: VerdictUnknown}
		if packet.SeqLT(arrivals[i], arrivals[i-1]) {
			s.Reverse = VerdictReordered
		} else {
			s.Reverse = VerdictInOrder
		}
		res.Samples = append(res.Samples, s)
	}
	res.Arrivals = arrivalPositions(arrivals)
	return res, nil
}

// arrivalPositions maps the arrival-ordered sequence numbers to send
// positions (rank by sequence, since the server transmits sequentially),
// the form the sequence metrics consume.
func arrivalPositions(seqs []uint32) []int {
	sorted := append([]uint32(nil), seqs...)
	sort.Slice(sorted, func(i, j int) bool { return packet.SeqLT(sorted[i], sorted[j]) })
	rank := make(map[uint32]int, len(sorted))
	for i, s := range sorted {
		rank[s] = i
	}
	pos := make([]int, len(seqs))
	for i, s := range seqs {
		pos[i] = rank[s]
	}
	return pos
}
