package core

import (
	"sort"
	"time"
)

// GapSweepOptions configures Prober.GapSweep, the packaged form of the
// paper's §IV-C methodology: the dual connection test repeated across a
// schedule of inter-packet spacings, yielding the time-domain distribution
// of the path's reordering process.
type GapSweepOptions struct {
	// Gaps is the spacing schedule. Empty uses the paper's: 1µs steps
	// below 200µs, then 20µs steps to 500µs.
	Gaps []time.Duration
	// SamplesPerGap is the pair count per spacing (paper: 1000;
	// default 200).
	SamplesPerGap int
	// DCT carries through options for the underlying test (samples and
	// gap fields are overridden per point).
	DCT DCTOptions
}

func (o GapSweepOptions) defaults() GapSweepOptions {
	if len(o.Gaps) == 0 {
		for g := time.Duration(0); g < 200*time.Microsecond; g += time.Microsecond {
			o.Gaps = append(o.Gaps, g)
		}
		for g := 200 * time.Microsecond; g <= 500*time.Microsecond; g += 20 * time.Microsecond {
			o.Gaps = append(o.Gaps, g)
		}
	}
	if o.SamplesPerGap == 0 {
		o.SamplesPerGap = 200
	}
	return o
}

// GapRate is one spacing's measured reordering probability.
type GapRate struct {
	Gap     time.Duration
	Forward float64
	Reverse float64
	Valid   int
}

// GapDistribution is the measured time-domain distribution.
type GapDistribution struct {
	Points []GapRate
}

// ForwardAt interpolates (nearest-point) the forward rate at a gap.
func (d *GapDistribution) ForwardAt(gap time.Duration) float64 {
	if len(d.Points) == 0 {
		return 0
	}
	i := sort.Search(len(d.Points), func(i int) bool { return d.Points[i].Gap >= gap })
	if i == len(d.Points) {
		i--
	}
	if i > 0 && gap-d.Points[i-1].Gap < d.Points[i].Gap-gap {
		i--
	}
	return d.Points[i].Forward
}

// DecayGap returns the smallest measured spacing at which the forward rate
// stays at or below the threshold from there on — the answer to "how much
// pacing makes this path's reordering irrelevant to my protocol", the
// question §IV-C argues the distribution (and not a scalar rate) answers.
// ok is false if the rate never settles below the threshold.
func (d *GapDistribution) DecayGap(threshold float64) (time.Duration, bool) {
	for i := range d.Points {
		all := true
		for _, p := range d.Points[i:] {
			if p.Forward > threshold {
				all = false
				break
			}
		}
		if all {
			return d.Points[i].Gap, true
		}
	}
	return 0, false
}

// GapSweep measures the reordering probability as a function of the
// spacing between sample packets, using the dual connection test (whose
// acknowledgments are all immediate, so spacing is controlled precisely).
// The IPID prevalidation runs once, on the first point.
func (p *Prober) GapSweep(o GapSweepOptions) (*GapDistribution, error) {
	o = o.defaults()
	dist := &GapDistribution{}
	skipValidation := false
	for _, gap := range o.Gaps {
		opt := o.DCT
		opt.Samples = o.SamplesPerGap
		opt.Gap = gap
		opt.SkipValidation = skipValidation
		res, err := p.DualConnectionTest(opt)
		if err != nil {
			return nil, err
		}
		skipValidation = true // validated once; the host does not change mid-sweep
		f, r := res.Forward(), res.Reverse()
		dist.Points = append(dist.Points, GapRate{
			Gap: gap, Forward: f.Rate(), Reverse: r.Rate(), Valid: f.Valid(),
		})
	}
	sort.Slice(dist.Points, func(i, j int) bool { return dist.Points[i].Gap < dist.Points[j].Gap })
	return dist, nil
}
