// Package core implements the paper's contribution: active, single-ended
// measurement techniques that estimate one-way packet reordering rates in
// both directions between a probe host and an arbitrary TCP server, plus
// the packet-pair exchange metric and its parameterization by inter-packet
// gap (the time-domain distribution of §IV-C).
//
// Four techniques are provided, mirroring §III of the paper:
//
//   - SingleConnectionTest: sequence-hole preparation and straddling sample
//     packets on one established connection. Measures both directions; the
//     reversed-send variant sidesteps delayed acknowledgments.
//   - DualConnectionTest: out-of-window probes on two parallel connections,
//     using the remote host's IPID stream to recover receive order. Requires
//     ValidateIPID to pass; defeated by load balancers and random/zero IPIDs.
//   - SYNTest: paired SYNs differing only in sequence number, which per-flow
//     load balancers must deliver to the same backend.
//   - DataTransferTest: a clamped-MSS/window download measuring reverse-path
//     reordering only (the in-situ baseline the paper compares against).
//
// The Prober drives any Transport — the simulated network's probe NIC, or a
// raw-socket implementation on a live system — and returns per-sample
// verdicts plus the frame IDs needed to check results against ground-truth
// captures.
package core

import (
	"net/netip"
	"time"

	"reorder/internal/metrics"
	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/sim"
)

// Transport is the probe host's raw-packet interface (what sting obtained
// with packet filters and firewall rules). Implementations: the simulated
// probe NIC (internal/simnet) and the Linux raw-socket shim
// (internal/livewire).
type Transport interface {
	// LocalAddr is the probe's source address.
	LocalAddr() netip.Addr
	// Send injects one raw IPv4 datagram, returning an opaque frame ID
	// that ground-truth captures can key on (zero if untracked). The
	// transport must not retain data past the call (it copies if it needs
	// to): the prober reuses one encode buffer for every packet it sends.
	Send(data []byte) uint64
	// Recv returns the next datagram addressed to the probe and its frame
	// ID (zero if untracked), waiting up to timeout. ok is false on
	// timeout.
	Recv(timeout time.Duration) (data []byte, frameID uint64, ok bool)
	// Sleep advances time by d (virtual or real), used to space sample
	// packets by a configured gap.
	Sleep(d time.Duration)
	// Now returns the transport's notion of current time.
	Now() sim.Time
}

// FrameTransport is an optional Transport extension for wires that can
// carry datagrams in decoded form — the simulated probe NIC. When a
// transport implements it, the prober sends parsed headers instead of
// encoding wire bytes and consumes received frames' decoded views instead
// of re-decoding, eliminating the per-segment codec round trip entirely.
// Raw-socket transports (internal/livewire) simply don't implement it and
// keep the byte path.
type FrameTransport interface {
	Transport
	// SendView injects one IPv4+TCP datagram given as parsed headers plus
	// payload, returning the frame ID exactly as Send would for the
	// encoded equivalent. The transport copies what it keeps; the caller
	// may reuse ip, tcp and payload immediately.
	SendView(ip *packet.IPv4Header, tcp *packet.TCPHeader, payload []byte) uint64
	// RecvFrame is Recv returning the frame itself; a frame with an
	// attached view needs no decoding at all.
	RecvFrame(timeout time.Duration) (*netem.Frame, bool)
}

// Verdict classifies one direction of one sample.
type Verdict int

const (
	// VerdictUnknown means the test cannot speak to this direction (e.g.
	// the data transfer test's forward direction).
	VerdictUnknown Verdict = iota
	// VerdictInOrder means the pair was delivered in transmission order.
	VerdictInOrder
	// VerdictReordered means the pair was exchanged in flight.
	VerdictReordered
	// VerdictLost means a sample packet or reply was lost; the sample is
	// discarded from rate computations.
	VerdictLost
	// VerdictAmbiguous means the replies were inconsistent with any single
	// loss-free ordering (§III-B's "lone ack 4").
	VerdictAmbiguous
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictUnknown:
		return "unknown"
	case VerdictInOrder:
		return "in-order"
	case VerdictReordered:
		return "reordered"
	case VerdictLost:
		return "lost"
	case VerdictAmbiguous:
		return "ambiguous"
	default:
		return "invalid"
	}
}

// Valid reports whether the verdict contributes to a reordering rate.
func (v Verdict) Valid() bool { return v == VerdictInOrder || v == VerdictReordered }

// Sample is one packet-pair measurement.
type Sample struct {
	// Forward and Reverse are the per-direction classifications.
	Forward, Reverse Verdict
	// SentIDs are the frame IDs of the two sample packets in send order,
	// for ground-truth validation.
	SentIDs [2]uint64
	// ReplyIDs are the frame IDs of the two reply packets in arrival
	// order (zero when fewer than two replies arrived). Comparing their
	// order at the server-egress capture against this arrival order
	// yields reverse-path ground truth.
	ReplyIDs [2]uint64
	// Gap is the spacing inserted between the sample packets.
	Gap time.Duration
	// ReplyIPIDs are the IPIDs of the two replies in arrival order (dual
	// connection test only).
	ReplyIPIDs [2]uint16
	// RTT is the delay from sending the first sample packet to receiving
	// the first reply (zero when no reply arrived).
	RTT time.Duration
}

// DirCount aggregates one direction across samples.
type DirCount struct {
	InOrder, Reordered, Discarded int
}

// Valid returns the number of samples contributing to the rate.
func (d DirCount) Valid() int { return d.InOrder + d.Reordered }

// Rate returns the reordering probability estimate, or 0 if no sample was
// valid.
func (d DirCount) Rate() float64 {
	if d.Valid() == 0 {
		return 0
	}
	return float64(d.Reordered) / float64(d.Valid())
}

// Result is the outcome of one measurement (one run of one technique).
type Result struct {
	// Test names the technique ("single", "dual", "syn", "transfer").
	Test string
	// Target is the measured server address.
	Target netip.Addr
	// Samples holds the per-pair classifications.
	Samples []Sample
	// Arrivals, for the data transfer test only, holds the send positions
	// of the data segments in arrival order, ready for sequence-metric
	// analysis (SequenceMetrics).
	Arrivals []int
}

// Forward aggregates the forward-direction verdicts.
func (r *Result) Forward() DirCount { return r.count(func(s Sample) Verdict { return s.Forward }) }

// Reverse aggregates the reverse-direction verdicts.
func (r *Result) Reverse() DirCount { return r.count(func(s Sample) Verdict { return s.Reverse }) }

func (r *Result) count(dir func(Sample) Verdict) DirCount {
	var d DirCount
	for _, s := range r.Samples {
		switch dir(s) {
		case VerdictInOrder:
			d.InOrder++
		case VerdictReordered:
			d.Reordered++
		case VerdictLost, VerdictAmbiguous:
			d.Discarded++
		}
	}
	return d
}

// SequenceMetrics analyzes the transfer test's arrival sequence with the
// IPPM-style metrics (reordered ratio, extents, n-reordering). It returns
// nil for tests that do not produce an arrival sequence.
func (r *Result) SequenceMetrics() *metrics.Report {
	if len(r.Arrivals) == 0 {
		return nil
	}
	return metrics.Analyze(r.Arrivals)
}

// MeanRTT returns the mean round-trip time over samples that measured one.
func (r *Result) MeanRTT() time.Duration {
	var sum time.Duration
	n := 0
	for _, s := range r.Samples {
		if s.RTT > 0 {
			sum += s.RTT
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// AnyReordering reports whether any valid sample in either direction was
// reordered (the "measurements with at least one reordered sample" statistic
// of §IV-B).
func (r *Result) AnyReordering() bool {
	for _, s := range r.Samples {
		if s.Forward == VerdictReordered || s.Reverse == VerdictReordered {
			return true
		}
	}
	return false
}
