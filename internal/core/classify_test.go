package core

import (
	"net/netip"
	"testing"

	"reorder/internal/packet"
)

// White-box tests of the acknowledgment-pattern classifiers, enumerating
// the full decision tables of §III-B and §III-D including the ambiguous
// and lossy corners that are hard to provoke through the simulator.

func TestClassifySCTTable(t *testing.T) {
	const b = 1000
	cases := []struct {
		name     string
		acks     []uint32
		reversed bool
		fwd, rev Verdict
	}{
		{"normal in-order", []uint32{b + 2, b + 3}, false, VerdictInOrder, VerdictInOrder},
		{"normal reordered", []uint32{b, b + 3}, false, VerdictReordered, VerdictInOrder},
		{"normal acks swapped, in-order fwd", []uint32{b + 3, b + 2}, false, VerdictInOrder, VerdictReordered},
		{"normal acks swapped, reordered fwd", []uint32{b + 3, b}, false, VerdictReordered, VerdictReordered},
		{"reversed in-order", []uint32{b, b + 3}, true, VerdictInOrder, VerdictInOrder},
		{"reversed reordered", []uint32{b + 2, b + 3}, true, VerdictReordered, VerdictInOrder},
		{"reversed acks swapped", []uint32{b + 3, b}, true, VerdictInOrder, VerdictReordered},
		{"lone full ack (paper's lone ack 4)", []uint32{b + 3}, false, VerdictAmbiguous, VerdictLost},
		{"lone mid ack discarded", []uint32{b + 2}, false, VerdictLost, VerdictLost},
		{"lone dup ack discarded", []uint32{b}, false, VerdictLost, VerdictLost},
		{"no acks", nil, false, VerdictLost, VerdictLost},
		{"two garbage acks", []uint32{b + 9, b + 7}, false, VerdictAmbiguous, VerdictAmbiguous},
		{"duplicate full acks", []uint32{b + 3, b + 3}, false, VerdictAmbiguous, VerdictAmbiguous},
		{"garbage mid with full", []uint32{b + 1, b + 3}, false, VerdictAmbiguous, VerdictInOrder},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fwd, rev := classifySCT(c.acks, b, c.reversed)
			if fwd != c.fwd || rev != c.rev {
				t.Errorf("classifySCT(%v, reversed=%v) = %v,%v; want %v,%v",
					c.acks, c.reversed, fwd, rev, c.fwd, c.rev)
			}
		})
	}
}

func TestClassifySCTSequenceWraparound(t *testing.T) {
	// The hole straddles the 2^32 boundary: b = 0xffffffff, so b+2 and
	// b+3 wrap. The classifier compares exact values, which wrap the same
	// way.
	b := uint32(0xffffffff)
	fwd, rev := classifySCT([]uint32{b + 2, b + 3}, b, false)
	if fwd != VerdictInOrder || rev != VerdictInOrder {
		t.Fatalf("wraparound in-order: %v,%v", fwd, rev)
	}
	fwd, rev = classifySCT([]uint32{b + 3, b}, b, false)
	if fwd != VerdictReordered || rev != VerdictReordered {
		t.Fatalf("wraparound swapped: %v,%v", fwd, rev)
	}
}

func mkReply(t *testing.T, flags uint8, seq, ack uint32) *packet.Packet {
	t.Helper()
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: netip.AddrFrom4([4]byte{10, 0, 1, 1}), Dst: netip.AddrFrom4([4]byte{10, 0, 0, 1})},
		&packet.TCPHeader{SrcPort: 80, DstPort: 40000, Seq: seq, Ack: ack, Flags: flags}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClassifySYNTable(t *testing.T) {
	const seq1, seq2 = 5000, 5064
	synAck1 := func(t *testing.T) *packet.Packet {
		return mkReply(t, packet.FlagSYN|packet.FlagACK, 777, seq1+1)
	}
	synAck2 := func(t *testing.T) *packet.Packet {
		return mkReply(t, packet.FlagSYN|packet.FlagACK, 777, seq2+1)
	}
	rst := func(t *testing.T) *packet.Packet {
		return mkReply(t, packet.FlagRST|packet.FlagACK, 0, seq2+1)
	}
	challenge := func(t *testing.T) *packet.Packet {
		return mkReply(t, packet.FlagACK, 778, seq1+1)
	}

	cases := []struct {
		name     string
		replies  []*packet.Packet
		fwd, rev Verdict
	}{
		{"in-order, synack first", []*packet.Packet{synAck1(t), rst(t)}, VerdictInOrder, VerdictInOrder},
		{"in-order, replies swapped", []*packet.Packet{rst(t), synAck1(t)}, VerdictInOrder, VerdictReordered},
		{"SYNs reordered", []*packet.Packet{synAck2(t), rst(t)}, VerdictReordered, VerdictInOrder},
		{"SYNs and replies reordered", []*packet.Packet{rst(t), synAck2(t)}, VerdictReordered, VerdictReordered},
		{"per-spec challenge ack second", []*packet.Packet{synAck1(t), challenge(t)}, VerdictInOrder, VerdictInOrder},
		{"ignore policy: one reply", []*packet.Packet{synAck1(t)}, VerdictInOrder, VerdictLost},
		{"only a RST (no synack)", []*packet.Packet{rst(t)}, VerdictLost, VerdictLost},
		{"nothing", nil, VerdictLost, VerdictLost},
		{"weird ack number", []*packet.Packet{mkReply(t, packet.FlagSYN|packet.FlagACK, 777, 9), rst(t)}, VerdictAmbiguous, VerdictInOrder},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fwd, rev := classifySYN(c.replies, seq1, seq2)
			if fwd != c.fwd || rev != c.rev {
				t.Errorf("= %v,%v; want %v,%v", fwd, rev, c.fwd, c.rev)
			}
		})
	}
}

func TestIPIDRanks(t *testing.T) {
	acks := []ackRec{{pos: 0, ipid: 100}, {pos: 1, ipid: 50}, {pos: 2, ipid: 75}}
	ranks := ipidRanks(acks)
	want := []int{2, 0, 1}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestIPIDRanksWraparound(t *testing.T) {
	// 0xfffe < 0xffff < 1 in wrap-aware IPID order.
	acks := []ackRec{{pos: 0, ipid: 1}, {pos: 1, ipid: 0xfffe}, {pos: 2, ipid: 0xffff}}
	ranks := ipidRanks(acks)
	want := []int{2, 0, 1}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestProberPortAllocationWraps(t *testing.T) {
	p := &Prober{nextPort: 0xffff}
	if p.allocPort() != 0xffff {
		t.Fatal("first port wrong")
	}
	if next := p.allocPort(); next < 40000 {
		t.Fatalf("port after wrap = %d, must re-enter ephemeral range", next)
	}
}
