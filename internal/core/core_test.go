package core_test

import (
	"errors"
	"testing"
	"time"

	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/simnet"
)

// newProber builds a scenario and a prober over it.
func newProber(cfg simnet.Config) (*core.Prober, *simnet.Net) {
	n := simnet.New(cfg)
	return core.NewProber(n.Probe(), n.ServerAddr(), cfg.Seed+1), n
}

func TestVerdictStrings(t *testing.T) {
	want := map[core.Verdict]string{
		core.VerdictUnknown: "unknown", core.VerdictInOrder: "in-order",
		core.VerdictReordered: "reordered", core.VerdictLost: "lost",
		core.VerdictAmbiguous: "ambiguous", core.Verdict(42): "invalid",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("Verdict(%d).String() = %q, want %q", v, v.String(), s)
		}
	}
	if core.VerdictLost.Valid() || !core.VerdictInOrder.Valid() || !core.VerdictReordered.Valid() {
		t.Error("Valid() wrong")
	}
}

func TestDirCount(t *testing.T) {
	d := core.DirCount{InOrder: 8, Reordered: 2, Discarded: 5}
	if d.Valid() != 10 || d.Rate() != 0.2 {
		t.Fatalf("Valid=%d Rate=%v", d.Valid(), d.Rate())
	}
	if (core.DirCount{}).Rate() != 0 {
		t.Fatal("empty rate should be 0")
	}
}

// --- Single Connection Test ---

func TestSCTCleanPath(t *testing.T) {
	for _, reversed := range []bool{false, true} {
		p, _ := newProber(simnet.Config{Seed: 10, Server: host.FreeBSD4()})
		res, err := p.SingleConnectionTest(core.SCTOptions{Samples: 10, Reversed: reversed})
		if err != nil {
			t.Fatalf("reversed=%v: %v", reversed, err)
		}
		f, r := res.Forward(), res.Reverse()
		if f.Valid() != 10 || f.Reordered != 0 {
			t.Errorf("reversed=%v forward: %+v, want 10 in-order", reversed, f)
		}
		if r.Valid() != 10 || r.Reordered != 0 {
			t.Errorf("reversed=%v reverse: %+v, want 10 in-order", reversed, r)
		}
		if res.AnyReordering() {
			t.Errorf("reversed=%v: AnyReordering on a clean path", reversed)
		}
	}
}

func TestSCTAlwaysSwappedForward(t *testing.T) {
	p, n := newProber(simnet.Config{
		Seed: 11, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{SwapProb: 1.0},
	})
	res, err := p.SingleConnectionTest(core.SCTOptions{Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forward()
	if f.Reordered != 8 {
		t.Fatalf("forward: %+v, want 8 reordered", f)
	}
	// Every verdict must agree with the ground-truth capture.
	for i, s := range res.Samples {
		ex, ok := n.HostIngress.Exchanged(s.SentIDs[0], s.SentIDs[1])
		if !ok {
			t.Fatalf("sample %d not in ground truth", i)
		}
		if ex != (s.Forward == core.VerdictReordered) {
			t.Fatalf("sample %d: verdict %v, ground truth exchanged=%v", i, s.Forward, ex)
		}
	}
}

func TestSCTReverseSwapDetectedInReversedMode(t *testing.T) {
	// In reversed mode both acknowledgments are immediate, so a reverse-
	// path swapper acting on the back-to-back ACK pair is observable.
	p, _ := newProber(simnet.Config{
		Seed: 12, Server: host.FreeBSD4(),
		Reverse: simnet.PathSpec{SwapProb: 1.0},
	})
	res, err := p.SingleConnectionTest(core.SCTOptions{Samples: 8, Reversed: true})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Reverse()
	if r.Reordered < 6 {
		t.Fatalf("reverse: %+v, want mostly reordered", r)
	}
	// Forward direction must still read in-order.
	f := res.Forward()
	if f.Reordered != 0 {
		t.Fatalf("forward: %+v, want none reordered", f)
	}
}

func TestSCTSurvivesLoss(t *testing.T) {
	p, _ := newProber(simnet.Config{
		Seed: 13, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{Loss: 0.10},
		Reverse: simnet.PathSpec{Loss: 0.10},
	})
	res, err := p.SingleConnectionTest(core.SCTOptions{Samples: 15, ReplyTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 15 {
		t.Fatalf("got %d samples", len(res.Samples))
	}
	// Under loss some samples discard, but valid ones must dominate and
	// none may read reordered on a swap-free path.
	f := res.Forward()
	if f.Reordered != 0 {
		t.Fatalf("loss misread as reordering: %+v", f)
	}
	if f.Valid() < 8 {
		t.Fatalf("only %d valid samples under 10%% loss", f.Valid())
	}
}

func TestSCTStatisticalRate(t *testing.T) {
	// A 20% forward swapper should measure out near 20%.
	p, _ := newProber(simnet.Config{
		Seed: 14, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{SwapProb: 0.20},
	})
	res, err := p.SingleConnectionTest(core.SCTOptions{Samples: 200})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forward()
	if rate := f.Rate(); rate < 0.12 || rate > 0.28 {
		t.Fatalf("measured %.3f, want ≈0.20 (%+v)", rate, f)
	}
}

func TestSCTDelayedAckStack(t *testing.T) {
	// The spec-following stack delays ACKs up to 500ms; normal-order SCT
	// still works because hole-fill ACKs are immediate and the reply
	// timeout covers the delayed final ACK.
	p, _ := newProber(simnet.Config{Seed: 15, Server: host.SpecStack()})
	res, err := p.SingleConnectionTest(core.SCTOptions{Samples: 6})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forward()
	if f.Valid() != 6 || f.Reordered != 0 {
		t.Fatalf("forward: %+v", f)
	}
}

func TestSCTHandshakeFailure(t *testing.T) {
	p, _ := newProber(simnet.Config{Seed: 16, Server: host.FreeBSD4()})
	_, err := p.SingleConnectionTest(core.SCTOptions{Samples: 1, Port: 4444, ReplyTimeout: 50 * time.Millisecond})
	if !errors.Is(err, core.ErrHandshake) {
		t.Fatalf("err = %v, want ErrHandshake", err)
	}
}

// --- Dual Connection Test ---

func TestDCTCleanPath(t *testing.T) {
	p, _ := newProber(simnet.Config{Seed: 20, Server: host.FreeBSD4()})
	res, err := p.DualConnectionTest(core.DCTOptions{Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	f, r := res.Forward(), res.Reverse()
	if f.Valid() != 10 || f.Reordered != 0 || r.Reordered != 0 {
		t.Fatalf("forward %+v reverse %+v", f, r)
	}
}

func TestDCTForwardSwap(t *testing.T) {
	p, n := newProber(simnet.Config{
		Seed: 21, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{SwapProb: 1.0},
	})
	res, err := p.DualConnectionTest(core.DCTOptions{Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forward()
	if f.Reordered != 8 {
		t.Fatalf("forward: %+v, want 8 reordered", f)
	}
	for i, s := range res.Samples {
		ex, ok := n.HostIngress.Exchanged(s.SentIDs[0], s.SentIDs[1])
		if !ok || ex != (s.Forward == core.VerdictReordered) {
			t.Fatalf("sample %d: verdict %v vs ground truth %v (ok=%v)", i, s.Forward, ex, ok)
		}
	}
}

func TestDCTReverseSwap(t *testing.T) {
	p, _ := newProber(simnet.Config{
		Seed: 22, Server: host.FreeBSD4(),
		Reverse: simnet.PathSpec{SwapProb: 1.0},
	})
	res, err := p.DualConnectionTest(core.DCTOptions{Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Reverse()
	if r.Reordered != 8 {
		t.Fatalf("reverse: %+v, want 8 reordered", r)
	}
	// DCT's IPID logic must keep forward clean despite reverse swaps.
	if f := res.Forward(); f.Reordered != 0 {
		t.Fatalf("forward: %+v, want 0 reordered", f)
	}
}

func TestDCTRejectsZeroIPID(t *testing.T) {
	p, _ := newProber(simnet.Config{Seed: 23, Server: host.Linux24()})
	_, err := p.DualConnectionTest(core.DCTOptions{Samples: 5})
	if !errors.Is(err, core.ErrIPIDUnusable) {
		t.Fatalf("err = %v, want ErrIPIDUnusable (Linux 2.4 zero IPID)", err)
	}
}

func TestDCTRejectsRandomIPID(t *testing.T) {
	p, _ := newProber(simnet.Config{Seed: 24, Server: host.OpenBSD3()})
	_, err := p.DualConnectionTest(core.DCTOptions{Samples: 5})
	if !errors.Is(err, core.ErrIPIDUnusable) {
		t.Fatalf("err = %v, want ErrIPIDUnusable (OpenBSD random IPID)", err)
	}
}

func TestDCTAcceptsPerDestinationIPID(t *testing.T) {
	// Solaris-style per-destination counters look monotonic from one
	// vantage point; the paper's footnote says they are fine.
	p, _ := newProber(simnet.Config{Seed: 25, Server: host.Solaris8()})
	res, err := p.DualConnectionTest(core.DCTOptions{Samples: 6})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Forward(); f.Valid() != 6 {
		t.Fatalf("forward: %+v", f)
	}
}

func TestValidateIPIDStandalone(t *testing.T) {
	p, _ := newProber(simnet.Config{Seed: 26, Server: host.FreeBSD4()})
	rep, err := p.ValidateIPID(core.IPIDCheckOptions{Probes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Usable() || rep.Score != 1.0 {
		t.Fatalf("report: %+v", rep)
	}
}

// --- SYN Test ---

func TestSYNCleanPathAllPolicies(t *testing.T) {
	profiles := []host.Profile{host.FreeBSD4(), host.SpecStack(), host.DualRSTStack()}
	for _, prof := range profiles {
		p, _ := newProber(simnet.Config{Seed: 30, Server: prof})
		res, err := p.SYNTest(core.SYNOptions{Samples: 8})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		f, r := res.Forward(), res.Reverse()
		if f.Valid() != 8 || f.Reordered != 0 {
			t.Errorf("%s forward: %+v", prof.Name, f)
		}
		if r.Valid() != 8 || r.Reordered != 0 {
			t.Errorf("%s reverse: %+v", prof.Name, r)
		}
	}
}

func TestSYNIgnorePolicyForwardOnly(t *testing.T) {
	prof := host.FreeBSD4()
	prof.TCP.SYNPolicy = 3 // tcpstack.SYNPolicyIgnore
	p, _ := newProber(simnet.Config{Seed: 31, Server: prof})
	res, err := p.SYNTest(core.SYNOptions{Samples: 5, ReplyTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	f, r := res.Forward(), res.Reverse()
	if f.Valid() != 5 {
		t.Fatalf("forward should still classify from the SYN/ACK: %+v", f)
	}
	if r.Valid() != 0 {
		t.Fatalf("reverse should be unmeasurable with one reply: %+v", r)
	}
}

func TestSYNForwardSwap(t *testing.T) {
	p, n := newProber(simnet.Config{
		Seed: 32, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{SwapProb: 1.0},
	})
	res, err := p.SYNTest(core.SYNOptions{Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forward()
	if f.Reordered != 8 {
		t.Fatalf("forward: %+v, want 8 reordered", f)
	}
	for i, s := range res.Samples {
		ex, ok := n.HostIngress.Exchanged(s.SentIDs[0], s.SentIDs[1])
		if !ok || !ex {
			t.Fatalf("sample %d ground truth: exchanged=%v ok=%v", i, ex, ok)
		}
	}
}

func TestSYNReverseSwap(t *testing.T) {
	p, _ := newProber(simnet.Config{
		Seed: 33, Server: host.FreeBSD4(),
		Reverse: simnet.PathSpec{SwapProb: 1.0},
	})
	res, err := p.SYNTest(core.SYNOptions{Samples: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Reverse()
	if r.Reordered != 8 {
		t.Fatalf("reverse: %+v, want 8 reordered", r)
	}
	if f := res.Forward(); f.Reordered != 0 {
		t.Fatalf("forward polluted: %+v", f)
	}
}

func TestSYNWorksBehindLoadBalancer(t *testing.T) {
	// The decisive property (§III-D): the SYN test functions where the
	// dual connection test is invalid.
	cfg := simnet.Config{
		Seed: 34,
		Backends: []host.Profile{
			host.FreeBSD4(), host.Linux22(), host.Windows2000(), host.FreeBSD4(),
			host.Linux22(), host.Windows2000(), host.FreeBSD4(), host.Linux22(),
		},
		LBMode: netem.HashFourTuple,
	}
	p, _ := newProber(cfg)
	res, err := p.SYNTest(core.SYNOptions{Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forward()
	if f.Valid() != 10 || f.Reordered != 0 {
		t.Fatalf("forward through LB: %+v", f)
	}
}

func TestSYNLeavesNoServerState(t *testing.T) {
	// Etiquette: after the test every backend connection should be torn
	// down (completed then reset), not left half-open.
	n := simnet.New(simnet.Config{Seed: 35, Server: host.FreeBSD4()})
	p := core.NewProber(n.Probe(), n.ServerAddr(), 36)
	if _, err := p.SYNTest(core.SYNOptions{Samples: 6}); err != nil {
		t.Fatal(err)
	}
	n.Probe().Sleep(2 * time.Second) // let RSTs land
	if got := n.Hosts[0].Stack.Conns(); got != 0 {
		t.Fatalf("%d half-open connections left on the server", got)
	}
}

// --- Data Transfer Test ---

func TestTransferCleanPath(t *testing.T) {
	prof := host.FreeBSD4()
	prof.TCP.ObjectSize = 8 << 10
	p, _ := newProber(simnet.Config{Seed: 40, Server: prof})
	res, err := p.DataTransferTest(core.TransferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Reverse()
	// 8 KiB at MSS 256 = 32 segments = 31 adjacent pairs.
	if r.Valid() != 31 {
		t.Fatalf("samples: %+v, want 31 pairs", r)
	}
	if r.Reordered != 0 {
		t.Fatalf("clean path read reordered: %+v", r)
	}
	for _, s := range res.Samples {
		if s.Forward != core.VerdictUnknown {
			t.Fatal("transfer test cannot know the forward direction")
		}
	}
}

func TestTransferDetectsReverseReordering(t *testing.T) {
	prof := host.FreeBSD4()
	prof.TCP.ObjectSize = 16 << 10
	p, _ := newProber(simnet.Config{
		Seed: 41, Server: prof,
		Reverse: simnet.PathSpec{SwapProb: 0.25},
	})
	res, err := p.DataTransferTest(core.TransferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Reverse()
	if rate := r.Rate(); rate < 0.10 || rate > 0.40 {
		t.Fatalf("measured %.3f, want ≈0.25 (%+v)", rate, r)
	}
}

func TestTransferNoServer(t *testing.T) {
	prof := host.FreeBSD4()
	prof.Ports = nil // nothing listening
	prof.TCP.SilentClosedPorts = true
	p, _ := newProber(simnet.Config{Seed: 42, Server: prof})
	_, err := p.DataTransferTest(core.TransferOptions{IdleTimeout: 100 * time.Millisecond})
	if !errors.Is(err, core.ErrHandshake) {
		t.Fatalf("err = %v, want ErrHandshake", err)
	}
}

func TestTransferSurvivesLoss(t *testing.T) {
	// With holes ACKed over (largest-seen policy) the transfer proceeds
	// despite loss and never misreads loss as reordering.
	prof := host.FreeBSD4()
	prof.TCP.ObjectSize = 8 << 10
	p, _ := newProber(simnet.Config{
		Seed: 43, Server: prof,
		Reverse: simnet.PathSpec{Loss: 0.05},
	})
	res, err := p.DataTransferTest(core.TransferOptions{IdleTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Reverse()
	if r.Valid() < 20 {
		t.Fatalf("too few samples under 5%% loss: %+v", r)
	}
	if r.Rate() > 0.05 {
		t.Fatalf("loss misread as reordering: %+v", r)
	}
}

// --- Cross-test gap parameterization (the §IV-C mechanism) ---

func TestGapReducesTrunkReordering(t *testing.T) {
	trunk := &netem.TrunkConfig{FanOut: 2, RateBps: 1_000_000_000, BurstProb: 0.35, MeanBurstBytes: 2500}
	rate := func(gap time.Duration) float64 {
		p, _ := newProber(simnet.Config{
			Seed: 50, Server: host.FreeBSD4(),
			Forward: simnet.PathSpec{Trunk: trunk},
		})
		res, err := p.DualConnectionTest(core.DCTOptions{Samples: 300, Gap: gap})
		if err != nil {
			t.Fatal(err)
		}
		return res.Forward().Rate()
	}
	r0 := rate(0)
	r250 := rate(250 * time.Microsecond)
	if r0 < 0.05 {
		t.Fatalf("back-to-back rate %.3f, want >= 0.05", r0)
	}
	if r250 > r0/3 {
		t.Fatalf("gap did not suppress reordering: r0=%.3f r250=%.3f", r0, r250)
	}
}

// --- Fragmentation interaction (§III-A: what IPID is actually for) ---

func TestTransferAcrossFragmentingPath(t *testing.T) {
	// A pre-PMTUD server sends 1040-byte datagrams through a 576-byte MTU
	// hop whose fragments are then swapped in flight. IPID-keyed
	// reassembly at the probe must still reconstruct every segment, and
	// the transfer test must keep functioning.
	prof := host.FreeBSD4()
	prof.TCP.ObjectSize = 16 << 10
	prof.TCP.DisablePMTUD = true
	p, _ := newProber(simnet.Config{
		Seed: 70, Server: prof,
		Reverse: simnet.PathSpec{MTU: 576, SwapProb: 0.3},
	})
	res, err := p.DataTransferTest(core.TransferOptions{MSS: 1000, Window: 4000})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Reverse()
	// 16 KiB at MSS 1000 = 17 segments = 16 pairs; allow a little slack
	// for delack/ack interleaving but demand substantially all data.
	if r.Valid() < 14 {
		t.Fatalf("only %d valid pairs across fragmenting path: %+v", r.Valid(), r)
	}
}

func TestPMTUDBlackholesOversizedData(t *testing.T) {
	// The same path with PMTUD left on: the server's DF packets exceed
	// the MTU and are dropped at the fragmenting hop — a classic PMTUD
	// black hole (no ICMP in this substrate), so the transfer yields no
	// data at all.
	prof := host.FreeBSD4()
	prof.TCP.ObjectSize = 16 << 10
	p, _ := newProber(simnet.Config{
		Seed: 71, Server: prof,
		Reverse: simnet.PathSpec{MTU: 576},
	})
	_, err := p.DataTransferTest(core.TransferOptions{MSS: 1000, Window: 4000, IdleTimeout: 300 * time.Millisecond})
	if !errors.Is(err, core.ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData (PMTUD black hole)", err)
	}
}

func TestSCTUnaffectedByMTU(t *testing.T) {
	// Minimum-sized probe packets fit any MTU: the active tests work
	// through constrained paths where bulk transfer breaks.
	p, _ := newProber(simnet.Config{
		Seed:    72,
		Server:  host.FreeBSD4(),
		Forward: simnet.PathSpec{MTU: 576},
		Reverse: simnet.PathSpec{MTU: 576},
	})
	res, err := p.SingleConnectionTest(core.SCTOptions{Samples: 6, Reversed: true})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Forward(); f.Valid() != 6 {
		t.Fatalf("forward: %+v", f)
	}
}

func TestSampleRTTMeasured(t *testing.T) {
	// Default paths: 5ms propagation each way plus serialization; every
	// technique's RTT must land near 10ms.
	for _, tc := range []string{"single", "dual", "syn"} {
		p, _ := newProber(simnet.Config{Seed: 80, Server: host.FreeBSD4()})
		var res *core.Result
		var err error
		switch tc {
		case "single":
			res, err = p.SingleConnectionTest(core.SCTOptions{Samples: 5, Reversed: true})
		case "dual":
			res, err = p.DualConnectionTest(core.DCTOptions{Samples: 5})
		case "syn":
			res, err = p.SYNTest(core.SYNOptions{Samples: 5})
		}
		if err != nil {
			t.Fatalf("%s: %v", tc, err)
		}
		rtt := res.MeanRTT()
		if rtt < 10*time.Millisecond || rtt > 12*time.Millisecond {
			t.Errorf("%s MeanRTT = %v, want ≈10ms", tc, rtt)
		}
	}
}

func TestMeanRTTEmptyResult(t *testing.T) {
	if (&core.Result{}).MeanRTT() != 0 {
		t.Fatal("empty result RTT should be 0")
	}
}

// --- DiffServ cross-class reordering (the remaining §V cause) ---

func TestSCTDiffServMixedMarkings(t *testing.T) {
	// A strict-priority hop at 8 Mbps behind a 100 Mbps access link. A
	// 1500-byte primer occupies the scheduler; the first sample (best
	// effort) queues behind it while the second (expedited TOS 0x10)
	// overtakes — reordering measurable only with mixed markings.
	path := simnet.PathSpec{
		LinkRate: 100_000_000,
		Priority: &netem.PriorityConfig{RateBps: 8_000_000},
	}
	run := func(tos [2]uint8) float64 {
		p, _ := newProber(simnet.Config{Seed: 85, Server: host.FreeBSD4(), Forward: path})
		res, err := p.SingleConnectionTest(core.SCTOptions{
			Samples: 10, Reversed: true, SampleTOS: tos, PrimerBytes: 1500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Forward().Rate()
	}
	mixed := run([2]uint8{0, 0x10}) // first best-effort, second expedited
	uniform := run([2]uint8{0, 0})  // single class
	if mixed < 0.9 {
		t.Errorf("mixed-marking reordering = %.2f, want ≈1 (expedited overtakes)", mixed)
	}
	if uniform != 0 {
		t.Errorf("uniform-marking reordering = %.2f, want 0 (FIFO within class)", uniform)
	}
}

func TestSCTPrimerDoesNotPolluteClassification(t *testing.T) {
	// The primer's RST (if any) arrives on a different port pair and must
	// not be mistaken for a sample acknowledgment.
	p, _ := newProber(simnet.Config{Seed: 86, Server: host.FreeBSD4()})
	res, err := p.SingleConnectionTest(core.SCTOptions{Samples: 8, Reversed: true, PrimerBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forward()
	if f.Valid() != 8 || f.Reordered != 0 {
		t.Fatalf("forward with primer: %+v", f)
	}
}

func TestTransferSequenceMetrics(t *testing.T) {
	prof := host.FreeBSD4()
	prof.TCP.ObjectSize = 16 << 10
	p, _ := newProber(simnet.Config{
		Seed: 90, Server: prof,
		Reverse: simnet.PathSpec{SwapProb: 0.25},
	})
	res, err := p.DataTransferTest(core.TransferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.SequenceMetrics()
	if rep == nil {
		t.Fatal("transfer produced no sequence metrics")
	}
	if rep.Received != 64 {
		t.Fatalf("Received = %d, want 64 segments", rep.Received)
	}
	if rep.Reordered == 0 {
		t.Fatal("swapped path produced no reordered packets")
	}
	// Adjacent swaps only: all extents are 1, no spurious fast retransmits.
	if rep.MaxExtent() != 1 || rep.SpuriousFastRetransmits(3) != 0 {
		t.Fatalf("extents = max %d, n-reordering %v", rep.MaxExtent(), rep.NReordering)
	}
	// The exchange counts must agree between the two analyses.
	if rep.Exchanges != res.Reverse().Reordered {
		t.Fatalf("metric exchanges %d != verdict count %d", rep.Exchanges, res.Reverse().Reordered)
	}
	// Non-transfer results have no sequence metrics.
	sct, err := p.SingleConnectionTest(core.SCTOptions{Samples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sct.SequenceMetrics() != nil {
		t.Fatal("SCT result has sequence metrics")
	}
}

// --- Public gap-sweep API (§IV-C packaged) ---

func TestGapSweepAPI(t *testing.T) {
	trunk := &netem.TrunkConfig{FanOut: 2, RateBps: 1_000_000_000, BurstProb: 0.2, MeanBurstBytes: 2500}
	p, _ := newProber(simnet.Config{
		Seed: 95, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{LinkRate: 1_000_000_000, Trunk: trunk},
	})
	dist, err := p.GapSweep(core.GapSweepOptions{
		Gaps:          []time.Duration{0, 50 * time.Microsecond, 150 * time.Microsecond, 300 * time.Microsecond},
		SamplesPerGap: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Points) != 4 {
		t.Fatalf("points = %d", len(dist.Points))
	}
	if r0 := dist.ForwardAt(0); r0 < 0.05 {
		t.Errorf("rate at 0 = %.4f", r0)
	}
	if r300 := dist.ForwardAt(300 * time.Microsecond); r300 > 0.01 {
		t.Errorf("rate at 300µs = %.4f", r300)
	}
	// Nearest-point lookup between measured gaps.
	if dist.ForwardAt(40*time.Microsecond) != dist.Points[1].Forward {
		t.Error("ForwardAt nearest-point lookup wrong")
	}
	gap, ok := dist.DecayGap(0.02)
	if !ok {
		t.Fatal("decay gap not found")
	}
	if gap > 300*time.Microsecond {
		t.Errorf("DecayGap = %v, want <= 300µs", gap)
	}
}

func TestGapSweepRejectsBadHosts(t *testing.T) {
	p, _ := newProber(simnet.Config{Seed: 96, Server: host.OpenBSD3()})
	_, err := p.GapSweep(core.GapSweepOptions{Gaps: []time.Duration{0}, SamplesPerGap: 5})
	if !errors.Is(err, core.ErrIPIDUnusable) {
		t.Fatalf("err = %v, want ErrIPIDUnusable", err)
	}
}

func TestGapSweepDefaultSchedule(t *testing.T) {
	o := core.GapSweepOptions{}
	// The defaults are applied inside GapSweep; probe them via a tiny
	// clean-path sweep using an explicit schedule equal to the paper's
	// bounds to keep the test fast.
	p, _ := newProber(simnet.Config{Seed: 97, Server: host.FreeBSD4()})
	dist, err := p.GapSweep(core.GapSweepOptions{
		Gaps: []time.Duration{0, 500 * time.Microsecond}, SamplesPerGap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dist.Points[0].Forward != 0 {
		t.Error("clean path measured reordering")
	}
	if _, ok := dist.DecayGap(0.0); !ok {
		t.Error("clean path has no decay gap")
	}
	_ = o
}
