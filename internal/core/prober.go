package core

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"reorder/internal/ipid"
	"reorder/internal/packet"
	"reorder/internal/sim"
)

// Errors returned by the measurement techniques.
var (
	// ErrHandshake means the target did not complete a TCP handshake.
	ErrHandshake = errors.New("core: handshake with target failed")
	// ErrIPIDUnusable means IPID prevalidation rejected the target for the
	// dual connection test (random, constant, or split counters).
	ErrIPIDUnusable = errors.New("core: target IPID stream unusable for dual connection test")
	// ErrNoData means the data transfer test received no data at all.
	ErrNoData = errors.New("core: target served no data")
)

// Prober runs measurement techniques against one target over a Transport.
// It is not safe for concurrent use; run one test at a time.
type Prober struct {
	tp     Transport
	ftp    FrameTransport // non-nil when tp carries decoded frames
	target netip.Addr
	rng    *sim.Rand

	nextPort uint16
	buf      []rx // received packets not yet claimed by a waiter

	// Steady-state scratch. encBuf is the single outgoing wire buffer
	// (Transport.Send does not retain it); pktPool recycles decoded
	// packets — awaitTCP checks one out, the consuming site returns it
	// with release; acksBuf/ackIDs back collectAcks.
	encBuf     []byte
	txHdr      packet.TCPHeader
	txIP       packet.IPv4Header
	pktPool    []*packet.Packet
	connPool   []*conn
	acksBuf    []uint32
	ackIDs     []uint64
	synReplies []*packet.Packet
	obsScratch []ipid.Observation
}

// rx pairs a decoded packet with its network frame ID.
type rx struct {
	pkt *packet.Packet
	id  uint64
}

// maxBufferedPackets bounds the unclaimed-packet buffer; beyond it the
// oldest packets are dropped, as a kernel socket buffer would.
const maxBufferedPackets = 256

// NewProber returns a prober for the given target. The seed drives port and
// ISN selection, making simulated runs reproducible.
func NewProber(tp Transport, target netip.Addr, seed uint64) *Prober {
	p := &Prober{
		tp:     tp,
		target: target,
		rng:    sim.NewRand(seed, 0x9b0be),
		// Ephemeral range start; advanced per connection.
		nextPort: 40000,
	}
	p.ftp, _ = tp.(FrameTransport)
	return p
}

// Target returns the probed address.
func (p *Prober) Target() netip.Addr { return p.target }

// Reset returns the prober to the state NewProber(tp, target, seed) would
// produce on the same transport and target, keeping its scratch storage.
// Campaign workers reuse one prober per scenario arena this way.
func (p *Prober) Reset(seed uint64) {
	p.rng.Reseed(seed, 0x9b0be)
	p.nextPort = 40000
	for _, q := range p.buf {
		p.release(q.pkt)
	}
	p.buf = p.buf[:0]
}

// getPkt checks a decoded-packet cell out of the pool.
func (p *Prober) getPkt() *packet.Packet {
	if n := len(p.pktPool); n > 0 {
		q := p.pktPool[n-1]
		p.pktPool = p.pktPool[:n-1]
		return q
	}
	return new(packet.Packet)
}

// release returns a packet obtained from awaitTCP (or buffered by it) to
// the pool. The caller must drop every reference to pkt and its fields
// first; the next decode overwrites them.
func (p *Prober) release(pkt *packet.Packet) {
	if pkt == nil {
		return
	}
	p.pktPool = append(p.pktPool, pkt)
}

func (p *Prober) allocPort() uint16 {
	port := p.nextPort
	p.nextPort++
	if p.nextPort < 40000 {
		p.nextPort = 40000
	}
	return port
}

// flushPort discards buffered packets belonging to the given local port,
// used between samples to keep stale replies from satisfying later waits.
func (p *Prober) flushPort(lport uint16) {
	kept := p.buf[:0]
	for _, q := range p.buf {
		if q.pkt.TCP != nil && q.pkt.TCP.DstPort == lport {
			p.release(q.pkt)
			continue
		}
		kept = append(kept, q)
	}
	p.buf = kept
}

// awaitTCP returns the first TCP packet from the target matching the
// predicate, with its frame ID, buffering non-matching packets for other
// waiters. The returned packet is checked out of the prober's pool; the
// consuming site must hand it back with release once done with it.
func (p *Prober) awaitTCP(timeout time.Duration, match func(*packet.Packet) bool) (*packet.Packet, uint64, bool) {
	for i, q := range p.buf {
		if match(q.pkt) {
			p.buf = append(p.buf[:i], p.buf[i+1:]...)
			return q.pkt, q.id, true
		}
	}
	deadline := p.tp.Now().Add(timeout)
	for {
		remaining := deadline.Sub(p.tp.Now())
		if remaining <= 0 {
			return nil, 0, false
		}
		pkt, id, ok := p.recvTCP(remaining)
		if !ok {
			return nil, 0, false
		}
		if pkt == nil {
			continue // not TCP, or corrupt
		}
		if pkt.IP.Dst != p.tp.LocalAddr() || pkt.IP.Src != p.target {
			p.release(pkt)
			continue
		}
		if match(pkt) {
			return pkt, id, true
		}
		if len(p.buf) >= maxBufferedPackets {
			p.release(p.buf[0].pkt)
			p.buf = p.buf[1:]
		}
		p.buf = append(p.buf, rx{pkt: pkt, id: id})
	}
}

// recvTCP pulls the next datagram off the transport as a decoded TCP
// packet from the prober's pool. On a frame transport the received frame's
// view is consumed directly — no decode, no checksum verification (views
// are valid by construction) — with DecodeInto reserved for byte-form
// frames. A nil packet with ok=true means the datagram was not a valid TCP
// segment and was dropped, as the decode path always did.
func (p *Prober) recvTCP(timeout time.Duration) (*packet.Packet, uint64, bool) {
	if p.ftp != nil {
		f, ok := p.ftp.RecvFrame(timeout)
		if !ok {
			return nil, 0, false
		}
		if v := f.View(); v != nil {
			if v.IP.Protocol != packet.ProtoTCP {
				return nil, 0, true
			}
			pkt := p.getPkt()
			v.ToPacket(pkt)
			return pkt, f.ID, true
		}
		return p.decodePooled(f.Data), f.ID, true
	}
	data, id, ok := p.tp.Recv(timeout)
	if !ok {
		return nil, 0, false
	}
	return p.decodePooled(data), id, true
}

// decodePooled decodes data into a pooled packet, returning nil (cell
// released) when the datagram is not a valid TCP segment.
func (p *Prober) decodePooled(data []byte) *packet.Packet {
	pkt := p.getPkt()
	if err := packet.DecodeInto(pkt, data); err != nil || pkt.TCP == nil {
		p.release(pkt)
		return nil
	}
	return pkt
}

// conn is the prober's client-side view of one TCP connection to the
// target. The prober crafts raw segments rather than using a kernel stack,
// exactly as sting did.
type conn struct {
	p            *Prober
	lport, rport uint16
	iss          uint32 // our initial sequence number
	serverISS    uint32
	rcvNxt       uint32 // next sequence expected from the server
	window       uint16 // window we advertise
}

// connectConfig tunes the handshake.
type connectConfig struct {
	mss     uint16 // MSS option value; 0 omits the option
	sackOK  bool
	window  uint16
	retries int
	timeout time.Duration
}

func defaultConnect() connectConfig {
	return connectConfig{window: 65535, retries: 3, timeout: time.Second}
}

// getConn checks connection state out of the pool; conn.reset returns it.
func (p *Prober) getConn() *conn {
	if n := len(p.connPool); n > 0 {
		c := p.connPool[n-1]
		p.connPool = p.connPool[:n-1]
		return c
	}
	return new(conn)
}

// connect performs the three-way handshake.
func (p *Prober) connect(rport uint16, cc connectConfig) (*conn, error) {
	c := p.getConn()
	*c = conn{
		p: p, lport: p.allocPort(), rport: rport,
		iss:    p.rng.Uint32(),
		window: cc.window,
	}
	var opts []packet.TCPOption
	if cc.mss != 0 {
		opts = append(opts, packet.MSSOption(cc.mss))
	}
	if cc.sackOK {
		opts = append(opts, packet.SACKPermittedOption())
	}
	for try := 0; try <= cc.retries; try++ {
		c.sendSeg(packet.FlagSYN, c.iss, 0, nil, opts)
		pkt, _, ok := p.awaitTCP(cc.timeout, func(q *packet.Packet) bool {
			return q.TCP.SrcPort == c.rport && q.TCP.DstPort == c.lport &&
				q.TCP.HasFlags(packet.FlagSYN|packet.FlagACK) && q.TCP.Ack == c.iss+1
		})
		if !ok {
			continue
		}
		c.serverISS = pkt.TCP.Seq
		c.rcvNxt = pkt.TCP.Seq + 1
		p.release(pkt)
		c.sendSeg(packet.FlagACK, c.iss+1, c.rcvNxt, nil, nil)
		return c, nil
	}
	p.connPool = append(p.connPool, c)
	return nil, fmt.Errorf("%w: %s port %d", ErrHandshake, p.target, rport)
}

// sendSeg transmits one raw segment on the connection and returns its frame
// ID.
func (c *conn) sendSeg(flags uint8, seq, ack uint32, payload []byte, opts []packet.TCPOption) uint64 {
	return c.sendSegTOS(0, flags, seq, ack, payload, opts)
}

// sendSegTOS is sendSeg with an explicit IP TOS marking, used by the
// DiffServ-aware single connection test variant.
func (c *conn) sendSegTOS(tos uint8, flags uint8, seq, ack uint32, payload []byte, opts []packet.TCPOption) uint64 {
	return c.p.sendRawTOS(tos, c.lport, c.rport, flags, seq, ack, c.window, payload, opts)
}

// sendRaw crafts and transmits an arbitrary segment to the target.
func (p *Prober) sendRaw(lport, rport uint16, flags uint8, seq, ack uint32, window uint16, payload []byte, opts []packet.TCPOption) uint64 {
	return p.sendRawTOS(0, lport, rport, flags, seq, ack, window, payload, opts)
}

// sendRawTOS is sendRaw with an explicit IP TOS marking. On a frame
// transport the parsed headers cross the wire as-is (decode-once,
// encode-never); otherwise the segment is encoded into the prober's
// reusable buffer, which Transport.Send copies if it needs to keep it.
func (p *Prober) sendRawTOS(tos uint8, lport, rport uint16, flags uint8, seq, ack uint32, window uint16, payload []byte, opts []packet.TCPOption) uint64 {
	hdr := &p.txHdr
	*hdr = packet.TCPHeader{
		SrcPort: lport, DstPort: rport,
		Seq: seq, Ack: ack, Flags: flags, Window: window, Options: opts,
	}
	ip := &p.txIP
	*ip = packet.IPv4Header{
		Src: p.tp.LocalAddr(), Dst: p.target,
		TOS:   tos,
		ID:    p.rng.Uint16(), // probe-side IPID is irrelevant to the tests
		Flags: packet.FlagDF,
	}
	if p.ftp != nil {
		// Stage the payload through the reusable buffer: the interface
		// call would otherwise force the tiny payload literals at probe
		// call sites ([]byte{'1'} and friends) to escape to the heap.
		buf := append(p.encBuf[:0], payload...)
		p.encBuf = buf[:0]
		return p.ftp.SendView(ip, hdr, buf)
	}
	raw, err := packet.AppendTCP(p.encBuf[:0], ip, hdr, payload)
	if err != nil {
		panic("core: encode: " + err.Error())
	}
	p.encBuf = raw[:0]
	return p.tp.Send(raw)
}

// awaitSeg waits for any segment on this connection.
func (c *conn) awaitSeg(timeout time.Duration, extra func(*packet.TCPHeader) bool) (*packet.Packet, uint64, bool) {
	return c.p.awaitTCP(timeout, func(q *packet.Packet) bool {
		if q.TCP.SrcPort != c.rport || q.TCP.DstPort != c.lport {
			return false
		}
		return extra == nil || extra(q.TCP)
	})
}

// awaitAckValue waits for a pure ACK with the exact acknowledgment number.
func (c *conn) awaitAckValue(timeout time.Duration, want uint32) bool {
	pkt, _, ok := c.awaitSeg(timeout, func(h *packet.TCPHeader) bool {
		return h.HasFlags(packet.FlagACK) && !h.HasFlags(packet.FlagSYN|packet.FlagRST) && h.Ack == want
	})
	if ok {
		c.p.release(pkt)
	}
	return ok
}

// reset aborts the connection with a RST, flushes its buffered packets and
// returns the connection state to the prober's pool. The conn must not be
// used after reset.
func (c *conn) reset() {
	c.sendSeg(packet.FlagRST, c.iss+1, 0, nil, nil)
	c.p.flushPort(c.lport)
	c.p.connPool = append(c.p.connPool, c)
}
