package core_test

import (
	"errors"
	"testing"
	"time"

	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/simnet"
)

func TestBurstCleanPath(t *testing.T) {
	p, _ := newProber(simnet.Config{Seed: 60, Server: host.FreeBSD4()})
	res, err := p.BurstTest(core.BurstOptions{BurstSize: 5, Bursts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bursts) != 6 {
		t.Fatalf("bursts = %d", len(res.Bursts))
	}
	for i, b := range res.Bursts {
		if b.Received != 5 {
			t.Fatalf("burst %d received %d/5", i, b.Received)
		}
		if f := b.Forward(); f.Reordered != 0 {
			t.Fatalf("burst %d forward: %v (arrivals %v)", i, f, b.ForwardArrivals)
		}
		if r := b.Reverse(); r.Reordered != 0 {
			t.Fatalf("burst %d reverse: %v", i, r)
		}
	}
	agg := res.ForwardAggregate()
	if agg.Received != 30 || agg.Reordered != 0 {
		t.Fatalf("aggregate: %v", agg)
	}
}

func TestBurstDetectsForwardReordering(t *testing.T) {
	p, _ := newProber(simnet.Config{
		Seed: 61, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{SwapProb: 0.5},
	})
	res, err := p.BurstTest(core.BurstOptions{BurstSize: 5, Bursts: 10})
	if err != nil {
		t.Fatal(err)
	}
	f := res.ForwardAggregate()
	if f.Reordered == 0 || f.Exchanges == 0 {
		t.Fatalf("heavy swapping invisible to burst test: %v", f)
	}
	// Adjacent swaps have extent 1; dupthresh-3 events must be absent.
	if f.SpuriousFastRetransmits(3) != 0 {
		t.Fatalf("adjacent swaps produced 3-reordering: %v", f.NReordering)
	}
	// Reverse stays clean.
	if r := res.ReverseAggregate(); r.Reordered != 0 {
		t.Fatalf("reverse polluted: %v", r)
	}
}

func TestBurstDeepReorderingViaARQ(t *testing.T) {
	// An out-of-order L2 ARQ link holds one packet ~2ms while the rest of
	// the train passes: reordering extents beyond 1, i.e. events TCP's
	// fast retransmit would misread. This is the protocol-impact analysis
	// the metric layer enables.
	p, _ := newProber(simnet.Config{
		Seed: 62, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{
			LinkRate: 1_000_000_000,
			ARQ:      &netem.ARQConfig{FrameErrorRate: 0.25, RetransmitDelay: 2 * time.Millisecond},
		},
	})
	res, err := p.BurstTest(core.BurstOptions{BurstSize: 8, Bursts: 20, Gap: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	f := res.ForwardAggregate()
	if f.Reordered == 0 {
		t.Fatalf("ARQ reordering invisible: %v", f)
	}
	if f.MaxExtent() < 3 {
		t.Fatalf("max extent = %d, want deep reordering from ARQ recovery", f.MaxExtent())
	}
	if f.SpuriousFastRetransmits(3) == 0 {
		t.Fatal("no dupthresh-3 events despite deep reordering")
	}
}

func TestBurstRejectsBadIPID(t *testing.T) {
	p, _ := newProber(simnet.Config{Seed: 63, Server: host.OpenBSD3()})
	_, err := p.BurstTest(core.BurstOptions{BurstSize: 4, Bursts: 2})
	if !errors.Is(err, core.ErrIPIDUnusable) {
		t.Fatalf("err = %v, want ErrIPIDUnusable", err)
	}
}

func TestBurstSurvivesLoss(t *testing.T) {
	p, _ := newProber(simnet.Config{
		Seed: 64, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{Loss: 0.1},
	})
	res, err := p.BurstTest(core.BurstOptions{BurstSize: 5, Bursts: 10, ReplyTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	agg := res.ForwardAggregate()
	if agg.Received == 0 || agg.Received >= 50 {
		t.Fatalf("received %d of 50 under 10%% loss", agg.Received)
	}
	if agg.Reordered != 0 {
		t.Fatalf("loss misread as reordering: %v", agg)
	}
}

func TestBurstString(t *testing.T) {
	p, _ := newProber(simnet.Config{Seed: 65, Server: host.FreeBSD4()})
	res, err := p.BurstTest(core.BurstOptions{BurstSize: 3, Bursts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); s == "" {
		t.Fatal("empty summary")
	}
}
