// Package baseline implements the two prior measurement methodologies the
// paper positions itself against (§II): Bennett et al.'s ICMP echo-burst
// probing with its burst-reordering and SACK-block metrics, and Paxson's
// passive TCP trace analysis. They exist both as comparators for the
// experiments and as working demonstrations of the biases the paper
// identifies — ICMP's direction ambiguity and rate limiting, and the
// TCP-dynamics dependence of passive transfer analysis.
package baseline

import (
	"errors"
	"net/netip"
	"time"

	"reorder/internal/core"
	"reorder/internal/packet"
)

// ErrNoReplies means the target answered no echo requests (filtered or
// rate-limited away) — the deployment problem §II notes for ICMP probing.
var ErrNoReplies = errors.New("baseline: no ICMP echo replies")

// BennettOptions configures the ICMP echo-burst test.
type BennettOptions struct {
	// Bursts is the number of bursts to send (default 10).
	Bursts int
	// BurstSize is the number of echo requests per burst (the paper's
	// reference uses 5 small or 100 large packets; default 5).
	BurstSize int
	// PayloadSize is the ICMP payload length in bytes; 28 yields the
	// 56-byte IP packets of Bennett's small-burst experiment (default 28).
	PayloadSize int
	// ReplyTimeout bounds the wait for each burst's replies (default 1s).
	ReplyTimeout time.Duration
	// Pace is the idle time between bursts (default 10ms).
	Pace time.Duration
}

func (o BennettOptions) defaults() BennettOptions {
	if o.Bursts == 0 {
		o.Bursts = 10
	}
	if o.BurstSize == 0 {
		o.BurstSize = 5
	}
	if o.PayloadSize == 0 {
		o.PayloadSize = 28
	}
	if o.ReplyTimeout == 0 {
		o.ReplyTimeout = time.Second
	}
	if o.Pace == 0 {
		o.Pace = 10 * time.Millisecond
	}
	return o
}

// BurstResult is the outcome of one echo burst.
type BurstResult struct {
	// Sent and Received count the burst's requests and distinct replies.
	Sent, Received int
	// Exchanges counts adjacent arrival pairs whose echo sequence numbers
	// were exchanged relative to send order.
	Exchanges int
	// SACKBlocks is Bennett's synthetic metric: the maximum number of
	// SACK blocks a TCP receiver would have needed at any instant to
	// describe the out-of-order arrival pattern of this burst.
	SACKBlocks int
}

// Reordered reports whether the burst saw at least one exchange — the
// statistic Bennett et al. report per burst.
func (b BurstResult) Reordered() bool { return b.Exchanges > 0 }

// BennettResult aggregates the burst outcomes for one target.
type BennettResult struct {
	Target netip.Addr
	Bursts []BurstResult
}

// FractionReordered returns the fraction of bursts with at least one
// reordering event (Bennett's headline ">90% of bursts" number). Bursts
// with fewer than two replies cannot exhibit reordering and count as clean.
func (r *BennettResult) FractionReordered() float64 {
	if len(r.Bursts) == 0 {
		return 0
	}
	n := 0
	for _, b := range r.Bursts {
		if b.Reordered() {
			n++
		}
	}
	return float64(n) / float64(len(r.Bursts))
}

// BennettTest sends bursts of ICMP echo requests and evaluates the order of
// the replies. Note the methodology's inherent limitation, which this
// implementation faithfully reproduces: a reordering on the forward path is
// indistinguishable from one on the reverse path, so results conflate both
// directions (§II).
func BennettTest(tp core.Transport, target netip.Addr, o BennettOptions) (*BennettResult, error) {
	o = o.defaults()
	res := &BennettResult{Target: target}
	ident := uint16(0xbe77)
	anyReply := false
	for b := 0; b < o.Bursts; b++ {
		br := sendBurst(tp, target, ident, uint16(b*o.BurstSize), o)
		if br.Received > 0 {
			anyReply = true
		}
		res.Bursts = append(res.Bursts, br)
		tp.Sleep(o.Pace)
	}
	if !anyReply {
		return nil, ErrNoReplies
	}
	return res, nil
}

func sendBurst(tp core.Transport, target netip.Addr, ident, seqBase uint16, o BennettOptions) BurstResult {
	br := BurstResult{Sent: o.BurstSize}
	payload := make([]byte, o.PayloadSize)
	for i := 0; i < o.BurstSize; i++ {
		echo := &packet.ICMPEcho{
			Type: packet.ICMPEchoRequest, Ident: ident, Seq: seqBase + uint16(i),
			Payload: payload,
		}
		raw, err := packet.EncodeICMP(&packet.IPv4Header{Src: tp.LocalAddr(), Dst: target}, echo)
		if err != nil {
			return br
		}
		tp.Send(raw)
	}

	// Collect replies until the timeout, recording arrival order of the
	// sequence numbers.
	var arrivals []int
	seen := map[uint16]bool{}
	deadline := tp.Now().Add(o.ReplyTimeout)
	for len(arrivals) < o.BurstSize {
		remaining := deadline.Sub(tp.Now())
		if remaining <= 0 {
			break
		}
		data, _, ok := tp.Recv(remaining)
		if !ok {
			break
		}
		p, err := packet.Decode(data)
		if err != nil || p.ICMP == nil || p.ICMP.Type != packet.ICMPEchoReply {
			continue
		}
		if p.IP.Src != target || p.ICMP.Ident != ident {
			continue
		}
		off := int(p.ICMP.Seq - seqBase)
		if off < 0 || off >= o.BurstSize || seen[p.ICMP.Seq] {
			continue
		}
		seen[p.ICMP.Seq] = true
		arrivals = append(arrivals, off)
	}
	br.Received = len(arrivals)
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			br.Exchanges++
		}
	}
	br.SACKBlocks = maxSACKBlocks(arrivals)
	return br
}

// maxSACKBlocks simulates a TCP receiver consuming "segments" in the given
// arrival order (each index one segment) and returns the maximum number of
// disjoint above-cumulative islands that coexisted — the number of SACK
// blocks that receiver would have reported at its worst moment.
func maxSACKBlocks(arrivals []int) int {
	have := map[int]bool{}
	next := 0 // cumulative point
	maxIslands := 0
	for _, a := range arrivals {
		have[a] = true
		for have[next] {
			next++
		}
		// Count islands above the cumulative point.
		islands, in := 0, false
		for i := next; i <= maxIndex(have); i++ {
			if have[i] && !in {
				islands++
				in = true
			} else if !have[i] {
				in = false
			}
		}
		if islands > maxIslands {
			maxIslands = islands
		}
	}
	return maxIslands
}

func maxIndex(have map[int]bool) int {
	m := -1
	for i := range have {
		if i > m {
			m = i
		}
	}
	return m
}
