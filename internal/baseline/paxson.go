package baseline

import (
	"reorder/internal/packet"
	"reorder/internal/trace"
)

// PaxsonReport is the outcome of passive trace analysis in the style of
// Paxson's end-to-end packet dynamics study: data segments of a TCP flow
// are examined in arrival order, and a packet is counted out-of-order when
// it carries a sequence number below data already delivered.
type PaxsonReport struct {
	// DataPackets is the number of first-transmission data segments seen.
	DataPackets int
	// Retransmissions counts segments whose range had been seen before.
	Retransmissions int
	// OutOfOrder counts first-transmission segments that arrived with a
	// sequence number below the highest byte already delivered.
	OutOfOrder int
}

// Rate returns the fraction of data packets delivered out of order.
func (r PaxsonReport) Rate() float64 {
	if r.DataPackets == 0 {
		return 0
	}
	return float64(r.OutOfOrder) / float64(r.DataPackets)
}

// AnyReordering reports whether the session saw at least one out-of-order
// delivery — the per-session statistic Paxson reports (12% / 36% of
// sessions in his two datasets).
func (r PaxsonReport) AnyReordering() bool { return r.OutOfOrder > 0 }

// AnalyzeCapture runs the passive analysis over one direction of one flow
// in a capture: only packets whose flow key equals flow and which carry
// payload are considered.
func AnalyzeCapture(c *trace.Capture, flow packet.FlowKey) PaxsonReport {
	var rep PaxsonReport
	var maxEnd uint32
	haveMax := false
	seen := map[uint32]bool{}
	for _, rec := range c.Records() {
		p, err := rec.Decode()
		if err != nil || p.TCP == nil || len(p.Payload) == 0 {
			continue
		}
		if p.Flow() != flow {
			continue
		}
		seq := p.TCP.Seq
		end := seq + uint32(len(p.Payload))
		if seen[seq] {
			rep.Retransmissions++
			continue
		}
		seen[seq] = true
		rep.DataPackets++
		if haveMax && packet.SeqLT(seq, maxEnd) {
			rep.OutOfOrder++
		}
		if !haveMax || packet.SeqGT(end, maxEnd) {
			maxEnd = end
			haveMax = true
		}
	}
	return rep
}
