package baseline

import (
	"sort"

	"reorder/internal/metrics"
	"reorder/internal/packet"
	"reorder/internal/trace"
)

// FlowReport is the offline analysis of one unidirectional TCP data flow
// in a capture: the Paxson-style counters plus the full sequence metrics.
type FlowReport struct {
	Flow    packet.FlowKey
	Paxson  PaxsonReport
	Metrics *metrics.Report
}

// AnalyzeAllFlows groups a capture's TCP data segments by flow and analyzes
// each flow carrying at least minSegments first-transmission segments. It
// is the library form of a tcptrace-style post-hoc tool: point it at any
// raw-IP pcap and get per-flow reordering numbers. Flows are returned in
// deterministic (string) order.
func AnalyzeAllFlows(c *trace.Capture, minSegments int) []FlowReport {
	if minSegments < 2 {
		minSegments = 2
	}
	type flowState struct {
		seqs []uint32
		seen map[uint32]bool
	}
	flows := map[packet.FlowKey]*flowState{}
	for _, rec := range c.Records() {
		p, err := rec.Decode()
		if err != nil || p.TCP == nil || len(p.Payload) == 0 {
			continue
		}
		k := p.Flow()
		st := flows[k]
		if st == nil {
			st = &flowState{seen: map[uint32]bool{}}
			flows[k] = st
		}
		if st.seen[p.TCP.Seq] {
			continue // retransmission; PaxsonReport counts it separately
		}
		st.seen[p.TCP.Seq] = true
		st.seqs = append(st.seqs, p.TCP.Seq)
	}

	var out []FlowReport
	for k, st := range flows {
		if len(st.seqs) < minSegments {
			continue
		}
		out = append(out, FlowReport{
			Flow:    k,
			Paxson:  AnalyzeCapture(c, k),
			Metrics: metrics.Analyze(seqRanks(st.seqs)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flow.String() < out[j].Flow.String() })
	return out
}

// seqRanks converts arrival-ordered sequence numbers into send positions by
// rank (the sender transmits sequentially), the form the sequence metrics
// consume. Wraparound-aware.
func seqRanks(seqs []uint32) []int {
	sorted := append([]uint32(nil), seqs...)
	sort.Slice(sorted, func(i, j int) bool { return packet.SeqLT(sorted[i], sorted[j]) })
	rank := make(map[uint32]int, len(sorted))
	for i, s := range sorted {
		rank[s] = i
	}
	pos := make([]int, len(seqs))
	for i, s := range seqs {
		pos[i] = rank[s]
	}
	return pos
}
