package baseline

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/packet"
	"reorder/internal/simnet"
	"reorder/internal/trace"

	"reorder/internal/netem"
	"reorder/internal/sim"
)

func TestBennettCleanPath(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 1, Server: host.FreeBSD4()})
	res, err := BennettTest(n.Probe(), n.ServerAddr(), BennettOptions{Bursts: 6, BurstSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bursts) != 6 {
		t.Fatalf("bursts = %d", len(res.Bursts))
	}
	for i, b := range res.Bursts {
		if b.Received != 5 || b.Exchanges != 0 || b.SACKBlocks > 1 {
			t.Fatalf("burst %d: %+v", i, b)
		}
	}
	if res.FractionReordered() != 0 {
		t.Fatal("clean path reported reordering")
	}
}

func TestBennettDetectsReordering(t *testing.T) {
	n := simnet.New(simnet.Config{
		Seed: 2, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{SwapProb: 0.5},
	})
	res, err := BennettTest(n.Probe(), n.ServerAddr(), BennettOptions{Bursts: 20, BurstSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.FractionReordered() < 0.5 {
		t.Fatalf("FractionReordered = %v, want most bursts reordered", res.FractionReordered())
	}
}

func TestBennettCannotTellDirections(t *testing.T) {
	// The §II criticism embodied: identical observable results whether the
	// swap happens on the forward or the reverse path.
	run := func(fwd, rev float64, seed uint64) float64 {
		n := simnet.New(simnet.Config{
			Seed: seed, Server: host.FreeBSD4(),
			Forward: simnet.PathSpec{SwapProb: fwd},
			Reverse: simnet.PathSpec{SwapProb: rev},
		})
		res, err := BennettTest(n.Probe(), n.ServerAddr(), BennettOptions{Bursts: 40, BurstSize: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.FractionReordered()
	}
	fwdOnly := run(0.3, 0, 3)
	revOnly := run(0, 0.3, 3)
	if fwdOnly == 0 || revOnly == 0 {
		t.Fatalf("expected reordering in both runs: fwd-only=%v rev-only=%v", fwdOnly, revOnly)
	}
	// Same underlying swap rate on either side produces comparable
	// observations; the test has no way to attribute them.
	if diff := fwdOnly - revOnly; diff < -0.35 || diff > 0.35 {
		t.Fatalf("implausibly different: fwd-only=%v rev-only=%v", fwdOnly, revOnly)
	}
}

func TestBennettFilteredHost(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 4, Server: host.FilteredICMP(host.FreeBSD4())})
	_, err := BennettTest(n.Probe(), n.ServerAddr(), BennettOptions{Bursts: 3, ReplyTimeout: 100 * time.Millisecond})
	if !errors.Is(err, ErrNoReplies) {
		t.Fatalf("err = %v, want ErrNoReplies", err)
	}
}

func TestBennettRateLimitedHostLosesReplies(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 5, Server: host.RateLimitedICMP(host.FreeBSD4(), 3)})
	res, err := BennettTest(n.Probe(), n.ServerAddr(), BennettOptions{Bursts: 2, BurstSize: 10, ReplyTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bursts[0].Received >= 10 {
		t.Fatalf("rate-limited host answered the whole burst: %+v", res.Bursts[0])
	}
}

func TestMaxSACKBlocks(t *testing.T) {
	cases := []struct {
		arrivals []int
		want     int
	}{
		{[]int{0, 1, 2, 3, 4}, 0},    // in order: never any island
		{[]int{1, 0, 2, 3, 4}, 1},    // one simple exchange
		{[]int{1, 3, 0, 2, 4}, 2},    // two islands coexist after 1,3
		{[]int{4, 3, 2, 1, 0}, 1},    // full reversal: one growing island
		{[]int{1, 3, 5, 7, 9, 0}, 5}, // alternating: five islands
		{nil, 0},
	}
	for _, c := range cases {
		if got := maxSACKBlocks(c.arrivals); got != c.want {
			t.Errorf("maxSACKBlocks(%v) = %d, want %d", c.arrivals, got, c.want)
		}
	}
}

func TestBennettSACKMetricGrowsWithReordering(t *testing.T) {
	clean := simnet.New(simnet.Config{Seed: 6, Server: host.FreeBSD4()})
	dirty := simnet.New(simnet.Config{
		Seed: 6, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{SwapProb: 0.5},
	})
	opt := BennettOptions{Bursts: 10, BurstSize: 20}
	cres, err := BennettTest(clean.Probe(), clean.ServerAddr(), opt)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := BennettTest(dirty.Probe(), dirty.ServerAddr(), opt)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(r *BennettResult) int {
		n := 0
		for _, b := range r.Bursts {
			n += b.SACKBlocks
		}
		return n
	}
	if sum(dres) <= sum(cres) {
		t.Fatalf("SACK metric did not grow: clean=%d dirty=%d", sum(cres), sum(dres))
	}
}

// --- Paxson passive analysis ---

// buildFlowCapture synthesizes a capture of data segments with the given
// seq arrival order (unit = 100-byte segments).
func buildFlowCapture(t *testing.T, order []int) (*trace.Capture, packet.FlowKey) {
	t.Helper()
	loop := sim.NewLoop()
	cap := trace.NewCapture("x")
	tap := cap.Tap(loop, netem.Discard)
	src := netip.AddrFrom4([4]byte{10, 0, 1, 1})
	dst := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	var flow packet.FlowKey
	for i, o := range order {
		raw, err := packet.EncodeTCP(
			&packet.IPv4Header{Src: src, Dst: dst},
			&packet.TCPHeader{SrcPort: 80, DstPort: 4000, Seq: uint32(1000 + o*100), Flags: packet.FlagACK},
			make([]byte, 100))
		if err != nil {
			t.Fatal(err)
		}
		tap.Input(&netem.Frame{ID: uint64(i + 1), Data: raw})
		if i == 0 {
			p, _ := packet.Decode(raw)
			flow = p.Flow()
		}
	}
	return cap, flow
}

func TestPaxsonInOrder(t *testing.T) {
	cap, flow := buildFlowCapture(t, []int{0, 1, 2, 3, 4})
	rep := AnalyzeCapture(cap, flow)
	if rep.DataPackets != 5 || rep.OutOfOrder != 0 || rep.AnyReordering() {
		t.Fatalf("report: %+v", rep)
	}
}

func TestPaxsonDetectsOutOfOrder(t *testing.T) {
	cap, flow := buildFlowCapture(t, []int{0, 2, 1, 3, 4})
	rep := AnalyzeCapture(cap, flow)
	if rep.OutOfOrder != 1 || rep.Rate() != 0.2 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestPaxsonSkipsRetransmissions(t *testing.T) {
	cap, flow := buildFlowCapture(t, []int{0, 1, 1, 2})
	rep := AnalyzeCapture(cap, flow)
	if rep.Retransmissions != 1 || rep.DataPackets != 3 || rep.OutOfOrder != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestPaxsonIgnoresOtherFlows(t *testing.T) {
	cap, flow := buildFlowCapture(t, []int{0, 1})
	other := flow
	other.SrcPort = 81
	rep := AnalyzeCapture(cap, other)
	if rep.DataPackets != 0 {
		t.Fatalf("report counted foreign flow: %+v", rep)
	}
}

func TestPaxsonOnLiveTransfer(t *testing.T) {
	// End to end: run a data transfer through a reordering reverse path
	// and passively analyze the probe-ingress capture, Paxson style.
	prof := host.FreeBSD4()
	prof.TCP.ObjectSize = 16 << 10
	n := simnet.New(simnet.Config{
		Seed: 7, Server: prof,
		Reverse: simnet.PathSpec{SwapProb: 0.3},
	})
	p := core.NewProber(n.Probe(), n.ServerAddr(), 8)
	if _, err := p.DataTransferTest(core.TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	// The transfer's data flow: server:80 -> probe:40000 (first allocated).
	flow := packet.FlowKey{
		Src: n.ServerAddr(), Dst: n.ProbeAddr(),
		SrcPort: 80, DstPort: 40000, Proto: packet.ProtoTCP,
	}
	rep := AnalyzeCapture(n.ProbeIngress, flow)
	if rep.DataPackets < 32 {
		t.Fatalf("too few data packets analyzed: %+v", rep)
	}
	if !rep.AnyReordering() {
		t.Fatalf("passive analysis missed the reordering: %+v", rep)
	}
}

// --- Offline flow analysis (tcptrace-style) ---

func TestAnalyzeAllFlows(t *testing.T) {
	// Two transfers through a reordering reverse path, one clean forward
	// request flow: the analyzer must find the data flows and attribute
	// reordering only where it happened.
	prof := host.FreeBSD4()
	prof.TCP.ObjectSize = 8 << 10
	n := simnet.New(simnet.Config{
		Seed: 31, Server: prof,
		Reverse: simnet.PathSpec{SwapProb: 0.3},
	})
	p := core.NewProber(n.Probe(), n.ServerAddr(), 32)
	if _, err := p.DataTransferTest(core.TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DataTransferTest(core.TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	flows := AnalyzeAllFlows(n.ProbeIngress, 4)
	if len(flows) != 2 {
		t.Fatalf("flows = %d, want 2 transfers", len(flows))
	}
	for _, fr := range flows {
		if fr.Flow.Src != n.ServerAddr() {
			t.Fatalf("unexpected flow %v", fr.Flow)
		}
		if fr.Paxson.DataPackets < 30 {
			t.Fatalf("flow %v: %d data packets", fr.Flow, fr.Paxson.DataPackets)
		}
		if !fr.Paxson.AnyReordering() || fr.Metrics.Reordered == 0 {
			t.Fatalf("flow %v: reordering missed (%+v, %v)", fr.Flow, fr.Paxson, fr.Metrics)
		}
		// Paxson's out-of-order definition and the metrics package's
		// non-reversing-order definition coincide.
		if fr.Paxson.OutOfOrder != fr.Metrics.Reordered {
			t.Fatalf("flow %v: paxson %d vs metrics %d", fr.Flow, fr.Paxson.OutOfOrder, fr.Metrics.Reordered)
		}
	}
	// Flows below the segment threshold (the request direction carries a
	// single data segment) are excluded.
	for _, fr := range flows {
		if fr.Flow.Dst == n.ServerAddr() {
			t.Fatalf("request flow should be under threshold: %v", fr.Flow)
		}
	}
}

func TestAnalyzeAllFlowsRoundTripsThroughPcap(t *testing.T) {
	// The full offline workflow: capture -> pcap file -> read back ->
	// analyze. Frame IDs are lost in pcap, but flow analysis only needs
	// packet contents.
	prof := host.FreeBSD4()
	prof.TCP.ObjectSize = 4 << 10
	n := simnet.New(simnet.Config{
		Seed: 33, Server: prof,
		Reverse: simnet.PathSpec{SwapProb: 0.3},
	})
	p := core.NewProber(n.Probe(), n.ServerAddr(), 34)
	if _, err := p.DataTransferTest(core.TransferOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.ProbeIngress.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	cap2, err := trace.ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	direct := AnalyzeAllFlows(n.ProbeIngress, 4)
	viaFile := AnalyzeAllFlows(cap2, 4)
	if len(direct) != len(viaFile) {
		t.Fatalf("flow counts differ: %d vs %d", len(direct), len(viaFile))
	}
	for i := range direct {
		if direct[i].Paxson != viaFile[i].Paxson {
			t.Fatalf("flow %d reports differ: %+v vs %+v", i, direct[i].Paxson, viaFile[i].Paxson)
		}
	}
}
