package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"reorder/internal/netem"
)

// TestViewDifferentialCatalog is the frame-view acceptance property: a
// campaign over the full impairment catalog (adjacent swaps, trunk striping,
// multi-path spray, ARQ recovery, loss, jitter, clean) across reordering-
// relevant profiles and all four techniques must produce byte-identical
// JSONL and CSV with zero-copy views enabled (the default) and with
// netem.DebugForceMaterialize driving every frame through the eager
// encode/decode wire path. Any divergence means a view lied about what the
// wire would have carried.
func TestViewDifferentialCatalog(t *testing.T) {
	targets, err := Enumerate(EnumSpec{
		// Full impairment catalog and all four tests (nil selects all);
		// profiles cover counter/zero/random IPIDs plus the load-balanced
		// pool, so the dual-test prevalidation and LB paths run too.
		Profiles: []string{"freebsd4", "linux24", "openbsd3", LBPool},
		Seeds:    1,
		BaseSeed: 977,
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func(force bool) (jsonl, csv []byte) {
		t.Helper()
		prev := netem.DebugForceMaterialize
		netem.DebugForceMaterialize = force
		defer func() { netem.DebugForceMaterialize = prev }()
		dir := t.TempDir()
		out := filepath.Join(dir, "out.jsonl")
		csvPath := filepath.Join(dir, "out.csv")
		if _, err := Run(Config{
			Targets: targets, Samples: 4, Workers: 4,
			OutputPath: out, CSVPath: csvPath,
		}); err != nil {
			t.Fatal(err)
		}
		jsonl, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		csv, err = os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		return jsonl, csv
	}

	viewJSONL, viewCSV := run(false)
	wireJSONL, wireCSV := run(true)
	if !bytes.Equal(viewJSONL, wireJSONL) {
		t.Error("JSONL differs between frame-view and force-materialize runs")
	}
	if !bytes.Equal(viewCSV, wireCSV) {
		t.Error("CSV differs between frame-view and force-materialize runs")
	}
}
