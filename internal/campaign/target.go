package campaign

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
	"time"

	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/sim"
	"reorder/internal/simnet"
)

// Target is one unit of campaign work: one measurement technique run once
// against one simulated host reached over one impaired path. Everything a
// probe needs is derivable from these fields, which is what makes campaign
// results independent of scheduling.
type Target struct {
	// Index is the position in the campaign's target list.
	Index int `json:"index"`
	// Name identifies the target in reports ("profile/impairment/test/sN").
	Name string `json:"name"`
	// Profile is a host profile name from Profiles().
	Profile string `json:"profile"`
	// Impairment is a path impairment name from Impairments().
	Impairment string `json:"impairment"`
	// Test is the technique: "single", "dual", "syn" or "transfer".
	Test string `json:"test"`
	// Seed drives every stochastic choice the target's scenario makes.
	Seed uint64 `json:"seed"`
	// Topology names a routed-graph topology from Topologies(). Empty means
	// the classic point-to-point path — the default for every pre-topology
	// campaign, which is why the field is append-only and omitted when
	// empty everywhere it is serialized.
	Topology string `json:"topology,omitempty"`
	// Scenario names a fault schedule from Scenarios(). Empty means the
	// static scenario; like Topology the field is append-only and omitted
	// when empty everywhere it is serialized, so pre-scenario campaigns
	// stay byte-identical.
	Scenario string `json:"scenario,omitempty"`
}

// defaultName derives the canonical target name.
func (t Target) defaultName() string {
	name := fmt.Sprintf("%s/%s/%s/s%d", t.Profile, t.Impairment, t.Test, t.Seed)
	if t.Topology != "" {
		name += "@" + t.Topology
	}
	if t.Scenario != "" {
		name += "#" + t.Scenario
	}
	return name
}

// Tests are the four techniques, in the survey's round-robin order.
var Tests = []string{"single", "dual", "syn", "transfer"}

// LBPool is the pseudo-profile name for a load-balanced backend pool (the
// survey's "popular site" analogue).
const LBPool = "lb-pool"

// catalog and lbBackends cache the host catalog and the load-balanced
// pool's backend prototypes: profiles are immutable values (their IPID
// closures are stateless and their Ports slices are read-only), so the
// probe hot path can share one copy instead of rebuilding the catalog per
// target. Callers that mutate a profile (ObjectSize sizing) copy first.
var (
	catalog    = host.Catalog()
	lbBackends = []host.Profile{
		host.FreeBSD4(), host.Linux22(), host.Windows2000(), host.FreeBSD4(),
	}
)

// Profiles returns the names enumerable as campaign targets: the full
// host catalog plus the load-balanced pool.
func Profiles() []string {
	var names []string
	for _, p := range catalog {
		names = append(names, p.Name)
	}
	return append(names, LBPool)
}

// resolveProfile maps a profile name to the scenario skeleton it implies.
// The returned config's Backends share the cached prototype slice; callers
// that modify backend profiles must copy it (see probeTarget).
func resolveProfile(name string) (simnet.Config, error) {
	if name == LBPool {
		return simnet.Config{Backends: lbBackends}, nil
	}
	for _, p := range catalog {
		if p.Name == name {
			return simnet.Config{Server: p}, nil
		}
	}
	return simnet.Config{}, fmt.Errorf("campaign: unknown profile %q", name)
}

// Impairment is a named, seedable path condition.
type Impairment struct {
	// Name identifies the impairment in target specs.
	Name string
	// Build derives the directional path specs from a per-target stream.
	Build func(rng *sim.Rand) (fwd, rev simnet.PathSpec)
}

// fastPath is the base spec shared by all impairments: a fast access link
// so serialization never dominates the impairment under test.
func fastPath() simnet.PathSpec {
	return simnet.PathSpec{LinkRate: 100_000_000}
}

// Impairments returns the registry of named path conditions a campaign
// can enumerate: the §V reordering mechanisms plus clean and lossy
// controls. All are deterministic functions of the passed stream.
func Impairments() []Impairment {
	return []Impairment{
		{Name: "clean", Build: func(rng *sim.Rand) (simnet.PathSpec, simnet.PathSpec) {
			return fastPath(), fastPath()
		}},
		{Name: "swap-light", Build: func(rng *sim.Rand) (simnet.PathSpec, simnet.PathSpec) {
			fwd, rev := fastPath(), fastPath()
			fwd.SwapProb = 0.02 + rng.Float64()*0.02
			rev.SwapProb = fwd.SwapProb * 0.35
			return fwd, rev
		}},
		{Name: "swap-heavy", Build: func(rng *sim.Rand) (simnet.PathSpec, simnet.PathSpec) {
			fwd, rev := fastPath(), fastPath()
			fwd.SwapProb = 0.10 + rng.Float64()*0.10
			rev.SwapProb = fwd.SwapProb * 0.35
			return fwd, rev
		}},
		{Name: "trunk", Build: func(rng *sim.Rand) (simnet.PathSpec, simnet.PathSpec) {
			fwd, rev := fastPath(), fastPath()
			prob := 0.05 + rng.ExpFloat64()*0.10
			if prob > 0.5 {
				prob = 0.5
			}
			mean := 600 + rng.ExpFloat64()*900
			fwd.Trunk = &netem.TrunkConfig{FanOut: 2, RateBps: 622_000_000, BurstProb: prob, MeanBurstBytes: mean}
			rev.Trunk = &netem.TrunkConfig{FanOut: 2, RateBps: 622_000_000, BurstProb: prob * 0.35, MeanBurstBytes: mean}
			return fwd, rev
		}},
		{Name: "multipath", Build: func(rng *sim.Rand) (simnet.PathSpec, simnet.PathSpec) {
			fwd, rev := fastPath(), fastPath()
			spread := time.Duration(50+rng.IntN(200)) * time.Microsecond
			fwd.MultiPath = &netem.MultiPathConfig{
				Delays: []time.Duration{time.Millisecond, time.Millisecond + spread},
			}
			return fwd, rev
		}},
		{Name: "arq", Build: func(rng *sim.Rand) (simnet.PathSpec, simnet.PathSpec) {
			fwd, rev := fastPath(), fastPath()
			fwd.LinkRate = 1_000_000_000
			fwd.ARQ = &netem.ARQConfig{
				FrameErrorRate:  0.05 + rng.Float64()*0.10,
				RetransmitDelay: 2 * time.Millisecond,
			}
			return fwd, rev
		}},
		{Name: "lossy", Build: func(rng *sim.Rand) (simnet.PathSpec, simnet.PathSpec) {
			fwd, rev := fastPath(), fastPath()
			fwd.Loss = 0.01 + rng.Float64()*0.02
			rev.Loss = fwd.Loss
			return fwd, rev
		}},
		{Name: "jitter", Build: func(rng *sim.Rand) (simnet.PathSpec, simnet.PathSpec) {
			fwd, rev := fastPath(), fastPath()
			fwd.Jitter = time.Duration(1+rng.IntN(4)) * time.Millisecond
			rev.Jitter = fwd.Jitter
			return fwd, rev
		}},
	}
}

// impairments caches the registry: the Build closures are stateless (all
// randomness comes from the stream passed in), so one copy serves every
// worker.
var impairments = Impairments()

// ImpairmentNames returns the registry names in registry order.
func ImpairmentNames() []string {
	var names []string
	for _, im := range impairments {
		names = append(names, im.Name)
	}
	return names
}

func impairmentByName(name string) (Impairment, error) {
	for _, im := range impairments {
		if im.Name == name {
			return im, nil
		}
	}
	return Impairment{}, fmt.Errorf("campaign: unknown impairment %q", name)
}

// EnumSpec describes a cross-product enumeration of targets.
type EnumSpec struct {
	// Profiles are host profile names (default: all of Profiles()).
	Profiles []string
	// Impairments are impairment names (default: all of ImpairmentNames()).
	Impairments []string
	// Tests are technique names (default: all of Tests).
	Tests []string
	// Seeds is how many seed replicas per combination (default 1).
	Seeds int
	// BaseSeed offsets the derived per-target seeds, so two campaigns
	// over the same cross product can draw disjoint scenarios.
	BaseSeed uint64
	// Topologies are topology names from TopologyNames(), with "" meaning
	// the point-to-point path (default: [""], i.e. no topology dimension).
	Topologies []string
	// Scenarios are fault-schedule names from ScenarioNames(), with ""
	// meaning the static scenario (default: [""], no scenario dimension).
	Scenarios []string
}

// Enumerate expands the cross product profiles × impairments × tests ×
// seeds into a deterministic, stably ordered target list. Unknown profile
// or impairment names are rejected up front so a campaign cannot fail
// thousands of targets in.
func Enumerate(spec EnumSpec) ([]Target, error) {
	if len(spec.Profiles) == 0 {
		spec.Profiles = Profiles()
	}
	if len(spec.Impairments) == 0 {
		spec.Impairments = ImpairmentNames()
	}
	if len(spec.Tests) == 0 {
		spec.Tests = append([]string(nil), Tests...)
	}
	if spec.Seeds <= 0 {
		spec.Seeds = 1
	}
	if len(spec.Topologies) == 0 {
		spec.Topologies = []string{""}
	}
	if len(spec.Scenarios) == 0 {
		spec.Scenarios = []string{""}
	}
	for _, p := range spec.Profiles {
		if _, err := resolveProfile(p); err != nil {
			return nil, err
		}
	}
	for _, im := range spec.Impairments {
		if _, err := impairmentByName(im); err != nil {
			return nil, err
		}
	}
	for _, te := range spec.Tests {
		if !validTest(te) {
			return nil, fmt.Errorf("campaign: unknown test %q", te)
		}
	}
	for _, topo := range spec.Topologies {
		if _, err := topologyByName(topo); err != nil {
			return nil, err
		}
	}
	for _, scn := range spec.Scenarios {
		if _, err := scenarioByName(scn); err != nil {
			return nil, err
		}
	}
	var targets []Target
	for _, scn := range spec.Scenarios {
		for _, topo := range spec.Topologies {
			for _, p := range spec.Profiles {
				for _, im := range spec.Impairments {
					for _, te := range spec.Tests {
						for s := 0; s < spec.Seeds; s++ {
							t := Target{
								Index:      len(targets),
								Profile:    p,
								Impairment: im,
								Test:       te,
								Seed:       deriveScenarioSeed(spec.BaseSeed, p, im, topo, scn, s),
								Topology:   topo,
								Scenario:   scn,
							}
							t.Name = t.defaultName()
							targets = append(targets, t)
						}
					}
				}
			}
		}
	}
	return targets, nil
}

// deriveSeed mixes the base seed with the profile, impairment and replica
// — but deliberately not the test, so the four techniques at one
// profile×impairment×replica probe the identical path instance and their
// results stay pairable for agreement analysis. Mixing the profile in
// keeps different hosts from drawing identical paths, so a campaign's
// pooled statistics reflect as many independent path instances as it has
// profile×impairment×replica combinations.
func deriveSeed(base uint64, profile, impairment string, replica int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", base, profile, impairment, replica)
	return h.Sum64()
}

// deriveTopoSeed extends deriveSeed with the topology dimension. The
// point-to-point case ("") hashes the exact pre-topology string, so every
// historical target list re-derives byte-identically.
func deriveTopoSeed(base uint64, profile, impairment, topology string, replica int) uint64 {
	if topology == "" {
		return deriveSeed(base, profile, impairment, replica)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d", base, profile, impairment, topology, replica)
	return h.Sum64()
}

// deriveScenarioSeed extends deriveTopoSeed with the scenario dimension,
// with the same backward-compatible layering: a scenario-less target hashes
// the exact pre-scenario string, so historical target lists re-derive
// byte-identically. Like topology (and unlike test), the scenario is mixed
// in — targets under different fault schedules draw different path
// instances — while the four techniques at one
// profile×impairment×topology×scenario×replica still probe the identical
// instance, keeping results pairable for agreement analysis.
func deriveScenarioSeed(base uint64, profile, impairment, topology, scenario string, replica int) uint64 {
	if scenario == "" {
		return deriveTopoSeed(base, profile, impairment, topology, replica)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|#%s|%d", base, profile, impairment, topology, scenario, replica)
	return h.Sum64()
}

func validTest(name string) bool {
	switch name {
	case "single", "dual", "syn", "transfer":
		return true
	}
	return false
}

// LoadTargets parses a targets file: one target per line as
// "profile impairment test seed" with optional fifth "topology" and sixth
// "scenario" fields ("-" holds an empty topology's place when only a
// scenario is wanted), blank lines and #-comments ignored. Indices and
// names are assigned in file order.
func LoadTargets(r io.Reader) ([]Target, error) {
	var targets []Target
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 4 || len(fields) > 6 {
			return nil, fmt.Errorf("campaign: targets line %d: want \"profile impairment test seed [topology [scenario]]\", got %q", line, text)
		}
		if _, err := resolveProfile(fields[0]); err != nil {
			return nil, fmt.Errorf("campaign: targets line %d: %w", line, err)
		}
		if _, err := impairmentByName(fields[1]); err != nil {
			return nil, fmt.Errorf("campaign: targets line %d: %w", line, err)
		}
		if !validTest(fields[2]) {
			return nil, fmt.Errorf("campaign: targets line %d: unknown test %q", line, fields[2])
		}
		seed, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("campaign: targets line %d: bad seed: %w", line, err)
		}
		topo := ""
		if len(fields) >= 5 && fields[4] != "-" {
			topo = fields[4]
			if _, err := topologyByName(topo); err != nil {
				return nil, fmt.Errorf("campaign: targets line %d: %w", line, err)
			}
		}
		scn := ""
		if len(fields) == 6 && fields[5] != "-" {
			scn = fields[5]
			if _, err := scenarioByName(scn); err != nil {
				return nil, fmt.Errorf("campaign: targets line %d: %w", line, err)
			}
		}
		t := Target{
			Index: len(targets), Profile: fields[0], Impairment: fields[1],
			Test: fields[2], Seed: seed, Topology: topo, Scenario: scn,
		}
		t.Name = t.defaultName()
		targets = append(targets, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return targets, nil
}
