package campaign

import (
	"fmt"
	"time"

	"reorder/internal/host"
	"reorder/internal/sim"
	"reorder/internal/simnet"
)

// Topology is a named, seedable routed-graph scenario shape. Like
// Impairment, Build is a pure function of the passed stream: flow start
// times and transfer sizes vary per target seed, the graph shape does not.
type Topology struct {
	// Name identifies the topology in target specs; "" is the classic
	// point-to-point path.
	Name string
	// Build derives the graph from a per-target stream. A nil return means
	// point-to-point.
	Build func(rng *sim.Rand) *simnet.TopologySpec
}

// crossFlows derives n background flows into cross host "x0"/"x1"…,
// jittering start (0–20ms) and size (256–512 KiB) so replicas sample
// different contention phases against the probe.
func crossFlows(rng *sim.Rand, router string, n int) []simnet.FlowSpec {
	flows := make([]simnet.FlowSpec, n)
	for i := range flows {
		flows[i] = simnet.FlowSpec{
			Router: router,
			To:     fmt.Sprintf("x%d", i),
			Bytes:  256<<10 + rng.IntN(256<<10),
			Start:  time.Duration(rng.IntN(20_000)) * time.Microsecond,
		}
	}
	return flows
}

func crossHosts(router string, n int) []simnet.CrossHostSpec {
	hosts := make([]simnet.CrossHostSpec, n)
	for i := range hosts {
		hosts[i] = simnet.CrossHostSpec{Name: fmt.Sprintf("x%d", i), Router: router, Profile: host.Linux24()}
	}
	return hosts
}

// Topologies returns the registry of named routed-graph shapes a campaign
// can enumerate alongside profiles and impairments.
//
//   - "p2p" (and "") is the degenerate two-node path.
//   - "bottleneck" shares one queue-limited 8 Mbps link between the probe
//     and two background flows: emergent queueing delay and droptail loss.
//   - "parallel-x2" bonds two equal-cost 6 Mbps links with per-packet
//     round-robin spray; cross traffic loads the two queues unevenly, so
//     back-to-back probe packets overtake — congestion-induced reordering
//     with zero mechanism-injected impairment.
//   - "multihop" chains both: a bottleneck hop feeding a parallel bundle,
//     with flows crossing each hop.
func Topologies() []Topology {
	return []Topology{
		{Name: "p2p", Build: func(rng *sim.Rand) *simnet.TopologySpec { return nil }},
		{Name: "bottleneck", Build: func(rng *sim.Rand) *simnet.TopologySpec {
			return &simnet.TopologySpec{
				Routers:    []simnet.RouterSpec{{Name: "r0"}, {Name: "r1"}},
				Links:      []simnet.LinkSpec{{A: "r0", B: "r1", RateBps: 8_000_000, QueueLimit: 32}},
				CrossHosts: crossHosts("r1", 2),
				Flows:      crossFlows(rng, "r0", 2),
			}
		}},
		{Name: "parallel-x2", Build: func(rng *sim.Rand) *simnet.TopologySpec {
			return &simnet.TopologySpec{
				Routers:    []simnet.RouterSpec{{Name: "r0"}, {Name: "r1"}},
				Links:      []simnet.LinkSpec{{A: "r0", B: "r1", Parallel: 2, RateBps: 6_000_000, QueueLimit: 32}},
				CrossHosts: crossHosts("r1", 2),
				Flows:      crossFlows(rng, "r0", 2),
			}
		}},
		{Name: "diamond", Build: func(rng *sim.Rand) *simnet.TopologySpec {
			// Two disjoint paths of very different delay between the same
			// router pair, no cross traffic: inert under static routing
			// (BFS pins the first spec bundle, the 8ms path), and the
			// substrate the "route-flap" scenario flaps mid-flow — packets
			// in flight on the slow path are overtaken on the fast one.
			return &simnet.TopologySpec{
				Routers: []simnet.RouterSpec{{Name: "r0"}, {Name: "r1"}},
				Links: []simnet.LinkSpec{
					{A: "r0", B: "r1", RateBps: 20_000_000, Delay: 8 * time.Millisecond, QueueLimit: 64},
					{A: "r0", B: "r1", RateBps: 20_000_000, Delay: time.Millisecond, QueueLimit: 64},
				},
			}
		}},
		{Name: "multihop", Build: func(rng *sim.Rand) *simnet.TopologySpec {
			spec := &simnet.TopologySpec{
				Routers: []simnet.RouterSpec{{Name: "r0"}, {Name: "r1"}, {Name: "r2"}},
				Links: []simnet.LinkSpec{
					{A: "r0", B: "r1", RateBps: 10_000_000, QueueLimit: 48},
					{A: "r1", B: "r2", Parallel: 2, RateBps: 6_000_000, QueueLimit: 32},
				},
				CrossHosts: crossHosts("r2", 3),
			}
			spec.Flows = append(crossFlows(rng, "r0", 2),
				simnet.FlowSpec{Router: "r1", To: "x2",
					Bytes: 256<<10 + rng.IntN(256<<10),
					Start: time.Duration(rng.IntN(20_000)) * time.Microsecond})
			return spec
		}},
	}
}

// topologies caches the registry; Build closures are stateless.
var topologies = Topologies()

// TopologyNames returns the registry names in registry order.
func TopologyNames() []string {
	var names []string
	for _, tp := range topologies {
		names = append(names, tp.Name)
	}
	return names
}

// topologyByName resolves a topology name; "" is the point-to-point path.
func topologyByName(name string) (Topology, error) {
	if name == "" {
		return Topology{Name: "", Build: func(rng *sim.Rand) *simnet.TopologySpec { return nil }}, nil
	}
	for _, tp := range topologies {
		if tp.Name == name {
			return tp, nil
		}
	}
	return Topology{}, fmt.Errorf("campaign: unknown topology %q", name)
}
