package campaign

import (
	"fmt"
	"os"
	"time"
)

// Emitter is the collector side of a campaign: everything downstream of
// the in-order emit frontier — resume/replay, sink lifecycle, checkpoint
// cadence, drain checkpointing, progress and telemetry notification —
// factored out of Run so the distributed coordinator (internal/campaign/
// dist) can merge remote workers' span bytes through exactly the code
// path a single-process run uses. Byte-identity between the two modes is
// not an aspiration but a consequence: there is one emit path.
//
// The caller feeds it contiguous spans in index order via EmitSpan and
// finishes with Finish. Emitter is not safe for concurrent use; the
// single in-order collector goroutine is its contract.
type Emitter struct {
	cfg        Config
	fp         uint64
	start, end int
	replayed   []*TargetResult
	sinks      sinkSet
	ck         Checkpoint
	emitted    int
}

// NewEmitter validates the config, loads the checkpoint and replays the
// emitted prefix when resuming, opens the sinks, and computes the run's
// [Start, End) probe range. The replayed results are exposed via Replayed
// so the caller can fold them into its aggregator — the emitter does not
// own aggregation, only emission.
func NewEmitter(cfg Config) (*Emitter, error) {
	cfg = cfg.defaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("campaign: no targets")
	}
	fp := Fingerprint(cfg.Targets, cfg.Samples)
	start := 0
	var replayed []*TargetResult
	if cfg.Resume && cfg.CheckpointPath == "" {
		// Without this guard a forgotten -checkpoint would silently fall
		// through to a fresh run and truncate the prior output.
		return nil, fmt.Errorf("campaign: Resume requires CheckpointPath")
	}
	if cfg.Resume {
		ck, err := LoadCheckpoint(cfg.CheckpointPath)
		if err == nil {
			if ck.Fingerprint != fp {
				return nil, fmt.Errorf("campaign: checkpoint %s is for a different campaign (fingerprint %x != %x)",
					cfg.CheckpointPath, ck.Fingerprint, fp)
			}
			replayed, err = replayOutput(cfg.OutputPath, ck.Done)
			if err != nil {
				return nil, err
			}
			start = ck.Done
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	sinks, err := openSinks(cfg, replayed)
	if err != nil {
		return nil, err
	}
	end := len(cfg.Targets)
	if cfg.StopAfter > 0 && start+cfg.StopAfter < end {
		end = start + cfg.StopAfter
	}
	return &Emitter{
		cfg:      cfg,
		fp:       fp,
		start:    start,
		end:      end,
		replayed: replayed,
		sinks:    sinks,
		ck:       Checkpoint{Fingerprint: fp, Done: start},
		emitted:  start,
	}, nil
}

// Start returns the first index to probe (0, or the checkpointed frontier
// when resuming).
func (e *Emitter) Start() int { return e.start }

// End returns the exclusive end of the probe range (the target count,
// clamped by StopAfter).
func (e *Emitter) End() int { return e.end }

// Total returns the full campaign target count.
func (e *Emitter) Total() int { return len(e.cfg.Targets) }

// Emitted returns the in-order emit frontier.
func (e *Emitter) Emitted() int { return e.emitted }

// Fingerprint returns the campaign config fingerprint (targets + samples).
func (e *Emitter) Fingerprint() uint64 { return e.fp }

// Samples returns the effective per-measurement sample count (the
// configured value with the campaign default applied) — what remote
// workers must probe with for their fingerprints to match.
func (e *Emitter) Samples() int { return e.cfg.Samples }

// Replayed returns the results replayed from the output prefix on resume.
func (e *Emitter) Replayed() []*TargetResult { return e.replayed }

// HasJSONL reports whether a JSONL sink is configured — whether EmitSpan
// expects rendered JSONL bytes.
func (e *Emitter) HasJSONL() bool { return e.sinks.jsonl != nil }

// HasCSV reports whether a CSV sink is configured.
func (e *Emitter) HasCSV() bool { return e.sinks.csv != nil }

// StartRun announces the run to the telemetry registry and trace.
func (e *Emitter) StartRun(workers int) {
	e.cfg.Obs.StartRun(e.start, len(e.cfg.Targets))
	e.cfg.Trace.RunStart(len(e.cfg.Targets), workers, e.start)
}

// EmitSpan emits one contiguous span's pre-rendered bytes: jsonb is the
// span's newline-terminated JSONL records and csvb its encoded CSV rows,
// both in index order (either may be nil when the matching sink is not
// configured). results feeds caller-provided extra sinks and may be nil
// when there are none; each record is copied before Emit because callers
// pool result slots. Spans must arrive exactly at the frontier — the
// scheduler's in-order collector and the coordinator's re-sequencer both
// guarantee this, and the check makes a violation loud rather than a
// silent output corruption.
func (e *Emitter) EmitSpan(lo, hi int, jsonb, csvb []byte, results []TargetResult) error {
	if lo != e.emitted || hi < lo {
		return fmt.Errorf("campaign: internal: emit of span [%d,%d) at frontier %d", lo, hi, e.emitted)
	}
	if e.sinks.jsonl != nil {
		if err := e.sinks.jsonl.EmitBatch(jsonb); err != nil {
			return err
		}
		if e.cfg.Obs != nil {
			e.cfg.Obs.Sinks.JSONLBatches.Inc()
			e.cfg.Obs.Sinks.JSONLBytes.Add(uint64(len(jsonb)))
		}
	}
	if e.sinks.csv != nil {
		if err := e.sinks.csv.EmitBatch(csvb); err != nil {
			return err
		}
		if e.cfg.Obs != nil {
			e.cfg.Obs.Sinks.CSVBatches.Inc()
			e.cfg.Obs.Sinks.CSVBytes.Add(uint64(len(csvb)))
		}
	}
	if len(e.sinks.extra) > 0 {
		if len(results) != hi-lo {
			return fmt.Errorf("campaign: extra sinks need decoded results for span [%d,%d), got %d", lo, hi, len(results))
		}
		for i := range results {
			r := results[i]
			for _, s := range e.sinks.extra {
				if err := s.Emit(&r); err != nil {
					return err
				}
			}
		}
	}
	prev := e.emitted
	e.emitted = hi
	e.cfg.Trace.SpanEmit(lo, hi, e.emitted)
	if e.cfg.CheckpointPath != "" &&
		(e.emitted/e.cfg.CheckpointEvery > prev/e.cfg.CheckpointEvery || e.emitted == e.end) {
		// Flush first: a checkpoint must never acknowledge results still
		// sitting in a sink buffer, or a crash here would leave the output
		// behind the checkpoint and the campaign unresumable. Checkpoints
		// are batch-granular — one save per crossed CheckpointEvery
		// boundary — with the exact final count preserved.
		flushStart := time.Now()
		for _, s := range e.sinks.all {
			if err := s.Flush(); err != nil {
				return err
			}
		}
		e.ck.Done = e.emitted
		if err := e.ck.Save(e.cfg.CheckpointPath); err != nil {
			return err
		}
		flushNs := time.Since(flushStart).Nanoseconds()
		if e.cfg.Obs != nil {
			e.cfg.Obs.Sinks.FlushNanos.Observe(flushNs)
			e.cfg.Obs.Sinks.Checkpoints.Inc()
		}
		e.cfg.Trace.Checkpoint(e.emitted, flushNs)
	}
	e.cfg.Obs.NoteProgress(e.emitted, len(e.cfg.Targets))
	if e.cfg.Progress != nil {
		e.cfg.Progress(e.emitted, len(e.cfg.Targets))
	}
	return nil
}

// Finish resolves the run's end state and closes the sinks. A quiesced run
// stopped short of End with runErr nil and the Interrupt channel closed;
// Finish persists the exact drain point so a resume continues — and
// completes — the campaign with byte-identical total output. Close errors
// matter even on the success path: the final buffered results reach disk
// during Close, and a full disk must not yield a successful report over a
// truncated output file.
func (e *Emitter) Finish(runErr error) (interrupted bool, err error) {
	err = runErr
	if e.cfg.Interrupt != nil && err == nil && e.emitted < e.end {
		select {
		case <-e.cfg.Interrupt:
			interrupted = true
		default:
		}
	}
	if interrupted {
		e.cfg.Obs.NoteQuiesce()
		e.cfg.Trace.Quiesce(e.emitted)
		if e.cfg.CheckpointPath != "" && e.ck.Done != e.emitted {
			for _, s := range e.sinks.all {
				if ferr := s.Flush(); ferr != nil && err == nil {
					err = ferr
				}
			}
			if err == nil {
				e.ck.Done = e.emitted
				err = e.ck.Save(e.cfg.CheckpointPath)
			}
		}
	}
	closeErr := closeAll(e.sinks.all)
	if err == nil {
		err = closeErr
	}
	return interrupted, err
}
