package campaign

import (
	"fmt"
	"io"
	"sort"

	"reorder/internal/stats"
)

// Aggregator folds per-target results into campaign statistics without
// cross-worker synchronization: each worker owns one shard exclusively and
// adds to it lock-free; shards are merged once, at Summary time. Shards
// hold fixed-bin streaming histograms rather than raw sample pools, so
// campaign memory is constant in the target count — a million-target
// campaign costs the same few kilobytes per shard as a thousand-target
// one. Every merged statistic derives from integer bin counts plus exact
// running min/max, which makes the summary bit-identical no matter how
// targets were interleaved across shards.
type Aggregator struct {
	shards []*Shard
}

// NewAggregator returns an aggregator with one shard per worker.
func NewAggregator(workers int) *Aggregator {
	if workers <= 0 {
		workers = 1
	}
	a := &Aggregator{shards: make([]*Shard, workers)}
	for i := range a.shards {
		a.shards[i] = newShard()
	}
	return a
}

// Shard returns worker w's shard. Callers must ensure only one goroutine
// uses a given shard; the campaign scheduler guarantees this by passing
// each worker its own index.
func (a *Aggregator) Shard(w int) *Shard { return a.shards[w%len(a.shards)] }

// Histogram bin layouts. Rates and exposures live in [0,1]; 256 bins give
// ~0.4% quantile resolution. RTTs are scale-free, so geometric bins hold
// constant relative resolution from 1µs to 1000s. Extents are small
// integers; unit-width bins up to 128 resolve them exactly (deeper
// reordering clamps into the last bin). The edge slices are computed once
// and shared: histograms never mutate their edges, and one campaign
// builds dozens of histograms per worker shard.
var (
	rateEdgesV   = stats.UniformEdges(0, 1, 256)
	rttEdgesV    = stats.LogEdges(1, 1e9, 288)
	extentEdgesV = stats.UniformEdges(0, 128, 128)
)

func rateEdges() []float64   { return rateEdgesV }
func rttEdges() []float64    { return rttEdgesV }
func extentEdges() []float64 { return extentEdgesV }

// Shard accumulates results for one worker. Not safe for sharing.
type Shard struct {
	targets, errors, measured, excluded int
	withReordering                      int
	retried                             int
	dctExcluded                         map[string]int
	perTest                             map[string]*testShard

	pathRates *stats.Histogram
	rtts      *stats.Histogram
	// extents and exposure hold the transfer test's RFC 4737 sequence
	// statistics: per-target maximum reordering extent and the fraction of
	// packets 3-reordered (the classic-dupthresh spurious-retransmit
	// exposure).
	extents  *stats.Histogram
	exposure *stats.Histogram
}

type testShard struct {
	measured, errors, excluded, withReordering int
	fwdRates, revRates                         *stats.Histogram
}

func newShard() *Shard {
	return &Shard{
		dctExcluded: map[string]int{},
		perTest:     map[string]*testShard{},
		pathRates:   stats.NewHistogram(rateEdges()),
		rtts:        stats.NewHistogram(rttEdges()),
		extents:     stats.NewHistogram(extentEdges()),
		exposure:    stats.NewHistogram(rateEdges()),
	}
}

func newTestShard() *testShard {
	return &testShard{
		fwdRates: stats.NewHistogram(rateEdges()),
		revRates: stats.NewHistogram(rateEdges()),
	}
}

// Add folds one result in. It is a pure function of the result's fields,
// so results replayed from a checkpointed JSONL stream aggregate exactly
// as live probes do.
func (s *Shard) Add(r *TargetResult) {
	s.targets++
	if r.Attempts > 1 {
		s.retried++
	}
	ts := s.perTest[r.Test]
	if ts == nil {
		ts = newTestShard()
		s.perTest[r.Test] = ts
	}
	switch {
	case r.Err != "":
		s.errors++
		ts.errors++
		return
	case r.DCTExcluded != "":
		s.excluded++
		ts.excluded++
		s.dctExcluded[r.DCTExcluded]++
		return
	}
	s.measured++
	ts.measured++
	if r.AnyReordering {
		s.withReordering++
		ts.withReordering++
	}
	if r.FwdValid > 0 {
		ts.fwdRates.Add(r.FwdRate)
	}
	if r.RevValid > 0 {
		ts.revRates.Add(r.RevRate)
	}
	if rate, ok := r.PathRate(); ok {
		s.pathRates.Add(rate)
	}
	if r.RTTMicros > 0 {
		s.rtts.Add(float64(r.RTTMicros))
	}
	if r.SeqReceived > 0 {
		s.extents.Add(float64(r.SeqMaxExtent))
		s.exposure.Add(r.SeqDupthreshExposure)
	}
}

// Summary is the merged outcome of a campaign.
type Summary struct {
	// Targets is the number of results aggregated; Measured of them
	// produced rates, Errors failed terminally, Excluded were ruled out
	// by IPID prevalidation, Retried needed more than one attempt.
	Targets, Measured, Errors, Excluded, Retried int

	// WithReordering counts measured targets with at least one reordered
	// sample (the §IV-B headline statistic).
	WithReordering int

	// DCTExcluded counts prevalidation exclusions by reason.
	DCTExcluded map[string]int

	// PathRates summarizes the pooled per-target reordering rates.
	PathRates RateSummary
	// RTTMicros summarizes mean per-target RTTs, in microseconds.
	RTTMicros RateSummary

	// SeqMaxExtents summarizes the per-target maximum RFC 4737 reordering
	// extent over targets whose transfer test observed a data sequence.
	SeqMaxExtents RateSummary
	// DupthreshExposure summarizes the per-target fraction of transfer
	// packets 3-reordered — the share a classic dupthresh-3 TCP sender
	// would misread as loss.
	DupthreshExposure RateSummary

	// Tests holds the per-technique breakdown, sorted by test name.
	Tests []TestSummary

	// Interrupted records that the run quiesced (graceful shutdown) before
	// reaching its planned end: the summary covers the drained, emitted
	// prefix only, and the checkpoint (when configured) points a resumed
	// run at the remainder.
	Interrupted bool
}

// TestSummary is one technique's slice of the campaign.
type TestSummary struct {
	Test                       string
	Measured, Errors, Excluded int
	WithReordering             int
	Fwd, Rev                   RateSummary
}

// RateSummary reduces a streamed sample set: moments plus the quantiles a
// Fig 5-style CDF reading would want. N, Min and Max are exact; Mean and
// the quantiles are histogram-derived, accurate to within one bin width
// (see the bin layouts above).
type RateSummary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
}

// summarizeHistogram reduces a merged histogram.
func summarizeHistogram(h *stats.Histogram) RateSummary {
	if h.Count() == 0 {
		return RateSummary{}
	}
	return RateSummary{
		N: h.Count(), Mean: h.Mean(), Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
}

// FractionWithReordering is WithReordering over Measured.
func (s *Summary) FractionWithReordering() float64 {
	if s.Measured == 0 {
		return 0
	}
	return float64(s.WithReordering) / float64(s.Measured)
}

// Summary merges all shards. Integer counts commute, and the histograms
// merge by adding integer bin counts, so every derived statistic is
// independent of how the scheduler happened to spread targets over
// workers — without ever materializing an O(targets) pool.
func (a *Aggregator) Summary() *Summary {
	out := &Summary{DCTExcluded: map[string]int{}}
	merged := newShard()
	type testPool struct {
		sum *TestSummary
		ts  *testShard
	}
	tests := map[string]*testPool{}
	for _, sh := range a.shards {
		out.Targets += sh.targets
		out.Measured += sh.measured
		out.Errors += sh.errors
		out.Excluded += sh.excluded
		out.Retried += sh.retried
		out.WithReordering += sh.withReordering
		for k, v := range sh.dctExcluded {
			out.DCTExcluded[k] += v
		}
		merged.pathRates.Merge(sh.pathRates)
		merged.rtts.Merge(sh.rtts)
		merged.extents.Merge(sh.extents)
		merged.exposure.Merge(sh.exposure)
		for name, ts := range sh.perTest {
			p := tests[name]
			if p == nil {
				p = &testPool{sum: &TestSummary{Test: name}, ts: newTestShard()}
				tests[name] = p
			}
			p.sum.Measured += ts.measured
			p.sum.Errors += ts.errors
			p.sum.Excluded += ts.excluded
			p.sum.WithReordering += ts.withReordering
			p.ts.fwdRates.Merge(ts.fwdRates)
			p.ts.revRates.Merge(ts.revRates)
		}
	}
	out.PathRates = summarizeHistogram(merged.pathRates)
	out.RTTMicros = summarizeHistogram(merged.rtts)
	out.SeqMaxExtents = summarizeHistogram(merged.extents)
	out.DupthreshExposure = summarizeHistogram(merged.exposure)
	for _, p := range tests {
		p.sum.Fwd = summarizeHistogram(p.ts.fwdRates)
		p.sum.Rev = summarizeHistogram(p.ts.revRates)
		out.Tests = append(out.Tests, *p.sum)
	}
	sort.Slice(out.Tests, func(i, j int) bool { return out.Tests[i].Test < out.Tests[j].Test })
	return out
}

// WriteText renders the summary as the campaign CLI's report. The output
// is a pure function of the aggregated results (no timing), so a fixed
// seed reproduces it byte for byte.
func (s *Summary) WriteText(w io.Writer) {
	if s.Interrupted {
		fmt.Fprintf(w, "campaign: interrupted — partial summary of the drained prefix\n")
	}
	fmt.Fprintf(w, "campaign: %d targets, %d measured, %d excluded (ipid), %d errors, %d retried\n",
		s.Targets, s.Measured, s.Excluded, s.Errors, s.Retried)
	fmt.Fprintf(w, "targets with some reordering: %d (%.1f%% of measured)\n",
		s.WithReordering, s.FractionWithReordering()*100)
	if len(s.DCTExcluded) > 0 {
		var reasons []string
		for k := range s.DCTExcluded {
			reasons = append(reasons, k)
		}
		sort.Strings(reasons)
		fmt.Fprintf(w, "dct exclusions:")
		for _, k := range reasons {
			fmt.Fprintf(w, " %s=%d", k, s.DCTExcluded[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "path reordering rate: mean=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f (n=%d)\n",
		s.PathRates.Mean, s.PathRates.P50, s.PathRates.P90, s.PathRates.P99, s.PathRates.Max, s.PathRates.N)
	fmt.Fprintf(w, "rtt: mean=%.0fus p50=%.0fus p99=%.0fus\n",
		s.RTTMicros.Mean, s.RTTMicros.P50, s.RTTMicros.P99)
	if s.SeqMaxExtents.N > 0 {
		fmt.Fprintf(w, "rfc4737 max reordering extent (transfer): p50=%.1f p90=%.1f p99=%.1f max=%.0f (n=%d)\n",
			s.SeqMaxExtents.P50, s.SeqMaxExtents.P90, s.SeqMaxExtents.P99, s.SeqMaxExtents.Max, s.SeqMaxExtents.N)
		fmt.Fprintf(w, "dupthresh-3 exposure (transfer): mean=%.4f p50=%.4f p90=%.4f p99=%.4f (n=%d)\n",
			s.DupthreshExposure.Mean, s.DupthreshExposure.P50, s.DupthreshExposure.P90,
			s.DupthreshExposure.P99, s.DupthreshExposure.N)
	}
	fmt.Fprintf(w, "%-10s %8s %6s %6s %8s %10s %10s %10s %10s\n",
		"test", "measured", "excl", "errs", "reorder", "fwd-mean", "fwd-p99", "rev-mean", "rev-p99")
	for _, t := range s.Tests {
		fmt.Fprintf(w, "%-10s %8d %6d %6d %8d %10.4f %10.4f %10.4f %10.4f\n",
			t.Test, t.Measured, t.Excluded, t.Errors, t.WithReordering,
			t.Fwd.Mean, t.Fwd.P99, t.Rev.Mean, t.Rev.P99)
	}
}
