package campaign

import (
	"fmt"
	"io"
	"sort"

	"reorder/internal/stats"
)

// Aggregator folds per-target results into campaign statistics without
// cross-worker synchronization: each worker owns one shard exclusively and
// adds to it lock-free; shards are merged once, at Summary time. The merge
// sorts every pooled sample slice before reducing, so the summary is
// bit-identical no matter how targets were interleaved across shards.
type Aggregator struct {
	shards []*Shard
}

// NewAggregator returns an aggregator with one shard per worker.
func NewAggregator(workers int) *Aggregator {
	if workers <= 0 {
		workers = 1
	}
	a := &Aggregator{shards: make([]*Shard, workers)}
	for i := range a.shards {
		a.shards[i] = newShard()
	}
	return a
}

// Shard returns worker w's shard. Callers must ensure only one goroutine
// uses a given shard; the campaign scheduler guarantees this by passing
// each worker its own index.
func (a *Aggregator) Shard(w int) *Shard { return a.shards[w%len(a.shards)] }

// Shard accumulates results for one worker. Not safe for sharing.
type Shard struct {
	targets, errors, measured, excluded int
	withReordering                      int
	retried                             int
	dctExcluded                         map[string]int
	perTest                             map[string]*testShard

	pathRates []float64
	rtts      []float64
}

type testShard struct {
	measured, errors, excluded, withReordering int
	fwdRates, revRates                         []float64
}

func newShard() *Shard {
	return &Shard{dctExcluded: map[string]int{}, perTest: map[string]*testShard{}}
}

// Add folds one result in. It is a pure function of the result's fields,
// so results replayed from a checkpointed JSONL stream aggregate exactly
// as live probes do.
func (s *Shard) Add(r *TargetResult) {
	s.targets++
	if r.Attempts > 1 {
		s.retried++
	}
	ts := s.perTest[r.Test]
	if ts == nil {
		ts = &testShard{}
		s.perTest[r.Test] = ts
	}
	switch {
	case r.Err != "":
		s.errors++
		ts.errors++
		return
	case r.DCTExcluded != "":
		s.excluded++
		ts.excluded++
		s.dctExcluded[r.DCTExcluded]++
		return
	}
	s.measured++
	ts.measured++
	if r.AnyReordering {
		s.withReordering++
		ts.withReordering++
	}
	if r.FwdValid > 0 {
		ts.fwdRates = append(ts.fwdRates, r.FwdRate)
	}
	if r.RevValid > 0 {
		ts.revRates = append(ts.revRates, r.RevRate)
	}
	if rate, ok := r.PathRate(); ok {
		s.pathRates = append(s.pathRates, rate)
	}
	if r.RTTMicros > 0 {
		s.rtts = append(s.rtts, float64(r.RTTMicros))
	}
}

// Summary is the merged outcome of a campaign.
type Summary struct {
	// Targets is the number of results aggregated; Measured of them
	// produced rates, Errors failed terminally, Excluded were ruled out
	// by IPID prevalidation, Retried needed more than one attempt.
	Targets, Measured, Errors, Excluded, Retried int

	// WithReordering counts measured targets with at least one reordered
	// sample (the §IV-B headline statistic).
	WithReordering int

	// DCTExcluded counts prevalidation exclusions by reason.
	DCTExcluded map[string]int

	// PathRates summarizes the pooled per-target reordering rates.
	PathRates RateSummary
	// RTTMicros summarizes mean per-target RTTs, in microseconds.
	RTTMicros RateSummary

	// Tests holds the per-technique breakdown, sorted by test name.
	Tests []TestSummary
}

// TestSummary is one technique's slice of the campaign.
type TestSummary struct {
	Test                       string
	Measured, Errors, Excluded int
	WithReordering             int
	Fwd, Rev                   RateSummary
}

// RateSummary reduces a pooled sample set: moments plus the quantiles a
// Fig 5-style CDF reading would want.
type RateSummary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
}

// summarizeSorted reduces an already-sorted slice.
func summarizeSorted(xs []float64) RateSummary {
	if len(xs) == 0 {
		return RateSummary{}
	}
	sm := stats.Summarize(xs)
	cdf := stats.NewCDF(xs)
	return RateSummary{
		N: sm.N, Mean: sm.Mean, Min: sm.Min, Max: sm.Max,
		P50: cdf.Quantile(0.50), P90: cdf.Quantile(0.90), P99: cdf.Quantile(0.99),
	}
}

// FractionWithReordering is WithReordering over Measured.
func (s *Summary) FractionWithReordering() float64 {
	if s.Measured == 0 {
		return 0
	}
	return float64(s.WithReordering) / float64(s.Measured)
}

// Summary merges all shards. Integer counts commute; sample pools are
// concatenated and sorted before reduction so that float summation order —
// and therefore every derived statistic — is independent of how the
// scheduler happened to spread targets over workers.
func (a *Aggregator) Summary() *Summary {
	out := &Summary{DCTExcluded: map[string]int{}}
	var pathRates, rtts []float64
	tests := map[string]*TestSummary{}
	var testPools = map[string]*struct{ fwd, rev []float64 }{}
	for _, sh := range a.shards {
		out.Targets += sh.targets
		out.Measured += sh.measured
		out.Errors += sh.errors
		out.Excluded += sh.excluded
		out.Retried += sh.retried
		out.WithReordering += sh.withReordering
		for k, v := range sh.dctExcluded {
			out.DCTExcluded[k] += v
		}
		pathRates = append(pathRates, sh.pathRates...)
		rtts = append(rtts, sh.rtts...)
		for name, ts := range sh.perTest {
			t := tests[name]
			if t == nil {
				t = &TestSummary{Test: name}
				tests[name] = t
				testPools[name] = &struct{ fwd, rev []float64 }{}
			}
			t.Measured += ts.measured
			t.Errors += ts.errors
			t.Excluded += ts.excluded
			t.WithReordering += ts.withReordering
			testPools[name].fwd = append(testPools[name].fwd, ts.fwdRates...)
			testPools[name].rev = append(testPools[name].rev, ts.revRates...)
		}
	}
	sort.Float64s(pathRates)
	sort.Float64s(rtts)
	out.PathRates = summarizeSorted(pathRates)
	out.RTTMicros = summarizeSorted(rtts)
	for name, t := range tests {
		p := testPools[name]
		sort.Float64s(p.fwd)
		sort.Float64s(p.rev)
		t.Fwd = summarizeSorted(p.fwd)
		t.Rev = summarizeSorted(p.rev)
		out.Tests = append(out.Tests, *t)
	}
	sort.Slice(out.Tests, func(i, j int) bool { return out.Tests[i].Test < out.Tests[j].Test })
	return out
}

// WriteText renders the summary as the campaign CLI's report. The output
// is a pure function of the aggregated results (no timing), so a fixed
// seed reproduces it byte for byte.
func (s *Summary) WriteText(w io.Writer) {
	fmt.Fprintf(w, "campaign: %d targets, %d measured, %d excluded (ipid), %d errors, %d retried\n",
		s.Targets, s.Measured, s.Excluded, s.Errors, s.Retried)
	fmt.Fprintf(w, "targets with some reordering: %d (%.1f%% of measured)\n",
		s.WithReordering, s.FractionWithReordering()*100)
	if len(s.DCTExcluded) > 0 {
		var reasons []string
		for k := range s.DCTExcluded {
			reasons = append(reasons, k)
		}
		sort.Strings(reasons)
		fmt.Fprintf(w, "dct exclusions:")
		for _, k := range reasons {
			fmt.Fprintf(w, " %s=%d", k, s.DCTExcluded[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "path reordering rate: mean=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f (n=%d)\n",
		s.PathRates.Mean, s.PathRates.P50, s.PathRates.P90, s.PathRates.P99, s.PathRates.Max, s.PathRates.N)
	fmt.Fprintf(w, "rtt: mean=%.0fus p50=%.0fus p99=%.0fus\n",
		s.RTTMicros.Mean, s.RTTMicros.P50, s.RTTMicros.P99)
	fmt.Fprintf(w, "%-10s %8s %6s %6s %8s %10s %10s %10s %10s\n",
		"test", "measured", "excl", "errs", "reorder", "fwd-mean", "fwd-p99", "rev-mean", "rev-p99")
	for _, t := range s.Tests {
		fmt.Fprintf(w, "%-10s %8d %6d %6d %8d %10.4f %10.4f %10.4f %10.4f\n",
			t.Test, t.Measured, t.Excluded, t.Errors, t.WithReordering,
			t.Fwd.Mean, t.Fwd.P99, t.Rev.Mean, t.Rev.P99)
	}
}
