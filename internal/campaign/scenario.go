package campaign

import (
	"fmt"
	"time"

	"reorder/internal/netem"
	"reorder/internal/sim"
	"reorder/internal/simnet"
)

// Scenario is a named, seedable time-varying/adversarial fault schedule:
// a timeline of mid-flow impairment mutations, adversarial middlebox
// elements, or both. Like Impairment and Topology, Build is a pure
// function of the passed stream — edge times and magnitudes jitter per
// target seed, the schedule's shape does not — so a scenario target is as
// hermetic as any other.
type Scenario struct {
	// Name identifies the scenario in target specs; "" is the static case.
	Name string
	// Topology names the routed-graph shape the scenario is designed
	// around ("" = works on any). Route-flap schedules need alternate
	// paths to flap between; the chaos experiment and cmd/campaign use
	// this as the default topology pairing. It is advisory: campaigns may
	// combine any scenario with any topology, and steps that cannot bind
	// are no-ops.
	Topology string
	// Build derives the scenario spec from a per-target stream. A nil
	// return means static.
	Build func(rng *sim.Rand) *simnet.ScenarioSpec
}

// burst appends paired on/off steps for op in direction dir: `count`
// bursts of roughly `width` starting near `start`, magnitude prob while
// on, zero while off — loss/corruption/reordering storms with hard edges.
func burst(steps []simnet.TimelineStep, rng *sim.Rand, op simnet.ScenarioOp, dir simnet.Dir, start, width, gap time.Duration, count int, prob float64) []simnet.TimelineStep {
	t := start + time.Duration(rng.IntN(8_000))*time.Microsecond
	for i := 0; i < count; i++ {
		steps = append(steps,
			simnet.TimelineStep{At: t, Op: op, Dir: dir, Prob: prob},
			simnet.TimelineStep{At: t + width, Op: op, Dir: dir, Prob: 0},
		)
		t += width + gap
	}
	return steps
}

// Scenarios returns the registry of named fault schedules a campaign can
// enumerate alongside profiles, impairments and topologies.
//
//   - "rate-ramp" oscillates the access-link rate between full speed and a
//     hard throttle: bandwidth flaps.
//   - "bufferbloat" imposes a throttled, deep-queued access link mid-flow,
//     then drains it: queueing delay ramps up and collapses.
//   - "loss-burst", "corrupt-storm" and "swap-burst" switch loss,
//     corruption and adjacent-swap probabilities between zero and storm
//     levels with hard edges.
//   - "route-flap" (diamond topology) repeatedly repoints the server and
//     probe routes between an 8ms and a 1ms path mid-flow, so in-flight
//     packets are overtaken — route-change reordering, no probability.
//   - "rst-inject" and "fin-inject" place a middlebox on the forward path
//     forging RST (resp. FIN) teardown segments into measured flows.
//   - "seq-hole" swallows data segments mid-path, opening sequence holes.
//   - "header-rewrite" clamps TTL and the receive window and bleaches TOS
//     — rewriting without injection.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "rate-ramp", Build: func(rng *sim.Rand) *simnet.ScenarioSpec {
			spec := &simnet.ScenarioSpec{}
			throttle := int64(1_500_000 + rng.IntN(1_500_000))
			period := 40*time.Millisecond + time.Duration(rng.IntN(15_000))*time.Microsecond
			t := 18*time.Millisecond + time.Duration(rng.IntN(8_000))*time.Microsecond
			for i := 0; i < 5; i++ {
				spec.Steps = append(spec.Steps,
					simnet.TimelineStep{At: t, Op: simnet.OpLinkRate, Dir: simnet.DirForward, Rate: throttle},
					simnet.TimelineStep{At: t, Op: simnet.OpLinkRate, Dir: simnet.DirReverse, Rate: throttle},
					simnet.TimelineStep{At: t + period/2, Op: simnet.OpLinkRate, Dir: simnet.DirForward, Rate: 100_000_000},
					simnet.TimelineStep{At: t + period/2, Op: simnet.OpLinkRate, Dir: simnet.DirReverse, Rate: 100_000_000},
				)
				t += period
			}
			return spec
		}},
		{Name: "bufferbloat", Build: func(rng *sim.Rand) *simnet.ScenarioSpec {
			// A throttled rate with a deep queue: arrivals outpace the
			// drain, the standing queue grows (bloat), then the throttle
			// lifts and the queue collapses.
			on := 20*time.Millisecond + time.Duration(rng.IntN(10_000))*time.Microsecond
			off := on + 60*time.Millisecond + time.Duration(rng.IntN(20_000))*time.Microsecond
			return &simnet.ScenarioSpec{Steps: []simnet.TimelineStep{
				{At: on, Op: simnet.OpLinkRate, Dir: simnet.DirForward, Rate: int64(800_000 + rng.IntN(700_000))},
				{At: on, Op: simnet.OpLinkQueue, Dir: simnet.DirForward, Queue: 64 + rng.IntN(64)},
				{At: off, Op: simnet.OpLinkRate, Dir: simnet.DirForward, Rate: 100_000_000},
				{At: off, Op: simnet.OpLinkQueue, Dir: simnet.DirForward, Queue: 0},
			}}
		}},
		{Name: "loss-burst", Build: func(rng *sim.Rand) *simnet.ScenarioSpec {
			spec := &simnet.ScenarioSpec{}
			p := 0.25 + rng.Float64()*0.15
			spec.Steps = burst(spec.Steps, rng, simnet.OpLoss, simnet.DirForward, 20*time.Millisecond, 18*time.Millisecond, 25*time.Millisecond, 3, p)
			spec.Steps = burst(spec.Steps, rng, simnet.OpLoss, simnet.DirReverse, 30*time.Millisecond, 18*time.Millisecond, 25*time.Millisecond, 3, p*0.5)
			return spec
		}},
		{Name: "corrupt-storm", Build: func(rng *sim.Rand) *simnet.ScenarioSpec {
			spec := &simnet.ScenarioSpec{}
			p := 0.15 + rng.Float64()*0.15
			spec.Steps = burst(spec.Steps, rng, simnet.OpCorrupt, simnet.DirForward, 18*time.Millisecond, 22*time.Millisecond, 30*time.Millisecond, 3, p)
			return spec
		}},
		{Name: "swap-burst", Build: func(rng *sim.Rand) *simnet.ScenarioSpec {
			spec := &simnet.ScenarioSpec{}
			p := 0.30 + rng.Float64()*0.20
			spec.Steps = burst(spec.Steps, rng, simnet.OpSwap, simnet.DirForward, 15*time.Millisecond, 25*time.Millisecond, 25*time.Millisecond, 4, p)
			return spec
		}},
		{Name: "route-flap", Topology: "diamond", Build: func(rng *sim.Rand) *simnet.ScenarioSpec {
			spec := &simnet.ScenarioSpec{}
			period := 24*time.Millisecond + time.Duration(rng.IntN(12_000))*time.Microsecond
			t := 15*time.Millisecond + time.Duration(rng.IntN(8_000))*time.Microsecond
			link := 1 // start by flapping onto the fast path: overtaking
			for i := 0; i < 14; i++ {
				spec.Steps = append(spec.Steps,
					simnet.TimelineStep{At: t, Op: simnet.OpRouteFlap, Router: "r0", Dst: "server", Link: link},
					simnet.TimelineStep{At: t, Op: simnet.OpRouteFlap, Router: "r1", Dst: "probe", Link: link},
				)
				link = 1 - link
				t += period
			}
			return spec
		}},
		{Name: "rst-inject", Build: func(rng *sim.Rand) *simnet.ScenarioSpec {
			return &simnet.ScenarioSpec{
				Middlebox: &netem.MiddleboxConfig{RSTProb: 0.15 + rng.Float64()*0.15},
			}
		}},
		{Name: "fin-inject", Build: func(rng *sim.Rand) *simnet.ScenarioSpec {
			return &simnet.ScenarioSpec{
				Middlebox: &netem.MiddleboxConfig{FINProb: 0.15 + rng.Float64()*0.15},
			}
		}},
		{Name: "seq-hole", Build: func(rng *sim.Rand) *simnet.ScenarioSpec {
			// The middlebox starts dormant and the timeline flips it on and
			// off: a window of swallowed segments with hard edges.
			on := 15*time.Millisecond + time.Duration(rng.IntN(10_000))*time.Microsecond
			return &simnet.ScenarioSpec{
				Middlebox: &netem.MiddleboxConfig{HoleProb: 0.20 + rng.Float64()*0.15, Inactive: true},
				Steps: []simnet.TimelineStep{
					{At: on, Op: simnet.OpMiddlebox, Dir: simnet.DirForward, Active: true},
					{At: on + 50*time.Millisecond, Op: simnet.OpMiddlebox, Dir: simnet.DirForward, Active: false},
				},
			}
		}},
		{Name: "header-rewrite", Build: func(rng *sim.Rand) *simnet.ScenarioSpec {
			return &simnet.ScenarioSpec{
				Middlebox: &netem.MiddleboxConfig{
					TTLClamp:    uint8(8 + rng.IntN(8)),
					WindowClamp: uint16(2048 + rng.IntN(2048)),
					RewriteTOS:  true,
					TOS:         0,
				},
			}
		}},
	}
}

// scenarios caches the registry; Build closures are stateless.
var scenarios = Scenarios()

// ScenarioNames returns the registry names in registry order.
func ScenarioNames() []string {
	var names []string
	for _, s := range scenarios {
		names = append(names, s.Name)
	}
	return names
}

// scenarioByName resolves a scenario name; "" is the static case.
func scenarioByName(name string) (Scenario, error) {
	if name == "" {
		return Scenario{Name: "", Build: func(rng *sim.Rand) *simnet.ScenarioSpec { return nil }}, nil
	}
	for _, s := range scenarios {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("campaign: unknown scenario %q", name)
}

// ScenarioTopology returns the topology a named scenario is designed
// around ("" when it runs anywhere, or the name is unknown).
func ScenarioTopology(name string) string {
	for _, s := range scenarios {
		if s.Name == name {
			return s.Topology
		}
	}
	return ""
}
