package campaign

import (
	"errors"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedulerOrderedEmit checks that completions are re-sequenced into
// strict index order regardless of worker interleaving.
func TestSchedulerOrderedEmit(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 8})
	const n = 100
	var mu sync.Mutex
	done := make([]bool, n)
	var emitted []int
	err := s.Run(0, n,
		func(worker, index, attempt int) error {
			// Uneven simulated work so completion order scrambles.
			time.Sleep(time.Duration(index%7) * time.Millisecond / 4)
			mu.Lock()
			done[index] = true
			mu.Unlock()
			return nil
		},
		func(index int) error {
			if !done[index] {
				t.Errorf("emit(%d) before its job finished", index)
			}
			emitted = append(emitted, index)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != n {
		t.Fatalf("emitted %d of %d", len(emitted), n)
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emit order broken at %d: got %d", i, v)
		}
	}
}

// TestSchedulerRetryBackoff checks the retry budget and the doubling
// backoff schedule.
func TestSchedulerRetryBackoff(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, Retries: 3, Backoff: 50 * time.Millisecond})
	var slept []time.Duration
	s.sleep = func(d time.Duration) { slept = append(slept, d) }

	attempts := 0
	err := s.Run(0, 1,
		func(worker, index, attempt int) error {
			attempts++
			if attempt < 2 {
				return errors.New("transient")
			}
			return nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("backoff sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff sleeps = %v, want %v", slept, want)
		}
	}
}

// TestSchedulerRetriesExhausted checks that a job failing every attempt
// still counts as done and the run completes.
func TestSchedulerRetriesExhausted(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, Retries: 2})
	attempts := make([]int, 3)
	emitted := 0
	err := s.Run(0, 3,
		func(worker, index, attempt int) error {
			attempts[index]++
			return errors.New("always fails")
		},
		func(index int) error { emitted++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 3 {
		t.Fatalf("emitted = %d, want 3", emitted)
	}
	for i, a := range attempts {
		if a != 3 {
			t.Fatalf("job %d ran %d attempts, want 3", i, a)
		}
	}
}

// TestSchedulerDispatchWindow checks the bounded re-sequencing contract:
// while a slow job holds the emit frontier, job execution never runs more
// than Window indices ahead, so completed-but-unemitted state (and any
// per-index ring the caller keys on MaxWindow) stays bounded.
func TestSchedulerDispatchWindow(t *testing.T) {
	const window = 8
	s := NewScheduler(SchedulerConfig{Workers: 4, Window: window})
	release := make(chan struct{})
	var mu sync.Mutex
	maxStarted := 0
	emitted := 0
	// Index 0 holds the frontier; after the pool has had ample time to
	// overreach (wrongly) past the window, check and release.
	go func() {
		time.Sleep(50 * time.Millisecond)
		mu.Lock()
		got := maxStarted
		mu.Unlock()
		if got >= window {
			t.Errorf("execution reached index %d with frontier held; window is %d", got, window)
		}
		close(release)
	}()
	err := s.Run(0, 100,
		func(worker, index, attempt int) error {
			mu.Lock()
			if index > maxStarted {
				maxStarted = index
			}
			mu.Unlock()
			if index == 0 {
				<-release // hold the emit frontier
			}
			return nil
		},
		func(index int) error { emitted++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 100 {
		t.Fatalf("emitted %d of 100", emitted)
	}
}

// TestSchedulerEmitError checks that an emit failure cancels the run and
// surfaces the error.
func TestSchedulerEmitError(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 4})
	sentinel := errors.New("sink full")
	err := s.Run(0, 64,
		func(worker, index, attempt int) error { return nil },
		func(index int) error {
			if index == 5 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

// TestTokenBucket drives the limiter with a fake clock: the sleep hook is
// the only thing advancing time, so the token arithmetic is fully
// observable.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	var slept time.Duration
	s := NewScheduler(SchedulerConfig{Workers: 1})
	s.now = func() time.Time { return now }
	s.sleep = func(d time.Duration) {
		slept += d
		now = now.Add(d)
	}
	tb := newTokenBucket(10, 1, s.now) // 10 tokens/s, burst 1

	tb.take(s, nil) // the initial burst token: no wait
	if slept != 0 {
		t.Fatalf("first take slept %v, want 0", slept)
	}
	tb.take(s, nil)
	tb.take(s, nil)
	// Each subsequent token accrues at 100ms.
	if want := 200 * time.Millisecond; slept != want {
		t.Fatalf("three takes slept %v, want %v", slept, want)
	}

	if tb := newTokenBucket(0, 4, s.now); tb != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
}

// TestSchedulerCancelInterruptsRateWait checks that an emit failure is
// not held hostage by the rate limiter: workers parked on token waits
// abort when the run is cancelled.
func TestSchedulerCancelInterruptsRateWait(t *testing.T) {
	// One launch every 2 seconds; without interruptible waits this run
	// would take ~6+ seconds to unwind after the emit error.
	s := NewScheduler(SchedulerConfig{Workers: 4, RatePerSec: 0.5, Burst: 1})
	sentinel := errors.New("sink failed")
	began := time.Now()
	err := s.Run(0, 10,
		func(worker, index, attempt int) error { return nil },
		func(index int) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if elapsed := time.Since(began); elapsed > time.Second {
		t.Fatalf("cancel took %v; rate-limit waits were not interrupted", elapsed)
	}
}

// TestSchedulerEmitErrorMidBatch checks cancellation when the emit error
// is raised partway through a span's indices: the error must surface, and
// workers mid-span (including ones parked on the window gate) must unwind
// promptly instead of finishing the campaign.
func TestSchedulerEmitErrorMidBatch(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 4, Batch: 8})
	sentinel := errors.New("sink full mid-batch")
	var jobs atomic.Int64
	began := time.Now()
	err := s.Run(0, 10_000,
		func(worker, index, attempt int) error {
			jobs.Add(1)
			return nil
		},
		func(index int) error {
			if index == 13 { // mid-span for every batch size > 1
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if elapsed := time.Since(began); elapsed > 5*time.Second {
		t.Fatalf("mid-batch cancel took %v", elapsed)
	}
	// The window bounds how much work can have been dispatched past the
	// failed emit; a full run would be 10000 jobs.
	if got := jobs.Load(); got > int64(s.MaxWindow())+13+1 {
		t.Fatalf("ran %d jobs after mid-batch emit error; window is %d", got, s.MaxWindow())
	}
}

// TestSchedulerStopDuringRetryBackoff checks that a worker parked in a
// retry backoff sleep aborts when the run is cancelled: the backoff here
// is far longer than the test budget, so completing promptly proves the
// sleep was interrupted.
func TestSchedulerStopDuringRetryBackoff(t *testing.T) {
	// Batch 1 keeps the clean index in its own span, so its emit (the
	// cancellation trigger) is not gated on the failing spans finishing.
	s := NewScheduler(SchedulerConfig{Workers: 2, Retries: 3, Backoff: time.Minute, Batch: 1})
	sentinel := errors.New("emit failed")
	began := time.Now()
	err := s.Run(0, 8,
		func(worker, index, attempt int) error {
			if index == 0 {
				// Give the other worker time to enter its backoff sleep.
				time.Sleep(50 * time.Millisecond)
				return nil
			}
			return errors.New("always failing: park in backoff")
		},
		func(index int) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if elapsed := time.Since(began); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v; a minute-long backoff was not interrupted", elapsed)
	}
}

// TestSchedulerStopBlockedInTokenTake checks that workers blocked inside
// tokenBucket.take abort on cancellation even at batch granularity (span
// dispatch under rate limiting degrades to single-index spans, but the
// cancel path must hold regardless of the configured batch).
func TestSchedulerStopBlockedInTokenTake(t *testing.T) {
	// One token up front, then one every 10 minutes: every worker but the
	// first parks inside take.
	s := NewScheduler(SchedulerConfig{Workers: 4, RatePerSec: 1.0 / 600, Burst: 1, Batch: 16})
	sentinel := errors.New("emit failed")
	began := time.Now()
	err := s.Run(0, 100,
		func(worker, index, attempt int) error { return nil },
		func(index int) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if elapsed := time.Since(began); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v; token waits were not interrupted", elapsed)
	}
}

// TestSchedulerSpanCoverage is the exactly-once property of span
// dispatch: for randomized worker/window/batch combinations (including
// degenerate ones — window smaller than batch, batch larger than the
// run), every index in [start,end) runs exactly once, spans partition the
// range, and emits arrive in strict index order.
func TestSchedulerSpanCoverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 40; trial++ {
		workers := 1 + rng.IntN(8)
		window := rng.IntN(3) * (1 + rng.IntN(20)) // 0 = adaptive, else 1..40 (clamped)
		batch := rng.IntN(4) * (1 + rng.IntN(30))  // 0 = adaptive, else 1..90
		start := rng.IntN(5)
		end := start + rng.IntN(400)
		s := NewScheduler(SchedulerConfig{Workers: workers, Window: window, Batch: batch})

		ran := make([]int32, end)
		var mu sync.Mutex
		var begun []int // alternating lo, hi
		var emitted []int
		err := s.RunSpans(start, end,
			func(worker, lo, hi int) {
				mu.Lock()
				begun = append(begun, lo, hi)
				mu.Unlock()
			},
			func(worker, index, attempt int) error {
				atomic.AddInt32(&ran[index], 1)
				return nil
			},
			func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					emitted = append(emitted, i)
				}
				return nil
			})
		if err != nil {
			t.Fatalf("trial %d (w=%d win=%d batch=%d [%d,%d)): %v", trial, workers, window, batch, start, end, err)
		}
		for i := start; i < end; i++ {
			if ran[i] != 1 {
				t.Fatalf("trial %d (w=%d win=%d batch=%d): index %d ran %d times", trial, workers, window, batch, i, ran[i])
			}
		}
		if len(emitted) != end-start {
			t.Fatalf("trial %d: emitted %d of %d", trial, len(emitted), end-start)
		}
		for k, v := range emitted {
			if v != start+k {
				t.Fatalf("trial %d: emit order broken at %d: got %d", trial, k, v)
			}
		}
		// Spans must partition [start,end): sorted by lo they must tile
		// exactly, with no overlap or gap.
		type sp struct{ lo, hi int }
		spans := make([]sp, 0, len(begun)/2)
		for i := 0; i < len(begun); i += 2 {
			spans = append(spans, sp{begun[i], begun[i+1]})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		at := start
		for _, q := range spans {
			if q.lo != at || q.hi <= q.lo || q.hi > end {
				t.Fatalf("trial %d: spans do not partition [%d,%d): %v", trial, start, end, spans)
			}
			at = q.hi
		}
		if at != end {
			t.Fatalf("trial %d: spans stop at %d, want %d", trial, at, end)
		}
	}
}

// TestSchedulerAdaptiveWindowBounds drives a run with wildly uneven job
// latencies under the adaptive window and checks the structural
// guarantees the ring-buffer callers rely on: execution never runs more
// than MaxWindow ahead of the emit frontier, and everything completes.
func TestSchedulerAdaptiveWindowBounds(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 8}) // Window 0: adaptive
	maxW := s.MaxWindow()
	var mu sync.Mutex
	frontier := 0
	worst := 0
	err := s.Run(0, 500,
		func(worker, index, attempt int) error {
			mu.Lock()
			if ahead := index - frontier; ahead > worst {
				worst = ahead
			}
			mu.Unlock()
			if index%97 == 0 {
				time.Sleep(2 * time.Millisecond) // straggler
			}
			return nil
		},
		func(index int) error {
			mu.Lock()
			frontier = index + 1
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if worst >= maxW {
		t.Fatalf("execution ran %d ahead of the frontier; MaxWindow is %d", worst, maxW)
	}
}

// TestSchedulerRateLimit checks that the pool threads every attempt
// through the bucket.
func TestSchedulerRateLimit(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, RatePerSec: 1000, Burst: 1})
	var mu sync.Mutex
	var slept time.Duration
	now := time.Unix(0, 0)
	s.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	s.sleep = func(d time.Duration) {
		mu.Lock()
		slept += d
		now = now.Add(d)
		mu.Unlock()
	}
	err := s.Run(0, 5, func(worker, index, attempt int) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5 launches, burst 1: at least 4 tokens accrued by sleeping.
	if slept < 4*time.Millisecond {
		t.Fatalf("rate limiter slept %v, want >= 4ms", slept)
	}
}
