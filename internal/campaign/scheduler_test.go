package campaign

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSchedulerOrderedEmit checks that completions are re-sequenced into
// strict index order regardless of worker interleaving.
func TestSchedulerOrderedEmit(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 8})
	const n = 100
	var mu sync.Mutex
	done := make([]bool, n)
	var emitted []int
	err := s.Run(0, n,
		func(worker, index, attempt int) error {
			// Uneven simulated work so completion order scrambles.
			time.Sleep(time.Duration(index%7) * time.Millisecond / 4)
			mu.Lock()
			done[index] = true
			mu.Unlock()
			return nil
		},
		func(index int) error {
			if !done[index] {
				t.Errorf("emit(%d) before its job finished", index)
			}
			emitted = append(emitted, index)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != n {
		t.Fatalf("emitted %d of %d", len(emitted), n)
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emit order broken at %d: got %d", i, v)
		}
	}
}

// TestSchedulerRetryBackoff checks the retry budget and the doubling
// backoff schedule.
func TestSchedulerRetryBackoff(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, Retries: 3, Backoff: 50 * time.Millisecond})
	var slept []time.Duration
	s.sleep = func(d time.Duration) { slept = append(slept, d) }

	attempts := 0
	err := s.Run(0, 1,
		func(worker, index, attempt int) error {
			attempts++
			if attempt < 2 {
				return errors.New("transient")
			}
			return nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("backoff sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff sleeps = %v, want %v", slept, want)
		}
	}
}

// TestSchedulerRetriesExhausted checks that a job failing every attempt
// still counts as done and the run completes.
func TestSchedulerRetriesExhausted(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, Retries: 2})
	attempts := make([]int, 3)
	emitted := 0
	err := s.Run(0, 3,
		func(worker, index, attempt int) error {
			attempts[index]++
			return errors.New("always fails")
		},
		func(index int) error { emitted++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 3 {
		t.Fatalf("emitted = %d, want 3", emitted)
	}
	for i, a := range attempts {
		if a != 3 {
			t.Fatalf("job %d ran %d attempts, want 3", i, a)
		}
	}
}

// TestSchedulerDispatchWindow checks the bounded re-sequencing contract:
// while a slow job holds the emit frontier, dispatch never runs more than
// Window indices ahead, so completed-but-unemitted state stays bounded.
func TestSchedulerDispatchWindow(t *testing.T) {
	const window = 8
	s := NewScheduler(SchedulerConfig{Workers: 2, Window: window})
	release := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	maxStarted, completed := 0, 0
	emitted := 0
	err := s.Run(0, 100,
		func(worker, index, attempt int) error {
			mu.Lock()
			if index > maxStarted {
				maxStarted = index
			}
			mu.Unlock()
			if index == 0 {
				<-release // hold the emit frontier
				return nil
			}
			mu.Lock()
			completed++
			saturated := completed == window-1
			mu.Unlock()
			if saturated {
				// Everything the window allows has finished; give the
				// feeder a moment to (wrongly) overreach, then check.
				go func() {
					time.Sleep(20 * time.Millisecond)
					mu.Lock()
					got := maxStarted
					mu.Unlock()
					if got >= window {
						t.Errorf("dispatch reached index %d with frontier held; window is %d", got, window)
					}
					once.Do(func() { close(release) })
				}()
			}
			return nil
		},
		func(index int) error { emitted++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 100 {
		t.Fatalf("emitted %d of 100", emitted)
	}
}

// TestSchedulerEmitError checks that an emit failure cancels the run and
// surfaces the error.
func TestSchedulerEmitError(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 4})
	sentinel := errors.New("sink full")
	err := s.Run(0, 64,
		func(worker, index, attempt int) error { return nil },
		func(index int) error {
			if index == 5 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

// TestTokenBucket drives the limiter with a fake clock: the sleep hook is
// the only thing advancing time, so the token arithmetic is fully
// observable.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	var slept time.Duration
	s := NewScheduler(SchedulerConfig{Workers: 1})
	s.now = func() time.Time { return now }
	s.sleep = func(d time.Duration) {
		slept += d
		now = now.Add(d)
	}
	tb := newTokenBucket(10, 1, s.now) // 10 tokens/s, burst 1

	tb.take(s, nil) // the initial burst token: no wait
	if slept != 0 {
		t.Fatalf("first take slept %v, want 0", slept)
	}
	tb.take(s, nil)
	tb.take(s, nil)
	// Each subsequent token accrues at 100ms.
	if want := 200 * time.Millisecond; slept != want {
		t.Fatalf("three takes slept %v, want %v", slept, want)
	}

	if tb := newTokenBucket(0, 4, s.now); tb != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
}

// TestSchedulerCancelInterruptsRateWait checks that an emit failure is
// not held hostage by the rate limiter: workers parked on token waits
// abort when the run is cancelled.
func TestSchedulerCancelInterruptsRateWait(t *testing.T) {
	// One launch every 2 seconds; without interruptible waits this run
	// would take ~6+ seconds to unwind after the emit error.
	s := NewScheduler(SchedulerConfig{Workers: 4, RatePerSec: 0.5, Burst: 1})
	sentinel := errors.New("sink failed")
	began := time.Now()
	err := s.Run(0, 10,
		func(worker, index, attempt int) error { return nil },
		func(index int) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if elapsed := time.Since(began); elapsed > time.Second {
		t.Fatalf("cancel took %v; rate-limit waits were not interrupted", elapsed)
	}
}

// TestSchedulerRateLimit checks that the pool threads every attempt
// through the bucket.
func TestSchedulerRateLimit(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, RatePerSec: 1000, Burst: 1})
	var mu sync.Mutex
	var slept time.Duration
	now := time.Unix(0, 0)
	s.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	s.sleep = func(d time.Duration) {
		mu.Lock()
		slept += d
		now = now.Add(d)
		mu.Unlock()
	}
	err := s.Run(0, 5, func(worker, index, attempt int) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5 launches, burst 1: at least 4 tokens accrued by sleeping.
	if slept < 4*time.Millisecond {
		t.Fatalf("rate limiter slept %v, want >= 4ms", slept)
	}
}
