package campaign

import (
	"time"

	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/obs"
	"reorder/internal/sim"
	"reorder/internal/simnet"
)

// TargetResult is the streamed, per-target campaign record. Field order is
// the JSONL column order; keep it append-only so old campaign outputs stay
// parseable.
type TargetResult struct {
	Index      int    `json:"index"`
	Name       string `json:"name"`
	Profile    string `json:"profile"`
	Impairment string `json:"impairment"`
	Test       string `json:"test"`
	Seed       uint64 `json:"seed"`

	// Attempts is how many probe attempts this result took (1 = first try).
	Attempts int `json:"attempts"`
	// Err is the terminal error, empty on success.
	Err string `json:"error,omitempty"`
	// DCTExcluded records why IPID prevalidation ruled the dual test out.
	DCTExcluded string `json:"dct_excluded,omitempty"`

	FwdValid     int     `json:"fwd_valid"`
	FwdReordered int     `json:"fwd_reordered"`
	FwdRate      float64 `json:"fwd_rate"`
	RevValid     int     `json:"rev_valid"`
	RevReordered int     `json:"rev_reordered"`
	RevRate      float64 `json:"rev_rate"`

	// AnyReordering is the §IV-B "measurement with at least one reordered
	// sample" bit.
	AnyReordering bool `json:"any_reordering"`
	// RTTMicros is the mean sample round-trip time in microseconds.
	RTTMicros int64 `json:"rtt_us"`
	// SeqRatio is the IPPM reordered-packet ratio of the transfer test's
	// arrival sequence (transfer only).
	SeqRatio float64 `json:"seq_ratio,omitempty"`

	// SeqReceived is the number of data segments in the transfer test's
	// arrival sequence; the RFC 4737 fields below are meaningful only when
	// it is nonzero (transfer only, like SeqRatio).
	SeqReceived int `json:"seq_received,omitempty"`
	// SeqMaxExtent is the largest RFC 4737 §4.2.1 reordering extent in the
	// arrival sequence: how far back, in arrival positions, the most
	// displaced segment landed.
	SeqMaxExtent int `json:"seq_max_extent,omitempty"`
	// SeqNReordering is the count of 3-reordered segments (RFC 4737 §5.4
	// n-reordering at n = 3, the classic TCP duplicate-ACK threshold).
	SeqNReordering int `json:"seq_n_reordering,omitempty"`
	// SeqDupthreshExposure is SeqNReordering over SeqReceived: the
	// fraction of segments a dupthresh-3 sender would misread as loss and
	// spuriously fast-retransmit.
	SeqDupthreshExposure float64 `json:"seq_dupthresh_exposure,omitempty"`

	// Topology names the routed-graph topology the target ran over; empty
	// for the classic point-to-point path, so pre-topology records are
	// byte-identical. JSONL column order is append-only.
	Topology string `json:"topology,omitempty"`
	// Scenario names the fault schedule the target ran under; empty for
	// the static case, so pre-scenario records are byte-identical. Keep
	// this field last: JSONL column order is append-only.
	Scenario string `json:"scenario,omitempty"`
}

// PathRate is the target's overall reordering rate: valid samples from
// both directions pooled, as the survey's per-path statistic pools them.
func (r *TargetResult) PathRate() (float64, bool) {
	valid := r.FwdValid + r.RevValid
	if valid == 0 {
		return 0, false
	}
	return float64(r.FwdReordered+r.RevReordered) / float64(valid), true
}

// ProbeArena is the reusable machinery a campaign worker probes targets
// with: one simulated scenario and one prober, re-seeded per target
// instead of constructed afresh. Reuse is observably equivalent to fresh
// construction — simnet.Net.Reset and core.Prober.Reset restore the exact
// fresh-start state — so arena probes yield byte-identical campaign output
// at any worker count and across resume; the campaign tests pin this. A
// ProbeArena is not safe for concurrent use: one worker, one arena.
type ProbeArena struct {
	net    *simnet.Net
	prober *core.Prober

	// rng, impRng, topoRng and scnRng are the per-target stream and its
	// impairment, topology and scenario forks, reseeded per probe instead
	// of allocated. topoRng and scnRng are forked only for targets that
	// carry a topology (resp. scenario), so classic probes consume the
	// stream exactly as they did before either dimension existed.
	rng, impRng, topoRng, scnRng *sim.Rand
	// backends is the scratch the load-balanced pool's profiles are
	// copied into before per-target mutation (the prototypes are shared).
	backends []host.Profile

	// obs, when set, receives per-probe simulator and netem statistics,
	// harvested once per target after the probe runs (every stat is final
	// then: the scenario resets at the start of the next probe, not the end
	// of this one). Harvesting is a handful of atomic adds, off the sample
	// path entirely. lastSimNs is the most recent probe's simulated time,
	// kept for retry trace events.
	obs       *obs.Worker
	lastSimNs int64
}

// NewProbeArena returns an empty arena; the first probe populates it.
func NewProbeArena() *ProbeArena { return &ProbeArena{} }

// debugDegenerateTopology, when set by tests, forces point-to-point targets
// through the graph constructor's empty-spec dispatch. Never set outside
// tests.
var debugDegenerateTopology bool

// debugZeroSchedule, when set by tests, attaches zeroMagnitudeScenario to
// static targets: a timeline whose every step reasserts the value it finds,
// pinning that live schedule timers alone never move a byte of output.
// Never set outside tests.
var debugZeroSchedule bool

// zeroMagnitudeScenario is a schedule of deliberate no-op edges: rate steps
// with Rate 0 reassert the current rate, queue steps with Queue -1 keep the
// current bound. It draws no randomness to build or apply, so attaching it
// must leave campaign output byte-identical.
var zeroMagnitudeScenario = &simnet.ScenarioSpec{Steps: []simnet.TimelineStep{
	{At: 5 * time.Millisecond, Op: simnet.OpLinkRate, Dir: simnet.DirForward, Rate: 0},
	{At: 5 * time.Millisecond, Op: simnet.OpLinkQueue, Dir: simnet.DirForward, Queue: -1},
	{At: 12 * time.Millisecond, Op: simnet.OpLinkRate, Dir: simnet.DirReverse, Rate: 0},
	{At: 25 * time.Millisecond, Op: simnet.OpLinkQueue, Dir: simnet.DirReverse, Queue: -1},
	{At: 40 * time.Millisecond, Op: simnet.OpLinkRate, Dir: simnet.DirForward, Rate: 0},
	{At: 70 * time.Millisecond, Op: simnet.OpLinkRate, Dir: simnet.DirReverse, Rate: 0},
}}

// SetObserver attaches a telemetry shard to the arena. The shard must be
// owned by the same worker as the arena (one writer per shard).
func (a *ProbeArena) SetObserver(w *obs.Worker) { a.obs = w }

// LastSimNanos returns the simulated time the most recent probe consumed,
// 0 when no observer is attached.
func (a *ProbeArena) LastSimNanos() int64 { return a.lastSimNs }

// harvest folds the finished probe's simulator and netem statistics into
// the observer shard.
func (a *ProbeArena) harvest() {
	o := a.obs
	ls := a.net.Loop.Stats()
	o.SimEvents.Add(ls.Executed)
	o.SimReschedules.Add(ls.Rescheduled)
	o.SimCompactions.Add(ls.Compactions)
	o.SimPeakHeap.SetMax(int64(ls.PeakHeapSize))
	a.lastSimNs = int64(a.net.Loop.Now())
	o.SimNanos.AddInt(a.lastSimNs)
	ns := a.net.Stats()
	o.FramesIn.Add(ns.ElemIn)
	o.FramesOut.Add(ns.ElemOut)
	o.FramesDrop.Add(ns.ElemDropped)
	o.FramesSwap.Add(ns.ElemSwapped)
	o.FramesBorn.Add(ns.FramesBorn)
	o.Materialized.Add(ns.Materialized)
}

// ProbeTarget is the package-level ProbeTarget probing through the arena.
func (a *ProbeArena) ProbeTarget(t Target, samples int, attempt int) *TargetResult {
	res := &TargetResult{}
	probeTargetInto(res, t, samples, attempt, a)
	return res
}

// ProbeTargetInto probes t through the arena into a caller-owned result,
// overwriting it completely — the allocation-free form the campaign's
// batch pipeline uses with ring-slot results.
func (a *ProbeArena) ProbeTargetInto(res *TargetResult, t Target, samples int, attempt int) {
	probeTargetInto(res, t, samples, attempt, a)
}

// ProbeTarget runs one target's measurement hermetically: the scenario,
// prober and all randomness derive from the target spec and attempt
// number alone, so a probe's outcome is independent of scheduling, worker
// count and whatever else the campaign is doing. Errors are recorded in
// the result rather than returned: a campaign always yields one record
// per target.
func ProbeTarget(t Target, samples int, attempt int) *TargetResult {
	res := &TargetResult{}
	probeTargetInto(res, t, samples, attempt, nil)
	return res
}

func probeTargetInto(res *TargetResult, t Target, samples int, attempt int, arena *ProbeArena) {
	if samples <= 0 {
		samples = 8
	}
	*res = TargetResult{
		Index: t.Index, Name: t.Name, Profile: t.Profile,
		Impairment: t.Impairment, Test: t.Test, Seed: t.Seed,
		Attempts: attempt + 1, Topology: t.Topology, Scenario: t.Scenario,
	}

	cfg, err := resolveProfile(t.Profile)
	if err != nil {
		res.Err = err.Error()
		return
	}
	imp, err := impairmentByName(t.Impairment)
	if err != nil {
		res.Err = err.Error()
		return
	}
	topo, err := topologyByName(t.Topology)
	if err != nil {
		res.Err = err.Error()
		return
	}
	scn, err := scenarioByName(t.Scenario)
	if err != nil {
		res.Err = err.Error()
		return
	}

	// Retries re-derive the stream so a fresh attempt sees fresh ports,
	// ISNs and path draws — deterministically, since the attempt sequence
	// of a target is itself deterministic. An arena reseeds its retained
	// streams; the standalone path allocates fresh ones.
	var rng *sim.Rand
	if arena != nil {
		if arena.rng == nil {
			arena.rng = sim.NewRand(t.Seed, 0xca3^uint64(attempt))
		} else {
			arena.rng.Reseed(t.Seed, 0xca3^uint64(attempt))
		}
		rng = arena.rng
	} else {
		rng = sim.NewRand(t.Seed, 0xca3^uint64(attempt))
	}
	cfg.Seed = rng.Uint64()
	if arena != nil {
		arena.impRng = rng.ForkInto(arena.impRng, 1)
		cfg.Forward, cfg.Reverse = imp.Build(arena.impRng)
	} else {
		cfg.Forward, cfg.Reverse = imp.Build(rng.Fork(1))
	}
	// Topology targets consume one extra fork (label 2); point-to-point
	// targets skip it entirely, keeping their stream — and therefore their
	// bytes — identical to pre-topology campaigns.
	if t.Topology != "" {
		if arena != nil {
			arena.topoRng = rng.ForkInto(arena.topoRng, 2)
			cfg.Topology = topo.Build(arena.topoRng)
		} else {
			cfg.Topology = topo.Build(rng.Fork(2))
		}
	} else if debugDegenerateTopology {
		// Test hook: route the point-to-point case through the graph
		// constructor's empty-spec branch without touching the stream, so
		// golden-output tests can pin that the dispatch itself is inert.
		cfg.Topology = &simnet.TopologySpec{}
	}
	// Scenario targets consume one more fork (label 3), again skipped
	// entirely for static targets so their stream stays frozen.
	if t.Scenario != "" {
		if arena != nil {
			arena.scnRng = rng.ForkInto(arena.scnRng, 3)
			cfg.Scenario = scn.Build(arena.scnRng)
		} else {
			cfg.Scenario = scn.Build(rng.Fork(3))
		}
	} else if debugZeroSchedule {
		// Test hook: attach a schedule of pure no-op edges without touching
		// the stream, pinning that timeline timers alone are byte-inert.
		cfg.Scenario = zeroMagnitudeScenario
	}
	// The load-balanced pool's backend prototypes are shared; copy before
	// the per-target ObjectSize mutation below.
	if len(cfg.Backends) > 0 {
		if arena != nil {
			cfg.Backends = append(arena.backends[:0], cfg.Backends...)
			arena.backends = cfg.Backends
		} else {
			cfg.Backends = append([]host.Profile(nil), cfg.Backends...)
		}
	}
	// Size served objects so one transfer test stays around `samples`
	// segments, like the survey's root web objects.
	cfg.Server.TCP.ObjectSize = (samples + 1) * 256
	for i := range cfg.Backends {
		cfg.Backends[i].TCP.ObjectSize = (samples + 1) * 256
	}
	// Campaigns never read the ground-truth captures; skip recording.
	// Taps are pass-throughs, so this changes no measurement outcome.
	cfg.DisableCaptures = true

	// The target stream is consumed in the same order on both paths:
	// scenario seed, path-spec fork, prober seed.
	var n *simnet.Net
	var prober *core.Prober
	switch {
	case arena == nil:
		n = simnet.New(cfg)
		prober = core.NewProber(n.Probe(), n.ServerAddr(), rng.Uint64())
	case arena.net == nil:
		arena.net = simnet.New(cfg)
		arena.prober = core.NewProber(arena.net.Probe(), arena.net.ServerAddr(), rng.Uint64())
		n, prober = arena.net, arena.prober
		if arena.obs != nil {
			arena.obs.ArenaBuilds.Inc()
		}
	default:
		arena.net.Reset(cfg)
		arena.prober.Reset(rng.Uint64())
		n, prober = arena.net, arena.prober
		if arena.obs != nil {
			arena.obs.ArenaResets.Inc()
		}
	}

	runProbeTest(res, t.Test, samples, prober)
	if arena != nil && arena.obs != nil {
		arena.harvest()
	}
}

// runProbeTest executes the target's technique against a built scenario and
// fills the measurement fields of res; split out of probeTargetInto so the
// arena can harvest end-of-probe telemetry on every exit path.
func runProbeTest(res *TargetResult, test string, samples int, prober *core.Prober) {
	var err error
	var out *core.Result
	switch test {
	case "single":
		out, err = prober.SingleConnectionTest(core.SCTOptions{Samples: samples, Reversed: true})
	case "dual":
		rep, verr := prober.ValidateIPID(core.IPIDCheckOptions{Probes: 12})
		switch {
		case verr != nil:
			err = verr
		case !rep.Usable():
			if rep.Constant {
				res.DCTExcluded = "zero-ipid"
			} else {
				res.DCTExcluded = "non-monotonic"
			}
			return
		default:
			out, err = prober.DualConnectionTest(core.DCTOptions{Samples: samples})
		}
	case "syn":
		out, err = prober.SYNTest(core.SYNOptions{Samples: samples})
	case "transfer":
		out, err = prober.DataTransferTest(core.TransferOptions{IdleTimeout: 500 * time.Millisecond})
	default:
		res.Err = "campaign: unknown test " + test
		return
	}
	if err != nil {
		res.Err = err.Error()
		return
	}

	fwd, rev := out.Forward(), out.Reverse()
	res.FwdValid, res.FwdReordered, res.FwdRate = fwd.Valid(), fwd.Reordered, fwd.Rate()
	res.RevValid, res.RevReordered, res.RevRate = rev.Valid(), rev.Reordered, rev.Rate()
	res.AnyReordering = out.AnyReordering()
	res.RTTMicros = out.MeanRTT().Microseconds()
	if sm := out.SequenceMetrics(); sm != nil {
		res.SeqRatio = sm.Ratio()
		res.SeqReceived = sm.Received
		res.SeqMaxExtent = sm.MaxExtent()
		res.SeqNReordering = sm.NReordered(3)
		if sm.Received > 0 {
			res.SeqDupthreshExposure = float64(res.SeqNReordering) / float64(sm.Received)
		}
	}
	return
}
