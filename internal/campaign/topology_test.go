package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGraphConstructorGoldenSeam pins the tentpole's compatibility seam:
// point-to-point scenarios routed through the topology-graph constructor's
// degenerate dispatch (an empty spec instead of nil) must still produce
// the pre-refactor golden bytes across worker counts, batching and a
// mid-batch resume.
func TestGraphConstructorGoldenSeam(t *testing.T) {
	debugDegenerateTopology = true
	defer func() { debugDegenerateTopology = false }()
	for _, m := range [][2]int{{1, 8}, {4, 8}, {16, 64}} {
		for _, split := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/batch=%d/split=%v", m[0], m[1], split)
			jsonl, csv, _, _ := runGoldenCampaign(t, m[0], m[1], 0, split)
			if got := sha256Hex(jsonl); got != goldenJSONLSHA {
				t.Errorf("%s: degenerate graph dispatch changed JSONL bytes: %s", name, got)
			}
			if got := sha256Hex(csv); got != goldenCSVSHA {
				t.Errorf("%s: degenerate graph dispatch changed CSV bytes: %s", name, got)
			}
		}
	}
}

func TestEnumerateTopologies(t *testing.T) {
	spec := EnumSpec{
		Profiles:    []string{"freebsd4"},
		Impairments: []string{"clean"},
		Tests:       []string{"single"},
		Seeds:       2,
		Topologies:  []string{"", "parallel-x2"},
	}
	targets, err := Enumerate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 4 {
		t.Fatalf("enumerated %d targets, want 4", len(targets))
	}
	// Topology is the outermost dimension; "" targets come first and are
	// identical to a topology-free enumeration.
	plain, err := Enumerate(EnumSpec{
		Profiles: spec.Profiles, Impairments: spec.Impairments,
		Tests: spec.Tests, Seeds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if targets[i] != plain[i] {
			t.Fatalf("target %d: %+v != topology-free %+v", i, targets[i], plain[i])
		}
	}
	for _, tg := range targets[2:] {
		if tg.Topology != "parallel-x2" {
			t.Fatalf("topology = %q", tg.Topology)
		}
		if !strings.HasSuffix(tg.Name, "@parallel-x2") {
			t.Fatalf("name %q lacks topology suffix", tg.Name)
		}
	}
	// The topology is mixed into the seed, so the same replica draws a
	// different scenario on a different graph.
	if targets[2].Seed == targets[0].Seed {
		t.Fatal("topology not mixed into derived seed")
	}
	if _, err := Enumerate(EnumSpec{Topologies: []string{"no-such"}}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestTargetsFileTopologyRoundTrip(t *testing.T) {
	targets, err := Enumerate(EnumSpec{
		Profiles:    []string{"freebsd4", "linux22"},
		Impairments: []string{"clean"},
		Tests:       []string{"single", "transfer"},
		Topologies:  []string{"", "bottleneck", "multihop"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTargets(&buf, targets); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTargets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(targets) {
		t.Fatalf("loaded %d targets, want %d", len(loaded), len(targets))
	}
	for i := range targets {
		if loaded[i] != targets[i] {
			t.Fatalf("target %d: %+v != %+v", i, loaded[i], targets[i])
		}
	}
	if _, err := LoadTargets(strings.NewReader("freebsd4 clean single 1 no-such-topo\n")); err == nil {
		t.Fatal("unknown topology in targets file accepted")
	}
}

// topoCampaign runs a mixed p2p+topology campaign and returns its JSONL
// and CSV bytes.
func topoCampaign(t *testing.T, workers, batch int, split bool) ([]byte, []byte) {
	t.Helper()
	targets, err := Enumerate(EnumSpec{
		Profiles:    []string{"freebsd4"},
		Impairments: []string{"clean", "swap-light"},
		Tests:       []string{"single", "dual", "transfer"},
		Seeds:       2,
		Topologies:  []string{"", "bottleneck", "parallel-x2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	csv := filepath.Join(dir, "out.csv")
	ckpt := filepath.Join(dir, "ckpt.json")
	phases := [][2]int{{0, 0}}
	if split {
		phases = [][2]int{{17, 0}, {0, 1}}
	}
	for _, ph := range phases {
		_, err := Run(Config{
			Targets: targets, Samples: 4, Workers: workers, Batch: batch,
			OutputPath: out, CSVPath: csv, CheckpointPath: ckpt,
			StopAfter: ph[0], Resume: ph[1] == 1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	jsonl, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	csvData, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	return jsonl, csvData
}

// TestTopologyCampaignSchedulingInvariance extends the byte-identity
// contract to topology targets: worker count, batch size and a mid-run
// resume must not change a byte of JSONL or CSV — which also pins that a
// pooled topology graph reset between targets is observably identical to
// a freshly built one.
func TestTopologyCampaignSchedulingInvariance(t *testing.T) {
	refJSONL, refCSV := topoCampaign(t, 1, 1, false)
	if !bytes.Contains(refCSV, []byte("topology")) {
		t.Fatal("topology column missing from mixed-campaign CSV")
	}
	if !bytes.Contains(refJSONL, []byte(`"topology":"parallel-x2"`)) {
		t.Fatal("topology field missing from JSONL records")
	}
	// p2p records must not grow the field.
	first := refJSONL[:bytes.IndexByte(refJSONL, '\n')]
	if bytes.Contains(first, []byte(`"topology"`)) {
		t.Fatalf("point-to-point record gained a topology field: %s", first)
	}
	for _, m := range [][2]int{{4, 8}, {16, 3}} {
		jsonl, csv := topoCampaign(t, m[0], m[1], false)
		if !bytes.Equal(jsonl, refJSONL) || !bytes.Equal(csv, refCSV) {
			t.Fatalf("workers=%d batch=%d changed campaign bytes", m[0], m[1])
		}
	}
	jsonl, csv := topoCampaign(t, 4, 8, true)
	if !bytes.Equal(jsonl, refJSONL) || !bytes.Equal(csv, refCSV) {
		t.Fatal("resumed topology campaign differs from uninterrupted run")
	}
}

// TestCongestionInducedReordering is the tentpole's acceptance criterion:
// a shared-bottleneck topology whose inter-router bundle is two parallel
// links loaded by two background TCP flows — with the "clean" impairment,
// i.e. ZERO mechanism-injected reordering, loss or jitter — must produce
// measurable reordering in probe measurements, purely from round-robin
// spray across unevenly queued links.
func TestCongestionInducedReordering(t *testing.T) {
	targets, err := Enumerate(EnumSpec{
		Profiles:    []string{"freebsd4"},
		Impairments: []string{"clean"},
		Tests:       []string{"single", "dual", "transfer"},
		Seeds:       6,
		Topologies:  []string{"parallel-x2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	reordered, probed := 0, 0
	sink := FuncSink(func(r *TargetResult) error {
		if r.Err == "" && r.DCTExcluded == "" {
			probed++
			if r.AnyReordering {
				reordered++
			}
		}
		return nil
	})
	if _, err := Run(Config{Targets: targets, Samples: 16, Workers: 4, Sinks: []Sink{sink}}); err != nil {
		t.Fatal(err)
	}
	if probed == 0 {
		t.Fatal("no successful probes over the shared bottleneck")
	}
	if reordered == 0 {
		t.Fatalf("no congestion-induced reordering observed across %d clean-path probes", probed)
	}
	t.Logf("congestion-induced reordering: %d/%d probes saw reordering", reordered, probed)
}
