package campaign

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reorder/internal/obs"
)

// TestProbeAllocBudgetWithObserver re-pins the steady-state allocation
// budget with telemetry attached: the full instrumented job path — attempt
// count, wall timing, probe, latency observation, terminal count, stat
// harvest — must fit the same 10-allocation budget as the bare probe,
// because every instrument is an atomic add into a preallocated shard.
func TestProbeAllocBudgetWithObserver(t *testing.T) {
	tg := Target{Profile: "freebsd4", Impairment: "swap-heavy", Test: "single", Seed: 7}
	arena := NewProbeArena()
	w := obs.NewCampaign(1).Worker(0)
	arena.SetObserver(w)
	var res TargetResult
	probe := func() {
		w.Attempts.Inc()
		start := time.Now()
		if arena.ProbeTargetInto(&res, tg, 8, 0); res.Err != "" {
			t.Fatalf("probe errored: %s", res.Err)
		}
		w.ProbeNanos.Observe(time.Since(start).Nanoseconds())
		w.Targets.Inc()
	}
	for i := 0; i < 3; i++ { // warm the arena's slabs, pools and scratch
		probe()
	}
	allocs := testing.AllocsPerRun(10, probe)
	const budget = 10
	if allocs > budget {
		t.Fatalf("instrumented steady-state probe allocates %.0f objects, budget %d", allocs, budget)
	}
	if w.SimEvents.Load() == 0 || w.FramesBorn.Load() == 0 {
		t.Fatal("observer harvested no simulator statistics")
	}
}

// TestTelemetryDoesNotChangeOutput is the golden identity guard: a campaign
// with a registry and a run trace attached must produce JSONL, CSV,
// checkpoint and summary bytes identical to one with telemetry disabled —
// and the registry's final counts must reconcile exactly with the summary
// and the bytes on disk.
func TestTelemetryDoesNotChangeOutput(t *testing.T) {
	type runOut struct {
		jsonl, csv, ckpt []byte
		summary          string
	}
	doRun := func(mutate func(*Config)) runOut {
		dir := t.TempDir()
		csvPath := filepath.Join(dir, "out.csv")
		ckptPath := filepath.Join(dir, "ckpt.json")
		sum, jsonl := runCampaign(t, dir, 4, func(c *Config) {
			c.CSVPath = csvPath
			c.CheckpointPath = ckptPath
			c.CheckpointEvery = 5
			if mutate != nil {
				mutate(c)
			}
		})
		csv, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		ckpt, err := os.ReadFile(ckptPath)
		if err != nil {
			t.Fatal(err)
		}
		var text bytes.Buffer
		sum.WriteText(&text)
		return runOut{jsonl: jsonl, csv: csv, ckpt: ckpt, summary: text.String()}
	}

	plain := doRun(nil)

	reg := obs.NewCampaign(4)
	var traceBuf bytes.Buffer
	trace := obs.NewTrace(&traceBuf)
	instrumented := doRun(func(c *Config) {
		c.Obs = reg
		c.Trace = trace
	})
	if err := trace.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(plain.jsonl, instrumented.jsonl) {
		t.Fatal("telemetry changed JSONL output")
	}
	if !bytes.Equal(plain.csv, instrumented.csv) {
		t.Fatal("telemetry changed CSV output")
	}
	if !bytes.Equal(plain.ckpt, instrumented.ckpt) {
		t.Fatal("telemetry changed the checkpoint")
	}
	if plain.summary != instrumented.summary {
		t.Fatalf("telemetry changed the summary:\nplain:\n%s\ninstrumented:\n%s", plain.summary, instrumented.summary)
	}

	// Reconciliation: registry totals against summary and bytes on disk.
	s := reg.Snapshot()
	targets := strings.Count(string(plain.jsonl), "\n")
	if got := s.Workers.Targets; got != uint64(targets) {
		t.Fatalf("worker targets = %d, want %d", got, targets)
	}
	if got := int(s.Done); got != targets {
		t.Fatalf("progress done = %d, want %d", got, targets)
	}
	if got := s.Sinks.JSONLBytes; got != uint64(len(plain.jsonl)) {
		t.Fatalf("sink jsonl bytes = %d, file has %d", got, len(plain.jsonl))
	}
	if got := s.Workers.RenderedJSON; got != s.Sinks.JSONLBytes {
		t.Fatalf("rendered json bytes %d != sunk %d", got, s.Sinks.JSONLBytes)
	}
	if s.Workers.RenderedCSV != s.Sinks.CSVBytes {
		t.Fatalf("rendered csv bytes %d != sunk %d", s.Workers.RenderedCSV, s.Sinks.CSVBytes)
	}
	if s.Workers.Attempts < s.Workers.Targets {
		t.Fatalf("attempts %d < targets %d", s.Workers.Attempts, s.Workers.Targets)
	}
	if s.ProbeLatency.Count != s.Workers.Attempts {
		t.Fatalf("probe latency count %d != attempts %d", s.ProbeLatency.Count, s.Workers.Attempts)
	}
	if s.Workers.SimEvents == 0 || s.Workers.FramesBorn == 0 || s.Workers.SimNanos == 0 {
		t.Fatalf("simulator telemetry empty: %+v", s.Workers)
	}
	if s.Workers.ArenaBuilds == 0 || s.Workers.ArenaBuilds > 4 {
		t.Fatalf("arena builds = %d, want 1..workers (a worker builds lazily on its first span)", s.Workers.ArenaBuilds)
	}
	if want := uint64(targets) - s.Workers.ArenaBuilds + s.Scheduler.Retries; s.Workers.ArenaResets != want {
		t.Fatalf("arena resets = %d, want %d", s.Workers.ArenaResets, want)
	}
	if s.Sinks.Checkpoints == 0 {
		t.Fatal("no checkpoints counted")
	}
	if s.Scheduler.SpanClaims == 0 {
		t.Fatal("no span claims counted")
	}

	// The trace must cover the whole run: one run_start, one run_end, and
	// a claim/done/emit triple per span.
	lines := strings.Split(strings.TrimRight(traceBuf.String(), "\n"), "\n")
	counts := map[string]int{}
	for _, line := range lines {
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		counts[ev.Ev]++
	}
	if counts["run_start"] != 1 || counts["run_end"] != 1 {
		t.Fatalf("trace run boundaries: %v", counts)
	}
	if uint64(counts["span_claim"]) != s.Scheduler.SpanClaims {
		t.Fatalf("trace has %d span_claim events, scheduler counted %d", counts["span_claim"], s.Scheduler.SpanClaims)
	}
	if counts["span_emit"] != counts["span_claim"] || counts["span_done"] != counts["span_claim"] {
		t.Fatalf("trace span lifecycle incomplete: %v", counts)
	}
	if uint64(counts["checkpoint"]) != s.Sinks.Checkpoints {
		t.Fatalf("trace has %d checkpoint events, sinks counted %d", counts["checkpoint"], s.Sinks.Checkpoints)
	}
}

// TestMetricsEndpointMidCampaign scrapes /metrics and /campaign/progress
// while a campaign is live, then reconciles the final scrape against the
// summary — the acceptance criterion for the introspection endpoint.
func TestMetricsEndpointMidCampaign(t *testing.T) {
	reg := obs.NewCampaign(4)
	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	scraped := false
	dir := t.TempDir()
	sum, jsonl := runCampaign(t, dir, 4, func(c *Config) {
		c.Obs = reg
		c.Progress = func(done, total int) {
			if scraped || done == 0 {
				return
			}
			scraped = true
			// Mid-flight: the run is between spans right now.
			metrics := get("/metrics")
			for _, family := range []string{
				"campaign_targets_done", "campaign_scheduler_span_claims_total",
				"campaign_worker_targets_total", "campaign_probe_latency_seconds_count",
				"campaign_sim_events_total", "campaign_netem_frames_born_total",
				"campaign_sink_bytes_total", "campaign_targets_per_second",
			} {
				if !strings.Contains(metrics, family) {
					t.Errorf("mid-campaign /metrics missing %s", family)
				}
			}
			var snap obs.Snapshot
			if err := json.Unmarshal([]byte(get("/campaign/progress")), &snap); err != nil {
				t.Errorf("progress endpoint: %v", err)
			}
			if snap.Done != int64(done) || snap.Total != int64(total) {
				t.Errorf("progress endpoint says %d/%d, emit frontier is %d/%d",
					snap.Done, snap.Total, done, total)
			}
		}
	})
	if !scraped {
		t.Fatal("progress hook never fired")
	}

	// Final reconciliation against the summary and the output file.
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(get("/campaign/progress")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Workers.Targets != uint64(sum.Targets) {
		t.Fatalf("endpoint targets %d != summary %d", snap.Workers.Targets, sum.Targets)
	}
	if snap.Scheduler.Retries != uint64(sum.Retried) {
		t.Fatalf("endpoint retries %d != summary retried %d", snap.Scheduler.Retries, sum.Retried)
	}
	if snap.Sinks.JSONLBytes != uint64(len(jsonl)) {
		t.Fatalf("endpoint jsonl bytes %d != file %d", snap.Sinks.JSONLBytes, len(jsonl))
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "campaign_targets_done "+itoa(sum.Targets)+"\n") {
		t.Fatalf("final /metrics does not report %d done targets", sum.Targets)
	}
}

func itoa(n int) string {
	var b [20]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + n%10)
		if n /= 10; n == 0 {
			return string(b[i:])
		}
	}
}

// TestInterruptDrainsAndResumes is the graceful-shutdown contract: closing
// Interrupt mid-run stops dispatch, drains in-flight spans, checkpoints the
// drain point, and a resumed run completes the campaign with total output
// byte-identical to an uninterrupted one.
func TestInterruptDrainsAndResumes(t *testing.T) {
	refDir := t.TempDir()
	_, want := runCampaign(t, refDir, 2, nil)

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	interrupt := make(chan struct{})
	closed := false
	sum, partial := runCampaign(t, dir, 2, func(c *Config) {
		c.CheckpointPath = ckpt
		c.Batch = 1 // single-target spans: the drain point lands early
		c.Interrupt = interrupt
		c.Progress = func(done, total int) {
			if !closed && done >= 2 {
				closed = true
				close(interrupt)
			}
		}
	})
	total := len(bytes.Split(bytes.TrimRight(want, "\n"), []byte("\n")))
	got := strings.Count(string(partial), "\n")
	if got >= total {
		t.Skipf("drain finished the whole campaign (%d targets) before quiesce took effect", got)
	}
	if !sum.Interrupted {
		t.Fatalf("summary of a drained run (%d/%d emitted) not marked interrupted", got, total)
	}
	if sum.Targets != got {
		t.Fatalf("partial summary covers %d targets, %d emitted", sum.Targets, got)
	}
	ck, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Done != got {
		t.Fatalf("checkpoint records %d done, %d emitted", ck.Done, got)
	}
	if !bytes.Equal(partial, want[:len(partial)]) {
		t.Fatal("drained prefix differs from the uninterrupted run's prefix")
	}

	sum2, full := runCampaign(t, dir, 2, func(c *Config) {
		c.CheckpointPath = ckpt
		c.Resume = true
	})
	if sum2.Interrupted {
		t.Fatal("resumed run marked interrupted")
	}
	if !bytes.Equal(full, want) {
		t.Fatal("resumed campaign output differs from an uninterrupted run")
	}
	if sum2.Targets != total {
		t.Fatalf("resumed summary covers %d targets, want %d", sum2.Targets, total)
	}
}
