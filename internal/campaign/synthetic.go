package campaign

// SyntheticResults builds n deterministic TargetResults without probing,
// so aggregation benchmarks (bench_test.go's BenchmarkCampaignAggregator
// and cmd/bench's trajectory recorder) isolate aggregation cost from probe
// cost while measuring the identical workload. A cheap LCG keeps the
// stream deterministic and allocation-free.
func SyntheticResults(n int) []*TargetResult {
	tests := []string{"single", "dual", "syn", "transfer"}
	results := make([]*TargetResult, n)
	for i := range results {
		rng := uint64(i)*6364136223846793005 + 1442695040888963407
		draw := func(mod uint64) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % mod)
		}
		r := &TargetResult{
			Index: i, Name: "synthetic", Profile: "freebsd4", Impairment: "clean",
			Test: tests[i%len(tests)], Attempts: 1,
			FwdValid: 8, FwdReordered: draw(9), RevValid: 8, RevReordered: draw(9),
			RTTMicros: int64(500 + draw(200000)),
		}
		r.FwdRate = float64(r.FwdReordered) / 8
		r.RevRate = float64(r.RevReordered) / 8
		r.AnyReordering = r.FwdReordered+r.RevReordered > 0
		if r.Test == "transfer" {
			r.SeqReceived = 20
			r.SeqMaxExtent = draw(12)
			r.SeqNReordering = draw(4)
			r.SeqDupthreshExposure = float64(r.SeqNReordering) / 20
		}
		results[i] = r
	}
	return results
}
