package campaign

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioZeroScheduleGoldenSeam pins the tentpole's compatibility
// seam: static targets carrying a schedule of zero-magnitude mutations —
// live loop timers firing mid-probe, every one reasserting the value it
// finds — must still produce the pre-scenario golden bytes across worker
// counts, batching and a mid-batch resume. Timer events alone never move a
// byte of output.
func TestScenarioZeroScheduleGoldenSeam(t *testing.T) {
	debugZeroSchedule = true
	defer func() { debugZeroSchedule = false }()
	for _, m := range [][2]int{{1, 8}, {4, 8}, {16, 64}} {
		for _, split := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/batch=%d/split=%v", m[0], m[1], split)
			jsonl, csv, _, _ := runGoldenCampaign(t, m[0], m[1], 0, split)
			if got := sha256Hex(jsonl); got != goldenJSONLSHA {
				t.Errorf("%s: zero-magnitude schedule changed JSONL bytes: %s", name, got)
			}
			if got := sha256Hex(csv); got != goldenCSVSHA {
				t.Errorf("%s: zero-magnitude schedule changed CSV bytes: %s", name, got)
			}
		}
	}
}

func TestEnumerateScenarios(t *testing.T) {
	spec := EnumSpec{
		Profiles:    []string{"freebsd4"},
		Impairments: []string{"clean"},
		Tests:       []string{"single"},
		Seeds:       2,
		Scenarios:   []string{"", "rst-inject"},
	}
	targets, err := Enumerate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 4 {
		t.Fatalf("enumerated %d targets, want 4", len(targets))
	}
	// Scenario is the outermost dimension; "" targets come first and are
	// identical to a scenario-free enumeration.
	plain, err := Enumerate(EnumSpec{
		Profiles: spec.Profiles, Impairments: spec.Impairments,
		Tests: spec.Tests, Seeds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if targets[i] != plain[i] {
			t.Fatalf("target %d: %+v != scenario-free %+v", i, targets[i], plain[i])
		}
	}
	for _, tg := range targets[2:] {
		if tg.Scenario != "rst-inject" {
			t.Fatalf("scenario = %q", tg.Scenario)
		}
		if !strings.HasSuffix(tg.Name, "#rst-inject") {
			t.Fatalf("name %q lacks scenario suffix", tg.Name)
		}
	}
	// The scenario is mixed into the seed, so the same replica draws a
	// different build under a different fault schedule.
	if targets[2].Seed == targets[0].Seed {
		t.Fatal("scenario not mixed into derived seed")
	}
	if _, err := Enumerate(EnumSpec{Scenarios: []string{"no-such"}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestEnumerateScenarioWithTopologySeeds(t *testing.T) {
	// Topology and scenario must both feed the seed, independently: the
	// same scenario over different graphs (and vice versa) draws different
	// streams, and the '#' scenario marker cannot collide with a topology
	// of the same name.
	enum := func(topos, scns []string) []Target {
		t.Helper()
		ts, err := Enumerate(EnumSpec{
			Profiles: []string{"freebsd4"}, Impairments: []string{"clean"},
			Tests: []string{"single"}, Seeds: 1, Topologies: topos, Scenarios: scns,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	a := enum([]string{"diamond"}, []string{"route-flap"})[0]
	b := enum([]string{"diamond"}, []string{"rate-ramp"})[0]
	c := enum([]string{"bottleneck"}, []string{"route-flap"})[0]
	if a.Seed == b.Seed || a.Seed == c.Seed {
		t.Fatalf("seed collisions across scenario/topology mix: %d %d %d", a.Seed, b.Seed, c.Seed)
	}
	if !strings.HasPrefix(a.Name, "freebsd4/clean/single/s") ||
		!strings.HasSuffix(a.Name, "@diamond#route-flap") {
		t.Fatalf("name = %q", a.Name)
	}
}

func TestTargetsFileScenarioRoundTrip(t *testing.T) {
	targets, err := Enumerate(EnumSpec{
		Profiles:    []string{"freebsd4", "linux22"},
		Impairments: []string{"clean"},
		Tests:       []string{"single", "syn"},
		Topologies:  []string{"", "diamond"},
		Scenarios:   []string{"", "route-flap", "rst-inject"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTargets(&buf, targets); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTargets(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(targets) {
		t.Fatalf("loaded %d targets, want %d", len(loaded), len(targets))
	}
	for i := range targets {
		if loaded[i] != targets[i] {
			t.Fatalf("target %d: %+v != %+v", i, loaded[i], targets[i])
		}
	}
	// A scenario without a topology writes the "-" placeholder.
	if !bytes.Contains(buf.Bytes(), []byte(" - rst-inject\n")) {
		t.Fatalf("placeholder topology missing from targets file:\n%s", buf.String())
	}
	if _, err := LoadTargets(strings.NewReader("freebsd4 clean single 1 - no-such\n")); err == nil {
		t.Fatal("unknown scenario in targets file accepted")
	}
	if _, err := LoadTargets(strings.NewReader("freebsd4 clean single 1 - rst-inject extra\n")); err == nil {
		t.Fatal("seven-field line accepted")
	}
}

// FuzzLoadTargets pins the parser against arbitrary input: it must never
// panic, and anything it accepts must round-trip through WriteTargets.
func FuzzLoadTargets(f *testing.F) {
	f.Add("freebsd4 clean single 1\n")
	f.Add("freebsd4 clean single 1 diamond\n")
	f.Add("freebsd4 clean single 1 - rst-inject\n# comment\n\n")
	f.Add("freebsd4 clean single 1 diamond route-flap\n")
	f.Add("bogus\nfreebsd4 clean single notanumber\n")
	f.Fuzz(func(t *testing.T, text string) {
		targets, err := LoadTargets(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTargets(&buf, targets); err != nil {
			t.Fatal(err)
		}
		again, err := LoadTargets(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("accepted input failed to round-trip: %v\n%s", err, buf.String())
		}
		if len(again) != len(targets) {
			t.Fatalf("round-trip count %d != %d", len(again), len(targets))
		}
		for i := range targets {
			if again[i] != targets[i] {
				t.Fatalf("round-trip target %d: %+v != %+v", i, again[i], targets[i])
			}
		}
	})
}

func TestFingerprintScenarioDistinct(t *testing.T) {
	base := []Target{{Profile: "freebsd4", Impairment: "clean", Test: "single", Seed: 7}}
	withTopo := []Target{base[0]}
	withTopo[0].Topology = "diamond"
	withScn := []Target{base[0]}
	withScn[0].Scenario = "diamond" // same string, different dimension
	fp := func(ts []Target) uint64 { return Fingerprint(ts, 4) }
	if fp(base) == fp(withTopo) || fp(base) == fp(withScn) || fp(withTopo) == fp(withScn) {
		t.Fatal("fingerprint fails to separate topology and scenario dimensions")
	}
	both := []Target{withTopo[0]}
	both[0].Scenario = "route-flap"
	if fp(both) == fp(withTopo) {
		t.Fatal("scenario segment not folded into fingerprint")
	}
}

// scenarioCampaign runs a mixed static+scenario campaign and returns its
// JSONL and CSV bytes.
func scenarioCampaign(t *testing.T, workers, batch int, split bool) ([]byte, []byte) {
	t.Helper()
	targets, err := Enumerate(EnumSpec{
		Profiles:    []string{"freebsd4"},
		Impairments: []string{"swap-light"},
		Tests:       []string{"single", "syn"},
		Seeds:       2,
		Topologies:  []string{"", "diamond"},
		Scenarios:   []string{"", "rate-ramp", "rst-inject", "route-flap"},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	csv := filepath.Join(dir, "out.csv")
	ckpt := filepath.Join(dir, "ckpt.json")
	phases := [][2]int{{0, 0}}
	if split {
		phases = [][2]int{{17, 0}, {0, 1}}
	}
	for _, ph := range phases {
		_, err := Run(Config{
			Targets: targets, Samples: 4, Workers: workers, Batch: batch,
			OutputPath: out, CSVPath: csv, CheckpointPath: ckpt,
			StopAfter: ph[0], Resume: ph[1] == 1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	jsonl, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	csvData, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	return jsonl, csvData
}

// TestScenarioCampaignSchedulingInvariance extends the byte-identity
// contract to scenario targets: worker count, batch size and a mid-run
// resume must not change a byte of JSONL or CSV — which also pins that
// pooled middleboxes and the pooled schedule reset between targets are
// observably identical to freshly built ones.
func TestScenarioCampaignSchedulingInvariance(t *testing.T) {
	refJSONL, refCSV := scenarioCampaign(t, 1, 1, false)
	if !bytes.Contains(refCSV, []byte("scenario")) {
		t.Fatal("scenario column missing from mixed-campaign CSV")
	}
	if !bytes.Contains(refJSONL, []byte(`"scenario":"rst-inject"`)) {
		t.Fatal("scenario field missing from JSONL records")
	}
	// Static records must not grow the field.
	first := refJSONL[:bytes.IndexByte(refJSONL, '\n')]
	if bytes.Contains(first, []byte(`"scenario"`)) {
		t.Fatalf("static record gained a scenario field: %s", first)
	}
	for _, m := range [][2]int{{4, 8}, {16, 3}} {
		jsonl, csv := scenarioCampaign(t, m[0], m[1], false)
		if !bytes.Equal(jsonl, refJSONL) || !bytes.Equal(csv, refCSV) {
			t.Fatalf("workers=%d batch=%d changed campaign bytes", m[0], m[1])
		}
	}
	jsonl, csv := scenarioCampaign(t, 4, 8, true)
	if !bytes.Equal(jsonl, refJSONL) || !bytes.Equal(csv, refCSV) {
		t.Fatal("resumed scenario campaign differs from uninterrupted run")
	}
}
