package dist

import "sync"

// span is one contiguous [lo,hi) slice of the target index range.
type span struct{ lo, hi int }

// leaseTable is the in-process span-dispatch cursor made remote-safe: the
// same invariants as the scheduler's atomic cursor (spans partition the
// range, each index owned by exactly one live lease, dispatch gated by a
// window above the emit frontier) plus what remoteness adds — leases can
// die with their worker and return to a re-issue queue, granted again
// lowest-lo first so the emit frontier unblocks as fast as possible.
//
// All methods are safe for concurrent use; grant blocks until a span is
// grantable, the worker should drain, or the run fails.
type leaseTable struct {
	mu   sync.Mutex
	cond *sync.Cond

	cursor   int // next never-issued index
	end      int
	spanSize int
	window   int
	frontier int // emit frontier, published via advance

	reissue []span            // revoked spans, sorted by lo
	out     map[int]leaseInfo // outstanding leases, keyed by lo

	draining bool
	failed   bool
}

type leaseInfo struct {
	hi     int
	worker int
}

func newLeaseTable(start, end, spanSize, window int) *leaseTable {
	t := &leaseTable{
		cursor:   start,
		end:      end,
		spanSize: spanSize,
		window:   window,
		frontier: start,
		out:      map[int]leaseInfo{},
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// grant blocks until a span can be leased to worker, returning ok=false
// when the worker should drain: the run is draining or failed, or every
// index has been emitted. While work is outstanding on other workers it
// keeps waiting — their leases may yet be revoked and need a new owner.
func (t *leaseTable) grant(worker int) (span, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.failed || t.draining || t.frontier >= t.end {
			return span{}, false
		}
		var sp span
		fromReissue := false
		have := false
		if len(t.reissue) > 0 {
			sp, fromReissue, have = t.reissue[0], true, true
		} else if t.cursor < t.end {
			hi := t.cursor + t.spanSize
			if hi > t.end {
				hi = t.end
			}
			sp, have = span{t.cursor, hi}, true
		}
		if have && sp.lo < t.frontier+t.window {
			if fromReissue {
				t.reissue = t.reissue[:copy(t.reissue, t.reissue[1:])]
			} else {
				t.cursor = sp.hi
			}
			t.out[sp.lo] = leaseInfo{hi: sp.hi, worker: worker}
			return sp, true
		}
		t.cond.Wait()
	}
}

// complete settles a reported span. It returns true when this is the
// span's first completion (the lease — original or re-issued — is
// retired); a stale report from a worker whose lease was re-issued and
// already completed returns false and must be dropped. Deterministic
// probing makes the two copies byte-identical, so first-wins is exact.
func (t *leaseTable) complete(lo, hi int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	li, ok := t.out[lo]
	if !ok || li.hi != hi {
		return false
	}
	delete(t.out, lo)
	// A completed span no longer needs re-issue: drop any queued copy
	// (the lease was revoked, re-queued, and then the original worker
	// reported after all).
	for i, q := range t.reissue {
		if q.lo == lo {
			t.reissue = append(t.reissue[:i], t.reissue[i+1:]...)
			break
		}
	}
	t.cond.Broadcast()
	return true
}

// revoke returns every outstanding lease held by worker to the re-issue
// queue (sorted by lo) and wakes waiting granters. The count of spans
// re-queued feeds the dist telemetry.
func (t *leaseTable) revoke(worker int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	revoked := 0
	for lo, li := range t.out {
		if li.worker != worker {
			continue
		}
		delete(t.out, lo)
		at := len(t.reissue)
		for i, q := range t.reissue {
			if lo < q.lo {
				at = i
				break
			}
		}
		t.reissue = append(t.reissue, span{})
		copy(t.reissue[at+1:], t.reissue[at:])
		t.reissue[at] = span{lo, li.hi}
		revoked++
	}
	if revoked > 0 {
		t.cond.Broadcast()
	}
	return revoked
}

// advance publishes a new emit frontier, widening the dispatch window.
func (t *leaseTable) advance(frontier int) {
	t.mu.Lock()
	t.frontier = frontier
	t.cond.Broadcast()
	t.mu.Unlock()
}

// drain stops granting: subsequent and waiting grants return false, so
// workers finish their in-flight spans, report, and say bye.
func (t *leaseTable) drain() {
	t.mu.Lock()
	t.draining = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// fail wakes everything with the run marked broken.
func (t *leaseTable) fail() {
	t.mu.Lock()
	t.failed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// waitSettled blocks until the run can finalize: every index emitted, or
// a drain has no leases left in flight, or the run failed.
func (t *leaseTable) waitSettled() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.failed || t.frontier >= t.end || (t.draining && len(t.out) == 0) {
			return
		}
		t.cond.Wait()
	}
}
