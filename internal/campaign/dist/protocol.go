// Package dist distributes a campaign across worker processes: a
// coordinator leases contiguous [lo,hi) target-index spans to workers over
// a small line-delimited JSON protocol, workers run the normal arena-
// pooled probe pipeline over their leases and stream back pre-rendered
// JSONL/CSV span bytes plus exact aggregator-shard snapshots, and the
// coordinator re-sequences spans by index through the same campaign
// Emitter a single-process run uses. Determinism does the heavy lifting:
// every probe is a pure function of (target, samples, attempt), shard
// histograms merge by integer bin addition, and spans partition the index
// range — so merged output is byte-identical to a single-process run at
// any worker count, across worker crashes (leases expire and re-issue),
// and across coordinator restarts (the ordinary checkpoint/resume path).
//
// The protocol is strict request/response per worker with asynchronous
// heartbeats:
//
//	worker → hello{version, fingerprint}
//	coord  → welcome{worker, samples, retries, backoff, rate, burst, want_*}
//	         (or reject{reason}, closing)
//	worker → lease{}                  request a span
//	coord  → span{lo, hi}             or drain{} when no work remains
//	worker → report{lo, hi, json_len, csv_len, shard} + raw payload bytes
//	worker → heartbeat{}              any time, keeps leases alive
//	worker → bye{obs}                 after drain; connection closes
//
// Exactly-once emission needs no acknowledgements: a span is owned by its
// index range, the first report of a span wins, and duplicates (a slow
// worker racing its re-issued lease) are dropped — deterministic probing
// makes either copy byte-identical.
package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/obs"
)

// ProtocolVersion gates hello: mixed-version fleets are refused rather
// than debugged.
const ProtocolVersion = 1

const (
	// maxLineBytes caps one header line: shard snapshots are a few KB, so
	// a megabyte means a corrupt or hostile peer.
	maxLineBytes = 1 << 20
	// maxPayloadBytes caps one span's rendered bytes.
	maxPayloadBytes = 64 << 20
)

// Message types.
const (
	MsgHello     = "hello"
	MsgWelcome   = "welcome"
	MsgReject    = "reject"
	MsgLease     = "lease"
	MsgSpan      = "span"
	MsgDrain     = "drain"
	MsgReport    = "report"
	MsgHeartbeat = "heartbeat"
	MsgBye       = "bye"
	MsgFail      = "fail"
)

// Msg is the protocol's single header shape: one JSON object per line,
// fields populated by type. A report header is followed immediately by
// JSONLen raw JSONL bytes and CSVLen raw CSV bytes — the worker's
// pre-rendered sink output, passed through verbatim so the coordinator
// never re-encodes (or risks re-encoding differently).
type Msg struct {
	Type string `json:"type"`

	// hello / welcome
	Version     int    `json:"version,omitempty"`
	Fingerprint uint64 `json:"fingerprint,omitempty"`
	Worker      int    `json:"worker,omitempty"`

	// reject / fail
	Reason string `json:"reason,omitempty"`

	// welcome: the probe-affecting config the coordinator owns. Retries
	// and backoff must come from here — output bytes record the attempt
	// count, so a worker flag diverging from the coordinator's would
	// silently break byte-identity.
	Samples   int     `json:"samples,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	BackoffNs int64   `json:"backoff_ns,omitempty"`
	Rate      float64 `json:"rate,omitempty"`
	Burst     float64 `json:"burst,omitempty"`
	WantJSONL bool    `json:"want_jsonl,omitempty"`
	WantCSV   bool    `json:"want_csv,omitempty"`

	// span / report
	Lo int `json:"lo,omitempty"`
	Hi int `json:"hi,omitempty"`

	// report
	JSONLen int                     `json:"json_len,omitempty"`
	CSVLen  int                     `json:"csv_len,omitempty"`
	Shard   *campaign.ShardSnapshot `json:"shard,omitempty"`

	// bye
	Obs *obs.WorkerWire `json:"obs,omitempty"`
}

// wire frames Msgs over a connection: newline-delimited JSON headers with
// optional raw payloads. Reads are single-goroutine; writes are mutexed so
// the worker's heartbeat goroutine can interleave with its report stream
// without tearing a frame.
type wire struct {
	conn net.Conn
	br   *bufio.Reader

	// writeTimeout, when positive, bounds each framed send: a peer that
	// stops reading (a stalled or half-dead worker) fails the write instead
	// of wedging the sender behind TCP backpressure forever.
	writeTimeout time.Duration

	wmu sync.Mutex
	bw  *bufio.Writer
	enc []byte // reused header encode buffer
}

func newWire(conn net.Conn) *wire {
	return &wire{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// send writes one header line and flushes.
func (w *wire) send(m *Msg) error {
	return w.sendPayload(m, nil, nil)
}

// sendPayload writes a header line followed by the raw payload segments,
// then flushes, all as one locked frame.
func (w *wire) sendPayload(m *Msg, jsonb, csvb []byte) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if w.writeTimeout > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.writeTimeout))
	}
	w.enc = append(w.enc[:0], b...)
	w.enc = append(w.enc, '\n')
	if _, err := w.bw.Write(w.enc); err != nil {
		return err
	}
	if len(jsonb) > 0 {
		if _, err := w.bw.Write(jsonb); err != nil {
			return err
		}
	}
	if len(csvb) > 0 {
		if _, err := w.bw.Write(csvb); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

// recv reads one header line. Oversized lines, trailing garbage, invalid
// JSON, unknown types and absurd payload lengths are all errors — the
// protocol treats any malformed input as a broken peer and drops the
// connection rather than resynchronizing.
func (w *wire) recv() (*Msg, error) {
	line, err := w.readLine()
	if err != nil {
		return nil, err
	}
	var m Msg
	dec := json.NewDecoder(strings.NewReader(line))
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("dist: malformed message: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("dist: trailing garbage after message")
	}
	switch m.Type {
	case MsgHello, MsgWelcome, MsgReject, MsgLease, MsgSpan, MsgDrain,
		MsgReport, MsgHeartbeat, MsgBye, MsgFail:
	default:
		return nil, fmt.Errorf("dist: unknown message type %q", m.Type)
	}
	if m.JSONLen < 0 || m.JSONLen > maxPayloadBytes || m.CSVLen < 0 || m.CSVLen > maxPayloadBytes {
		return nil, fmt.Errorf("dist: unreasonable payload lengths %d/%d", m.JSONLen, m.CSVLen)
	}
	if m.Lo < 0 || m.Hi < m.Lo {
		return nil, fmt.Errorf("dist: malformed span [%d,%d)", m.Lo, m.Hi)
	}
	return &m, nil
}

// readLine reads one newline-terminated header, capped at maxLineBytes.
func (w *wire) readLine() (string, error) {
	var sb strings.Builder
	for {
		frag, err := w.br.ReadSlice('\n')
		sb.Write(frag)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if sb.Len() > maxLineBytes {
				return "", fmt.Errorf("dist: header line exceeds %d bytes", maxLineBytes)
			}
			continue
		}
		return "", err
	}
	if sb.Len() > maxLineBytes {
		return "", fmt.Errorf("dist: header line exceeds %d bytes", maxLineBytes)
	}
	s := strings.TrimSuffix(sb.String(), "\n")
	if strings.TrimSpace(s) == "" {
		return "", fmt.Errorf("dist: empty header line")
	}
	return s, nil
}

// readPayload reads exactly n raw payload bytes following a header.
func (w *wire) readPayload(n int) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(w.br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Listen opens the coordinator's listener: a Unix socket when addr looks
// like a filesystem path (contains a '/' or has the "unix:" prefix), TCP
// otherwise.
func Listen(addr string) (net.Listener, error) {
	if network, a := splitAddr(addr); network == "unix" {
		return net.Listen("unix", a)
	} else {
		return net.Listen("tcp", a)
	}
}

// Dial connects to a coordinator address using Listen's address rules. A
// bounded dial keeps a reconnecting worker's attempts from piling up
// behind an unresponsive address.
func Dial(addr string) (net.Conn, error) {
	network, a := splitAddr(addr)
	d := net.Dialer{Timeout: 10 * time.Second}
	return d.Dial(network, a)
}

func splitAddr(addr string) (network, a string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if strings.Contains(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}
