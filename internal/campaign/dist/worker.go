package dist

import (
	"fmt"
	"net"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/obs"
)

// WorkerConfig parameterizes one worker process's probe loop.
type WorkerConfig struct {
	// Connect is the coordinator address (see Dial); ignored when Conn is
	// set (tests inject pipes).
	Connect string
	Conn    net.Conn

	// Targets must be the same list the coordinator holds — workers
	// enumerate it from the same flags rather than shipping it over the
	// wire, and the fingerprint handshake proves the two agree.
	Targets []campaign.Target
	// Samples per measurement (default 8, the campaign default; part of
	// the fingerprint).
	Samples int

	// Obs, when set, records worker-side telemetry; its totals and exact
	// probe-latency bins ship to the coordinator at bye. Typically
	// obs.NewCampaign(1).
	Obs *obs.Campaign

	// Heartbeat is the liveness send interval (default 2s — far inside
	// the coordinator's lease timeout).
	Heartbeat time.Duration
}

// RunWorker connects to a coordinator and probes leased spans until
// drained. Each leased span runs the normal arena-pooled probe pipeline;
// results are rendered with the same AppendJSON/CSVRowEncoder bytes a
// local run would sink, and each report carries an exact aggregator-shard
// delta for the span. Retries, backoff and the rate budget come from the
// coordinator's welcome so output bytes cannot depend on worker-local
// flags.
func RunWorker(cfg WorkerConfig) error {
	if cfg.Samples == 0 {
		cfg.Samples = 8
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if len(cfg.Targets) == 0 {
		return fmt.Errorf("dist: worker has no targets")
	}
	conn := cfg.Conn
	if conn == nil {
		var err error
		conn, err = Dial(cfg.Connect)
		if err != nil {
			return err
		}
	}
	defer conn.Close()
	w := newWire(conn)

	fp := campaign.Fingerprint(cfg.Targets, cfg.Samples)
	if err := w.send(&Msg{Type: MsgHello, Version: ProtocolVersion, Fingerprint: fp}); err != nil {
		return err
	}
	m, err := w.recv()
	if err != nil {
		return err
	}
	switch m.Type {
	case MsgWelcome:
	case MsgReject:
		return fmt.Errorf("dist: coordinator rejected worker: %s", m.Reason)
	default:
		return fmt.Errorf("dist: expected welcome, got %q", m.Type)
	}
	if m.Samples != cfg.Samples {
		return fmt.Errorf("dist: coordinator wants %d samples, worker has %d", m.Samples, cfg.Samples)
	}
	retries := m.Retries
	backoff := time.Duration(m.BackoffNs)
	limiter := newWorkerBucket(m.Rate, m.Burst)

	// Heartbeats ride a separate goroutine through the wire's write lock,
	// so a long probe span cannot starve liveness.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if w.send(&Msg{Type: MsgHeartbeat}) != nil {
					return
				}
			case <-hbStop:
				return
			}
		}
	}()

	arena := campaign.NewProbeArena()
	var wobs *obs.Worker
	if cfg.Obs != nil {
		wobs = cfg.Obs.Worker(0)
		arena.SetObserver(wobs)
	}
	var csvEnc *campaign.CSVRowEncoder
	if m.WantCSV {
		csvEnc = campaign.NewCSVRowEncoder()
		for i := range cfg.Targets {
			if cfg.Targets[i].Topology != "" {
				csvEnc.IncludeTopology()
				break
			}
		}
		for i := range cfg.Targets {
			if cfg.Targets[i].Scenario != "" {
				csvEnc.IncludeScenario()
				break
			}
		}
	}
	wantJSONL := m.WantJSONL
	delta := campaign.NewShard()
	var jsonBuf, csvBuf []byte
	var res campaign.TargetResult

	for {
		if err := w.send(&Msg{Type: MsgLease}); err != nil {
			return err
		}
	await:
		m, err := w.recv()
		if err != nil {
			return err
		}
		switch m.Type {
		case MsgDrain:
			bye := &Msg{Type: MsgBye}
			if cfg.Obs != nil {
				wire := cfg.Obs.Wire()
				bye.Obs = &wire
			}
			w.send(bye)
			return nil
		case MsgSpan:
			if m.Hi > len(cfg.Targets) || m.Lo >= m.Hi {
				return fmt.Errorf("dist: leased span [%d,%d) outside target range", m.Lo, m.Hi)
			}
			jsonBuf, csvBuf = jsonBuf[:0], csvBuf[:0]
			for i := m.Lo; i < m.Hi; i++ {
				probeTarget(arena, wobs, cfg, &res, i, retries, backoff, limiter)
				delta.Add(&res)
				j0, c0 := len(jsonBuf), len(csvBuf)
				if wantJSONL {
					jsonBuf = res.AppendJSON(jsonBuf)
					jsonBuf = append(jsonBuf, '\n')
				}
				if csvEnc != nil {
					csvBuf, err = csvEnc.AppendRow(csvBuf, &res)
					if err != nil {
						// A row the worker cannot render faithfully would
						// fail again on any re-issued lease; tell the
						// coordinator the run is unservable.
						w.send(&Msg{Type: MsgFail, Reason: err.Error()})
						return err
					}
				}
				if wobs != nil {
					wobs.Targets.Inc()
					wobs.RenderedJSONBytes.Add(uint64(len(jsonBuf) - j0))
					wobs.RenderedCSVBytes.Add(uint64(len(csvBuf) - c0))
				}
			}
			snap := delta.Snapshot()
			rep := &Msg{
				Type: MsgReport, Lo: m.Lo, Hi: m.Hi,
				JSONLen: len(jsonBuf), CSVLen: len(csvBuf),
				Shard: &snap,
			}
			if err := w.sendPayload(rep, jsonBuf, csvBuf); err != nil {
				return err
			}
			delta.Reset()
		case MsgHeartbeat:
			goto await
		default:
			return fmt.Errorf("dist: unexpected message %q awaiting lease", m.Type)
		}
	}
}

// probeTarget drives one index through its attempts, mirroring the
// scheduler's retry semantics exactly: attempt+1 lands in the result's
// Attempts field, so retry behavior is part of the byte contract. A
// terminally failing target is not an error — its result records the
// failure, exactly as in a single-process run.
func probeTarget(arena *campaign.ProbeArena, wobs *obs.Worker, cfg WorkerConfig,
	res *campaign.TargetResult, index, retries int, backoff time.Duration, limiter *workerBucket) {
	b := backoff
	for attempt := 0; ; attempt++ {
		if waited := limiter.take(); waited > 0 && cfg.Obs != nil {
			cfg.Obs.Sched.RateWaitNanos.AddInt(waited.Nanoseconds())
		}
		var probeStart time.Time
		if wobs != nil {
			wobs.Attempts.Inc()
			probeStart = time.Now()
		}
		arena.ProbeTargetInto(res, cfg.Targets[index], cfg.Samples, attempt)
		if wobs != nil {
			wobs.ProbeNanos.Observe(time.Since(probeStart).Nanoseconds())
		}
		if res.Err == "" || attempt >= retries {
			return
		}
		if cfg.Obs != nil {
			cfg.Obs.Sched.Retries.Inc()
		}
		if b > 0 {
			time.Sleep(b)
			if cfg.Obs != nil {
				cfg.Obs.Sched.BackoffNanos.AddInt(b.Nanoseconds())
			}
			b *= 2
		}
	}
}

// workerBucket is the worker's slice of the campaign rate budget: a plain
// blocking token bucket (this is a politeness limiter on a worker's own
// probes — none of the scheduler's stop-channel plumbing applies). take
// returns how long it blocked.
type workerBucket struct {
	rate, burst, tokens float64
	last                time.Time
}

func newWorkerBucket(rate, burst float64) *workerBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &workerBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

func (b *workerBucket) take() time.Duration {
	if b == nil {
		return 0
	}
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	time.Sleep(wait)
	b.tokens = 0
	b.last = time.Now()
	return wait
}
