package dist

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/obs"
)

// WorkerConfig parameterizes one worker process's probe loop.
type WorkerConfig struct {
	// Connect is the coordinator address (see Dial); ignored when Conn is
	// set (tests inject pipes).
	Connect string
	Conn    net.Conn

	// Targets must be the same list the coordinator holds — workers
	// enumerate it from the same flags rather than shipping it over the
	// wire, and the fingerprint handshake proves the two agree.
	Targets []campaign.Target
	// Samples per measurement (default 8, the campaign default; part of
	// the fingerprint).
	Samples int

	// Obs, when set, records worker-side telemetry; its totals and exact
	// probe-latency bins ship to the coordinator at bye. Typically
	// obs.NewCampaign(1).
	Obs *obs.Campaign

	// Heartbeat is the liveness send interval (default 2s — far inside
	// the coordinator's lease timeout).
	Heartbeat time.Duration

	// ReconnectBackoff is the base delay between reconnect attempts after
	// a connection loss; attempts back off exponentially with jitter from
	// here (default 100ms). Reconnection is safe by construction: the
	// coordinator re-issues the lost session's leases and first-report-wins
	// drops any duplicate, so output bytes cannot change.
	ReconnectBackoff time.Duration
	// MaxReconnects bounds *consecutive* failed connection attempts (dial
	// or handshake failures) before the worker gives up; a completed
	// handshake resets the count, so a long campaign survives any number
	// of separate disconnects. Default 8; negative disables reconnection
	// entirely (one session, as before this knob existed).
	MaxReconnects int
	// WriteTimeout bounds each framed send toward the coordinator
	// (default 15s), so a dead peer fails the session into the reconnect
	// path instead of wedging it behind TCP backpressure.
	WriteTimeout time.Duration
}

// permanentError marks worker failures that reconnecting cannot fix —
// rejection, config mismatch, or a local render failure that would recur
// on any re-issued lease.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// RunWorker connects to a coordinator and probes leased spans until
// drained. Each leased span runs the normal arena-pooled probe pipeline;
// results are rendered with the same AppendJSON/CSVRowEncoder bytes a
// local run would sink, and each report carries an exact aggregator-shard
// delta for the span. Retries, backoff and the rate budget come from the
// coordinator's welcome so output bytes cannot depend on worker-local
// flags.
//
// A lost connection is not an error: the worker discards any unsent span
// state, redials with exponential backoff + jitter, and re-runs the
// hello/fingerprint handshake. Exactly-once output is the coordinator's
// job (lease re-issue + first-report-wins); the worker only has to never
// resend stale bytes, which discarding on reconnect guarantees.
func RunWorker(cfg WorkerConfig) error {
	if cfg.Samples == 0 {
		cfg.Samples = 8
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = 100 * time.Millisecond
	}
	if cfg.MaxReconnects == 0 {
		cfg.MaxReconnects = 8
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 15 * time.Second
	}
	if len(cfg.Targets) == 0 {
		return fmt.Errorf("dist: worker has no targets")
	}

	st := &workerState{
		cfg:   cfg,
		fp:    campaign.Fingerprint(cfg.Targets, cfg.Samples),
		arena: campaign.NewProbeArena(),
		delta: campaign.NewShard(),
	}
	if cfg.Obs != nil {
		st.wobs = cfg.Obs.Worker(0)
		st.arena.SetObserver(st.wobs)
	}

	if cfg.Conn != nil {
		// An injected connection cannot be re-dialed; run one session.
		_, err := st.runSession(cfg.Conn)
		return err
	}

	failures := 0 // consecutive attempts that died before welcome
	for {
		var welcomed bool
		conn, err := Dial(cfg.Connect)
		if err == nil {
			welcomed, err = st.runSession(conn)
			if err == nil {
				return nil // drained
			}
			var perm *permanentError
			if errors.As(err, &perm) {
				return err
			}
		}
		if cfg.MaxReconnects < 0 {
			return err
		}
		if welcomed {
			failures = 0
		} else {
			failures++
			if failures > cfg.MaxReconnects {
				return fmt.Errorf("dist: giving up after %d consecutive failed connections: %w", failures, err)
			}
		}
		sleepBackoff(cfg.ReconnectBackoff, failures)
	}
}

// sleepBackoff sleeps base<<n (capped at 5s) with ±50% jitter, decorrelating
// a fleet of workers reconnecting to a coordinator that just came back.
// This randomness touches only connection pacing, never output bytes.
func sleepBackoff(base time.Duration, n int) {
	d := base
	for i := 0; i < n && d < 5*time.Second; i++ {
		d *= 2
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d)))
	time.Sleep(d)
}

// workerState is the probe machinery that outlives any one connection:
// the arena, telemetry shard, aggregator delta and render buffers. Span
// state (delta, buffers) is reset at each span receipt, so bytes from a
// span interrupted by a connection loss can never leak into a later
// report.
type workerState struct {
	cfg   WorkerConfig
	fp    uint64
	arena *campaign.ProbeArena
	wobs  *obs.Worker
	delta *campaign.Shard

	jsonBuf, csvBuf []byte
	res             campaign.TargetResult

	sessions int
}

// runSession runs one connection from handshake to drain or death.
// welcomed reports whether the handshake completed (resets the caller's
// consecutive-failure budget); a nil error means the coordinator drained
// this worker and the run is over.
func (st *workerState) runSession(conn net.Conn) (welcomed bool, err error) {
	defer conn.Close()
	cfg := st.cfg
	w := newWire(conn)
	w.writeTimeout = cfg.WriteTimeout

	if err := w.send(&Msg{Type: MsgHello, Version: ProtocolVersion, Fingerprint: st.fp}); err != nil {
		return false, err
	}
	m, err := w.recv()
	if err != nil {
		return false, err
	}
	switch m.Type {
	case MsgWelcome:
	case MsgReject:
		return false, &permanentError{fmt.Errorf("dist: coordinator rejected worker: %s", m.Reason)}
	default:
		return false, fmt.Errorf("dist: expected welcome, got %q", m.Type)
	}
	if m.Samples != cfg.Samples {
		return false, &permanentError{fmt.Errorf("dist: coordinator wants %d samples, worker has %d", m.Samples, cfg.Samples)}
	}
	if st.sessions > 0 {
		if d := cfg.Obs.DistObs(); d != nil {
			d.Reconnects.Inc()
		}
	}
	st.sessions++
	retries := m.Retries
	backoff := time.Duration(m.BackoffNs)
	limiter := newWorkerBucket(m.Rate, m.Burst)

	// Heartbeats ride a separate goroutine through the wire's write lock,
	// so a long probe span cannot starve liveness. A failed heartbeat send
	// also closes the connection: the main loop may be blocked in recv with
	// no deadline (legitimately, awaiting a grant), and the close is what
	// folds a silently dead coordinator into the reconnect path.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if w.send(&Msg{Type: MsgHeartbeat}) != nil {
					conn.Close()
					return
				}
			case <-hbStop:
				return
			}
		}
	}()

	var csvEnc *campaign.CSVRowEncoder
	if m.WantCSV {
		csvEnc = campaign.NewCSVRowEncoder()
		for i := range cfg.Targets {
			if cfg.Targets[i].Topology != "" {
				csvEnc.IncludeTopology()
				break
			}
		}
		for i := range cfg.Targets {
			if cfg.Targets[i].Scenario != "" {
				csvEnc.IncludeScenario()
				break
			}
		}
	}
	wantJSONL := m.WantJSONL

	// Spans reported on this session. Within one session the coordinator
	// never sends the same span twice (a completed span is retired, and
	// re-issue happens only after a connection loss, which ends the
	// session), so receiving an already-reported span proves the control
	// line was duplicated in transit. It must be skipped without counting
	// as a lease reply: treating it as one desyncs the request/reply
	// pairing, and the coordinator — whose handler parks deadline-free in
	// grant() on the premise that a lease-requesting worker has nothing in
	// flight — then never reads the reports this worker sends one slot
	// ahead, wedging the run.
	reported := make(map[int]int)

	for {
		if err := w.send(&Msg{Type: MsgLease}); err != nil {
			return true, err
		}
	await:
		m, err := w.recv()
		if err != nil {
			return true, err
		}
		switch m.Type {
		case MsgDrain:
			bye := &Msg{Type: MsgBye}
			if cfg.Obs != nil {
				wire := cfg.Obs.Wire()
				bye.Obs = &wire
			}
			w.send(bye)
			return true, nil
		case MsgSpan:
			if m.Hi > len(cfg.Targets) || m.Lo >= m.Hi {
				return true, &permanentError{fmt.Errorf("dist: leased span [%d,%d) outside target range", m.Lo, m.Hi)}
			}
			if hi, ok := reported[m.Lo]; ok && hi == m.Hi {
				goto await // duplicated span line; the real reply follows
			}
			// Reset span state here, not after the report: a previous
			// session may have died mid-span, and its half-built delta and
			// buffers must never contaminate this span's report.
			st.delta.Reset()
			st.jsonBuf, st.csvBuf = st.jsonBuf[:0], st.csvBuf[:0]
			for i := m.Lo; i < m.Hi; i++ {
				probeTarget(st.arena, st.wobs, cfg, &st.res, i, retries, backoff, limiter)
				st.delta.Add(&st.res)
				j0, c0 := len(st.jsonBuf), len(st.csvBuf)
				if wantJSONL {
					st.jsonBuf = st.res.AppendJSON(st.jsonBuf)
					st.jsonBuf = append(st.jsonBuf, '\n')
				}
				if csvEnc != nil {
					st.csvBuf, err = csvEnc.AppendRow(st.csvBuf, &st.res)
					if err != nil {
						// A row the worker cannot render faithfully would
						// fail again on any re-issued lease; tell the
						// coordinator the run is unservable.
						w.send(&Msg{Type: MsgFail, Reason: err.Error()})
						return true, &permanentError{err}
					}
				}
				if st.wobs != nil {
					st.wobs.Targets.Inc()
					st.wobs.RenderedJSONBytes.Add(uint64(len(st.jsonBuf) - j0))
					st.wobs.RenderedCSVBytes.Add(uint64(len(st.csvBuf) - c0))
				}
			}
			snap := st.delta.Snapshot()
			rep := &Msg{
				Type: MsgReport, Lo: m.Lo, Hi: m.Hi,
				JSONLen: len(st.jsonBuf), CSVLen: len(st.csvBuf),
				Shard: &snap,
			}
			if err := w.sendPayload(rep, st.jsonBuf, st.csvBuf); err != nil {
				return true, err
			}
			reported[m.Lo] = m.Hi
		case MsgHeartbeat:
			goto await
		default:
			return true, fmt.Errorf("dist: unexpected message %q awaiting lease", m.Type)
		}
	}
}

// probeTarget drives one index through its attempts, mirroring the
// scheduler's retry semantics exactly: attempt+1 lands in the result's
// Attempts field, so retry behavior is part of the byte contract. A
// terminally failing target is not an error — its result records the
// failure, exactly as in a single-process run.
func probeTarget(arena *campaign.ProbeArena, wobs *obs.Worker, cfg WorkerConfig,
	res *campaign.TargetResult, index, retries int, backoff time.Duration, limiter *workerBucket) {
	b := backoff
	for attempt := 0; ; attempt++ {
		if waited := limiter.take(); waited > 0 && cfg.Obs != nil {
			cfg.Obs.Sched.RateWaitNanos.AddInt(waited.Nanoseconds())
		}
		var probeStart time.Time
		if wobs != nil {
			wobs.Attempts.Inc()
			probeStart = time.Now()
		}
		arena.ProbeTargetInto(res, cfg.Targets[index], cfg.Samples, attempt)
		if wobs != nil {
			wobs.ProbeNanos.Observe(time.Since(probeStart).Nanoseconds())
		}
		if res.Err == "" || attempt >= retries {
			return
		}
		if cfg.Obs != nil {
			cfg.Obs.Sched.Retries.Inc()
		}
		if b > 0 {
			time.Sleep(b)
			if cfg.Obs != nil {
				cfg.Obs.Sched.BackoffNanos.AddInt(b.Nanoseconds())
			}
			b *= 2
		}
	}
}

// workerBucket is the worker's slice of the campaign rate budget: a plain
// blocking token bucket (this is a politeness limiter on a worker's own
// probes — none of the scheduler's stop-channel plumbing applies). take
// returns how long it blocked.
type workerBucket struct {
	rate, burst, tokens float64
	last                time.Time
}

func newWorkerBucket(rate, burst float64) *workerBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &workerBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

func (b *workerBucket) take() time.Duration {
	if b == nil {
		return 0
	}
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	time.Sleep(wait)
	b.tokens = 0
	b.last = time.Now()
	return wait
}
