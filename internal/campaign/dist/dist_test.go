package dist

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/obs"
)

// testTargets replicates the campaign package's smallSpec: 24 targets
// spanning the profile × impairment × test matrix, the same enumeration
// the golden SHAs pin.
func testTargets(t *testing.T) []campaign.Target {
	t.Helper()
	targets, err := campaign.Enumerate(campaign.EnumSpec{
		Profiles:    []string{"freebsd4", "linux24", campaign.LBPool},
		Impairments: []string{"clean", "swap-heavy"},
		Tests:       []string{"single", "dual", "syn", "transfer"},
		Seeds:       1,
		BaseSeed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return targets
}

// outPaths returns (jsonl, csv, checkpoint) paths under dir.
func outPaths(dir string) (string, string, string) {
	return filepath.Join(dir, "out.jsonl"), filepath.Join(dir, "out.csv"), filepath.Join(dir, "ckpt.json")
}

func readOut(t *testing.T, dir string) (jsonl, csv []byte) {
	t.Helper()
	out, csvPath, _ := outPaths(dir)
	jsonl, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	csv, err = os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	return jsonl, csv
}

// runSingle runs the reference single-process campaign into dir.
func runSingle(t *testing.T, targets []campaign.Target, dir string) *campaign.Summary {
	t.Helper()
	out, csv, ckpt := outPaths(dir)
	sum, err := campaign.Run(campaign.Config{
		Targets:        targets,
		Samples:        4,
		OutputPath:     out,
		CSVPath:        csv,
		CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// serveDist runs a coordinator over cfg with n in-process workers
// connected via TCP loopback and returns the summary.
func serveDist(t *testing.T, cfg Config, targets []campaign.Target, n int) (*campaign.Summary, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Listener = ln
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	workerErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = RunWorker(WorkerConfig{
				Connect: addr,
				Targets: targets,
				Samples: cfg.Campaign.Samples,
			})
		}(i)
	}
	sum, err := Serve(cfg)
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil && err == nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	return sum, err
}

// TestServeMatchesRun is the core byte-identity check: a distributed run
// at any worker count produces the same JSONL, CSV, checkpoint and
// summary text as campaign.Run over the same config.
func TestServeMatchesRun(t *testing.T) {
	targets := testTargets(t)
	refDir := t.TempDir()
	refSum := runSingle(t, targets, refDir)
	refJSONL, refCSV := readOut(t, refDir)
	var refText bytes.Buffer
	refSum.WriteText(&refText)

	for _, workers := range []int{1, 2, 4} {
		dir := t.TempDir()
		out, csv, ckpt := outPaths(dir)
		sum, err := serveDist(t, Config{
			Campaign: campaign.Config{
				Targets:        targets,
				Samples:        4,
				OutputPath:     out,
				CSVPath:        csv,
				CheckpointPath: ckpt,
			},
			SpanSize:      5, // deliberately misaligned with the 24-target range
			ExpectWorkers: workers,
		}, targets, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		jsonl, csvb := readOut(t, dir)
		if !bytes.Equal(jsonl, refJSONL) {
			t.Errorf("workers=%d: JSONL differs from single-process run", workers)
		}
		if !bytes.Equal(csvb, refCSV) {
			t.Errorf("workers=%d: CSV differs from single-process run", workers)
		}
		var text bytes.Buffer
		sum.WriteText(&text)
		if !bytes.Equal(text.Bytes(), refText.Bytes()) {
			t.Errorf("workers=%d: summary text differs from single-process run\n--- dist ---\n%s\n--- single ---\n%s",
				workers, text.String(), refText.String())
		}
		refCkpt, _ := os.ReadFile(filepath.Join(refDir, "ckpt.json"))
		distCkpt, _ := os.ReadFile(ckpt)
		if !bytes.Equal(refCkpt, distCkpt) {
			t.Errorf("workers=%d: final checkpoint differs from single-process run", workers)
		}
	}
}

// TestServeScenarioMatchesRun extends the byte-identity check to a
// scenario-bearing population: fault schedules and middleboxes run inside
// each worker process, the scenario name rides the fingerprint handshake,
// and the workers' pre-rendered CSV must carry the gated scenario column
// exactly as a single-process run does (a worker that forgets to gate it
// shifts every scenario row).
func TestServeScenarioMatchesRun(t *testing.T) {
	targets, err := campaign.Enumerate(campaign.EnumSpec{
		Profiles:    []string{"freebsd4", "linux24"},
		Impairments: []string{"clean", "swap-heavy"},
		Tests:       []string{"single", "syn"},
		Seeds:       1,
		BaseSeed:    42,
		Topologies:  []string{"", "diamond"},
		Scenarios:   []string{"", "rst-inject", "route-flap"},
	})
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	runSingle(t, targets, refDir)
	refJSONL, refCSV := readOut(t, refDir)
	if !bytes.Contains(refCSV, []byte("scenario")) {
		t.Fatal("reference CSV lacks the scenario column")
	}

	dir := t.TempDir()
	out, csv, ckpt := outPaths(dir)
	if _, err := serveDist(t, Config{
		Campaign: campaign.Config{
			Targets:        targets,
			Samples:        4,
			OutputPath:     out,
			CSVPath:        csv,
			CheckpointPath: ckpt,
		},
		SpanSize:      5,
		ExpectWorkers: 2,
	}, targets, 2); err != nil {
		t.Fatal(err)
	}
	jsonl, csvb := readOut(t, dir)
	if !bytes.Equal(jsonl, refJSONL) {
		t.Error("scenario JSONL differs from single-process run")
	}
	if !bytes.Equal(csvb, refCSV) {
		t.Error("scenario CSV differs from single-process run")
	}
}

// crashAfterLease connects as a protocol-correct worker, takes one lease,
// and drops the connection without reporting — the crash the re-issue
// queue exists for.
func crashAfterLease(t *testing.T, addr string, targets []campaign.Target) {
	t.Helper()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	w := newWire(conn)
	fp := campaign.Fingerprint(targets, 4)
	if err := w.send(&Msg{Type: MsgHello, Version: ProtocolVersion, Fingerprint: fp}); err != nil {
		t.Fatal(err)
	}
	if m, err := w.recv(); err != nil || m.Type != MsgWelcome {
		t.Fatalf("crasher handshake: %v %+v", err, m)
	}
	if err := w.send(&Msg{Type: MsgLease}); err != nil {
		t.Fatal(err)
	}
	if m, err := w.recv(); err != nil || m.Type != MsgSpan {
		t.Fatalf("crasher lease: %v %+v", err, m)
	}
	conn.Close() // dies holding the lease
}

// TestWorkerCrashReissue kills a worker that holds a lease; the span must
// be re-issued and the final output stay byte-identical.
func TestWorkerCrashReissue(t *testing.T) {
	targets := testTargets(t)
	refDir := t.TempDir()
	runSingle(t, targets, refDir)
	refJSONL, refCSV := readOut(t, refDir)

	dir := t.TempDir()
	out, csv, ckpt := outPaths(dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	var log bytes.Buffer
	done := make(chan struct{})
	var sum *campaign.Summary
	var serveErr error
	go func() {
		defer close(done)
		sum, serveErr = Serve(Config{
			Campaign: campaign.Config{
				Targets:        targets,
				Samples:        4,
				OutputPath:     out,
				CSVPath:        csv,
				CheckpointPath: ckpt,
			},
			Listener: ln,
			SpanSize: 4,
			Log:      &log,
		})
	}()

	// The crasher takes the first lease ([0,4)) and dies with it, so the
	// honest worker's spans all stash behind the hole until re-issue.
	crashAfterLease(t, addr, targets)
	if err := RunWorker(WorkerConfig{Connect: addr, Targets: targets, Samples: 4}); err != nil {
		t.Fatalf("surviving worker: %v", err)
	}
	<-done
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	if sum.Interrupted {
		t.Error("run reported interrupted after worker crash recovery")
	}
	if !bytes.Contains(log.Bytes(), []byte("re-issued")) {
		t.Errorf("coordinator log does not mention re-issue:\n%s", log.String())
	}
	jsonl, csvb := readOut(t, dir)
	if !bytes.Equal(jsonl, refJSONL) {
		t.Error("JSONL differs after crash recovery")
	}
	if !bytes.Equal(csvb, refCSV) {
		t.Error("CSV differs after crash recovery")
	}
}

// TestDrainResume interrupts a distributed run mid-campaign, then resumes
// it (once distributed, once single-process) and checks the stitched
// output is byte-identical to an uninterrupted run — drain, checkpoint
// federation and cross-mode resume in one.
func TestDrainResume(t *testing.T) {
	targets := testTargets(t)
	refDir := t.TempDir()
	runSingle(t, targets, refDir)
	refJSONL, refCSV := readOut(t, refDir)

	for _, resumeDist := range []bool{true, false} {
		dir := t.TempDir()
		out, csv, ckpt := outPaths(dir)
		interrupt := make(chan struct{})
		var once sync.Once
		sum, err := serveDist(t, Config{
			Campaign: campaign.Config{
				Targets:        targets,
				Samples:        4,
				OutputPath:     out,
				CSVPath:        csv,
				CheckpointPath: ckpt,
				Interrupt:      interrupt,
				Progress: func(done, total int) {
					if done >= 7 {
						once.Do(func() { close(interrupt) })
					}
				},
			},
			SpanSize:      3,
			ExpectWorkers: 2,
		}, targets, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !sum.Interrupted {
			t.Fatal("drained run not marked interrupted")
		}

		resumeCfg := campaign.Config{
			Targets:        targets,
			Samples:        4,
			OutputPath:     out,
			CSVPath:        csv,
			CheckpointPath: ckpt,
			Resume:         true,
		}
		if resumeDist {
			sum, err = serveDist(t, Config{
				Campaign: resumeCfg,
				SpanSize: 3,
			}, targets, 1)
		} else {
			sum, err = campaign.Run(resumeCfg)
		}
		if err != nil {
			t.Fatalf("resume (dist=%v): %v", resumeDist, err)
		}
		if sum.Interrupted {
			t.Errorf("resume (dist=%v): completed run still marked interrupted", resumeDist)
		}
		jsonl, csvb := readOut(t, dir)
		if !bytes.Equal(jsonl, refJSONL) {
			t.Errorf("resume (dist=%v): JSONL differs from uninterrupted run", resumeDist)
		}
		if !bytes.Equal(csvb, refCSV) {
			t.Errorf("resume (dist=%v): CSV differs from uninterrupted run", resumeDist)
		}
	}
}

// TestObsMerge runs a distributed campaign with telemetry on both sides
// and checks the coordinator's merged registry covers every probe the
// workers ran.
func TestObsMerge(t *testing.T) {
	targets := testTargets(t)
	dir := t.TempDir()
	out, csv, ckpt := outPaths(dir)

	coordObs := obs.NewCampaign(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(WorkerConfig{
				Connect: addr,
				Targets: targets,
				Samples: 4,
				Obs:     obs.NewCampaign(1),
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	if _, err := Serve(Config{
		Campaign: campaign.Config{
			Targets:        targets,
			Samples:        4,
			OutputPath:     out,
			CSVPath:        csv,
			CheckpointPath: ckpt,
			Obs:            coordObs,
		},
		Listener:      ln,
		ExpectWorkers: 2,
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	snap := coordObs.Snapshot()
	if got, want := snap.Workers.Targets, uint64(len(targets)); got != want {
		t.Errorf("merged Targets = %d, want %d", got, want)
	}
	if snap.Workers.Attempts < uint64(len(targets)) {
		t.Errorf("merged Attempts = %d, want >= %d", snap.Workers.Attempts, len(targets))
	}
	if snap.ProbeLatency.Count != snap.Workers.Attempts {
		t.Errorf("merged probe-latency count %d != attempts %d",
			snap.ProbeLatency.Count, snap.Workers.Attempts)
	}
	if snap.Done != int64(len(targets)) {
		t.Errorf("run progress done = %d, want %d", snap.Done, len(targets))
	}
}

// TestRejects drives the handshake's refusal paths: bad version, wrong
// fingerprint, garbage instead of hello. The coordinator must reject all
// three and still run the campaign to completion with an honest worker.
func TestRejects(t *testing.T) {
	targets := testTargets(t)
	dir := t.TempDir()
	out, csv, ckpt := outPaths(dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	done := make(chan struct{})
	var serveErr error
	go func() {
		defer close(done)
		_, serveErr = Serve(Config{
			Campaign: campaign.Config{
				Targets:        targets,
				Samples:        4,
				OutputPath:     out,
				CSVPath:        csv,
				CheckpointPath: ckpt,
			},
			Listener: ln,
		})
	}()

	expectReject := func(name string, raw string) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(raw)); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		w := newWire(conn)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		m, err := w.recv()
		if err != nil {
			// Connection closed without a readable reject is also a refusal.
			return
		}
		if m.Type != MsgReject {
			t.Errorf("%s: got %q, want reject", name, m.Type)
		}
	}
	expectReject("garbage", "{{{ not json\n")
	expectReject("bad-version", `{"type":"hello","version":99,"fingerprint":1}`+"\n")
	expectReject("bad-fingerprint", `{"type":"hello","version":1,"fingerprint":12345}`+"\n")
	expectReject("trailing-garbage", `{"type":"hello","version":1} {"x":1}`+"\n")

	if err := RunWorker(WorkerConfig{Connect: addr, Targets: targets, Samples: 4}); err != nil {
		t.Fatalf("honest worker: %v", err)
	}
	<-done
	if serveErr != nil {
		t.Fatal(serveErr)
	}
}

// TestLeaseTable unit-tests the dispatch invariants: lowest-lo re-issue
// first, window gating, first-completion-wins, revoke requeueing.
func TestLeaseTable(t *testing.T) {
	tb := newLeaseTable(0, 20, 5, 10)
	s1, ok := tb.grant(1)
	if !ok || s1 != (span{0, 5}) {
		t.Fatalf("grant 1 = %+v %v", s1, ok)
	}
	s2, ok := tb.grant(2)
	if !ok || s2 != (span{5, 10}) {
		t.Fatalf("grant 2 = %+v %v", s2, ok)
	}
	// Window is 10 above frontier 0: [10,15) must block until an advance.
	granted := make(chan span)
	go func() {
		sp, ok := tb.grant(3)
		if !ok {
			t.Error("grant 3 drained unexpectedly")
		}
		granted <- sp
	}()
	select {
	case sp := <-granted:
		t.Fatalf("grant beyond window returned %+v before advance", sp)
	case <-time.After(50 * time.Millisecond):
	}
	if !tb.complete(0, 5) {
		t.Fatal("first completion rejected")
	}
	tb.advance(5)
	if sp := <-granted; sp != (span{10, 15}) {
		t.Fatalf("post-advance grant = %+v", sp)
	}
	// Worker 2 dies holding [5,10): it must come back before the cursor.
	tb.revoke(2)
	s4, ok := tb.grant(4)
	if !ok || s4 != (span{5, 10}) {
		t.Fatalf("re-issue grant = %+v %v, want [5,10)", s4, ok)
	}
	// The dead worker's late report must lose to the re-issued lease.
	if !tb.complete(5, 10) {
		t.Fatal("re-issued completion rejected")
	}
	if tb.complete(5, 10) {
		t.Fatal("duplicate completion accepted")
	}
	tb.advance(10)
	if s5, ok := tb.grant(5); !ok || s5 != (span{15, 20}) {
		t.Fatalf("tail grant = %+v %v", s5, ok)
	}
	tb.complete(10, 15)
	tb.complete(15, 20)
	tb.advance(20)
	if _, ok := tb.grant(6); ok {
		t.Fatal("grant after completion should drain")
	}
	settled := make(chan struct{})
	go func() { tb.waitSettled(); close(settled) }()
	select {
	case <-settled:
	case <-time.After(time.Second):
		t.Fatal("waitSettled hung on a finished table")
	}
}

// fakeConn adapts a byte buffer to net.Conn for wire parsing tests.
type fakeConn struct {
	*bytes.Reader
}

func (fakeConn) Write(b []byte) (int, error)        { return len(b), nil }
func (fakeConn) Close() error                       { return nil }
func (fakeConn) LocalAddr() net.Addr                { return nil }
func (fakeConn) RemoteAddr() net.Addr               { return nil }
func (fakeConn) SetDeadline(time.Time) error        { return nil }
func (fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (fakeConn) SetWriteDeadline(t time.Time) error { return nil }

// TestRecvMalformed pins the parser's rejection matrix.
func TestRecvMalformed(t *testing.T) {
	cases := []struct{ name, input string }{
		{"empty-line", "\n"},
		{"whitespace", "   \n"},
		{"not-json", "hello world\n"},
		{"unknown-type", `{"type":"exploit"}` + "\n"},
		{"trailing-garbage", `{"type":"lease"} extra` + "\n"},
		{"negative-span", `{"type":"span","lo":-3,"hi":4}` + "\n"},
		{"inverted-span", `{"type":"span","lo":9,"hi":2}` + "\n"},
		{"huge-payload", `{"type":"report","json_len":999999999999}` + "\n"},
		{"wrong-shape", `[1,2,3]` + "\n"},
	}
	for _, tc := range cases {
		w := newWire(fakeConn{bytes.NewReader([]byte(tc.input))})
		if m, err := w.recv(); err == nil {
			t.Errorf("%s: accepted as %+v", tc.name, m)
		}
	}
	// And a sanity valid case so the matrix can't pass vacuously.
	w := newWire(fakeConn{bytes.NewReader([]byte(`{"type":"span","lo":3,"hi":8}` + "\n"))})
	m, err := w.recv()
	if err != nil || m.Lo != 3 || m.Hi != 8 {
		t.Fatalf("valid span rejected: %v %+v", err, m)
	}
}

// FuzzRecv asserts the parser never panics and never accepts a message
// with an out-of-whitelist type, whatever bytes arrive.
func FuzzRecv(f *testing.F) {
	f.Add([]byte(`{"type":"hello","version":1,"fingerprint":42}` + "\n"))
	f.Add([]byte(`{"type":"report","lo":0,"hi":5,"json_len":10,"csv_len":3}` + "\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"type":"span","lo":1e99}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		w := newWire(fakeConn{bytes.NewReader(data)})
		for i := 0; i < 4; i++ {
			m, err := w.recv()
			if err != nil {
				return
			}
			switch m.Type {
			case MsgHello, MsgWelcome, MsgReject, MsgLease, MsgSpan, MsgDrain,
				MsgReport, MsgHeartbeat, MsgBye, MsgFail:
			default:
				t.Fatalf("recv accepted unknown type %q", m.Type)
			}
			if m.JSONLen < 0 || m.CSVLen < 0 || m.Lo < 0 || m.Hi < m.Lo {
				t.Fatalf("recv accepted malformed numeric fields: %+v", m)
			}
		}
	})
}
