package dist

import (
	"sync"
	"testing"
)

// TestLeaseReissueOrderingAfterMassRevoke revokes several workers' leases
// in scrambled order and checks re-grants come back lowest-lo-first,
// ahead of the never-issued cursor — the ordering that unblocks the
// in-order emit frontier fastest after a fleet-wide loss.
func TestLeaseReissueOrderingAfterMassRevoke(t *testing.T) {
	tb := newLeaseTable(0, 40, 5, 100)
	if sp, ok := tb.grant(1); !ok || sp != (span{0, 5}) {
		t.Fatalf("grant 1 = %+v %v", sp, ok)
	}
	if sp, ok := tb.grant(2); !ok || sp != (span{5, 10}) {
		t.Fatalf("grant 2 = %+v %v", sp, ok)
	}
	if sp, ok := tb.grant(3); !ok || sp != (span{10, 15}) {
		t.Fatalf("grant 3 = %+v %v", sp, ok)
	}
	if sp, ok := tb.grant(1); !ok || sp != (span{15, 20}) {
		t.Fatalf("grant 1b = %+v %v", sp, ok)
	}

	// Mass revoke in scrambled order; worker 1 held two spans.
	if n := tb.revoke(2); n != 1 {
		t.Fatalf("revoke(2) = %d, want 1", n)
	}
	if n := tb.revoke(1); n != 2 {
		t.Fatalf("revoke(1) = %d, want 2", n)
	}
	if n := tb.revoke(3); n != 1 {
		t.Fatalf("revoke(3) = %d, want 1", n)
	}
	if n := tb.revoke(3); n != 0 {
		t.Fatalf("second revoke(3) = %d, want 0 (nothing held)", n)
	}

	// Re-grants must drain the queue lowest-lo-first before the cursor
	// resumes at [20,25).
	want := []span{{0, 5}, {5, 10}, {10, 15}, {15, 20}, {20, 25}}
	for i, w := range want {
		sp, ok := tb.grant(9)
		if !ok || sp != w {
			t.Fatalf("re-grant %d = %+v %v, want %+v", i, sp, ok, w)
		}
	}
}

// TestLeaseRevokeRacesReport races a worker-loss revoke against that
// worker's in-flight report for the same span, many times. Exactly one
// outcome is allowed per race: either the report wins (complete returns
// true, the span is retired, nobody re-probes it) or the revoke wins (the
// report is stale, complete returns false, and the span is re-grantable
// exactly once). Either way no span is lost or completed twice.
func TestLeaseRevokeRacesReport(t *testing.T) {
	for i := 0; i < 300; i++ {
		tb := newLeaseTable(0, 10, 5, 100)
		if sp, ok := tb.grant(1); !ok || sp != (span{0, 5}) {
			t.Fatalf("iter %d: grant = %+v %v", i, sp, ok)
		}

		var wg sync.WaitGroup
		var completed bool
		wg.Add(2)
		go func() {
			defer wg.Done()
			tb.revoke(1)
		}()
		go func() {
			defer wg.Done()
			completed = tb.complete(0, 5)
		}()
		wg.Wait()

		// Whatever interleaving happened, the next grant decides: a
		// completed span must never be handed out again, a revoked-first
		// span must come back exactly once.
		sp, ok := tb.grant(2)
		if !ok {
			t.Fatalf("iter %d: table drained with work left", i)
		}
		if completed {
			if sp != (span{5, 10}) {
				t.Fatalf("iter %d: completed span re-granted as %+v", i, sp)
			}
		} else {
			if sp != (span{0, 5}) {
				t.Fatalf("iter %d: revoked span not re-granted (got %+v)", i, sp)
			}
			// The original worker's late duplicate must lose to exactly one
			// completion of the re-issued lease.
			if !tb.complete(0, 5) {
				t.Fatalf("iter %d: re-issued completion rejected", i)
			}
			if tb.complete(0, 5) {
				t.Fatalf("iter %d: duplicate completion accepted", i)
			}
		}
	}
}

// TestLeaseRevokeDuringGrantWait checks a revoke arriving while another
// worker is parked in grant (window-blocked) wakes it with the re-issued
// span rather than leaving it parked past the loss.
func TestLeaseRevokeDuringGrantWait(t *testing.T) {
	tb := newLeaseTable(0, 20, 5, 5) // window 5: only one span grantable
	if sp, ok := tb.grant(1); !ok || sp != (span{0, 5}) {
		t.Fatalf("grant = %+v %v", sp, ok)
	}
	got := make(chan span)
	go func() {
		sp, ok := tb.grant(2)
		if !ok {
			t.Error("waiting grant drained unexpectedly")
		}
		got <- sp
	}()
	// Worker 1 dies; its span must route to the parked worker 2.
	tb.revoke(1)
	if sp := <-got; sp != (span{0, 5}) {
		t.Fatalf("post-revoke grant = %+v, want [0,5)", sp)
	}
}
