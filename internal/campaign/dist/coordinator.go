package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"reorder/internal/campaign"
)

// Config parameterizes a coordinator.
type Config struct {
	// Campaign is the full campaign configuration: targets, samples,
	// retries/backoff/rate (communicated to workers — the coordinator owns
	// every probe-affecting knob so distributed output matches
	// single-process bytes), sinks, checkpoint/resume, telemetry,
	// Interrupt. Extra in-process Sinks are not supported in distributed
	// mode: the coordinator handles rendered bytes, not decoded results.
	Campaign campaign.Config

	// Listener accepts worker connections; Serve closes it. See Listen.
	Listener net.Listener

	// SpanSize is the lease granularity in targets (default 32; forced to
	// 1 when RatePerSec is set, so the per-worker token buckets pace
	// individual probes just as the in-process scheduler does).
	SpanSize int
	// Window bounds how far leases may run ahead of the emit frontier —
	// the re-sequencing stash never holds more than this many targets
	// (default max(64, 4×SpanSize×ExpectWorkers)).
	Window int
	// LeaseTimeout expires a silent worker's leases back to the re-issue
	// queue (default 15s). Workers heartbeat far more often; only a dead
	// or wedged worker trips this.
	LeaseTimeout time.Duration
	// ExpectWorkers sizes the per-worker rate budget split and the default
	// window (default 1). More or fewer workers may actually connect; the
	// split is a politeness budget, not a correctness knob.
	ExpectWorkers int
	// Log, when set, receives worker join/loss notices.
	Log io.Writer
}

func (cfg Config) withDefaults() Config {
	if cfg.ExpectWorkers <= 0 {
		cfg.ExpectWorkers = 1
	}
	if cfg.SpanSize <= 0 {
		cfg.SpanSize = 32
	}
	if cfg.Campaign.RatePerSec > 0 {
		cfg.SpanSize = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 4 * cfg.SpanSize * cfg.ExpectWorkers
		if cfg.Window < 64 {
			cfg.Window = 64
		}
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 15 * time.Second
	}
	return cfg
}

// pendingSpan is a reported-but-not-yet-emitted span: the worker's
// verbatim rendered bytes plus its exact aggregator delta, stashed until
// the emit frontier reaches lo.
type pendingSpan struct {
	hi          int
	jsonb, csvb []byte
	shard       *campaign.ShardSnapshot
	worker      int
}

type coordinator struct {
	cfg   Config
	em    *campaign.Emitter
	agg   *campaign.Aggregator
	table *leaseTable

	mu     sync.Mutex
	stash  map[int]*pendingSpan
	conns  map[int]net.Conn
	nextID int
	err    error

	wg sync.WaitGroup
}

// Serve runs a distributed campaign to completion (or drain, or failure)
// and returns the merged summary. It owns the full collector side: the
// same Emitter a single-process run uses consumes re-sequenced span
// bytes, so JSONL/CSV/checkpoint output is byte-identical to
// campaign.Run over the same config, and a run interrupted here resumes
// under either mode.
func Serve(cfg Config) (*campaign.Summary, error) {
	cfg = cfg.withDefaults()
	if cfg.Listener == nil {
		return nil, errors.New("dist: Serve requires a Listener")
	}
	if len(cfg.Campaign.Sinks) > 0 {
		return nil, errors.New("dist: extra in-process sinks are unsupported in distributed mode")
	}
	em, err := campaign.NewEmitter(cfg.Campaign)
	if err != nil {
		return nil, err
	}
	agg := campaign.NewAggregator(1)
	for _, r := range em.Replayed() {
		agg.Shard(0).Add(r)
	}
	c := &coordinator{
		cfg:   cfg,
		em:    em,
		agg:   agg,
		table: newLeaseTable(em.Start(), em.End(), cfg.SpanSize, cfg.Window),
		stash: map[int]*pendingSpan{},
		conns: map[int]net.Conn{},
	}
	em.StartRun(cfg.ExpectWorkers)

	stop := make(chan struct{})
	if cfg.Campaign.Interrupt != nil {
		go func() {
			select {
			case <-cfg.Campaign.Interrupt:
				c.table.drain()
			case <-stop:
			}
		}()
	}
	go func() {
		backoff := 10 * time.Millisecond
		for {
			conn, aerr := cfg.Listener.Accept()
			if aerr != nil {
				// Transient accept failures (EMFILE pressure, an injected
				// faultnet hiccup) are retried with capped backoff — only a
				// persistent listener failure with work remaining strands
				// the campaign and must surface.
				var tmp interface{ Temporary() bool }
				if errors.As(aerr, &tmp) && tmp.Temporary() {
					if d := cfg.Campaign.Obs.DistObs(); d != nil {
						d.AcceptRetries.Inc()
					}
					c.logf("dist: transient accept failure (retrying in %v): %v", backoff, aerr)
					select {
					case <-stop:
						return
					case <-time.After(backoff):
					}
					if backoff *= 2; backoff > time.Second {
						backoff = time.Second
					}
					continue
				}
				select {
				case <-stop:
				default:
					c.fail(fmt.Errorf("dist: accept: %w", aerr))
				}
				return
			}
			backoff = 10 * time.Millisecond
			c.wg.Add(1)
			go c.handle(conn)
		}
	}()

	c.table.waitSettled()
	close(stop)
	c.table.drain() // release handlers still blocked in grant
	cfg.Listener.Close()
	c.wg.Wait()

	c.mu.Lock()
	runErr := c.err
	c.mu.Unlock()
	interrupted, err := em.Finish(runErr)
	if err != nil {
		cfg.Campaign.Trace.RunEnd(em.Emitted(), interrupted, err.Error())
		return nil, err
	}
	cfg.Campaign.Trace.RunEnd(em.Emitted(), interrupted, "")
	sum := agg.Summary()
	sum.Interrupted = interrupted
	return sum, nil
}

// fail records the first fatal error, wakes the lease table, and severs
// every worker so their handlers unwind.
func (c *coordinator) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	conns := make([]net.Conn, 0, len(c.conns))
	for _, conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	c.table.fail()
	for _, conn := range conns {
		conn.Close()
	}
}

func (c *coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, format+"\n", args...)
	}
}

// handle owns one worker connection from handshake to bye. Any read
// error, timeout or protocol violation drops the connection; the deferred
// revoke returns the worker's leases to the re-issue queue, which is the
// entire crash-recovery story.
func (c *coordinator) handle(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	w := newWire(conn)
	// A worker that stops reading must fail our sends rather than wedging
	// this handler (and the span it holds) behind TCP backpressure.
	w.writeTimeout = c.cfg.LeaseTimeout

	conn.SetReadDeadline(time.Now().Add(c.cfg.LeaseTimeout))
	m, err := w.recv()
	if err != nil || m.Type != MsgHello {
		w.send(&Msg{Type: MsgReject, Reason: "expected hello"})
		return
	}
	if m.Version != ProtocolVersion {
		w.send(&Msg{Type: MsgReject, Reason: fmt.Sprintf("protocol version %d, want %d", m.Version, ProtocolVersion)})
		return
	}
	if m.Fingerprint != c.em.Fingerprint() {
		// The worker enumerated a different target list or sample count:
		// its probes would be valid answers to a different campaign.
		w.send(&Msg{Type: MsgReject, Reason: fmt.Sprintf("campaign fingerprint %x, want %x", m.Fingerprint, c.em.Fingerprint())})
		return
	}

	c.mu.Lock()
	id := c.nextID
	c.nextID++
	c.conns[id] = conn
	c.mu.Unlock()
	c.logf("dist: worker %d connected (%s)", id, conn.RemoteAddr())
	clean := false
	defer func() {
		c.mu.Lock()
		delete(c.conns, id)
		c.mu.Unlock()
		n := c.table.revoke(id)
		if n > 0 {
			if d := c.cfg.Campaign.Obs.DistObs(); d != nil {
				d.LeaseReissues.Add(uint64(n))
			}
		}
		if !clean {
			c.logf("dist: worker %d lost — %d leases re-issued", id, n)
		}
	}()

	ccfg := c.cfg.Campaign
	welcome := &Msg{
		Type:      MsgWelcome,
		Worker:    id,
		Samples:   c.em.Samples(),
		Retries:   ccfg.Retries,
		BackoffNs: ccfg.Backoff.Nanoseconds(),
		WantJSONL: c.em.HasJSONL(),
		WantCSV:   c.em.HasCSV(),
	}
	if ccfg.RatePerSec > 0 {
		welcome.Rate = ccfg.RatePerSec / float64(c.cfg.ExpectWorkers)
		welcome.Burst = float64(ccfg.Burst) / float64(c.cfg.ExpectWorkers)
		if welcome.Burst < 1 {
			welcome.Burst = 1
		}
	}
	if err := w.send(welcome); err != nil {
		return
	}

	for {
		conn.SetReadDeadline(time.Now().Add(c.cfg.LeaseTimeout))
		m, err := w.recv()
		if err != nil {
			return
		}
		switch m.Type {
		case MsgHeartbeat:
			// Liveness only; the deadline reset above is its entire effect.
		case MsgLease:
			// grant blocks with no deadline pending — a worker waiting for
			// work holds no leases, so its silence risks nothing.
			conn.SetReadDeadline(time.Time{})
			sp, ok := c.table.grant(id)
			if !ok {
				w.send(&Msg{Type: MsgDrain})
				c.awaitBye(w, conn, id)
				clean = true
				return
			}
			if sched := c.cfg.Campaign.Obs.SchedObs(); sched != nil {
				sched.SpanClaims.Inc()
			}
			c.cfg.Campaign.Trace.SpanClaim(id, sp.lo, sp.hi)
			if err := w.send(&Msg{Type: MsgSpan, Lo: sp.lo, Hi: sp.hi}); err != nil {
				return
			}
		case MsgReport:
			jsonb, rerr := w.readPayload(m.JSONLen)
			if rerr != nil {
				return
			}
			csvb, rerr := w.readPayload(m.CSVLen)
			if rerr != nil {
				return
			}
			if err := c.report(m, jsonb, csvb, id); err != nil {
				c.fail(err)
				return
			}
		case MsgFail:
			// The worker hit a non-retryable local failure (e.g. a render
			// error). Re-issuing its span would just fail again on the
			// next worker, so this is run-fatal.
			c.fail(fmt.Errorf("dist: worker %d failed: %s", id, m.Reason))
			return
		case MsgBye:
			c.absorbObs(id, m)
			clean = true
			return
		default:
			return
		}
	}
}

// awaitBye drains the tail of a worker connection after sending drain:
// the worker's bye carries its telemetry contribution.
func (c *coordinator) awaitBye(w *wire, conn net.Conn, id int) {
	for {
		conn.SetReadDeadline(time.Now().Add(c.cfg.LeaseTimeout))
		m, err := w.recv()
		if err != nil {
			return
		}
		switch m.Type {
		case MsgBye:
			c.absorbObs(id, m)
			return
		case MsgHeartbeat:
		default:
			return
		}
	}
}

func (c *coordinator) absorbObs(id int, m *Msg) {
	if m.Obs == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.cfg.Campaign.Obs.AbsorbRemote(id, *m.Obs); err != nil {
		// Telemetry is advisory; a malformed contribution is logged, not
		// allowed to fail a finished campaign.
		c.logf("dist: worker %d telemetry rejected: %v", id, err)
	}
}

// report settles one completed span: first completion wins (duplicates
// from re-issued leases are dropped), the payload is stashed by lo, and
// every span now contiguous with the emit frontier is merged into the
// aggregator and emitted — shard deltas fold exactly at emit time, so
// the summary always covers precisely the emitted prefix, including
// after a drain.
func (c *coordinator) report(m *Msg, jsonb, csvb []byte, worker int) error {
	if !c.table.complete(m.Lo, m.Hi) {
		return nil // stale duplicate of a re-issued lease
	}
	if m.Shard == nil {
		return fmt.Errorf("dist: worker %d report for [%d,%d) missing shard snapshot", worker, m.Lo, m.Hi)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.stash[m.Lo] = &pendingSpan{hi: m.Hi, jsonb: jsonb, csvb: csvb, shard: m.Shard, worker: worker}
	advanced := false
	for {
		lo := c.em.Emitted()
		p := c.stash[lo]
		if p == nil {
			break
		}
		if err := c.agg.Shard(0).MergeSnapshot(*p.shard); err != nil {
			return fmt.Errorf("dist: worker %d span [%d,%d): %w", p.worker, lo, p.hi, err)
		}
		if err := c.em.EmitSpan(lo, p.hi, p.jsonb, p.csvb, nil); err != nil {
			return err
		}
		delete(c.stash, lo)
		advanced = true
	}
	if advanced {
		c.table.advance(c.em.Emitted())
	}
	return nil
}
