package dist

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/faultnet"
	"reorder/internal/obs"
)

// The chaos soak needs real worker *processes* (so a kill+respawn is a
// genuine SIGKILL, not a simulated one). The test binary doubles as the
// worker: TestMain re-execs os.Args[0] with these env vars set, and the
// child runs RunWorker instead of the test suite.
const (
	envWorker = "CAMPAIGN_DIST_TEST_WORKER"
	envAddr   = "CAMPAIGN_DIST_TEST_ADDR"
)

func TestMain(m *testing.M) {
	if os.Getenv(envWorker) == "1" {
		os.Exit(chaosWorkerMain())
	}
	os.Exit(m.Run())
}

// soakSpec is the chaos-soak enumeration: 72 targets, big enough that
// seeded faults land mid-campaign and a killed worker's respawn still
// finds work to do.
func soakSpec() campaign.EnumSpec {
	return campaign.EnumSpec{
		Profiles:    []string{"freebsd4", "linux24", campaign.LBPool},
		Impairments: []string{"clean", "swap-heavy"},
		Tests:       []string{"single", "dual", "syn", "transfer"},
		Seeds:       3,
		BaseSeed:    42,
	}
}

// chaosWorkerMain is the helper-process entry: a self-healing worker wired
// for chaos (fast reconnect, effectively unbounded retry budget) probing
// the soak enumeration.
func chaosWorkerMain() int {
	targets, err := campaign.Enumerate(soakSpec())
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak worker: enumerate:", err)
		return 1
	}
	err = RunWorker(WorkerConfig{
		Connect:          os.Getenv(envAddr),
		Targets:          targets,
		Samples:          4,
		Obs:              obs.NewCampaign(1),
		Heartbeat:        100 * time.Millisecond,
		ReconnectBackoff: 20 * time.Millisecond,
		MaxReconnects:    100,
		WriteTimeout:     5 * time.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak worker:", err)
		return 1
	}
	return 0
}

// soakFaults is the soak's fault profile. The seed is pinned: faultnet
// plans are a pure function of (Config, connection index), so this exact
// fault schedule reproduces on every run — which is what makes a chaos
// failure debuggable. Chosen so that with the soak's traffic shape the
// fired events include connection resets and partial-write stalls.
func soakFaults() faultnet.Config {
	return faultnet.Config{
		Seed:           11,
		PReset:         0.6,
		PPartialStall:  0.5,
		PDupLine:       0.25,
		PTruncLine:     0.2,
		LatencyMax:     500 * time.Microsecond,
		Stall:          10 * time.Millisecond,
		AcceptFailures: 2,
		MaxFaults:      10,
		ByteWindow:     1500,
	}
}

// TestChaosSoak is the capstone: coordinator + 3 worker processes run the
// campaign through seeded control-plane faults (resets, partial-write
// stalls, duplicated and truncated lines, transient accept failures) plus
// one deliberate mid-campaign SIGKILL with supervised respawn — and the
// final JSONL, CSV, checkpoint and summary bytes must be identical to a
// clean single-process run, with the self-healing counters proving the
// faults actually happened.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak spawns worker processes")
	}
	targets, err := campaign.Enumerate(soakSpec())
	if err != nil {
		t.Fatal(err)
	}

	refDir := t.TempDir()
	refSum := runSingle(t, targets, refDir)
	refJSONL, refCSV := readOut(t, refDir)
	var refText bytes.Buffer
	refSum.WriteText(&refText)

	// Same config, same seed → same plans: the reproducibility contract
	// the soak's debuggability rests on.
	if a, b := faultnet.Wrap(nil, soakFaults()), faultnet.Wrap(nil, soakFaults()); a.PlanFor(5) != b.PlanFor(5) {
		t.Fatal("fault plans are not reproducible from the seed")
	}

	dir := t.TempDir()
	out, csv, ckpt := outPaths(dir)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := faultnet.Wrap(raw, soakFaults())
	t.Setenv(envWorker, "1")
	t.Setenv(envAddr, raw.Addr().String())

	coordObs := obs.NewCampaign(1)
	sup, err := Supervise(3, os.Args[0], nil, 3, os.Stderr, coordObs)
	if err != nil {
		t.Fatal(err)
	}

	// One deliberate process kill once the campaign is demonstrably mid
	// flight; the supervisor must respawn the slot and the respawned
	// worker must pick up re-issued leases.
	var once sync.Once
	sum, serveErr := Serve(Config{
		Campaign: campaign.Config{
			Targets:        targets,
			Samples:        4,
			RatePerSec:     300, // forces span-size 1 and stretches the run past the fault schedule
			OutputPath:     out,
			CSVPath:        csv,
			CheckpointPath: ckpt,
			Obs:            coordObs,
			Progress: func(done, total int) {
				if done >= 12 {
					once.Do(func() {
						if p := sup.Processes()[0]; p != nil {
							p.Kill()
						}
					})
				}
			},
		},
		Listener:      fln,
		ExpectWorkers: 3,
		LeaseTimeout:  5 * time.Second,
		Log:           os.Stderr,
	})
	werr := sup.Wait(5 * time.Second)
	if serveErr != nil {
		t.Fatal(serveErr)
	}
	if werr != nil {
		t.Logf("supervisor: %v (advisory — leases were re-issued)", werr)
	}
	if sum.Interrupted {
		t.Fatal("soak run reported interrupted")
	}

	// Byte identity against the clean single-process run.
	jsonl, csvb := readOut(t, dir)
	if !bytes.Equal(jsonl, refJSONL) {
		t.Error("JSONL differs from single-process run after chaos")
	}
	if !bytes.Equal(csvb, refCSV) {
		t.Error("CSV differs from single-process run after chaos")
	}
	var text bytes.Buffer
	sum.WriteText(&text)
	if !bytes.Equal(text.Bytes(), refText.Bytes()) {
		t.Errorf("summary differs after chaos\n--- chaos ---\n%s--- clean ---\n%s", text.String(), refText.String())
	}
	refCkpt, _ := os.ReadFile(refDir + "/ckpt.json")
	gotCkpt, _ := os.ReadFile(ckpt)
	if !bytes.Equal(refCkpt, gotCkpt) {
		t.Error("checkpoint differs from single-process run after chaos")
	}

	// The faults must actually have happened: the injector's event log
	// shows what fired, the registry shows the plane healed it.
	kinds := map[faultnet.Kind]int{}
	for _, ev := range fln.Events() {
		kinds[ev.Kind]++
	}
	t.Logf("fired faults: %v", kinds)
	if kinds[faultnet.KindReset] == 0 {
		t.Error("no connection reset fired (retune the fault seed)")
	}
	if kinds[faultnet.KindPartialStall] == 0 {
		t.Error("no partial-write stall fired (retune the fault seed)")
	}
	if kinds[faultnet.KindAcceptError] != 2 {
		t.Errorf("accept-error events = %d, want 2", kinds[faultnet.KindAcceptError])
	}

	snap := coordObs.Snapshot()
	t.Logf("dist counters: %+v", snap.Dist)
	if snap.Dist.Respawns < 1 {
		t.Errorf("respawns = %d, want >= 1 (the killed worker)", snap.Dist.Respawns)
	}
	if snap.Dist.Reconnects < 1 {
		t.Errorf("reconnects = %d, want >= 1", snap.Dist.Reconnects)
	}
	if snap.Dist.LeaseReissues < 1 {
		t.Errorf("lease re-issues = %d, want >= 1", snap.Dist.LeaseReissues)
	}
	if snap.Dist.AcceptRetries != 2 {
		t.Errorf("accept retries = %d, want 2", snap.Dist.AcceptRetries)
	}
	if snap.Done != int64(len(targets)) {
		t.Errorf("progress done = %d, want %d", snap.Done, len(targets))
	}
}

// TestReconnectSurvivesConnReset is the focused acceptance check: every
// early coordinator-side connection carries a scheduled reset, the
// workers' reconnect loops must re-handshake and finish the campaign with
// zero lost or duplicated targets, and the registry must show both the
// reconnects and the lease re-issues that healed them.
func TestReconnectSurvivesConnReset(t *testing.T) {
	// The campaign must outlive the reconnect: a rate limit stretches the
	// run to a few hundred milliseconds (without changing the bytes), so a
	// worker that loses its connection early rejoins while there is still
	// work, finishes it, and ships its counters at the drain.
	targets, err := campaign.Enumerate(soakSpec())
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	runSingle(t, targets, refDir)
	refJSONL, refCSV := readOut(t, refDir)

	dir := t.TempDir()
	out, csv, ckpt := outPaths(dir)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Every connection draws a reset inside its first 1200 bytes; the
	// budget lets two fire before the plane is left alone, so the run
	// always terminates.
	fln := faultnet.Wrap(raw, faultnet.Config{
		Seed:       3,
		PReset:     1,
		ByteWindow: 1200,
		MaxFaults:  2,
	})
	addr := raw.Addr().String()

	coordObs := obs.NewCampaign(1)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(WorkerConfig{
				Connect:          addr,
				Targets:          targets,
				Samples:          4,
				Obs:              obs.NewCampaign(1),
				Heartbeat:        100 * time.Millisecond,
				ReconnectBackoff: 10 * time.Millisecond,
				MaxReconnects:    20,
			}); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	sum, err := Serve(Config{
		Campaign: campaign.Config{
			Targets:        targets,
			Samples:        4,
			RatePerSec:     400,
			OutputPath:     out,
			CSVPath:        csv,
			CheckpointPath: ckpt,
			Obs:            coordObs,
		},
		Listener:      fln,
		ExpectWorkers: 2,
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Interrupted {
		t.Fatal("run reported interrupted after reconnect recovery")
	}

	jsonl, csvb := readOut(t, dir)
	if !bytes.Equal(jsonl, refJSONL) {
		t.Error("JSONL differs after reconnect recovery")
	}
	if !bytes.Equal(csvb, refCSV) {
		t.Error("CSV differs after reconnect recovery")
	}

	resets := 0
	for _, ev := range fln.Events() {
		if ev.Kind == faultnet.KindReset {
			resets++
		}
	}
	if resets == 0 {
		t.Fatal("no reset fired — the test exercised nothing")
	}
	snap := coordObs.Snapshot()
	if snap.Dist.Reconnects < 1 {
		t.Errorf("reconnects = %d, want >= 1", snap.Dist.Reconnects)
	}
	if snap.Dist.LeaseReissues < 1 {
		t.Errorf("lease re-issues = %d, want >= 1", snap.Dist.LeaseReissues)
	}
	if snap.Done != int64(len(targets)) {
		t.Errorf("done = %d, want %d (zero lost targets)", snap.Done, len(targets))
	}
	if snap.Workers.Targets < uint64(len(targets)) {
		t.Errorf("worker targets = %d, want >= %d", snap.Workers.Targets, len(targets))
	}
}

// TestWorkerSkipsDuplicatedSpanLine pins the protocol-desync fix the
// fault injector flushed out: a duplicated span control line must not
// consume a lease-reply slot. A worker that treats the duplicate as a
// grant runs one message ahead of the coordinator forever after — and the
// coordinator handler, which parks deadline-free in grant() assuming a
// lease-requesting worker has nothing in flight, never reads the reports
// the desynced worker sends, wedging the run.
func TestWorkerSkipsDuplicatedSpanLine(t *testing.T) {
	targets := testTargets(t)
	cc, wc := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(WorkerConfig{
			Conn:      wc,
			Targets:   targets,
			Samples:   4,
			Heartbeat: time.Minute, // out of the way; the script is synchronous
		})
	}()

	w := newWire(cc)
	recv := func(want string) *Msg {
		t.Helper()
		for {
			m, err := w.recv()
			if err != nil {
				t.Fatalf("awaiting %q: %v", want, err)
			}
			if m.Type == MsgHeartbeat {
				continue
			}
			if m.Type != want {
				t.Fatalf("got %q, want %q", m.Type, want)
			}
			return m
		}
	}
	report := func() *Msg {
		t.Helper()
		m := recv(MsgReport)
		if _, err := w.readPayload(m.JSONLen); err != nil {
			t.Fatal(err)
		}
		if _, err := w.readPayload(m.CSVLen); err != nil {
			t.Fatal(err)
		}
		return m
	}

	recv(MsgHello)
	if err := w.send(&Msg{Type: MsgWelcome, Worker: 1, Samples: 4, WantJSONL: true}); err != nil {
		t.Fatal(err)
	}
	recv(MsgLease)
	if err := w.send(&Msg{Type: MsgSpan, Lo: 0, Hi: 1}); err != nil {
		t.Fatal(err)
	}
	if m := report(); m.Lo != 0 || m.Hi != 1 {
		t.Fatalf("first report = [%d,%d), want [0,1)", m.Lo, m.Hi)
	}
	recv(MsgLease)
	// The reply to this lease request arrives behind a duplicated copy of
	// the previous span line.
	if err := w.send(&Msg{Type: MsgSpan, Lo: 0, Hi: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.send(&Msg{Type: MsgSpan, Lo: 1, Hi: 2}); err != nil {
		t.Fatal(err)
	}
	// A desynced worker re-probes and re-reports [0,1) here; the fixed one
	// skips the duplicate and answers the real grant.
	if m := report(); m.Lo != 1 || m.Hi != 2 {
		t.Fatalf("post-duplicate report = [%d,%d), want [1,2)", m.Lo, m.Hi)
	}
	recv(MsgLease)
	if err := w.send(&Msg{Type: MsgDrain}); err != nil {
		t.Fatal(err)
	}
	recv(MsgBye)
	cc.Close()
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
}

// TestHeartbeatAtLeaseExpiry runs the pathological liveness timing: the
// worker's heartbeat interval equals the coordinator's lease timeout, so
// every heartbeat races the read-deadline expiry and some lose. Whichever
// way each race lands — heartbeat in time, or deadline → drop → revoke →
// reconnect → re-issue — the campaign must complete with byte-identical
// output.
func TestHeartbeatAtLeaseExpiry(t *testing.T) {
	targets := testTargets(t)
	refDir := t.TempDir()
	runSingle(t, targets, refDir)
	refJSONL, refCSV := readOut(t, refDir)

	dir := t.TempDir()
	out, csv, ckpt := outPaths(dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const leaseTimeout = 80 * time.Millisecond

	coordObs := obs.NewCampaign(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunWorker(WorkerConfig{
			Connect:          ln.Addr().String(),
			Targets:          targets,
			Samples:          4,
			Obs:              obs.NewCampaign(1),
			Heartbeat:        leaseTimeout, // exactly at expiry, by design
			ReconnectBackoff: 10 * time.Millisecond,
			MaxReconnects:    50,
		}); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	sum, err := Serve(Config{
		Campaign: campaign.Config{
			Targets:        targets,
			Samples:        4,
			RatePerSec:     40, // ~25ms per probe: spans outlive several heartbeat races
			OutputPath:     out,
			CSVPath:        csv,
			CheckpointPath: ckpt,
			Obs:            coordObs,
		},
		Listener:     ln,
		LeaseTimeout: leaseTimeout,
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Interrupted {
		t.Fatal("run reported interrupted")
	}
	jsonl, csvb := readOut(t, dir)
	if !bytes.Equal(jsonl, refJSONL) {
		t.Error("JSONL differs under pathological heartbeat timing")
	}
	if !bytes.Equal(csvb, refCSV) {
		t.Error("CSV differs under pathological heartbeat timing")
	}
	// Drops are timing-dependent and allowed either way; what matters is
	// that every drop that did happen was healed (counted, not lost).
	snap := coordObs.Snapshot()
	if snap.Done != int64(len(targets)) {
		t.Errorf("done = %d, want %d", snap.Done, len(targets))
	}
	t.Logf("heartbeat-vs-expiry races lost (healed): %d reconnects, %d re-issues",
		snap.Dist.Reconnects, snap.Dist.LeaseReissues)
}
