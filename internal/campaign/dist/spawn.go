package dist

import (
	"fmt"
	"io"
	"os/exec"
)

// Spawn forks n local worker processes running binary with args (the
// caller builds the argv — typically its own enumeration flags plus
// -worker -connect). Worker stderr is forwarded to stderr; stdout is
// discarded (workers print nothing on success). On a partial failure the
// already-started workers are killed.
func Spawn(n int, binary string, args []string, stderr io.Writer) ([]*exec.Cmd, error) {
	cmds := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(binary, args...)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("dist: spawn worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

// WaitWorkers reaps spawned workers, returning the first failure. Workers
// exit nonzero on their own errors, so a silent crash surfaces here even
// though the coordinator already re-issued its leases.
func WaitWorkers(cmds []*exec.Cmd) error {
	var first error
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil && first == nil {
			first = fmt.Errorf("dist: worker %d: %w", i, err)
		}
	}
	return first
}
