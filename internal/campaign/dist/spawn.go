package dist

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"reorder/internal/obs"
)

// Spawn forks n local worker processes running binary with args (the
// caller builds the argv — typically its own enumeration flags plus
// -worker -connect). Worker stderr is forwarded to stderr; stdout is
// discarded (workers print nothing on success). On a partial failure the
// already-started workers are killed.
func Spawn(n int, binary string, args []string, stderr io.Writer) ([]*exec.Cmd, error) {
	cmds := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(binary, args...)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("dist: spawn worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

// WaitWorkers reaps spawned workers, returning the first failure. Workers
// exit nonzero on their own errors, so a silent crash surfaces here even
// though the coordinator already re-issued its leases.
func WaitWorkers(cmds []*exec.Cmd) error {
	var first error
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil && first == nil {
			first = fmt.Errorf("dist: worker %d: %w", i, err)
		}
	}
	return first
}

// Supervisor keeps a fixed-size fleet of spawned worker processes alive:
// a worker that exits nonzero mid-run is respawned (same argv) while the
// shared restart budget lasts. Combined with the coordinator's lease
// re-issue and the worker's own reconnect loop, this makes -spawn
// self-healing: a crashed process neither loses targets nor duplicates
// them, it only costs the wall time of re-probing its revoked spans.
type Supervisor struct {
	binary string
	args   []string
	stderr io.Writer
	reg    *obs.Campaign

	mu       sync.Mutex
	procs    []*exec.Cmd // current process per slot
	budget   int
	stopping bool
	firstErr error

	exhausted chan struct{}
	exOnce    sync.Once
	wg        sync.WaitGroup
}

// Supervise spawns n workers and restarts crashed ones until budget total
// respawns have been spent. A clean (exit 0) worker is never respawned —
// it drained. reg, when set, counts respawns in the dist telemetry.
func Supervise(n int, binary string, args []string, budget int, stderr io.Writer, reg *obs.Campaign) (*Supervisor, error) {
	cmds, err := Spawn(n, binary, args, stderr)
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		binary: binary, args: args, stderr: stderr, reg: reg,
		procs: cmds, budget: budget,
		exhausted: make(chan struct{}),
	}
	for i := range cmds {
		s.wg.Add(1)
		go s.monitor(i, cmds[i])
	}
	return s, nil
}

// monitor owns slot i: it reaps the slot's process and respawns on crash
// while the budget lasts and the run isn't stopping.
func (s *Supervisor) monitor(i int, cmd *exec.Cmd) {
	defer s.wg.Done()
	for {
		err := cmd.Wait()
		s.mu.Lock()
		if err == nil || s.stopping {
			// Clean drain, or a death we caused (or no longer care about)
			// during shutdown.
			s.mu.Unlock()
			return
		}
		if s.budget <= 0 {
			if s.firstErr == nil {
				s.firstErr = fmt.Errorf("dist: worker slot %d: %w (respawn budget exhausted)", i, err)
			}
			s.mu.Unlock()
			s.exOnce.Do(func() { close(s.exhausted) })
			return
		}
		s.budget--
		next := exec.Command(s.binary, s.args...)
		next.Stderr = s.stderr
		serr := next.Start()
		if serr != nil {
			if s.firstErr == nil {
				s.firstErr = fmt.Errorf("dist: respawn worker slot %d: %w", i, serr)
			}
			s.mu.Unlock()
			s.exOnce.Do(func() { close(s.exhausted) })
			return
		}
		s.procs[i] = next
		s.mu.Unlock()
		if d := s.reg.DistObs(); d != nil {
			d.Respawns.Inc()
		}
		fmt.Fprintf(s.stderr, "dist: worker slot %d died (%v) — respawned\n", i, err)
		cmd = next
	}
}

// Exhausted is closed when the respawn budget is spent on a crash (or a
// respawn itself failed): the caller should drain the campaign rather
// than wait for workers that will never come back.
func (s *Supervisor) Exhausted() <-chan struct{} { return s.exhausted }

// Drain marks the run as stopping: subsequent worker exits are expected
// and never respawned or recorded as failures.
func (s *Supervisor) Drain() {
	s.mu.Lock()
	s.stopping = true
	s.mu.Unlock()
}

// Kill forcibly terminates every current worker process.
func (s *Supervisor) Kill() {
	s.mu.Lock()
	procs := append([]*exec.Cmd(nil), s.procs...)
	s.mu.Unlock()
	for _, cmd := range procs {
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
}

// Wait reaps the fleet, giving stragglers grace to notice the campaign is
// over before killing them — a respawned worker can be sitting in
// reconnect backoff against a listener that already closed, and nothing
// else will unstick it. Returns the first unexpected failure.
func (s *Supervisor) Wait(grace time.Duration) error {
	s.Drain()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(grace):
		s.Kill()
		<-done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// Processes returns the current process handles, one per slot — a test
// hook for targeted kills.
func (s *Supervisor) Processes() []*os.Process {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := make([]*os.Process, len(s.procs))
	for i, cmd := range s.procs {
		if cmd != nil {
			ps[i] = cmd.Process
		}
	}
	return ps
}
