package campaign

import (
	"fmt"

	"reorder/internal/stats"
)

// ShardSnapshot is the serializable form of a Shard: integer counters plus
// exact sparse histogram snapshots. Because Shard.Add is a pure function of
// result fields and histogram merging is integer bin addition, folding a
// worker process's per-span snapshots into a coordinator-side shard yields
// exactly the aggregate a single process would have built — the property
// that makes distributed campaign summaries byte-identical to local ones.
type ShardSnapshot struct {
	Targets        int            `json:"targets,omitempty"`
	Errors         int            `json:"errors,omitempty"`
	Measured       int            `json:"measured,omitempty"`
	Excluded       int            `json:"excluded,omitempty"`
	WithReordering int            `json:"with_reordering,omitempty"`
	Retried        int            `json:"retried,omitempty"`
	DCTExcluded    map[string]int `json:"dct_excluded,omitempty"`

	PerTest map[string]TestShardSnapshot `json:"per_test,omitempty"`

	PathRates stats.HistogramCounts `json:"path_rates"`
	RTTs      stats.HistogramCounts `json:"rtts"`
	Extents   stats.HistogramCounts `json:"extents"`
	Exposure  stats.HistogramCounts `json:"exposure"`
}

// TestShardSnapshot is one technique's slice of a ShardSnapshot.
type TestShardSnapshot struct {
	Measured       int                   `json:"measured,omitempty"`
	Errors         int                   `json:"errors,omitempty"`
	Excluded       int                   `json:"excluded,omitempty"`
	WithReordering int                   `json:"with_reordering,omitempty"`
	FwdRates       stats.HistogramCounts `json:"fwd_rates"`
	RevRates       stats.HistogramCounts `json:"rev_rates"`
}

// NewShard returns an empty standalone shard, for callers outside the
// worker-indexed Aggregator layout (remote workers accumulate per-span
// deltas in one of these, snapshot it, and reset).
func NewShard() *Shard { return newShard() }

// Snapshot captures the shard's current contents.
func (s *Shard) Snapshot() ShardSnapshot {
	snap := ShardSnapshot{
		Targets:        s.targets,
		Errors:         s.errors,
		Measured:       s.measured,
		Excluded:       s.excluded,
		WithReordering: s.withReordering,
		Retried:        s.retried,
		PathRates:      s.pathRates.CountsSnapshot(),
		RTTs:           s.rtts.CountsSnapshot(),
		Extents:        s.extents.CountsSnapshot(),
		Exposure:       s.exposure.CountsSnapshot(),
	}
	if len(s.dctExcluded) > 0 {
		snap.DCTExcluded = make(map[string]int, len(s.dctExcluded))
		for k, v := range s.dctExcluded {
			snap.DCTExcluded[k] = v
		}
	}
	if len(s.perTest) > 0 {
		snap.PerTest = make(map[string]TestShardSnapshot, len(s.perTest))
		for name, ts := range s.perTest {
			snap.PerTest[name] = TestShardSnapshot{
				Measured:       ts.measured,
				Errors:         ts.errors,
				Excluded:       ts.excluded,
				WithReordering: ts.withReordering,
				FwdRates:       ts.fwdRates.CountsSnapshot(),
				RevRates:       ts.revRates.CountsSnapshot(),
			}
		}
	}
	return snap
}

// MergeSnapshot folds a snapshot into the shard. Snapshots arrive over the
// wire, so malformed ones return an error instead of panicking; a failed
// merge may leave the shard partially updated, which is fine because the
// callers treat any merge error as fatal to the run.
func (s *Shard) MergeSnapshot(snap ShardSnapshot) error {
	if snap.Targets < 0 || snap.Errors < 0 || snap.Measured < 0 ||
		snap.Excluded < 0 || snap.WithReordering < 0 || snap.Retried < 0 {
		return fmt.Errorf("campaign: shard snapshot with negative counters")
	}
	s.targets += snap.Targets
	s.errors += snap.Errors
	s.measured += snap.Measured
	s.excluded += snap.Excluded
	s.withReordering += snap.WithReordering
	s.retried += snap.Retried
	for k, v := range snap.DCTExcluded {
		if v < 0 {
			return fmt.Errorf("campaign: shard snapshot with negative dct exclusion %q", k)
		}
		s.dctExcluded[k] += v
	}
	if err := s.pathRates.MergeCounts(snap.PathRates); err != nil {
		return fmt.Errorf("campaign: path rates: %w", err)
	}
	if err := s.rtts.MergeCounts(snap.RTTs); err != nil {
		return fmt.Errorf("campaign: rtts: %w", err)
	}
	if err := s.extents.MergeCounts(snap.Extents); err != nil {
		return fmt.Errorf("campaign: extents: %w", err)
	}
	if err := s.exposure.MergeCounts(snap.Exposure); err != nil {
		return fmt.Errorf("campaign: exposure: %w", err)
	}
	for name, tsnap := range snap.PerTest {
		if tsnap.Measured < 0 || tsnap.Errors < 0 || tsnap.Excluded < 0 || tsnap.WithReordering < 0 {
			return fmt.Errorf("campaign: shard snapshot test %q with negative counters", name)
		}
		ts := s.perTest[name]
		if ts == nil {
			ts = newTestShard()
			s.perTest[name] = ts
		}
		ts.measured += tsnap.Measured
		ts.errors += tsnap.Errors
		ts.excluded += tsnap.Excluded
		ts.withReordering += tsnap.WithReordering
		if err := ts.fwdRates.MergeCounts(tsnap.FwdRates); err != nil {
			return fmt.Errorf("campaign: test %q fwd rates: %w", name, err)
		}
		if err := ts.revRates.MergeCounts(tsnap.RevRates); err != nil {
			return fmt.Errorf("campaign: test %q rev rates: %w", name, err)
		}
	}
	return nil
}

// Reset empties the shard in place, keeping its allocations, so a worker
// can reuse one shard as a per-span delta accumulator.
func (s *Shard) Reset() {
	s.targets, s.errors, s.measured, s.excluded = 0, 0, 0, 0
	s.withReordering, s.retried = 0, 0
	for k := range s.dctExcluded {
		delete(s.dctExcluded, k)
	}
	for _, ts := range s.perTest {
		ts.measured, ts.errors, ts.excluded, ts.withReordering = 0, 0, 0, 0
		ts.fwdRates.Reset()
		ts.revRates.Reset()
	}
	s.pathRates.Reset()
	s.rtts.Reset()
	s.extents.Reset()
	s.exposure.Reset()
}
