package campaign

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// AppendJSON appends the record's JSON encoding to dst and returns the
// extended slice. The output is byte-identical to encoding/json.Marshal of
// the same record (field order, omitempty, string escaping and float
// formatting included) — pinned by TestAppendJSONMatchesMarshal — while
// allocating nothing beyond dst growth. The JSONL sink emits millions of
// records per campaign through this path instead of reflective marshaling.
func (r *TargetResult) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"index":`...)
	dst = strconv.AppendInt(dst, int64(r.Index), 10)
	dst = append(dst, `,"name":`...)
	dst = appendJSONString(dst, r.Name)
	dst = append(dst, `,"profile":`...)
	dst = appendJSONString(dst, r.Profile)
	dst = append(dst, `,"impairment":`...)
	dst = appendJSONString(dst, r.Impairment)
	dst = append(dst, `,"test":`...)
	dst = appendJSONString(dst, r.Test)
	dst = append(dst, `,"seed":`...)
	dst = strconv.AppendUint(dst, r.Seed, 10)
	dst = append(dst, `,"attempts":`...)
	dst = strconv.AppendInt(dst, int64(r.Attempts), 10)
	if r.Err != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, r.Err)
	}
	if r.DCTExcluded != "" {
		dst = append(dst, `,"dct_excluded":`...)
		dst = appendJSONString(dst, r.DCTExcluded)
	}
	dst = append(dst, `,"fwd_valid":`...)
	dst = strconv.AppendInt(dst, int64(r.FwdValid), 10)
	dst = append(dst, `,"fwd_reordered":`...)
	dst = strconv.AppendInt(dst, int64(r.FwdReordered), 10)
	dst = append(dst, `,"fwd_rate":`...)
	dst = appendJSONFloat(dst, r.FwdRate)
	dst = append(dst, `,"rev_valid":`...)
	dst = strconv.AppendInt(dst, int64(r.RevValid), 10)
	dst = append(dst, `,"rev_reordered":`...)
	dst = strconv.AppendInt(dst, int64(r.RevReordered), 10)
	dst = append(dst, `,"rev_rate":`...)
	dst = appendJSONFloat(dst, r.RevRate)
	dst = append(dst, `,"any_reordering":`...)
	dst = strconv.AppendBool(dst, r.AnyReordering)
	dst = append(dst, `,"rtt_us":`...)
	dst = strconv.AppendInt(dst, r.RTTMicros, 10)
	if r.SeqRatio != 0 {
		dst = append(dst, `,"seq_ratio":`...)
		dst = appendJSONFloat(dst, r.SeqRatio)
	}
	if r.SeqReceived != 0 {
		dst = append(dst, `,"seq_received":`...)
		dst = strconv.AppendInt(dst, int64(r.SeqReceived), 10)
	}
	if r.SeqMaxExtent != 0 {
		dst = append(dst, `,"seq_max_extent":`...)
		dst = strconv.AppendInt(dst, int64(r.SeqMaxExtent), 10)
	}
	if r.SeqNReordering != 0 {
		dst = append(dst, `,"seq_n_reordering":`...)
		dst = strconv.AppendInt(dst, int64(r.SeqNReordering), 10)
	}
	if r.SeqDupthreshExposure != 0 {
		dst = append(dst, `,"seq_dupthresh_exposure":`...)
		dst = appendJSONFloat(dst, r.SeqDupthreshExposure)
	}
	if r.Topology != "" {
		dst = append(dst, `,"topology":`...)
		dst = appendJSONString(dst, r.Topology)
	}
	if r.Scenario != "" {
		dst = append(dst, `,"scenario":`...)
		dst = appendJSONString(dst, r.Scenario)
	}
	return append(dst, '}')
}

// appendJSONFloat replicates encoding/json's float64 encoding: shortest
// representation, 'f' form except for magnitudes below 1e-6 or at least
// 1e21, which use 'e' form with a trimmed two-digit negative exponent.
func appendJSONFloat(dst []byte, f float64) []byte {
	fmtByte := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		fmtByte = 'e'
	}
	dst = strconv.AppendFloat(dst, f, fmtByte, -1, 64)
	if fmtByte == 'e' {
		// encoding/json trims "e-09" style exponents to "e-9".
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const hexDigits = "0123456789abcdef"

// appendJSONString replicates encoding/json's string encoding with its
// default HTML escaping: quotes, backslashes and control characters are
// escaped, as are '<', '>', '&', U+2028 and U+2029; invalid UTF-8 becomes
// the escape sequence \ufffd.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// jsonSafe reports whether b may appear literally in a JSON string under
// encoding/json's default (HTML-escaping) rules.
func jsonSafe(b byte) bool {
	return b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}
