// Package campaign orchestrates measurement campaigns: running the
// internal/core techniques against thousands of targets concurrently, the
// production-scale generalization of the paper's §IV-B survey (50 hosts,
// 20 days, round-robin). It layers above the probing engine and below the
// CLIs, mirroring the orchestration/engine split of tools like ooni/netem.
//
// The moving parts:
//
//   - Scheduler: a bounded worker pool with per-job retry/backoff and a
//     token-bucket launch rate limiter. Jobs are dispatched in index order
//     and their completions are re-sequenced so downstream consumers see
//     results in index order regardless of which worker finished first —
//     a reordering buffer for the reordering-measurement campaign.
//   - Target: one unit of work — a host profile, a named path impairment,
//     a measurement technique and a seed. Targets are enumerated as a
//     cross product (profiles × impairments × tests × seeds) or loaded
//     from a targets file.
//   - Aggregator: per-worker shards merged lock-free (each worker owns its
//     shard exclusively) and folded into a Summary with percentile rate
//     statistics from internal/stats at the end of the run.
//   - Sink: streaming consumers of per-target results — JSONL and CSV —
//     fed strictly in target-index order, which makes campaign output
//     byte-reproducible for a fixed seed and safe to resume.
//   - Checkpoint: a small JSON file recording how many results have been
//     durably emitted; an interrupted campaign resumes from it and
//     produces output identical to an uninterrupted run.
//
// Every target probe is hermetic: it builds its own simulated scenario
// from the target's seed, so results depend only on the target spec, never
// on scheduling order or worker count.
package campaign

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"reorder/internal/obs"
)

// Config parameterizes a campaign run.
type Config struct {
	// Targets is the work list. See Enumerate and LoadTargets.
	Targets []Target

	// Samples is the per-measurement sample count (default 8).
	Samples int

	// Workers is the worker-pool size (default 16).
	Workers int
	// Retries is the number of additional attempts for a failed target.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt.
	Backoff time.Duration
	// RatePerSec caps probe launches per wall-clock second via a token
	// bucket (0 = unlimited).
	RatePerSec float64
	// Burst is the token-bucket capacity (default Workers).
	Burst int
	// Window bounds how far dispatch may run ahead of the in-order emit
	// frontier: it caps the re-sequencing buffer when one slow target
	// holds the frontier, trading sink latency for memory. Zero selects
	// the scheduler's adaptive window, which tracks the observed
	// completion spread up to the old static default (max(4×Workers, 64))
	// — see SchedulerConfig.Window.
	Window int
	// Batch is the dispatch span size: workers claim contiguous runs of
	// this many targets at a time and results flush to the sinks in
	// whole pre-encoded batches, so orchestration cost is paid per batch
	// instead of per target (0 = adaptive; see SchedulerConfig.Batch).
	// Output bytes are identical at any batch size.
	Batch int

	// OutputPath, when set, streams per-target results as JSONL. It is
	// also the replay source when resuming from a checkpoint.
	OutputPath string
	// CSVPath, when set, streams per-target results as CSV.
	CSVPath string
	// Sinks are additional streaming consumers (e.g. for tests).
	Sinks []Sink

	// CheckpointPath, when set, persists progress every CheckpointEvery
	// emitted results (default 64) and at completion.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in emitted results.
	CheckpointEvery int
	// Resume continues an interrupted campaign from CheckpointPath,
	// replaying the already-emitted prefix of OutputPath into the
	// aggregator and probing only the remainder.
	Resume bool

	// StopAfter, when nonzero, stops cleanly after emitting that many
	// results (checkpointing if configured), leaving the rest for a
	// resumed run. Used to split huge campaigns across windows.
	StopAfter int

	// Progress, when set, is called after each in-order emit.
	Progress func(done, total int)

	// Obs, when set, is the telemetry registry the run reports into:
	// scheduler counters, per-worker probe/sim/netem shards, sink and
	// checkpoint counters, and the live progress frontier. Create it with
	// obs.NewCampaign(workers) using the same worker count; a nil registry
	// disables all instrumentation at the cost of one branch per site.
	// Output bytes are identical with and without a registry.
	Obs *obs.Campaign
	// Trace, when set, receives structured JSONL run-trace events (span
	// lifecycle, retries, checkpoints). The caller owns closing it.
	Trace *obs.Trace
	// Interrupt, when non-nil and closed, quiesces the run gracefully:
	// dispatch stops, in-flight spans drain and emit in order, a final
	// checkpoint is saved, and Run returns the drained prefix's summary
	// with Summary.Interrupted set. A resumed run completes the remainder
	// with byte-identical total output.
	Interrupt <-chan struct{}
}

func (c Config) defaults() Config {
	if c.Samples == 0 {
		c.Samples = 8
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	return c
}

// schedulerConfig maps the campaign-level knobs onto the worker pool.
func (c Config) schedulerConfig() SchedulerConfig {
	return SchedulerConfig{
		Workers:    c.Workers,
		Retries:    c.Retries,
		Backoff:    c.Backoff,
		RatePerSec: c.RatePerSec,
		Burst:      c.Burst,
		Window:     c.Window,
		Batch:      c.Batch,
		Obs:        c.Obs.SchedObs(),
		Quiesce:    c.Interrupt,
	}
}

// Run executes the campaign and returns the merged summary. The summary
// and all sink output are deterministic functions of the target list and
// sample count; worker count, rate limits and interruptions (with resume)
// do not change a single byte.
func Run(cfg Config) (*Summary, error) {
	cfg = cfg.defaults()
	sched := NewScheduler(cfg.schedulerConfig())
	agg := NewAggregator(sched.Workers())

	// The Emitter owns everything downstream of the emit frontier —
	// resume/replay, sinks, checkpoints, progress — shared verbatim with
	// the distributed coordinator so both modes emit identical bytes.
	em, err := NewEmitter(cfg)
	if err != nil {
		return nil, err
	}
	// Replayed results re-enter the aggregator through shard 0; shard
	// ownership only matters for live workers.
	for _, r := range em.Replayed() {
		agg.Shard(0).Add(r)
	}
	start, end := em.Start(), em.End()

	// Each worker owns one ProbeArena: the scenario and prober are built
	// once and re-seeded per target, which removes scenario construction
	// from the per-target cost without changing a byte of output (arena
	// reuse is observably identical to fresh construction). Workers also
	// own a CSV row encoder when a CSV sink is configured.
	workers := make([]campaignWorker, sched.Workers())
	for i := range workers {
		workers[i].arena = NewProbeArena()
		if em.HasCSV() {
			workers[i].csvEnc = NewCSVRowEncoder()
			if hasTopology(cfg.Targets) {
				workers[i].csvEnc.IncludeTopology()
			}
			if hasScenario(cfg.Targets) {
				workers[i].csvEnc.IncludeScenario()
			}
		}
		if cfg.Obs != nil {
			workers[i].obs = cfg.Obs.Worker(i)
			workers[i].arena.SetObserver(workers[i].obs)
		}
	}
	em.StartRun(sched.Workers())

	// The batch pipeline: a worker claims a span, checks a spanBatch out
	// of the pool, renders each result into the batch's JSONL/CSV buffers
	// as it completes, and the in-order collector flushes whole batches
	// with one Write per sink. Memory is bounded by the dispatch window —
	// at most MaxWindow results are ever probed-but-unemitted — so a
	// million-target campaign holds the same few batches in flight as a
	// thousand-target one.
	pipe := &batchPipeline{batches: make(map[int]*spanBatch)}

	err = sched.RunSpans(start, end,
		func(worker, lo, hi int) {
			b := pipe.get(hi - lo)
			b.lo, b.hi = lo, hi
			workers[worker].batch = b
			workers[worker].spanSimNs = 0
			pipe.publish(b)
			cfg.Trace.SpanClaim(worker, lo, hi)
		},
		func(worker, index, attempt int) error {
			w := &workers[worker]
			b := w.batch
			res := &b.results[index-b.lo]
			var probeStart time.Time
			if w.obs != nil {
				w.obs.Attempts.Inc()
				probeStart = time.Now()
			}
			w.arena.ProbeTargetInto(res, cfg.Targets[index], cfg.Samples, attempt)
			if w.obs != nil {
				w.obs.ProbeNanos.Observe(time.Since(probeStart).Nanoseconds())
				w.spanSimNs += w.arena.LastSimNanos()
			}
			if res.Err != "" && attempt < cfg.Retries {
				cfg.Trace.Retry(worker, index, attempt,
					w.arena.LastSimNanos(), cfg.Backoff.Nanoseconds()<<uint(attempt), res.Err)
				return fmt.Errorf("campaign: target %d: %s", index, res.Err)
			}
			agg.Shard(worker).Add(res)
			if w.obs != nil {
				w.obs.Targets.Inc()
			}
			j0, c0 := len(b.json), len(b.csv)
			if em.HasJSONL() {
				b.json = res.AppendJSON(b.json)
				b.json = append(b.json, '\n')
			}
			if em.HasCSV() && b.err == nil {
				// The first render failure sticks: emitting a batch
				// with a silently missing row must be impossible.
				b.csv, b.err = w.csvEnc.AppendRow(b.csv, res)
			}
			if w.obs != nil {
				w.obs.RenderedJSONBytes.Add(uint64(len(b.json) - j0))
				w.obs.RenderedCSVBytes.Add(uint64(len(b.csv) - c0))
			}
			if index == b.hi-1 {
				cfg.Trace.SpanDone(worker, b.lo, b.hi, w.spanSimNs, int64(len(b.json)+len(b.csv)))
			}
			return nil
		},
		func(lo, hi int) error {
			b := pipe.take(lo)
			if b == nil || b.hi != hi {
				return fmt.Errorf("campaign: internal: no batch for span [%d,%d)", lo, hi)
			}
			if b.err != nil {
				return b.err
			}
			// Extra sinks get per-result copies inside EmitSpan: batch
			// slots are pooled and overwritten by later spans, and the
			// Sink contract has always allowed retaining the record.
			if err := em.EmitSpan(lo, hi, b.json, b.csv, b.results); err != nil {
				return err
			}
			pipe.put(b)
			return nil
		})
	// A quiesced run stopped claiming spans before the cursor reached end;
	// everything in flight drained and emitted in order. Finish persists
	// the exact drain point so a resume continues — and completes — the
	// campaign with byte-identical total output.
	interrupted, err := em.Finish(err)
	if err != nil {
		cfg.Trace.RunEnd(em.Emitted(), interrupted, err.Error())
		return nil, err
	}
	cfg.Trace.RunEnd(em.Emitted(), interrupted, "")
	sum := agg.Summary()
	sum.Interrupted = interrupted
	return sum, nil
}

// campaignWorker is one worker's private probing and rendering state.
type campaignWorker struct {
	arena  *ProbeArena
	csvEnc *CSVRowEncoder
	batch  *spanBatch

	// obs is this worker's telemetry shard (nil when disabled); spanSimNs
	// accumulates the current span's simulated time for its trace event.
	obs       *obs.Worker
	spanSimNs int64
}

// spanBatch carries one dispatch span's results and their pre-encoded sink
// bytes from the worker that produced them to the in-order collector.
type spanBatch struct {
	lo, hi  int
	results []TargetResult
	json    []byte // newline-terminated records, span order
	csv     []byte // encoded rows, span order
	err     error  // deferred render failure, surfaced at emit
}

// batchPipeline hands spanBatches from workers to the collector: a free
// list for reuse plus a small lo-keyed map of in-flight batches. Two short
// critical sections per span — not per target — is its entire footprint.
type batchPipeline struct {
	mu      sync.Mutex
	free    []*spanBatch
	batches map[int]*spanBatch
}

// get checks a batch for n results out of the pool, reset for filling.
func (p *batchPipeline) get(n int) *spanBatch {
	p.mu.Lock()
	var b *spanBatch
	if k := len(p.free); k > 0 {
		b = p.free[k-1]
		p.free = p.free[:k-1]
	} else {
		b = &spanBatch{}
	}
	p.mu.Unlock()
	if cap(b.results) < n {
		b.results = make([]TargetResult, n)
	}
	b.results = b.results[:n]
	b.json, b.csv, b.err = b.json[:0], b.csv[:0], nil
	return b
}

// publish makes the batch findable by the collector under its span start.
func (p *batchPipeline) publish(b *spanBatch) {
	p.mu.Lock()
	p.batches[b.lo] = b
	p.mu.Unlock()
}

// take claims the batch published for the span starting at lo.
func (p *batchPipeline) take(lo int) *spanBatch {
	p.mu.Lock()
	b := p.batches[lo]
	delete(p.batches, lo)
	p.mu.Unlock()
	return b
}

// put returns an emitted batch to the free list.
func (p *batchPipeline) put(b *spanBatch) {
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}

// sinkSet is the campaign's open sinks, with the built-in batch-capable
// pair held by type (the batched emit path writes pre-encoded bytes to
// them directly) and caller-provided sinks fed record by record.
type sinkSet struct {
	jsonl *JSONLSink
	csv   *CSVSink
	extra []Sink
	all   []Sink // every open sink, for flush/close
}

// openSinks assembles the configured sinks. When resuming, the JSONL file
// — already truncated to exactly the checkpointed records — is opened for
// append, while the CSV file is rebuilt from the replayed prefix: CSV rows
// are not safely line-countable, so rewriting is how its content is
// guaranteed to equal an uninterrupted run's.
func openSinks(cfg Config, replayed []*TargetResult) (sinkSet, error) {
	var sinks sinkSet
	fail := func(err error) (sinkSet, error) {
		closeAll(sinks.all)
		return sinkSet{}, err
	}
	resuming := len(replayed) > 0
	withTopo := hasTopology(cfg.Targets)
	withScn := hasScenario(cfg.Targets)
	if cfg.OutputPath != "" {
		flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if resuming {
			flags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(cfg.OutputPath, flags, 0o644)
		if err != nil {
			return fail(err)
		}
		sinks.jsonl = NewJSONLSink(f)
		sinks.all = append(sinks.all, sinks.jsonl)
	}
	if cfg.CSVPath != "" {
		f, err := os.OpenFile(cfg.CSVPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fail(err)
		}
		cs := NewCSVSink(f)
		if withTopo {
			// Enable the topology column before the replay emits below so
			// the rebuilt prefix carries the same header and row shape as
			// the live rows that follow.
			cs.IncludeTopology()
		}
		if withScn {
			cs.IncludeScenario()
		}
		sinks.csv = cs
		sinks.all = append(sinks.all, cs)
		for _, r := range replayed {
			if err := cs.Emit(r); err != nil {
				return fail(err)
			}
		}
	}
	sinks.extra = cfg.Sinks
	sinks.all = append(sinks.all, cfg.Sinks...)
	return sinks, nil
}

// closeAll closes every sink, returning the first error.
func closeAll(sinks []Sink) error {
	var first error
	for _, s := range sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// hasTopology reports whether any target names a routed-graph topology —
// the predicate deciding the optional CSV topology column. It depends only
// on the target list, so a resumed campaign makes the same choice as the
// original run.
func hasTopology(targets []Target) bool {
	for i := range targets {
		if targets[i].Topology != "" {
			return true
		}
	}
	return false
}

// hasScenario is the scenario-column analogue of hasTopology.
func hasScenario(targets []Target) bool {
	for i := range targets {
		if targets[i].Scenario != "" {
			return true
		}
	}
	return false
}

// WriteTargets emits the target list in the LoadTargets file format; the
// optional fifth (topology) and sixth (scenario) fields appear only on
// targets that need them, with "-" holding an empty topology's place when
// only a scenario is present.
func WriteTargets(w io.Writer, targets []Target) error {
	for _, t := range targets {
		var err error
		switch {
		case t.Scenario != "":
			topo := t.Topology
			if topo == "" {
				topo = "-"
			}
			_, err = fmt.Fprintf(w, "%s %s %s %d %s %s\n", t.Profile, t.Impairment, t.Test, t.Seed, topo, t.Scenario)
		case t.Topology != "":
			_, err = fmt.Fprintf(w, "%s %s %s %d %s\n", t.Profile, t.Impairment, t.Test, t.Seed, t.Topology)
		default:
			_, err = fmt.Fprintf(w, "%s %s %s %d\n", t.Profile, t.Impairment, t.Test, t.Seed)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
