// Package campaign orchestrates measurement campaigns: running the
// internal/core techniques against thousands of targets concurrently, the
// production-scale generalization of the paper's §IV-B survey (50 hosts,
// 20 days, round-robin). It layers above the probing engine and below the
// CLIs, mirroring the orchestration/engine split of tools like ooni/netem.
//
// The moving parts:
//
//   - Scheduler: a bounded worker pool with per-job retry/backoff and a
//     token-bucket launch rate limiter. Jobs are dispatched in index order
//     and their completions are re-sequenced so downstream consumers see
//     results in index order regardless of which worker finished first —
//     a reordering buffer for the reordering-measurement campaign.
//   - Target: one unit of work — a host profile, a named path impairment,
//     a measurement technique and a seed. Targets are enumerated as a
//     cross product (profiles × impairments × tests × seeds) or loaded
//     from a targets file.
//   - Aggregator: per-worker shards merged lock-free (each worker owns its
//     shard exclusively) and folded into a Summary with percentile rate
//     statistics from internal/stats at the end of the run.
//   - Sink: streaming consumers of per-target results — JSONL and CSV —
//     fed strictly in target-index order, which makes campaign output
//     byte-reproducible for a fixed seed and safe to resume.
//   - Checkpoint: a small JSON file recording how many results have been
//     durably emitted; an interrupted campaign resumes from it and
//     produces output identical to an uninterrupted run.
//
// Every target probe is hermetic: it builds its own simulated scenario
// from the target's seed, so results depend only on the target spec, never
// on scheduling order or worker count.
package campaign

import (
	"fmt"
	"io"
	"os"
	"time"
)

// Config parameterizes a campaign run.
type Config struct {
	// Targets is the work list. See Enumerate and LoadTargets.
	Targets []Target

	// Samples is the per-measurement sample count (default 8).
	Samples int

	// Workers is the worker-pool size (default 16).
	Workers int
	// Retries is the number of additional attempts for a failed target.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt.
	Backoff time.Duration
	// RatePerSec caps probe launches per wall-clock second via a token
	// bucket (0 = unlimited).
	RatePerSec float64
	// Burst is the token-bucket capacity (default Workers).
	Burst int
	// Window bounds how far dispatch may run ahead of the in-order emit
	// frontier (default max(4×Workers, 64)): it caps the re-sequencing
	// buffer when one slow target holds the frontier, trading sink
	// latency for memory.
	Window int

	// OutputPath, when set, streams per-target results as JSONL. It is
	// also the replay source when resuming from a checkpoint.
	OutputPath string
	// CSVPath, when set, streams per-target results as CSV.
	CSVPath string
	// Sinks are additional streaming consumers (e.g. for tests).
	Sinks []Sink

	// CheckpointPath, when set, persists progress every CheckpointEvery
	// emitted results (default 64) and at completion.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in emitted results.
	CheckpointEvery int
	// Resume continues an interrupted campaign from CheckpointPath,
	// replaying the already-emitted prefix of OutputPath into the
	// aggregator and probing only the remainder.
	Resume bool

	// StopAfter, when nonzero, stops cleanly after emitting that many
	// results (checkpointing if configured), leaving the rest for a
	// resumed run. Used to split huge campaigns across windows.
	StopAfter int

	// Progress, when set, is called after each in-order emit.
	Progress func(done, total int)
}

func (c Config) defaults() Config {
	if c.Samples == 0 {
		c.Samples = 8
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	return c
}

// schedulerConfig maps the campaign-level knobs onto the worker pool.
func (c Config) schedulerConfig() SchedulerConfig {
	return SchedulerConfig{
		Workers:    c.Workers,
		Retries:    c.Retries,
		Backoff:    c.Backoff,
		RatePerSec: c.RatePerSec,
		Burst:      c.Burst,
		Window:     c.Window,
	}
}

// Run executes the campaign and returns the merged summary. The summary
// and all sink output are deterministic functions of the target list and
// sample count; worker count, rate limits and interruptions (with resume)
// do not change a single byte.
func Run(cfg Config) (*Summary, error) {
	cfg = cfg.defaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("campaign: no targets")
	}
	sched := NewScheduler(cfg.schedulerConfig())
	agg := NewAggregator(sched.Workers())

	fp := Fingerprint(cfg.Targets, cfg.Samples)
	start := 0
	var replayed []*TargetResult
	if cfg.Resume && cfg.CheckpointPath == "" {
		// Without this guard a forgotten -checkpoint would silently fall
		// through to a fresh run and truncate the prior output.
		return nil, fmt.Errorf("campaign: Resume requires CheckpointPath")
	}
	if cfg.Resume {
		ck, err := LoadCheckpoint(cfg.CheckpointPath)
		if err == nil {
			if ck.Fingerprint != fp {
				return nil, fmt.Errorf("campaign: checkpoint %s is for a different campaign (fingerprint %x != %x)",
					cfg.CheckpointPath, ck.Fingerprint, fp)
			}
			replayed, err = replayOutput(cfg.OutputPath, ck.Done)
			if err != nil {
				return nil, err
			}
			start = ck.Done
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	// Replayed results re-enter the aggregator through shard 0; shard
	// ownership only matters for live workers.
	for _, r := range replayed {
		agg.Shard(0).Add(r)
	}

	sinks, err := openSinks(cfg, replayed)
	if err != nil {
		return nil, err
	}

	end := len(cfg.Targets)
	if cfg.StopAfter > 0 && start+cfg.StopAfter < end {
		end = start + cfg.StopAfter
	}

	results := make([]*TargetResult, len(cfg.Targets))
	ck := Checkpoint{Fingerprint: fp, Done: start}
	emitted := start
	// Each worker owns one ProbeArena: the scenario and prober are built
	// once and re-seeded per target, which removes scenario construction
	// from the per-target cost without changing a byte of output (arena
	// reuse is observably identical to fresh construction).
	arenas := make([]*ProbeArena, sched.Workers())
	for i := range arenas {
		arenas[i] = NewProbeArena()
	}
	err = sched.Run(start, end,
		func(worker, index, attempt int) error {
			res := arenas[worker].ProbeTarget(cfg.Targets[index], cfg.Samples, attempt)
			results[index] = res
			if res.Err != "" && attempt < cfg.Retries {
				return fmt.Errorf("campaign: target %d: %s", index, res.Err)
			}
			agg.Shard(worker).Add(res)
			return nil
		},
		func(index int) error {
			for _, s := range sinks {
				if err := s.Emit(results[index]); err != nil {
					return err
				}
			}
			results[index] = nil // bound memory: emitted results are dropped
			emitted++
			if cfg.CheckpointPath != "" &&
				(emitted%cfg.CheckpointEvery == 0 || emitted == end) {
				// Flush first: a checkpoint must never acknowledge
				// results still sitting in a sink buffer, or a crash
				// here would leave the output behind the checkpoint
				// and the campaign unresumable.
				for _, s := range sinks {
					if err := s.Flush(); err != nil {
						return err
					}
				}
				ck.Done = emitted
				if err := ck.Save(cfg.CheckpointPath); err != nil {
					return err
				}
			}
			if cfg.Progress != nil {
				cfg.Progress(emitted, len(cfg.Targets))
			}
			return nil
		})
	// Close errors matter even on the success path: the final buffered
	// results reach disk during Close, and a full disk must not yield a
	// successful report over a truncated output file.
	closeErr := closeAll(sinks)
	if err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}
	return agg.Summary(), nil
}

// openSinks assembles the configured sinks. When resuming, the JSONL file
// — already truncated to exactly the checkpointed records — is opened for
// append, while the CSV file is rebuilt from the replayed prefix: CSV rows
// are not safely line-countable, so rewriting is how its content is
// guaranteed to equal an uninterrupted run's.
func openSinks(cfg Config, replayed []*TargetResult) ([]Sink, error) {
	var sinks []Sink
	fail := func(err error) ([]Sink, error) {
		closeAll(sinks)
		return nil, err
	}
	resuming := len(replayed) > 0
	if cfg.OutputPath != "" {
		flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if resuming {
			flags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		f, err := os.OpenFile(cfg.OutputPath, flags, 0o644)
		if err != nil {
			return fail(err)
		}
		sinks = append(sinks, NewJSONLSink(f))
	}
	if cfg.CSVPath != "" {
		f, err := os.OpenFile(cfg.CSVPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fail(err)
		}
		cs := NewCSVSink(f)
		for _, r := range replayed {
			if err := cs.Emit(r); err != nil {
				closeAll(append(sinks, cs))
				return nil, err
			}
		}
		sinks = append(sinks, cs)
	}
	sinks = append(sinks, cfg.Sinks...)
	return sinks, nil
}

// closeAll closes every sink, returning the first error.
func closeAll(sinks []Sink) error {
	var first error
	for _, s := range sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteTargets emits the target list in the LoadTargets file format.
func WriteTargets(w io.Writer, targets []Target) error {
	for _, t := range targets {
		if _, err := fmt.Fprintf(w, "%s %s %s %d\n", t.Profile, t.Impairment, t.Test, t.Seed); err != nil {
			return err
		}
	}
	return nil
}
