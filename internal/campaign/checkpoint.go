package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// Checkpoint records durable campaign progress: how many results have been
// emitted, in index order, to the output stream. The JSONL output itself
// is the state — resume replays its prefix into the aggregator — so the
// checkpoint stays a few dozen bytes no matter the campaign size.
type Checkpoint struct {
	// Fingerprint ties the checkpoint to one (targets, samples) pair so a
	// checkpoint can never silently resume a different campaign.
	Fingerprint uint64 `json:"fingerprint"`
	// Done is the number of results emitted.
	Done int `json:"done"`
}

// recordFormat is the TargetResult schema generation, folded into the
// fingerprint: the JSONL record is append-only for readers, but a resume
// replays old records as-is and appends new-format ones, which would break
// the resumed-equals-uninterrupted byte-identity contract across versions.
// Bump it whenever TargetResult gains fields; a cross-version resume is
// then refused like any other config change (-force-restart is the escape
// hatch).
const recordFormat = 2

// Fingerprint hashes the campaign's deterministic inputs. The byte stream
// fed to the hash is frozen: old checkpoints must keep verifying, so this
// appends exactly what the original fmt.Fprintf formulation produced.
func Fingerprint(targets []Target, samples int) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 128)
	buf = append(buf, "format="...)
	buf = strconv.AppendInt(buf, recordFormat, 10)
	buf = append(buf, "\nsamples="...)
	buf = strconv.AppendInt(buf, int64(samples), 10)
	buf = append(buf, '\n')
	h.Write(buf)
	for _, t := range targets {
		buf = append(buf[:0], t.Profile...)
		buf = append(buf, '|')
		buf = append(buf, t.Impairment...)
		buf = append(buf, '|')
		buf = append(buf, t.Test...)
		buf = append(buf, '|')
		buf = strconv.AppendUint(buf, t.Seed, 10)
		// The topology segment is appended only when present, so target
		// lists without one hash to the exact pre-topology stream and old
		// checkpoints keep verifying.
		if t.Topology != "" {
			buf = append(buf, '|')
			buf = append(buf, t.Topology...)
		}
		// Likewise the scenario segment; the '#' prefix keeps it disjoint
		// from the topology segment (no topology name starts with '#'), so
		// {topo:"x"} and {scenario:"x"} target lists hash differently.
		if t.Scenario != "" {
			buf = append(buf, '|', '#')
			buf = append(buf, t.Scenario...)
		}
		buf = append(buf, '\n')
		h.Write(buf)
	}
	return h.Sum64()
}

// Save writes the checkpoint atomically and durably: temp file, fsync,
// rename, fsync of the containing directory. Rename alone only orders the
// replacement against other *writes* — after a host crash, a filesystem
// may surface the new name pointing at an unsynced (empty) file. Syncing
// the temp file before the rename and the directory after it closes both
// holes, so a crash at any instant leaves either the previous checkpoint
// or the complete new one.
func (c Checkpoint) Save(path string) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer dir.Close()
	// Some platforms cannot fsync a directory handle; the rename itself is
	// still atomic there, so degrade silently rather than fail the save.
	if err := dir.Sync(); err != nil {
		return nil
	}
	return nil
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (Checkpoint, error) {
	var c Checkpoint
	data, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	if c.Done < 0 {
		return c, fmt.Errorf("campaign: checkpoint %s: negative done count", path)
	}
	return c, nil
}

// replayOutput reads the first done records back from the JSONL output of
// an interrupted campaign and truncates anything past them (a crash may
// have written results the checkpoint never acknowledged; they are
// re-probed, deterministically, to the same bytes).
func replayOutput(path string, done int) ([]*TargetResult, error) {
	if done == 0 {
		return nil, nil
	}
	if path == "" {
		return nil, fmt.Errorf("campaign: resume requires OutputPath (the checkpoint replays from it)")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	results := make([]*TargetResult, 0, done)
	var offset int64
	// bufio.Reader rather than a Scanner: a Scanner caps the line length
	// (64 KiB default, whatever the buffer is configured to at most), and
	// a resume must never fail permanently just because one record grew
	// past an arbitrary cap.
	br := bufio.NewReaderSize(f, 64*1024)
	for len(results) < done {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// An unterminated tail can only be an unacknowledged partial
			// write (a checkpoint is saved only after the sink flushed the
			// trailing newline): leave it past offset to be truncated and
			// re-probed.
			break
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: %s record %d: %w", path, len(results), err)
		}
		rec := line[:len(line)-1]
		r := &TargetResult{}
		if err := json.Unmarshal(rec, r); err != nil {
			return nil, fmt.Errorf("campaign: %s record %d: %w", path, len(results), err)
		}
		if r.Index != len(results) {
			return nil, fmt.Errorf("campaign: %s record %d has index %d; output does not match checkpoint",
				path, len(results), r.Index)
		}
		results = append(results, r)
		offset += int64(len(line))
	}
	if len(results) < done {
		return nil, fmt.Errorf("campaign: %s has %d records but checkpoint says %d emitted",
			path, len(results), done)
	}
	if err := os.Truncate(path, offset); err != nil {
		return nil, err
	}
	return results, nil
}
