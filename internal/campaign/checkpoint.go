package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
)

// Checkpoint records durable campaign progress: how many results have been
// emitted, in index order, to the output stream. The JSONL output itself
// is the state — resume replays its prefix into the aggregator — so the
// checkpoint stays a few dozen bytes no matter the campaign size.
type Checkpoint struct {
	// Fingerprint ties the checkpoint to one (targets, samples) pair so a
	// checkpoint can never silently resume a different campaign.
	Fingerprint uint64 `json:"fingerprint"`
	// Done is the number of results emitted.
	Done int `json:"done"`
}

// Fingerprint hashes the campaign's deterministic inputs.
func Fingerprint(targets []Target, samples int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "samples=%d\n", samples)
	for _, t := range targets {
		fmt.Fprintf(h, "%s|%s|%s|%d\n", t.Profile, t.Impairment, t.Test, t.Seed)
	}
	return h.Sum64()
}

// Save writes the checkpoint atomically (temp file + rename), so a crash
// mid-save leaves the previous checkpoint intact.
func (c Checkpoint) Save(path string) error {
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (Checkpoint, error) {
	var c Checkpoint
	data, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	if c.Done < 0 {
		return c, fmt.Errorf("campaign: checkpoint %s: negative done count", path)
	}
	return c, nil
}

// replayOutput reads the first done records back from the JSONL output of
// an interrupted campaign and truncates anything past them (a crash may
// have written results the checkpoint never acknowledged; they are
// re-probed, deterministically, to the same bytes).
func replayOutput(path string, done int) ([]*TargetResult, error) {
	if done == 0 {
		return nil, nil
	}
	if path == "" {
		return nil, fmt.Errorf("campaign: resume requires OutputPath (the checkpoint replays from it)")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	results := make([]*TargetResult, 0, done)
	var offset int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for len(results) < done && sc.Scan() {
		line := sc.Bytes()
		r := &TargetResult{}
		if err := json.Unmarshal(line, r); err != nil {
			return nil, fmt.Errorf("campaign: %s record %d: %w", path, len(results), err)
		}
		if r.Index != len(results) {
			return nil, fmt.Errorf("campaign: %s record %d has index %d; output does not match checkpoint",
				path, len(results), r.Index)
		}
		results = append(results, r)
		offset += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) < done {
		return nil, fmt.Errorf("campaign: %s has %d records but checkpoint says %d emitted",
			path, len(results), done)
	}
	if err := os.Truncate(path, offset); err != nil {
		return nil, err
	}
	return results, nil
}
