package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Pre-batching goldens: SHA-256 of the JSONL and CSV a campaign over
// smallSpec (samples 4) produced BEFORE the batched pipeline, span
// dispatch and topology pooling landed — captured from the per-target
// emit path at commit bc39f91. Byte-identical output at any worker count,
// batch size and across checkpoint/resume is the hard invariant of the
// batching work; these constants make "identical" mean identical to the
// old code, not merely self-consistent.
const (
	goldenJSONLSHA = "22cc82ab230dcdacff6c2875579a19a0c9102c242660d707cee135207ca2bf2a"
	goldenCSVSHA   = "4296e747d9c4a70f30a4ee1763f43c81054c32af000424bf4eea8533d21e7b01"
)

func sha256Hex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// runGoldenCampaign runs the smallSpec campaign with the given knobs and
// returns (jsonl, csv, summary-text, checkpoint-bytes).
func runGoldenCampaign(t *testing.T, workers, batch, window int, split bool) ([]byte, []byte, []byte, []byte) {
	t.Helper()
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	csv := filepath.Join(dir, "out.csv")
	ckpt := filepath.Join(dir, "ckpt.json")
	phases := [][2]int{{0, 0}} // {stopAfter, resume}
	if split {
		// Stop mid-campaign (deliberately not a multiple of the batch
		// size, so the split lands mid-span) and resume to completion.
		phases = [][2]int{{11, 0}, {0, 1}}
	}
	var sum *Summary
	for _, ph := range phases {
		cfg := Config{
			Targets:        targets,
			Samples:        4,
			Workers:        workers,
			Batch:          batch,
			Window:         window,
			OutputPath:     out,
			CSVPath:        csv,
			CheckpointPath: ckpt,
			StopAfter:      ph[0],
			Resume:         ph[1] == 1,
		}
		sum, err = Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	jsonl, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	csvData, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	ckptData, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	sum.WriteText(&text)
	return jsonl, csvData, text.Bytes(), ckptData
}

// TestCampaignBatchMatrixGolden is the batching work's acceptance pin:
// JSONL, CSV, the rendered summary and the final checkpoint must be
// byte-identical to the pre-change goldens for every workers × batch
// combination, with adaptive and fixed windows, and across a
// StopAfter/resume split that lands mid-batch.
func TestCampaignBatchMatrixGolden(t *testing.T) {
	var refText, refCkpt []byte
	check := func(name string, workers, batch, window int, split bool) {
		t.Helper()
		jsonl, csv, text, ckpt := runGoldenCampaign(t, workers, batch, window, split)
		if got := sha256Hex(jsonl); got != goldenJSONLSHA {
			t.Errorf("%s: JSONL sha256 %s, want pre-change golden %s", name, got, goldenJSONLSHA)
		}
		if got := sha256Hex(csv); got != goldenCSVSHA {
			t.Errorf("%s: CSV sha256 %s, want pre-change golden %s", name, got, goldenCSVSHA)
		}
		if refText == nil {
			refText, refCkpt = text, ckpt
		} else {
			if !bytes.Equal(refText, text) {
				t.Errorf("%s: summary text differs across the matrix", name)
			}
			if !bytes.Equal(refCkpt, ckpt) {
				t.Errorf("%s: final checkpoint differs across the matrix", name)
			}
		}
	}
	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 8, 64} {
			check(fmt.Sprintf("workers=%d/batch=%d", workers, batch), workers, batch, 0, false)
			check(fmt.Sprintf("workers=%d/batch=%d/resumed", workers, batch), workers, batch, 0, true)
		}
	}
	// A tight fixed window forces constant re-sequencing pressure; a huge
	// one removes it entirely. Neither may change a byte.
	check("window-tight", 4, 8, 5, false)
	check("window-huge", 4, 8, 4096, true)
}
