package campaign_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"reorder/internal/campaign"
	"reorder/internal/campaign/dist"
)

// The same pre-batching goldens golden_test.go pins (duplicated here
// because this file must live in the external test package — dist imports
// campaign, so the in-package tests cannot import dist). Distributed runs
// must hit them too: not merely self-consistent across worker counts, but
// byte-identical to the original per-target emit path.
const (
	distGoldenJSONLSHA = "22cc82ab230dcdacff6c2875579a19a0c9102c242660d707cee135207ca2bf2a"
	distGoldenCSVSHA   = "4296e747d9c4a70f30a4ee1763f43c81054c32af000424bf4eea8533d21e7b01"
)

// runGoldenDist runs the smallSpec campaign through a coordinator with
// `workers` loopback worker goroutines, optionally split across a
// StopAfter/resume boundary that lands mid-span, and returns the JSONL
// and CSV bytes.
func runGoldenDist(t *testing.T, workers, spanSize int, split bool) ([]byte, []byte) {
	t.Helper()
	targets, err := campaign.Enumerate(campaign.EnumSpec{
		Profiles:    []string{"freebsd4", "linux24", campaign.LBPool},
		Impairments: []string{"clean", "swap-heavy"},
		Tests:       []string{"single", "dual", "syn", "transfer"},
		Seeds:       1,
		BaseSeed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	csv := filepath.Join(dir, "out.csv")
	ckpt := filepath.Join(dir, "ckpt.json")
	phases := [][2]int{{0, 0}}
	if split {
		phases = [][2]int{{11, 0}, {0, 1}}
	}
	for _, ph := range phases {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if werr := dist.RunWorker(dist.WorkerConfig{
					Connect: addr,
					Targets: targets,
					Samples: 4,
				}); werr != nil {
					t.Error(werr)
				}
			}()
		}
		_, err = dist.Serve(dist.Config{
			Campaign: campaign.Config{
				Targets:        targets,
				Samples:        4,
				OutputPath:     out,
				CSVPath:        csv,
				CheckpointPath: ckpt,
				StopAfter:      ph[0],
				Resume:         ph[1] == 1,
			},
			Listener:      ln,
			SpanSize:      spanSize,
			ExpectWorkers: workers,
		})
		wg.Wait()
		if err != nil {
			t.Fatal(err)
		}
	}
	jsonl, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	csvData, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	return jsonl, csvData
}

// TestCampaignDistGolden extends the golden matrix to distributed
// execution: worker count × span size, plain and resumed, all pinned to
// the pre-change SHAs.
func TestCampaignDistGolden(t *testing.T) {
	shaHex := func(b []byte) string {
		h := sha256.Sum256(b)
		return hex.EncodeToString(h[:])
	}
	for _, workers := range []int{1, 3} {
		for _, spanSize := range []int{4, 32} {
			for _, split := range []bool{false, true} {
				name := fmt.Sprintf("workers=%d/span=%d/split=%v", workers, spanSize, split)
				jsonl, csv := runGoldenDist(t, workers, spanSize, split)
				if got := shaHex(jsonl); got != distGoldenJSONLSHA {
					t.Errorf("%s: JSONL sha256 %s, want golden %s", name, got, distGoldenJSONLSHA)
				}
				if got := shaHex(csv); got != distGoldenCSVSHA {
					t.Errorf("%s: CSV sha256 %s, want golden %s", name, got, distGoldenCSVSHA)
				}
			}
		}
	}
}
