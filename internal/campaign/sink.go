package campaign

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"io"
	"strconv"
)

// Sink is a streaming consumer of per-target results. The campaign feeds
// sinks strictly in target-index order, one result at a time, so a sink
// never needs to buffer or sort; memory stays constant however large the
// campaign is.
type Sink interface {
	Emit(r *TargetResult) error
	// Flush forces buffered results to the underlying writer. The
	// campaign flushes every sink before saving a checkpoint, so the
	// durable output can never lag behind the acknowledged count.
	Flush() error
	// Close flushes and releases the sink. The campaign closes every
	// sink it was given, including on error paths.
	Close() error
}

// JSONLSink streams one JSON object per line. Field order is fixed by the
// TargetResult struct, which makes the stream byte-reproducible and
// therefore checkpoint-resumable. Records are encoded through
// TargetResult.AppendJSON into a reused buffer rather than reflective
// json.Marshal, so emitting is allocation-free at steady state.
type JSONLSink struct {
	bw  *bufio.Writer
	c   io.Closer
	buf []byte
}

// NewJSONLSink wraps w. If w is an io.Closer it is closed by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(r *TargetResult) error {
	s.buf = r.AppendJSON(s.buf[:0])
	if _, err := s.bw.Write(s.buf); err != nil {
		return err
	}
	return s.bw.WriteByte('\n')
}

// EmitBatch writes a batch of pre-encoded, newline-terminated records in
// one Write — the in-order collector's half of the campaign's batched
// pipeline (workers render records with TargetResult.AppendJSON as they
// finish; the serial path just concatenates). Bytes must match what Emit
// would produce for the same results, which AppendJSON guarantees.
func (s *JSONLSink) EmitBatch(records []byte) error {
	_, err := s.bw.Write(records)
	return err
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error { return s.bw.Flush() }

// Close implements Sink.
func (s *JSONLSink) Close() error {
	err := s.bw.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CSVSink streams results as CSV in the same writer idiom as the
// experiment reports (internal/experiments/csv.go): shortest-roundtrip
// floats, one documented column set. The header is written before the
// first row; on resume the campaign rebuilds the file from the replayed
// prefix rather than appending.
type CSVSink struct {
	w         io.Writer // underlying writer, for pre-encoded batch writes
	cw        *csv.Writer
	c         io.Closer
	wroteHead bool
	withTopo  bool
	withScn   bool
	row       []string // reused per record; csv.Writer copies it out on Write
}

// csvHeader is the column set, aligned with TargetResult's JSON fields.
// Like the JSONL record it is append-only: new columns go at the end so
// old campaign outputs stay parseable by position.
var csvHeader = []string{
	"index", "name", "profile", "impairment", "test", "seed", "attempts",
	"error", "dct_excluded", "fwd_valid", "fwd_reordered", "fwd_rate",
	"rev_valid", "rev_reordered", "rev_rate", "any_reordering", "rtt_us",
	"seq_ratio", "seq_received", "seq_max_extent", "seq_n_reordering",
	"seq_dupthresh_exposure",
}

// NewCSVSink wraps w. If w is an io.Closer it is closed by Close.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{w: w, cw: csv.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// IncludeTopology adds the append-only "topology" column to the header and
// every row. The campaign enables it exactly when the target list has
// topology targets — a deterministic function of the targets, so resumed
// runs make the same choice — and leaves classic campaigns' CSV output
// byte-identical to pre-topology builds. Call before the first Emit.
func (s *CSVSink) IncludeTopology() { s.withTopo = true }

// IncludeScenario adds the append-only "scenario" column, after "topology"
// when both are present; same contract and gating idiom as IncludeTopology.
// Call before the first Emit.
func (s *CSVSink) IncludeScenario() { s.withScn = true }

// appendCSVFields builds r's row in csvHeader order (plus the optional
// trailing topology and scenario columns). Shared by the serial sink and
// the worker-side row encoder so both render identical bytes.
func appendCSVFields(row []string, r *TargetResult, withTopo, withScn bool) []string {
	row = append(row,
		strconv.Itoa(r.Index), r.Name, r.Profile, r.Impairment, r.Test,
		strconv.FormatUint(r.Seed, 10), strconv.Itoa(r.Attempts),
		r.Err, r.DCTExcluded,
		strconv.Itoa(r.FwdValid), strconv.Itoa(r.FwdReordered), fmtFloat(r.FwdRate),
		strconv.Itoa(r.RevValid), strconv.Itoa(r.RevReordered), fmtFloat(r.RevRate),
		strconv.FormatBool(r.AnyReordering), strconv.FormatInt(r.RTTMicros, 10),
		fmtFloat(r.SeqRatio), strconv.Itoa(r.SeqReceived),
		strconv.Itoa(r.SeqMaxExtent), strconv.Itoa(r.SeqNReordering),
		fmtFloat(r.SeqDupthreshExposure),
	)
	if withTopo {
		row = append(row, r.Topology)
	}
	if withScn {
		row = append(row, r.Scenario)
	}
	return row
}

// Emit implements Sink.
func (s *CSVSink) Emit(r *TargetResult) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	s.row = appendCSVFields(s.row[:0], r, s.withTopo, s.withScn)
	return s.cw.Write(s.row)
}

// writeHeader writes the column header once.
func (s *CSVSink) writeHeader() error {
	if s.wroteHead {
		return nil
	}
	s.wroteHead = true
	if !s.withTopo && !s.withScn {
		return s.cw.Write(csvHeader)
	}
	head := append([]string(nil), csvHeader...)
	if s.withTopo {
		head = append(head, "topology")
	}
	if s.withScn {
		head = append(head, "scenario")
	}
	return s.cw.Write(head)
}

// EmitBatch writes a batch of rows pre-encoded by a CSVRowEncoder in one
// Write, emitting the header first if no row preceded it. Encoder and
// sink share one encoding (encoding/csv over appendCSVFields), so mixing
// EmitBatch with per-record Emit — as a resume does when it rebuilds the
// replayed prefix — yields the same bytes as an all-Emit stream.
func (s *CSVSink) EmitBatch(rows []byte) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	// Order the raw write after anything buffered in the csv writer.
	s.cw.Flush()
	if err := s.cw.Error(); err != nil {
		return err
	}
	_, err := s.w.Write(rows)
	return err
}

// Flush implements Sink.
func (s *CSVSink) Flush() error {
	s.cw.Flush()
	return s.cw.Error()
}

// Close implements Sink.
func (s *CSVSink) Close() error {
	s.cw.Flush()
	err := s.cw.Error()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CSVRowEncoder renders TargetResults to CSV row bytes — byte-identical
// to CSVSink.Emit, because it runs the same fields through the same
// encoding/csv writer — into a reusable buffer. Campaign workers each own
// one and render rows as results complete; the in-order collector then
// flushes whole spans with CSVSink.EmitBatch. Not safe for concurrent
// use: one worker, one encoder.
type CSVRowEncoder struct {
	buf      bytes.Buffer
	cw       *csv.Writer
	row      []string
	withTopo bool
	withScn  bool
}

// NewCSVRowEncoder returns an encoder with its own scratch writer.
func NewCSVRowEncoder() *CSVRowEncoder {
	e := &CSVRowEncoder{}
	e.cw = csv.NewWriter(&e.buf)
	return e
}

// IncludeTopology mirrors CSVSink.IncludeTopology; the campaign sets both
// from the same predicate so worker rows match the sink's header.
func (e *CSVRowEncoder) IncludeTopology() { e.withTopo = true }

// IncludeScenario mirrors CSVSink.IncludeScenario, same predicate pairing.
func (e *CSVRowEncoder) IncludeScenario() { e.withScn = true }

// AppendRow appends r's encoded CSV row (with line terminator) to dst.
func (e *CSVRowEncoder) AppendRow(dst []byte, r *TargetResult) ([]byte, error) {
	e.buf.Reset()
	e.row = appendCSVFields(e.row[:0], r, e.withTopo, e.withScn)
	if err := e.cw.Write(e.row); err != nil {
		return dst, err
	}
	e.cw.Flush()
	if err := e.cw.Error(); err != nil {
		return dst, err
	}
	return append(dst, e.buf.Bytes()...), nil
}

// FuncSink adapts a function to the Sink interface, for tests and
// in-process consumers.
type FuncSink func(r *TargetResult) error

// Emit implements Sink.
func (f FuncSink) Emit(r *TargetResult) error { return f(r) }

// Flush implements Sink.
func (FuncSink) Flush() error { return nil }

// Close implements Sink.
func (FuncSink) Close() error { return nil }
