package campaign

import (
	"bufio"
	"encoding/csv"
	"io"
	"strconv"
)

// Sink is a streaming consumer of per-target results. The campaign feeds
// sinks strictly in target-index order, one result at a time, so a sink
// never needs to buffer or sort; memory stays constant however large the
// campaign is.
type Sink interface {
	Emit(r *TargetResult) error
	// Flush forces buffered results to the underlying writer. The
	// campaign flushes every sink before saving a checkpoint, so the
	// durable output can never lag behind the acknowledged count.
	Flush() error
	// Close flushes and releases the sink. The campaign closes every
	// sink it was given, including on error paths.
	Close() error
}

// JSONLSink streams one JSON object per line. Field order is fixed by the
// TargetResult struct, which makes the stream byte-reproducible and
// therefore checkpoint-resumable. Records are encoded through
// TargetResult.AppendJSON into a reused buffer rather than reflective
// json.Marshal, so emitting is allocation-free at steady state.
type JSONLSink struct {
	bw  *bufio.Writer
	c   io.Closer
	buf []byte
}

// NewJSONLSink wraps w. If w is an io.Closer it is closed by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(r *TargetResult) error {
	s.buf = r.AppendJSON(s.buf[:0])
	if _, err := s.bw.Write(s.buf); err != nil {
		return err
	}
	return s.bw.WriteByte('\n')
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error { return s.bw.Flush() }

// Close implements Sink.
func (s *JSONLSink) Close() error {
	err := s.bw.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CSVSink streams results as CSV in the same writer idiom as the
// experiment reports (internal/experiments/csv.go): shortest-roundtrip
// floats, one documented column set. The header is written before the
// first row; on resume the campaign rebuilds the file from the replayed
// prefix rather than appending.
type CSVSink struct {
	cw        *csv.Writer
	c         io.Closer
	wroteHead bool
	row       []string // reused per record; csv.Writer copies it out on Write
}

// csvHeader is the column set, aligned with TargetResult's JSON fields.
// Like the JSONL record it is append-only: new columns go at the end so
// old campaign outputs stay parseable by position.
var csvHeader = []string{
	"index", "name", "profile", "impairment", "test", "seed", "attempts",
	"error", "dct_excluded", "fwd_valid", "fwd_reordered", "fwd_rate",
	"rev_valid", "rev_reordered", "rev_rate", "any_reordering", "rtt_us",
	"seq_ratio", "seq_received", "seq_max_extent", "seq_n_reordering",
	"seq_dupthresh_exposure",
}

// NewCSVSink wraps w. If w is an io.Closer it is closed by Close.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{cw: csv.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Emit implements Sink.
func (s *CSVSink) Emit(r *TargetResult) error {
	if !s.wroteHead {
		s.wroteHead = true
		if err := s.cw.Write(csvHeader); err != nil {
			return err
		}
	}
	s.row = append(s.row[:0],
		strconv.Itoa(r.Index), r.Name, r.Profile, r.Impairment, r.Test,
		strconv.FormatUint(r.Seed, 10), strconv.Itoa(r.Attempts),
		r.Err, r.DCTExcluded,
		strconv.Itoa(r.FwdValid), strconv.Itoa(r.FwdReordered), fmtFloat(r.FwdRate),
		strconv.Itoa(r.RevValid), strconv.Itoa(r.RevReordered), fmtFloat(r.RevRate),
		strconv.FormatBool(r.AnyReordering), strconv.FormatInt(r.RTTMicros, 10),
		fmtFloat(r.SeqRatio), strconv.Itoa(r.SeqReceived),
		strconv.Itoa(r.SeqMaxExtent), strconv.Itoa(r.SeqNReordering),
		fmtFloat(r.SeqDupthreshExposure),
	)
	return s.cw.Write(s.row)
}

// Flush implements Sink.
func (s *CSVSink) Flush() error {
	s.cw.Flush()
	return s.cw.Error()
}

// Close implements Sink.
func (s *CSVSink) Close() error {
	s.cw.Flush()
	err := s.cw.Error()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// FuncSink adapts a function to the Sink interface, for tests and
// in-process consumers.
type FuncSink func(r *TargetResult) error

// Emit implements Sink.
func (f FuncSink) Emit(r *TargetResult) error { return f(r) }

// Flush implements Sink.
func (FuncSink) Flush() error { return nil }

// Close implements Sink.
func (FuncSink) Close() error { return nil }
