package campaign

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestArenaReuseMatchesFreshProbes is the arena hermeticity guard at the
// probe level: one ProbeArena carried across a diverse target sequence
// must yield records identical to fresh per-target construction — the
// invariant that lets campaign workers reuse scenarios without changing a
// byte of output.
func TestArenaReuseMatchesFreshProbes(t *testing.T) {
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	arena := NewProbeArena()
	for _, tg := range targets {
		fresh := ProbeTarget(tg, 4, 0)
		reused := arena.ProbeTarget(tg, 4, 0)
		f := fresh.AppendJSON(nil)
		r := reused.AppendJSON(nil)
		if !bytes.Equal(f, r) {
			t.Fatalf("target %s: arena probe differs from fresh probe:\nfresh:  %s\nreused: %s", tg.Name, f, r)
		}
	}
	// Retries draw a different stream; the arena must track that too.
	tg := targets[0]
	if !bytes.Equal(ProbeTarget(tg, 4, 2).AppendJSON(nil), arena.ProbeTarget(tg, 4, 2).AppendJSON(nil)) {
		t.Fatal("arena probe differs from fresh probe on a retry attempt")
	}
}

// TestArenaCampaignMatchesFreshPerTarget is the determinism guard the
// fast path is gated on: a campaign (whose workers reuse arenas) must
// produce JSONL and CSV byte-identical to a fresh-per-target construction
// at workers 1, 4 and 16, and across a StopAfter checkpoint/resume split.
func TestArenaCampaignMatchesFreshPerTarget(t *testing.T) {
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}

	// Expected output: every target probed fresh, streamed through the
	// same sinks the campaign uses.
	var wantJSONL, wantCSV bytes.Buffer
	js := NewJSONLSink(&wantJSONL)
	cs := NewCSVSink(&wantCSV)
	for _, tg := range targets {
		r := ProbeTarget(tg, 4, 0)
		if err := js.Emit(r); err != nil {
			t.Fatal(err)
		}
		if err := cs.Emit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 16} {
		dir := t.TempDir()
		csvPath := filepath.Join(dir, "out.csv")
		_, gotJSONL := runCampaign(t, dir, workers, func(c *Config) { c.CSVPath = csvPath })
		if !bytes.Equal(wantJSONL.Bytes(), gotJSONL) {
			t.Fatalf("workers=%d: arena campaign JSONL differs from fresh-per-target output", workers)
		}
		gotCSV, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantCSV.Bytes(), gotCSV) {
			t.Fatalf("workers=%d: arena campaign CSV differs from fresh-per-target output", workers)
		}
	}

	// StopAfter + resume: the resumed run re-enters arenas mid-campaign.
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	csvPath := filepath.Join(dir, "out.csv")
	var gotJSONL []byte
	for i, window := range []int{10, 0} {
		_, gotJSONL = runCampaign(t, dir, 4, func(c *Config) {
			c.CSVPath = csvPath
			c.CheckpointPath = ckpt
			c.Resume = i > 0
			c.StopAfter = window
		})
	}
	if !bytes.Equal(wantJSONL.Bytes(), gotJSONL) {
		t.Fatal("resumed arena campaign JSONL differs from fresh-per-target output")
	}
	gotCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantCSV.Bytes(), gotCSV) {
		t.Fatal("resumed arena campaign CSV differs from fresh-per-target output")
	}
}

// TestAppendJSONMatchesMarshal pins AppendJSON to encoding/json byte for
// byte, across omitempty boundaries, float formats and string escaping.
func TestAppendJSONMatchesMarshal(t *testing.T) {
	cases := []*TargetResult{
		{}, // all zero: every omitempty field absent
		{
			Index: 3, Name: "freebsd4/swap-heavy/single/s7", Profile: "freebsd4",
			Impairment: "swap-heavy", Test: "single", Seed: 18446744073709551615,
			Attempts: 2, FwdValid: 8, FwdReordered: 3, FwdRate: 0.375,
			RevValid: 8, RevReordered: 1, RevRate: 0.125,
			AnyReordering: true, RTTMicros: 10499,
		},
		{
			Name: "escape <&> \"quotes\" \\ tab\t nl\n cr\r ctl\x01 high\u2028\u2029 bad\xff utf8ok→",
			Err:  "campaign: target 9: core: handshake with target failed",
		},
		{
			Test: "transfer", SeqRatio: 1.0 / 3.0, SeqReceived: 21,
			SeqMaxExtent: 12, SeqNReordering: 2, SeqDupthreshExposure: 2.0 / 21.0,
		},
		{FwdRate: 1e-7, RevRate: 3.1e21, SeqRatio: 0.1, SeqDupthreshExposure: 5e-324},
		{FwdRate: math.MaxFloat64, RevRate: -1e-9, RTTMicros: -17},
		{DCTExcluded: "zero-ipid", Err: "boom"},
		{
			Name: "freebsd4/clean/single/s7@parallel-x2", Profile: "freebsd4",
			Impairment: "clean", Test: "single", Topology: "parallel-x2",
			FwdValid: 8, FwdReordered: 2, FwdRate: 0.25, AnyReordering: true,
		},
		{
			Name: "freebsd4/swap-heavy/syn/s2@diamond#route-flap", Profile: "freebsd4",
			Impairment: "swap-heavy", Test: "syn", Topology: "diamond",
			Scenario: "route-flap", FwdValid: 8, FwdReordered: 4, FwdRate: 0.5,
		},
		{Scenario: "rst-inject", Err: "core: connection reset"},
	}
	for i, r := range cases {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got := r.AppendJSON(nil)
		if !bytes.Equal(want, got) {
			t.Fatalf("case %d:\n json.Marshal: %s\n AppendJSON:   %s", i, want, got)
		}
		// Appending after existing content must not disturb either part.
		pre := []byte("prefix|")
		if got := r.AppendJSON(pre); !bytes.Equal(got, append([]byte("prefix|"), want...)) {
			t.Fatalf("case %d: AppendJSON corrupted the destination prefix", i)
		}
	}
}

// TestProbeAllocBudget pins the steady-state probe allocation budget: a
// warmed arena probe must stay under 10 allocations (the seed's cost was
// ~930, PR 3 brought it to 77, topology pooling to 3, and the frame-view
// fast path holds there with zero codec allocations). A regression here
// means a fast-path allocation crept back in — an element rebuilt instead
// of reinitialized, a payload literal escaping through an interface call,
// a per-connection struct escaping its pool.
func TestProbeAllocBudget(t *testing.T) {
	tg := Target{Profile: "freebsd4", Impairment: "swap-heavy", Test: "single", Seed: 7}
	arena := NewProbeArena()
	var res TargetResult
	for i := 0; i < 3; i++ { // warm the arena's slabs, pools and scratch
		if arena.ProbeTargetInto(&res, tg, 8, 0); res.Err != "" {
			t.Fatalf("probe errored: %s", res.Err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if arena.ProbeTargetInto(&res, tg, 8, 0); res.Err != "" {
			t.Fatalf("probe errored: %s", res.Err)
		}
	})
	const budget = 10
	if allocs > budget {
		t.Fatalf("steady-state probe allocates %.0f objects, budget %d", allocs, budget)
	}
}
