package campaign

import (
	"sync"
	"sync/atomic"
	"time"

	"reorder/internal/obs"
)

// SchedulerConfig tunes the worker pool.
type SchedulerConfig struct {
	// Workers is the pool size (default 16).
	Workers int
	// Retries is how many additional attempts a failing job gets.
	Retries int
	// Backoff is the delay before the first retry; it doubles per
	// subsequent attempt (0 = retry immediately).
	Backoff time.Duration
	// RatePerSec caps job launches per second via a token bucket
	// (0 = unlimited). Each attempt, including retries, takes one token.
	RatePerSec float64
	// Burst is the bucket capacity (default Workers).
	Burst int
	// Window bounds how far job execution may run ahead of the in-order
	// emit frontier. It is what makes the re-sequencing buffer — and any
	// per-index state the caller retains until emit — genuinely bounded
	// when one slow job holds the frontier while thousands of later jobs
	// finish. Zero selects the adaptive window: it starts near 2×Workers
	// and tracks an EWMA of the observed completion spread, growing (up to
	// the old static default, max(4×Workers, 64)) only when stragglers
	// actually scatter completions — so a campaign of uniform-speed
	// targets keeps sink latency low, and one with slow spec-stack
	// targets widens just enough to keep the pool busy.
	Window int
	// Batch is the span size: workers claim [lo,hi) index spans of this
	// many jobs off a shared cursor, so scheduling overhead (cursor
	// claims, completion reports, re-sequencing) is paid per span rather
	// than per job. Zero selects an adaptive size from the run length and
	// worker count; rate-limited runs always dispatch singly so the token
	// bucket stays the pacing authority. Batching never changes outputs —
	// only how work is sliced.
	Batch int
	// Obs, when non-nil, receives scheduler telemetry: span claims, window
	// stalls, retries, backoff and rate-limiter wait time. All counts are
	// off the per-job fast path (per span, per stall, per retry), so an
	// attached registry costs the hot loop nothing measurable.
	Obs *obs.Scheduler
	// Quiesce, when non-nil and closed, stops dispatch gracefully: no new
	// spans are claimed, in-flight spans finish and emit in order, and the
	// run returns nil. Callers distinguish a quiesced run from a completed
	// one by how far the emit frontier got.
	Quiesce <-chan struct{}
}

// DefaultWorkers is the pool size when SchedulerConfig.Workers is zero.
const DefaultWorkers = 16

// Scheduler runs indexed jobs through a bounded worker pool and delivers
// completions strictly in index order. Job side effects keyed by index (or
// by worker, for sharded aggregation) need no locking: each index is
// processed by exactly one worker, and the emit callbacks run serially.
//
// Dispatch is span-granular: workers claim contiguous [lo,hi) spans off an
// atomic cursor and report whole completed spans, so the per-job cost of
// the orchestrator is a few arithmetic operations plus 1/spanSize channel
// operations — the difference between a campaign bottlenecked on channel
// hops and one bottlenecked on the probes themselves.
type Scheduler struct {
	cfg SchedulerConfig

	// maxWindow is the ceiling the (possibly adaptive) window may reach;
	// callers sizing per-index rings use MaxWindow.
	maxWindow int
	// adaptive records whether Window was left to the scheduler.
	adaptive bool

	// sleep and now are wall-clock hooks, replaceable by tests. A nil
	// sleep means real time, waited interruptibly against the run's stop
	// channel; a test-injected sleep is called directly.
	sleep func(time.Duration)
	now   func() time.Time
}

// sleepStop waits d, returning false early if stop closes first.
func (s *Scheduler) sleepStop(d time.Duration, stop <-chan struct{}) bool {
	if s.sleep != nil {
		s.sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}

// NewScheduler returns a scheduler with the given configuration.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Workers
	}
	s := &Scheduler{cfg: cfg, now: time.Now}
	if cfg.Window <= 0 {
		// Adaptive: cap at the old static default — scaled up when an
		// explicit batch needs the headroom to keep every worker holding
		// a full span — with a floor near 2×Workers so the pool never
		// starves.
		s.adaptive = true
		s.maxWindow = 4 * cfg.Workers
		if s.maxWindow < 64 {
			s.maxWindow = 64
		}
		if cfg.Batch > 0 && s.maxWindow < 2*cfg.Batch*cfg.Workers {
			s.maxWindow = 2 * cfg.Batch * cfg.Workers
		}
	} else {
		if cfg.Window < cfg.Workers {
			cfg.Window = cfg.Workers // never starve the pool
			s.cfg.Window = cfg.Window
		}
		s.maxWindow = cfg.Window
	}
	return s
}

// Workers returns the effective pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// MaxWindow returns the largest value the dispatch window can take during
// a run: callers that keep per-index state until emit (re-sequencing
// rings, pre-encoded batch slots) can size a ring of exactly this many
// entries and never collide.
func (s *Scheduler) MaxWindow() int { return s.maxWindow }

// spanSizeFor returns the dispatch span size for a run of n jobs: the
// configured batch (capped at the window, the progress invariant), or an
// adaptive default sized so a window's worth of spans keeps every worker
// busy; always 1 under rate limiting so the token bucket paces individual
// launches.
func (s *Scheduler) spanSizeFor(n int) int {
	if s.cfg.RatePerSec > 0 {
		return 1
	}
	size := s.cfg.Batch
	if size <= 0 {
		// Adaptive: big enough to amortize the per-span bookkeeping,
		// small enough that a run splits into several spans per worker
		// (tail balance) and the window never idles the pool.
		size = n / (2 * s.cfg.Workers)
		if max := s.maxWindow / s.cfg.Workers; size > max {
			size = max
		}
	}
	if size > s.maxWindow {
		size = s.maxWindow
	}
	if size < 1 {
		size = 1
	}
	return size
}

// span is one claimed slice of the index range.
type span struct{ lo, hi int }

// gate enforces the dispatch window: a worker may run index i only once
// i < frontier+window. The fast path is two atomic loads; workers park on
// the condition variable only when the window is actually exhausted.
//
// The hot atomics are padded onto their own cache lines: every worker
// reads frontier and window before every job while the collector stores
// them after every span, and the claim cursor (dispatchState) is hammered
// by CAS from all workers — sharing a line between any of these (or with
// the mutex word) would turn each store into a fleet-wide invalidation.
type gate struct {
	_        [64]byte
	frontier atomic.Int64 // next index to emit (all before are emitted)
	_        [56]byte
	window   atomic.Int64
	_        [56]byte

	mu      sync.Mutex
	cond    *sync.Cond
	waiting int
	stopped bool

	// obs and now record stall telemetry on the slow path only; the
	// two-atomic-load fast path never touches them.
	obs *obs.Scheduler
	now func() time.Time
}

// dispatchState holds the shared claim cursor on its own cache line.
type dispatchState struct {
	_      [64]byte
	cursor atomic.Int64
	_      [56]byte
}

func newGate(start, window int) *gate {
	g := &gate{}
	g.frontier.Store(int64(start))
	g.window.Store(int64(window))
	g.cond = sync.NewCond(&g.mu)
	return g
}

// wait blocks until index may run (or the run stops, returning false).
func (g *gate) wait(index int) bool {
	if int64(index) < g.frontier.Load()+g.window.Load() {
		return true
	}
	var parkedAt time.Time
	g.mu.Lock()
	for int64(index) >= g.frontier.Load()+g.window.Load() && !g.stopped {
		if g.obs != nil && parkedAt.IsZero() {
			parkedAt = g.now()
			g.obs.WindowStalls.Inc()
		}
		g.waiting++
		g.cond.Wait()
		g.waiting--
	}
	stopped := g.stopped
	g.mu.Unlock()
	if !parkedAt.IsZero() {
		g.obs.WindowStallNanos.AddInt(g.now().Sub(parkedAt).Nanoseconds())
	}
	return !stopped
}

// advance publishes a new frontier (and optionally a new window), waking
// parked workers when any are waiting.
func (g *gate) advance(frontier, window int) {
	g.mu.Lock()
	g.frontier.Store(int64(frontier))
	if window > 0 {
		g.window.Store(int64(window))
	}
	if g.waiting > 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// stop releases every parked worker with a failure indication.
func (g *gate) stop() {
	g.mu.Lock()
	g.stopped = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Run executes jobs for indices [start, end). job is called as
// job(worker, index, attempt); a non-nil return triggers a retry after
// backoff, up to the configured retry budget, after which the job counts
// as done regardless (the job records its own terminal error). emit is
// called serially, in ascending index order, once per finished index; a
// non-nil emit error cancels the run and is returned. A nil emit is
// allowed when only job side effects matter.
func (s *Scheduler) Run(start, end int, job func(worker, index, attempt int) error, emit func(index int) error) error {
	return s.RunSpans(start, end, nil, job, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if emit != nil {
				if err := emit(i); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// RunSpans is the span-granular form of Run: workers claim contiguous
// index spans off a shared cursor, begin (optional) is called on the
// worker when it claims a span — callers use it to set up per-span state
// such as encode buffers — and emitSpan is called serially with each
// completed span in ascending index order (spans partition [start,end), so
// consecutive calls are contiguous). job semantics match Run. An emitSpan
// error cancels the run and is returned.
func (s *Scheduler) RunSpans(start, end int,
	begin func(worker, lo, hi int),
	job func(worker, index, attempt int) error,
	emitSpan func(lo, hi int) error,
) error {
	if start >= end {
		return nil
	}
	limiter := newTokenBucket(s.cfg.RatePerSec, float64(s.cfg.Burst), s.now)

	spanSize := s.spanSizeFor(end - start)
	window := s.maxWindow
	minWindow := window
	if s.adaptive {
		minWindow = 2 * s.cfg.Workers
		if minWindow < 16 {
			minWindow = 16
		}
		// A window below a full round of spans would idle workers
		// regardless of spread; start there and grow on evidence.
		if floor := spanSize * s.cfg.Workers; minWindow < floor {
			minWindow = floor
		}
		if minWindow > s.maxWindow {
			minWindow = s.maxWindow
		}
		window = minWindow
	}

	g := newGate(start, window)
	g.obs, g.now = s.cfg.Obs, s.now
	ds := &dispatchState{}
	cursor := &ds.cursor
	cursor.Store(int64(start))
	doneCh := make(chan span, s.cfg.Workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() {
		stopOnce.Do(func() {
			close(stop)
			g.stop()
		})
	}

	claim := func() (span, bool) {
		select {
		case <-s.cfg.Quiesce:
			return span{}, false // draining: finish in-flight spans only
		default:
		}
		for {
			lo := cursor.Load()
			if lo >= int64(end) {
				return span{}, false
			}
			hi := lo + int64(spanSize)
			// Shrink near the tail so the last few spans spread over
			// the pool instead of parking on one worker.
			if remaining := int64(end) - lo; remaining < int64(spanSize*s.cfg.Workers) {
				size := remaining / int64(s.cfg.Workers)
				if size < 1 {
					size = 1
				}
				hi = lo + size
			}
			if hi > int64(end) {
				hi = int64(end)
			}
			if cursor.CompareAndSwap(lo, hi) {
				if s.cfg.Obs != nil {
					s.cfg.Obs.SpanClaims.Inc()
				}
				return span{int(lo), int(hi)}, true
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sp, ok := claim()
				if !ok {
					return
				}
				if begin != nil {
					begin(worker, sp.lo, sp.hi)
				}
				for i := sp.lo; i < sp.hi; i++ {
					if !g.wait(i) {
						return
					}
					s.runJob(worker, i, job, limiter, stop)
					select {
					case <-stop:
						return
					default:
					}
				}
				select {
				case doneCh <- sp:
				case <-stop:
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(doneCh)
	}()

	// Re-sequence completions: workers finish spans in arbitrary order,
	// sinks must see index order. Spans partition the range, so a small
	// list ordered by lo (at most window/spanSize + workers entries)
	// re-sequences them; the gate caps how far execution runs ahead, so
	// the list — and any per-index state the caller retains until emit —
	// stays bounded for any campaign size.
	var pending []span
	next := start
	var emitErr error
	// spreadEwma tracks how far beyond the frontier completed spans land,
	// the dispersion the adaptive window sizes against.
	var spreadEwma float64
	for sp := range doneCh {
		// Insert keeping pending sorted by lo.
		at := len(pending)
		for i, q := range pending {
			if sp.lo < q.lo {
				at = i
				break
			}
		}
		pending = append(pending, span{})
		copy(pending[at+1:], pending[at:])
		pending[at] = sp

		if s.adaptive {
			spread := float64(sp.hi - next)
			spreadEwma += 0.125 * (spread - spreadEwma)
		}

		advanced := false
		for emitErr == nil && len(pending) > 0 && pending[0].lo == next {
			q := pending[0]
			pending = pending[:copy(pending, pending[1:])]
			if err := emitSpan(q.lo, q.hi); err != nil {
				emitErr = err
				cancel()
				break
			}
			next = q.hi
			advanced = true
		}
		if advanced && emitErr == nil {
			if s.adaptive {
				window = clampInt(s.cfg.Workers+2*int(spreadEwma), minWindow, s.maxWindow)
			}
			g.advance(next, window)
		}
	}
	cancel()
	return emitErr
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// runJob drives one index through its attempts. Rate-limit and backoff
// waits abort when stop closes, so a cancelled run (emit failure) is not
// held hostage by slow politeness timers.
func (s *Scheduler) runJob(worker, index int, job func(worker, index, attempt int) error, limiter *tokenBucket, stop <-chan struct{}) {
	backoff := s.cfg.Backoff
	for attempt := 0; ; attempt++ {
		if !limiter.take(s, stop) {
			return
		}
		err := job(worker, index, attempt)
		if err == nil || attempt >= s.cfg.Retries {
			return
		}
		select {
		case <-stop:
			return
		default:
		}
		if s.cfg.Obs != nil {
			s.cfg.Obs.Retries.Inc()
		}
		if backoff > 0 {
			if !s.sleepStop(backoff, stop) {
				return
			}
			if s.cfg.Obs != nil {
				s.cfg.Obs.BackoffNanos.AddInt(backoff.Nanoseconds())
			}
			backoff *= 2
		}
	}
}

// tokenBucket is a blocking wall-clock rate limiter.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables limiting
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// take blocks until a token is available, waiting through the
// scheduler's interruptible sleep; it returns false if stop closed
// before a token arrived. A nil bucket always succeeds immediately.
func (tb *tokenBucket) take(s *Scheduler, stop <-chan struct{}) bool {
	if tb == nil {
		return true
	}
	for {
		tb.mu.Lock()
		now := tb.now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
		if tb.tokens >= 1 {
			tb.tokens--
			tb.mu.Unlock()
			return true
		}
		wait := time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
		tb.mu.Unlock()
		if !s.sleepStop(wait, stop) {
			return false
		}
		if s.cfg.Obs != nil {
			s.cfg.Obs.RateWaitNanos.AddInt(wait.Nanoseconds())
		}
	}
}
