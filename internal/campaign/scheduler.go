package campaign

import (
	"sync"
	"time"
)

// SchedulerConfig tunes the worker pool.
type SchedulerConfig struct {
	// Workers is the pool size (default 16).
	Workers int
	// Retries is how many additional attempts a failing job gets.
	Retries int
	// Backoff is the delay before the first retry; it doubles per
	// subsequent attempt (0 = retry immediately).
	Backoff time.Duration
	// RatePerSec caps job launches per second via a token bucket
	// (0 = unlimited). Each attempt, including retries, takes one token.
	RatePerSec float64
	// Burst is the bucket capacity (default Workers).
	Burst int
	// Window bounds how far job dispatch may run ahead of the in-order
	// emit frontier (default max(4×Workers, 64)). It is what makes the
	// re-sequencing buffer — and any per-index state the caller retains
	// until emit — genuinely bounded when one slow job holds the
	// frontier while thousands of later jobs finish.
	Window int
}

// DefaultWorkers is the pool size when SchedulerConfig.Workers is zero.
const DefaultWorkers = 16

// Scheduler runs indexed jobs through a bounded worker pool and delivers
// completions strictly in index order. Job side effects keyed by index (or
// by worker, for sharded aggregation) need no locking: each index is
// processed by exactly one worker, and the emit callback runs serially.
type Scheduler struct {
	cfg SchedulerConfig

	// sleep and now are wall-clock hooks, replaceable by tests. A nil
	// sleep means real time, waited interruptibly against the run's stop
	// channel; a test-injected sleep is called directly.
	sleep func(time.Duration)
	now   func() time.Time
}

// sleepStop waits d, returning false early if stop closes first.
func (s *Scheduler) sleepStop(d time.Duration, stop <-chan struct{}) bool {
	if s.sleep != nil {
		s.sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}

// NewScheduler returns a scheduler with the given configuration.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Workers
	}
	if cfg.Window <= 0 {
		cfg.Window = 4 * cfg.Workers
		if cfg.Window < 64 {
			cfg.Window = 64
		}
	}
	if cfg.Window < cfg.Workers {
		cfg.Window = cfg.Workers // never starve the pool
	}
	return &Scheduler{cfg: cfg, now: time.Now}
}

// Workers returns the effective pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Run executes jobs for indices [start, end). job is called as
// job(worker, index, attempt); a non-nil return triggers a retry after
// backoff, up to the configured retry budget, after which the job counts
// as done regardless (the job records its own terminal error). emit is
// called serially, in ascending index order, once per finished index; a
// non-nil emit error cancels the run and is returned. A nil emit is
// allowed when only job side effects matter.
func (s *Scheduler) Run(start, end int, job func(worker, index, attempt int) error, emit func(index int) error) error {
	if start >= end {
		return nil
	}
	limiter := newTokenBucket(s.cfg.RatePerSec, float64(s.cfg.Burst), s.now)

	idxCh := make(chan int)
	doneCh := make(chan int, s.cfg.Workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	// credits implements the dispatch window: the feeder takes one per
	// index, the collector returns one per in-order emit, so at most
	// Window indices are ever issued-but-unemitted.
	credits := make(chan struct{}, s.cfg.Window)
	for i := 0; i < s.cfg.Window; i++ {
		credits <- struct{}{}
	}

	go func() { // feeder
		defer close(idxCh)
		for i := start; i < end; i++ {
			select {
			case <-credits:
			case <-stop:
				return
			}
			select {
			case idxCh <- i:
			case <-stop:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idxCh {
				s.runJob(worker, i, job, limiter, stop)
				select {
				case doneCh <- i:
				case <-stop:
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(doneCh)
	}()

	// Re-sequence completions: workers finish in arbitrary order, sinks
	// must see index order. The dispatch window caps issued-but-unemitted
	// indices at Window, so a fixed ring indexed by i mod Window holds the
	// pending set — constant memory for any campaign size, no map churn on
	// the per-target path.
	pending := make([]bool, s.cfg.Window)
	next := start
	var emitErr error
	for i := range doneCh {
		pending[i%s.cfg.Window] = true
		for emitErr == nil && pending[next%s.cfg.Window] {
			pending[next%s.cfg.Window] = false
			if emit != nil {
				if err := emit(next); err != nil {
					emitErr = err
					cancel()
				}
			}
			next++
			select {
			case credits <- struct{}{}: // reopen the window
			default:
				// Unreachable by credit accounting (every emitted
				// index holds exactly one credit); non-blocking as
				// insurance against future drift.
			}
		}
	}
	cancel()
	return emitErr
}

// runJob drives one index through its attempts. Rate-limit and backoff
// waits abort when stop closes, so a cancelled run (emit failure) is not
// held hostage by slow politeness timers.
func (s *Scheduler) runJob(worker, index int, job func(worker, index, attempt int) error, limiter *tokenBucket, stop <-chan struct{}) {
	backoff := s.cfg.Backoff
	for attempt := 0; ; attempt++ {
		if !limiter.take(s, stop) {
			return
		}
		err := job(worker, index, attempt)
		if err == nil || attempt >= s.cfg.Retries {
			return
		}
		select {
		case <-stop:
			return
		default:
		}
		if backoff > 0 {
			if !s.sleepStop(backoff, stop) {
				return
			}
			backoff *= 2
		}
	}
}

// tokenBucket is a blocking wall-clock rate limiter.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables limiting
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// take blocks until a token is available, waiting through the
// scheduler's interruptible sleep; it returns false if stop closed
// before a token arrived. A nil bucket always succeeds immediately.
func (tb *tokenBucket) take(s *Scheduler, stop <-chan struct{}) bool {
	if tb == nil {
		return true
	}
	for {
		tb.mu.Lock()
		now := tb.now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
		if tb.tokens >= 1 {
			tb.tokens--
			tb.mu.Unlock()
			return true
		}
		wait := time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
		tb.mu.Unlock()
		if !s.sleepStop(wait, stop) {
			return false
		}
	}
}
