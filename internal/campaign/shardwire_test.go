package campaign

import (
	"bytes"
	"encoding/json"
	"testing"

	"reorder/internal/stats"
)

// Snapshot → JSON round trip → MergeSnapshot of per-span deltas must yield
// the exact summary a single shard would have built — the invariant the
// distributed coordinator's merge rests on.
func TestShardSnapshotRoundTrip(t *testing.T) {
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	arena := NewProbeArena()
	whole := NewShard()
	delta := NewShard()
	merged := NewShard()

	var res TargetResult
	spanSize := 5
	for lo := 0; lo < len(targets); lo += spanSize {
		hi := lo + spanSize
		if hi > len(targets) {
			hi = len(targets)
		}
		for i := lo; i < hi; i++ {
			arena.ProbeTargetInto(&res, targets[i], 4, 0)
			whole.Add(&res)
			delta.Add(&res)
		}
		b, err := json.Marshal(delta.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var back ShardSnapshot
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if err := merged.MergeSnapshot(back); err != nil {
			t.Fatal(err)
		}
		delta.Reset()
	}

	aw := &Aggregator{shards: []*Shard{whole}}
	am := &Aggregator{shards: []*Shard{merged}}
	var bw, bm bytes.Buffer
	aw.Summary().WriteText(&bw)
	am.Summary().WriteText(&bm)
	if bw.String() != bm.String() {
		t.Fatalf("merged snapshot summary differs:\nwhole:\n%s\nmerged:\n%s", bw.String(), bm.String())
	}
}

func TestShardMergeSnapshotRejectsMalformed(t *testing.T) {
	cases := []ShardSnapshot{
		{Targets: -1},
		{DCTExcluded: map[string]int{"x": -2}},
		{PerTest: map[string]TestShardSnapshot{"single": {Measured: -1}}},
		{PathRates: malformedCounts()},
		{PerTest: map[string]TestShardSnapshot{"single": {FwdRates: malformedCounts()}}},
	}
	for i, snap := range cases {
		if err := NewShard().MergeSnapshot(snap); err == nil {
			t.Errorf("case %d: malformed shard snapshot accepted", i)
		}
	}
}

func malformedCounts() stats.HistogramCounts {
	return stats.HistogramCounts{N: 3, Bins: []uint64{0, 1}} // sums to 1, header says 3
}
