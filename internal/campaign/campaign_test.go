package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// smallSpec is a cheap cross product used throughout the tests.
func smallSpec() EnumSpec {
	return EnumSpec{
		Profiles:    []string{"freebsd4", "linux24", LBPool},
		Impairments: []string{"clean", "swap-heavy"},
		Tests:       []string{"single", "dual", "syn", "transfer"},
		Seeds:       1,
		BaseSeed:    42,
	}
}

func TestEnumerate(t *testing.T) {
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 2 * 4; len(targets) != want {
		t.Fatalf("enumerated %d targets, want %d", len(targets), want)
	}
	for i, tg := range targets {
		if tg.Index != i {
			t.Fatalf("target %d has index %d", i, tg.Index)
		}
		if tg.Name == "" {
			t.Fatalf("target %d has no name", i)
		}
	}

	if _, err := Enumerate(EnumSpec{Profiles: []string{"bogus"}}); err == nil {
		t.Fatal("unknown profile not rejected")
	}
	if _, err := Enumerate(EnumSpec{Impairments: []string{"bogus"}}); err == nil {
		t.Fatal("unknown impairment not rejected")
	}
	if _, err := Enumerate(EnumSpec{Tests: []string{"bogus"}}); err == nil {
		t.Fatal("unknown test not rejected")
	}

	full, err := Enumerate(EnumSpec{Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := len(Profiles()) * len(ImpairmentNames()) * len(Tests) * 2
	if len(full) != want {
		t.Fatalf("default enumeration %d targets, want %d", len(full), want)
	}

	// Seed pairing: the four tests at one profile×impairment×replica
	// share a seed (so their results stay pairable on one path
	// instance), while distinct profiles or impairments draw distinct
	// path instances.
	seedOf := func(profile, impairment, test string) uint64 {
		for _, tg := range full {
			if tg.Profile == profile && tg.Impairment == impairment && tg.Test == test {
				return tg.Seed
			}
		}
		t.Fatalf("target %s/%s/%s not found", profile, impairment, test)
		return 0
	}
	if seedOf("freebsd4", "trunk", "single") != seedOf("freebsd4", "trunk", "syn") {
		t.Fatal("tests at one profile×impairment do not share a path seed")
	}
	if seedOf("freebsd4", "trunk", "single") == seedOf("linux22", "trunk", "single") {
		t.Fatal("different profiles share a path seed")
	}
	if seedOf("freebsd4", "trunk", "single") == seedOf("freebsd4", "arq", "single") {
		t.Fatal("different impairments share a path seed")
	}
}

func TestLoadTargetsRoundTrip(t *testing.T) {
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTargets(&buf, targets); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTargets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(targets, loaded) {
		t.Fatal("targets did not round-trip through the file format")
	}

	if _, err := LoadTargets(strings.NewReader("freebsd4 clean single\n")); err == nil {
		t.Fatal("short line not rejected")
	}
	if _, err := LoadTargets(strings.NewReader("bogus clean single 1\n")); err == nil {
		t.Fatal("unknown profile not rejected")
	}
	got, err := LoadTargets(strings.NewReader("# comment\n\nfreebsd4 clean single 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seed != 7 {
		t.Fatalf("comment/blank handling broken: %+v", got)
	}
}

// TestProbeHermetic checks that a probe depends only on the target spec:
// same spec, same result, no matter how often or where it runs.
func TestProbeHermetic(t *testing.T) {
	tg := Target{Index: 3, Name: "x", Profile: "freebsd4", Impairment: "swap-heavy", Test: "single", Seed: 99}
	a := ProbeTarget(tg, 6, 0)
	b := ProbeTarget(tg, 6, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("probe not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Err != "" {
		t.Fatalf("probe errored: %s", a.Err)
	}
	if a.FwdValid == 0 {
		t.Fatal("probe produced no valid forward samples")
	}
}

// TestProbeDCTExclusion checks that zero-IPID hosts are excluded, not
// errored.
func TestProbeDCTExclusion(t *testing.T) {
	tg := Target{Profile: "linux24", Impairment: "clean", Test: "dual", Seed: 5}
	res := ProbeTarget(tg, 6, 0)
	if res.Err != "" {
		t.Fatalf("unexpected error: %s", res.Err)
	}
	if res.DCTExcluded != "zero-ipid" {
		t.Fatalf("DCTExcluded = %q, want zero-ipid", res.DCTExcluded)
	}
}

// runCampaign is a test helper running a campaign over the small spec.
func runCampaign(t *testing.T, dir string, workers int, mutate func(*Config)) (*Summary, []byte) {
	t.Helper()
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.jsonl")
	cfg := Config{
		Targets:    targets,
		Samples:    4,
		Workers:    workers,
		OutputPath: out,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return sum, data
}

// TestCampaignDeterministicOutput is the campaign determinism contract:
// the same seed and target set produce byte-identical JSONL and an equal
// summary across runs — including runs with different worker counts.
func TestCampaignDeterministicOutput(t *testing.T) {
	sumA, bytesA := runCampaign(t, t.TempDir(), 16, nil)
	sumB, bytesB := runCampaign(t, t.TempDir(), 16, nil)
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatal("two identical runs produced different JSONL bytes")
	}
	if !reflect.DeepEqual(sumA, sumB) {
		t.Fatalf("two identical runs produced different summaries:\n%+v\n%+v", sumA, sumB)
	}

	sumC, bytesC := runCampaign(t, t.TempDir(), 1, nil)
	if !bytes.Equal(bytesA, bytesC) {
		t.Fatal("worker count changed the JSONL bytes")
	}
	if !reflect.DeepEqual(sumA, sumC) {
		t.Fatal("worker count changed the summary")
	}
	if sumA.Targets != 24 || sumA.Measured == 0 {
		t.Fatalf("suspicious summary: %+v", sumA)
	}
	// linux24 and lb-pool dual targets must be excluded, not errored.
	if sumA.Excluded == 0 {
		t.Fatalf("expected IPID exclusions, got none: %+v", sumA)
	}
}

// TestCampaignResume is the checkpoint contract: stop after K results,
// resume, and the final JSONL and summary equal an uninterrupted run's.
func TestCampaignResume(t *testing.T) {
	full, fullBytes := runCampaign(t, t.TempDir(), 8, nil)

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	// Phase 1: run the first 7 targets, checkpointing every result.
	runCampaign(t, dir, 8, func(c *Config) {
		c.CheckpointPath = ckpt
		c.CheckpointEvery = 1
		c.StopAfter = 7
	})
	ck, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Done != 7 {
		t.Fatalf("checkpoint done = %d, want 7", ck.Done)
	}
	// Phase 2: resume to completion.
	resumed, resumedBytes := runCampaign(t, dir, 8, func(c *Config) {
		c.CheckpointPath = ckpt
		c.Resume = true
	})
	if !bytes.Equal(fullBytes, resumedBytes) {
		t.Fatal("resumed JSONL differs from uninterrupted run")
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatalf("resumed summary differs from uninterrupted run:\n%+v\n%+v", full, resumed)
	}
}

// TestCampaignResumeTruncatesUnacknowledged simulates a crash where the
// output ran ahead of the checkpoint: extra records past the checkpoint
// must be dropped and re-probed to the same bytes.
func TestCampaignResumeTruncatesUnacknowledged(t *testing.T) {
	_, fullBytes := runCampaign(t, t.TempDir(), 8, nil)

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	runCampaign(t, dir, 8, func(c *Config) {
		c.CheckpointPath = ckpt
		c.CheckpointEvery = 1
		c.StopAfter = 9
	})
	// Claim fewer emitted than the file holds, as after a crash between
	// output write and checkpoint save.
	targets, _ := Enumerate(smallSpec())
	ck := Checkpoint{Fingerprint: Fingerprint(targets, 4), Done: 5}
	if err := ck.Save(ckpt); err != nil {
		t.Fatal(err)
	}
	_, resumedBytes := runCampaign(t, dir, 8, func(c *Config) {
		c.CheckpointPath = ckpt
		c.Resume = true
	})
	if !bytes.Equal(fullBytes, resumedBytes) {
		t.Fatal("resume after over-written output differs from uninterrupted run")
	}
}

// TestCheckpointNeverAheadOfOutput is the crash-safety invariant: at the
// moment a checkpoint is durably saved, the output file must already hold
// at least that many complete records — otherwise a crash right after the
// save leaves an unresumable campaign. Observed through the Progress
// callback, which runs after each emit (and thus after any checkpoint).
func TestCheckpointNeverAheadOfOutput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ckpt := filepath.Join(dir, "ckpt.json")
	runCampaign(t, dir, 8, func(c *Config) {
		c.CheckpointPath = ckpt
		c.CheckpointEvery = 1
		c.Progress = func(done, total int) {
			ck, err := LoadCheckpoint(ckpt)
			if err != nil {
				t.Fatalf("at done=%d: %v", done, err)
			}
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatalf("at done=%d: %v", done, err)
			}
			if lines := bytes.Count(data, []byte("\n")); lines < ck.Done {
				t.Fatalf("checkpoint acknowledges %d records but output holds %d", ck.Done, lines)
			}
		}
	})
}

// TestCampaignResumeCSV checks the resume contract extends to the CSV
// sink: the resumed CSV equals an uninterrupted run's byte for byte.
func TestCampaignResumeCSV(t *testing.T) {
	fullDir := t.TempDir()
	runCampaign(t, fullDir, 8, func(c *Config) {
		c.CSVPath = filepath.Join(fullDir, "out.csv")
	})
	fullCSV, err := os.ReadFile(filepath.Join(fullDir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	csv := filepath.Join(dir, "out.csv")
	runCampaign(t, dir, 8, func(c *Config) {
		c.CSVPath = csv
		c.CheckpointPath = ckpt
		c.CheckpointEvery = 1
		c.StopAfter = 7
	})
	runCampaign(t, dir, 8, func(c *Config) {
		c.CSVPath = csv
		c.CheckpointPath = ckpt
		c.Resume = true
	})
	resumedCSV, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullCSV, resumedCSV) {
		t.Fatal("resumed CSV differs from uninterrupted run")
	}
}

// TestCheckpointFingerprintMismatch checks that a checkpoint cannot
// resume a different campaign.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	if err := (Checkpoint{Fingerprint: 0xdead, Done: 3}).Save(ckpt); err != nil {
		t.Fatal(err)
	}
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{
		Targets:        targets,
		Samples:        4,
		OutputPath:     filepath.Join(dir, "out.jsonl"),
		CheckpointPath: ckpt,
		Resume:         true,
	})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("fingerprint mismatch not rejected: %v", err)
	}
}

// TestCSVSink checks header, row cadence and resume header suppression.
func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	r := &TargetResult{Index: 0, Name: "n", Profile: "p", Impairment: "i", Test: "single", Attempts: 1}
	if err := s.Emit(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Emit(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,name,profile") {
		t.Fatalf("bad header: %s", lines[0])
	}

}

// TestAggregatorShardingInvariance checks that spreading the same results
// over many shards or one produces the same summary.
func TestAggregatorShardingInvariance(t *testing.T) {
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var results []*TargetResult
	for _, tg := range targets {
		results = append(results, ProbeTarget(tg, 4, 0))
	}

	one := NewAggregator(1)
	for _, r := range results {
		one.Shard(0).Add(r)
	}
	many := NewAggregator(8)
	for i, r := range results {
		many.Shard(7 - i%8).Add(r) // adversarial spread
	}
	if !reflect.DeepEqual(one.Summary(), many.Summary()) {
		t.Fatal("shard layout changed the summary")
	}
}

// TestSummaryWriteTextDeterministic locks the report rendering down.
func TestSummaryWriteTextDeterministic(t *testing.T) {
	sum, _ := runCampaign(t, t.TempDir(), 4, nil)
	var a, b bytes.Buffer
	sum.WriteText(&a)
	sum.WriteText(&b)
	if a.String() != b.String() || a.Len() == 0 {
		t.Fatal("summary rendering unstable or empty")
	}
}
