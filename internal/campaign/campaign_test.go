package campaign

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"reorder/internal/stats"
)

// smallSpec is a cheap cross product used throughout the tests.
func smallSpec() EnumSpec {
	return EnumSpec{
		Profiles:    []string{"freebsd4", "linux24", LBPool},
		Impairments: []string{"clean", "swap-heavy"},
		Tests:       []string{"single", "dual", "syn", "transfer"},
		Seeds:       1,
		BaseSeed:    42,
	}
}

func TestEnumerate(t *testing.T) {
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 2 * 4; len(targets) != want {
		t.Fatalf("enumerated %d targets, want %d", len(targets), want)
	}
	for i, tg := range targets {
		if tg.Index != i {
			t.Fatalf("target %d has index %d", i, tg.Index)
		}
		if tg.Name == "" {
			t.Fatalf("target %d has no name", i)
		}
	}

	if _, err := Enumerate(EnumSpec{Profiles: []string{"bogus"}}); err == nil {
		t.Fatal("unknown profile not rejected")
	}
	if _, err := Enumerate(EnumSpec{Impairments: []string{"bogus"}}); err == nil {
		t.Fatal("unknown impairment not rejected")
	}
	if _, err := Enumerate(EnumSpec{Tests: []string{"bogus"}}); err == nil {
		t.Fatal("unknown test not rejected")
	}

	full, err := Enumerate(EnumSpec{Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := len(Profiles()) * len(ImpairmentNames()) * len(Tests) * 2
	if len(full) != want {
		t.Fatalf("default enumeration %d targets, want %d", len(full), want)
	}

	// Seed pairing: the four tests at one profile×impairment×replica
	// share a seed (so their results stay pairable on one path
	// instance), while distinct profiles or impairments draw distinct
	// path instances.
	seedOf := func(profile, impairment, test string) uint64 {
		for _, tg := range full {
			if tg.Profile == profile && tg.Impairment == impairment && tg.Test == test {
				return tg.Seed
			}
		}
		t.Fatalf("target %s/%s/%s not found", profile, impairment, test)
		return 0
	}
	if seedOf("freebsd4", "trunk", "single") != seedOf("freebsd4", "trunk", "syn") {
		t.Fatal("tests at one profile×impairment do not share a path seed")
	}
	if seedOf("freebsd4", "trunk", "single") == seedOf("linux22", "trunk", "single") {
		t.Fatal("different profiles share a path seed")
	}
	if seedOf("freebsd4", "trunk", "single") == seedOf("freebsd4", "arq", "single") {
		t.Fatal("different impairments share a path seed")
	}
}

func TestLoadTargetsRoundTrip(t *testing.T) {
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTargets(&buf, targets); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTargets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(targets, loaded) {
		t.Fatal("targets did not round-trip through the file format")
	}

	if _, err := LoadTargets(strings.NewReader("freebsd4 clean single\n")); err == nil {
		t.Fatal("short line not rejected")
	}
	if _, err := LoadTargets(strings.NewReader("bogus clean single 1\n")); err == nil {
		t.Fatal("unknown profile not rejected")
	}
	got, err := LoadTargets(strings.NewReader("# comment\n\nfreebsd4 clean single 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seed != 7 {
		t.Fatalf("comment/blank handling broken: %+v", got)
	}
}

// TestProbeHermetic checks that a probe depends only on the target spec:
// same spec, same result, no matter how often or where it runs.
func TestProbeHermetic(t *testing.T) {
	tg := Target{Index: 3, Name: "x", Profile: "freebsd4", Impairment: "swap-heavy", Test: "single", Seed: 99}
	a := ProbeTarget(tg, 6, 0)
	b := ProbeTarget(tg, 6, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("probe not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Err != "" {
		t.Fatalf("probe errored: %s", a.Err)
	}
	if a.FwdValid == 0 {
		t.Fatal("probe produced no valid forward samples")
	}
}

// TestProbeDCTExclusion checks that zero-IPID hosts are excluded, not
// errored.
func TestProbeDCTExclusion(t *testing.T) {
	tg := Target{Profile: "linux24", Impairment: "clean", Test: "dual", Seed: 5}
	res := ProbeTarget(tg, 6, 0)
	if res.Err != "" {
		t.Fatalf("unexpected error: %s", res.Err)
	}
	if res.DCTExcluded != "zero-ipid" {
		t.Fatalf("DCTExcluded = %q, want zero-ipid", res.DCTExcluded)
	}
}

// runCampaign is a test helper running a campaign over the small spec.
func runCampaign(t *testing.T, dir string, workers int, mutate func(*Config)) (*Summary, []byte) {
	t.Helper()
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.jsonl")
	cfg := Config{
		Targets:    targets,
		Samples:    4,
		Workers:    workers,
		OutputPath: out,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return sum, data
}

// TestCampaignDeterministicOutput is the campaign determinism contract:
// the same seed and target set produce byte-identical JSONL and an equal
// summary across runs — including runs with different worker counts.
func TestCampaignDeterministicOutput(t *testing.T) {
	sumA, bytesA := runCampaign(t, t.TempDir(), 16, nil)
	sumB, bytesB := runCampaign(t, t.TempDir(), 16, nil)
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatal("two identical runs produced different JSONL bytes")
	}
	if !reflect.DeepEqual(sumA, sumB) {
		t.Fatalf("two identical runs produced different summaries:\n%+v\n%+v", sumA, sumB)
	}

	sumC, bytesC := runCampaign(t, t.TempDir(), 1, nil)
	if !bytes.Equal(bytesA, bytesC) {
		t.Fatal("worker count changed the JSONL bytes")
	}
	if !reflect.DeepEqual(sumA, sumC) {
		t.Fatal("worker count changed the summary")
	}
	if sumA.Targets != 24 || sumA.Measured == 0 {
		t.Fatalf("suspicious summary: %+v", sumA)
	}
	// linux24 and lb-pool dual targets must be excluded, not errored.
	if sumA.Excluded == 0 {
		t.Fatalf("expected IPID exclusions, got none: %+v", sumA)
	}
}

// TestCampaignResume is the checkpoint contract: stop after K results,
// resume, and the final JSONL and summary equal an uninterrupted run's.
func TestCampaignResume(t *testing.T) {
	full, fullBytes := runCampaign(t, t.TempDir(), 8, nil)

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	// Phase 1: run the first 7 targets, checkpointing every result.
	runCampaign(t, dir, 8, func(c *Config) {
		c.CheckpointPath = ckpt
		c.CheckpointEvery = 1
		c.StopAfter = 7
	})
	ck, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Done != 7 {
		t.Fatalf("checkpoint done = %d, want 7", ck.Done)
	}
	// Phase 2: resume to completion.
	resumed, resumedBytes := runCampaign(t, dir, 8, func(c *Config) {
		c.CheckpointPath = ckpt
		c.Resume = true
	})
	if !bytes.Equal(fullBytes, resumedBytes) {
		t.Fatal("resumed JSONL differs from uninterrupted run")
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatalf("resumed summary differs from uninterrupted run:\n%+v\n%+v", full, resumed)
	}
}

// TestCampaignResumeStopAfterWindows splits one campaign into three
// StopAfter windows chained by checkpoint/resume: the final JSONL, CSV and
// (histogram-based) summary must be byte- and value-identical to an
// uninterrupted run's.
func TestCampaignResumeStopAfterWindows(t *testing.T) {
	fullDir := t.TempDir()
	full, fullJSONL := runCampaign(t, fullDir, 8, func(c *Config) {
		c.CSVPath = filepath.Join(fullDir, "out.csv")
	})
	fullCSV, err := os.ReadFile(filepath.Join(fullDir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	csv := filepath.Join(dir, "out.csv")
	var sum *Summary
	var jsonl []byte
	// Three windows over the 24 targets: 9 + 9 + the remaining 6.
	for i, window := range []int{9, 9, 0} {
		sum, jsonl = runCampaign(t, dir, 8, func(c *Config) {
			c.CSVPath = csv
			c.CheckpointPath = ckpt
			c.Resume = i > 0
			c.StopAfter = window
		})
	}
	if !bytes.Equal(fullJSONL, jsonl) {
		t.Fatal("three-window JSONL differs from uninterrupted run")
	}
	gotCSV, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullCSV, gotCSV) {
		t.Fatal("three-window CSV differs from uninterrupted run")
	}
	if !reflect.DeepEqual(full, sum) {
		t.Fatalf("three-window summary differs from uninterrupted run:\n%+v\n%+v", full, sum)
	}
}

// TestReplayOutputLongRecord guards the resume path against records longer
// than any scanner buffer: a multi-megabyte JSONL line must replay, and a
// corrupt record must be reported by index.
func TestReplayOutputLongRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	huge := &TargetResult{Index: 0, Name: strings.Repeat("x", 2<<20), Test: "single", Attempts: 1}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewJSONLSink(f)
	if err := sink.Emit(huge); err != nil {
		t.Fatal(err)
	}
	if err := sink.Emit(&TargetResult{Index: 1, Name: "small", Test: "single", Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := replayOutput(path, 2)
	if err != nil {
		t.Fatalf("replay of >1MiB record failed: %v", err)
	}
	if len(got) != 2 || len(got[0].Name) != 2<<20 || got[1].Name != "small" {
		t.Fatal("long-record replay corrupted the results")
	}

	// A corrupt record reports its index.
	if err := os.WriteFile(path, []byte("{\"index\":0,\"attempts\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = replayOutput(path, 2)
	if err == nil || !strings.Contains(err.Error(), "record 1") {
		t.Fatalf("corrupt record not reported by index: %v", err)
	}
}

// TestReplayOutputUnterminatedTail checks that a partial final line — a
// crash mid-write, never acknowledged by a checkpoint — is truncated and
// re-probed rather than replayed or fatal.
func TestReplayOutputUnterminatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	content := []byte("{\"index\":0,\"attempts\":1}\n{\"index\":1,\"atte")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayOutput(path, 2); err == nil {
		t.Fatal("checkpoint claiming more records than terminated lines not rejected")
	}
	// Restore (replayOutput may have truncated) and replay just the intact
	// prefix: the partial tail must be dropped from the file.
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := replayOutput(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("prefix replay wrong: %+v", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"index\":0,\"attempts\":1}\n" {
		t.Fatalf("partial tail not truncated: %q", data)
	}
}

// TestCampaignResumeTruncatesUnacknowledged simulates a crash where the
// output ran ahead of the checkpoint: extra records past the checkpoint
// must be dropped and re-probed to the same bytes.
func TestCampaignResumeTruncatesUnacknowledged(t *testing.T) {
	_, fullBytes := runCampaign(t, t.TempDir(), 8, nil)

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	runCampaign(t, dir, 8, func(c *Config) {
		c.CheckpointPath = ckpt
		c.CheckpointEvery = 1
		c.StopAfter = 9
	})
	// Claim fewer emitted than the file holds, as after a crash between
	// output write and checkpoint save.
	targets, _ := Enumerate(smallSpec())
	ck := Checkpoint{Fingerprint: Fingerprint(targets, 4), Done: 5}
	if err := ck.Save(ckpt); err != nil {
		t.Fatal(err)
	}
	_, resumedBytes := runCampaign(t, dir, 8, func(c *Config) {
		c.CheckpointPath = ckpt
		c.Resume = true
	})
	if !bytes.Equal(fullBytes, resumedBytes) {
		t.Fatal("resume after over-written output differs from uninterrupted run")
	}
}

// TestCheckpointNeverAheadOfOutput is the crash-safety invariant: at the
// moment a checkpoint is durably saved, the output file must already hold
// at least that many complete records — otherwise a crash right after the
// save leaves an unresumable campaign. Observed through the Progress
// callback, which runs after each emit (and thus after any checkpoint).
func TestCheckpointNeverAheadOfOutput(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ckpt := filepath.Join(dir, "ckpt.json")
	runCampaign(t, dir, 8, func(c *Config) {
		c.CheckpointPath = ckpt
		c.CheckpointEvery = 1
		c.Progress = func(done, total int) {
			ck, err := LoadCheckpoint(ckpt)
			if err != nil {
				t.Fatalf("at done=%d: %v", done, err)
			}
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatalf("at done=%d: %v", done, err)
			}
			if lines := bytes.Count(data, []byte("\n")); lines < ck.Done {
				t.Fatalf("checkpoint acknowledges %d records but output holds %d", ck.Done, lines)
			}
		}
	})
}

// TestCampaignResumeCSV checks the resume contract extends to the CSV
// sink: the resumed CSV equals an uninterrupted run's byte for byte.
func TestCampaignResumeCSV(t *testing.T) {
	fullDir := t.TempDir()
	runCampaign(t, fullDir, 8, func(c *Config) {
		c.CSVPath = filepath.Join(fullDir, "out.csv")
	})
	fullCSV, err := os.ReadFile(filepath.Join(fullDir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	csv := filepath.Join(dir, "out.csv")
	runCampaign(t, dir, 8, func(c *Config) {
		c.CSVPath = csv
		c.CheckpointPath = ckpt
		c.CheckpointEvery = 1
		c.StopAfter = 7
	})
	runCampaign(t, dir, 8, func(c *Config) {
		c.CSVPath = csv
		c.CheckpointPath = ckpt
		c.Resume = true
	})
	resumedCSV, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullCSV, resumedCSV) {
		t.Fatal("resumed CSV differs from uninterrupted run")
	}
}

// TestCheckpointFingerprintMismatch checks that a checkpoint cannot
// resume a different campaign.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.json")
	if err := (Checkpoint{Fingerprint: 0xdead, Done: 3}).Save(ckpt); err != nil {
		t.Fatal(err)
	}
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{
		Targets:        targets,
		Samples:        4,
		OutputPath:     filepath.Join(dir, "out.jsonl"),
		CheckpointPath: ckpt,
		Resume:         true,
	})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("fingerprint mismatch not rejected: %v", err)
	}
}

// TestCSVSink checks header, row cadence and resume header suppression.
func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewCSVSink(&buf)
	r := &TargetResult{Index: 0, Name: "n", Profile: "p", Impairment: "i", Test: "single", Attempts: 1}
	if err := s.Emit(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Emit(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,name,profile") {
		t.Fatalf("bad header: %s", lines[0])
	}

}

// TestAggregatorShardingInvariance checks that spreading the same results
// over many shards or one produces the same summary.
func TestAggregatorShardingInvariance(t *testing.T) {
	targets, err := Enumerate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var results []*TargetResult
	for _, tg := range targets {
		results = append(results, ProbeTarget(tg, 4, 0))
	}

	one := NewAggregator(1)
	for _, r := range results {
		one.Shard(0).Add(r)
	}
	many := NewAggregator(8)
	for i, r := range results {
		many.Shard(7 - i%8).Add(r) // adversarial spread
	}
	if !reflect.DeepEqual(one.Summary(), many.Summary()) {
		t.Fatal("shard layout changed the summary")
	}
}

// TestSummaryQuantilesMatchRawPool is the histogram-resolution acceptance
// contract on the full deterministic 2016-target campaign: every summary
// quantile must agree with the quantile of the raw per-target sample pool
// (what the aggregator used to hold in memory) to within one bin width.
func TestSummaryQuantilesMatchRawPool(t *testing.T) {
	if testing.Short() {
		t.Skip("full 2016-target campaign")
	}
	targets, err := Enumerate(EnumSpec{Seeds: 7, BaseSeed: 719})
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2016 {
		t.Fatalf("default enumeration is %d targets, want 2016", len(targets))
	}
	var pathRates, rtts, exposures []float64
	sum, err := Run(Config{
		Targets: targets,
		Samples: 8,
		Workers: 16,
		Sinks: []Sink{FuncSink(func(r *TargetResult) error {
			if r.Err != "" || r.DCTExcluded != "" {
				return nil
			}
			if rate, ok := r.PathRate(); ok {
				pathRates = append(pathRates, rate)
			}
			if r.RTTMicros > 0 {
				rtts = append(rtts, float64(r.RTTMicros))
			}
			if r.SeqReceived > 0 {
				exposures = append(exposures, r.SeqDupthreshExposure)
			}
			return nil
		})},
	})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, got RateSummary, raw []float64, binWidth func(x float64) float64) {
		t.Helper()
		if got.N != len(raw) {
			t.Fatalf("%s: N = %d, raw pool has %d", name, got.N, len(raw))
		}
		if len(raw) == 0 {
			return
		}
		cdf := stats.NewCDF(raw)
		for _, q := range []struct {
			p    float64
			got  float64
			name string
		}{{0.50, got.P50, "p50"}, {0.90, got.P90, "p90"}, {0.99, got.P99, "p99"}} {
			rawQ := cdf.Quantile(q.p)
			if diff := math.Abs(q.got - rawQ); diff > binWidth(rawQ) {
				t.Errorf("%s %s: histogram %v vs raw %v, off by %v > bin width %v",
					name, q.name, q.got, rawQ, diff, binWidth(rawQ))
			}
		}
		rawSum := stats.Summarize(raw)
		if got.Min != rawSum.Min || got.Max != rawSum.Max {
			t.Errorf("%s: min/max %v/%v not exact vs raw %v/%v", name, got.Min, got.Max, rawSum.Min, rawSum.Max)
		}
	}
	rateBin := func(x float64) float64 { return 1.0 / 256 }
	check("path-rates", sum.PathRates, pathRates, rateBin)
	check("dupthresh-exposure", sum.DupthreshExposure, exposures, rateBin)
	check("rtt", sum.RTTMicros, rtts, func(x float64) float64 {
		h := stats.NewHistogram(stats.LogEdges(1, 1e9, 288))
		return h.BinWidth(x)
	})
	if sum.PathRates.N == 0 || sum.RTTMicros.N == 0 || sum.DupthreshExposure.N == 0 {
		t.Fatalf("empty pools: %+v", sum)
	}
}

// TestAggregatorSequenceMetrics checks the RFC 4737 fields flow from a
// transfer probe through the aggregator into the summary.
func TestAggregatorSequenceMetrics(t *testing.T) {
	agg := NewAggregator(2)
	// Synthetic transfer results: one deeply reordered, one clean.
	agg.Shard(0).Add(&TargetResult{
		Test: "transfer", Attempts: 1, FwdValid: 10, FwdReordered: 4, FwdRate: 0.4,
		AnyReordering: true, RTTMicros: 1500,
		SeqReceived: 20, SeqMaxExtent: 7, SeqNReordering: 4, SeqDupthreshExposure: 0.2,
	})
	agg.Shard(1).Add(&TargetResult{
		Test: "transfer", Attempts: 1, FwdValid: 10, FwdRate: 0,
		RTTMicros: 900, SeqReceived: 20,
	})
	// A non-transfer result must not contribute to the sequence pools.
	agg.Shard(0).Add(&TargetResult{
		Test: "single", Attempts: 1, FwdValid: 8, FwdRate: 0.25, RTTMicros: 700,
	})
	sum := agg.Summary()
	if sum.SeqMaxExtents.N != 2 || sum.DupthreshExposure.N != 2 {
		t.Fatalf("sequence pools: %+v", sum)
	}
	if sum.SeqMaxExtents.Max != 7 || sum.SeqMaxExtents.Min != 0 {
		t.Fatalf("extent min/max: %+v", sum.SeqMaxExtents)
	}
	if sum.DupthreshExposure.Max != 0.2 {
		t.Fatalf("exposure max: %+v", sum.DupthreshExposure)
	}
	var buf bytes.Buffer
	sum.WriteText(&buf)
	if !strings.Contains(buf.String(), "rfc4737 max reordering extent") ||
		!strings.Contains(buf.String(), "dupthresh-3 exposure") {
		t.Fatalf("summary text missing sequence lines:\n%s", buf.String())
	}
}

// TestCampaignWindowPlumbed checks every scheduler knob on Config —
// Window in particular, which used to be unreachable — survives the
// mapping into SchedulerConfig, and that a tightly windowed campaign
// still completes with the standard output.
func TestCampaignWindowPlumbed(t *testing.T) {
	cfg := Config{
		Workers: 3, Retries: 2, Backoff: 7 * time.Millisecond,
		RatePerSec: 11, Burst: 5, Window: 13,
	}
	got := cfg.schedulerConfig()
	want := SchedulerConfig{
		Workers: 3, Retries: 2, Backoff: 7 * time.Millisecond,
		RatePerSec: 11, Burst: 5, Window: 13,
	}
	if got != want {
		t.Fatalf("schedulerConfig() = %+v, want %+v", got, want)
	}

	_, bytesDefault := runCampaign(t, t.TempDir(), 8, nil)
	_, bytesWindowed := runCampaign(t, t.TempDir(), 8, func(c *Config) {
		c.Window = 1 // clamped up to Workers by NewScheduler, but exercises the path
	})
	if !bytes.Equal(bytesDefault, bytesWindowed) {
		t.Fatal("window size changed campaign output")
	}
}

// TestSummaryWriteTextDeterministic locks the report rendering down.
func TestSummaryWriteTextDeterministic(t *testing.T) {
	sum, _ := runCampaign(t, t.TempDir(), 4, nil)
	var a, b bytes.Buffer
	sum.WriteText(&a)
	sum.WriteText(&b)
	if a.String() != b.String() || a.Len() == 0 {
		t.Fatal("summary rendering unstable or empty")
	}
}
