// Package tcpsender implements a client-side TCP bulk-data sender with
// Reno-style congestion control — the protocol the paper's introduction is
// about. Its fast-retransmit optimization "assumes that packet reordering
// is sufficiently rare that any reordering event spanning more than a few
// packets implies a loss"; when that assumption fails, reordering is
// misread as congestion and throughput collapses. The sender also
// implements an adaptive duplicate-ACK threshold in the spirit of the
// proposals the paper cites ([3] Blanton & Allman; [20] DSACK-based
// schemes), whose evaluation is exactly what the paper's measurement
// techniques exist to enable.
//
// The sender is event-driven on a sim.Loop, speaks real packets through a
// netem.Node, and is exercised against the same server stack the
// measurement tools probe — so the reordering processes measured by
// internal/core are the ones degrading it.
package tcpsender

import (
	"net/netip"
	"time"

	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/sim"
)

// Config tunes the sender.
type Config struct {
	// MSS is the segment size (default 1460).
	MSS int
	// Bytes is the amount of application data to transfer.
	Bytes int
	// DupThresh is the initial duplicate-ACK threshold for fast
	// retransmit (default 3, the classic Reno value).
	DupThresh int
	// Adaptive enables the reordering-tolerant behaviour: when a fast
	// retransmission is detected to have been spurious (the cumulative
	// acknowledgment covering it arrives sooner after the retransmission
	// than a network round trip allows), the threshold is raised by one,
	// up to MaxDupThresh.
	Adaptive bool
	// MaxDupThresh caps the adaptive threshold (default 12).
	MaxDupThresh int
	// RTO is the initial retransmission timeout (default 1s; doubled on
	// each back-to-back expiry).
	RTO time.Duration
	// InitialCwnd is the initial congestion window in segments
	// (default 2).
	InitialCwnd int
	// Port is the destination port (default 80).
	Port uint16
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.Bytes == 0 {
		c.Bytes = 256 << 10
	}
	if c.DupThresh == 0 {
		c.DupThresh = 3
	}
	if c.MaxDupThresh == 0 {
		c.MaxDupThresh = 12
	}
	if c.RTO == 0 {
		c.RTO = time.Second
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 2
	}
	if c.Port == 0 {
		c.Port = 80
	}
	return c
}

// Stats summarizes a completed (or in-progress) transfer.
type Stats struct {
	BytesAcked int
	Elapsed    time.Duration
	// FastRetransmits counts dupthresh-triggered retransmissions;
	// SpuriousFast of those were detected as reordering, not loss.
	FastRetransmits int
	SpuriousFast    int
	// Timeouts counts RTO expirations.
	Timeouts int
	// FinalDupThresh is the threshold at the end (changes under Adaptive).
	FinalDupThresh int
	// CwndHalvings counts multiplicative decreases (fast retransmit and
	// timeout), the throughput-relevant damage reordering inflicts.
	CwndHalvings int
}

// Throughput returns the goodput in bits per second.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.BytesAcked) * 8 / s.Elapsed.Seconds()
}

type state int

const (
	stateClosed state = iota
	stateSynSent
	stateEstablished
	stateDone
)

// Sender is one bulk transfer in progress.
type Sender struct {
	cfg    Config
	loop   *sim.Loop
	local  netip.Addr
	remote netip.Addr
	lport  uint16
	out    netem.Node
	ids    *netem.FrameIDs
	rng    *sim.Rand

	st     state
	iss    uint32
	rcvNxt uint32
	sndUna uint32
	sndNxt uint32
	end    uint32 // one past the last byte to send

	cwnd      int // bytes
	ssthresh  int
	peerWnd   int
	dupThresh int
	dupAcks   int

	inRecovery bool
	recover    uint32 // NewReno recovery point

	rtoTimer   sim.Timer
	rtoBackoff time.Duration

	// Per-connection scratch: decoded-packet cell, payload buffer, cached
	// RTO callback and optional arena, so steady-state transmission and
	// receive do not allocate per segment.
	arena      *netem.Arena
	rxPkt      packet.Packet
	payloadBuf []byte
	rtoFn      func()

	// Spurious-retransmit detection state.
	minRTT       time.Duration
	sendTimes    map[uint32]sim.Time // first-transmission time per segment seq
	lastRexmitAt sim.Time
	lastRexmit   uint32
	rexmitLive   bool

	started  sim.Time
	finished sim.Time
	stats    Stats
	onDone   func()
}

// New builds a sender from local to remote:port, transmitting via out.
func New(loop *sim.Loop, cfg Config, local, remote netip.Addr, ids *netem.FrameIDs, rng *sim.Rand, out netem.Node) *Sender {
	cfg = cfg.Defaults()
	s := &Sender{
		cfg: cfg, loop: loop, local: local, remote: remote,
		lport: 41000, out: out, ids: ids, rng: rng,
		dupThresh: cfg.DupThresh,
		minRTT:    time.Hour, // until measured
		sendTimes: make(map[uint32]sim.Time),
	}
	s.rtoFn = s.onRTO
	return s
}

// Reset returns the sender to the state New(loop, cfg, local, remote, ids,
// rng, out) would produce, reusing the struct's scratch buffers, send-times
// map and cached RTO callback — the pooling hook scenario owners use to
// reuse cross-traffic senders across topology rebuilds. The caller must
// have Reset the shared loop first (which invalidates any pending RTO
// timer; the zero Timer left here is inert) and is expected to re-point the
// arena with SetArena, as at construction.
func (s *Sender) Reset(cfg Config, local, remote netip.Addr, rng *sim.Rand, out netem.Node) {
	cfg = cfg.Defaults()
	s.cfg, s.local, s.remote = cfg, local, remote
	s.lport, s.out, s.rng = 41000, out, rng
	s.st = stateClosed
	s.iss, s.rcvNxt, s.sndUna, s.sndNxt, s.end = 0, 0, 0, 0, 0
	s.cwnd, s.ssthresh, s.peerWnd = 0, 0, 0
	s.dupThresh, s.dupAcks = cfg.DupThresh, 0
	s.inRecovery, s.recover = false, 0
	s.rtoTimer = sim.Timer{}
	s.rtoBackoff = 0
	s.minRTT = time.Hour
	clear(s.sendTimes)
	s.lastRexmitAt, s.lastRexmit, s.rexmitLive = 0, 0, false
	s.started, s.finished = 0, 0
	s.stats = Stats{}
	s.onDone = nil
}

// OnDone registers a completion callback.
func (s *Sender) OnDone(fn func()) { s.onDone = fn }

// SetArena directs the sender to allocate transmitted datagrams and frames
// from a. A nil arena (the default) falls back to the garbage collector.
func (s *Sender) SetArena(a *netem.Arena) { s.arena = a }

// SetOutput sets the forward-path entry the sender transmits into. It
// exists because simnet.AttachEndpoint needs the sender (as the reverse
// path's terminal) before it can hand back the forward entry; call it
// before Start.
func (s *Sender) SetOutput(out netem.Node) { s.out = out }

// Done reports whether the transfer completed.
func (s *Sender) Done() bool { return s.st == stateDone }

// Stats returns a snapshot; Elapsed covers handshake through the final ACK
// (or the present, if unfinished).
func (s *Sender) Stats() Stats {
	st := s.stats
	if s.st != stateClosed && packet.SeqGT(s.sndUna, s.iss) {
		st.BytesAcked = int(s.sndUna - (s.iss + 1))
	}
	endAt := s.finished
	if s.st != stateDone {
		endAt = s.loop.Now()
	}
	st.Elapsed = endAt.Sub(s.started)
	st.FinalDupThresh = s.dupThresh
	return st
}

// Start opens the connection and begins transmitting.
func (s *Sender) Start() {
	if s.st != stateClosed {
		return
	}
	s.iss = s.rng.Uint32()
	s.sndUna = s.iss
	s.sndNxt = s.iss + 1
	s.end = s.iss + 1 + uint32(s.cfg.Bytes)
	s.cwnd = s.cfg.InitialCwnd * s.cfg.MSS
	s.ssthresh = 64 << 10
	s.peerWnd = 65535
	s.rtoBackoff = s.cfg.RTO
	s.started = s.loop.Now()
	s.st = stateSynSent
	s.transmit(packet.FlagSYN, s.iss, 0, nil, []packet.TCPOption{packet.MSSOption(uint16(s.cfg.MSS))})
	s.armRTO()
}

// Input implements netem.Node: packets from the network. Frames carrying a
// decoded view are consumed without a decode; byte-form frames fall back to
// a scratch DecodeInto (no per-frame allocation either way).
func (s *Sender) Input(f *netem.Frame) {
	p := &s.rxPkt
	if v := f.View(); v != nil {
		if v.IP.Protocol != packet.ProtoTCP {
			return
		}
		v.ToPacket(p)
	} else if err := packet.DecodeInto(p, f.Data); err != nil || p.TCP == nil {
		return
	}
	if p.IP.Dst != s.local || p.IP.Src != s.remote {
		return
	}
	h := p.TCP
	if h.SrcPort != s.cfg.Port || h.DstPort != s.lport {
		return
	}
	switch s.st {
	case stateSynSent:
		if h.HasFlags(packet.FlagRST) {
			// Connection refused: freeze as done with nothing transferred.
			s.st = stateDone
			s.finished = s.loop.Now()
			s.stopRTO()
			return
		}
		if h.HasFlags(packet.FlagSYN|packet.FlagACK) && h.Ack == s.iss+1 {
			s.rcvNxt = h.Seq + 1
			s.sndUna = s.iss + 1
			s.st = stateEstablished
			s.observeRTT(s.loop.Now().Sub(s.started))
			s.transmit(packet.FlagACK, s.sndUna, s.rcvNxt, nil, nil)
			s.trySend()
		}
	case stateEstablished:
		if h.HasFlags(packet.FlagRST) {
			s.st = stateDone // aborted; stats freeze where they are
			s.finished = s.loop.Now()
			s.stopRTO()
			return
		}
		if h.HasFlags(packet.FlagACK) {
			s.handleAck(h)
		}
	}
}

func (s *Sender) handleAck(h *packet.TCPHeader) {
	s.peerWnd = int(h.Window)
	switch {
	case packet.SeqGT(h.Ack, s.sndUna) && packet.SeqLEQ(h.Ack, s.sndNxt):
		s.newAck(h.Ack)
	case h.Ack == s.sndUna && packet.SeqGT(s.sndNxt, s.sndUna):
		s.duplicateAck()
	}
	s.trySend()
	if s.sndUna == s.end && s.st == stateEstablished {
		s.st = stateDone
		s.finished = s.loop.Now()
		s.stopRTO()
		if s.onDone != nil {
			s.onDone()
		}
	}
}

// newAck processes a cumulative advance.
func (s *Sender) newAck(ack uint32) {
	acked := int(ack - s.sndUna)

	// RTT sample from a first-transmission segment (Karn's rule: skip
	// anything retransmitted).
	if t0, ok := s.sendTimes[s.sndUna]; ok {
		if !s.rexmitLive || packet.SeqLT(s.sndUna, s.lastRexmit) {
			s.observeRTT(s.loop.Now().Sub(t0))
		}
	}
	for seq := range s.sendTimes {
		if packet.SeqLT(seq, ack) {
			delete(s.sendTimes, seq)
		}
	}

	// Spurious fast-retransmit detection: the ACK covering the
	// retransmitted segment arrived sooner after the retransmission than
	// a round trip — the original, merely reordered, must have produced
	// it (the detection heuristic of the adaptive schemes).
	if s.rexmitLive && packet.SeqGT(ack, s.lastRexmit) {
		if s.loop.Now().Sub(s.lastRexmitAt) < s.minRTT*9/10 {
			s.stats.SpuriousFast++
			if s.cfg.Adaptive && s.dupThresh < s.cfg.MaxDupThresh {
				s.dupThresh++
			}
		}
		s.rexmitLive = false
	}

	s.sndUna = ack
	s.dupAcks = 0
	s.rtoBackoff = s.cfg.RTO
	if s.inRecovery {
		if packet.SeqGEQ(ack, s.recover) {
			// Full recovery: deflate to ssthresh.
			s.inRecovery = false
			s.cwnd = s.ssthresh
		} else {
			// NewReno partial ACK: retransmit the next hole, stay in
			// recovery.
			s.retransmitOne()
			return
		}
	} else {
		// Normal growth: slow start below ssthresh, else congestion
		// avoidance.
		if s.cwnd < s.ssthresh {
			s.cwnd += min(acked, s.cfg.MSS)
		} else {
			s.cwnd += max(1, s.cfg.MSS*s.cfg.MSS/s.cwnd)
		}
	}
	if packet.SeqLT(s.sndUna, s.sndNxt) {
		s.armRTO()
	} else {
		s.stopRTO()
	}
}

// duplicateAck counts dupacks and triggers fast retransmit at the
// threshold — the paper's central protocol mechanism.
func (s *Sender) duplicateAck() {
	s.dupAcks++
	if s.inRecovery {
		s.cwnd += s.cfg.MSS // inflation
		return
	}
	if s.dupAcks < s.dupThresh {
		return
	}
	// Fast retransmit + fast recovery.
	s.stats.FastRetransmits++
	s.stats.CwndHalvings++
	flight := int(s.sndNxt - s.sndUna)
	s.ssthresh = max(flight/2, 2*s.cfg.MSS)
	s.cwnd = s.ssthresh + 3*s.cfg.MSS
	s.inRecovery = true
	s.recover = s.sndNxt
	s.lastRexmit = s.sndUna
	s.lastRexmitAt = s.loop.Now()
	s.rexmitLive = true
	s.retransmitOne()
	s.armRTO()
}

// retransmitOne resends the segment at sndUna.
func (s *Sender) retransmitOne() {
	n := uint32(s.cfg.MSS)
	if rem := s.end - s.sndUna; rem < n {
		n = rem
	}
	if n == 0 {
		return
	}
	s.sendData(s.sndUna, n)
}

// onRTO handles a retransmission timeout: collapse to slow start.
func (s *Sender) onRTO() {
	if s.st != stateEstablished || s.sndUna == s.end {
		return
	}
	s.stats.Timeouts++
	s.stats.CwndHalvings++
	flight := int(s.sndNxt - s.sndUna)
	s.ssthresh = max(flight/2, 2*s.cfg.MSS)
	s.cwnd = s.cfg.MSS
	s.dupAcks = 0
	s.inRecovery = false
	s.rexmitLive = false
	s.retransmitOne()
	s.rtoBackoff *= 2
	if s.rtoBackoff > time.Minute {
		s.rtoBackoff = time.Minute
	}
	s.armRTO()
}

// trySend transmits new data permitted by the congestion and peer windows.
func (s *Sender) trySend() {
	if s.st != stateEstablished {
		return
	}
	wnd := min(s.cwnd, s.peerWnd)
	for packet.SeqLT(s.sndNxt, s.end) {
		flight := int(s.sndNxt - s.sndUna)
		if flight+s.cfg.MSS > wnd && flight > 0 {
			break
		}
		n := uint32(s.cfg.MSS)
		if rem := s.end - s.sndNxt; rem < n {
			n = rem
		}
		s.sendTimes[s.sndNxt] = s.loop.Now()
		s.sendData(s.sndNxt, n)
		s.sndNxt += n
	}
	if packet.SeqLT(s.sndUna, s.sndNxt) && !s.rtoTimer.Pending() {
		s.armRTO()
	}
}

// sendData transmits payload bytes [seq, seq+n). Content avoids '\n' so
// the receiving stack's request-triggered application stays dormant.
func (s *Sender) sendData(seq, n uint32) {
	if cap(s.payloadBuf) < int(n) {
		s.payloadBuf = make([]byte, n)
	}
	payload := s.payloadBuf[:n]
	for i := range payload {
		payload[i] = 'a' + byte((seq+uint32(i))%25)
	}
	s.transmit(packet.FlagACK|packet.FlagPSH, seq, s.rcvNxt, payload, nil)
}

func (s *Sender) transmit(flags uint8, seq, ack uint32, payload []byte, opts []packet.TCPOption) {
	hdr := &packet.TCPHeader{
		SrcPort: s.lport, DstPort: s.cfg.Port,
		Seq: seq, Ack: ack, Flags: flags, Window: 65535, Options: opts,
	}
	ip := &packet.IPv4Header{Src: s.local, Dst: s.remote, ID: s.rng.Uint16(), Flags: packet.FlagDF}
	f, err := s.arena.NewTCPFrame(s.ids.Next(), s.loop.Now(), ip, hdr, payload)
	if err != nil {
		panic("tcpsender: encode: " + err.Error())
	}
	s.out.Input(f)
}

func (s *Sender) observeRTT(rtt time.Duration) {
	if rtt > 0 && rtt < s.minRTT {
		s.minRTT = rtt
	}
}

// armRTO (re)starts the retransmission timer. Reschedule re-sifts the
// pending event in place — the pop-then-push pattern every cumulative ACK
// hits — instead of lazily cancelling and pushing a replacement.
func (s *Sender) armRTO() {
	s.rtoTimer = s.loop.Reschedule(s.rtoTimer, s.loop.Now().Add(s.rtoBackoff), s.rtoFn)
}

func (s *Sender) stopRTO() {
	s.rtoTimer.Stop()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
