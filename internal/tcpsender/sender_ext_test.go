package tcpsender_test

import (
	"testing"
	"time"

	"reorder/internal/host"
	"reorder/internal/sim"
	"reorder/internal/simnet"
	"reorder/internal/tcpsender"
)

// run wires a sender into a scenario and drives the simulation until the
// transfer completes or the virtual deadline passes.
func run(t *testing.T, cfg tcpsender.Config, sc simnet.Config, deadline time.Duration) (*tcpsender.Sender, tcpsender.Stats) {
	t.Helper()
	n := simnet.New(sc)
	s := tcpsender.New(n.Loop, cfg, n.ProbeAddr(), n.ServerAddr(), n.IDs, sim.NewRand(sc.Seed^0x5e4d, 7), nil)
	s.SetOutput(n.AttachEndpoint(s))
	s.Start()
	n.Loop.RunUntil(sim.Time(deadline))
	return s, s.Stats()
}

func cleanScenario(seed uint64) simnet.Config {
	return simnet.Config{Seed: seed, Server: host.FreeBSD4()}
}

func TestTransferCompletesCleanPath(t *testing.T) {
	cfg := tcpsender.Config{Bytes: 128 << 10}
	s, st := run(t, cfg, cleanScenario(1), 30*time.Second)
	if !s.Done() {
		t.Fatalf("transfer incomplete: %+v", st)
	}
	if st.BytesAcked != 128<<10 {
		t.Fatalf("BytesAcked = %d", st.BytesAcked)
	}
	if st.FastRetransmits != 0 || st.Timeouts != 0 {
		t.Fatalf("retransmissions on a clean path: %+v", st)
	}
	// 10 Mbps access link, 10ms RTT: the transfer should take on the
	// order of a second, not tens.
	if st.Elapsed > 5*time.Second {
		t.Fatalf("Elapsed = %v", st.Elapsed)
	}
	if st.Throughput() < 100_000 {
		t.Fatalf("Throughput = %.0f bps", st.Throughput())
	}
}

func TestSlowStartGrowth(t *testing.T) {
	// With initial cwnd 2 and a clean path, early progress doubles per
	// RTT; just assert the transfer is not stuck at one segment per RTT:
	// 64 KiB in well under 44 RTTs (=64KiB/1460).
	cfg := tcpsender.Config{Bytes: 64 << 10}
	s, st := run(t, cfg, cleanScenario(2), 30*time.Second)
	if !s.Done() {
		t.Fatal("incomplete")
	}
	rtts := int(st.Elapsed / (10 * time.Millisecond))
	if rtts > 30 {
		t.Fatalf("took %d RTTs for 45 segments: no window growth", rtts)
	}
}

func TestLossTriggersRecoveryAndCompletes(t *testing.T) {
	cfg := tcpsender.Config{Bytes: 96 << 10}
	sc := cleanScenario(3)
	sc.Forward.Loss = 0.02
	s, st := run(t, cfg, sc, 120*time.Second)
	if !s.Done() {
		t.Fatalf("transfer incomplete under 2%% loss: %+v", st)
	}
	if st.FastRetransmits+st.Timeouts == 0 {
		t.Fatal("no recovery actions under loss")
	}
	if st.SpuriousFast > st.FastRetransmits/2 {
		t.Fatalf("loss recoveries misdetected as spurious: %+v", st)
	}
}

func TestReorderingCausesSpuriousFastRetransmit(t *testing.T) {
	// The paper's motivating pathology: a loss-free path that reorders
	// deeply (L2 ARQ) makes Reno fast-retransmit fire spuriously and
	// halve cwnd.
	cfg := tcpsender.Config{Bytes: 96 << 10}
	sc := cleanScenario(4)
	sc.Forward.SwapProb = 0.15
	s, st := run(t, cfg, sc, 120*time.Second)
	if !s.Done() {
		t.Fatalf("incomplete: %+v", st)
	}
	_ = s
	// Adjacent swaps produce extent-1 reordering: dupthresh 3 should
	// rarely fire. Now deep reordering:
	sc2 := cleanScenario(5)
	sc2.Forward.LinkRate = 100_000_000        // 1460B spacing ~120µs: jitter displaces many positions
	sc2.Forward.Jitter = 3 * time.Millisecond // independent per-packet delay: deep reordering
	_, st2 := run(t, cfg, sc2, 240*time.Second)
	if st2.FastRetransmits == 0 {
		t.Fatalf("deep reordering triggered no fast retransmits: %+v", st2)
	}
	if st2.SpuriousFast == 0 {
		t.Fatalf("spurious detection found nothing on a loss-free path: %+v", st2)
	}
}

func TestReorderingDegradesThroughput(t *testing.T) {
	cfg := tcpsender.Config{Bytes: 128 << 10}
	base := cleanScenario(6)
	base.Forward.LinkRate = 100_000_000
	_, clean := run(t, cfg, base, 240*time.Second)
	dirty := cleanScenario(6)
	dirty.Forward.LinkRate = 100_000_000
	dirty.Forward.Jitter = 3 * time.Millisecond
	_, reordered := run(t, cfg, dirty, 240*time.Second)
	if reordered.Throughput() >= clean.Throughput() {
		t.Fatalf("reordering did not hurt: clean %.0f vs reordered %.0f bps",
			clean.Throughput(), reordered.Throughput())
	}
}

func TestAdaptiveDupThreshRecoversThroughput(t *testing.T) {
	// The cited proposals' claim: raising dupthresh on detected spurious
	// retransmissions restores much of the lost throughput on a
	// reordering (loss-free) path.
	mk := func(adaptive bool) tcpsender.Stats {
		cfg := tcpsender.Config{Bytes: 128 << 10, Adaptive: adaptive}
		sc := cleanScenario(7)
		sc.Forward.LinkRate = 100_000_000
		sc.Forward.Jitter = 3 * time.Millisecond
		_, st := run(t, cfg, sc, 600*time.Second)
		return st
	}
	fixed := mk(false)
	adaptive := mk(true)
	if adaptive.FinalDupThresh <= 3 {
		t.Fatalf("adaptive threshold never rose: %+v", adaptive)
	}
	if adaptive.CwndHalvings >= fixed.CwndHalvings {
		t.Fatalf("adaptation did not reduce halvings: fixed %d vs adaptive %d",
			fixed.CwndHalvings, adaptive.CwndHalvings)
	}
	if adaptive.Throughput() <= fixed.Throughput() {
		t.Fatalf("adaptation did not help: fixed %.0f vs adaptive %.0f bps",
			fixed.Throughput(), adaptive.Throughput())
	}
}

func TestSenderDefaults(t *testing.T) {
	c := tcpsender.Config{}.Defaults()
	if c.MSS != 1460 || c.DupThresh != 3 || c.Port != 80 || c.InitialCwnd != 2 {
		t.Fatalf("Defaults: %+v", c)
	}
}

func TestStatsBeforeStart(t *testing.T) {
	n := simnet.New(cleanScenario(8))
	s := tcpsender.New(n.Loop, tcpsender.Config{}, n.ProbeAddr(), n.ServerAddr(), n.IDs, sim.NewRand(1, 2), nil)
	s.SetOutput(n.AttachEndpoint(s))
	st := s.Stats()
	if st.BytesAcked != 0 || s.Done() {
		t.Fatalf("pre-start stats: %+v", st)
	}
	// Start twice is harmless.
	s.Start()
	s.Start()
	n.Loop.RunUntil(sim.Time(5 * time.Second))
	if !s.Done() && s.Stats().BytesAcked == 0 {
		t.Fatal("no progress after Start")
	}
}

func TestSenderAbortsOnRST(t *testing.T) {
	// Point the sender at a closed port: the server's RST must stop it.
	cfg := tcpsender.Config{Bytes: 32 << 10, Port: 4444, RTO: 200 * time.Millisecond}
	s, st := run(t, cfg, cleanScenario(9), 10*time.Second)
	if st.BytesAcked != 0 {
		t.Fatalf("acked %d bytes against a closed port", st.BytesAcked)
	}
	_ = s
}

func TestRTORecoversFromWindowLoss(t *testing.T) {
	// A burst of heavy loss can eat an entire window including all
	// dupack fodder: only the RTO can recover. 30% loss makes that
	// likely; the transfer must still complete and count timeouts.
	cfg := tcpsender.Config{Bytes: 32 << 10, RTO: 300 * time.Millisecond}
	sc := cleanScenario(11)
	sc.Forward.Loss = 0.3
	sc.Reverse.Loss = 0.1
	s, st := run(t, cfg, sc, 10*time.Minute)
	if !s.Done() {
		t.Fatalf("incomplete under heavy loss: %+v", st)
	}
	if st.Timeouts == 0 {
		t.Fatalf("no RTO fired under 30%% loss: %+v", st)
	}
}

func TestRTOBackoffBounded(t *testing.T) {
	// Against a silently dropping path the backoff must grow but stay
	// bounded, and the sender must keep trying rather than spin.
	n := simnet.New(simnet.Config{Seed: 12, Server: host.FilteredICMP(host.FreeBSD4()),
		Forward: simnet.PathSpec{Loss: 1.0}})
	s := tcpsender.New(n.Loop, tcpsender.Config{Bytes: 4 << 10, RTO: 100 * time.Millisecond},
		n.ProbeAddr(), n.ServerAddr(), n.IDs, sim.NewRand(1, 2), nil)
	s.SetOutput(n.AttachEndpoint(s))
	s.Start()
	n.Loop.RunUntil(sim.Time(5 * time.Minute))
	if s.Done() {
		t.Fatal("transfer completed through a black hole")
	}
	if s.Stats().BytesAcked != 0 {
		t.Fatal("bytes acked through a black hole")
	}
}
