package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux returns the introspection HTTP handler for a campaign registry:
//
//	/metrics            Prometheus text-format exposition
//	/campaign/progress  JSON Snapshot (mergeable mid-flight summaries)
//	/debug/pprof/...    the standard runtime profiles
//
// The handler is safe to scrape while the campaign runs: every read is an
// atomic shard load, so scraping never blocks a worker or perturbs the
// measurement path.
func NewMux(c *Campaign) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.WritePrometheus(w)
	})
	mux.HandleFunc("/campaign/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (e.g. ":9377" or
// "127.0.0.1:0"; a :0 port is allocated by the OS and reported by Addr).
// It returns once the listener is bound; requests are served on a
// background goroutine until Close.
func Serve(addr string, c *Campaign) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(c), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
