package obs

import (
	"fmt"
	"io"
	"time"

	"reorder/internal/stats"
)

// LatencySummary reduces a merged latency recorder for reporting: exact
// count/min/max, octave-resolution mean and quantiles, all in nanoseconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	MinNs float64 `json:"min_ns"`
	P50Ns float64 `json:"p50_ns"`
	P90Ns float64 `json:"p90_ns"`
	P99Ns float64 `json:"p99_ns"`
	MaxNs float64 `json:"max_ns"`
	SumNs uint64  `json:"sum_ns"`
}

func summarizeLatency(h *stats.Histogram, sum uint64) LatencySummary {
	if h == nil || h.Count() == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: uint64(h.Count()),
		MinNs: h.Min(), MaxNs: h.Max(),
		P50Ns: h.Quantile(0.50), P90Ns: h.Quantile(0.90), P99Ns: h.Quantile(0.99),
		SumNs: sum,
	}
}

// SchedulerSnapshot is the scheduler block of a Snapshot.
type SchedulerSnapshot struct {
	SpanClaims       uint64 `json:"span_claims"`
	WindowStalls     uint64 `json:"window_stalls"`
	WindowStallNanos uint64 `json:"window_stall_ns"`
	Retries          uint64 `json:"retries"`
	BackoffNanos     uint64 `json:"backoff_ns"`
	RateWaitNanos    uint64 `json:"rate_wait_ns"`
	Quiesces         uint64 `json:"quiesces"`
}

// WorkerTotals sums every worker shard.
type WorkerTotals struct {
	Targets        uint64 `json:"targets"`
	Attempts       uint64 `json:"attempts"`
	ArenaResets    uint64 `json:"arena_resets"`
	ArenaBuilds    uint64 `json:"arena_builds"`
	SimEvents      uint64 `json:"sim_events"`
	SimReschedules uint64 `json:"sim_reschedules"`
	SimCompactions uint64 `json:"sim_compactions"`
	SimPeakHeap    int64  `json:"sim_peak_heap"`
	SimNanos       uint64 `json:"sim_ns"`
	FramesIn       uint64 `json:"frames_in"`
	FramesOut      uint64 `json:"frames_out"`
	FramesDrop     uint64 `json:"frames_dropped"`
	FramesSwap     uint64 `json:"frames_swapped"`
	FramesBorn     uint64 `json:"frames_born"`
	Materialized   uint64 `json:"frames_materialized"`
	RenderedJSON   uint64 `json:"rendered_json_bytes"`
	RenderedCSV    uint64 `json:"rendered_csv_bytes"`
}

// DistSnapshot is the distributed-plane block of a Snapshot: self-healing
// events (all zero for a single-process run).
type DistSnapshot struct {
	Reconnects    uint64 `json:"reconnects"`
	Respawns      uint64 `json:"respawns"`
	LeaseReissues uint64 `json:"lease_reissues"`
	AcceptRetries uint64 `json:"accept_retries"`
}

func (d DistSnapshot) any() bool {
	return d.Reconnects|d.Respawns|d.LeaseReissues|d.AcceptRetries != 0
}

// SinksSnapshot is the sink/checkpoint block of a Snapshot.
type SinksSnapshot struct {
	JSONLBatches uint64         `json:"jsonl_batches"`
	JSONLBytes   uint64         `json:"jsonl_bytes"`
	CSVBatches   uint64         `json:"csv_batches"`
	CSVBytes     uint64         `json:"csv_bytes"`
	Checkpoints  uint64         `json:"checkpoints"`
	Flush        LatencySummary `json:"flush"`
}

// Snapshot is one consistent-enough scrape of the registry: every field is
// loaded once, shards are merged, and the result is a plain value safe to
// encode, diff or store. "Consistent enough" means each counter is
// individually race-free and monotonic; counters read microseconds apart
// may straddle a target, which mid-flight introspection tolerates and the
// end-of-run snapshot (all workers quiesced) does not exhibit.
type Snapshot struct {
	WallSeconds float64 `json:"wall_seconds"`
	Done        int64   `json:"done"`
	Total       int64   `json:"total"`
	AvgRate     float64 `json:"targets_per_sec_avg"`
	InstRate    float64 `json:"targets_per_sec_inst"`

	Scheduler    SchedulerSnapshot `json:"scheduler"`
	Workers      WorkerTotals      `json:"workers"`
	ProbeLatency LatencySummary    `json:"probe_latency"`
	Sinks        SinksSnapshot     `json:"sinks"`
	Dist         DistSnapshot      `json:"dist"`
}

// Snapshot scrapes the registry. Nil-safe: a nil registry yields a zero
// snapshot.
func (c *Campaign) Snapshot() Snapshot {
	var s Snapshot
	if c == nil {
		return s
	}
	s.Scheduler = SchedulerSnapshot{
		SpanClaims:       c.Sched.SpanClaims.Load(),
		WindowStalls:     c.Sched.WindowStalls.Load(),
		WindowStallNanos: c.Sched.WindowStallNanos.Load(),
		Retries:          c.Sched.Retries.Load(),
		BackoffNanos:     c.Sched.BackoffNanos.Load(),
		RateWaitNanos:    c.Sched.RateWaitNanos.Load(),
		Quiesces:         c.Sched.Quiesces.Load(),
	}
	recs := make([]*Recorder, 0, len(c.workers))
	var probeSum uint64
	for _, w := range c.workers {
		s.Workers.Targets += w.Targets.Load()
		s.Workers.Attempts += w.Attempts.Load()
		s.Workers.ArenaResets += w.ArenaResets.Load()
		s.Workers.ArenaBuilds += w.ArenaBuilds.Load()
		s.Workers.SimEvents += w.SimEvents.Load()
		s.Workers.SimReschedules += w.SimReschedules.Load()
		s.Workers.SimCompactions += w.SimCompactions.Load()
		if p := w.SimPeakHeap.Load(); p > s.Workers.SimPeakHeap {
			s.Workers.SimPeakHeap = p
		}
		s.Workers.SimNanos += w.SimNanos.Load()
		s.Workers.FramesIn += w.FramesIn.Load()
		s.Workers.FramesOut += w.FramesOut.Load()
		s.Workers.FramesDrop += w.FramesDrop.Load()
		s.Workers.FramesSwap += w.FramesSwap.Load()
		s.Workers.FramesBorn += w.FramesBorn.Load()
		s.Workers.Materialized += w.Materialized.Load()
		s.Workers.RenderedJSON += w.RenderedJSONBytes.Load()
		s.Workers.RenderedCSV += w.RenderedCSVBytes.Load()
		recs = append(recs, &w.ProbeNanos)
		probeSum += w.ProbeNanos.Sum()
	}
	s.ProbeLatency = summarizeLatency(MergeRecorders(recs...), probeSum)
	s.Sinks = SinksSnapshot{
		JSONLBatches: c.Sinks.JSONLBatches.Load(),
		JSONLBytes:   c.Sinks.JSONLBytes.Load(),
		CSVBatches:   c.Sinks.CSVBatches.Load(),
		CSVBytes:     c.Sinks.CSVBytes.Load(),
		Checkpoints:  c.Sinks.Checkpoints.Load(),
		Flush:        summarizeLatency(MergeRecorders(&c.Sinks.FlushNanos), c.Sinks.FlushNanos.Sum()),
	}
	s.Dist = DistSnapshot{
		Reconnects:    c.Dist.Reconnects.Load(),
		Respawns:      c.Dist.Respawns.Load(),
		LeaseReissues: c.Dist.LeaseReissues.Load(),
		AcceptRetries: c.Dist.AcceptRetries.Load(),
	}
	s.Done, s.Total, s.InstRate = c.Progress()
	if !c.startWall.IsZero() {
		if wall := c.now().Sub(c.startWall).Seconds(); wall > 0 {
			s.WallSeconds = wall
			s.AvgRate = float64(s.Done) / wall
		}
	}
	return s
}

// ProbeLatencyHistogram merges the per-worker probe-latency shards into one
// mergeable histogram — the mid-flight summary form campaignd-style
// consumers federate across processes. Nil when nothing was observed.
func (c *Campaign) ProbeLatencyHistogram() *stats.Histogram {
	if c == nil {
		return nil
	}
	recs := make([]*Recorder, 0, len(c.workers))
	for _, w := range c.workers {
		recs = append(recs, &w.ProbeNanos)
	}
	return MergeRecorders(recs...)
}

// fmtNs renders nanoseconds as a human duration.
func fmtNs(ns float64) string {
	return time.Duration(ns).Round(100 * time.Nanosecond).String()
}

// WriteText renders the snapshot as the CLI's -stats report: one compact
// block per layer, mirroring the metric families /metrics exposes.
func (s Snapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "telemetry: %d/%d targets in %.2fs (avg %.0f/s, inst %.0f/s)\n",
		s.Done, s.Total, s.WallSeconds, s.AvgRate, s.InstRate)
	fmt.Fprintf(w, "scheduler: %d span claims, %d window stalls (%v parked), %d retries (%v backoff), %v rate-wait\n",
		s.Scheduler.SpanClaims, s.Scheduler.WindowStalls,
		time.Duration(s.Scheduler.WindowStallNanos),
		s.Scheduler.Retries, time.Duration(s.Scheduler.BackoffNanos),
		time.Duration(s.Scheduler.RateWaitNanos))
	if s.ProbeLatency.Count > 0 {
		fmt.Fprintf(w, "probe latency: p50=%s p90=%s p99=%s max=%s (n=%d, %d attempts)\n",
			fmtNs(s.ProbeLatency.P50Ns), fmtNs(s.ProbeLatency.P90Ns),
			fmtNs(s.ProbeLatency.P99Ns), fmtNs(s.ProbeLatency.MaxNs),
			s.ProbeLatency.Count, s.Workers.Attempts)
	}
	fmt.Fprintf(w, "sim: %d events, %d reschedules, %d compactions, peak heap %d, %v simulated\n",
		s.Workers.SimEvents, s.Workers.SimReschedules, s.Workers.SimCompactions,
		s.Workers.SimPeakHeap, time.Duration(s.Workers.SimNanos))
	fmt.Fprintf(w, "netem: %d frames born, %d in, %d out, %d dropped, %d swapped, %d materialized\n",
		s.Workers.FramesBorn, s.Workers.FramesIn, s.Workers.FramesOut,
		s.Workers.FramesDrop, s.Workers.FramesSwap, s.Workers.Materialized)
	fmt.Fprintf(w, "arenas: %d builds, %d resets\n", s.Workers.ArenaBuilds, s.Workers.ArenaResets)
	fmt.Fprintf(w, "sinks: jsonl %d batches/%d bytes, csv %d batches/%d bytes, %d checkpoints",
		s.Sinks.JSONLBatches, s.Sinks.JSONLBytes, s.Sinks.CSVBatches, s.Sinks.CSVBytes,
		s.Sinks.Checkpoints)
	if s.Sinks.Flush.Count > 0 {
		fmt.Fprintf(w, ", flush p99=%s", fmtNs(s.Sinks.Flush.P99Ns))
	}
	fmt.Fprintln(w)
	// Only distributed runs that actually healed something print the dist
	// line, keeping single-process -stats output byte-stable.
	if s.Dist.any() {
		fmt.Fprintf(w, "dist: %d reconnects, %d respawns, %d lease re-issues, %d accept retries\n",
			s.Dist.Reconnects, s.Dist.Respawns, s.Dist.LeaseReissues, s.Dist.AcceptRetries)
	}
}
