package obs

import (
	"fmt"
	"io"
	"math"
)

// promCounter writes one counter metric family in Prometheus text format.
func promCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// promGauge writes one gauge metric family.
func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// promSeconds converts a nanosecond counter to a seconds counter family
// (Prometheus convention: durations are seconds).
func promSeconds(w io.Writer, name, help string, ns uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name,
		float64(ns)/1e9)
}

// promRecorders writes recorder shards as one Prometheus histogram family
// with cumulative le buckets in seconds.
func promRecorders(w io.Writer, name, help string, rs ...*Recorder) {
	counts := make([]uint64, recorderBins)
	var sum, n uint64
	for _, r := range rs {
		if r == nil {
			continue
		}
		r.snapshotInto(counts, math.NaN(), math.NaN())
		sum += r.Sum()
		n += r.Count()
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, c := range counts {
		cum += c
		// Bucket i's upper bound is edge i+1 (2^i ns); skip empty leading
		// buckets past the first to keep the exposition small.
		if c == 0 && i > 0 && cum == 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, recorderEdgesV[i+1]/1e9, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, n)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(sum)/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, n)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format. Metric names are stable: dashboards and the CI smoke test key on
// them, so treat them as append-only like the JSONL record.
func (c *Campaign) WritePrometheus(w io.Writer) {
	if c == nil {
		return
	}
	s := c.Snapshot()

	promGauge(w, "campaign_targets_done", "targets emitted in index order so far", float64(s.Done))
	promGauge(w, "campaign_targets_total", "targets in the campaign", float64(s.Total))
	promGauge(w, "campaign_targets_per_second", "EWMA instantaneous emit rate", s.InstRate)
	promGauge(w, "campaign_wall_seconds", "wall time since the run started", s.WallSeconds)

	promCounter(w, "campaign_scheduler_span_claims_total", "dispatch spans claimed off the shared cursor", s.Scheduler.SpanClaims)
	promCounter(w, "campaign_scheduler_window_stalls_total", "workers parked on the dispatch-window gate", s.Scheduler.WindowStalls)
	promSeconds(w, "campaign_scheduler_window_stall_seconds_total", "wall time parked on the window gate", s.Scheduler.WindowStallNanos)
	promCounter(w, "campaign_scheduler_retries_total", "failed attempts that were retried", s.Scheduler.Retries)
	promSeconds(w, "campaign_scheduler_backoff_seconds_total", "wall time in retry backoff", s.Scheduler.BackoffNanos)
	promSeconds(w, "campaign_scheduler_rate_wait_seconds_total", "wall time blocked in the token bucket", s.Scheduler.RateWaitNanos)

	promCounter(w, "campaign_worker_targets_total", "terminal per-target results produced", s.Workers.Targets)
	promCounter(w, "campaign_worker_attempts_total", "probe attempts including retries", s.Workers.Attempts)
	promCounter(w, "campaign_worker_arena_resets_total", "scenario arena reuses", s.Workers.ArenaResets)
	promCounter(w, "campaign_worker_arena_builds_total", "scenario arena first constructions", s.Workers.ArenaBuilds)

	recs := make([]*Recorder, 0, len(c.workers))
	for _, wk := range c.workers {
		recs = append(recs, &wk.ProbeNanos)
	}
	promRecorders(w, "campaign_probe_latency_seconds", "per-target probe wall latency", recs...)

	promCounter(w, "campaign_sim_events_total", "simulation-loop callbacks executed", s.Workers.SimEvents)
	promCounter(w, "campaign_sim_reschedules_total", "in-place timer reschedules", s.Workers.SimReschedules)
	promCounter(w, "campaign_sim_heap_compactions_total", "event-heap compactions", s.Workers.SimCompactions)
	promGauge(w, "campaign_sim_peak_heap_depth", "deepest event heap observed across workers", float64(s.Workers.SimPeakHeap))
	promSeconds(w, "campaign_sim_seconds_total", "simulated virtual time elapsed", s.Workers.SimNanos)

	promCounter(w, "campaign_netem_frames_born_total", "frames entering the simulated network", s.Workers.FramesBorn)
	promCounter(w, "campaign_netem_frames_in_total", "frames accepted by netem elements", s.Workers.FramesIn)
	promCounter(w, "campaign_netem_frames_out_total", "frames forwarded downstream by netem elements", s.Workers.FramesOut)
	promCounter(w, "campaign_netem_frames_dropped_total", "frames dropped (loss, overflow, corruption)", s.Workers.FramesDrop)
	promCounter(w, "campaign_netem_frames_swapped_total", "adjacent-frame exchanges performed", s.Workers.FramesSwap)
	promCounter(w, "campaign_netem_frames_materialized_total", "lazy wire-byte materializations", s.Workers.Materialized)

	fmt.Fprintf(w, "# HELP campaign_sink_batches_total span batches written per sink\n# TYPE campaign_sink_batches_total counter\n")
	fmt.Fprintf(w, "campaign_sink_batches_total{sink=\"jsonl\"} %d\n", s.Sinks.JSONLBatches)
	fmt.Fprintf(w, "campaign_sink_batches_total{sink=\"csv\"} %d\n", s.Sinks.CSVBatches)
	fmt.Fprintf(w, "# HELP campaign_sink_bytes_total bytes written per sink\n# TYPE campaign_sink_bytes_total counter\n")
	fmt.Fprintf(w, "campaign_sink_bytes_total{sink=\"jsonl\"} %d\n", s.Sinks.JSONLBytes)
	fmt.Fprintf(w, "campaign_sink_bytes_total{sink=\"csv\"} %d\n", s.Sinks.CSVBytes)
	promCounter(w, "campaign_checkpoints_total", "checkpoint saves", s.Sinks.Checkpoints)
	promRecorders(w, "campaign_sink_flush_seconds", "sink flush latency before checkpoints", &c.Sinks.FlushNanos)

	promCounter(w, "campaign_dist_reconnects_total", "worker sessions re-established after connection loss", s.Dist.Reconnects)
	promCounter(w, "campaign_dist_respawns_total", "worker processes restarted by the spawn supervisor", s.Dist.Respawns)
	promCounter(w, "campaign_dist_lease_reissues_total", "spans returned to the re-issue queue by worker loss", s.Dist.LeaseReissues)
	promCounter(w, "campaign_dist_accept_retries_total", "temporary accept failures retried by the coordinator", s.Dist.AcceptRetries)
}
