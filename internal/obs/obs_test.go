package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.AddInt(3)
	c.AddInt(-7) // negatives ignored (stepped clocks)
	if got := c.Load(); got != 8 {
		t.Fatalf("counter = %d, want 8", got)
	}
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge after SetMax = %d, want 5", got)
	}
	g.Set(-1)
	if got := g.Load(); got != -1 {
		t.Fatalf("gauge after Set = %d, want -1", got)
	}
}

func TestRecorderBinning(t *testing.T) {
	var r Recorder
	r.Observe(0)
	r.Observe(-5) // clamps to zero
	r.Observe(1)
	r.Observe(1023) // [512,1024) → bin 10
	r.Observe(1024) // [1024,2048) → bin 11
	if got := r.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := r.Sum(); got != 0+0+1+1023+1024 {
		t.Fatalf("sum = %d, want 2048", got)
	}
	counts := make([]uint64, recorderBins)
	min, max := r.snapshotInto(counts, math.NaN(), math.NaN())
	if min != 0 || max != 1024 {
		t.Fatalf("min/max = %g/%g, want 0/1024", min, max)
	}
	want := map[int]uint64{0: 2, 1: 1, 10: 1, 11: 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bin %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestRecorderClampsHugeValues(t *testing.T) {
	var r Recorder
	r.Observe(math.MaxInt64) // far past the top bin: must clamp, not panic
	counts := make([]uint64, recorderBins)
	r.snapshotInto(counts, math.NaN(), math.NaN())
	if counts[recorderBins-1] != 1 {
		t.Fatalf("top bin = %d, want 1", counts[recorderBins-1])
	}
}

func TestMergeRecorders(t *testing.T) {
	if h := MergeRecorders(); h != nil {
		t.Fatalf("empty merge = %v, want nil", h)
	}
	if h := MergeRecorders(nil, &Recorder{}); h != nil {
		t.Fatalf("merge of unobserved shards = %v, want nil", h)
	}
	var a, b Recorder
	for i := 0; i < 90; i++ {
		a.Observe(100) // bin 7: [64,128)
	}
	for i := 0; i < 10; i++ {
		b.Observe(100_000) // bin 17: [65536,131072)
	}
	h := MergeRecorders(&a, &b, nil)
	if h == nil {
		t.Fatal("merge = nil")
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("merged count = %d, want 100", got)
	}
	if h.Min() != 100 || h.Max() != 100_000 {
		t.Fatalf("min/max = %g/%g, want 100/100000", h.Min(), h.Max())
	}
	// p50 falls in a's octave, p99 in b's.
	if q := h.Quantile(0.5); q < 64 || q >= 128 {
		t.Fatalf("p50 = %g, want within [64,128)", q)
	}
	if q := h.Quantile(0.99); q < 65536 || q > 131072 {
		t.Fatalf("p99 = %g, want within [65536,131072]", q)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var c *Campaign
	c.StartRun(0, 10)
	c.NoteProgress(5, 10)
	c.NoteQuiesce()
	if d, tot, r := c.Progress(); d != 0 || tot != 0 || r != 0 {
		t.Fatalf("nil Progress = %d/%d/%g", d, tot, r)
	}
	if s := c.Snapshot(); s.Done != 0 || s.Scheduler.SpanClaims != 0 {
		t.Fatalf("nil Snapshot = %+v", s)
	}
	if c.SchedObs() != nil {
		t.Fatal("nil SchedObs != nil")
	}
	if c.ProbeLatencyHistogram() != nil {
		t.Fatal("nil ProbeLatencyHistogram != nil")
	}
	var buf bytes.Buffer
	c.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil WritePrometheus wrote %q", buf.String())
	}
	var tr *Trace
	tr.RunStart(1, 1, 0)
	tr.SpanClaim(0, 0, 1)
	tr.SpanDone(0, 0, 1, 0, 0)
	tr.SpanEmit(0, 1, 1)
	tr.Retry(0, 0, 1, 0, 0, "x")
	tr.Checkpoint(1, 0)
	tr.Quiesce(1)
	tr.RunEnd(1, false, "")
	if err := tr.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if tr.Events() != 0 {
		t.Fatal("nil Events != 0")
	}
}

func TestWorkerShardWrap(t *testing.T) {
	c := NewCampaign(2)
	if c.Workers() != 2 {
		t.Fatalf("Workers = %d, want 2", c.Workers())
	}
	if c.Worker(0) == c.Worker(1) {
		t.Fatal("distinct shards aliased")
	}
	if c.Worker(2) != c.Worker(0) || c.Worker(5) != c.Worker(1) {
		t.Fatal("shard index does not wrap")
	}
	if NewCampaign(0).Workers() != 1 {
		t.Fatal("zero workers did not clamp to 1")
	}
}

func TestProgressEWMA(t *testing.T) {
	c := NewCampaign(1)
	now := time.Unix(1000, 0)
	c.nowForTest = func() time.Time { return now }
	c.StartRun(0, 100)

	now = now.Add(time.Second)
	c.NoteProgress(50, 100) // first note seeds the EWMA at 50/s
	if _, _, r := c.Progress(); math.Abs(r-50) > 1e-9 {
		t.Fatalf("seed rate = %g, want 50", r)
	}

	now = now.Add(time.Second)
	c.NoteProgress(70, 100) // instant 20/s pulls the EWMA down, partway
	_, _, r := c.Progress()
	if r >= 50 || r <= 20 {
		t.Fatalf("ewma rate = %g, want within (20,50)", r)
	}
	alpha := 1 - math.Exp(-1.0/ewmaTau.Seconds())
	want := 50 + alpha*(20-50)
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("ewma rate = %g, want %g", r, want)
	}

	s := c.Snapshot()
	if s.Done != 70 || s.Total != 100 {
		t.Fatalf("snapshot done/total = %d/%d, want 70/100", s.Done, s.Total)
	}
	if math.Abs(s.WallSeconds-2) > 1e-9 {
		t.Fatalf("wall = %g, want 2", s.WallSeconds)
	}
	if math.Abs(s.AvgRate-35) > 1e-9 {
		t.Fatalf("avg rate = %g, want 35", s.AvgRate)
	}
}

func TestNoteQuiesceCountsOnce(t *testing.T) {
	c := NewCampaign(1)
	c.NoteQuiesce()
	c.NoteQuiesce()
	if got := c.Sched.Quiesces.Load(); got != 1 {
		t.Fatalf("quiesces = %d, want 1", got)
	}
}

func TestSnapshotAggregatesShards(t *testing.T) {
	c := NewCampaign(3)
	for i := 0; i < 3; i++ {
		w := c.Worker(i)
		w.Targets.Add(uint64(10 * (i + 1)))
		w.ProbeNanos.Observe(int64(1000 * (i + 1)))
		w.SimPeakHeap.SetMax(int64(5 + i))
		w.FramesDrop.Add(uint64(i))
	}
	s := c.Snapshot()
	if s.Workers.Targets != 60 {
		t.Fatalf("targets = %d, want 60", s.Workers.Targets)
	}
	if s.Workers.SimPeakHeap != 7 {
		t.Fatalf("peak heap = %d, want max(5,6,7)=7", s.Workers.SimPeakHeap)
	}
	if s.Workers.FramesDrop != 3 {
		t.Fatalf("drops = %d, want 3", s.Workers.FramesDrop)
	}
	if s.ProbeLatency.Count != 3 {
		t.Fatalf("probe count = %d, want 3", s.ProbeLatency.Count)
	}
	if s.ProbeLatency.MinNs != 1000 || s.ProbeLatency.MaxNs != 3000 {
		t.Fatalf("probe min/max = %g/%g, want 1000/3000", s.ProbeLatency.MinNs, s.ProbeLatency.MaxNs)
	}
	if s.ProbeLatency.SumNs != 6000 {
		t.Fatalf("probe sum = %d, want 6000", s.ProbeLatency.SumNs)
	}
}

// TestWritePrometheusWellFormed checks exposition-format invariants: every
// line is a comment or `name[{labels}] value`, HELP/TYPE precede samples,
// histogram buckets are cumulative and agree with _count.
func TestWritePrometheusWellFormed(t *testing.T) {
	c := NewCampaign(2)
	c.StartRun(0, 100)
	c.Sched.SpanClaims.Add(7)
	c.Worker(0).ProbeNanos.Observe(1500)
	c.Worker(1).ProbeNanos.Observe(900_000)
	c.Sinks.JSONLBatches.Inc()
	c.Sinks.JSONLBytes.Add(512)
	c.NoteProgress(42, 100)

	var buf bytes.Buffer
	c.WritePrometheus(&buf)
	out := buf.String()

	typed := map[string]string{}
	var bucketCum uint64
	var bucketFamily string
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := typed[f[2]]; dup {
				t.Fatalf("duplicate TYPE for family %s", f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment %q", line)
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("sample line %q has %d fields, want 2", line, len(f))
		}
		name := f[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			name = name[:i]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name && typed[base] == "histogram" {
				family = base
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("sample %q precedes its TYPE", line)
		}
		if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
			var cum uint64
			if _, err := fmtSscan(f[1], &cum); err != nil {
				t.Fatalf("bucket value %q: %v", f[1], err)
			}
			if family != bucketFamily {
				bucketFamily, bucketCum = family, 0
			}
			if cum < bucketCum {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			bucketCum = cum
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"campaign_targets_done 42",
		"campaign_targets_total 100",
		"campaign_scheduler_span_claims_total 7",
		`campaign_sink_bytes_total{sink="jsonl"} 512`,
		"campaign_probe_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func fmtSscan(s string, v *uint64) (int, error) {
	var n uint64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errNotUint
		}
		n = n*10 + uint64(r-'0')
	}
	*v = n
	return 1, nil
}

var errNotUint = bytes.ErrTooLarge // any sentinel; message unused

func TestTraceEventsAreJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.RunStart(2016, 8, 0)
	tr.SpanClaim(3, 0, 32)
	tr.Retry(3, 17, 1, 120_000, 5_000_000, `timeout "quoted"`)
	tr.SpanDone(3, 0, 32, 777, 2048)
	tr.SpanEmit(0, 32, 32)
	tr.Checkpoint(32, 4500)
	tr.Quiesce(32)
	tr.RunEnd(32, true, "interrupted")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Events(); got != 8 {
		t.Fatalf("events = %d, want 8", got)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("trace has %d lines, want 8:\n%s", len(lines), buf.String())
	}
	wantEv := []string{"run_start", "span_claim", "retry", "span_done", "span_emit", "checkpoint", "quiesce", "run_end"}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		if m["ev"] != wantEv[i] {
			t.Fatalf("line %d ev = %v, want %s", i, m["ev"], wantEv[i])
		}
		if _, ok := m["t_ns"].(float64); !ok {
			t.Fatalf("line %d missing t_ns: %s", i, line)
		}
	}
	var retry map[string]any
	json.Unmarshal([]byte(lines[2]), &retry)
	if retry["error"] != `timeout "quoted"` {
		t.Fatalf("retry error = %v", retry["error"])
	}
	if retry["backoff_ns"] != float64(5_000_000) {
		t.Fatalf("retry backoff = %v", retry["backoff_ns"])
	}
	var end map[string]any
	json.Unmarshal([]byte(lines[7]), &end)
	if end["interrupted"] != float64(1) {
		t.Fatalf("run_end interrupted = %v", end["interrupted"])
	}
}

// TestConcurrentScrapeIsRaceFree hammers one registry from writer and
// scraper goroutines; the race detector is the assertion.
func TestConcurrentScrapeIsRaceFree(t *testing.T) {
	const perWorker = 5000
	c := NewCampaign(4)
	c.StartRun(0, 1000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := c.Worker(w)
			for i := 0; i < perWorker; i++ {
				sh.Targets.Inc()
				sh.ProbeNanos.Observe(int64(i%100_000 + 1))
				sh.SimPeakHeap.SetMax(int64(i % 64))
			}
		}(w)
	}
	var tracebuf bytes.Buffer
	tr := NewTrace(&tracebuf)
	for i := 0; i < 50; i++ {
		_ = c.Snapshot()
		var buf bytes.Buffer
		c.WritePrometheus(&buf)
		c.NoteProgress(i*20, 1000)
		tr.SpanEmit(i, i+1, i+1)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Workers.Targets != 4*perWorker || s.ProbeLatency.Count != 4*perWorker {
		t.Fatalf("lost writes: targets %d, latency count %d, want %d",
			s.Workers.Targets, s.ProbeLatency.Count, 4*perWorker)
	}
	tr.Close()
}

// TestAbsorbRemoteDist checks a remote worker's dist-plane counters fold
// into the coordinator registry's totals (reconnects happen on the worker
// side of the wire and ship at bye, like scheduler retries do).
func TestAbsorbRemoteDist(t *testing.T) {
	remote := NewCampaign(1)
	remote.Dist.Reconnects.Add(3)
	remote.Dist.LeaseReissues.Add(2)

	coord := NewCampaign(2)
	coord.Dist.Respawns.Inc()
	if err := coord.AbsorbRemote(0, remote.Wire()); err != nil {
		t.Fatal(err)
	}
	s := coord.Snapshot()
	if s.Dist.Reconnects != 3 || s.Dist.LeaseReissues != 2 || s.Dist.Respawns != 1 {
		t.Fatalf("dist snapshot = %+v, want reconnects=3 lease_reissues=2 respawns=1", s.Dist)
	}

	// The -stats text gains a dist line only when something healed.
	var buf bytes.Buffer
	s.WriteText(&buf)
	if !strings.Contains(buf.String(), "dist: 3 reconnects, 1 respawns, 2 lease re-issues, 0 accept retries") {
		t.Fatalf("stats text missing dist line:\n%s", buf.String())
	}
	buf.Reset()
	NewCampaign(1).Snapshot().WriteText(&buf)
	if strings.Contains(buf.String(), "dist:") {
		t.Fatalf("quiet run printed a dist line:\n%s", buf.String())
	}
}
