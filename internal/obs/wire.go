package obs

import (
	"fmt"
	"math"

	"reorder/internal/stats"
)

// WorkerWire is one worker process's telemetry contribution, shipped to
// the coordinator at disconnect: summed worker-shard totals, the exact
// probe-latency recorder bins (sparse counts, not a lossy summary, so the
// coordinator's merged latency quantiles equal a single process's), and
// the process-local scheduler counters (retries, backoff and rate waits
// happen on the worker's side of the wire).
type WorkerWire struct {
	Totals       WorkerTotals          `json:"totals"`
	ProbeLatency stats.HistogramCounts `json:"probe_latency"`
	ProbeSumNs   uint64                `json:"probe_sum_ns"`
	Scheduler    SchedulerSnapshot     `json:"scheduler"`
	Dist         DistSnapshot          `json:"dist"`
}

// Wire captures the registry's cross-process telemetry contribution.
// Nil-safe: a nil registry yields a zero value.
func (c *Campaign) Wire() WorkerWire {
	var w WorkerWire
	if c == nil {
		return w
	}
	s := c.Snapshot()
	w.Totals = s.Workers
	w.Scheduler = s.Scheduler
	w.Dist = s.Dist
	if h := c.ProbeLatencyHistogram(); h != nil {
		w.ProbeLatency = h.CountsSnapshot()
	}
	for _, wk := range c.workers {
		w.ProbeSumNs += wk.ProbeNanos.Sum()
	}
	return w
}

// AbsorbRemote folds a remote worker's wire snapshot into shard
// `shard`'s counters and the scheduler block, so coordinator-side
// snapshots and /metrics cover the whole distributed run. Callers must
// serialize AbsorbRemote calls (the recorder min/max cells are
// single-writer); the dist coordinator absorbs under its state lock.
func (c *Campaign) AbsorbRemote(shard int, w WorkerWire) error {
	if c == nil {
		return nil
	}
	wk := c.Worker(shard)
	wk.Targets.Add(w.Totals.Targets)
	wk.Attempts.Add(w.Totals.Attempts)
	wk.ArenaResets.Add(w.Totals.ArenaResets)
	wk.ArenaBuilds.Add(w.Totals.ArenaBuilds)
	wk.SimEvents.Add(w.Totals.SimEvents)
	wk.SimReschedules.Add(w.Totals.SimReschedules)
	wk.SimCompactions.Add(w.Totals.SimCompactions)
	wk.SimPeakHeap.SetMax(w.Totals.SimPeakHeap)
	wk.SimNanos.Add(w.Totals.SimNanos)
	wk.FramesIn.Add(w.Totals.FramesIn)
	wk.FramesOut.Add(w.Totals.FramesOut)
	wk.FramesDrop.Add(w.Totals.FramesDrop)
	wk.FramesSwap.Add(w.Totals.FramesSwap)
	wk.FramesBorn.Add(w.Totals.FramesBorn)
	wk.Materialized.Add(w.Totals.Materialized)
	wk.RenderedJSONBytes.Add(w.Totals.RenderedJSON)
	wk.RenderedCSVBytes.Add(w.Totals.RenderedCSV)
	c.Sched.Retries.Add(w.Scheduler.Retries)
	c.Sched.BackoffNanos.Add(w.Scheduler.BackoffNanos)
	c.Sched.RateWaitNanos.Add(w.Scheduler.RateWaitNanos)
	c.Dist.Reconnects.Add(w.Dist.Reconnects)
	c.Dist.Respawns.Add(w.Dist.Respawns)
	c.Dist.LeaseReissues.Add(w.Dist.LeaseReissues)
	c.Dist.AcceptRetries.Add(w.Dist.AcceptRetries)
	return wk.ProbeNanos.absorbCounts(w.ProbeLatency, w.ProbeSumNs)
}

// absorbCounts folds an exact bin snapshot of another recorder in. The
// caller serializes with the shard's writer (see AbsorbRemote).
func (r *Recorder) absorbCounts(c stats.HistogramCounts, sum uint64) error {
	if c.N == 0 {
		return nil
	}
	if len(c.Bins) == 0 || len(c.Bins)%2 != 0 {
		return fmt.Errorf("obs: recorder snapshot with malformed bin pairs (len %d)", len(c.Bins))
	}
	var total uint64
	for i := 0; i < len(c.Bins); i += 2 {
		if c.Bins[i] >= recorderBins {
			return fmt.Errorf("obs: recorder snapshot bin %d out of range", c.Bins[i])
		}
		total += c.Bins[i+1]
	}
	if total != c.N {
		return fmt.Errorf("obs: recorder snapshot bin counts sum to %d, header says %d", total, c.N)
	}
	min, max := math.Float64frombits(c.MinBits), math.Float64frombits(c.MaxBits)
	if math.IsNaN(min) || math.IsNaN(max) || min > max || min < 0 {
		return fmt.Errorf("obs: recorder snapshot with invalid min/max %v/%v", min, max)
	}
	for i := 0; i < len(c.Bins); i += 2 {
		r.counts[c.Bins[i]].Add(c.Bins[i+1])
	}
	r.count.Add(c.N)
	r.sum.Add(sum)
	if m := r.minP1.Load(); m == 0 || int64(min)+1 < m {
		r.minP1.Store(int64(min) + 1)
	}
	if int64(max) > r.max.Load() {
		r.max.Store(int64(max))
	}
	return nil
}
