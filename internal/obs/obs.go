// Package obs is the runtime telemetry layer: low-overhead instrumentation
// the campaign engine threads through its hot paths (scheduler, workers,
// sinks, the simulation loop and netem elements) so a running campaign can
// be introspected mid-flight without perturbing what it measures — the
// paper's own constraint, applied to the reproduction.
//
// The design mirrors the aggregation architecture the campaign already
// uses for measurement statistics: state is sharded per worker, each shard
// is written by exactly one goroutine through padded atomics (no locks, no
// contention, no allocation on the probe fast path), and aggregation
// happens only at scrape time — a snapshot loads every shard once and
// folds latency recorders into mergeable stats.Histogram values. Nothing
// here is on the measurement clock: recording a counter is one uncontended
// atomic add, and a disabled registry (nil *Campaign) costs a predictable
// branch at each instrumentation point.
//
// Three surfaces consume the same snapshot:
//
//   - An HTTP endpoint (Serve): Prometheus text-format /metrics, JSON
//     /campaign/progress (the mid-flight summary a future campaignd would
//     stream), and /debug/pprof.
//   - A structured JSONL run trace (Trace): span lifecycle, retry,
//     checkpoint and flush events with wall and simulated timestamps.
//   - A final -stats report (Snapshot.WriteText) appended to the campaign
//     summary.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"reorder/internal/stats"
)

// Counter is a monotonic event count: one writer (the owning worker or the
// serial collector), any number of concurrent readers. Aligned atomics make
// reads race-free under the race detector without any locking.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// AddInt adds n, ignoring negatives (durations from a stepped clock).
func (c *Counter) AddInt(n int64) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a last-value or running-maximum cell with the same
// single-writer/many-reader contract as Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is larger. Single-writer, so the
// load/store pair needs no CAS.
func (g *Gauge) SetMax(v int64) {
	if v > g.v.Load() {
		g.v.Store(v)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// recorderBins is the Recorder resolution: power-of-two buckets of
// nanoseconds, bucket b covering [2^(b-1), 2^b) ns (bucket 0 holds zero).
// 48 bins span sub-nanosecond to ~39 hours, so no latency this system can
// produce ever clamps.
const recorderBins = 48

// recorderEdgesV is the shared stats.Histogram edge layout every Recorder
// snapshot uses; sharing one slice makes shard merges skip the pointwise
// edge comparison.
var recorderEdgesV = func() []float64 {
	edges := make([]float64, recorderBins+1)
	edges[0] = 0
	for i := 1; i <= recorderBins; i++ {
		edges[i] = math.Ldexp(1, i-1) // 2^(i-1)
	}
	return edges
}()

// RecorderEdges returns the bin-edge layout (in nanoseconds) of Recorder
// snapshots. The slice is shared and must not be mutated.
func RecorderEdges() []float64 { return recorderEdgesV }

// Recorder is a latency recorder: power-of-two nanosecond buckets counted
// with single-writer atomics, binned by one bits.Len64 — no search, no
// floating point, no allocation. Each worker owns one Recorder shard;
// Snapshot folds a shard into a stats.Histogram at scrape time, and shard
// histograms merge exactly (integer bin counts, exact min/max) no matter
// when each was snapped. Quantiles are bucket-interpolated and therefore
// resolved to within one octave — telemetry resolution, deliberately
// cheaper than the measurement-grade histograms the campaign aggregates.
type Recorder struct {
	counts [recorderBins]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	minP1  atomic.Int64 // min+1; 0 = no samples yet (zero value usable)
	max    atomic.Int64
}

// Observe records one duration in nanoseconds. Negative values clamp to
// zero (a stepped wall clock can run backwards).
func (r *Recorder) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= recorderBins {
		b = recorderBins - 1
	}
	r.counts[b].Add(1)
	r.count.Add(1)
	r.sum.Add(uint64(ns))
	// Single-writer: plain load-compare-store is race-free for the writer,
	// and readers always see a consistent (if momentarily stale) value.
	if m := r.minP1.Load(); m == 0 || ns+1 < m {
		r.minP1.Store(ns + 1)
	}
	if ns > r.max.Load() {
		r.max.Store(ns)
	}
}

// Count returns the number of observations.
func (r *Recorder) Count() uint64 { return r.count.Load() }

// Sum returns the total observed nanoseconds.
func (r *Recorder) Sum() uint64 { return r.sum.Load() }

// snapshotInto adds the recorder's current bin counts into counts (a
// scratch slice of recorderBins entries) and widens min/max, returning the
// updated exact extrema. It is how shards aggregate at scrape time.
func (r *Recorder) snapshotInto(counts []uint64, min, max float64) (float64, float64) {
	for i := range r.counts {
		counts[i] += r.counts[i].Load()
	}
	if m := r.minP1.Load(); m != 0 {
		if v := float64(m - 1); math.IsNaN(min) || v < min {
			min = v
		}
	}
	if r.count.Load() > 0 {
		if v := float64(r.max.Load()); math.IsNaN(max) || v > max {
			max = v
		}
	}
	return min, max
}

// MergeRecorders folds any number of recorder shards into one mergeable
// histogram (nil when no shard has observed anything).
func MergeRecorders(rs ...*Recorder) *stats.Histogram {
	counts := make([]uint64, recorderBins)
	min, max := math.NaN(), math.NaN()
	for _, r := range rs {
		if r == nil {
			continue
		}
		min, max = r.snapshotInto(counts, min, max)
	}
	if math.IsNaN(min) {
		return nil
	}
	return stats.HistogramFromCounts(recorderEdgesV, counts, min, max)
}

// Scheduler is the orchestrator's telemetry: dispatch and politeness
// machinery, shared by all workers. Every field is low-frequency (per span,
// per stall, per retry — never per target on the fast path), so one shared
// cache-line-padded block suffices; the padding keeps these atomics off the
// lines the scheduler's own hot gate/cursor atomics live on.
type Scheduler struct {
	_ [64]byte
	// SpanClaims counts dispatch spans claimed off the shared cursor.
	SpanClaims Counter
	// WindowStalls counts workers parking on the dispatch-window gate, and
	// WindowStallNanos the wall time they spent parked: how often the
	// in-order emit frontier (one slow target) held the pool back.
	WindowStalls     Counter
	WindowStallNanos Counter
	// Retries counts failed attempts that were retried; BackoffNanos is
	// the wall time spent in retry backoff sleeps.
	Retries      Counter
	BackoffNanos Counter
	// RateWaitNanos is the wall time spent blocked in the token bucket —
	// the politeness budget a rate-limited campaign pays.
	RateWaitNanos Counter
	// Quiesces counts graceful-shutdown requests observed (0 or 1).
	Quiesces Counter
	_        [64]byte
}

// Worker is one campaign worker's telemetry shard: written only by that
// worker, read by scrapers. Each Worker is allocated separately and padded
// so no two workers' hot counters share a cache line.
type Worker struct {
	_ [64]byte

	// Targets counts terminal per-target results produced; Attempts counts
	// probe attempts including retries.
	Targets  Counter
	Attempts Counter
	// ProbeNanos is the per-target probe wall-latency recorder.
	ProbeNanos Recorder
	// ArenaResets counts scenario-arena reuses (Net.Reset), ArenaBuilds
	// first-time constructions.
	ArenaResets Counter
	ArenaBuilds Counter

	// Simulation-loop internals, accumulated per target from sim.Loop:
	// events executed, in-place timer reschedules, heap compactions, the
	// deepest event heap seen, and total simulated time.
	SimEvents      Counter
	SimReschedules Counter
	SimCompactions Counter
	SimPeakHeap    Gauge
	SimNanos       Counter

	// netem element flow, summed over the worker's scenario elements per
	// target: frames accepted, forwarded, dropped (loss, queue overflow,
	// corruption), adjacent swaps, frames born, and lazy wire-byte
	// materializations (the zero-copy fast path's escape hatch).
	FramesIn     Counter
	FramesOut    Counter
	FramesDrop   Counter
	FramesSwap   Counter
	FramesBorn   Counter
	Materialized Counter

	// RenderedJSONBytes / RenderedCSVBytes count sink bytes this worker
	// encoded into span batches.
	RenderedJSONBytes Counter
	RenderedCSVBytes  Counter

	_ [64]byte
}

// Dist is the distributed-plane telemetry: the self-healing machinery's
// event counts. Reconnects and respawns are rare by construction (each one
// is a recovered failure), so one shared padded block is plenty; worker
// processes ship their side (reconnects) to the coordinator at bye.
type Dist struct {
	_ [64]byte
	// Reconnects counts worker sessions re-established after a connection
	// loss (successful re-handshakes, not attempts).
	Reconnects Counter
	// Respawns counts worker processes restarted by the spawn supervisor.
	Respawns Counter
	// LeaseReissues counts spans returned to the re-issue queue by worker
	// loss or lease expiry.
	LeaseReissues Counter
	// AcceptRetries counts temporary accept failures the coordinator's
	// listener loop retried instead of failing the run.
	AcceptRetries Counter
	_             [64]byte
}

// Sinks is the serial collector's telemetry: batch flushes, durable bytes,
// checkpointing. Written only by the collector goroutine.
type Sinks struct {
	_ [64]byte
	// JSONLBatches/JSONLBytes and CSVBatches/CSVBytes count batched writes
	// to the two streaming sinks.
	JSONLBatches Counter
	JSONLBytes   Counter
	CSVBatches   Counter
	CSVBytes     Counter
	// FlushNanos records sink-flush latency (the fsync-adjacent cost paid
	// before every checkpoint); Checkpoints counts checkpoint saves.
	FlushNanos  Recorder
	Checkpoints Counter
	_           [64]byte
}

// Campaign is the telemetry registry for one campaign run. A nil *Campaign
// disables all instrumentation; the engine's hot paths gate on that nil
// check alone. Construct with NewCampaign(workers) — worker shards are
// fixed at construction so the probe path never allocates or locks.
type Campaign struct {
	Sched Scheduler
	Sinks Sinks
	Dist  Dist

	workers []*Worker

	// Progress state, published by the serial collector via NoteProgress
	// and read by the HTTP endpoint: emitted targets, campaign size, and
	// an EWMA of the instantaneous emit rate.
	done     atomic.Int64
	total    atomic.Int64
	ewmaBits atomic.Uint64 // float64 bits of the EWMA targets/s

	startWall  time.Time
	lastNote   time.Time
	lastDone   int64
	quiesced   atomic.Bool
	interrupt  atomic.Bool
	nowForTest func() time.Time // test hook; nil = time.Now
}

// NewCampaign returns a registry with one worker shard per worker.
func NewCampaign(workers int) *Campaign {
	if workers <= 0 {
		workers = 1
	}
	c := &Campaign{workers: make([]*Worker, workers)}
	for i := range c.workers {
		c.workers[i] = &Worker{}
	}
	return c
}

// Worker returns shard w. Safe for any w (wraps modulo the shard count),
// mirroring Aggregator.Shard.
func (c *Campaign) Worker(w int) *Worker { return c.workers[w%len(c.workers)] }

// Workers returns the number of worker shards.
func (c *Campaign) Workers() int { return len(c.workers) }

// SchedObs returns the scheduler telemetry block, or nil for a nil
// registry — the form SchedulerConfig.Obs wants.
func (c *Campaign) SchedObs() *Scheduler {
	if c == nil {
		return nil
	}
	return &c.Sched
}

// DistObs returns the distributed-plane telemetry block, or nil for a nil
// registry, mirroring SchedObs.
func (c *Campaign) DistObs() *Dist {
	if c == nil {
		return nil
	}
	return &c.Dist
}

func (c *Campaign) now() time.Time {
	if c.nowForTest != nil {
		return c.nowForTest()
	}
	return time.Now()
}

// StartRun marks the beginning of a run over total targets with done
// already emitted (a resume starts past zero).
func (c *Campaign) StartRun(done, total int) {
	if c == nil {
		return
	}
	c.startWall = c.now()
	c.lastNote = c.startWall
	c.lastDone = int64(done)
	c.done.Store(int64(done))
	c.total.Store(int64(total))
}

// ewmaTau is the time constant of the instantaneous-rate EWMA: a few
// seconds of memory, so the rate tracks warmup and stragglers without
// jittering per span.
const ewmaTau = 5 * time.Second

// NoteProgress publishes the emit frontier. Called by the serial collector
// after each in-order span emit; it also advances the instantaneous-rate
// EWMA from the time and count deltas since the previous note.
func (c *Campaign) NoteProgress(done, total int) {
	if c == nil {
		return
	}
	now := c.now()
	dt := now.Sub(c.lastNote)
	dd := int64(done) - c.lastDone
	if dt > 0 && dd >= 0 {
		inst := float64(dd) / dt.Seconds()
		prev := math.Float64frombits(c.ewmaBits.Load())
		var next float64
		if prev == 0 {
			next = inst // first observation seeds the EWMA
		} else {
			alpha := 1 - math.Exp(-dt.Seconds()/ewmaTau.Seconds())
			next = prev + alpha*(inst-prev)
		}
		c.ewmaBits.Store(math.Float64bits(next))
		c.lastNote = now
		c.lastDone = int64(done)
	}
	c.done.Store(int64(done))
	c.total.Store(int64(total))
}

// NoteQuiesce records that graceful shutdown began draining.
func (c *Campaign) NoteQuiesce() {
	if c == nil {
		return
	}
	if !c.quiesced.Swap(true) {
		c.Sched.Quiesces.Inc()
	}
	c.interrupt.Store(true)
}

// Progress returns the published frontier, total and EWMA rate.
func (c *Campaign) Progress() (done, total int64, instRate float64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.done.Load(), c.total.Load(), math.Float64frombits(c.ewmaBits.Load())
}
