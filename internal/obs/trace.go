package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
)

// Trace is a structured JSONL run trace: one object per line, recording
// the campaign's orchestration lifecycle — span claims and completions,
// in-order emits, retries, checkpoints, sink flushes — with both wall
// timestamps (nanoseconds since the trace started, plus absolute unix
// nanoseconds on run boundaries) and, where a simulation ran, the
// simulated time it consumed. The schema is append-only: every event has
// "ev" and "t_ns"; other keys are per-event.
//
// Events are span-granular, never per-frame, so a trace stays a few
// kilobytes per thousand targets and tracing costs the hot path nothing.
// All methods are safe for concurrent use (workers trace claims and
// completions; the collector traces emits and checkpoints) and safe on a
// nil *Trace, so call sites need no gating.
type Trace struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	c     io.Closer
	buf   []byte
	start time.Time
	n     uint64
}

// NewTrace wraps w. If w is an io.Closer, Close closes it.
func NewTrace(w io.Writer) *Trace {
	t := &Trace{bw: bufio.NewWriter(w), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Events returns the number of events written.
func (t *Trace) Events() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// begin starts an event line under the lock: {"ev":"<ev>","t_ns":<since start>.
func (t *Trace) begin(ev string) {
	t.buf = append(t.buf[:0], `{"ev":"`...)
	t.buf = append(t.buf, ev...)
	t.buf = append(t.buf, `","t_ns":`...)
	t.buf = strconv.AppendInt(t.buf, time.Since(t.start).Nanoseconds(), 10)
}

func (t *Trace) int(key string, v int64) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, key...)
	t.buf = append(t.buf, `":`...)
	t.buf = strconv.AppendInt(t.buf, v, 10)
}

func (t *Trace) str(key, v string) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, key...)
	t.buf = append(t.buf, `":`...)
	t.buf = strconv.AppendQuote(t.buf, v)
}

func (t *Trace) end() {
	t.buf = append(t.buf, '}', '\n')
	t.bw.Write(t.buf)
	t.n++
}

// RunStart records the run boundary with an absolute timestamp.
func (t *Trace) RunStart(targets, workers, startIndex int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.begin("run_start")
	t.int("unix_ns", time.Now().UnixNano())
	t.int("targets", int64(targets))
	t.int("workers", int64(workers))
	t.int("start_index", int64(startIndex))
	t.end()
}

// SpanClaim records a worker claiming the dispatch span [lo,hi).
func (t *Trace) SpanClaim(worker, lo, hi int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.begin("span_claim")
	t.int("worker", int64(worker))
	t.int("lo", int64(lo))
	t.int("hi", int64(hi))
	t.end()
}

// SpanDone records a worker finishing every target of its span, with the
// simulated time those targets consumed and the sink bytes rendered.
func (t *Trace) SpanDone(worker, lo, hi int, simNs, renderedBytes int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.begin("span_done")
	t.int("worker", int64(worker))
	t.int("lo", int64(lo))
	t.int("hi", int64(hi))
	t.int("sim_ns", simNs)
	t.int("rendered_bytes", renderedBytes)
	t.end()
}

// SpanEmit records the in-order collector emitting span [lo,hi); done is
// the new emit frontier.
func (t *Trace) SpanEmit(lo, hi, done int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.begin("span_emit")
	t.int("lo", int64(lo))
	t.int("hi", int64(hi))
	t.int("done", int64(done))
	t.end()
}

// Retry records a failed attempt being retried, with the simulated time
// the failed probe consumed and the backoff about to be slept.
func (t *Trace) Retry(worker, index, attempt int, simNs, backoffNs int64, errMsg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.begin("retry")
	t.int("worker", int64(worker))
	t.int("index", int64(index))
	t.int("attempt", int64(attempt))
	t.int("sim_ns", simNs)
	t.int("backoff_ns", backoffNs)
	t.str("error", errMsg)
	t.end()
}

// Checkpoint records a durable checkpoint at done emitted results, with
// the sink-flush latency paid just before it.
func (t *Trace) Checkpoint(done int, flushNs int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.begin("checkpoint")
	t.int("done", int64(done))
	t.int("flush_ns", flushNs)
	t.end()
}

// Quiesce records graceful shutdown beginning to drain in-flight spans.
func (t *Trace) Quiesce(done int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.begin("quiesce")
	t.int("done", int64(done))
	t.end()
}

// RunEnd records the run boundary with an absolute timestamp.
func (t *Trace) RunEnd(done int, interrupted bool, errMsg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.begin("run_end")
	t.int("unix_ns", time.Now().UnixNano())
	t.int("done", int64(done))
	v := int64(0)
	if interrupted {
		v = 1
	}
	t.int("interrupted", v)
	if errMsg != "" {
		t.str("error", errMsg)
	}
	t.end()
}

// Flush forces buffered events to the underlying writer.
func (t *Trace) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bw.Flush()
}

// Close flushes and releases the trace.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.bw.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
