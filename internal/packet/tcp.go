package packet

import (
	"encoding/binary"
	"fmt"
)

// TCP header flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// TCP option kinds understood by the codec.
const (
	OptEOL           = 0
	OptNOP           = 1
	OptMSS           = 2
	OptWindowScale   = 3
	OptSACKPermitted = 4
	OptSACK          = 5
	OptTimestamps    = 8
)

const tcpBaseHeaderLen = 20

// SACKBlock is one selective-acknowledgment range [Left, Right) in sequence
// space.
type SACKBlock struct {
	Left, Right uint32
}

// TCPOption is a single TCP option as it appears on the wire. Use the
// constructors below for the kinds the tools emit.
type TCPOption struct {
	Kind byte
	Data []byte // option payload, excluding kind and length octets
}

// MSSOption returns a maximum-segment-size option.
func MSSOption(mss uint16) TCPOption {
	d := make([]byte, 2)
	binary.BigEndian.PutUint16(d, mss)
	return TCPOption{Kind: OptMSS, Data: d}
}

// SACKPermittedOption returns the SACK-permitted handshake option.
func SACKPermittedOption() TCPOption { return TCPOption{Kind: OptSACKPermitted} }

// SACKOption returns a SACK option carrying the given blocks (at most 4).
func SACKOption(blocks []SACKBlock) TCPOption {
	if len(blocks) > 4 {
		blocks = blocks[:4]
	}
	d := make([]byte, 8*len(blocks))
	for i, b := range blocks {
		binary.BigEndian.PutUint32(d[i*8:], b.Left)
		binary.BigEndian.PutUint32(d[i*8+4:], b.Right)
	}
	return TCPOption{Kind: OptSACK, Data: d}
}

// WindowScaleOption returns a window-scale option with the given shift.
func WindowScaleOption(shift byte) TCPOption {
	return TCPOption{Kind: OptWindowScale, Data: []byte{shift}}
}

// TCPHeader is a parsed TCP header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16 // filled on decode; computed on encode
	Urgent           uint16
	Options          []TCPOption
}

// HasFlags reports whether every flag bit in mask is set.
func (h *TCPHeader) HasFlags(mask uint8) bool { return h.Flags&mask == mask }

// FlagString renders the flags in tcpdump-like notation, e.g. "S.", "R",
// "P.".
func (h *TCPHeader) FlagString() string {
	var s []byte
	if h.Flags&FlagSYN != 0 {
		s = append(s, 'S')
	}
	if h.Flags&FlagFIN != 0 {
		s = append(s, 'F')
	}
	if h.Flags&FlagRST != 0 {
		s = append(s, 'R')
	}
	if h.Flags&FlagPSH != 0 {
		s = append(s, 'P')
	}
	if h.Flags&FlagURG != 0 {
		s = append(s, 'U')
	}
	if h.Flags&FlagACK != 0 {
		s = append(s, '.')
	}
	if len(s) == 0 {
		return "none"
	}
	return string(s)
}

// MSS returns the MSS option value, if present.
func (h *TCPHeader) MSS() (uint16, bool) {
	for _, o := range h.Options {
		if o.Kind == OptMSS && len(o.Data) == 2 {
			return binary.BigEndian.Uint16(o.Data), true
		}
	}
	return 0, false
}

// SACKPermitted reports whether the SACK-permitted option is present.
func (h *TCPHeader) SACKPermitted() bool {
	for _, o := range h.Options {
		if o.Kind == OptSACKPermitted {
			return true
		}
	}
	return false
}

// SACKBlocks returns the blocks of the SACK option, if present.
func (h *TCPHeader) SACKBlocks() []SACKBlock {
	for _, o := range h.Options {
		if o.Kind == OptSACK && len(o.Data)%8 == 0 {
			blocks := make([]SACKBlock, len(o.Data)/8)
			for i := range blocks {
				blocks[i].Left = binary.BigEndian.Uint32(o.Data[i*8:])
				blocks[i].Right = binary.BigEndian.Uint32(o.Data[i*8+4:])
			}
			return blocks
		}
	}
	return nil
}

// OptionsWireLen returns the encoded length of the header's options as
// optionsWireLen computes it — the piece of wire-length arithmetic frame
// views need to size a datagram without encoding it.
func (h *TCPHeader) OptionsWireLen() (int, error) { return h.optionsWireLen() }

// optionsWireLen returns the encoded length of the options, padded to a
// multiple of 4.
func (h *TCPHeader) optionsWireLen() (int, error) {
	n := 0
	for _, o := range h.Options {
		switch o.Kind {
		case OptEOL, OptNOP:
			n++
		default:
			n += 2 + len(o.Data)
		}
	}
	n = (n + 3) &^ 3
	if tcpBaseHeaderLen+n > 60 {
		return 0, fmt.Errorf("%w: TCP options %d bytes exceed header limit", ErrBadHeader, n)
	}
	return n, nil
}

// marshalInto writes the TCP header (with options, zero checksum) into buf.
func (h *TCPHeader) marshalInto(buf []byte, optLen int) {
	binary.BigEndian.PutUint16(buf[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], h.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], h.Seq)
	binary.BigEndian.PutUint32(buf[8:12], h.Ack)
	buf[12] = uint8((tcpBaseHeaderLen+optLen)/4) << 4
	buf[13] = h.Flags
	binary.BigEndian.PutUint16(buf[14:16], h.Window)
	buf[16], buf[17] = 0, 0 // checksum, filled by caller
	binary.BigEndian.PutUint16(buf[18:20], h.Urgent)
	i := tcpBaseHeaderLen
	for _, o := range h.Options {
		switch o.Kind {
		case OptEOL, OptNOP:
			buf[i] = o.Kind
			i++
		default:
			buf[i] = o.Kind
			buf[i+1] = byte(2 + len(o.Data))
			copy(buf[i+2:], o.Data)
			i += 2 + len(o.Data)
		}
	}
	for ; i < tcpBaseHeaderLen+optLen; i++ {
		buf[i] = OptEOL
	}
}

// decodeTCP parses a TCP segment (header + payload) carried between src and
// dst, verifying the checksum against the pseudo-header. Option data is
// copied out of seg.
func decodeTCP(src, dst [4]byte, seg []byte) (*TCPHeader, []byte, error) {
	h := new(TCPHeader)
	payload, err := decodeTCPInto(h, src, dst, seg, true)
	if err != nil {
		return nil, nil, err
	}
	return h, payload, nil
}

// decodeTCPInto is decodeTCP writing into a caller-owned header, reusing
// h.Options' backing storage. When copyData is false, option data aliases
// seg instead of being copied.
func decodeTCPInto(h *TCPHeader, src, dst [4]byte, seg []byte, copyData bool) ([]byte, error) {
	if len(seg) < tcpBaseHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, need %d for TCP header", ErrTruncated, len(seg), tcpBaseHeaderLen)
	}
	dataOff := int(seg[12]>>4) * 4
	if dataOff < tcpBaseHeaderLen || dataOff > len(seg) {
		return nil, fmt.Errorf("%w: TCP data offset %d", ErrBadHeader, dataOff)
	}
	if transportChecksum(src, dst, ProtoTCP, seg) != 0 {
		return nil, fmt.Errorf("%w: TCP segment", ErrBadChecksum)
	}
	h.SrcPort = binary.BigEndian.Uint16(seg[0:2])
	h.DstPort = binary.BigEndian.Uint16(seg[2:4])
	h.Seq = binary.BigEndian.Uint32(seg[4:8])
	h.Ack = binary.BigEndian.Uint32(seg[8:12])
	h.Flags = seg[13] & 0x3f
	h.Window = binary.BigEndian.Uint16(seg[14:16])
	h.Checksum = binary.BigEndian.Uint16(seg[16:18])
	h.Urgent = binary.BigEndian.Uint16(seg[18:20])
	opts, err := appendOptions(h.Options[:0], seg[tcpBaseHeaderLen:dataOff], copyData)
	if err != nil {
		h.Options = h.Options[:0]
		return nil, err
	}
	h.Options = opts
	return seg[dataOff:], nil
}

// appendOptions parses wire options into opts. A fresh decode passes nil;
// scratch decoders pass a reused slice truncated to zero length.
func appendOptions(opts []TCPOption, b []byte, copyData bool) ([]TCPOption, error) {
	for i := 0; i < len(b); {
		kind := b[i]
		switch kind {
		case OptEOL:
			return opts, nil
		case OptNOP:
			opts = append(opts, TCPOption{Kind: OptNOP})
			i++
		default:
			if i+1 >= len(b) {
				return nil, fmt.Errorf("%w: option kind %d missing length", ErrBadHeader, kind)
			}
			l := int(b[i+1])
			if l < 2 || i+l > len(b) {
				return nil, fmt.Errorf("%w: option kind %d length %d", ErrBadHeader, kind, l)
			}
			data := b[i+2 : i+l : i+l]
			if copyData {
				c := make([]byte, l-2)
				copy(c, data)
				data = c
			}
			opts = append(opts, TCPOption{Kind: kind, Data: data})
			i += l
		}
	}
	return opts, nil
}
