package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMP message types used by the Bennett-style baseline test.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

const icmpHeaderLen = 8

// ICMPEcho is an ICMP echo request or reply.
type ICMPEcho struct {
	Type     uint8 // ICMPEchoRequest or ICMPEchoReply
	Code     uint8
	Checksum uint16 // filled on decode; computed on encode
	Ident    uint16
	Seq      uint16
	Payload  []byte
}

// IsRequest reports whether the message is an echo request.
func (e *ICMPEcho) IsRequest() bool { return e.Type == ICMPEchoRequest }

// marshalInto writes the wire encoding with checksum into b, which must be
// icmpHeaderLen+len(e.Payload) bytes. b may hold stale data: every byte is
// overwritten, and the checksum field is explicitly cleared before the sum
// is computed over the buffer.
func (e *ICMPEcho) marshalInto(b []byte) {
	b[0] = e.Type
	b[1] = e.Code
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], e.Ident)
	binary.BigEndian.PutUint16(b[6:8], e.Seq)
	copy(b[icmpHeaderLen:], e.Payload)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
}

// decodeICMP parses an ICMP echo message, verifying its checksum. Non-echo
// ICMP types are rejected; the tools never emit or consume them. The
// payload is copied out of seg.
func decodeICMP(seg []byte) (*ICMPEcho, error) {
	e := new(ICMPEcho)
	if err := decodeICMPInto(e, seg); err != nil {
		return nil, err
	}
	e.Payload = append([]byte(nil), e.Payload...)
	return e, nil
}

// decodeICMPInto is decodeICMP writing into a caller-owned struct; the
// payload aliases seg.
func decodeICMPInto(e *ICMPEcho, seg []byte) error {
	if len(seg) < icmpHeaderLen {
		return fmt.Errorf("%w: %d bytes, need %d for ICMP header", ErrTruncated, len(seg), icmpHeaderLen)
	}
	if Checksum(seg) != 0 {
		return fmt.Errorf("%w: ICMP message", ErrBadChecksum)
	}
	e.Type = seg[0]
	e.Code = seg[1]
	e.Checksum = binary.BigEndian.Uint16(seg[2:4])
	e.Ident = binary.BigEndian.Uint16(seg[4:6])
	e.Seq = binary.BigEndian.Uint16(seg[6:8])
	if e.Type != ICMPEchoRequest && e.Type != ICMPEchoReply {
		return fmt.Errorf("%w: unsupported ICMP type %d", ErrBadHeader, e.Type)
	}
	e.Payload = seg[icmpHeaderLen:]
	return nil
}
