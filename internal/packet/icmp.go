package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMP message types used by the Bennett-style baseline test.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

const icmpHeaderLen = 8

// ICMPEcho is an ICMP echo request or reply.
type ICMPEcho struct {
	Type     uint8 // ICMPEchoRequest or ICMPEchoReply
	Code     uint8
	Checksum uint16 // filled on decode; computed on encode
	Ident    uint16
	Seq      uint16
	Payload  []byte
}

// IsRequest reports whether the message is an echo request.
func (e *ICMPEcho) IsRequest() bool { return e.Type == ICMPEchoRequest }

// marshal returns the wire encoding with checksum.
func (e *ICMPEcho) marshal() []byte {
	b := make([]byte, icmpHeaderLen+len(e.Payload))
	b[0] = e.Type
	b[1] = e.Code
	binary.BigEndian.PutUint16(b[4:6], e.Ident)
	binary.BigEndian.PutUint16(b[6:8], e.Seq)
	copy(b[icmpHeaderLen:], e.Payload)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return b
}

// decodeICMP parses an ICMP echo message, verifying its checksum. Non-echo
// ICMP types are rejected; the tools never emit or consume them.
func decodeICMP(seg []byte) (*ICMPEcho, error) {
	if len(seg) < icmpHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, need %d for ICMP header", ErrTruncated, len(seg), icmpHeaderLen)
	}
	if Checksum(seg) != 0 {
		return nil, fmt.Errorf("%w: ICMP message", ErrBadChecksum)
	}
	e := &ICMPEcho{
		Type:     seg[0],
		Code:     seg[1],
		Checksum: binary.BigEndian.Uint16(seg[2:4]),
		Ident:    binary.BigEndian.Uint16(seg[4:6]),
		Seq:      binary.BigEndian.Uint16(seg[6:8]),
	}
	if e.Type != ICMPEchoRequest && e.Type != ICMPEchoReply {
		return nil, fmt.Errorf("%w: unsupported ICMP type %d", ErrBadHeader, e.Type)
	}
	e.Payload = append([]byte(nil), seg[icmpHeaderLen:]...)
	return e, nil
}
