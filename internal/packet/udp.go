package packet

import (
	"encoding/binary"
	"fmt"
)

const udpHeaderLen = 8

// UDPHeader is a parsed UDP header. The cooperative IPPM-style measurement
// protocol (internal/ippm) runs over UDP, as the IETF active-measurement
// drafts the paper cites do.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16 // filled on decode; computed on encode
	Checksum         uint16 // filled on decode; computed on encode
}

// EncodeUDP builds a complete IPv4+UDP datagram. ip.Protocol is forced to
// UDP; lengths and checksums are computed.
func EncodeUDP(ip *IPv4Header, udp *UDPHeader, payload []byte) ([]byte, error) {
	segLen := udpHeaderLen + len(payload)
	if segLen > 0xffff {
		return nil, fmt.Errorf("%w: UDP length %d", ErrBadHeader, segLen)
	}
	total := ipv4HeaderLen + segLen
	buf := make([]byte, total)
	ip.Protocol = ProtoUDP
	if err := ip.marshalInto(buf, total); err != nil {
		return nil, err
	}
	seg := buf[ipv4HeaderLen:]
	binary.BigEndian.PutUint16(seg[0:2], udp.SrcPort)
	binary.BigEndian.PutUint16(seg[2:4], udp.DstPort)
	binary.BigEndian.PutUint16(seg[4:6], uint16(segLen))
	copy(seg[udpHeaderLen:], payload)
	src, dst := ip.Src.As4(), ip.Dst.As4()
	csum := transportChecksum(src, dst, ProtoUDP, seg)
	if csum == 0 {
		csum = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	seg[6] = byte(csum >> 8)
	seg[7] = byte(csum)
	return buf, nil
}

// decodeUDP parses a UDP segment, verifying the checksum (zero means the
// sender opted out, which we accept, as receivers must).
func decodeUDP(src, dst [4]byte, seg []byte) (*UDPHeader, []byte, error) {
	h := new(UDPHeader)
	payload, err := decodeUDPInto(h, src, dst, seg)
	if err != nil {
		return nil, nil, err
	}
	return h, payload, nil
}

// decodeUDPInto is decodeUDP writing into a caller-owned header.
func decodeUDPInto(h *UDPHeader, src, dst [4]byte, seg []byte) ([]byte, error) {
	if len(seg) < udpHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, need %d for UDP header", ErrTruncated, len(seg), udpHeaderLen)
	}
	h.SrcPort = binary.BigEndian.Uint16(seg[0:2])
	h.DstPort = binary.BigEndian.Uint16(seg[2:4])
	h.Length = binary.BigEndian.Uint16(seg[4:6])
	h.Checksum = binary.BigEndian.Uint16(seg[6:8])
	if int(h.Length) < udpHeaderLen || int(h.Length) > len(seg) {
		return nil, fmt.Errorf("%w: UDP length %d of %d", ErrBadHeader, h.Length, len(seg))
	}
	if h.Checksum != 0 {
		if transportChecksum(src, dst, ProtoUDP, seg[:h.Length]) != 0 {
			return nil, fmt.Errorf("%w: UDP segment", ErrBadChecksum)
		}
	}
	return seg[udpHeaderLen:h.Length], nil
}
