package packet

import (
	"fmt"
	"net/netip"
)

// Packet is a fully decoded IPv4 datagram. Exactly one of TCP, UDP or ICMP
// is non-nil, according to IP.Protocol.
type Packet struct {
	IP      IPv4Header
	TCP     *TCPHeader
	UDP     *UDPHeader
	ICMP    *ICMPEcho
	Payload []byte // transport payload (TCP/UDP data); for ICMP see ICMP.Payload
	WireLen int    // length of the datagram as captured
}

// Decode parses a raw IPv4 datagram, verifying the IP header checksum and
// the transport checksum. Protocols other than TCP, UDP and ICMP are
// rejected.
func Decode(data []byte) (*Packet, error) {
	ip, transport, err := decodeIPv4(data)
	if err != nil {
		return nil, err
	}
	p := &Packet{IP: ip, WireLen: int(ip.TotalLen)}
	src, dst := ip.Src.As4(), ip.Dst.As4()
	switch ip.Protocol {
	case ProtoTCP:
		tcp, payload, err := decodeTCP(src, dst, transport)
		if err != nil {
			return nil, err
		}
		p.TCP = tcp
		p.Payload = payload
	case ProtoUDP:
		udp, payload, err := decodeUDP(src, dst, transport)
		if err != nil {
			return nil, err
		}
		p.UDP = udp
		p.Payload = payload
	case ProtoICMP:
		icmp, err := decodeICMP(transport)
		if err != nil {
			return nil, err
		}
		p.ICMP = icmp
	default:
		return nil, badProtoErr(ip.Protocol)
	}
	return p, nil
}

func badProtoErr(proto uint8) error {
	return fmt.Errorf("%w: protocol %d", ErrBadHeader, proto)
}

// EncodeTCP builds a complete IPv4+TCP datagram. ip.TotalLen, checksums and
// the TCP data offset are computed; ip.Protocol is forced to TCP.
func EncodeTCP(ip *IPv4Header, tcp *TCPHeader, payload []byte) ([]byte, error) {
	buf, err := AppendTCP(nil, ip, tcp, payload)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// EncodeICMP builds a complete IPv4+ICMP echo datagram. ip.Protocol is
// forced to ICMP.
func EncodeICMP(ip *IPv4Header, echo *ICMPEcho) ([]byte, error) {
	buf, err := AppendICMP(nil, ip, echo)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// FlowKey identifies a transport flow by the classic 4-tuple plus protocol.
// It is comparable and usable as a map key. For ICMP the ports carry the
// echo identifier in SrcPort and zero in DstPort.
type FlowKey struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// Reverse returns the key of the opposite direction of the same flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// String renders the key as "src:sport > dst:dport/proto".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d > %s:%d/%d", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Hash returns a 64-bit FNV-1a hash of the key. Load balancers in the
// network model hash the forward-direction tuple, which is exactly how a
// per-flow balancer keeps both SYN-test packets on one backend.
func (k FlowKey) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	s, d := k.Src.As4(), k.Dst.As4()
	for _, b := range s {
		mix(b)
	}
	for _, b := range d {
		mix(b)
	}
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.SrcPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.DstPort))
	mix(k.Proto)
	return h
}

// Flow extracts the flow key of a decoded packet.
func (p *Packet) Flow() FlowKey {
	k := FlowKey{Src: p.IP.Src, Dst: p.IP.Dst, Proto: p.IP.Protocol}
	switch {
	case p.TCP != nil:
		k.SrcPort = p.TCP.SrcPort
		k.DstPort = p.TCP.DstPort
	case p.UDP != nil:
		k.SrcPort = p.UDP.SrcPort
		k.DstPort = p.UDP.DstPort
	case p.ICMP != nil:
		k.SrcPort = p.ICMP.Ident
	}
	return k
}

// PeekFlow extracts a flow key from a raw datagram without full validation.
// Network elements (load balancers, taps) use it to classify frames cheaply;
// it does not verify checksums. The ok result is false if the frame is too
// short to classify.
func PeekFlow(data []byte) (FlowKey, bool) {
	if len(data) < ipv4HeaderLen {
		return FlowKey{}, false
	}
	if data[0]>>4 != 4 || int(data[0]&0x0f)*4 != ipv4HeaderLen {
		return FlowKey{}, false
	}
	k := FlowKey{
		Src:   netip.AddrFrom4([4]byte(data[12:16])),
		Dst:   netip.AddrFrom4([4]byte(data[16:20])),
		Proto: data[9],
	}
	switch k.Proto {
	case ProtoTCP, ProtoUDP:
		if len(data) < ipv4HeaderLen+4 {
			return FlowKey{}, false
		}
		k.SrcPort = uint16(data[20])<<8 | uint16(data[21])
		k.DstPort = uint16(data[22])<<8 | uint16(data[23])
	case ProtoICMP:
		if len(data) >= ipv4HeaderLen+6 {
			k.SrcPort = uint16(data[24])<<8 | uint16(data[25])
		}
	}
	return k, true
}

// Summary renders a one-line tcpdump-flavored description of the packet,
// used by traces and debug output.
func (p *Packet) Summary() string {
	switch {
	case p.UDP != nil:
		return fmt.Sprintf("%s:%d > %s:%d UDP len=%d ipid=%d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.Payload), p.IP.ID)
	case p.TCP != nil:
		return fmt.Sprintf("%s:%d > %s:%d [%s] seq=%d ack=%d win=%d len=%d ipid=%d",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			p.TCP.FlagString(), p.TCP.Seq, p.TCP.Ack, p.TCP.Window, len(p.Payload), p.IP.ID)
	case p.ICMP != nil:
		kind := "echo-reply"
		if p.ICMP.IsRequest() {
			kind = "echo-request"
		}
		return fmt.Sprintf("%s > %s %s id=%d seq=%d len=%d ipid=%d",
			p.IP.Src, p.IP.Dst, kind, p.ICMP.Ident, p.ICMP.Seq, len(p.ICMP.Payload), p.IP.ID)
	default:
		return fmt.Sprintf("%s > %s proto=%d", p.IP.Src, p.IP.Dst, p.IP.Protocol)
	}
}
