package packet

import (
	"encoding/binary"
	"fmt"
)

// IP fragmentation and reassembly. The identification field the dual
// connection test leverages exists for exactly this (§III-A): when a
// router fragments a datagram, every fragment carries the original's IPID
// and the receiver uses it as the reassembly key — which is why senders
// keep IPIDs unique over the packet lifetime, and why the traditional
// implementation is a global counter.

// Fragment splits a raw IPv4 datagram into fragments that fit mtu bytes
// each (header included). Datagrams that already fit are returned as a
// single-element slice sharing the input. DF-marked datagrams that need
// fragmenting are rejected, as a router would (ICMP "fragmentation
// needed" is out of scope; the caller drops).
func Fragment(data []byte, mtu int) ([][]byte, error) {
	if mtu < ipv4HeaderLen+8 {
		return nil, fmt.Errorf("%w: mtu %d too small to fragment", ErrBadHeader, mtu)
	}
	if len(data) <= mtu {
		return [][]byte{data}, nil
	}
	if len(data) < ipv4HeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	ff := binary.BigEndian.Uint16(data[6:8])
	if ff>>13&FlagDF != 0 {
		return nil, fmt.Errorf("%w: DF set on %d-byte datagram over mtu %d", ErrBadHeader, len(data), mtu)
	}
	payload := data[ipv4HeaderLen:]
	// Fragment payload size must be a multiple of 8 except for the last.
	chunk := (mtu - ipv4HeaderLen) &^ 7
	var frags [][]byte
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		more := uint16(FlagMF)
		if end >= len(payload) {
			end = len(payload)
			more = ff >> 13 & FlagMF // preserve an incoming MF on the tail
		}
		f := make([]byte, ipv4HeaderLen+end-off)
		copy(f, data[:ipv4HeaderLen])
		copy(f[ipv4HeaderLen:], payload[off:end])
		binary.BigEndian.PutUint16(f[2:4], uint16(len(f)))
		origOff := ff & 0x1fff
		binary.BigEndian.PutUint16(f[6:8], more<<13|(origOff+uint16(off/8))&0x1fff)
		// Recompute the header checksum.
		f[10], f[11] = 0, 0
		cs := Checksum(f[:ipv4HeaderLen])
		f[10], f[11] = byte(cs>>8), byte(cs)
		frags = append(frags, f)
	}
	return frags, nil
}

// reassemblyKey identifies a datagram under reassembly (RFC 791: source,
// destination, protocol, identification).
type reassemblyKey struct {
	src, dst [4]byte
	proto    uint8
	id       uint16
}

type reassembly struct {
	holes    map[int]int // offset -> length of received ranges
	data     []byte
	header   []byte // first fragment's header, reused for the result
	totalLen int    // payload length, known once the MF=0 fragment arrives
	received int
}

// Reassembler reconstructs datagrams from fragments arriving in any order.
// The zero value is not usable; call NewReassembler. It is the receiving
// host's counterpart of Fragment and demonstrates why reordering is
// harmless to reassembly (offsets, not arrival order, place fragments) as
// long as IPIDs are unique among concurrent datagrams.
type Reassembler struct {
	pending map[reassemblyKey]*reassembly
	// MaxPending bounds concurrent reassemblies; beyond it the oldest are
	// dropped (simplified buffer management).
	MaxPending int
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[reassemblyKey]*reassembly), MaxPending: 256}
}

// IsFragment reports whether the datagram is an IP fragment (MF set or a
// nonzero fragment offset). Hosts use it to skip reassembly entirely on
// unfragmented traffic. Datagrams too short to carry an IPv4 header report
// false; the decoder rejects those downstream.
func IsFragment(data []byte) bool {
	if len(data) < ipv4HeaderLen {
		return false
	}
	ff := binary.BigEndian.Uint16(data[6:8])
	return ff>>13&FlagMF != 0 || ff&0x1fff != 0
}

// Pending returns the number of incomplete datagrams held.
func (r *Reassembler) Pending() int { return len(r.pending) }

// Input accepts one datagram or fragment. It returns the complete datagram
// (the input itself if it was never fragmented) when reassembly finishes,
// or nil if more fragments are needed. Malformed input returns an error.
func (r *Reassembler) Input(data []byte) ([]byte, error) {
	if len(data) < ipv4HeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	ff := binary.BigEndian.Uint16(data[6:8])
	mf := ff>>13&FlagMF != 0
	off := int(ff&0x1fff) * 8
	if !mf && off == 0 {
		return data, nil // not a fragment
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:4]))
	if totalLen > len(data) || totalLen < ipv4HeaderLen {
		return nil, fmt.Errorf("%w: fragment total length %d", ErrTruncated, totalLen)
	}
	key := reassemblyKey{
		src:   [4]byte(data[12:16]),
		dst:   [4]byte(data[16:20]),
		proto: data[9],
		id:    binary.BigEndian.Uint16(data[4:6]),
	}
	ra := r.pending[key]
	if ra == nil {
		if len(r.pending) >= r.MaxPending {
			r.evictOne()
		}
		ra = &reassembly{holes: make(map[int]int), totalLen: -1}
		r.pending[key] = ra
	}
	payload := data[ipv4HeaderLen:totalLen]
	if need := off + len(payload); need > len(ra.data) {
		grown := make([]byte, need)
		copy(grown, ra.data)
		ra.data = grown
	}
	if _, dup := ra.holes[off]; !dup {
		ra.received += len(payload)
		ra.holes[off] = len(payload)
	}
	copy(ra.data[off:], payload)
	if !mf {
		ra.totalLen = off + len(payload)
	}
	if off == 0 {
		// Keep the first fragment's header for the reassembled datagram.
		hdr := make([]byte, ipv4HeaderLen)
		copy(hdr, data[:ipv4HeaderLen])
		ra.header = hdr
	}
	if ra.totalLen >= 0 && ra.received >= ra.totalLen && ra.contiguous() && ra.header != nil {
		delete(r.pending, key)
		return assemble(ra)
	}
	return nil, nil
}

func (r *Reassembler) evictOne() {
	for k := range r.pending {
		delete(r.pending, k)
		return
	}
}

// contiguous reports whether the received ranges cover [0, totalLen).
func (ra *reassembly) contiguous() bool {
	covered := 0
	for covered < ra.totalLen {
		l, ok := ra.holes[covered]
		if !ok {
			return false
		}
		covered += l
	}
	return true
}

// assemble rebuilds the full datagram from the stored header and payload.
func assemble(ra *reassembly) ([]byte, error) {
	total := ipv4HeaderLen + ra.totalLen
	out := make([]byte, total)
	copy(out, ra.header)
	copy(out[ipv4HeaderLen:], ra.data[:ra.totalLen])
	binary.BigEndian.PutUint16(out[2:4], uint16(total))
	binary.BigEndian.PutUint16(out[6:8], 0) // clear MF and offset
	out[10], out[11] = 0, 0
	cs := Checksum(out[:ipv4HeaderLen])
	out[10], out[11] = byte(cs>>8), byte(cs)
	return out, nil
}
