package packet

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
)

func appendTestHeaders() (*IPv4Header, *TCPHeader) {
	ip := &IPv4Header{
		Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Dst: netip.AddrFrom4([4]byte{10, 0, 1, 1}),
		ID: 0xbeef, TOS: 0x10, Flags: FlagDF,
	}
	tcp := &TCPHeader{
		SrcPort: 40000, DstPort: 80, Seq: 0x01020304, Ack: 0x0a0b0c0d,
		Flags: FlagACK | FlagPSH, Window: 8192, Urgent: 7,
		Options: []TCPOption{
			MSSOption(1460), SACKPermittedOption(),
			SACKOption([]SACKBlock{{Left: 100, Right: 200}, {Left: 300, Right: 400}}),
		},
	}
	return ip, tcp
}

// TestAppendTCPMatchesEncodeTCP pins the append variant to EncodeTCP byte
// for byte, including when appending after existing content and when the
// destination has stale capacity (the non-zeroing grow path).
func TestAppendTCPMatchesEncodeTCP(t *testing.T) {
	ip, tcp := appendTestHeaders()
	payload := []byte("hello reordering world")
	want, err := EncodeTCP(ip, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}

	got, err := AppendTCP(nil, ip, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("AppendTCP(nil) differs from EncodeTCP:\n% x\n% x", want, got)
	}

	// Append after a prefix, into a buffer with dirty retained capacity.
	dirty := bytes.Repeat([]byte{0xff}, 512)[:3]
	dirty[0], dirty[1], dirty[2] = 'a', 'b', 'c'
	got, err = AppendTCP(dirty, ip, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:3], []byte("abc")) || !bytes.Equal(got[3:], want) {
		t.Fatal("AppendTCP with dirty capacity corrupted output")
	}

	// The result must decode cleanly (checksums included).
	if _, err := Decode(got[3:]); err != nil {
		t.Fatalf("appended datagram does not decode: %v", err)
	}
}

// TestAppendICMPMatchesEncodeICMP pins the ICMP append variant the same way.
func TestAppendICMPMatchesEncodeICMP(t *testing.T) {
	ip := &IPv4Header{Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Dst: netip.AddrFrom4([4]byte{10, 0, 1, 1}), ID: 9}
	echo := &ICMPEcho{Type: ICMPEchoRequest, Ident: 77, Seq: 3, Payload: []byte("ping")}
	want, err := EncodeICMP(ip, echo)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AppendICMP(bytes.Repeat([]byte{0xee}, 256)[:0], ip, echo)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("AppendICMP differs from EncodeICMP:\n% x\n% x", want, got)
	}
}

// TestDecodeIntoMatchesDecode checks the scratch decoder agrees with
// Decode field for field across TCP (with options), UDP and ICMP, and that
// one reused Packet decodes all three in sequence without cross-talk.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	ip, tcp := appendTestHeaders()
	tcpRaw, err := EncodeTCP(ip, tcp, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	icmpRaw, err := EncodeICMP(&IPv4Header{Src: ip.Src, Dst: ip.Dst, ID: 4},
		&ICMPEcho{Type: ICMPEchoReply, Ident: 8, Seq: 9, Payload: []byte("pong")})
	if err != nil {
		t.Fatal(err)
	}

	var scratch Packet
	for round := 0; round < 3; round++ { // reuse across rounds and protocols
		for _, raw := range [][]byte{tcpRaw, icmpRaw} {
			want, err := Decode(raw)
			if err != nil {
				t.Fatal(err)
			}
			if err := DecodeInto(&scratch, raw); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.IP, scratch.IP) {
				t.Fatalf("IP headers differ:\n%+v\n%+v", want.IP, scratch.IP)
			}
			if !bytes.Equal(want.Payload, scratch.Payload) {
				t.Fatalf("payloads differ: %q vs %q", want.Payload, scratch.Payload)
			}
			switch {
			case want.TCP != nil:
				if scratch.TCP == nil || scratch.UDP != nil || scratch.ICMP != nil {
					t.Fatal("DecodeInto set wrong transport for TCP")
				}
				if !reflect.DeepEqual(*want.TCP, *scratch.TCP) {
					t.Fatalf("TCP headers differ:\n%+v\n%+v", *want.TCP, *scratch.TCP)
				}
			case want.ICMP != nil:
				if scratch.ICMP == nil || scratch.TCP != nil || scratch.UDP != nil {
					t.Fatal("DecodeInto set wrong transport for ICMP")
				}
				if !reflect.DeepEqual(*want.ICMP, *scratch.ICMP) {
					t.Fatalf("ICMP messages differ:\n%+v\n%+v", *want.ICMP, *scratch.ICMP)
				}
			}
		}
	}

	// Corrupt input must error exactly like Decode.
	bad := append([]byte(nil), tcpRaw...)
	bad[30] ^= 0xff // flip a TCP header byte: checksum failure
	if _, err := Decode(bad); err == nil {
		t.Fatal("Decode accepted corrupt datagram")
	}
	if err := DecodeInto(&scratch, bad); err == nil {
		t.Fatal("DecodeInto accepted corrupt datagram")
	}
}

// TestDecodeIntoSteadyStateAllocs pins the scratch decoder's allocation
// profile: after the first decode populated the header structs, repeated
// decodes are allocation-free.
func TestDecodeIntoSteadyStateAllocs(t *testing.T) {
	ip, tcp := appendTestHeaders()
	raw, err := EncodeTCP(ip, tcp, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	var scratch Packet
	if err := DecodeInto(&scratch, raw); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeInto(&scratch, raw); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Fatalf("steady-state DecodeInto allocates %.1f objects, want 0", allocs)
	}
}
