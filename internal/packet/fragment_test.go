package packet

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// bigDatagram builds a TCP datagram with n payload bytes (DF clear).
func bigDatagram(t testing.TB, n int, id uint16) []byte {
	t.Helper()
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	raw, err := EncodeTCP(&IPv4Header{Src: probeAddr, Dst: serverAddr, ID: id},
		&TCPHeader{SrcPort: 1000, DstPort: 80, Seq: 1, Flags: FlagACK, Window: 100}, payload)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestFragmentSmallPassesThrough(t *testing.T) {
	d := bigDatagram(t, 100, 1)
	frags, err := Fragment(d, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || !bytes.Equal(frags[0], d) {
		t.Fatal("small datagram was modified")
	}
}

func TestFragmentSplitsAndMarks(t *testing.T) {
	d := bigDatagram(t, 1000, 7)
	frags, err := Fragment(d, 576)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 2 {
		t.Fatalf("fragments = %d", len(frags))
	}
	for i, f := range frags {
		if len(f) > 576 {
			t.Fatalf("fragment %d is %d bytes > mtu", i, len(f))
		}
		// Every fragment must carry the original IPID and a valid header
		// checksum.
		if got := uint16(f[4])<<8 | uint16(f[5]); got != 7 {
			t.Fatalf("fragment %d IPID = %d", i, got)
		}
		if Checksum(f[:20]) != 0 {
			t.Fatalf("fragment %d header checksum invalid", i)
		}
		mf := f[6]>>5&FlagMF != 0
		if i < len(frags)-1 && !mf {
			t.Fatalf("fragment %d missing MF", i)
		}
		if i == len(frags)-1 && mf {
			t.Fatal("last fragment has MF set")
		}
	}
}

func TestFragmentRejectsDF(t *testing.T) {
	payload := make([]byte, 1000)
	raw, err := EncodeTCP(&IPv4Header{Src: probeAddr, Dst: serverAddr, Flags: FlagDF},
		&TCPHeader{SrcPort: 1, DstPort: 2}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fragment(raw, 576); err == nil {
		t.Fatal("DF datagram fragmented")
	}
}

func TestFragmentRejectsTinyMTU(t *testing.T) {
	if _, err := Fragment(bigDatagram(t, 100, 1), 24); err == nil {
		t.Fatal("mtu 24 accepted")
	}
}

func TestReassembleInOrder(t *testing.T) {
	d := bigDatagram(t, 2000, 9)
	frags, err := Fragment(d, 576)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler()
	var out []byte
	for i, f := range frags {
		got, err := r.Input(f)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(frags)-1 && got != nil {
			t.Fatal("reassembly completed early")
		}
		out = got
	}
	if out == nil {
		t.Fatal("reassembly never completed")
	}
	if !bytes.Equal(out, d) {
		t.Fatal("reassembled datagram differs from the original")
	}
	// The result must decode cleanly (checksums intact end to end).
	p, err := Decode(out)
	if err != nil {
		t.Fatalf("reassembled datagram undecodable: %v", err)
	}
	if len(p.Payload) != 2000 {
		t.Fatalf("payload %d bytes", len(p.Payload))
	}
	if r.Pending() != 0 {
		t.Fatal("reassembler leaked state")
	}
}

func TestReassembleAnyOrder(t *testing.T) {
	// The point of the IPID design: fragment arrival order is irrelevant.
	d := bigDatagram(t, 3000, 11)
	frags, err := Fragment(d, 576)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(frags))
		r := NewReassembler()
		var out []byte
		for _, i := range perm {
			got, err := r.Input(frags[i])
			if err != nil {
				t.Fatal(err)
			}
			if got != nil {
				out = got
			}
		}
		if !bytes.Equal(out, d) {
			t.Fatalf("permutation %v failed to reassemble", perm)
		}
	}
}

func TestReassembleInterleavedDatagrams(t *testing.T) {
	// Two datagrams fragment concurrently; distinct IPIDs keep them apart.
	d1 := bigDatagram(t, 1200, 21)
	d2 := bigDatagram(t, 1200, 22)
	f1, _ := Fragment(d1, 576)
	f2, _ := Fragment(d2, 576)
	r := NewReassembler()
	var got [][]byte
	for i := 0; i < len(f1) || i < len(f2); i++ {
		for _, fs := range [][][]byte{f1, f2} {
			if i < len(fs) {
				if out, err := r.Input(fs[i]); err != nil {
					t.Fatal(err)
				} else if out != nil {
					got = append(got, out)
				}
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("reassembled %d datagrams, want 2", len(got))
	}
	if !bytes.Equal(got[0], d1) && !bytes.Equal(got[1], d1) {
		t.Fatal("d1 not reconstructed")
	}
}

func TestReassembleDuplicateFragment(t *testing.T) {
	d := bigDatagram(t, 1000, 31)
	frags, _ := Fragment(d, 576)
	r := NewReassembler()
	if _, err := r.Input(frags[0]); err != nil {
		t.Fatal(err)
	}
	if out, err := r.Input(frags[0]); err != nil || out != nil {
		t.Fatal("duplicate fragment mishandled")
	}
	out, err := r.Input(frags[1])
	if err != nil || !bytes.Equal(out, d) {
		t.Fatalf("reassembly after duplicate failed: %v", err)
	}
}

func TestReassemblerEviction(t *testing.T) {
	r := NewReassembler()
	r.MaxPending = 4
	for id := uint16(0); id < 10; id++ {
		frags, _ := Fragment(bigDatagram(t, 1000, id), 576)
		if _, err := r.Input(frags[0]); err != nil { // never complete
			t.Fatal(err)
		}
	}
	if r.Pending() > 4 {
		t.Fatalf("Pending = %d, want <= 4", r.Pending())
	}
}

func TestReassemblerRejectsGarbage(t *testing.T) {
	r := NewReassembler()
	if _, err := r.Input([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestNonFragmentPassesThrough(t *testing.T) {
	d := bigDatagram(t, 100, 41)
	r := NewReassembler()
	out, err := r.Input(d)
	if err != nil || !bytes.Equal(out, d) {
		t.Fatal("whole datagram should pass through unchanged")
	}
}

// Property: fragment-then-reassemble is the identity for any payload size
// and MTU, under any arrival permutation.
func TestQuickFragmentRoundTrip(t *testing.T) {
	f := func(seed uint64, size uint16, mtuSel uint8) bool {
		n := int(size)%4000 + 1
		mtus := []int{68, 296, 576, 1006, 1500}
		mtu := mtus[int(mtuSel)%len(mtus)]
		d := bigDatagram(t, n, uint16(seed))
		frags, err := Fragment(d, mtu)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 42))
		perm := rng.Perm(len(frags))
		r := NewReassembler()
		var out []byte
		for _, i := range perm {
			got, err := r.Input(frags[i])
			if err != nil {
				return false
			}
			if got != nil {
				out = got
			}
		}
		return bytes.Equal(out, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFragmentReassemble(b *testing.B) {
	d := bigDatagram(b, 8000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frags, err := Fragment(d, 1500)
		if err != nil {
			b.Fatal(err)
		}
		r := NewReassembler()
		for _, f := range frags {
			if _, err := r.Input(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}
