package packet

import (
	"bytes"
	"testing"
)

// Go-native fuzz targets; `go test` runs the seed corpus, and `go test
// -fuzz=FuzzDecode ./internal/packet` explores further. The decoder and
// the reassembler must never panic and must uphold their validation
// promises on arbitrary input.

func FuzzDecode(f *testing.F) {
	valid, _ := EncodeTCP(&IPv4Header{Src: probeAddr, Dst: serverAddr, ID: 7},
		&TCPHeader{SrcPort: 1000, DstPort: 80, Seq: 42, Flags: FlagACK, Window: 100,
			Options: []TCPOption{MSSOption(1460), SACKPermittedOption()}},
		[]byte("payload"))
	f.Add(valid)
	icmp, _ := EncodeICMP(&IPv4Header{Src: probeAddr, Dst: serverAddr},
		&ICMPEcho{Type: ICMPEchoRequest, Ident: 1, Seq: 2, Payload: []byte{1, 2, 3}})
	f.Add(icmp)
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		// Anything the decoder accepts must re-encode (semantically: the
		// encoder normalizes TTL 0 and option padding) and re-decode to
		// the same packet.
		var back []byte
		switch {
		case p.TCP != nil:
			ip := p.IP
			back, err = EncodeTCP(&ip, p.TCP, p.Payload)
		case p.ICMP != nil:
			ip := p.IP
			back, err = EncodeICMP(&ip, p.ICMP)
		default:
			t.Fatal("accepted packet with no transport layer")
		}
		if err != nil {
			t.Fatalf("accepted packet does not re-encode: %v", err)
		}
		q, err := Decode(back)
		if err != nil {
			t.Fatalf("re-encoded packet does not decode: %v", err)
		}
		if q.Summary() != p.Summary() {
			t.Fatalf("roundtrip changed the packet:\n in  %s\n out %s", p.Summary(), q.Summary())
		}
		if p.TCP != nil && !bytes.Equal(q.Payload, p.Payload) {
			t.Fatal("roundtrip changed the payload")
		}
	})
}

func FuzzReassembler(f *testing.F) {
	d := make([]byte, 0)
	{
		payload := make([]byte, 900)
		raw, _ := EncodeTCP(&IPv4Header{Src: probeAddr, Dst: serverAddr, ID: 3},
			&TCPHeader{SrcPort: 1, DstPort: 2, Flags: FlagACK}, payload)
		frags, _ := Fragment(raw, 576)
		for _, fr := range frags {
			d = append(d, fr...)
		}
		f.Add(d, uint8(2))
	}
	f.Add([]byte{0x45, 0x00}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, chunks uint8) {
		n := int(chunks%8) + 1
		r := NewReassembler()
		// Feed arbitrary slices; must never panic, and any completed
		// datagram must at least carry a well-formed IPv4 header length.
		for i := 0; i+n <= len(data); i += n {
			out, err := r.Input(data[i : i+n])
			if err != nil || out == nil {
				continue
			}
			if len(out) < 20 {
				t.Fatalf("reassembler emitted %d bytes", len(out))
			}
		}
	})
}
