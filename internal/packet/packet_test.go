package packet

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

var (
	probeAddr  = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	serverAddr = netip.AddrFrom4([4]byte{10, 0, 0, 2})
)

func mustEncodeTCP(t *testing.T, ip *IPv4Header, tcp *TCPHeader, payload []byte) []byte {
	t.Helper()
	b, err := EncodeTCP(ip, tcp, payload)
	if err != nil {
		t.Fatalf("EncodeTCP: %v", err)
	}
	return b
}

func TestTCPRoundTrip(t *testing.T) {
	ip := &IPv4Header{Src: probeAddr, Dst: serverAddr, ID: 1234, TTL: 61, TOS: 0x10, Flags: FlagDF}
	tcp := &TCPHeader{
		SrcPort: 43210, DstPort: 80,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: FlagSYN | FlagACK, Window: 5840, Urgent: 7,
		Options: []TCPOption{MSSOption(1460), TCPOption{Kind: OptNOP}, SACKPermittedOption()},
	}
	payload := []byte("GET / HTTP/1.0\r\n\r\n")
	raw := mustEncodeTCP(t, ip, tcp, payload)

	p, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.TCP == nil {
		t.Fatal("TCP layer missing")
	}
	if p.IP.Src != probeAddr || p.IP.Dst != serverAddr {
		t.Errorf("addresses: got %s > %s", p.IP.Src, p.IP.Dst)
	}
	if p.IP.ID != 1234 || p.IP.TTL != 61 || p.IP.TOS != 0x10 || p.IP.Flags != FlagDF {
		t.Errorf("IP fields: %+v", p.IP)
	}
	if p.TCP.Seq != 0xdeadbeef || p.TCP.Ack != 0x01020304 {
		t.Errorf("seq/ack: %d/%d", p.TCP.Seq, p.TCP.Ack)
	}
	if !p.TCP.HasFlags(FlagSYN | FlagACK) {
		t.Errorf("flags = %s", p.TCP.FlagString())
	}
	if p.TCP.Window != 5840 || p.TCP.Urgent != 7 {
		t.Errorf("window/urgent: %d/%d", p.TCP.Window, p.TCP.Urgent)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %q", p.Payload)
	}
	if mss, ok := p.TCP.MSS(); !ok || mss != 1460 {
		t.Errorf("MSS = %d, %v", mss, ok)
	}
	if !p.TCP.SACKPermitted() {
		t.Error("SACK-permitted option lost")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	ip := &IPv4Header{Src: probeAddr, Dst: serverAddr, ID: 99}
	echo := &ICMPEcho{Type: ICMPEchoRequest, Ident: 777, Seq: 3, Payload: bytes.Repeat([]byte{0xab}, 48)}
	raw, err := EncodeICMP(ip, echo)
	if err != nil {
		t.Fatalf("EncodeICMP: %v", err)
	}
	p, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.ICMP == nil || !p.ICMP.IsRequest() {
		t.Fatal("ICMP echo request missing")
	}
	if p.ICMP.Ident != 777 || p.ICMP.Seq != 3 || len(p.ICMP.Payload) != 48 {
		t.Errorf("fields: %+v", p.ICMP)
	}
}

func TestDefaultTTL(t *testing.T) {
	raw := mustEncodeTCP(t, &IPv4Header{Src: probeAddr, Dst: serverAddr}, &TCPHeader{SrcPort: 1, DstPort: 2}, nil)
	p, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.IP.TTL != 64 {
		t.Errorf("TTL = %d, want default 64", p.IP.TTL)
	}
}

func TestSACKBlocksRoundTrip(t *testing.T) {
	blocks := []SACKBlock{{Left: 100, Right: 200}, {Left: 300, Right: 450}}
	tcp := &TCPHeader{SrcPort: 80, DstPort: 4000, Flags: FlagACK, Options: []TCPOption{SACKOption(blocks)}}
	raw := mustEncodeTCP(t, &IPv4Header{Src: serverAddr, Dst: probeAddr}, tcp, nil)
	p, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got := p.TCP.SACKBlocks()
	if len(got) != 2 || got[0] != blocks[0] || got[1] != blocks[1] {
		t.Errorf("SACK blocks = %v, want %v", got, blocks)
	}
}

func TestSACKOptionTruncatesToFour(t *testing.T) {
	blocks := make([]SACKBlock, 6)
	for i := range blocks {
		blocks[i] = SACKBlock{Left: uint32(i * 10), Right: uint32(i*10 + 5)}
	}
	o := SACKOption(blocks)
	if len(o.Data) != 32 {
		t.Errorf("SACK option data = %d bytes, want 32 (4 blocks)", len(o.Data))
	}
}

func corrupt(t *testing.T, raw []byte, i int) []byte {
	t.Helper()
	c := append([]byte(nil), raw...)
	c[i] ^= 0x40
	return c
}

func TestBitFlipDetected(t *testing.T) {
	tcp := &TCPHeader{SrcPort: 1000, DstPort: 80, Seq: 42, Flags: FlagACK, Window: 100}
	raw := mustEncodeTCP(t, &IPv4Header{Src: probeAddr, Dst: serverAddr, ID: 7}, tcp, []byte("xy"))
	// Flipping any single bit of any byte must be detected by a checksum
	// (or structural validation) — this is what lets the simulated network
	// carry real octets credibly.
	for i := range raw {
		if _, err := Decode(corrupt(t, raw, i)); err == nil {
			t.Errorf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := mustEncodeTCP(t, &IPv4Header{Src: probeAddr, Dst: serverAddr}, &TCPHeader{SrcPort: 1, DstPort: 2}, nil)
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short ip", valid[:10], ErrTruncated},
		{"short tcp", rechecksum(valid[:24]), ErrTruncated},
		{"ipv6 version", withByte(valid, 0, 0x65), ErrBadVersion},
		{"options ihl", rechecksum(withByte(valid, 0, 0x46)), ErrBadHeader},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if !errors.Is(err, tc.want) {
				t.Errorf("Decode error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeUnsupportedProtocol(t *testing.T) {
	raw := mustEncodeTCP(t, &IPv4Header{Src: probeAddr, Dst: serverAddr}, &TCPHeader{SrcPort: 1, DstPort: 2}, nil)
	raw = withByte(raw, 9, 17) // UDP
	raw = rechecksum(raw)
	if _, err := Decode(raw); !errors.Is(err, ErrBadHeader) {
		t.Errorf("Decode(UDP) error = %v, want ErrBadHeader", err)
	}
}

// withByte returns a copy of b with b[i] = v.
func withByte(b []byte, i int, v byte) []byte {
	c := append([]byte(nil), b...)
	c[i] = v
	return c
}

// rechecksum fixes the IPv4 header checksum of a (possibly mutated) frame so
// that the error under test, not the checksum, is what the decoder sees.
func rechecksum(b []byte) []byte {
	c := append([]byte(nil), b...)
	if len(c) < 20 {
		return c
	}
	c[10], c[11] = 0, 0
	s := Checksum(c[:20])
	c[10], c[11] = byte(s>>8), byte(s)
	return c
}

func TestEncodeRejectsNonIPv4(t *testing.T) {
	v6 := netip.MustParseAddr("::1")
	_, err := EncodeTCP(&IPv4Header{Src: v6, Dst: serverAddr}, &TCPHeader{}, nil)
	if !errors.Is(err, ErrBadHeader) {
		t.Errorf("EncodeTCP(v6 src) error = %v, want ErrBadHeader", err)
	}
}

func TestEncodeRejectsOversizedOptions(t *testing.T) {
	var opts []TCPOption
	for i := 0; i < 11; i++ {
		opts = append(opts, MSSOption(1460)) // 4 bytes each; 44 > 40 limit
	}
	_, err := EncodeTCP(&IPv4Header{Src: probeAddr, Dst: serverAddr}, &TCPHeader{Options: opts}, nil)
	if !errors.Is(err, ErrBadHeader) {
		t.Errorf("oversized options error = %v, want ErrBadHeader", err)
	}
}

func TestFlowKey(t *testing.T) {
	tcp := &TCPHeader{SrcPort: 43210, DstPort: 80}
	raw := mustEncodeTCP(t, &IPv4Header{Src: probeAddr, Dst: serverAddr}, tcp, nil)
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	k := p.Flow()
	if k.Src != probeAddr || k.SrcPort != 43210 || k.Dst != serverAddr || k.DstPort != 80 || k.Proto != ProtoTCP {
		t.Errorf("flow = %v", k)
	}
	r := k.Reverse()
	if r.Src != serverAddr || r.SrcPort != 80 || r.Dst != probeAddr || r.DstPort != 43210 {
		t.Errorf("reverse = %v", r)
	}
	if r.Reverse() != k {
		t.Error("Reverse is not an involution")
	}
}

func TestPeekFlowMatchesDecode(t *testing.T) {
	tcp := &TCPHeader{SrcPort: 5555, DstPort: 80, Flags: FlagSYN}
	raw := mustEncodeTCP(t, &IPv4Header{Src: probeAddr, Dst: serverAddr}, tcp, nil)
	pk, ok := PeekFlow(raw)
	if !ok {
		t.Fatal("PeekFlow failed")
	}
	p, _ := Decode(raw)
	if pk != p.Flow() {
		t.Errorf("PeekFlow = %v, Decode flow = %v", pk, p.Flow())
	}
	if _, ok := PeekFlow(raw[:8]); ok {
		t.Error("PeekFlow accepted a truncated frame")
	}
}

func TestFlowHashStableAndDirectional(t *testing.T) {
	k := FlowKey{Src: probeAddr, Dst: serverAddr, SrcPort: 1, DstPort: 2, Proto: ProtoTCP}
	if k.Hash() != k.Hash() {
		t.Error("hash not stable")
	}
	if k.Hash() == k.Reverse().Hash() {
		t.Error("directional flows should hash differently (load balancer keys on forward tuple)")
	}
}

func TestSummaryContainsEssentials(t *testing.T) {
	tcp := &TCPHeader{SrcPort: 1, DstPort: 80, Seq: 5, Ack: 6, Flags: FlagSYN | FlagACK}
	raw := mustEncodeTCP(t, &IPv4Header{Src: probeAddr, Dst: serverAddr, ID: 321}, tcp, nil)
	p, _ := Decode(raw)
	s := p.Summary()
	for _, want := range []string{"seq=5", "ack=6", "ipid=321", "S."} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
}

// Property: every encodable TCP packet round-trips exactly.
func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(id uint16, sport, dport uint16, seq, ack uint32, flags uint8, win uint16, mss uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		tcp := &TCPHeader{
			SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack,
			Flags: flags & 0x3f, Window: win,
			Options: []TCPOption{MSSOption(mss)},
		}
		raw, err := EncodeTCP(&IPv4Header{Src: probeAddr, Dst: serverAddr, ID: id}, tcp, payload)
		if err != nil {
			return false
		}
		p, err := Decode(raw)
		if err != nil {
			return false
		}
		gotMSS, _ := p.TCP.MSS()
		return p.IP.ID == id && p.TCP.SrcPort == sport && p.TCP.DstPort == dport &&
			p.TCP.Seq == seq && p.TCP.Ack == ack && p.TCP.Flags == flags&0x3f &&
			p.TCP.Window == win && gotMSS == mss && bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: checksum of data concatenated with its own checksum verifies to
// zero — the standard receiver-side check.
func TestQuickChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		c := Checksum(data)
		withSum := append(append([]byte(nil), data...), byte(c>>8), byte(c))
		return Checksum(withSum) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Trailing odd byte pads with zero: {0xff} == {0xff, 0x00}.
	if Checksum([]byte{0xff}) != Checksum([]byte{0xff, 0x00}) {
		t.Error("odd-length padding mismatch")
	}
}

func TestSeqComparisons(t *testing.T) {
	cases := []struct {
		a, b uint32
		lt   bool
	}{
		{1, 2, true},
		{2, 1, false},
		{5, 5, false},
		{0xffffffff, 0, true},  // wraparound
		{0, 0xffffffff, false}, // wraparound
		{0x7fffffff, 0x80000000, true},
	}
	for _, c := range cases {
		if SeqLT(c.a, c.b) != c.lt {
			t.Errorf("SeqLT(%#x, %#x) = %v, want %v", c.a, c.b, !c.lt, c.lt)
		}
	}
	if !SeqLEQ(5, 5) || SeqGT(5, 5) || !SeqGEQ(5, 5) {
		t.Error("equality comparisons wrong")
	}
	if SeqMax(0xffffffff, 1) != 1 || SeqMin(0xffffffff, 1) != 0xffffffff {
		t.Error("SeqMax/SeqMin wraparound wrong")
	}
}

func TestSeqInWindow(t *testing.T) {
	if !SeqInWindow(10, 10, 5) || !SeqInWindow(14, 10, 5) || SeqInWindow(15, 10, 5) || SeqInWindow(9, 10, 5) {
		t.Error("window bounds wrong")
	}
	if SeqInWindow(10, 10, 0) {
		t.Error("zero window must contain nothing")
	}
	// Wraparound window.
	if !SeqInWindow(2, 0xfffffffe, 10) {
		t.Error("wraparound window membership wrong")
	}
}

// Property: trichotomy of sequence comparison for distances under 2^31.
func TestQuickSeqTrichotomy(t *testing.T) {
	f := func(a uint32, d uint32) bool {
		d %= 1 << 30
		b := a + d
		switch {
		case d == 0:
			return !SeqLT(a, b) && !SeqGT(a, b) && SeqLEQ(a, b) && SeqGEQ(a, b)
		default:
			return SeqLT(a, b) && SeqGT(b, a) && !SeqLT(b, a)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestIPIDComparisons(t *testing.T) {
	if !IPIDLess(1, 2) || IPIDLess(2, 1) {
		t.Error("basic IPID compare wrong")
	}
	if !IPIDLess(0xffff, 3) {
		t.Error("IPID wraparound compare wrong")
	}
	if IPIDDiff(5, 3) != 2 || IPIDDiff(2, 0xffff) != 3 {
		t.Error("IPIDDiff wrong")
	}
}

func TestFlagString(t *testing.T) {
	cases := []struct {
		flags uint8
		want  string
	}{
		{FlagSYN, "S"},
		{FlagSYN | FlagACK, "S."},
		{FlagRST, "R"},
		{FlagPSH | FlagACK, "P."},
		{FlagFIN | FlagACK, "F."},
		{FlagURG, "U"},
		{0, "none"},
	}
	for _, c := range cases {
		h := &TCPHeader{Flags: c.flags}
		if got := h.FlagString(); got != c.want {
			t.Errorf("FlagString(%#x) = %q, want %q", c.flags, got, c.want)
		}
	}
}

func TestDecodeFuzzNoCrash(t *testing.T) {
	// The decoder must reject garbage gracefully, never panic.
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 2000; i++ {
		n := rng.IntN(120)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Uint64())
		}
		_, _ = Decode(b) //nolint:errcheck // exercising robustness only
	}
}

func BenchmarkEncodeTCP(b *testing.B) {
	ip := &IPv4Header{Src: probeAddr, Dst: serverAddr, ID: 1}
	tcp := &TCPHeader{SrcPort: 1000, DstPort: 80, Seq: 1, Ack: 1, Flags: FlagACK, Window: 65535,
		Options: []TCPOption{MSSOption(1460)}}
	payload := bytes.Repeat([]byte{0xaa}, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeTCP(ip, tcp, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	ip := &IPv4Header{Src: probeAddr, Dst: serverAddr, ID: 1}
	tcp := &TCPHeader{SrcPort: 1000, DstPort: 80, Seq: 1, Ack: 1, Flags: FlagACK, Window: 65535}
	raw, err := EncodeTCP(ip, tcp, bytes.Repeat([]byte{0xaa}, 512))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUDPRoundTrip(t *testing.T) {
	ip := &IPv4Header{Src: probeAddr, Dst: serverAddr, ID: 55}
	udp := &UDPHeader{SrcPort: 5000, DstPort: 8620}
	payload := []byte("ippm test packet")
	raw, err := EncodeUDP(ip, udp, payload)
	if err != nil {
		t.Fatalf("EncodeUDP: %v", err)
	}
	p, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if p.UDP == nil || p.UDP.SrcPort != 5000 || p.UDP.DstPort != 8620 {
		t.Fatalf("UDP header: %+v", p.UDP)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload = %q", p.Payload)
	}
	if int(p.UDP.Length) != 8+len(payload) {
		t.Fatalf("Length = %d", p.UDP.Length)
	}
	k := p.Flow()
	if k.Proto != ProtoUDP || k.SrcPort != 5000 || k.DstPort != 8620 {
		t.Fatalf("flow = %v", k)
	}
	if !strings.Contains(p.Summary(), "UDP") {
		t.Fatalf("Summary = %q", p.Summary())
	}
}

func TestUDPBitFlipDetected(t *testing.T) {
	raw, err := EncodeUDP(&IPv4Header{Src: probeAddr, Dst: serverAddr},
		&UDPHeader{SrcPort: 1, DstPort: 2}, []byte("xyzw"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		if _, err := Decode(corrupt(t, raw, i)); err == nil {
			t.Errorf("bit flip at byte %d went undetected", i)
		}
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	raw, err := EncodeUDP(&IPv4Header{Src: probeAddr, Dst: serverAddr},
		&UDPHeader{SrcPort: 9, DstPort: 10}, []byte("no-checksum"))
	if err != nil {
		t.Fatal(err)
	}
	// Zero the UDP checksum (sender opt-out) — the decoder must accept.
	raw[26], raw[27] = 0, 0
	if _, err := Decode(raw); err != nil {
		t.Fatalf("zero-checksum UDP rejected: %v", err)
	}
}

func TestQuickUDPRoundTrip(t *testing.T) {
	f := func(sport, dport uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		raw, err := EncodeUDP(&IPv4Header{Src: probeAddr, Dst: serverAddr},
			&UDPHeader{SrcPort: sport, DstPort: dport}, payload)
		if err != nil {
			return false
		}
		p, err := Decode(raw)
		if err != nil {
			return false
		}
		return p.UDP.SrcPort == sport && p.UDP.DstPort == dport && bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
