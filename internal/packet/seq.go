package packet

// TCP sequence-number arithmetic, modulo 2^32. The comparison helpers follow
// the standard convention: a is "less than" b when the signed 32-bit
// difference a-b is negative, which handles wraparound for distances under
// 2^31.

// SeqLT reports a < b in sequence space.
func SeqLT(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports a <= b in sequence space.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// SeqGT reports a > b in sequence space.
func SeqGT(a, b uint32) bool { return int32(a-b) > 0 }

// SeqGEQ reports a >= b in sequence space.
func SeqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// SeqMax returns the later of a and b in sequence space.
func SeqMax(a, b uint32) uint32 {
	if SeqGT(a, b) {
		return a
	}
	return b
}

// SeqMin returns the earlier of a and b in sequence space.
func SeqMin(a, b uint32) uint32 {
	if SeqLT(a, b) {
		return a
	}
	return b
}

// SeqDiff returns the signed distance a-b in sequence space.
func SeqDiff(a, b uint32) int32 { return int32(a - b) }

// SeqInWindow reports whether seq falls within [base, base+size) in sequence
// space. A zero-size window contains nothing.
func SeqInWindow(seq, base uint32, size uint32) bool {
	return SeqGEQ(seq, base) && SeqLT(seq, base+size)
}

// IPID arithmetic, modulo 2^16. The dual connection test compares the IPIDs
// of two acknowledgments to recover the order the remote host sent them;
// 16-bit signed distance handles counter wraparound for gaps under 2^15.

// IPIDLess reports a < b in IPID space.
func IPIDLess(a, b uint16) bool { return int16(a-b) < 0 }

// IPIDDiff returns the signed distance a-b in IPID space.
func IPIDDiff(a, b uint16) int16 { return int16(a - b) }
