// Package packet implements the wire formats the measurement tools speak:
// IPv4, TCP (including the options the tests rely on — MSS, SACK-permitted,
// SACK blocks) and ICMP echo. Everything is encoded to and decoded from raw
// bytes, with real Internet checksums, so the simulated network carries the
// same octets a live probe would put on the wire.
package packet

import "encoding/binary"

// Checksum computes the Internet checksum (RFC 1071) over data, folding the
// 32-bit accumulator and returning the one's complement. An odd trailing
// byte is padded with zero as the low octet of a final 16-bit word.
func Checksum(data []byte) uint16 {
	return finish(sum(data, 0))
}

// sum accumulates 16-bit big-endian words of data into acc without folding.
// The main loop consumes eight bytes per iteration — one's-complement
// addition is associative, so the four words of each chunk can be extracted
// from a single 64-bit load and summed in any order; a 64-bit accumulator
// cannot overflow for any datagram under 2^45 bytes.
func sum(data []byte, acc uint32) uint32 {
	acc64 := uint64(acc)
	for len(data) >= 8 {
		v := binary.BigEndian.Uint64(data)
		acc64 += v>>48 + v>>32&0xffff + v>>16&0xffff + v&0xffff
		data = data[8:]
	}
	for len(data) >= 2 {
		acc64 += uint64(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		acc64 += uint64(data[0]) << 8
	}
	for acc64>>32 != 0 {
		acc64 = acc64&0xffffffff + acc64>>32
	}
	return uint32(acc64)
}

func finish(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + acc>>16
	}
	return ^uint16(acc)
}

// pseudoHeaderSum accumulates the TCP/UDP pseudo-header for src/dst IPv4
// addresses, protocol and transport length.
func pseudoHeaderSum(src, dst [4]byte, proto uint8, length int) uint32 {
	var acc uint32
	acc += uint32(binary.BigEndian.Uint16(src[0:2]))
	acc += uint32(binary.BigEndian.Uint16(src[2:4]))
	acc += uint32(binary.BigEndian.Uint16(dst[0:2]))
	acc += uint32(binary.BigEndian.Uint16(dst[2:4]))
	acc += uint32(proto)
	acc += uint32(length)
	return acc
}

// transportChecksum computes the TCP/UDP checksum of segment (header plus
// payload, with the checksum field zeroed by the caller) carried between
// src and dst.
func transportChecksum(src, dst [4]byte, proto uint8, segment []byte) uint16 {
	return finish(sum(segment, pseudoHeaderSum(src, dst, proto, len(segment))))
}
