package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IP protocol numbers used by this repository.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4 header flag bits.
const (
	FlagDF = 0x2 // don't fragment
	FlagMF = 0x1 // more fragments
)

const ipv4HeaderLen = 20

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadVersion  = errors.New("packet: not IPv4")
	ErrBadHeader   = errors.New("packet: malformed header")
)

// IPv4Header is a parsed IPv4 header. Options are not supported; no stack or
// tool in this repository emits them, and the decoder rejects packets that
// carry any (IHL > 5) to keep parsing honest rather than silently skipping.
type IPv4Header struct {
	TOS        uint8
	TotalLen   uint16 // filled in on decode; computed on encode
	ID         uint16 // the IPID field the dual connection test leverages
	Flags      uint8  // FlagDF | FlagMF
	FragOffset uint16 // in 8-byte units
	TTL        uint8
	Protocol   uint8
	Checksum   uint16 // filled in on decode; computed on encode
	Src, Dst   netip.Addr
}

// marshalInto writes the 20-byte header with checksum into buf, which must
// be at least ipv4HeaderLen bytes. totalLen is the full datagram length.
func (h *IPv4Header) marshalInto(buf []byte, totalLen int) error {
	if !h.Src.Is4() || !h.Dst.Is4() {
		return fmt.Errorf("%w: source and destination must be IPv4", ErrBadHeader)
	}
	if totalLen > 0xffff {
		return fmt.Errorf("%w: datagram length %d exceeds 65535", ErrBadHeader, totalLen)
	}
	ttl := h.TTL
	if ttl == 0 {
		ttl = 64
	}
	buf[0] = 4<<4 | 5 // version 4, IHL 5
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:4], uint16(totalLen))
	binary.BigEndian.PutUint16(buf[4:6], h.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(h.Flags)<<13|h.FragOffset&0x1fff)
	buf[8] = ttl
	buf[9] = h.Protocol
	buf[10], buf[11] = 0, 0
	src := h.Src.As4()
	dst := h.Dst.As4()
	copy(buf[12:16], src[:])
	copy(buf[16:20], dst[:])
	binary.BigEndian.PutUint16(buf[10:12], Checksum(buf[:ipv4HeaderLen]))
	return nil
}

// decodeIPv4 parses and validates an IPv4 header, returning the header and
// the payload (bounded by TotalLen).
func decodeIPv4(data []byte) (IPv4Header, []byte, error) {
	var h IPv4Header
	if len(data) < ipv4HeaderLen {
		return h, nil, fmt.Errorf("%w: %d bytes, need %d for IPv4 header", ErrTruncated, len(data), ipv4HeaderLen)
	}
	if v := data[0] >> 4; v != 4 {
		return h, nil, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl != ipv4HeaderLen {
		return h, nil, fmt.Errorf("%w: IHL %d bytes (options unsupported)", ErrBadHeader, ihl)
	}
	if Checksum(data[:ipv4HeaderLen]) != 0 {
		return h, nil, fmt.Errorf("%w: IPv4 header", ErrBadChecksum)
	}
	h.TOS = data[1]
	h.TotalLen = binary.BigEndian.Uint16(data[2:4])
	h.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOffset = ff & 0x1fff
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:12])
	h.Src = netip.AddrFrom4([4]byte(data[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	if int(h.TotalLen) < ipv4HeaderLen {
		return h, nil, fmt.Errorf("%w: total length %d < header length", ErrBadHeader, h.TotalLen)
	}
	if int(h.TotalLen) > len(data) {
		return h, nil, fmt.Errorf("%w: total length %d > %d captured", ErrTruncated, h.TotalLen, len(data))
	}
	return h, data[ipv4HeaderLen:h.TotalLen], nil
}
