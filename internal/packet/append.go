package packet

// Append/scratch codec variants. The probe engine sends and receives
// millions of small datagrams per campaign; these entry points let hot
// paths reuse one buffer (encode) and one decoded-header set (decode)
// instead of allocating per segment. Wire bytes are identical to the
// allocating EncodeTCP/EncodeICMP/Decode, which delegate here.

// AppendTCP appends a complete IPv4+TCP datagram to dst and returns the
// extended slice. ip.TotalLen, checksums and the TCP data offset are
// computed; ip.Protocol is forced to TCP. dst may be nil.
func AppendTCP(dst []byte, ip *IPv4Header, tcp *TCPHeader, payload []byte) ([]byte, error) {
	optLen, err := tcp.optionsWireLen()
	if err != nil {
		return dst, err
	}
	segLen := tcpBaseHeaderLen + optLen + len(payload)
	total := ipv4HeaderLen + segLen
	base := len(dst)
	dst = grow(dst, total) // every byte is written below; no zeroing needed
	buf := dst[base:]
	ip.Protocol = ProtoTCP
	if err := ip.marshalInto(buf, total); err != nil {
		return dst[:base], err
	}
	seg := buf[ipv4HeaderLen:]
	tcp.marshalInto(seg, optLen)
	copy(seg[tcpBaseHeaderLen+optLen:], payload)
	src, dstAddr := ip.Src.As4(), ip.Dst.As4()
	csum := transportChecksum(src, dstAddr, ProtoTCP, seg)
	seg[16] = byte(csum >> 8)
	seg[17] = byte(csum)
	return dst, nil
}

// grow extends dst by n bytes without zeroing when capacity allows. The
// callers overwrite the entire extension.
func grow(dst []byte, n int) []byte {
	if len(dst)+n <= cap(dst) {
		return dst[:len(dst)+n]
	}
	return append(dst, make([]byte, n)...)
}

// AppendICMP appends a complete IPv4+ICMP echo datagram to dst and returns
// the extended slice. ip.Protocol is forced to ICMP.
func AppendICMP(dst []byte, ip *IPv4Header, echo *ICMPEcho) ([]byte, error) {
	segLen := icmpHeaderLen + len(echo.Payload)
	total := ipv4HeaderLen + segLen
	base := len(dst)
	dst = grow(dst, total) // every byte is written below; no zeroing needed
	buf := dst[base:]
	ip.Protocol = ProtoICMP
	if err := ip.marshalInto(buf, total); err != nil {
		return dst[:base], err
	}
	echo.marshalInto(buf[ipv4HeaderLen:])
	return dst, nil
}

// DecodeInto parses a raw IPv4 datagram into p, reusing p's transport
// header structs and option storage across calls: a zeroed Packet works,
// and a Packet that has been through DecodeInto before decodes without
// allocating. Unlike Decode, the decoded payload and option data alias
// data — the caller owns data's lifetime and must not mutate it while the
// decoded packet is in use. Validation is identical to Decode.
func DecodeInto(p *Packet, data []byte) error {
	ip, transport, err := decodeIPv4(data)
	if err != nil {
		return err
	}
	p.IP = ip
	p.WireLen = int(ip.TotalLen)
	p.Payload = nil
	src, dst := ip.Src.As4(), ip.Dst.As4()
	switch ip.Protocol {
	case ProtoTCP:
		p.UDP, p.ICMP = nil, nil
		if p.TCP == nil {
			p.TCP = new(TCPHeader)
		}
		payload, err := decodeTCPInto(p.TCP, src, dst, transport, false)
		if err != nil {
			p.TCP.Options = p.TCP.Options[:0]
			return err
		}
		p.Payload = payload
	case ProtoUDP:
		p.TCP, p.ICMP = nil, nil
		if p.UDP == nil {
			p.UDP = new(UDPHeader)
		}
		payload, err := decodeUDPInto(p.UDP, src, dst, transport)
		if err != nil {
			return err
		}
		p.Payload = payload
	case ProtoICMP:
		p.TCP, p.UDP = nil, nil
		if p.ICMP == nil {
			p.ICMP = new(ICMPEcho)
		}
		if err := decodeICMPInto(p.ICMP, transport); err != nil {
			return err
		}
	default:
		return badProtoErr(ip.Protocol)
	}
	return nil
}
