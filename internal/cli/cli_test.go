package cli

import (
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Bool("ok", false, "a flag")
	return fs
}

func TestParseHelp(t *testing.T) {
	if err := Parse(newFlagSet(), []string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h -> %v, want flag.ErrHelp", err)
	}
}

func TestParseBadFlag(t *testing.T) {
	if err := Parse(newFlagSet(), []string{"-nope"}); !errors.Is(err, ErrUsage) {
		t.Fatalf("-nope -> %v, want ErrUsage", err)
	}
}

func TestParseOK(t *testing.T) {
	if err := Parse(newFlagSet(), []string{"-ok"}); err != nil {
		t.Fatalf("-ok -> %v", err)
	}
}

func TestWriteCSVFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	err := WriteCSVFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("a,b\n"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n" {
		t.Fatalf("wrote %q", data)
	}
}
