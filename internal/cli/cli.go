// Package cli holds the shared scaffolding of this repository's commands.
// Every cmd/*/main.go is a thin shell: the logic lives in a testable
// run(args, stdout) error function, adapted to process-exit semantics by
// Main, with flag parsing routed through Parse so -h exits 0 with usage
// and flag diagnostics are printed exactly once.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

// ErrUsage signals a flag-parse failure whose diagnostic the flag package
// already printed to stderr; Main exits 2 without reprinting it.
var ErrUsage = errors.New("usage error")

// ErrReported signals a failure the run function already reported on
// stderr; Main exits 1 without printing anything further.
var ErrReported = errors.New("error already reported")

// Parse runs fs over args. -h and -help print usage and surface as
// flag.ErrHelp (a clean exit under Main); any other parse error surfaces
// as ErrUsage, its diagnostic already printed by the flag package.
func Parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return ErrUsage
	}
	return nil
}

// Usagef reports a usage-level mistake (bad arguments rather than a
// runtime failure): it prints the diagnostic to stderr and returns
// ErrUsage so Main exits 2 without reprinting it.
func Usagef(format string, args ...any) error {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	return ErrUsage
}

// Main adapts a run function to exit codes: 0 on success or -h, 2 on
// usage errors, 1 otherwise.
func Main(run func(args []string, stdout io.Writer) error) {
	switch err := run(os.Args[1:], os.Stdout); {
	case err == nil || errors.Is(err, flag.ErrHelp):
	case errors.Is(err, ErrUsage):
		os.Exit(2)
	case errors.Is(err, ErrReported):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// WriteCSVFile creates path and streams a report's CSV into it.
func WriteCSVFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
