package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pair returns a wrapped listener plus a dial helper against it.
func pair(t *testing.T, cfg Config) (*Listener, func() net.Conn) {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Wrap(raw, cfg)
	t.Cleanup(func() { ln.Close() })
	return ln, func() net.Conn {
		c, err := net.Dial("tcp", raw.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
}

// acceptOne accepts a single connection, skipping injected transient
// accept failures.
func acceptOne(t *testing.T, ln *Listener) net.Conn {
	t.Helper()
	for {
		c, err := ln.Accept()
		if err == nil {
			t.Cleanup(func() { c.Close() })
			return c
		}
		var tmp interface{ Temporary() bool }
		if ok := asTemp(err, &tmp); !ok || !tmp.Temporary() {
			t.Fatalf("accept: %v", err)
		}
	}
}

func asTemp(err error, out *interface{ Temporary() bool }) bool {
	t, ok := err.(interface{ Temporary() bool })
	if ok {
		*out = t
	}
	return ok
}

func TestPlanDeterminism(t *testing.T) {
	cfg := Chaos(42)
	a, b := Wrap(nil, cfg), Wrap(nil, cfg)
	for i := 0; i < 50; i++ {
		if a.PlanFor(i) != b.PlanFor(i) {
			t.Fatalf("plan %d differs between identically-seeded wraps", i)
		}
	}
	c := Wrap(nil, Chaos(43))
	same := 0
	for i := 0; i < 50; i++ {
		if a.PlanFor(i) == c.PlanFor(i) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds drew identical plans for 50 connections")
	}
}

func TestWriteResetAtByteThreshold(t *testing.T) {
	const at = 10
	ln, dial := pair(t, Config{PReset: 1, ByteWindow: 1, Seed: 1})
	peer := dial()
	conn := acceptOne(t, ln).(*Conn)
	// Force a known write-side plan regardless of the coin flip.
	conn.plan = Plan{ResetWriteAt: at, ResetReadAt: -1, PartialAt: -1, DupLine: -1, TruncLine: -1}

	payload := bytes.Repeat([]byte{'x'}, 64)
	n, err := conn.Write(payload)
	if n != at {
		t.Fatalf("wrote %d bytes before reset, want %d", n, at)
	}
	if !IsInjected(err) {
		t.Fatalf("want injected reset error, got %v", err)
	}
	got, _ := io.ReadAll(peer)
	if len(got) != at {
		t.Fatalf("peer received %d bytes, want %d", len(got), at)
	}
	evs := ln.Events()
	if len(evs) != 1 || evs[0].Kind != KindReset {
		t.Fatalf("events = %+v, want one reset", evs)
	}
}

func TestReadResetAtByteThreshold(t *testing.T) {
	const at = 5
	ln, dial := pair(t, Config{})
	peer := dial()
	conn := acceptOne(t, ln).(*Conn)
	conn.plan = Plan{ResetReadAt: at, ResetWriteAt: -1, PartialAt: -1, DupLine: -1, TruncLine: -1}

	if _, err := peer.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	total := 0
	var err error
	for {
		var n int
		n, err = conn.Read(buf[total:])
		total += n
		if err != nil {
			break
		}
	}
	if total != at {
		t.Fatalf("read %d bytes before reset, want %d", total, at)
	}
	if !IsInjected(err) {
		t.Fatalf("want injected reset, got %v", err)
	}
}

func TestPartialWriteThenStall(t *testing.T) {
	const at = 8
	stall := 50 * time.Millisecond
	ln, dial := pair(t, Config{})
	peer := dial()
	conn := acceptOne(t, ln).(*Conn)
	conn.plan = Plan{PartialAt: at, Stall: stall, ResetReadAt: -1, ResetWriteAt: -1, DupLine: -1, TruncLine: -1}

	start := time.Now()
	n, err := conn.Write(bytes.Repeat([]byte{'y'}, 32))
	elapsed := time.Since(start)
	if n != at {
		t.Fatalf("partial write delivered %d bytes, want %d", n, at)
	}
	if !IsInjected(err) {
		t.Fatalf("want injected partial-stall, got %v", err)
	}
	if elapsed < stall {
		t.Fatalf("write returned after %v, want >= %v stall", elapsed, stall)
	}
	got, _ := io.ReadAll(peer)
	if len(got) != at {
		t.Fatalf("peer received %d bytes, want %d", len(got), at)
	}
	evs := ln.Events()
	if len(evs) != 1 || evs[0].Kind != KindPartialStall {
		t.Fatalf("events = %+v, want one partial-stall", evs)
	}
}

func TestDupLine(t *testing.T) {
	ln, dial := pair(t, Config{})
	peer := dial()
	conn := acceptOne(t, ln).(*Conn)
	conn.plan = Plan{DupLine: 1, ResetReadAt: -1, ResetWriteAt: -1, PartialAt: -1, TruncLine: -1}

	if _, err := conn.Write([]byte("a\nb\nc\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	got, _ := io.ReadAll(peer)
	if string(got) != "a\nb\nb\nc\n" {
		t.Fatalf("peer saw %q, want duplicated middle line", got)
	}
}

func TestDupLineAcrossWrites(t *testing.T) {
	ln, dial := pair(t, Config{})
	peer := dial()
	conn := acceptOne(t, ln).(*Conn)
	conn.plan = Plan{DupLine: 0, ResetReadAt: -1, ResetWriteAt: -1, PartialAt: -1, TruncLine: -1}

	// The duplicated line spans two Write calls; the replay must carry
	// the bytes from the first call too.
	if _, err := conn.Write([]byte("hel")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("lo\nrest\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	got, _ := io.ReadAll(peer)
	if string(got) != "hello\nhello\nrest\n" {
		t.Fatalf("peer saw %q, want cross-write line duplicated", got)
	}
}

func TestTruncLine(t *testing.T) {
	ln, dial := pair(t, Config{})
	peer := dial()
	conn := acceptOne(t, ln).(*Conn)
	conn.plan = Plan{TruncLine: 1, ResetReadAt: -1, ResetWriteAt: -1, PartialAt: -1, DupLine: -1}

	_, err := conn.Write([]byte("first\nsecond\nthird\n"))
	if !IsInjected(err) {
		t.Fatalf("want injected trunc-line, got %v", err)
	}
	got, _ := io.ReadAll(peer)
	if string(got) != "first\nsecond" {
		t.Fatalf("peer saw %q, want truncated second line", got)
	}
	if _, err := conn.Write([]byte("more\n")); !IsInjected(err) {
		t.Fatalf("write after fault death: want injected error, got %v", err)
	}
}

func TestAcceptFailures(t *testing.T) {
	ln, dial := pair(t, Config{AcceptFailures: 2})
	fails := 0
	done := make(chan struct{})
	go func() { dial(); close(done) }()
	for {
		c, err := ln.Accept()
		if err != nil {
			var tmp interface{ Temporary() bool }
			if !asTemp(err, &tmp) || !tmp.Temporary() {
				t.Errorf("injected accept error not Temporary: %v", err)
				return
			}
			fails++
			continue
		}
		c.Close()
		break
	}
	<-done
	if fails != 2 {
		t.Fatalf("saw %d injected accept failures, want 2", fails)
	}
	evs := ln.Events()
	if len(evs) != 2 || evs[0].Kind != KindAcceptError {
		t.Fatalf("events = %+v, want two accept-errors", evs)
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	ln, dial := pair(t, Config{MaxFaults: 1})
	peerA := dial()
	a := acceptOne(t, ln).(*Conn)
	a.plan = Plan{ResetWriteAt: 2, ResetReadAt: -1, PartialAt: -1, DupLine: -1, TruncLine: -1}
	peerB := dial()
	b := acceptOne(t, ln).(*Conn)
	b.plan = Plan{ResetWriteAt: 2, ResetReadAt: -1, PartialAt: -1, DupLine: -1, TruncLine: -1}

	if _, err := a.Write([]byte("xxxx")); !IsInjected(err) {
		t.Fatalf("first fault should fire within budget, got %v", err)
	}
	// Budget is spent: the second connection's identical plan goes inert.
	if _, err := b.Write([]byte("xxxx")); err != nil {
		t.Fatalf("budget exhausted but fault still fired: %v", err)
	}
	b.Close()
	if got, _ := io.ReadAll(peerB); len(got) != 4 {
		t.Fatalf("clean conn delivered %d bytes, want 4", len(got))
	}
	peerA.Close()
	if evs := ln.Events(); len(evs) != 1 {
		t.Fatalf("events = %+v, want exactly one (budget=1)", evs)
	}
}

func TestChaosPresetTerminates(t *testing.T) {
	// Sanity: the CLI preset has a budget, so a long exchange eventually
	// runs clean and completes.
	cfg := Chaos(7)
	if cfg.MaxFaults == 0 {
		t.Fatal("Chaos preset must bound its fault budget")
	}
}
