// Package faultnet is a seeded, deterministic fault injector for
// net.Conn / net.Listener pairs: the adversarial discipline the netem
// catalog applies to the simulated measurement path, turned on the
// campaign's own control plane. Wrap a listener and every accepted
// connection carries a fault plan — a scheduled connection reset
// mid-message, a partial write followed by a stall, added read/write
// latency, a duplicated or truncated protocol line — drawn from a PCG
// stream keyed by (seed, connection index), so a given seed produces the
// same plan for the nth accepted connection on every run. The listener
// itself can refuse its first accepts with a temporary error, exercising
// accept-retry paths.
//
// Reproducibility contract: plans are a pure function of (Config, index).
// Whether a planned fault actually fires depends on traffic (a reset
// scheduled at byte 900 never fires on a connection that moves 100
// bytes), so the Events log records what fired; PlanFor exposes what was
// scheduled. MaxFaults bounds total injected damage — once the budget is
// spent, later connections run clean — which is what lets a chaos soak
// both hurt a system and let it finish.
//
// The wrapper is transport-agnostic and protocol-blind: line faults key
// on '\n' bytes in the written stream (matching any line-delimited
// protocol), byte faults on cumulative transfer counts. Only the wrapped
// side of each connection is perturbed; the peer sees the consequences
// (truncated frames, resets, delay) through an ordinary socket.
package faultnet

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// Kind names one fault class in plans and events.
type Kind string

const (
	// KindReset is a scheduled connection reset: after a planned number of
	// cumulative bytes in one direction, the underlying connection is
	// closed mid-message and the operation fails.
	KindReset Kind = "reset"
	// KindPartialStall is a partial write followed by a stall: a prefix of
	// the caller's buffer is written, the writer blocks for the planned
	// stall, then the connection dies.
	KindPartialStall Kind = "partial-stall"
	// KindDupLine is a duplicated protocol line: the nth written
	// '\n'-terminated line is sent twice, back to back.
	KindDupLine Kind = "dup-line"
	// KindTruncLine is a truncated protocol line: the nth written line is
	// cut short of its terminator and the connection dies.
	KindTruncLine Kind = "trunc-line"
	// KindAcceptError is a transient accept failure: Accept returns an
	// error whose Temporary() is true without touching the backlog.
	KindAcceptError Kind = "accept-error"
)

// Config parameterizes a fault injector. Probabilities are per accepted
// connection; at most one byte-threshold reset, one partial-stall, one
// duplicated line and one truncated line are planned per connection.
type Config struct {
	// Seed fixes every plan. The same Config draws the same plan for the
	// nth connection on every run.
	Seed uint64

	// PReset is the probability a connection gets a scheduled reset at a
	// byte threshold within ByteWindow (read or write side, coin-flipped).
	PReset float64
	// PPartialStall is the probability a connection gets a partial write
	// followed by Stall and a reset, at a byte threshold within ByteWindow.
	PPartialStall float64
	// PDupLine is the probability one of the connection's first written
	// lines is duplicated.
	PDupLine float64
	// PTruncLine is the probability one of the connection's first written
	// lines is truncated before its terminator, followed by a reset.
	PTruncLine float64

	// LatencyMax, when positive, adds a per-connection fixed latency drawn
	// uniformly from [0, LatencyMax) to every read and every write.
	LatencyMax time.Duration
	// Stall is how long a partial write blocks before the reset.
	Stall time.Duration

	// AcceptFailures makes the listener's first N accepts fail with a
	// temporary error (bounded separately from MaxFaults).
	AcceptFailures int
	// MaxFaults caps the total terminal and line faults injected across
	// all connections; once spent, connections run clean. 0 means
	// unlimited — a soak that must terminate should set it.
	MaxFaults int
	// ByteWindow bounds the byte thresholds for reset/partial faults
	// (default 4096): faults land inside the first window of traffic,
	// where the protocol handshake and early spans live.
	ByteWindow int

	// LineWindow bounds which line index dup/trunc faults target
	// (default 8).
	LineWindow int
}

// Chaos is the default chaos-rehearsal profile used by the campaign CLI's
// -faultnet flag: every fault class enabled at rates that hurt a short
// run several times, budget-bounded so the run always finishes.
func Chaos(seed uint64) Config {
	return Config{
		Seed:           seed,
		PReset:         0.5,
		PPartialStall:  0.35,
		PDupLine:       0.25,
		PTruncLine:     0.25,
		LatencyMax:     2 * time.Millisecond,
		Stall:          20 * time.Millisecond,
		AcceptFailures: 2,
		MaxFaults:      12,
		ByteWindow:     4096,
	}
}

func (c Config) byteWindow() int {
	if c.ByteWindow <= 0 {
		return 4096
	}
	return c.ByteWindow
}

func (c Config) lineWindow() int {
	if c.LineWindow <= 0 {
		return 8
	}
	return c.LineWindow
}

// Plan is one connection's drawn fault schedule. Thresholds are
// cumulative byte counts in the connection's own direction; -1 disables
// a fault. Line indices count '\n'-terminated lines written, from 0.
type Plan struct {
	ReadLatency  time.Duration
	WriteLatency time.Duration
	ResetReadAt  int
	ResetWriteAt int
	PartialAt    int
	Stall        time.Duration
	DupLine      int
	TruncLine    int
}

// planFor draws the deterministic plan for connection index idx: a fresh
// PCG stream per (seed, idx), consumed in a fixed order.
func (c Config) planFor(idx int) Plan {
	rng := rand.New(rand.NewPCG(c.Seed, uint64(idx)))
	p := Plan{ResetReadAt: -1, ResetWriteAt: -1, PartialAt: -1, DupLine: -1, TruncLine: -1}
	if c.LatencyMax > 0 {
		p.ReadLatency = time.Duration(rng.Int64N(int64(c.LatencyMax)))
		p.WriteLatency = time.Duration(rng.Int64N(int64(c.LatencyMax)))
	}
	// Each class draws its randomness unconditionally so a probability
	// change never shifts the draws of the classes after it.
	side, at := rng.IntN(2), 1+rng.IntN(c.byteWindow())
	if rng.Float64() < c.PReset {
		if side == 0 {
			p.ResetReadAt = at
		} else {
			p.ResetWriteAt = at
		}
	}
	at = 1 + rng.IntN(c.byteWindow())
	if rng.Float64() < c.PPartialStall {
		p.PartialAt = at
		p.Stall = c.Stall
	}
	line := rng.IntN(c.lineWindow())
	if rng.Float64() < c.PDupLine {
		p.DupLine = line
	}
	line = rng.IntN(c.lineWindow())
	if rng.Float64() < c.PTruncLine {
		p.TruncLine = line
	}
	return p
}

// Event records one fault that actually fired.
type Event struct {
	// Conn is the accepted-connection index, or -1 for listener-level
	// faults.
	Conn int
	// Kind is the fault class.
	Kind Kind
	// At is the cumulative byte count (byte faults), line index (line
	// faults) or accept index (accept faults) at which the fault fired.
	At int
}

// Listener wraps a net.Listener with fault injection. Use Wrap.
type Listener struct {
	net.Listener
	cfg Config

	mu      sync.Mutex
	accepts int
	conns   int
	budget  int
	events  []Event
}

// Wrap returns a fault-injecting listener over ln.
func Wrap(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg, budget: cfg.MaxFaults}
}

// Accept injects planned transient failures, then accepts and wraps the
// next connection with its deterministic fault plan.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	idx := l.accepts
	l.accepts++
	if idx < l.cfg.AcceptFailures {
		l.events = append(l.events, Event{Conn: -1, Kind: KindAcceptError, At: idx})
		l.mu.Unlock()
		return nil, tempAcceptError{idx}
	}
	l.mu.Unlock()
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	ci := l.conns
	l.conns++
	l.mu.Unlock()
	return &Conn{Conn: conn, l: l, idx: ci, plan: l.cfg.planFor(ci)}, nil
}

// PlanFor returns the deterministic plan connection index i gets (whether
// or not it has been accepted yet) — the reproducibility surface tests
// pin.
func (l *Listener) PlanFor(i int) Plan { return l.cfg.planFor(i) }

// Events returns a copy of the faults that have fired so far.
func (l *Listener) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// takeBudget consumes one unit of the fault budget, returning false once
// spent (unlimited when MaxFaults is 0).
func (l *Listener) takeBudget() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.MaxFaults == 0 {
		return true
	}
	if l.budget <= 0 {
		return false
	}
	l.budget--
	return true
}

func (l *Listener) record(conn int, kind Kind, at int) {
	l.mu.Lock()
	l.events = append(l.events, Event{Conn: conn, Kind: kind, At: at})
	l.mu.Unlock()
}

// tempAcceptError is the transient failure Accept injects; Temporary()
// is what retrying accept loops key on.
type tempAcceptError struct{ idx int }

func (e tempAcceptError) Error() string {
	return fmt.Sprintf("faultnet: injected transient accept failure %d", e.idx)
}
func (e tempAcceptError) Timeout() bool   { return false }
func (e tempAcceptError) Temporary() bool { return true }

// injectedErr is returned from operations on a connection a fault killed.
type injectedErr struct{ kind Kind }

func (e injectedErr) Error() string { return fmt.Sprintf("faultnet: injected %s", e.kind) }

// IsInjected reports whether err came from an injected fault (as opposed
// to a real transport failure surfacing through the wrapper).
func IsInjected(err error) bool {
	switch err.(type) {
	case injectedErr, tempAcceptError:
		return true
	}
	return false
}

// Conn is one fault-injected connection. Reads and writes are each
// serialized by their own lock (mirroring the one-reader/locked-writers
// discipline of line-protocol users); the zero-latency clean path adds
// two mutex ops per operation.
type Conn struct {
	net.Conn
	l    *Listener
	idx  int
	plan Plan

	rmu    sync.Mutex
	rBytes int
	rDead  bool

	wmu     sync.Mutex
	wBytes  int
	wLine   int
	lineBuf []byte // bytes of the current (unterminated) line, for dup
	wDead   bool
}

// Index returns the connection's accept order index (plan key).
func (c *Conn) Index() int { return c.idx }

// Read applies planned read latency and the read-side reset threshold,
// then reads from the underlying connection (short enough to never
// overrun a pending threshold).
func (c *Conn) Read(b []byte) (int, error) {
	if c.plan.ReadLatency > 0 {
		time.Sleep(c.plan.ReadLatency)
	}
	c.rmu.Lock()
	if c.rDead {
		c.rmu.Unlock()
		return 0, injectedErr{KindReset}
	}
	limit := len(b)
	if at := c.plan.ResetReadAt; at >= 0 {
		rem := at - c.rBytes
		if rem <= 0 {
			if c.l.takeBudget() {
				c.rDead = true
				at := c.rBytes
				c.rmu.Unlock()
				c.l.record(c.idx, KindReset, at)
				c.Conn.Close()
				return 0, injectedErr{KindReset}
			}
			c.plan.ResetReadAt = -1
		} else if rem < limit {
			limit = rem
		}
	}
	c.rmu.Unlock()
	n, err := c.Conn.Read(b[:limit])
	c.rmu.Lock()
	c.rBytes += n
	c.rmu.Unlock()
	return n, err
}

// Write applies planned write latency, then walks the buffer firing
// whichever planned fault comes first in stream order: byte-threshold
// resets and partial-stalls, and line-indexed duplications and
// truncations. Bytes consumed from b are counted in the return value;
// duplicated-line bytes are extra and are not.
func (c *Conn) Write(b []byte) (int, error) {
	if c.plan.WriteLatency > 0 {
		time.Sleep(c.plan.WriteLatency)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wDead {
		return 0, injectedErr{KindReset}
	}
	written := 0
	for written < len(b) {
		seg := b[written:]
		// Earliest byte-threshold fault within this segment, if any.
		byteKind, bytePos := Kind(""), -1
		consider := func(k Kind, at int) {
			if at < 0 {
				return
			}
			rem := at - c.wBytes
			if rem < 0 {
				rem = 0
			}
			if rem <= len(seg) && (bytePos < 0 || rem < bytePos) {
				byteKind, bytePos = k, rem
			}
		}
		consider(KindReset, c.plan.ResetWriteAt)
		consider(KindPartialStall, c.plan.PartialAt)
		// Earliest line fault strictly before the byte fault.
		scan := len(seg)
		if bytePos >= 0 {
			scan = bytePos
		}
		lineKind, linePos, lineIdx, lineStart := Kind(""), -1, -1, 0
		if c.plan.DupLine >= 0 || c.plan.TruncLine >= 0 {
			ln, start := c.wLine, 0
			for i := 0; i < scan; i++ {
				if seg[i] != '\n' {
					continue
				}
				if ln == c.plan.TruncLine {
					lineKind, linePos, lineIdx, lineStart = KindTruncLine, i, ln, start
					break
				}
				if ln == c.plan.DupLine {
					lineKind, linePos, lineIdx, lineStart = KindDupLine, i, ln, start
					break
				}
				ln++
				start = i + 1
			}
		}

		if lineKind != "" {
			if !c.l.takeBudget() {
				// Budget spent: this connection's line faults go inert.
				c.plan.DupLine, c.plan.TruncLine = -1, -1
				continue
			}
			switch lineKind {
			case KindTruncLine:
				// Deliver the line minus its terminator, then die: the
				// peer sees an unterminated, unparseable tail.
				n, err := c.writeSeg(seg[:linePos])
				written += n
				c.l.record(c.idx, KindTruncLine, lineIdx)
				c.wDead = true
				c.Conn.Close()
				if err != nil {
					return written, err
				}
				return written, injectedErr{KindTruncLine}
			case KindDupLine:
				// Capture the line's bytes before writeSeg resets the
				// line buffer: prior-write bytes live in lineBuf only when
				// the line began before this segment (lineStart == 0).
				var dup []byte
				if lineStart == 0 {
					dup = append(dup, c.lineBuf...)
				}
				dup = append(dup, seg[lineStart:linePos+1]...)
				// Deliver through the terminator, then replay the line.
				n, err := c.writeSeg(seg[:linePos+1])
				written += n
				if err != nil {
					return written, err
				}
				c.plan.DupLine = -1
				c.l.record(c.idx, KindDupLine, lineIdx)
				if _, err := c.Conn.Write(dup); err != nil {
					return written, err
				}
				continue
			}
		}

		if bytePos >= 0 && bytePos <= len(seg) {
			if !c.l.takeBudget() {
				if byteKind == KindReset {
					c.plan.ResetWriteAt = -1
				} else {
					c.plan.PartialAt = -1
				}
				continue
			}
			n, err := c.writeSeg(seg[:bytePos])
			written += n
			if err != nil {
				return written, err
			}
			at := c.wBytes
			c.l.record(c.idx, byteKind, at)
			if byteKind == KindPartialStall && c.plan.Stall > 0 {
				time.Sleep(c.plan.Stall)
			}
			c.wDead = true
			c.Conn.Close()
			return written, injectedErr{byteKind}
		}

		n, err := c.writeSeg(seg)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// writeSeg writes p to the underlying connection, maintaining the byte,
// line and current-line-buffer accounting for the bytes that got through.
func (c *Conn) writeSeg(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := c.Conn.Write(p)
	for _, by := range p[:n] {
		c.wBytes++
		if by == '\n' {
			c.wLine++
			c.lineBuf = c.lineBuf[:0]
		} else if c.plan.DupLine >= 0 && len(c.lineBuf) < 1<<16 {
			c.lineBuf = append(c.lineBuf, by)
		}
	}
	return n, err
}
