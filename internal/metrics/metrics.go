// Package metrics implements sequence-based reordering metrics for
// arbitrary packet arrival sequences: the paper's primitive exchange
// metric generalized to trains, plus the IPPM metrics of the
// Morton/Ciavattone/Ramachandran draft the paper cites ([8],
// draft-morton-ippm-nonrev-reordering, which later became RFC 4737) —
// reordered-packet ratio by the non-reversing-order definition, per-packet
// reordering extent, and n-reordering.
//
// All metrics consume an arrival sequence of source sequence numbers
// (0-based send positions). Receivers with gaps simply omit the lost
// positions; duplicates should be filtered by the caller (the probers
// already do).
package metrics

import "fmt"

// Report holds every metric for one arrival sequence.
type Report struct {
	// Sent is the highest send position observed plus one (packets the
	// sequence proves were sent). Received is the arrival count.
	Sent, Received int

	// Exchanges is the paper's primitive: the number of adjacent arrival
	// pairs whose send order is inverted.
	Exchanges int

	// Reordered is the number of packets reordered under the IPPM
	// non-reversing-order definition: a packet is reordered when its send
	// position is smaller than that of some earlier-arriving packet
	// (equivalently, it arrives with position < the running maximum).
	Reordered int

	// Extents[i] is the reordering extent of the i-th arrival: for a
	// reordered packet, the distance in arrival positions back to the
	// earliest earlier-arrival with a larger send position; 0 for
	// in-order packets.
	Extents []int

	// NReordering[n-1] is the count of n-reordered packets for n = 1..
	// len(NReordering): packets reordered with extent >= n. A packet that
	// is n-reordered for n >= dupthresh would trigger a spurious TCP fast
	// retransmit at that dupthresh — the protocol-impact interpretation
	// the paper argues distribution metrics enable.
	NReordering []int
}

// Ratio returns the reordered-packet ratio: Reordered / Received.
func (r *Report) Ratio() float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(r.Reordered) / float64(r.Received)
}

// ExchangeRatio returns Exchanges per adjacent arrival pair.
func (r *Report) ExchangeRatio() float64 {
	if r.Received < 2 {
		return 0
	}
	return float64(r.Exchanges) / float64(r.Received-1)
}

// MaxExtent returns the largest reordering extent observed.
func (r *Report) MaxExtent() int {
	max := 0
	for _, e := range r.Extents {
		if e > max {
			max = e
		}
	}
	return max
}

// NReordered returns the number of packets n-reordered at the given n
// (0 for n below 1 or beyond the observed maximum).
func (r *Report) NReordered(n int) int {
	if n < 1 || n > len(r.NReordering) {
		return 0
	}
	return r.NReordering[n-1]
}

// SpuriousFastRetransmits returns how many reordering events would have
// been misread as losses by a TCP sender using the given duplicate-ACK
// threshold (3 in classic Reno): packets n-reordered at n >= dupthresh.
func (r *Report) SpuriousFastRetransmits(dupthresh int) int {
	return r.NReordered(dupthresh)
}

// String summarizes the report on one line.
func (r *Report) String() string {
	return fmt.Sprintf("received=%d reordered=%d (ratio %.4f) exchanges=%d max-extent=%d",
		r.Received, r.Reordered, r.Ratio(), r.Exchanges, r.MaxExtent())
}

// Analyze computes all metrics over an arrival sequence of send positions.
func Analyze(arrivals []int) *Report {
	rep := &Report{Received: len(arrivals), Extents: make([]int, len(arrivals))}
	maxSeen := -1
	for i, pos := range arrivals {
		if pos+1 > rep.Sent {
			rep.Sent = pos + 1
		}
		if i > 0 && pos < arrivals[i-1] {
			rep.Exchanges++
		}
		if pos < maxSeen {
			rep.Reordered++
			// Extent: distance back to the earliest earlier arrival that
			// has a larger send position (RFC 4737 §4.2.1).
			extent := 0
			for j := i - 1; j >= 0; j-- {
				if arrivals[j] > pos {
					extent = i - j
				}
			}
			rep.Extents[i] = extent
		}
		if pos > maxSeen {
			maxSeen = pos
		}
	}
	// n-reordering histogram from the extents.
	maxExt := rep.MaxExtent()
	rep.NReordering = make([]int, maxExt)
	for _, e := range rep.Extents {
		for n := 1; n <= e; n++ {
			rep.NReordering[n-1]++
		}
	}
	return rep
}

// FromSeqs converts TCP-style byte sequence numbers of equal-sized
// segments into send positions and analyzes them. segSize must be the
// constant segment length; base is the first byte's sequence number.
// Sequence numbers that are not aligned multiples are rejected.
func FromSeqs(base uint32, segSize int, seqs []uint32) (*Report, error) {
	if segSize <= 0 {
		return nil, fmt.Errorf("metrics: segment size %d", segSize)
	}
	arrivals := make([]int, len(seqs))
	for i, s := range seqs {
		off := s - base // wraps correctly in uint32 space
		if off%uint32(segSize) != 0 {
			return nil, fmt.Errorf("metrics: seq %d not aligned to %d-byte segments from base %d", s, segSize, base)
		}
		arrivals[i] = int(off / uint32(segSize))
	}
	return Analyze(arrivals), nil
}
