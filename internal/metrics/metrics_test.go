package metrics

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestInOrderSequence(t *testing.T) {
	rep := Analyze([]int{0, 1, 2, 3, 4})
	if rep.Reordered != 0 || rep.Exchanges != 0 || rep.Ratio() != 0 {
		t.Fatalf("in-order sequence: %+v", rep)
	}
	if rep.Sent != 5 || rep.Received != 5 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.MaxExtent() != 0 || len(rep.NReordering) != 0 {
		t.Fatalf("extents on in-order: %+v", rep)
	}
}

func TestSingleAdjacentExchange(t *testing.T) {
	rep := Analyze([]int{0, 2, 1, 3})
	if rep.Exchanges != 1 {
		t.Fatalf("Exchanges = %d", rep.Exchanges)
	}
	if rep.Reordered != 1 {
		t.Fatalf("Reordered = %d", rep.Reordered)
	}
	// Packet 1 arrived one position after packet 2: extent 1.
	if rep.Extents[2] != 1 {
		t.Fatalf("Extents = %v", rep.Extents)
	}
	if rep.NReordered(1) != 1 || rep.NReordered(2) != 0 {
		t.Fatalf("NReordering = %v", rep.NReordering)
	}
}

func TestDeepReordering(t *testing.T) {
	// Packet 0 arrives last, after 4 later packets: extent 4.
	rep := Analyze([]int{1, 2, 3, 4, 0})
	if rep.Reordered != 1 {
		t.Fatalf("Reordered = %d", rep.Reordered)
	}
	if rep.Extents[4] != 4 {
		t.Fatalf("extent = %d, want 4", rep.Extents[4])
	}
	// n-reordered for n=1..4.
	for n := 1; n <= 4; n++ {
		if rep.NReordered(n) != 1 {
			t.Fatalf("NReordered(%d) = %d", n, rep.NReordered(n))
		}
	}
	if rep.NReordered(5) != 0 {
		t.Fatal("NReordered beyond extent")
	}
	// At TCP's dupthresh 3, this event would trigger a spurious fast
	// retransmit.
	if rep.SpuriousFastRetransmits(3) != 1 {
		t.Fatal("spurious fast retransmit not detected")
	}
}

func TestAdjacentSwapNeverTriggersFastRetransmit(t *testing.T) {
	// The paper's point about dupthresh: simple adjacent exchanges have
	// extent 1 and never reach 3-reordering.
	rep := Analyze([]int{1, 0, 3, 2, 5, 4, 7, 6})
	if rep.Reordered != 4 {
		t.Fatalf("Reordered = %d", rep.Reordered)
	}
	if rep.SpuriousFastRetransmits(3) != 0 {
		t.Fatal("adjacent swaps misread as loss")
	}
}

func TestExtentDefinition(t *testing.T) {
	// Arrivals: 3, 1, 2, 0. Packet 0 arrives at index 3; the EARLIEST
	// earlier arrival with larger send position is index 0 (pos 3), so
	// extent = 3.
	rep := Analyze([]int{3, 1, 2, 0})
	if rep.Extents[3] != 3 {
		t.Fatalf("extent = %d, want 3", rep.Extents[3])
	}
	// Packet 1 at index 1: earliest larger earlier arrival is index 0.
	if rep.Extents[1] != 1 {
		t.Fatalf("extent of pos 1 = %d, want 1", rep.Extents[1])
	}
	// Packet 2 at index 2: pos 3 arrived at index 0, extent 2.
	if rep.Extents[2] != 2 {
		t.Fatalf("extent of pos 2 = %d, want 2", rep.Extents[2])
	}
}

func TestLossLeavesGaps(t *testing.T) {
	// Position 2 lost: remaining arrivals in order are not reordered.
	rep := Analyze([]int{0, 1, 3, 4})
	if rep.Reordered != 0 {
		t.Fatalf("loss misread as reordering: %+v", rep)
	}
	if rep.Sent != 5 {
		t.Fatalf("Sent = %d, want 5 (position 4 proves 5 sent)", rep.Sent)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if rep := Analyze(nil); rep.Received != 0 || rep.Ratio() != 0 || rep.ExchangeRatio() != 0 {
		t.Fatalf("empty: %+v", rep)
	}
	if rep := Analyze([]int{0}); rep.Reordered != 0 || rep.ExchangeRatio() != 0 {
		t.Fatalf("singleton: %+v", rep)
	}
}

func TestRatios(t *testing.T) {
	rep := Analyze([]int{1, 0, 2, 3})
	if rep.Ratio() != 0.25 {
		t.Fatalf("Ratio = %v", rep.Ratio())
	}
	if rep.ExchangeRatio() != 1.0/3 {
		t.Fatalf("ExchangeRatio = %v", rep.ExchangeRatio())
	}
	if !strings.Contains(rep.String(), "reordered=1") {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestFromSeqs(t *testing.T) {
	rep, err := FromSeqs(1000, 100, []uint32{1000, 1200, 1100, 1300})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reordered != 1 || rep.Exchanges != 1 {
		t.Fatalf("%+v", rep)
	}
}

func TestFromSeqsWraparound(t *testing.T) {
	base := uint32(0xffffff38) // 200 bytes below wrap
	rep, err := FromSeqs(base, 100, []uint32{base, base + 100, base + 200, base + 300})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reordered != 0 || rep.Sent != 4 {
		t.Fatalf("wraparound: %+v", rep)
	}
}

func TestFromSeqsRejectsMisaligned(t *testing.T) {
	if _, err := FromSeqs(0, 100, []uint32{0, 150}); err == nil {
		t.Fatal("misaligned seq accepted")
	}
	if _, err := FromSeqs(0, 0, nil); err == nil {
		t.Fatal("zero segment size accepted")
	}
}

// Property: a permutation's reordered count equals the number of positions
// that are not left-to-right maxima minus in-order ones — concretely,
// Analyze must agree with a brute-force running-max evaluation.
func TestQuickReorderedMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%20) + 2
		rng := rand.New(rand.NewPCG(seed, 1))
		arr := rng.Perm(size)
		rep := Analyze(arr)
		want := 0
		for i := range arr {
			for j := 0; j < i; j++ {
				if arr[j] > arr[i] {
					want++
					break
				}
			}
		}
		return rep.Reordered == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: n-reordering is nonincreasing in n (RFC 4737 §5.4).
func TestQuickNReorderingMonotone(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%30) + 2
		rng := rand.New(rand.NewPCG(seed, 2))
		rep := Analyze(rng.Perm(size))
		for i := 1; i < len(rep.NReordering); i++ {
			if rep.NReordering[i] > rep.NReordering[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: an in-order sequence with arbitrary gaps is never reordered.
func TestQuickGapsNeverReorder(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		pos, arr := 0, []int{}
		for i := 0; i < 30; i++ {
			pos += 1 + rng.IntN(5)
			arr = append(arr, pos)
		}
		rep := Analyze(arr)
		return rep.Reordered == 0 && rep.Exchanges == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: reversing a strictly increasing sequence reorders all but the
// first-arriving (largest) element.
func TestQuickFullReversal(t *testing.T) {
	f := func(n uint8) bool {
		size := int(n%30) + 2
		arr := make([]int, size)
		for i := range arr {
			arr[i] = size - 1 - i
		}
		rep := Analyze(arr)
		return rep.Reordered == size-1 && rep.MaxExtent() == size-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
