package tcpstack

import (
	"net/netip"

	"reorder/internal/packet"
)

// handleEstablished processes a segment on an established connection: ACK
// bookkeeping for the data server, then receive-side sequence processing
// with the delayed-ACK and immediate-ACK rules the measurement techniques
// exploit.
func (s *Stack) handleEstablished(k packet.FlowKey, c *conn, p *packet.Packet) {
	hdr := p.TCP

	if hdr.HasFlags(packet.FlagACK) {
		s.processAck(c, hdr)
	}

	switch {
	case len(p.Payload) > 0:
		s.processData(c, p)
	case hdr.HasFlags(packet.FlagFIN):
		// FIN with no data: ack it, send our FIN, and drop state. The
		// prober treats FIN/ACK as connection teardown confirmation.
		if hdr.Seq == c.rcvNxt {
			c.rcvNxt++
			s.stats.AcksSent++
			h := s.outHdr()
			h.SrcPort, h.DstPort = c.lport, c.pport
			h.Seq, h.Ack = c.sndNxt, c.rcvNxt
			h.Flags = packet.FlagFIN | packet.FlagACK
			h.Window = s.cfg.Window
			s.transmit(c.peer, h, nil)
			s.dropConn(k, c)
		}
	}
	if hdr.HasFlags(packet.FlagFIN) && len(p.Payload) > 0 && hdr.Seq+uint32(len(p.Payload)) == c.rcvNxt {
		// Data+FIN handled above through processData; acknowledge the FIN.
		c.rcvNxt++
		s.sendAck(c, false)
	}
}

// processAck advances the send side and drives the data application.
func (s *Stack) processAck(c *conn, hdr *packet.TCPHeader) {
	c.peerWnd = uint32(hdr.Window)
	if packet.SeqGT(hdr.Ack, c.sndUna) && packet.SeqLEQ(hdr.Ack, c.sndNxt) {
		c.sndUna = hdr.Ack
		c.rtxTimer.Stop()
	}
	if c.serving {
		s.pump(c)
	}
}

// processData implements receive-side sequence processing.
func (s *Stack) processData(c *conn, p *packet.Packet) {
	hdr := p.TCP
	seq := hdr.Seq
	end := seq + uint32(len(p.Payload))

	switch {
	case packet.SeqLEQ(end, c.rcvNxt):
		// Entirely old data (e.g. the single connection test retransmitting
		// its hole-maker after the hole was later filled): immediate
		// duplicate ACK so the sender learns our state.
		s.sendAck(c, true)

	case packet.SeqGT(seq, c.rcvNxt):
		// Out-of-order: queue it, update SACK state, and ACK immediately —
		// the fast-retransmit support behaviour (§II-A) that both the
		// single and dual connection tests rely on for prompt feedback.
		s.insertOOO(c, seq, end)
		s.sendAck(c, true)

	default:
		// In-order (seq <= rcvNxt < end): advance and merge the OOO queue.
		c.rcvNxt = end
		filled := s.mergeOOO(c)
		for _, b := range p.Payload {
			if b == '\n' {
				c.reqNewline = true
				break
			}
		}
		s.appDeliver(c)
		if filled {
			// Filling a hole: ACK immediately (RFC 5681).
			s.sendAck(c, true)
			return
		}
		// Plain in-order data: delayed ACK algorithm. RescheduleArg revives
		// the timer's heap entry in place when an earlier sendAck merely
		// stopped it — one sift instead of a dead entry plus a fresh push.
		c.delackCount++
		if c.delackCount >= s.cfg.DelAckThreshold {
			s.sendAck(c, false)
			return
		}
		if !c.delackTimer.Pending() {
			c.delackTimer = s.loop.RescheduleArg(c.delackTimer,
				s.loop.Now().Add(s.cfg.DelAckTimeout), s.delackFn, c)
		}
	}
}

// insertOOO adds [seq,end) to the out-of-order queue, coalescing overlaps,
// and refreshes the SACK block list with the newest block first (RFC 2018).
func (s *Stack) insertOOO(c *conn, seq, end uint32) {
	merged := oooSeg{seq: seq, end: end}
	out := c.ooo[:0]
	for _, g := range c.ooo {
		if packet.SeqLT(merged.end, g.seq) || packet.SeqGT(merged.seq, g.end) {
			out = append(out, g)
			continue
		}
		merged.seq = packet.SeqMin(merged.seq, g.seq)
		merged.end = packet.SeqMax(merged.end, g.end)
	}
	// Insert keeping the queue sorted by seq.
	pos := len(out)
	for i, g := range out {
		if packet.SeqLT(merged.seq, g.seq) {
			pos = i
			break
		}
	}
	out = append(out, oooSeg{})
	copy(out[pos+1:], out[pos:])
	out[pos] = merged
	c.ooo = out

	if c.sackOK {
		// Rebuild newest-first into the connection's scratch list, then
		// swap the two: no allocation once both have reached capacity 4.
		nb := packet.SACKBlock{Left: merged.seq, Right: merged.end}
		blocks := append(c.sackAlt[:0], nb)
		for _, b := range c.sack {
			if b.Left == nb.Left && b.Right == nb.Right {
				continue
			}
			// Blocks merged into the new one disappear.
			if packet.SeqGEQ(b.Left, nb.Left) && packet.SeqLEQ(b.Right, nb.Right) {
				continue
			}
			blocks = append(blocks, b)
			if len(blocks) == 4 {
				break
			}
		}
		c.sack, c.sackAlt = blocks, c.sack
	}
}

// mergeOOO consumes queued segments made contiguous by an advance of
// rcvNxt. It reports whether the advance consumed at least one queued
// segment (i.e. the arriving segment filled a hole).
func (s *Stack) mergeOOO(c *conn) bool {
	filled := false
	n := 0
	for n < len(c.ooo) && packet.SeqLEQ(c.ooo[n].seq, c.rcvNxt) {
		if packet.SeqGT(c.ooo[n].end, c.rcvNxt) {
			c.rcvNxt = c.ooo[n].end
		}
		n++
	}
	if n > 0 {
		// Compact rather than reslice the head away, so the queue's
		// storage keeps its full capacity for connection-state reuse.
		c.ooo = c.ooo[:copy(c.ooo, c.ooo[n:])]
		filled = true
	}
	if c.sackOK {
		kept := c.sack[:0]
		for _, b := range c.sack {
			if packet.SeqGT(b.Right, c.rcvNxt) {
				kept = append(kept, b)
			}
		}
		c.sack = kept
	}
	return filled
}

// sendAck transmits a pure ACK reflecting the current receive state.
// immediate marks ACKs forced by OOO data, hole fills, or duplicates; they
// cancel any pending delayed ACK.
func (s *Stack) sendAck(c *conn, immediate bool) {
	c.delackTimer.Stop()
	c.delackCount = 0
	hdr := s.outHdr()
	hdr.SrcPort, hdr.DstPort = c.lport, c.pport
	hdr.Seq, hdr.Ack = c.sndNxt, c.rcvNxt
	hdr.Flags, hdr.Window = packet.FlagACK, s.cfg.Window
	if c.sackOK && len(c.sack) > 0 {
		n := len(c.sack)
		if n > 3 {
			n = 3
		}
		d := s.sackBuf[:0]
		for _, b := range c.sack[:n] {
			d = append(d, byte(b.Left>>24), byte(b.Left>>16), byte(b.Left>>8), byte(b.Left),
				byte(b.Right>>24), byte(b.Right>>16), byte(b.Right>>8), byte(b.Right))
		}
		s.sackBuf = d
		hdr.Options = append(hdr.Options,
			packet.TCPOption{Kind: packet.OptNOP}, packet.TCPOption{Kind: packet.OptNOP},
			packet.TCPOption{Kind: packet.OptSACK, Data: d})
	}
	s.stats.AcksSent++
	if immediate {
		s.stats.ImmediateAcks++
	}
	s.transmit(c.peer, hdr, nil)
}

// appDeliver hands newly in-order data to the application. The application
// is a single-shot object server: a newline-terminated request line (think
// "GET /\r\n") triggers transmission of ObjectSize bytes. Requiring the
// newline matters: the single connection test deposits stray request bytes
// on port 80 connections, and a real web server would likewise sit silent
// until the request completes.
func (s *Stack) appDeliver(c *conn) {
	if c.appGotReq || !c.reqNewline || !s.listening(c.lport) {
		return
	}
	c.appGotReq = true
	c.serving = true
	c.sendEnd = c.sndNxt + uint32(s.cfg.ObjectSize)
	s.pump(c)
}

// pump transmits as much served data as the peer's window and MSS allow,
// and arms the retransmission timer.
func (s *Stack) pump(c *conn) {
	if !c.serving {
		return
	}
	if c.sndUna == c.sendEnd {
		c.serving = false
		c.rtxTimer.Stop()
		return
	}
	mss := uint32(s.cfg.MSS)
	if uint32(c.peerMSS) < mss {
		mss = uint32(c.peerMSS)
	}
	if mss == 0 {
		mss = 536
	}
	for packet.SeqLT(c.sndNxt, c.sendEnd) {
		inFlight := c.sndNxt - c.sndUna
		if c.peerWnd <= inFlight {
			break
		}
		room := c.peerWnd - inFlight
		n := mss
		if room < n {
			n = room
		}
		if rem := c.sendEnd - c.sndNxt; rem < n {
			n = rem
		}
		if n == 0 {
			break
		}
		s.sendData(c, c.sndNxt, n)
		c.sndNxt += n
	}
	if !c.rtxTimer.Pending() {
		c.rtxTimer = s.loop.RescheduleArg(c.rtxTimer, s.loop.Now().Add(s.cfg.RTO), s.rtxFn, c)
	}
}

// retransmit resends one segment at sndUna (go-back-N restart).
func (s *Stack) retransmit(c *conn) {
	if !c.serving || c.sndUna == c.sendEnd {
		return
	}
	mss := uint32(s.cfg.MSS)
	if uint32(c.peerMSS) < mss {
		mss = uint32(c.peerMSS)
	}
	n := c.sendEnd - c.sndUna
	if n > mss {
		n = mss
	}
	s.stats.Retransmits++
	s.sendData(c, c.sndUna, n)
	c.rtxTimer = s.loop.RescheduleArg(c.rtxTimer, s.loop.Now().Add(s.cfg.RTO), s.rtxFn, c)
}

// sendData transmits object bytes [seq, seq+n). Payload content is a
// deterministic function of sequence position so traces can verify
// integrity.
func (s *Stack) sendData(c *conn, seq, n uint32) {
	if cap(s.payloadBuf) < int(n) {
		s.payloadBuf = make([]byte, n)
	}
	payload := s.payloadBuf[:n]
	for i := range payload {
		payload[i] = byte((seq + uint32(i)) % 251)
	}
	s.stats.DataSegsSent++
	hdr := s.outHdr()
	hdr.SrcPort, hdr.DstPort = c.lport, c.pport
	hdr.Seq, hdr.Ack = seq, c.rcvNxt
	hdr.Flags = packet.FlagACK | packet.FlagPSH
	hdr.Window = s.cfg.Window
	s.transmit(c.peer, hdr, payload)
}

// transmit emits one datagram, stamping the IPID. The header and payload
// are copied into an arena-owned frame view; wire bytes are not encoded
// here — they materialize only if something downstream needs octets.
func (s *Stack) transmit(dst netip.Addr, hdr *packet.TCPHeader, payload []byte) {
	ip := packet.IPv4Header{
		Src: s.addr, Dst: dst,
		ID: s.gen.Next(dst),
	}
	if !s.cfg.DisablePMTUD {
		ip.Flags = packet.FlagDF
	}
	f, err := s.arena.NewTCPFrame(s.ids.Next(), s.loop.Now(), &ip, hdr, payload)
	if err != nil {
		panic("tcpstack: encode: " + err.Error())
	}
	s.out.Input(f)
}
