package tcpstack

import (
	"net/netip"

	"reorder/internal/netem"
	"reorder/internal/packet"
)

// handleEstablished processes a segment on an established connection: ACK
// bookkeeping for the data server, then receive-side sequence processing
// with the delayed-ACK and immediate-ACK rules the measurement techniques
// exploit.
func (s *Stack) handleEstablished(k packet.FlowKey, c *conn, p *packet.Packet) {
	hdr := p.TCP

	if hdr.HasFlags(packet.FlagACK) {
		s.processAck(c, hdr)
	}

	switch {
	case len(p.Payload) > 0:
		s.processData(c, p)
	case hdr.HasFlags(packet.FlagFIN):
		// FIN with no data: ack it, send our FIN, and drop state. The
		// prober treats FIN/ACK as connection teardown confirmation.
		if hdr.Seq == c.rcvNxt {
			c.rcvNxt++
			s.stats.AcksSent++
			s.transmit(c.peer, &packet.TCPHeader{
				SrcPort: c.lport, DstPort: c.pport,
				Seq: c.sndNxt, Ack: c.rcvNxt,
				Flags: packet.FlagFIN | packet.FlagACK, Window: s.cfg.Window,
			}, nil)
			s.dropConn(k, c)
		}
	}
	if hdr.HasFlags(packet.FlagFIN) && len(p.Payload) > 0 && hdr.Seq+uint32(len(p.Payload)) == c.rcvNxt {
		// Data+FIN handled above through processData; acknowledge the FIN.
		c.rcvNxt++
		s.sendAck(c, false)
	}
}

// processAck advances the send side and drives the data application.
func (s *Stack) processAck(c *conn, hdr *packet.TCPHeader) {
	c.peerWnd = uint32(hdr.Window)
	if packet.SeqGT(hdr.Ack, c.sndUna) && packet.SeqLEQ(hdr.Ack, c.sndNxt) {
		c.sndUna = hdr.Ack
		if c.rtxTimer != nil {
			c.rtxTimer.Stop()
			c.rtxTimer = nil
		}
	}
	if c.serving {
		s.pump(c)
	}
}

// processData implements receive-side sequence processing.
func (s *Stack) processData(c *conn, p *packet.Packet) {
	hdr := p.TCP
	seq := hdr.Seq
	end := seq + uint32(len(p.Payload))

	switch {
	case packet.SeqLEQ(end, c.rcvNxt):
		// Entirely old data (e.g. the single connection test retransmitting
		// its hole-maker after the hole was later filled): immediate
		// duplicate ACK so the sender learns our state.
		s.sendAck(c, true)

	case packet.SeqGT(seq, c.rcvNxt):
		// Out-of-order: queue it, update SACK state, and ACK immediately —
		// the fast-retransmit support behaviour (§II-A) that both the
		// single and dual connection tests rely on for prompt feedback.
		s.insertOOO(c, seq, end)
		s.sendAck(c, true)

	default:
		// In-order (seq <= rcvNxt < end): advance and merge the OOO queue.
		c.rcvNxt = end
		filled := s.mergeOOO(c)
		for _, b := range p.Payload {
			if b == '\n' {
				c.reqNewline = true
				break
			}
		}
		s.appDeliver(c)
		if filled {
			// Filling a hole: ACK immediately (RFC 5681).
			s.sendAck(c, true)
			return
		}
		// Plain in-order data: delayed ACK algorithm.
		c.delackCount++
		if c.delackCount >= s.cfg.DelAckThreshold {
			s.sendAck(c, false)
			return
		}
		if c.delackTimer == nil || !c.delackTimer.Pending() {
			c.delackTimer = s.loop.Schedule(s.cfg.DelAckTimeout, func() {
				s.stats.DelayedAcks++
				s.sendAck(c, false)
			})
		}
	}
}

// insertOOO adds [seq,end) to the out-of-order queue, coalescing overlaps,
// and refreshes the SACK block list with the newest block first (RFC 2018).
func (s *Stack) insertOOO(c *conn, seq, end uint32) {
	merged := oooSeg{seq: seq, end: end}
	out := c.ooo[:0]
	for _, g := range c.ooo {
		if packet.SeqLT(merged.end, g.seq) || packet.SeqGT(merged.seq, g.end) {
			out = append(out, g)
			continue
		}
		merged.seq = packet.SeqMin(merged.seq, g.seq)
		merged.end = packet.SeqMax(merged.end, g.end)
	}
	// Insert keeping the queue sorted by seq.
	pos := len(out)
	for i, g := range out {
		if packet.SeqLT(merged.seq, g.seq) {
			pos = i
			break
		}
	}
	out = append(out, oooSeg{})
	copy(out[pos+1:], out[pos:])
	out[pos] = merged
	c.ooo = out

	if c.sackOK {
		nb := packet.SACKBlock{Left: merged.seq, Right: merged.end}
		blocks := []packet.SACKBlock{nb}
		for _, b := range c.sack {
			if b.Left == nb.Left && b.Right == nb.Right {
				continue
			}
			// Blocks merged into the new one disappear.
			if packet.SeqGEQ(b.Left, nb.Left) && packet.SeqLEQ(b.Right, nb.Right) {
				continue
			}
			blocks = append(blocks, b)
			if len(blocks) == 4 {
				break
			}
		}
		c.sack = blocks
	}
}

// mergeOOO consumes queued segments made contiguous by an advance of
// rcvNxt. It reports whether the advance consumed at least one queued
// segment (i.e. the arriving segment filled a hole).
func (s *Stack) mergeOOO(c *conn) bool {
	filled := false
	for len(c.ooo) > 0 && packet.SeqLEQ(c.ooo[0].seq, c.rcvNxt) {
		if packet.SeqGT(c.ooo[0].end, c.rcvNxt) {
			c.rcvNxt = c.ooo[0].end
		}
		c.ooo = c.ooo[1:]
		filled = true
	}
	if c.sackOK {
		kept := c.sack[:0]
		for _, b := range c.sack {
			if packet.SeqGT(b.Right, c.rcvNxt) {
				kept = append(kept, b)
			}
		}
		c.sack = kept
	}
	return filled
}

// sendAck transmits a pure ACK reflecting the current receive state.
// immediate marks ACKs forced by OOO data, hole fills, or duplicates; they
// cancel any pending delayed ACK.
func (s *Stack) sendAck(c *conn, immediate bool) {
	if c.delackTimer != nil {
		c.delackTimer.Stop()
		c.delackTimer = nil
	}
	c.delackCount = 0
	hdr := &packet.TCPHeader{
		SrcPort: c.lport, DstPort: c.pport,
		Seq: c.sndNxt, Ack: c.rcvNxt,
		Flags: packet.FlagACK, Window: s.cfg.Window,
	}
	if c.sackOK && len(c.sack) > 0 {
		n := len(c.sack)
		if n > 3 {
			n = 3
		}
		hdr.Options = []packet.TCPOption{
			{Kind: packet.OptNOP}, {Kind: packet.OptNOP},
			packet.SACKOption(c.sack[:n]),
		}
	}
	s.stats.AcksSent++
	if immediate {
		s.stats.ImmediateAcks++
	}
	s.transmit(c.peer, hdr, nil)
}

// appDeliver hands newly in-order data to the application. The application
// is a single-shot object server: a newline-terminated request line (think
// "GET /\r\n") triggers transmission of ObjectSize bytes. Requiring the
// newline matters: the single connection test deposits stray request bytes
// on port 80 connections, and a real web server would likewise sit silent
// until the request completes.
func (s *Stack) appDeliver(c *conn) {
	if c.appGotReq || !c.reqNewline || !s.ports[c.lport] {
		return
	}
	c.appGotReq = true
	c.serving = true
	c.sendEnd = c.sndNxt + uint32(s.cfg.ObjectSize)
	s.pump(c)
}

// pump transmits as much served data as the peer's window and MSS allow,
// and arms the retransmission timer.
func (s *Stack) pump(c *conn) {
	if !c.serving {
		return
	}
	if c.sndUna == c.sendEnd {
		c.serving = false
		if c.rtxTimer != nil {
			c.rtxTimer.Stop()
			c.rtxTimer = nil
		}
		return
	}
	mss := uint32(s.cfg.MSS)
	if uint32(c.peerMSS) < mss {
		mss = uint32(c.peerMSS)
	}
	if mss == 0 {
		mss = 536
	}
	for packet.SeqLT(c.sndNxt, c.sendEnd) {
		inFlight := c.sndNxt - c.sndUna
		if c.peerWnd <= inFlight {
			break
		}
		room := c.peerWnd - inFlight
		n := mss
		if room < n {
			n = room
		}
		if rem := c.sendEnd - c.sndNxt; rem < n {
			n = rem
		}
		if n == 0 {
			break
		}
		s.sendData(c, c.sndNxt, n)
		c.sndNxt += n
	}
	if c.rtxTimer == nil || !c.rtxTimer.Pending() {
		c.rtxTimer = s.loop.Schedule(s.cfg.RTO, func() { s.retransmit(c) })
	}
}

// retransmit resends one segment at sndUna (go-back-N restart).
func (s *Stack) retransmit(c *conn) {
	if !c.serving || c.sndUna == c.sendEnd {
		return
	}
	mss := uint32(s.cfg.MSS)
	if uint32(c.peerMSS) < mss {
		mss = uint32(c.peerMSS)
	}
	n := c.sendEnd - c.sndUna
	if n > mss {
		n = mss
	}
	s.stats.Retransmits++
	s.sendData(c, c.sndUna, n)
	c.rtxTimer = s.loop.Schedule(s.cfg.RTO, func() { s.retransmit(c) })
}

// sendData transmits object bytes [seq, seq+n). Payload content is a
// deterministic function of sequence position so traces can verify
// integrity.
func (s *Stack) sendData(c *conn, seq, n uint32) {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte((seq + uint32(i)) % 251)
	}
	s.stats.DataSegsSent++
	s.transmit(c.peer, &packet.TCPHeader{
		SrcPort: c.lport, DstPort: c.pport,
		Seq: seq, Ack: c.rcvNxt,
		Flags: packet.FlagACK | packet.FlagPSH, Window: s.cfg.Window,
	}, payload)
}

// transmit encodes and emits one datagram, stamping the IPID.
func (s *Stack) transmit(dst netip.Addr, hdr *packet.TCPHeader, payload []byte) {
	ip := &packet.IPv4Header{
		Src: s.addr, Dst: dst,
		ID: s.gen.Next(dst),
	}
	if !s.cfg.DisablePMTUD {
		ip.Flags = packet.FlagDF
	}
	raw, err := packet.EncodeTCP(ip, hdr, payload)
	if err != nil {
		panic("tcpstack: encode: " + err.Error())
	}
	s.out.Input(&netem.Frame{ID: s.ids.Next(), Data: raw, Born: s.loop.Now()})
}
