// Package tcpstack models the remote host's TCP implementation — the "de
// facto measurement server" the paper's techniques turn any TCP service
// into. It implements precisely the behaviours the tests leverage:
//
//   - the three-way handshake, including the configurable response to a
//     second SYN on a half-open connection (SYN test, §III-D);
//   - delayed acknowledgments with a segment threshold and timeout, the
//     behaviour that complicates the single connection test (§III-B);
//   - immediate duplicate ACKs for out-of-order segments and immediate ACKs
//     when a segment fills a sequence hole (RFC 5681), which both the single
//     and dual connection tests depend on;
//   - SACK block generation for out-of-order data;
//   - IPID stamping of every transmitted datagram via a pluggable policy
//     (dual connection test, §III-C);
//   - a minimal data-serving application (a stand-in web server) with
//     peer-MSS/window-respecting transmission and go-back-N retransmission,
//     used by the TCP data transfer test.
//
// The stack is event-driven on a sim.Loop and emits raw encoded datagrams to
// a netem.Node, so everything it sends crosses the simulated network as real
// octets.
package tcpstack

import (
	"time"

	"reorder/internal/ipid"
	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/sim"

	"net/netip"
)

// SYNPolicy selects how the stack responds to a second SYN received in
// SYN_RECV with a different sequence number (§III-D: "this portion of the
// TCP specification is poorly understood").
type SYNPolicy int

const (
	// SYNPolicyRST always answers the second SYN with a RST — the most
	// common implementation behaviour the paper observed.
	SYNPolicyRST SYNPolicy = iota
	// SYNPolicySpec follows the specification: RST if the new sequence
	// number is inside the allowable window, otherwise a pure ACK
	// (challenge ACK) reflecting the original state.
	SYNPolicySpec
	// SYNPolicyDualRST sends two RSTs, a quirk of a few implementations.
	SYNPolicyDualRST
	// SYNPolicyIgnore silently drops the second SYN, leaving only the
	// original SYN/ACK observable.
	SYNPolicyIgnore
)

// String returns the policy name.
func (p SYNPolicy) String() string {
	switch p {
	case SYNPolicyRST:
		return "rst-always"
	case SYNPolicySpec:
		return "per-spec"
	case SYNPolicyDualRST:
		return "dual-rst"
	case SYNPolicyIgnore:
		return "ignore"
	default:
		return "unknown"
	}
}

// Config holds the implementation knobs of a simulated stack. The zero
// value, passed through Defaults, models a typical BSD-derived server.
type Config struct {
	// DelAckThreshold is the number of unacknowledged in-order segments
	// that forces an ACK (commonly 2). 1 disables delayed ACKs.
	DelAckThreshold int
	// DelAckTimeout bounds how long an ACK may be delayed (spec max 500ms;
	// common stacks use 100–200ms).
	DelAckTimeout time.Duration
	// SYNPolicy is the second-SYN response behaviour.
	SYNPolicy SYNPolicy
	// SACK enables SACK block generation on ACKs for out-of-order data.
	SACK bool
	// MSS caps the segment size this stack transmits.
	MSS uint16
	// Window is the receive window the stack advertises.
	Window uint16
	// RTO is the (fixed) retransmission timeout of the data server.
	RTO time.Duration
	// ObjectSize is the number of payload bytes the data-serving app sends
	// when a request arrives on a listening port.
	ObjectSize int
	// SilentClosedPorts suppresses the RST normally sent in answer to
	// segments addressed to non-listening ports (a firewalled host). The
	// zero value — answer with RST, per RFC 793 — is what live hosts do
	// and what the prober's cleanup relies on.
	SilentClosedPorts bool
	// DisablePMTUD clears the DF bit on transmitted packets, allowing
	// routers to fragment them in flight (pre-PMTUD stacks). With path
	// MTU discovery on — the default, and the reason Linux 2.4 emits
	// zero IPIDs — oversized packets are dropped at small-MTU hops
	// instead.
	DisablePMTUD bool
}

// Defaults fills unset fields with typical values.
func (c Config) Defaults() Config {
	if c.DelAckThreshold == 0 {
		c.DelAckThreshold = 2
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = 200 * time.Millisecond
	}
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.Window == 0 {
		c.Window = 65535
	}
	if c.RTO == 0 {
		c.RTO = 1 * time.Second
	}
	if c.ObjectSize == 0 {
		c.ObjectSize = 64 << 10
	}
	return c
}

// Stats counts externally observable stack actions, for tests and reports.
type Stats struct {
	SegsIn        uint64 // TCP segments processed
	AcksSent      uint64 // pure ACKs transmitted
	DelayedAcks   uint64 // ACKs sent by the delayed-ACK timer
	ImmediateAcks uint64 // ACKs forced by OOO data or hole fills
	SynAcksSent   uint64
	RstsSent      uint64
	DataSegsSent  uint64
	Retransmits   uint64
}

type connState int

const (
	stateSynRecv connState = iota
	stateEstablished
)

type oooSeg struct {
	seq uint32
	end uint32 // seq + len
}

type conn struct {
	state  connState
	peer   netip.Addr
	pport  uint16 // peer port
	lport  uint16 // local port
	iss    uint32 // our initial send sequence
	irs    uint32 // peer's initial sequence
	rcvNxt uint32
	sndNxt uint32
	sndUna uint32

	peerMSS uint16
	peerWnd uint32
	sackOK  bool
	ooo     []oooSeg           // out-of-order segments, disjoint, sorted by seq
	sack    []packet.SACKBlock // reportable blocks, most recent first
	sackAlt []packet.SACKBlock // scratch for rebuilding sack without allocating

	delackCount int
	delackTimer sim.Timer

	// Data-serving application state.
	serving    bool
	sendEnd    uint32 // sequence number one past the last byte to serve
	rtxTimer   sim.Timer
	appGotReq  bool
	reqNewline bool // a '\n' arrived: the request line is complete
}

// Stack is one host's TCP implementation.
type Stack struct {
	loop *sim.Loop
	cfg  Config
	addr netip.Addr
	gen  ipid.Generator
	ids  *netem.FrameIDs
	out  netem.Node
	rng  *sim.Rand
	// conns is a linear-scan table: a serving stack holds a handful of
	// live connections, where a slice scan beats map hashing on the
	// per-segment path (the hash of a FlowKey costs more than comparing
	// a few entries).
	conns []connEntry
	ports []uint16 // listening ports, typically one
	stats Stats

	// Steady-state scratch: the stack handles one segment at a time on a
	// single-threaded loop, so one decoded packet, one outgoing header and
	// one payload buffer serve every connection without per-segment
	// allocation. arena (optional) supplies the frame views (and any
	// materialized wire bytes) the stack emits.
	arena      *netem.Arena
	rxPkt      packet.Packet
	viewPkt    packet.Packet // aliases a frame view during Input only
	txHdr      packet.TCPHeader
	payloadBuf []byte
	sackBuf    []byte
	mssData    [2]byte
	delackFn   func(any)
	rtxFn      func(any)

	// connPool recycles connection state: dropped connections return here
	// and acceptSYN reuses them (including their OOO/SACK slice storage),
	// so a long-lived stack reaches a steady state where accepting a
	// connection allocates nothing.
	connPool []*conn
}

// connEntry is one live connection in the stack's linear-scan table.
type connEntry struct {
	k packet.FlowKey
	c *conn
}

// New returns a stack for addr that transmits via out, stamping IPIDs from
// gen and frame IDs from ids.
func New(loop *sim.Loop, cfg Config, addr netip.Addr, gen ipid.Generator, ids *netem.FrameIDs, rng *sim.Rand, out netem.Node) *Stack {
	s := &Stack{
		loop: loop, cfg: cfg.Defaults(), addr: addr, gen: gen, ids: ids,
		out: out, rng: rng,
	}
	s.delackFn = func(arg any) {
		s.stats.DelayedAcks++
		s.sendAck(arg.(*conn), false)
	}
	s.rtxFn = func(arg any) { s.retransmit(arg.(*conn)) }
	return s
}

// findConn returns the live connection for k, or nil.
func (s *Stack) findConn(k packet.FlowKey) *conn {
	for i := range s.conns {
		if s.conns[i].k == k {
			return s.conns[i].c
		}
	}
	return nil
}

// listening reports whether port accepts connections.
func (s *Stack) listening(port uint16) bool {
	for _, p := range s.ports {
		if p == port {
			return true
		}
	}
	return false
}

// SetArena directs the stack to allocate transmitted datagrams and frames
// from a, typically the owning scenario's arena. A nil arena (the default)
// falls back to the garbage collector.
func (s *Stack) SetArena(a *netem.Arena) { s.arena = a }

// Reset returns the stack to the state New(loop, cfg, addr, gen, ids, rng,
// out) would produce, keeping its scratch storage, connection pool and the
// random stream object (which the caller reseeds, see sim.Rand.ForkInto).
// Pooled scenario hosts reuse their stacks across topology rebuilds this
// way. Live connections are recycled; listening ports are cleared for the
// caller to re-Listen.
func (s *Stack) Reset(cfg Config, gen ipid.Generator, out netem.Node) {
	s.ResetAt(cfg, s.addr, gen, out)
}

// ResetAt is Reset with an address rebind: topology-graph scenarios pool
// hosts by profile and reassign addresses per build, so a reused stack must
// answer at whatever address the new topology placed it.
func (s *Stack) ResetAt(cfg Config, addr netip.Addr, gen ipid.Generator, out netem.Node) {
	s.cfg = cfg.Defaults()
	s.addr = addr
	s.gen = gen
	s.out = out
	s.stats = Stats{}
	for i := range s.conns {
		s.recycleConn(s.conns[i].c)
	}
	s.conns = s.conns[:0]
	s.ports = s.ports[:0]
}

// recycleConn returns connection state to the pool. Timers need no Stop
// here when the owning loop was reset (stale handles are inert), and a
// Stop on a live loop is the caller's concern (see dropConn).
func (s *Stack) recycleConn(c *conn) {
	s.connPool = append(s.connPool, c)
}

// Listen opens a port; segments to it are served by the data application.
func (s *Stack) Listen(port uint16) {
	if !s.listening(port) {
		s.ports = append(s.ports, port)
	}
}

// Addr returns the stack's address.
func (s *Stack) Addr() netip.Addr { return s.addr }

// Stats returns a snapshot of the stack's counters.
func (s *Stack) Stats() Stats { return s.stats }

// Config returns the stack's effective configuration.
func (s *Stack) Config() Config { return s.cfg }

// Conns returns the number of live connections (tests and leak checks).
func (s *Stack) Conns() int { return len(s.conns) }

// Input implements netem.Node: the stack's ingress from the network. A
// frame carrying a decoded view is consumed as-is — zero decode, zero
// checksum verification (views are checksum-valid by construction); only
// byte-form frames (fragments, corrupted copies, externally injected
// datagrams) pay the decode.
func (s *Stack) Input(f *netem.Frame) {
	if v := f.View(); v != nil {
		if v.IP.Protocol != packet.ProtoTCP || v.IP.Dst != s.addr {
			return
		}
		// Alias the view in the stack's scratch packet for the duration of
		// the call: segment handling is read-only on the decoded form and
		// never retains it, and the aliases are severed on return so no
		// later decode can scribble on arena-owned view memory.
		s.viewPkt.IP = v.IP
		s.viewPkt.TCP = &v.TCP
		s.viewPkt.Payload = v.Payload
		s.viewPkt.WireLen = v.WireLen()
		s.stats.SegsIn++
		s.handleSegment(&s.viewPkt)
		s.viewPkt.TCP = nil
		s.viewPkt.Payload = nil
		return
	}
	if err := packet.DecodeInto(&s.rxPkt, f.Data); err != nil || s.rxPkt.TCP == nil || s.rxPkt.IP.Dst != s.addr {
		return // not ours or corrupt; a real NIC/IP layer drops silently
	}
	s.stats.SegsIn++
	s.handleSegment(&s.rxPkt)
}

// key builds the connection key from the peer's perspective as received.
func segKey(p *packet.Packet) packet.FlowKey { return p.Flow() }

func (s *Stack) handleSegment(p *packet.Packet) {
	k := segKey(p)
	c := s.findConn(k)
	hdr := p.TCP
	switch {
	case c != nil:
		s.handleConn(k, c, p)
	case hdr.HasFlags(packet.FlagSYN) && !hdr.HasFlags(packet.FlagACK):
		if !s.listening(hdr.DstPort) {
			s.maybeRSTClosed(p)
			return
		}
		s.acceptSYN(k, p)
	case hdr.HasFlags(packet.FlagRST):
		// RST to no connection: ignore.
	default:
		// Segment for a connection we do not have: RST per RFC 793 so the
		// prober's cleanup and stray packets resolve crisply.
		s.maybeRSTClosed(p)
	}
}

// outHdr resets and returns the stack's scratch transmit header, reusing
// its option storage. Valid until the next outHdr call; transmit copies it
// onto the wire, so nothing retains it.
func (s *Stack) outHdr() *packet.TCPHeader {
	opts := s.txHdr.Options[:0]
	s.txHdr = packet.TCPHeader{Options: opts}
	return &s.txHdr
}

func (s *Stack) maybeRSTClosed(p *packet.Packet) {
	if s.cfg.SilentClosedPorts {
		return
	}
	hdr := p.TCP
	if hdr.HasFlags(packet.FlagRST) {
		return
	}
	rst := s.outHdr()
	rst.SrcPort, rst.DstPort = hdr.DstPort, hdr.SrcPort
	rst.Flags = packet.FlagRST | packet.FlagACK
	rst.Ack = hdr.Seq + segLen(p)
	if hdr.HasFlags(packet.FlagACK) {
		rst.Flags = packet.FlagRST
		rst.Seq = hdr.Ack
		rst.Ack = 0
	}
	s.stats.RstsSent++
	s.transmit(p.IP.Src, rst, nil)
}

// segLen returns the sequence-space length of a segment (payload plus SYN
// and FIN flags).
func segLen(p *packet.Packet) uint32 {
	n := uint32(len(p.Payload))
	if p.TCP.HasFlags(packet.FlagSYN) {
		n++
	}
	if p.TCP.HasFlags(packet.FlagFIN) {
		n++
	}
	return n
}

func (s *Stack) acceptSYN(k packet.FlowKey, p *packet.Packet) {
	hdr := p.TCP
	c := s.getConn()
	*c = conn{
		state: stateSynRecv,
		peer:  p.IP.Src, pport: hdr.SrcPort, lport: hdr.DstPort,
		iss:     s.rng.Uint32(),
		irs:     hdr.Seq,
		rcvNxt:  hdr.Seq + 1,
		peerWnd: uint32(hdr.Window),
		peerMSS: 1460,
		ooo:     c.ooo[:0],
		sack:    c.sack[:0],
		sackAlt: c.sackAlt[:0],
	}
	if mss, ok := hdr.MSS(); ok {
		c.peerMSS = mss
	}
	c.sackOK = s.cfg.SACK && hdr.SACKPermitted()
	c.sndNxt = c.iss + 1
	c.sndUna = c.iss
	s.conns = append(s.conns, connEntry{k: k, c: c})
	s.sendSynAck(c)
}

// getConn checks connection state out of the pool.
func (s *Stack) getConn() *conn {
	if n := len(s.connPool); n > 0 {
		c := s.connPool[n-1]
		s.connPool = s.connPool[:n-1]
		return c
	}
	return &conn{}
}

func (s *Stack) sendSynAck(c *conn) {
	h := s.outHdr()
	s.mssData[0], s.mssData[1] = byte(s.cfg.MSS>>8), byte(s.cfg.MSS)
	h.Options = append(h.Options, packet.TCPOption{Kind: packet.OptMSS, Data: s.mssData[:]})
	if s.cfg.SACK {
		h.Options = append(h.Options, packet.TCPOption{Kind: packet.OptSACKPermitted})
	}
	h.SrcPort, h.DstPort = c.lport, c.pport
	h.Seq, h.Ack = c.iss, c.rcvNxt
	h.Flags = packet.FlagSYN | packet.FlagACK
	h.Window = s.cfg.Window
	s.stats.SynAcksSent++
	s.transmit(c.peer, h, nil)
}

func (s *Stack) handleConn(k packet.FlowKey, c *conn, p *packet.Packet) {
	hdr := p.TCP
	if hdr.HasFlags(packet.FlagRST) {
		s.dropConn(k, c)
		return
	}
	switch c.state {
	case stateSynRecv:
		s.handleSynRecv(k, c, p)
	case stateEstablished:
		s.handleEstablished(k, c, p)
	}
}

func (s *Stack) handleSynRecv(k packet.FlowKey, c *conn, p *packet.Packet) {
	hdr := p.TCP
	if hdr.HasFlags(packet.FlagSYN) && !hdr.HasFlags(packet.FlagACK) {
		s.secondSYN(k, c, p)
		return
	}
	if hdr.HasFlags(packet.FlagACK) {
		if hdr.Ack == c.iss+1 {
			c.state = stateEstablished
			c.sndUna = hdr.Ack
			c.peerWnd = uint32(hdr.Window)
			// Fall through to process any data riding the ACK.
			if len(p.Payload) > 0 || hdr.HasFlags(packet.FlagFIN) {
				s.handleEstablished(k, c, p)
			}
			return
		}
		// Unacceptable ACK in SYN_RECV: RST with seq = ack (RFC 793).
		s.stats.RstsSent++
		h := s.outHdr()
		h.SrcPort, h.DstPort = c.lport, c.pport
		h.Seq, h.Flags = hdr.Ack, packet.FlagRST
		s.transmit(c.peer, h, nil)
		s.dropConn(k, c)
	}
}

// secondSYN implements the §III-D behaviour matrix.
func (s *Stack) secondSYN(k packet.FlowKey, c *conn, p *packet.Packet) {
	hdr := p.TCP
	if hdr.Seq == c.irs {
		// Pure retransmission of the original SYN: re-answer SYN/ACK.
		s.sendSynAck(c)
		return
	}
	rst := func() {
		s.stats.RstsSent++
		h := s.outHdr()
		h.SrcPort, h.DstPort = c.lport, c.pport
		h.Seq, h.Ack = 0, hdr.Seq+1
		h.Flags = packet.FlagRST | packet.FlagACK
		s.transmit(c.peer, h, nil)
	}
	challengeAck := func() {
		s.stats.AcksSent++
		h := s.outHdr()
		h.SrcPort, h.DstPort = c.lport, c.pport
		h.Seq, h.Ack = c.sndNxt, c.rcvNxt
		h.Flags, h.Window = packet.FlagACK, s.cfg.Window
		s.transmit(c.peer, h, nil)
	}
	switch s.cfg.SYNPolicy {
	case SYNPolicyRST:
		rst()
	case SYNPolicySpec:
		if packet.SeqInWindow(hdr.Seq, c.rcvNxt, uint32(s.cfg.Window)) {
			rst()
		} else {
			challengeAck()
		}
	case SYNPolicyDualRST:
		rst()
		rst()
	case SYNPolicyIgnore:
		// Drop silently.
	}
}

func (s *Stack) dropConn(k packet.FlowKey, c *conn) {
	c.delackTimer.Stop()
	c.rtxTimer.Stop()
	for i := range s.conns {
		if s.conns[i].k == k {
			last := len(s.conns) - 1
			s.conns[i] = s.conns[last]
			s.conns[last] = connEntry{}
			s.conns = s.conns[:last]
			break
		}
	}
	s.recycleConn(c)
}
