package tcpstack

import (
	"testing"
	"testing/quick"

	"reorder/internal/packet"
	"reorder/internal/sim"
)

// White-box property tests of the receive-side reassembly state: whatever
// segment soup arrives, the out-of-order queue must remain sorted and
// disjoint, rcvNxt must never regress, and queued data must always lie
// strictly above rcvNxt. These invariants are what make the SCT/DCT
// acknowledgment patterns trustworthy.

// oooInvariants checks the connection's queue structure.
func oooInvariants(t *testing.T, c *conn) {
	t.Helper()
	for i, g := range c.ooo {
		if !packet.SeqLT(g.seq, g.end) {
			t.Fatalf("ooo[%d] empty or inverted: [%d,%d)", i, g.seq, g.end)
		}
		if !packet.SeqGT(g.seq, c.rcvNxt) {
			t.Fatalf("ooo[%d] [%d,%d) not above rcvNxt %d", i, g.seq, g.end, c.rcvNxt)
		}
		if i > 0 {
			prev := c.ooo[i-1]
			if !packet.SeqLT(prev.end, g.seq) {
				t.Fatalf("ooo[%d-1,%d] overlap or disorder: [%d,%d) [%d,%d)",
					i, i, prev.seq, prev.end, g.seq, g.end)
			}
		}
	}
	// SACK blocks must cover only data above rcvNxt.
	for _, b := range c.sack {
		if !packet.SeqGT(b.Right, c.rcvNxt) {
			t.Fatalf("stale SACK block [%d,%d) at rcvNxt %d", b.Left, b.Right, c.rcvNxt)
		}
	}
}

func TestQuickReceiveInvariants(t *testing.T) {
	f := func(seed uint64, issLow bool) bool {
		h := newHarness(t, Config{SACK: true, DelAckThreshold: 2})
		iss := uint32(1000)
		if issLow {
			iss = 0xfffffff0 // exercise wraparound
		}
		h.handshake(4000, iss)
		k := packet.FlowKey{
			Src: probeAddr, Dst: serverAddr, SrcPort: 4000, DstPort: 80,
			Proto: packet.ProtoTCP,
		}
		c := h.stack.findConn(k)
		if c == nil {
			t.Fatal("connection missing")
		}
		rng := sim.NewRand(seed, 99)
		base := iss + 1
		prevRcvNxt := c.rcvNxt
		for i := 0; i < 120; i++ {
			off := uint32(rng.IntN(64))
			length := 1 + rng.IntN(12)
			h.inject(&packet.TCPHeader{
				SrcPort: 4000, DstPort: 80,
				Seq: base + off, Flags: packet.FlagACK,
			}, make([]byte, length))
			h.drain()
			oooInvariants(t, c)
			if packet.SeqLT(c.rcvNxt, prevRcvNxt) {
				t.Fatalf("rcvNxt regressed: %d -> %d", prevRcvNxt, c.rcvNxt)
			}
			prevRcvNxt = c.rcvNxt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickEveryAckReflectsRcvNxt(t *testing.T) {
	// Every pure ACK the stack emits must carry exactly rcvNxt at the time
	// of transmission — the core assumption of the SCT classifier.
	f := func(seed uint64) bool {
		h := newHarness(t, Config{DelAckThreshold: 1}) // quickack: every segment acked
		h.handshake(4000, 500)
		k := packet.FlowKey{Src: probeAddr, Dst: serverAddr, SrcPort: 4000, DstPort: 80, Proto: packet.ProtoTCP}
		c := h.stack.findConn(k)
		rng := sim.NewRand(seed, 5)
		for i := 0; i < 60; i++ {
			off := uint32(rng.IntN(20))
			h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 501 + off, Flags: packet.FlagACK},
				make([]byte, 1+rng.IntN(4)))
			for _, p := range h.drain() {
				if p.TCP.Ack != c.rcvNxt {
					t.Fatalf("ack %d != rcvNxt %d", p.TCP.Ack, c.rcvNxt)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
