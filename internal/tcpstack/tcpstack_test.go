package tcpstack

import (
	"net/netip"
	"testing"
	"time"

	"reorder/internal/ipid"
	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/sim"
)

var (
	probeAddr  = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	serverAddr = netip.AddrFrom4([4]byte{10, 0, 0, 2})
)

// harness wires a stack to a capture sink with a zero-delay wire.
type harness struct {
	t     *testing.T
	loop  *sim.Loop
	stack *Stack
	out   []*packet.Packet // packets the stack transmitted, decoded
	ids   netem.FrameIDs
	ipids []uint16
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{t: t, loop: sim.NewLoop()}
	sink := netem.NodeFunc(func(f *netem.Frame) {
		p, err := packet.Decode(f.Materialize())
		if err != nil {
			t.Fatalf("stack emitted undecodable frame: %v", err)
		}
		h.out = append(h.out, p)
		h.ipids = append(h.ipids, p.IP.ID)
	})
	h.stack = New(h.loop, cfg, serverAddr, ipid.NewGlobalCounter(1000), &h.ids, sim.NewRand(42, 42), sink)
	h.stack.Listen(80)
	return h
}

// inject delivers a crafted TCP segment to the stack and runs the loop to
// quiescence (but not past pending timers unless asked).
func (h *harness) inject(tcp *packet.TCPHeader, payload []byte) {
	h.t.Helper()
	raw, err := packet.EncodeTCP(&packet.IPv4Header{Src: probeAddr, Dst: serverAddr, ID: 1}, tcp, payload)
	if err != nil {
		h.t.Fatal(err)
	}
	h.stack.Input(&netem.Frame{ID: h.ids.Next(), Data: raw})
}

// drain returns packets emitted since the last drain.
func (h *harness) drain() []*packet.Packet {
	out := h.out
	h.out = nil
	return out
}

// handshake performs the client side of a 3-way handshake and returns the
// server's ISS. Client ISN is iss; client port cport.
func (h *harness) handshake(cport uint16, iss uint32) uint32 {
	h.t.Helper()
	h.inject(&packet.TCPHeader{SrcPort: cport, DstPort: 80, Seq: iss, Flags: packet.FlagSYN, Window: 65535,
		Options: []packet.TCPOption{packet.MSSOption(1460), packet.SACKPermittedOption()}}, nil)
	out := h.drain()
	if len(out) != 1 || !out[0].TCP.HasFlags(packet.FlagSYN|packet.FlagACK) {
		h.t.Fatalf("no SYN/ACK: %v", summaries(out))
	}
	sa := out[0].TCP
	if sa.Ack != iss+1 {
		h.t.Fatalf("SYN/ACK ack = %d, want %d", sa.Ack, iss+1)
	}
	h.inject(&packet.TCPHeader{SrcPort: cport, DstPort: 80, Seq: iss + 1, Ack: sa.Seq + 1,
		Flags: packet.FlagACK, Window: 65535}, nil)
	if extra := h.drain(); len(extra) != 0 {
		h.t.Fatalf("unexpected output after handshake ACK: %v", summaries(extra))
	}
	return sa.Seq
}

func summaries(ps []*packet.Packet) []string {
	s := make([]string, len(ps))
	for i, p := range ps {
		s[i] = p.Summary()
	}
	return s
}

func TestHandshake(t *testing.T) {
	h := newHarness(t, Config{})
	h.handshake(4000, 100)
	if h.stack.Conns() != 1 {
		t.Fatalf("Conns = %d, want 1", h.stack.Conns())
	}
	if h.stack.Stats().SynAcksSent != 1 {
		t.Fatalf("SynAcksSent = %d", h.stack.Stats().SynAcksSent)
	}
}

func TestSYNToClosedPortGetsRST(t *testing.T) {
	h := newHarness(t, Config{})
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 81, Seq: 100, Flags: packet.FlagSYN}, nil)
	out := h.drain()
	if len(out) != 1 || !out[0].TCP.HasFlags(packet.FlagRST) {
		t.Fatalf("want RST, got %v", summaries(out))
	}
	if out[0].TCP.Ack != 101 {
		t.Fatalf("RST ack = %d, want 101 (seq+1)", out[0].TCP.Ack)
	}
}

func TestSilentClosedPorts(t *testing.T) {
	h := newHarness(t, Config{SilentClosedPorts: true})
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 81, Seq: 100, Flags: packet.FlagSYN}, nil)
	if out := h.drain(); len(out) != 0 {
		t.Fatalf("filtered host answered: %v", summaries(out))
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.DelAckThreshold != 2 || c.DelAckTimeout != 200*time.Millisecond || c.MSS != 1460 ||
		c.Window != 65535 || c.RTO != time.Second || c.ObjectSize != 64<<10 {
		t.Fatalf("Defaults() = %+v", c)
	}
}

// --- Out-of-order and hole behaviour (single connection test substrate) ---

func TestOOOSegmentTriggersImmediateDupAck(t *testing.T) {
	h := newHarness(t, Config{})
	h.handshake(4000, 100)
	// Send one byte at seq 102: one past rcvNxt (101) => a hole at 101.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 102, Ack: 0, Flags: packet.FlagACK}, []byte{'x'})
	out := h.drain()
	if len(out) != 1 {
		t.Fatalf("want 1 immediate ACK, got %v", summaries(out))
	}
	if out[0].TCP.Ack != 101 {
		t.Fatalf("dup ACK ack = %d, want 101 (the hole)", out[0].TCP.Ack)
	}
	if h.stack.Stats().ImmediateAcks != 1 {
		t.Fatalf("ImmediateAcks = %d", h.stack.Stats().ImmediateAcks)
	}
}

func TestSCTForwardInOrderPattern(t *testing.T) {
	// Prepare a hole (byte 102 queued), then deliver straddling samples in
	// order: data(101), data(103). Expect ack(103) [hole fill: 101+102
	// contiguous] then ack for 103 — the "ack mid, ack full" pattern.
	h := newHarness(t, Config{DelAckThreshold: 2, DelAckTimeout: 100 * time.Millisecond})
	h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 102, Flags: packet.FlagACK}, []byte{'b'})
	h.drain() // dup ack
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Flags: packet.FlagACK}, []byte{'a'})
	first := h.drain()
	if len(first) != 1 || first[0].TCP.Ack != 103 {
		t.Fatalf("first sample ACK = %v, want ack=103", summaries(first))
	}
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 103, Flags: packet.FlagACK}, []byte{'c'})
	// In-order data: delayed-ack may hold it; run past the delack timeout.
	h.loop.RunFor(time.Second)
	second := h.drain()
	if len(second) != 1 || second[0].TCP.Ack != 104 {
		t.Fatalf("second sample ACK = %v, want ack=104", summaries(second))
	}
}

func TestSCTForwardReorderedPattern(t *testing.T) {
	// Same preparation, samples delivered out of order: data(103) first
	// => dup ack(101); then data(101) fills everything => ack(104).
	h := newHarness(t, Config{})
	h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 102, Flags: packet.FlagACK}, []byte{'b'})
	h.drain()
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 103, Flags: packet.FlagACK}, []byte{'c'})
	first := h.drain()
	if len(first) != 1 || first[0].TCP.Ack != 101 {
		t.Fatalf("first ACK = %v, want dup ack=101", summaries(first))
	}
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Flags: packet.FlagACK}, []byte{'a'})
	second := h.drain()
	if len(second) != 1 || second[0].TCP.Ack != 104 {
		t.Fatalf("second ACK = %v, want ack=104 (hole filled)", summaries(second))
	}
	// Both were immediate: no delayed-ack latency involved.
	if h.stack.Stats().DelayedAcks != 0 {
		t.Fatal("delayed ack fired for OOO traffic")
	}
}

func TestDuplicateOldDataGetsImmediateAck(t *testing.T) {
	h := newHarness(t, Config{})
	h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Flags: packet.FlagACK}, []byte{'a'})
	h.loop.RunFor(time.Second) // flush delack
	h.drain()
	// Re-send the same byte: entirely old.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Flags: packet.FlagACK}, []byte{'a'})
	out := h.drain()
	if len(out) != 1 || out[0].TCP.Ack != 102 {
		t.Fatalf("old data ACK = %v, want immediate ack=102", summaries(out))
	}
}

func TestDelayedAckThreshold(t *testing.T) {
	h := newHarness(t, Config{DelAckThreshold: 2, DelAckTimeout: 200 * time.Millisecond})
	h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Flags: packet.FlagACK}, []byte{'a'})
	if out := h.drain(); len(out) != 0 {
		t.Fatalf("first in-order segment acked immediately: %v", summaries(out))
	}
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 102, Flags: packet.FlagACK}, []byte{'b'})
	out := h.drain()
	if len(out) != 1 || out[0].TCP.Ack != 103 {
		t.Fatalf("second segment should force ack=103: %v", summaries(out))
	}
}

func TestDelayedAckTimeout(t *testing.T) {
	h := newHarness(t, Config{DelAckThreshold: 4, DelAckTimeout: 150 * time.Millisecond})
	h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Flags: packet.FlagACK}, []byte{'a'})
	h.loop.RunFor(100 * time.Millisecond)
	if len(h.drain()) != 0 {
		t.Fatal("ack before timeout")
	}
	h.loop.RunFor(100 * time.Millisecond)
	out := h.drain()
	if len(out) != 1 || out[0].TCP.Ack != 102 {
		t.Fatalf("timeout ack = %v", summaries(out))
	}
	if h.stack.Stats().DelayedAcks != 1 {
		t.Fatalf("DelayedAcks = %d, want 1", h.stack.Stats().DelayedAcks)
	}
}

func TestAckEveryPacketMode(t *testing.T) {
	h := newHarness(t, Config{DelAckThreshold: 1})
	h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Flags: packet.FlagACK}, []byte{'a'})
	if out := h.drain(); len(out) != 1 {
		t.Fatalf("quickack mode: got %v", summaries(out))
	}
}

// --- SACK generation ---

func TestSACKBlocksOnOOOData(t *testing.T) {
	cfg := Config{SACK: true}
	h := newHarness(t, cfg)
	h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 105, Flags: packet.FlagACK}, []byte("xx"))
	out := h.drain()
	blocks := out[0].TCP.SACKBlocks()
	if len(blocks) != 1 || blocks[0] != (packet.SACKBlock{Left: 105, Right: 107}) {
		t.Fatalf("SACK = %v, want [{105 107}]", blocks)
	}
	// A second, distinct OOO island: newest block first.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 110, Flags: packet.FlagACK}, []byte("yy"))
	out = h.drain()
	blocks = out[0].TCP.SACKBlocks()
	if len(blocks) != 2 || blocks[0].Left != 110 || blocks[1].Left != 105 {
		t.Fatalf("SACK = %v, want newest-first [{110 112} {105 107}]", blocks)
	}
	// Adjacent fill merges islands.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 107, Flags: packet.FlagACK}, []byte("zzz"))
	out = h.drain()
	blocks = out[0].TCP.SACKBlocks()
	if len(blocks) != 1 || blocks[0] != (packet.SACKBlock{Left: 105, Right: 112}) {
		t.Fatalf("SACK after merge = %v, want [{105 112}]", blocks)
	}
	// Filling the hole clears all SACK state.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Flags: packet.FlagACK}, []byte("aaaa"))
	out = h.drain()
	if out[0].TCP.Ack != 112 {
		t.Fatalf("fill ACK = %d, want 112", out[0].TCP.Ack)
	}
	if len(out[0].TCP.SACKBlocks()) != 0 {
		t.Fatalf("stale SACK blocks: %v", out[0].TCP.SACKBlocks())
	}
}

func TestNoSACKWithoutNegotiation(t *testing.T) {
	h := newHarness(t, Config{SACK: true})
	// Client does not offer SACK-permitted.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 100, Flags: packet.FlagSYN, Window: 65535}, nil)
	sa := h.drain()[0].TCP
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Ack: sa.Seq + 1, Flags: packet.FlagACK, Window: 65535}, nil)
	h.drain()
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 105, Flags: packet.FlagACK}, []byte("xx"))
	out := h.drain()
	if len(out[0].TCP.SACKBlocks()) != 0 {
		t.Fatal("SACK blocks without negotiation")
	}
}

// --- Second SYN policy matrix (SYN test substrate) ---

func sendTwoSYNs(t *testing.T, h *harness, seq1, seq2 uint32) []*packet.Packet {
	t.Helper()
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: seq1, Flags: packet.FlagSYN, Window: 65535}, nil)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: seq2, Flags: packet.FlagSYN, Window: 65535}, nil)
	return h.drain()
}

func TestSecondSYNPolicyRST(t *testing.T) {
	h := newHarness(t, Config{SYNPolicy: SYNPolicyRST})
	out := sendTwoSYNs(t, h, 100, 105)
	if len(out) != 2 {
		t.Fatalf("want SYN/ACK + RST, got %v", summaries(out))
	}
	if !out[0].TCP.HasFlags(packet.FlagSYN|packet.FlagACK) || out[0].TCP.Ack != 101 {
		t.Fatalf("first reply %s, want SYN/ACK ack=101", out[0].Summary())
	}
	if !out[1].TCP.HasFlags(packet.FlagRST) {
		t.Fatalf("second reply %s, want RST", out[1].Summary())
	}
}

func TestSecondSYNPolicySpecInWindow(t *testing.T) {
	h := newHarness(t, Config{SYNPolicy: SYNPolicySpec})
	out := sendTwoSYNs(t, h, 100, 105) // 105 inside [101, 101+win)
	if len(out) != 2 || !out[1].TCP.HasFlags(packet.FlagRST) {
		t.Fatalf("in-window second SYN: %v, want RST", summaries(out))
	}
}

func TestSecondSYNPolicySpecOutOfWindow(t *testing.T) {
	h := newHarness(t, Config{SYNPolicy: SYNPolicySpec})
	var below uint32 = 100
	below -= 70000 // wraps: far below the window
	out := sendTwoSYNs(t, h, 100, below)
	if len(out) != 2 {
		t.Fatalf("want 2 replies, got %v", summaries(out))
	}
	second := out[1].TCP
	if second.HasFlags(packet.FlagRST) || !second.HasFlags(packet.FlagACK) {
		t.Fatalf("out-of-window second SYN reply %s, want pure ACK", out[1].Summary())
	}
	if second.Ack != 101 {
		t.Fatalf("challenge ACK ack = %d, want 101 (original state)", second.Ack)
	}
}

func TestSecondSYNPolicyDualRST(t *testing.T) {
	h := newHarness(t, Config{SYNPolicy: SYNPolicyDualRST})
	out := sendTwoSYNs(t, h, 100, 105)
	if len(out) != 3 || !out[1].TCP.HasFlags(packet.FlagRST) || !out[2].TCP.HasFlags(packet.FlagRST) {
		t.Fatalf("dual-RST policy: %v", summaries(out))
	}
}

func TestSecondSYNPolicyIgnore(t *testing.T) {
	h := newHarness(t, Config{SYNPolicy: SYNPolicyIgnore})
	out := sendTwoSYNs(t, h, 100, 105)
	if len(out) != 1 {
		t.Fatalf("ignore policy: %v, want SYN/ACK only", summaries(out))
	}
}

func TestRetransmittedSYNGetsSynAckAgain(t *testing.T) {
	h := newHarness(t, Config{SYNPolicy: SYNPolicyRST})
	out := sendTwoSYNs(t, h, 100, 100) // identical seq: retransmission
	if len(out) != 2 || !out[1].TCP.HasFlags(packet.FlagSYN|packet.FlagACK) {
		t.Fatalf("retransmitted SYN: %v, want second SYN/ACK", summaries(out))
	}
}

func TestSYNAckNumberRevealsArrivalOrder(t *testing.T) {
	// The SYN test's forward-path inference: the first SYN/ACK acks the
	// sequence number of whichever SYN arrived first.
	h := newHarness(t, Config{SYNPolicy: SYNPolicyRST})
	out := sendTwoSYNs(t, h, 200, 205) // "reordered": SYN2 (seq 200) first
	if out[0].TCP.Ack != 201 {
		t.Fatalf("SYN/ACK ack = %d, want 201", out[0].TCP.Ack)
	}
}

func TestRSTDropsConnection(t *testing.T) {
	h := newHarness(t, Config{})
	h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Flags: packet.FlagRST}, nil)
	if h.stack.Conns() != 0 {
		t.Fatal("RST did not tear down connection")
	}
}

func TestFINTeardown(t *testing.T) {
	h := newHarness(t, Config{})
	h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Flags: packet.FlagFIN | packet.FlagACK}, nil)
	out := h.drain()
	if len(out) != 1 || !out[0].TCP.HasFlags(packet.FlagFIN|packet.FlagACK) || out[0].TCP.Ack != 102 {
		t.Fatalf("FIN reply = %v, want FIN/ACK ack=102", summaries(out))
	}
	if h.stack.Conns() != 0 {
		t.Fatal("connection lingered after FIN")
	}
}

// --- Data serving (TCP data transfer test substrate) ---

func TestServeObjectRespectsMSSAndWindow(t *testing.T) {
	cfg := Config{ObjectSize: 1000, MSS: 1460}
	h := newHarness(t, cfg)
	// Client clamps MSS to 256 and window to 512.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 100, Flags: packet.FlagSYN, Window: 512,
		Options: []packet.TCPOption{packet.MSSOption(256)}}, nil)
	sa := h.drain()[0].TCP
	serverISS := sa.Seq
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Ack: serverISS + 1, Flags: packet.FlagACK, Window: 512}, nil)
	h.drain()
	// Request.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Ack: serverISS + 1, Flags: packet.FlagACK | packet.FlagPSH, Window: 512}, []byte("GET /\r\n"))
	out := h.drain()
	var dataBytes int
	for _, p := range out {
		if len(p.Payload) > 256 {
			t.Fatalf("segment %d bytes exceeds clamped MSS 256", len(p.Payload))
		}
		dataBytes += len(p.Payload)
	}
	if dataBytes > 512 {
		t.Fatalf("%d bytes in flight exceeds advertised window 512", dataBytes)
	}
	if dataBytes == 0 {
		t.Fatal("no data served")
	}
	// ACK everything so far; server should continue until 1000 bytes total.
	total := dataBytes
	for i := 0; i < 20 && total < 1000; i++ {
		ackTo := serverISS + 1 + uint32(total)
		h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 108, Ack: ackTo, Flags: packet.FlagACK, Window: 512}, nil)
		for _, p := range h.drain() {
			total += len(p.Payload)
		}
	}
	if total != 1000 {
		t.Fatalf("served %d bytes, want 1000", total)
	}
}

func TestServeRetransmitOnTimeout(t *testing.T) {
	cfg := Config{ObjectSize: 100, RTO: 300 * time.Millisecond}
	h := newHarness(t, cfg)
	serverISS := h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Ack: serverISS + 1, Flags: packet.FlagACK, Window: 65535}, []byte("GET\n"))
	first := h.drain()
	if len(first) == 0 {
		t.Fatal("no data served")
	}
	// Never ACK: RTO should fire and resend from sndUna. The drain also
	// contains the delayed ACK of the request bytes; only data segments
	// are retransmissions.
	h.loop.RunFor(400 * time.Millisecond)
	rtx := dataSegments(h.drain())
	if len(rtx) == 0 {
		t.Fatal("no retransmission after RTO")
	}
	if rtx[0].TCP.Seq != serverISS+1 {
		t.Fatalf("retransmit seq = %d, want %d", rtx[0].TCP.Seq, serverISS+1)
	}
	if h.stack.Stats().Retransmits == 0 {
		t.Fatal("Retransmits counter not incremented")
	}
}

func TestServeStopsWhenFullyAcked(t *testing.T) {
	cfg := Config{ObjectSize: 64, RTO: 100 * time.Millisecond}
	h := newHarness(t, cfg)
	serverISS := h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Ack: serverISS + 1, Flags: packet.FlagACK, Window: 65535}, []byte("GET\n"))
	out := h.drain()
	n := 0
	for _, p := range out {
		n += len(p.Payload)
	}
	if n != 64 {
		t.Fatalf("served %d, want 64", n)
	}
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 105, Ack: serverISS + 1 + 64, Flags: packet.FlagACK, Window: 65535}, nil)
	h.drain()
	h.loop.RunFor(time.Second)
	if rtx := dataSegments(h.drain()); len(rtx) != 0 {
		t.Fatalf("server kept transmitting after full ACK: %v", summaries(rtx))
	}
}

// dataSegments filters out pure ACKs, keeping only payload-bearing packets.
func dataSegments(ps []*packet.Packet) []*packet.Packet {
	var out []*packet.Packet
	for _, p := range ps {
		if len(p.Payload) > 0 {
			out = append(out, p)
		}
	}
	return out
}

func TestServedPayloadDeterministic(t *testing.T) {
	cfg := Config{ObjectSize: 32}
	h := newHarness(t, cfg)
	serverISS := h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 101, Ack: serverISS + 1, Flags: packet.FlagACK, Window: 65535}, []byte("GET\n"))
	out := h.drain()
	for _, p := range out {
		for i, b := range p.Payload {
			if want := byte((p.TCP.Seq + uint32(i)) % 251); b != want {
				t.Fatalf("payload[%d] = %d, want %d", i, b, want)
			}
		}
	}
}

// --- IPID stamping ---

func TestIPIDsStampedSequentially(t *testing.T) {
	h := newHarness(t, Config{})
	h.handshake(4000, 100)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 105, Flags: packet.FlagACK}, []byte{'x'})
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 108, Flags: packet.FlagACK}, []byte{'y'})
	if len(h.ipids) < 3 {
		t.Fatalf("too few packets: %d", len(h.ipids))
	}
	for i := 1; i < len(h.ipids); i++ {
		if h.ipids[i] != h.ipids[i-1]+1 {
			t.Fatalf("IPIDs not sequential: %v", h.ipids)
		}
	}
}

func TestIgnoresPacketsForOtherHosts(t *testing.T) {
	h := newHarness(t, Config{})
	other := netip.AddrFrom4([4]byte{10, 0, 0, 50})
	raw, err := packet.EncodeTCP(&packet.IPv4Header{Src: probeAddr, Dst: other},
		&packet.TCPHeader{SrcPort: 1, DstPort: 80, Flags: packet.FlagSYN}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.stack.Input(&netem.Frame{ID: 1, Data: raw})
	if len(h.drain()) != 0 || h.stack.Stats().SegsIn != 0 {
		t.Fatal("stack processed a packet not addressed to it")
	}
}

func TestIgnoresCorruptFrames(t *testing.T) {
	h := newHarness(t, Config{})
	h.stack.Input(&netem.Frame{ID: 1, Data: []byte{0x45, 0x00, 0x01}})
	if len(h.drain()) != 0 {
		t.Fatal("stack answered garbage")
	}
}

func TestSYNPolicyString(t *testing.T) {
	names := map[SYNPolicy]string{
		SYNPolicyRST: "rst-always", SYNPolicySpec: "per-spec",
		SYNPolicyDualRST: "dual-rst", SYNPolicyIgnore: "ignore",
		SYNPolicy(99): "unknown",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("String(%d) = %q, want %q", p, p.String(), want)
		}
	}
}

// --- Sequence-number wraparound ---

func TestDataAcrossSequenceWrap(t *testing.T) {
	// Client ISN two bytes below 2^32: the SCT-style hole and samples
	// straddle the wrap. The stack's modular arithmetic must advance
	// rcvNxt through zero.
	h := newHarness(t, Config{})
	iss := uint32(0xfffffffd)
	h.handshake(4000, iss) // rcvNxt = 0xfffffffe
	// Hole one past expected: seq 0xffffffff.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 0xffffffff, Flags: packet.FlagACK}, []byte{'b'})
	out := h.drain()
	if len(out) != 1 || out[0].TCP.Ack != 0xfffffffe {
		t.Fatalf("dup ack = %v", summaries(out))
	}
	// Fill: 3 bytes from 0xfffffffe cover fffffffe, ffffffff, 00000000.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 0xfffffffe, Flags: packet.FlagACK}, []byte("xyz"))
	out = h.drain()
	if len(out) != 1 || out[0].TCP.Ack != 1 {
		t.Fatalf("wrap fill ack = %v, want ack=1", summaries(out))
	}
}

func TestOOOQueueAcrossWrap(t *testing.T) {
	h := newHarness(t, Config{SACK: true})
	iss := uint32(0xfffffff0)
	h.handshake(4000, iss) // rcvNxt = 0xfffffff1
	// Two OOO islands, one on each side of the wrap.
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 0xfffffff8, Flags: packet.FlagACK}, []byte("aa"))
	h.drain()
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 4, Flags: packet.FlagACK}, []byte("bb"))
	out := h.drain()
	blocks := out[0].TCP.SACKBlocks()
	if len(blocks) != 2 {
		t.Fatalf("SACK across wrap = %v", blocks)
	}
	// Fill everything from rcvNxt to past the second island.
	fill := make([]byte, 21) // 0xfffffff1 + 21 = 6
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 0xfffffff1, Flags: packet.FlagACK}, fill)
	out = h.drain()
	if len(out) != 1 || out[0].TCP.Ack != 6 {
		t.Fatalf("fill across wrap = %v, want ack=6", summaries(out))
	}
	if len(out[0].TCP.SACKBlocks()) != 0 {
		t.Fatal("stale SACK blocks after wrap fill")
	}
}

func TestDisablePMTUDClearsDF(t *testing.T) {
	cfg := Config{DisablePMTUD: true}
	h := newHarness(t, cfg)
	h.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 100, Flags: packet.FlagSYN, Window: 1000}, nil)
	out := h.drain()
	if out[0].IP.Flags&packet.FlagDF != 0 {
		t.Fatal("DF set despite DisablePMTUD")
	}
	h2 := newHarness(t, Config{})
	h2.inject(&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 100, Flags: packet.FlagSYN, Window: 1000}, nil)
	out2 := h2.drain()
	if out2[0].IP.Flags&packet.FlagDF == 0 {
		t.Fatal("DF clear by default")
	}
}
