// Package ipid implements the IP identification-field generation policies
// observed in deployed stacks circa the paper, plus the monotonicity
// statistic the dual connection test uses to decide whether a host's IPID
// stream can disambiguate packet order.
//
// The paper leans on the traditional implementation — a single global
// counter incremented per transmitted packet — and documents the deviations
// that break the technique: Linux 2.4's constant zero on DF packets,
// OpenBSD's pseudorandom IDs, FreeBSD's optional randomization, and
// Solaris's per-destination counters (which are harmless, per the paper's
// footnote, because the technique never compares IPIDs across destinations).
package ipid

import (
	"net/netip"

	"reorder/internal/sim"
)

// Generator produces the IPID for each packet a host transmits.
type Generator interface {
	// Next returns the IPID for a packet destined to dst.
	Next(dst netip.Addr) uint16
	// Name identifies the policy in reports and host profiles.
	Name() string
}

// GlobalCounter is the traditional policy: one counter shared by all
// destinations, incremented per packet. This is the behaviour the dual
// connection test depends on.
type GlobalCounter struct {
	next uint16
}

// NewGlobalCounter returns a counter starting at start.
func NewGlobalCounter(start uint16) *GlobalCounter { return &GlobalCounter{next: start} }

// Next implements Generator.
func (g *GlobalCounter) Next(netip.Addr) uint16 {
	id := g.next
	g.next++
	return id
}

// Name implements Generator.
func (g *GlobalCounter) Name() string { return "global-counter" }

// PerDestination keeps an independent counter per destination address, as
// modern Solaris does. Monotonic from any single observer's point of view,
// so the dual connection test still works.
type PerDestination struct {
	counters map[netip.Addr]uint16
	seed     uint16
}

// NewPerDestination returns a per-destination counter policy. Each new
// destination's counter starts at seed.
func NewPerDestination(seed uint16) *PerDestination {
	return &PerDestination{counters: make(map[netip.Addr]uint16), seed: seed}
}

// Next implements Generator.
func (p *PerDestination) Next(dst netip.Addr) uint16 {
	id, ok := p.counters[dst]
	if !ok {
		id = p.seed
	}
	p.counters[dst] = id + 1
	return id
}

// Name implements Generator.
func (p *PerDestination) Name() string { return "per-destination" }

// Random draws each IPID uniformly, as OpenBSD does for security. Defeats
// the dual connection test; the prevalidation pass must reject such hosts.
type Random struct {
	rng *sim.Rand
}

// NewRandom returns a pseudorandom IPID policy using the given stream.
func NewRandom(rng *sim.Rand) *Random { return &Random{rng: rng} }

// Next implements Generator.
func (r *Random) Next(netip.Addr) uint16 { return r.rng.Uint16() }

// Name implements Generator.
func (r *Random) Name() string { return "random" }

// Zero emits a constant zero, as Linux 2.4 does for DF-marked packets under
// path MTU discovery. The prevalidation pass rejects such hosts (the paper
// found 9 of its 50 survey hosts in this class).
type Zero struct{}

// Next implements Generator.
func (Zero) Next(netip.Addr) uint16 { return 0 }

// Name implements Generator.
func (Zero) Name() string { return "zero" }

// SmallRandomIncrement advances a global counter by a small random step per
// packet (a hardening scheme mentioned in the paper). Still monotonic over
// short windows, but the per-packet distance no longer encodes exact send
// order when other traffic intervenes.
type SmallRandomIncrement struct {
	next uint16
	max  int
	rng  *sim.Rand
}

// NewSmallRandomIncrement returns a policy stepping by 1..max per packet.
func NewSmallRandomIncrement(start uint16, max int, rng *sim.Rand) *SmallRandomIncrement {
	if max < 1 {
		max = 1
	}
	return &SmallRandomIncrement{next: start, max: max, rng: rng}
}

// Next implements Generator.
func (s *SmallRandomIncrement) Next(netip.Addr) uint16 {
	id := s.next
	s.next += uint16(1 + s.rng.IntN(s.max))
	return id
}

// Name implements Generator.
func (s *SmallRandomIncrement) Name() string { return "small-random-increment" }
