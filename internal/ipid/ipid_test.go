package ipid

import (
	"net/netip"
	"testing"
	"testing/quick"

	"reorder/internal/sim"
)

var (
	dstA = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	dstB = netip.AddrFrom4([4]byte{10, 0, 0, 2})
)

func TestGlobalCounterIncrements(t *testing.T) {
	g := NewGlobalCounter(100)
	for i := 0; i < 5; i++ {
		want := uint16(100 + i)
		dst := dstA
		if i%2 == 1 {
			dst = dstB // destination must not matter
		}
		if got := g.Next(dst); got != want {
			t.Fatalf("Next #%d = %d, want %d", i, got, want)
		}
	}
}

func TestGlobalCounterWraps(t *testing.T) {
	g := NewGlobalCounter(0xffff)
	if g.Next(dstA) != 0xffff || g.Next(dstA) != 0 {
		t.Fatal("counter did not wrap")
	}
}

func TestPerDestinationIndependentCounters(t *testing.T) {
	p := NewPerDestination(10)
	if p.Next(dstA) != 10 || p.Next(dstA) != 11 {
		t.Fatal("dstA counter wrong")
	}
	if p.Next(dstB) != 10 {
		t.Fatal("dstB should start fresh")
	}
	if p.Next(dstA) != 12 {
		t.Fatal("dstA counter affected by dstB traffic")
	}
}

func TestZeroAlwaysZero(t *testing.T) {
	var z Zero
	for i := 0; i < 10; i++ {
		if z.Next(dstA) != 0 {
			t.Fatal("Zero emitted nonzero IPID")
		}
	}
}

func TestRandomVaries(t *testing.T) {
	r := NewRandom(sim.NewRand(1, 1))
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Next(dstA)] = true
	}
	if len(seen) < 50 {
		t.Fatalf("random policy produced only %d distinct IDs in 100 draws", len(seen))
	}
}

func TestSmallRandomIncrementMonotonicShortRun(t *testing.T) {
	s := NewSmallRandomIncrement(0, 8, sim.NewRand(2, 2))
	prev := s.Next(dstA)
	for i := 0; i < 100; i++ {
		cur := s.Next(dstA)
		d := int16(cur - prev)
		if d < 1 || d > 8 {
			t.Fatalf("step = %d, want 1..8", d)
		}
		prev = cur
	}
}

func TestNames(t *testing.T) {
	gens := []Generator{
		NewGlobalCounter(0), NewPerDestination(0), NewRandom(sim.NewRand(1, 2)),
		Zero{}, NewSmallRandomIncrement(0, 4, sim.NewRand(3, 4)),
	}
	seen := map[string]bool{}
	for _, g := range gens {
		n := g.Name()
		if n == "" || seen[n] {
			t.Fatalf("generator name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}

// elicit simulates a prevalidation run: the prober alternates connections,
// and the host stamps each reply from gen. Extra cross-traffic packets can
// be interleaved to model a busy host.
func elicit(gen Generator, n int, crossTraffic int, rng *sim.Rand) []Observation {
	obs := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		for j := 0; j < crossTraffic; j++ {
			gen.Next(dstB) // host talking to someone else
		}
		obs = append(obs, Observation{Conn: i % 2, ID: gen.Next(dstA)})
	}
	return obs
}

func TestValidateAcceptsGlobalCounter(t *testing.T) {
	r := Validate(elicit(NewGlobalCounter(5000), 16, 0, nil))
	if !r.Usable() {
		t.Fatalf("global counter rejected: %+v", r)
	}
	if r.Score != 1.0 {
		t.Fatalf("Score = %v, want 1.0", r.Score)
	}
}

func TestValidateAcceptsGlobalCounterAcrossWrap(t *testing.T) {
	r := Validate(elicit(NewGlobalCounter(0xfff8), 16, 0, nil))
	if !r.Usable() {
		t.Fatalf("wrapping counter rejected: %+v", r)
	}
}

func TestValidateAcceptsBusyGlobalCounter(t *testing.T) {
	// Moderate cross traffic inflates steps but keeps monotonicity.
	r := Validate(elicit(NewGlobalCounter(0), 16, 5, nil))
	if !r.Usable() {
		t.Fatalf("busy global counter rejected: %+v", r)
	}
}

func TestValidateAcceptsPerDestination(t *testing.T) {
	// Per-destination counters look exactly like a quiet global counter from
	// one vantage; the paper's footnote says they're fine.
	gen := NewPerDestination(100)
	obs := make([]Observation, 0, 16)
	for i := 0; i < 16; i++ {
		gen.Next(dstB)
		obs = append(obs, Observation{Conn: i % 2, ID: gen.Next(dstA)})
	}
	if r := Validate(obs); !r.Usable() {
		t.Fatalf("per-destination rejected: %+v", r)
	}
}

func TestValidateRejectsRandom(t *testing.T) {
	r := Validate(elicit(NewRandom(sim.NewRand(7, 7)), 24, 0, nil))
	if r.Usable() {
		t.Fatalf("random IPIDs accepted: %+v", r)
	}
}

func TestValidateRejectsConstantZero(t *testing.T) {
	r := Validate(elicit(Zero{}, 16, 0, nil))
	if !r.Constant {
		t.Fatal("constant stream not flagged")
	}
	if r.Usable() {
		t.Fatalf("Linux-2.4-style zero IPIDs accepted: %+v", r)
	}
}

func TestValidateRejectsLoadBalancedCounters(t *testing.T) {
	// Two backends, each with its own counter far apart: within-connection
	// steps stay small while cross-connection steps jump wildly — exactly
	// the Fig 3 failure. Conn 0 lands on backend A, conn 1 on backend B.
	a := NewGlobalCounter(1000)
	b := NewGlobalCounter(40000)
	var obs []Observation
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			obs = append(obs, Observation{Conn: 0, ID: a.Next(dstA)})
		} else {
			obs = append(obs, Observation{Conn: 1, ID: b.Next(dstA)})
		}
	}
	if r := Validate(obs); r.Usable() {
		t.Fatalf("split counters behind load balancer accepted: %+v", r)
	}
}

func TestValidateTooFewSamples(t *testing.T) {
	r := Validate(elicit(NewGlobalCounter(0), 2, 0, nil))
	if r.Usable() {
		t.Fatal("2 samples should not be enough to trust a host")
	}
	if Validate(nil).Usable() {
		t.Fatal("empty observation list usable")
	}
}

// Property: a global counter with any starting point and mild cross traffic
// always validates.
func TestQuickGlobalCounterAlwaysUsable(t *testing.T) {
	f := func(start uint16, busy uint8) bool {
		r := Validate(elicit(NewGlobalCounter(start), 12, int(busy%8), nil))
		return r.Usable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: random IPIDs are essentially never usable.
func TestQuickRandomAlmostNeverUsable(t *testing.T) {
	accepted := 0
	for i := uint64(0); i < 200; i++ {
		r := Validate(elicit(NewRandom(sim.NewRand(i, i^0xabcdef)), 16, 0, nil))
		if r.Usable() {
			accepted++
		}
	}
	if accepted > 2 {
		t.Fatalf("random IPID streams accepted %d/200 times", accepted)
	}
}
