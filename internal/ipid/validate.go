package ipid

import "reorder/internal/packet"

// Observation is one IPID observed by the prober, tagged with which of the
// two validation connections elicited it and its position in elicitation
// order. During prevalidation the prober elicits replies strictly one at a
// time, so elicitation order equals the order the remote host sent them —
// unless the two connections terminate on different hosts (load balancer) or
// the IPID policy is not a shared counter.
type Observation struct {
	Conn int    // 0 or 1: which validation connection
	ID   uint16 // observed IPID
}

// Report summarizes the monotonicity analysis of a prevalidation run,
// following §III-C of the paper: the IPID differences between adjacent
// packets across connections must be positive and must be dominated by the
// differences within a connection (each within-connection step spans two
// elicited packets, so it must be at least as large as the cross-connection
// steps it contains).
type Report struct {
	Samples        int     // observations analyzed
	CrossPairs     int     // adjacent pairs on different connections
	CrossMonotonic int     // of those, IPID strictly increasing
	WithinPairs    int     // adjacent same-connection observations compared
	WithinDominant int     // within-connection deltas >= enclosed cross deltas
	MaxStep        int     // largest positive step seen (wrap-adjusted)
	Constant       bool    // every observed IPID identical (e.g. Linux 2.4 zero)
	Score          float64 // fraction of checks passed, in [0,1]
}

// Usable reports whether the host passed prevalidation and the dual
// connection test may trust its IPIDs. The threshold admits occasional
// reordering-induced inversions during validation itself (validation runs
// over the same network the measurement will) while rejecting random,
// constant, and split-counter behaviour, whose scores collapse toward 0.5
// or 0.
func (r *Report) Usable() bool {
	return !r.Constant && r.Samples >= 4 && r.Score >= 0.9
}

// Validate analyzes an elicited IPID sequence. The observations must be in
// elicitation order. It implements the paper's check: adjacent cross-
// connection differences must be small positive steps, and within-connection
// differences must dominate (a connection's counter advances by everything
// the host sent in between, so it can never advance by less than a cross
// step inside it).
func Validate(obs []Observation) *Report {
	r := &Report{Samples: len(obs)}
	if len(obs) < 2 {
		return r
	}
	r.Constant = true
	for _, o := range obs[1:] {
		if o.ID != obs[0].ID {
			r.Constant = false
			break
		}
	}

	checks, passed := 0, 0
	// Cross-connection adjacency: elicited back to back, so the later
	// observation must carry a strictly larger IPID, and the step should be
	// small (the host sent only our replies in between on an idle path).
	const maxPlausibleStep = 1024
	for i := 1; i < len(obs); i++ {
		a, b := obs[i-1], obs[i]
		d := int(packet.IPIDDiff(b.ID, a.ID))
		if d > r.MaxStep {
			r.MaxStep = d
		}
		if a.Conn == b.Conn {
			continue
		}
		r.CrossPairs++
		checks++
		if d > 0 && d <= maxPlausibleStep {
			r.CrossMonotonic++
			passed++
		}
	}
	// Within-connection domination: for consecutive observations on the same
	// connection, the IPID delta must be at least the sum of the positive
	// cross steps strictly inside that span — a shared counter cannot move
	// less than the packets it stamped.
	last := map[int]int{} // conn -> index of previous observation on it
	for i, o := range obs {
		if j, ok := last[o.Conn]; ok {
			within := int(packet.IPIDDiff(o.ID, obs[j].ID))
			r.WithinPairs++
			checks++
			// A shared counter stamped every packet the host sent in the
			// span, one per elicitation, so it must have advanced by at
			// least the span length.
			if within >= i-j {
				r.WithinDominant++
				passed++
			}
		}
		last[o.Conn] = i
	}
	if checks > 0 {
		r.Score = float64(passed) / float64(checks)
	}
	return r
}
