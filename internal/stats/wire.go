package stats

import (
	"fmt"
	"math"
)

// HistogramCounts is the exact wire form of a Histogram: the integer bin
// counts (sparse, as index/count pairs) plus the running min/max carried
// as IEEE-754 bit patterns so a JSON round trip cannot perturb them. It
// deliberately omits the edges — both ends of a transfer share the edge
// catalog by construction (campaign shards, obs recorders), and shipping
// ~300 float64 edges per span report would dwarf the payload. MergeCounts
// validates the bin count against the receiving histogram instead.
//
// Folding a HistogramCounts into a Histogram is integer addition plus an
// exact min/max fold, so merging snapshots in any order or grouping yields
// bit-identical summaries — the same invariant Histogram.Merge has, made
// serializable.
type HistogramCounts struct {
	N       uint64   `json:"n"`
	MinBits uint64   `json:"min,omitempty"` // math.Float64bits of the exact min; valid iff N > 0
	MaxBits uint64   `json:"max,omitempty"` // math.Float64bits of the exact max; valid iff N > 0
	Bins    []uint64 `json:"bins,omitempty"`
}

// CountsSnapshot captures the histogram's current contents as a sparse,
// serializable snapshot. Bins holds (index, count) pairs for the nonempty
// bins only.
func (h *Histogram) CountsSnapshot() HistogramCounts {
	c := HistogramCounts{N: h.n}
	if h.n == 0 {
		return c
	}
	c.MinBits = math.Float64bits(h.min)
	c.MaxBits = math.Float64bits(h.max)
	for i, n := range h.counts {
		if n != 0 {
			c.Bins = append(c.Bins, uint64(i), n)
		}
	}
	return c
}

// MergeCounts folds a snapshot into h. Unlike Merge it cannot compare
// edges (the snapshot doesn't carry them), so it validates what it can —
// bin indices in range, pair structure, count conservation — and returns
// an error rather than panicking: snapshots arrive over the wire from
// other processes, and a malformed one must fail the connection, not the
// coordinator.
func (h *Histogram) MergeCounts(c HistogramCounts) error {
	if c.N == 0 {
		if len(c.Bins) != 0 {
			return fmt.Errorf("stats: histogram snapshot with n=0 but %d bin entries", len(c.Bins))
		}
		return nil
	}
	if len(c.Bins) == 0 || len(c.Bins)%2 != 0 {
		return fmt.Errorf("stats: histogram snapshot with malformed bin pairs (len %d)", len(c.Bins))
	}
	var total uint64
	for i := 0; i < len(c.Bins); i += 2 {
		idx, n := c.Bins[i], c.Bins[i+1]
		if idx >= uint64(len(h.counts)) {
			return fmt.Errorf("stats: histogram snapshot bin %d out of range (have %d bins)", idx, len(h.counts))
		}
		if n == 0 {
			return fmt.Errorf("stats: histogram snapshot carries empty bin %d", idx)
		}
		total += n
	}
	if total != c.N {
		return fmt.Errorf("stats: histogram snapshot bin counts sum to %d, header says %d", total, c.N)
	}
	min, max := math.Float64frombits(c.MinBits), math.Float64frombits(c.MaxBits)
	if math.IsNaN(min) || math.IsNaN(max) || min > max {
		return fmt.Errorf("stats: histogram snapshot with invalid min/max %v/%v", min, max)
	}
	if h.n == 0 {
		h.min, h.max = min, max
	} else {
		if min < h.min {
			h.min = min
		}
		if max > h.max {
			h.max = max
		}
	}
	h.n += c.N
	for i := 0; i < len(c.Bins); i += 2 {
		h.counts[c.Bins[i]] += c.Bins[i+1]
	}
	return nil
}

// Reset empties the histogram in place, keeping the edge layout. It is the
// shard-reuse half of snapshot/merge streaming: a worker snapshots its
// per-span shard, ships it, and resets for the next span without
// reallocating bins.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n = 0
	h.min, h.max = 0, 0
}
