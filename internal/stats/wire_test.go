package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// Snapshot → JSON → MergeCounts must reproduce the source histogram
// exactly, whatever the sample distribution or shard partitioning.
func TestHistogramCountsRoundTrip(t *testing.T) {
	edges := LogEdges(1, 1e9, 288)
	rng := rand.New(rand.NewSource(7))

	whole := NewHistogram(edges)
	shards := []*Histogram{NewHistogram(edges), NewHistogram(edges), NewHistogram(edges)}
	for i := 0; i < 10000; i++ {
		x := math.Exp(rng.Float64() * 21) // spans below/inside/above the edge range
		if rng.Intn(50) == 0 {
			x = -x
		}
		whole.Add(x)
		shards[rng.Intn(len(shards))].Add(x)
	}

	merged := NewHistogram(edges)
	for _, s := range shards {
		snap := s.CountsSnapshot()
		b, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var back HistogramCounts
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if err := merged.MergeCounts(back); err != nil {
			t.Fatal(err)
		}
	}

	if merged.Count() != whole.Count() {
		t.Fatalf("count %d != %d", merged.Count(), whole.Count())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("min/max %v/%v != %v/%v", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if a, b := merged.Quantile(p), whole.Quantile(p); a != b {
			t.Fatalf("q%.2f: %v != %v", p, a, b)
		}
	}
	if merged.Mean() != whole.Mean() {
		t.Fatalf("mean %v != %v", merged.Mean(), whole.Mean())
	}
}

func TestHistogramCountsEmpty(t *testing.T) {
	h := NewHistogram(UniformEdges(0, 1, 8))
	snap := h.CountsSnapshot()
	if snap.N != 0 || snap.Bins != nil {
		t.Fatalf("empty snapshot not empty: %+v", snap)
	}
	dst := NewHistogram(UniformEdges(0, 1, 8))
	if err := dst.MergeCounts(snap); err != nil {
		t.Fatal(err)
	}
	if dst.Count() != 0 {
		t.Fatalf("merged empty snapshot produced count %d", dst.Count())
	}
}

func TestHistogramMergeCountsRejectsMalformed(t *testing.T) {
	edges := UniformEdges(0, 1, 4)
	cases := []HistogramCounts{
		{N: 0, Bins: []uint64{0, 1}}, // n=0 with bins
		{N: 1},                       // n>0 without bins
		{N: 1, Bins: []uint64{0}},    // odd pair list
		{N: 1, Bins: []uint64{9, 1}}, // bin index out of range
		{N: 2, Bins: []uint64{0, 1}}, // count mismatch
		{N: 1, Bins: []uint64{0, 0}}, // zero-count pair
		{N: 1, MinBits: math.Float64bits(2), MaxBits: math.Float64bits(1), Bins: []uint64{0, 1}}, // min > max
		{N: 1, MinBits: math.Float64bits(math.NaN()), MaxBits: 0, Bins: []uint64{0, 1}},          // NaN min
		{N: 1, MinBits: 0, MaxBits: math.Float64bits(math.Inf(0) * 0), Bins: []uint64{0, 1}},     // NaN max
	}
	for i, c := range cases {
		h := NewHistogram(edges)
		if err := h.MergeCounts(c); err == nil {
			t.Errorf("case %d: malformed snapshot %+v accepted", i, c)
		}
		if h.Count() != 0 {
			t.Errorf("case %d: rejected snapshot mutated histogram (n=%d)", i, h.Count())
		}
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(UniformEdges(0, 1, 8))
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 100)
	}
	h.Reset()
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("reset left state: n=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	h.Add(0.5)
	if h.Count() != 1 || h.Min() != 0.5 || h.Max() != 0.5 {
		t.Fatalf("post-reset add wrong: n=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	snap := h.CountsSnapshot()
	if snap.N != 1 || len(snap.Bins) != 2 {
		t.Fatalf("post-reset snapshot wrong: %+v", snap)
	}
}
