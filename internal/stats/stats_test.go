package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"math/rand/v2"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N=%d Mean=%v", s.N, s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min=%v Max=%v", s.Min, s.Max)
	}
	// Sample variance with n-1 = 32/7.
	if math.Abs(s.Variance-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v", s.Variance)
	}
}

func TestSummarizeEdges(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary not zero")
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Variance != 0 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("singleton summary: %+v", s)
	}
}

func TestCDFFractionAtMost(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.FractionAtMost(tc.x); got != tc.want {
			t.Errorf("FractionAtMost(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if q := c.Quantile(0.5); q != 20 {
		t.Errorf("median = %v, want 20", q)
	}
	if q := c.Quantile(0); q != 10 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 40 {
		t.Errorf("Quantile(1) = %v", q)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Error("empty CDF quantile should be NaN")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 1, 2})
	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0] != (Point{1, 2.0 / 3}) || pts[1] != (Point{2, 1}) {
		t.Fatalf("points = %v", pts)
	}
}

// Property: CDF is monotone nondecreasing and ends at 1.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		pts := c.Points()
		prev := 0.0
		for _, p := range pts {
			if p.Y < prev {
				return false
			}
			prev = p.Y
		}
		return math.Abs(pts[len(pts)-1].Y-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and FractionAtMost are approximate inverses.
func TestQuickQuantileConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	c := NewCDF(xs)
	sort.Float64s(xs)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		q := c.Quantile(p)
		if frac := c.FractionAtMost(q); frac < p-1e-9 {
			t.Errorf("FractionAtMost(Quantile(%v)) = %v < %v", p, frac, p)
		}
	}
}

func TestBinomialCI(t *testing.T) {
	lo, hi := BinomialCI(50, 100, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("CI [%v,%v] should straddle 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("CI [%v,%v] too wide for n=100", lo, hi)
	}
	lo, hi = BinomialCI(0, 100, 1.96)
	if lo != 0 || hi < 0.01 || hi > 0.1 {
		t.Fatalf("zero-successes CI [%v,%v]", lo, hi)
	}
	lo, hi = BinomialCI(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("no-trials CI [%v,%v], want [0,1]", lo, hi)
	}
}

func TestTCriticalKnownValues(t *testing.T) {
	cases := []struct {
		df   int
		conf float64
		want float64
	}{
		{1, 0.95, 12.706},
		{10, 0.95, 2.228},
		{30, 0.95, 2.042},
		{5, 0.999, 6.869},
		{30, 0.999, 3.646},
		{14, 0.99, 2.977},
	}
	for _, c := range cases {
		if got := TCritical(c.df, c.conf); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TCritical(%d, %v) = %v, want %v", c.df, c.conf, got, c.want)
		}
	}
}

func TestTCriticalLargeDF(t *testing.T) {
	// Large df approaches the normal quantile from above.
	got := TCritical(1000, 0.999)
	if got < 3.291 || got > 3.35 {
		t.Fatalf("TCritical(1000, 0.999) = %v, want ~3.30", got)
	}
	if TCritical(100, 0.95) < TCritical(1000, 0.95) {
		t.Fatal("critical value should decrease with df")
	}
}

func TestTCriticalUnsupportedLevel(t *testing.T) {
	// 90% two-sided at large df: z = 1.645.
	got := TCritical(10000, 0.90)
	if math.Abs(got-1.645) > 0.01 {
		t.Fatalf("TCritical(10000, 0.90) = %v, want ≈1.645", got)
	}
	if TCritical(0, 0.95) != TCritical(1, 0.95) {
		t.Fatal("df<1 should clamp to 1")
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.960}, {0.995, 2.576}, {0.9995, 3.291}, {0.025, -1.960},
	}
	for _, c := range cases {
		if got := normQuantile(c.p); math.Abs(got-c.want) > 0.002 {
			t.Errorf("normQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("edge quantiles should be infinite")
	}
}

func TestPairDifferenceAgreement(t *testing.T) {
	// Two noisy measurements of the same quantity: null supported.
	rng := rand.New(rand.NewPCG(3, 4))
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		base := 0.05
		x[i] = base + rng.NormFloat64()*0.01
		y[i] = base + rng.NormFloat64()*0.01
	}
	r := PairDifference(x, y, 0.999)
	if !r.NullSupported {
		t.Fatalf("agreeing tests rejected: %v", r)
	}
	if !strings.Contains(r.String(), "agree") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestPairDifferenceDisagreement(t *testing.T) {
	// y systematically underestimates x by 4 sigma: null rejected.
	rng := rand.New(rand.NewPCG(5, 6))
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = 0.10 + rng.NormFloat64()*0.005
		y[i] = 0.05 + rng.NormFloat64()*0.005
	}
	r := PairDifference(x, y, 0.999)
	if r.NullSupported {
		t.Fatalf("clearly different tests not rejected: %v", r)
	}
	if r.MeanDiff < 0.03 {
		t.Fatalf("MeanDiff = %v", r.MeanDiff)
	}
	if !strings.Contains(r.String(), "differ") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestPairDifferenceDegenerate(t *testing.T) {
	r := PairDifference([]float64{1}, []float64{2}, 0.999)
	if !r.NullSupported || !math.IsInf(r.Hi, 1) {
		t.Fatalf("degenerate pair test: %+v", r)
	}
	// Mismatched lengths truncate to the shorter.
	r = PairDifference([]float64{1, 2, 3}, []float64{1, 2}, 0.95)
	if r.N != 2 {
		t.Fatalf("N = %d, want 2", r.N)
	}
}

func TestPairDifferenceIdentical(t *testing.T) {
	x := []float64{0.1, 0.2, 0.3, 0.4}
	r := PairDifference(x, x, 0.999)
	if !r.NullSupported || r.MeanDiff != 0 {
		t.Fatalf("identical series: %+v", r)
	}
}
