// Package stats provides the statistical machinery the paper's evaluation
// uses: summary statistics, empirical CDFs (Fig 5), the paired-difference
// test from Jain's "The Art of Computer Systems Performance Analysis" used
// in §IV-B to compare measurement techniques, and binomial confidence
// intervals for reordering rates.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, Variance float64 // sample variance (n-1 denominator)
	StdDev         float64
	Min, Max       float64
}

// Summarize computes summary statistics. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Variance)
	}
	return s
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from the samples (copied and sorted).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// FractionAtMost returns the empirical P(X <= x).
func (c *CDF) FractionAtMost(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Binary-search the first index strictly greater than x: O(log n) even
	// when the sample is dominated by one value (e.g. the zero rate most
	// clean paths report), where scanning past duplicates would be O(n).
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile (0 <= p <= 1) by the nearest-rank method.
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.sorted[rank]
}

// Points returns (x, P(X<=x)) pairs suitable for plotting the CDF as a step
// function, one point per distinct sample value.
func (c *CDF) Points() []Point {
	var pts []Point
	n := float64(len(c.sorted))
	for i := 0; i < len(c.sorted); {
		j := i
		for j < len(c.sorted) && c.sorted[j] == c.sorted[i] {
			j++
		}
		pts = append(pts, Point{X: c.sorted[i], Y: float64(j) / n})
		i = j
	}
	return pts
}

// Point is one (x, y) plot coordinate.
type Point struct{ X, Y float64 }

// BinomialCI returns the Wilson score interval for a proportion at the
// given z (e.g. 1.96 for 95%, 3.2905 for 99.9%).
func BinomialCI(successes, trials int, z float64) (lo, hi float64) {
	if trials == 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	den := 1 + z2/n
	center := (p + z2/(2*n)) / den
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / den
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// PairResult is the outcome of a paired-difference comparison of two
// measurement techniques on the same path.
type PairResult struct {
	N          int     // number of pairs
	MeanDiff   float64 // mean of (x_i - y_i)
	StdErr     float64 // standard error of the mean difference
	Confidence float64 // confidence level used, e.g. 0.999
	Lo, Hi     float64 // confidence interval for the mean difference
	// NullSupported is true when the interval contains zero: the
	// difference between techniques is explicable by intra-test
	// variability, i.e. the tests agree.
	NullSupported bool
}

// String renders the result in one line.
func (r PairResult) String() string {
	verdict := "differ"
	if r.NullSupported {
		verdict = "agree"
	}
	return fmt.Sprintf("n=%d mean-diff=%+.5f CI[%.5f, %.5f] @%.1f%% -> %s",
		r.N, r.MeanDiff, r.Lo, r.Hi, r.Confidence*100, verdict)
}

// PairDifference runs the paired-difference test (Jain §13.4.1) on equal-
// length paired observations at the given confidence level (two-sided).
// Degenerate inputs (fewer than 2 pairs) report the null as supported with
// an infinite interval.
func PairDifference(x, y []float64, confidence float64) PairResult {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	r := PairResult{N: n, Confidence: confidence}
	if n < 2 {
		r.Lo, r.Hi = math.Inf(-1), math.Inf(1)
		r.NullSupported = true
		return r
	}
	diffs := make([]float64, n)
	for i := range diffs {
		diffs[i] = x[i] - y[i]
	}
	s := Summarize(diffs)
	r.MeanDiff = s.Mean
	r.StdErr = s.StdDev / math.Sqrt(float64(n))
	t := TCritical(n-1, confidence)
	r.Lo = r.MeanDiff - t*r.StdErr
	r.Hi = r.MeanDiff + t*r.StdErr
	r.NullSupported = r.Lo <= 0 && 0 <= r.Hi
	return r
}
