package stats

import "math"

// Two-sided critical values of Student's t distribution, indexed by degrees
// of freedom 1..30, for the confidence levels the experiments use. Values
// beyond 30 degrees of freedom fall back to the normal quantile, which is
// accurate to better than 2% there.
var tTable = map[float64][30]float64{
	0.95: {
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	},
	0.99: {
		63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
	},
	0.999: {
		636.619, 31.599, 12.924, 8.610, 6.869, 5.959, 5.408, 5.041, 4.781, 4.587,
		4.437, 4.318, 4.221, 4.140, 4.073, 4.015, 3.965, 3.922, 3.883, 3.850,
		3.819, 3.792, 3.768, 3.745, 3.725, 3.707, 3.690, 3.674, 3.659, 3.646,
	},
}

// normal z quantiles for the same levels (df -> infinity limits).
var zTable = map[float64]float64{0.95: 1.960, 0.99: 2.576, 0.999: 3.291}

// TCritical returns the two-sided critical t value for the given degrees of
// freedom and confidence level. Supported levels are 0.95, 0.99 and 0.999;
// other levels fall back to an inverse-normal approximation, which is what
// large-sample tests use anyway.
func TCritical(df int, confidence float64) float64 {
	if df < 1 {
		df = 1
	}
	if tab, ok := tTable[confidence]; ok {
		if df <= 30 {
			return tab[df-1]
		}
		z := zTable[confidence]
		// Smooth interpolation between t(30) and z using the standard
		// 1/df expansion: t ~= z + (z^3+z)/(4 df).
		return z + (z*z*z+z)/(4*float64(df))
	}
	// Unsupported level: invert the normal CDF.
	z := normQuantile(0.5 + confidence/2)
	if df > 1 {
		z += (z*z*z + z) / (4 * float64(df))
	}
	return z
}

// normQuantile computes the standard normal quantile via the
// Beasley–Springer–Moro rational approximation.
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := y * (((a[3]*r+a[2])*r+a[1])*r + a[0])
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return num / den
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	for i, pow := 1, r; i < 9; i, pow = i+1, pow*r {
		x += c[i] * pow
	}
	if y < 0 {
		return -x
	}
	return x
}
