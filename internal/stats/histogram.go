package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-bin streaming histogram: constant memory however
// many samples it absorbs, mergeable across shards, with bin-interpolated
// quantiles and CDF points. It is the constant-memory replacement for
// pooling raw samples when a campaign scales to millions of targets: every
// statistic it reports is a function of integer bin counts plus the exact
// running min/max, so merging shards in any layout yields bit-identical
// summaries — the property the campaign's determinism contract needs and
// raw float pooling only achieves by sorting the whole pool.
//
// Bin i covers [edges[i], edges[i+1]); samples below the first edge clamp
// into the first bin and samples at or above the last edge clamp into the
// last, so no sample is ever dropped from the count. Quantiles interpolate
// linearly within a bin and are therefore exact to within one bin width of
// the raw-sample quantile — for samples inside [edges[0], edges[len-1]).
// Clamped out-of-range samples keep Count/Min/Max exact but are
// indistinguishable from end-bin samples to Mean, Quantile and
// FractionAtMost, so choose edges that span the data's domain (rates in
// [0,1], RTTs within the geometric range, etc.).
type Histogram struct {
	edges  []float64
	counts []uint64
	n      uint64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over the given ascending bin edges
// (len >= 2, so at least one bin). The edge slice is retained, not copied;
// callers must not mutate it.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) < 2 {
		panic(fmt.Sprintf("stats: histogram needs >= 2 edges, got %d", len(edges)))
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			panic(fmt.Sprintf("stats: histogram edges not strictly ascending at %d: %v >= %v",
				i, edges[i-1], edges[i]))
		}
	}
	return &Histogram{edges: edges, counts: make([]uint64, len(edges)-1)}
}

// HistogramFromCounts adopts precomputed bin counts over the given edges,
// with the exact observed min and max. It is the snapshot half of sharded
// telemetry recorders (internal/obs): each shard's atomic bin counts are
// loaded once at scrape time and folded into an ordinary Histogram, which
// then merges and summarizes exactly like any live-built one. counts must
// have len(edges)-1 entries; the slices are retained, not copied.
func HistogramFromCounts(edges []float64, counts []uint64, min, max float64) *Histogram {
	if len(counts) != len(edges)-1 {
		panic(fmt.Sprintf("stats: %d counts for %d edges", len(counts), len(edges)))
	}
	h := &Histogram{edges: edges, counts: counts, min: min, max: max}
	for _, c := range counts {
		h.n += c
	}
	return h
}

// UniformEdges returns bins+1 equally spaced edges over [lo, hi].
func UniformEdges(lo, hi float64, bins int) []float64 {
	if bins <= 0 || !(hi > lo) {
		panic(fmt.Sprintf("stats: bad uniform edges [%v,%v] x%d", lo, hi, bins))
	}
	edges := make([]float64, bins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(bins)
	}
	edges[bins] = hi
	return edges
}

// LogEdges returns bins+1 geometrically spaced edges over [lo, hi]
// (lo > 0): constant relative bin width, the right shape for scale-free
// quantities like RTTs.
func LogEdges(lo, hi float64, bins int) []float64 {
	if bins <= 0 || !(lo > 0) || !(hi > lo) {
		panic(fmt.Sprintf("stats: bad log edges [%v,%v] x%d", lo, hi, bins))
	}
	edges := make([]float64, bins+1)
	ratio := math.Log(hi / lo)
	for i := range edges {
		edges[i] = lo * math.Exp(ratio*float64(i)/float64(bins))
	}
	edges[0], edges[bins] = lo, hi
	return edges
}

// Add folds one sample in. NaN samples are ignored.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if h.n == 0 {
		h.min, h.max = x, x
	} else {
		if x < h.min {
			h.min = x
		}
		if x > h.max {
			h.max = x
		}
	}
	h.n++
	h.counts[h.bin(x)]++
}

// bin locates the clamped bin index for x.
func (h *Histogram) bin(x float64) int {
	// First edge strictly greater than x; x's bin is the one before it.
	i := sort.Search(len(h.edges), func(j int) bool { return h.edges[j] > x }) - 1
	if i < 0 {
		return 0
	}
	if i >= len(h.counts) {
		return len(h.counts) - 1
	}
	return i
}

// Merge folds o into h. It panics if the histograms were built over
// different edges — merging shards of one campaign statistic is the only
// supported use, and mismatched edges there are a programming error.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if len(o.edges) != len(h.edges) {
		panic(fmt.Sprintf("stats: merging histograms with %d and %d edges", len(h.edges), len(o.edges)))
	}
	if &o.edges[0] != &h.edges[0] { // shared layouts skip the pointwise check
		for i, e := range h.edges {
			if o.edges[i] != e {
				panic(fmt.Sprintf("stats: merging histograms with different edges at %d: %v != %v", i, e, o.edges[i]))
			}
		}
	}
	if h.n == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.n += o.n
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Count returns the number of samples absorbed.
func (h *Histogram) Count() int { return int(h.n) }

// Min returns the exact smallest sample (0 when empty).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the bin-midpoint-weighted mean, clamped to [Min, Max]. It
// is exact when all samples share one value and within half a bin width
// otherwise; computing it from integer counts (rather than a float running
// sum) is what keeps merged summaries independent of shard layout.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	if h.min == h.max {
		return h.min
	}
	var sum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		mid := (h.edges[i] + h.edges[i+1]) / 2
		sum += float64(c) * mid
	}
	return h.clamp(sum / float64(h.n))
}

// Quantile returns the p-quantile (0 <= p <= 1), linearly interpolated
// within the containing bin and clamped to the observed [Min, Max]. An
// empty histogram returns NaN.
func (h *Histogram) Quantile(p float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	rank := p * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := h.edges[i], h.edges[i+1]
			frac := (rank - cum) / float64(c)
			return h.clamp(lo + frac*(hi-lo))
		}
		cum = next
	}
	return h.max
}

// CDFPoints returns (x, P(X<=x)) step points, one per nonempty bin, with x
// at the bin's upper edge (the last point's x clamps to Max so the curve
// ends at the observed extremum).
func (h *Histogram) CDFPoints() []Point {
	if h.n == 0 {
		return nil
	}
	var pts []Point
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		x := h.edges[i+1]
		if x > h.max {
			x = h.max
		}
		pts = append(pts, Point{X: x, Y: float64(cum) / float64(h.n)})
	}
	return pts
}

// FractionAtMost returns the empirical P(X <= x), interpolating linearly
// within x's bin.
func (h *Histogram) FractionAtMost(x float64) float64 {
	if h.n == 0 || x < h.min {
		return 0
	}
	if x >= h.max {
		return 1
	}
	b := h.bin(x)
	var cum uint64
	for i := 0; i < b; i++ {
		cum += h.counts[i]
	}
	lo, hi := h.edges[b], h.edges[b+1]
	frac := (x - lo) / (hi - lo)
	// Out-of-range samples clamp into the end bins, so x may sit outside
	// its bin's edge span; clamp the interpolation to keep the result a
	// probability.
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return (float64(cum) + frac*float64(h.counts[b])) / float64(h.n)
}

// BinWidth returns the width of the bin containing x — the resolution
// bound on quantile and mean error near x.
func (h *Histogram) BinWidth(x float64) float64 {
	b := h.bin(x)
	return h.edges[b+1] - h.edges[b]
}

func (h *Histogram) clamp(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}
