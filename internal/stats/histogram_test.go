package stats

import (
	"math"
	"sort"
	"testing"

	"math/rand/v2"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(UniformEdges(0, 1, 10))
	for _, x := range []float64{0, 0.05, 0.25, 0.25, 0.5, 0.95, 1.0} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	// NaN ignored.
	h.Add(math.NaN())
	if h.Count() != 7 {
		t.Fatal("NaN sample counted")
	}
	// Out-of-range samples clamp into the edge bins.
	h.Add(-5)
	h.Add(17)
	if h.Count() != 9 {
		t.Fatalf("Count = %d, want 9", h.Count())
	}
	if h.Min() != -5 || h.Max() != 17 {
		t.Fatalf("clamped Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(UniformEdges(0, 1, 4))
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram moments not zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	if h.CDFPoints() != nil {
		t.Fatal("empty histogram has CDF points")
	}
	if h.FractionAtMost(0.5) != 0 {
		t.Fatal("empty histogram FractionAtMost != 0")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	// The all-one-value distribution (e.g. every clean path reporting rate
	// zero) must stay exact: mean and every quantile are the value itself.
	h := NewHistogram(UniformEdges(0, 1, 256))
	for i := 0; i < 1000; i++ {
		h.Add(0)
	}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("all-zero histogram: mean=%v p50=%v p99=%v", h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
	}
}

// TestHistogramQuantileWithinBin checks the resolution contract: the
// interpolated quantile sits within one bin width of the raw-sample
// quantile.
func TestHistogramQuantileWithinBin(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	edges := UniformEdges(0, 1, 128)
	h := NewHistogram(edges)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64() * rng.Float64() // skewed toward zero, like rates
		h.Add(xs[i])
	}
	c := NewCDF(xs)
	binWidth := edges[1] - edges[0]
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		raw, got := c.Quantile(p), h.Quantile(p)
		if math.Abs(raw-got) > binWidth {
			t.Errorf("Quantile(%v) = %v, raw %v, off by more than bin width %v", p, got, raw, binWidth)
		}
	}
	if math.Abs(c.Quantile(0)-h.Quantile(0)) > 1e-15 || math.Abs(c.Quantile(1)-h.Quantile(1)) > 1e-15 {
		t.Error("extreme quantiles should be the exact min/max")
	}
}

// TestHistogramMergeInvariance is the shard-layout contract: any split of
// one sample stream over shards merges to a bit-identical histogram.
func TestHistogramMergeInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	edges := LogEdges(1, 1e6, 96)
	one := NewHistogram(edges)
	shards := make([]*Histogram, 7)
	for i := range shards {
		shards[i] = NewHistogram(edges)
	}
	for i := 0; i < 3000; i++ {
		x := math.Exp(rng.Float64() * 14)
		one.Add(x)
		shards[(13*i)%7].Add(x)
	}
	merged := NewHistogram(edges)
	for _, s := range shards {
		merged.Merge(s)
	}
	if merged.Count() != one.Count() || merged.Min() != one.Min() || merged.Max() != one.Max() {
		t.Fatal("merged moments differ from single-shard accumulation")
	}
	if merged.Mean() != one.Mean() {
		t.Fatalf("merged mean %v != %v", merged.Mean(), one.Mean())
	}
	for _, p := range []float64{0.25, 0.5, 0.9, 0.99} {
		if merged.Quantile(p) != one.Quantile(p) {
			t.Fatalf("merged Quantile(%v) %v != %v", p, merged.Quantile(p), one.Quantile(p))
		}
	}
}

func TestHistogramMergeEmptyAndPanics(t *testing.T) {
	h := NewHistogram(UniformEdges(0, 1, 4))
	h.Add(0.5)
	h.Merge(nil)
	h.Merge(NewHistogram(UniformEdges(0, 1, 4))) // empty: no-op
	if h.Count() != 1 {
		t.Fatalf("Count = %d after no-op merges", h.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched edges did not panic")
		}
	}()
	o := NewHistogram(UniformEdges(0, 2, 4))
	o.Add(1)
	h.Merge(o)
}

func TestHistogramCDFPoints(t *testing.T) {
	h := NewHistogram(UniformEdges(0, 10, 10))
	for _, x := range []float64{0.5, 0.6, 4.2, 9.9} {
		h.Add(x)
	}
	pts := h.CDFPoints()
	if len(pts) != 3 {
		t.Fatalf("CDFPoints = %v, want 3 nonempty bins", pts)
	}
	if pts[0].Y != 0.5 || pts[1].Y != 0.75 || pts[2].Y != 1 {
		t.Fatalf("cumulative fractions wrong: %v", pts)
	}
	prev := 0.0
	for _, p := range pts {
		if p.Y < prev {
			t.Fatalf("CDF not monotone: %v", pts)
		}
		prev = p.Y
	}
	if last := pts[len(pts)-1]; last.X != h.Max() {
		t.Fatalf("last CDF point x = %v, want Max %v", last.X, h.Max())
	}
}

func TestHistogramFractionAtMost(t *testing.T) {
	h := NewHistogram(UniformEdges(0, 1, 4))
	for _, x := range []float64{0.1, 0.3, 0.6, 0.9} {
		h.Add(x)
	}
	if got := h.FractionAtMost(-1); got != 0 {
		t.Fatalf("below min: %v", got)
	}
	if got := h.FractionAtMost(2); got != 1 {
		t.Fatalf("above max: %v", got)
	}
	mid := h.FractionAtMost(0.5)
	if mid <= 0.25 || mid >= 0.75 {
		t.Fatalf("FractionAtMost(0.5) = %v, want in (0.25, 0.75)", mid)
	}

	// Samples clamped into the end bins must still yield probabilities:
	// x between the bin's edge span and the observed extremum used to
	// extrapolate past [0, 1].
	o := NewHistogram(UniformEdges(0, 1, 4))
	o.Add(2)
	o.Add(3)
	for _, x := range []float64{2.5, 2, 2.999} {
		if got := o.FractionAtMost(x); got < 0 || got > 1 {
			t.Fatalf("FractionAtMost(%v) = %v, not a probability", x, got)
		}
	}
	u := NewHistogram(UniformEdges(10, 20, 4))
	u.Add(1)
	u.Add(15)
	if got := u.FractionAtMost(5); got < 0 || got > 1 {
		t.Fatalf("FractionAtMost(5) = %v, not a probability", got)
	}
}

func TestLogEdgesShape(t *testing.T) {
	edges := LogEdges(1, 1000, 3)
	want := []float64{1, 10, 100, 1000}
	for i, e := range edges {
		if math.Abs(e-want[i]) > 1e-9 {
			t.Fatalf("LogEdges = %v, want %v", edges, want)
		}
	}
	if !sort.Float64sAreSorted(edges) {
		t.Fatal("edges not sorted")
	}
}

// TestCDFFractionAtMostAllEqual guards the binary-search duplicate
// handling: a heavily duplicated value must resolve in O(log n), and the
// fractions at, below and above the value must be exact.
func TestCDFFractionAtMostAllEqual(t *testing.T) {
	xs := make([]float64, 200000)
	c := NewCDF(xs) // all zeros
	if got := c.FractionAtMost(0); got != 1 {
		t.Fatalf("FractionAtMost(0) = %v, want 1", got)
	}
	if got := c.FractionAtMost(-0.001); got != 0 {
		t.Fatalf("FractionAtMost(-0.001) = %v, want 0", got)
	}
	if got := c.FractionAtMost(0.001); got != 1 {
		t.Fatalf("FractionAtMost(0.001) = %v, want 1", got)
	}
	// Half zeros, half ones: the boundary fractions stay exact.
	for i := 100000; i < 200000; i++ {
		xs[i] = 1
	}
	c = NewCDF(xs)
	if got := c.FractionAtMost(0); got != 0.5 {
		t.Fatalf("FractionAtMost(0) = %v, want 0.5", got)
	}
	if got := c.FractionAtMost(1); got != 1 {
		t.Fatalf("FractionAtMost(1) = %v, want 1", got)
	}
}
