// Package trace captures packets at points in the simulated topology and
// answers ground-truth ordering questions about them — the role tcpdump and
// post-hoc trace analysis played in the paper's controlled validation
// (§IV-A). It also reads and writes the classic libpcap file format so
// captures can be inspected with standard tools.
package trace

import (
	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/sim"
)

// Record is one captured frame.
type Record struct {
	Index   int      // capture sequence number at this tap, from 0
	At      sim.Time // capture timestamp
	FrameID uint64   // network-unique frame ID
	Data    []byte   // raw datagram bytes (not copied; frames are immutable in the simulator)
}

// Decode parses the captured bytes.
func (r *Record) Decode() (*packet.Packet, error) { return packet.Decode(r.Data) }

// Capture is an append-only log of frames seen at one tap point.
type Capture struct {
	Name    string
	records []Record
	byID    map[uint64]int // frame ID -> index of first appearance
}

// NewCapture returns an empty capture.
func NewCapture(name string) *Capture {
	return &Capture{Name: name, byID: make(map[uint64]int)}
}

// Tap returns a netem.Tap that records into c and forwards to next. A
// capture stores wire bytes — the ground truth tcpdump would have seen —
// so tapping a view-built frame materializes it (once; the bytes are then
// shared by every later tap and receiver).
func (c *Capture) Tap(loop *sim.Loop, next netem.Node) *netem.Tap {
	return netem.NewTap(loop, next, func(f *netem.Frame, at sim.Time) {
		idx := len(c.records)
		c.records = append(c.records, Record{Index: idx, At: at, FrameID: f.ID, Data: f.Materialize()})
		if _, dup := c.byID[f.ID]; !dup {
			c.byID[f.ID] = idx
		}
	})
}

// Len returns the number of captured frames.
func (c *Capture) Len() int { return len(c.records) }

// Records returns the capture in arrival order. The slice is shared; do not
// mutate.
func (c *Capture) Records() []Record { return c.records }

// Position returns the arrival index of the frame with the given ID.
func (c *Capture) Position(frameID uint64) (int, bool) {
	i, ok := c.byID[frameID]
	return i, ok
}

// Exchanged reports whether two frames arrived in the opposite of the given
// order: sentFirst was sent before sentSecond, and Exchanged is true when
// sentSecond arrived first. The ok result is false unless both frames were
// captured.
func (c *Capture) Exchanged(sentFirst, sentSecond uint64) (exchanged, ok bool) {
	i, ok1 := c.byID[sentFirst]
	j, ok2 := c.byID[sentSecond]
	if !ok1 || !ok2 {
		return false, false
	}
	return j < i, true
}

// Reset clears the capture, keeping its storage for reuse.
func (c *Capture) Reset() {
	c.records = c.records[:0]
	clear(c.byID)
}
