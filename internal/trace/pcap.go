package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"reorder/internal/sim"
)

// Classic libpcap file format (the 2002-era format, naturally), little-
// endian, with LINKTYPE_RAW so records are bare IPv4 datagrams.
const (
	pcapMagic    = 0xa1b2c3d4
	pcapVerMajor = 2
	pcapVerMinor = 4
	linktypeRaw  = 101
)

// ErrBadPcap is returned for malformed pcap input.
var ErrBadPcap = errors.New("trace: malformed pcap")

// WritePcap writes the capture as a libpcap file with raw-IP link type.
// Timestamps are virtual time split into seconds and microseconds.
func (c *Capture) WritePcap(w io.Writer) error {
	hdr := make([]byte, 24)
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], pcapMagic)
	le.PutUint16(hdr[4:], pcapVerMajor)
	le.PutUint16(hdr[6:], pcapVerMinor)
	// thiszone, sigfigs = 0
	le.PutUint32(hdr[16:], 65535) // snaplen
	le.PutUint32(hdr[20:], linktypeRaw)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 16)
	for _, r := range c.records {
		us := r.At.Duration().Microseconds()
		le.PutUint32(rec[0:], uint32(us/1_000_000))
		le.PutUint32(rec[4:], uint32(us%1_000_000))
		le.PutUint32(rec[8:], uint32(len(r.Data)))
		le.PutUint32(rec[12:], uint32(len(r.Data)))
		if _, err := w.Write(rec); err != nil {
			return err
		}
		if _, err := w.Write(r.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadPcap parses a libpcap file previously written by WritePcap (or any
// little-endian classic pcap with raw-IP link type). Frame IDs are not
// stored in pcap, so records come back with FrameID zero.
func ReadPcap(r io.Reader) (*Capture, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadPcap, err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != pcapMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadPcap, le.Uint32(hdr[0:]))
	}
	if lt := le.Uint32(hdr[20:]); lt != linktypeRaw {
		return nil, fmt.Errorf("%w: link type %d, want %d", ErrBadPcap, lt, linktypeRaw)
	}
	c := NewCapture("pcap")
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return c, nil
			}
			return nil, fmt.Errorf("%w: record header: %v", ErrBadPcap, err)
		}
		sec := le.Uint32(rec[0:])
		usec := le.Uint32(rec[4:])
		caplen := le.Uint32(rec[8:])
		if caplen > 65535 {
			return nil, fmt.Errorf("%w: caplen %d", ErrBadPcap, caplen)
		}
		data := make([]byte, caplen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("%w: truncated record: %v", ErrBadPcap, err)
		}
		at := sim.Time(int64(sec)*1_000_000_000 + int64(usec)*1_000)
		idx := len(c.records)
		c.records = append(c.records, Record{Index: idx, At: at, Data: data})
	}
}
