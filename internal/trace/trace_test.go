package trace

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"time"

	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/sim"
)

func tcpFrame(t *testing.T, id uint64, seq uint32) *netem.Frame {
	t.Helper()
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2})},
		&packet.TCPHeader{SrcPort: 1, DstPort: 2, Seq: seq, Flags: packet.FlagACK}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &netem.Frame{ID: id, Data: raw}
}

func TestCaptureRecordsOrderAndTime(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCapture("probe-egress")
	tap := c.Tap(loop, netem.Discard)
	tap.Input(tcpFrame(t, 10, 1))
	loop.RunFor(time.Millisecond)
	tap.Input(tcpFrame(t, 20, 2))
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	recs := c.Records()
	if recs[0].FrameID != 10 || recs[1].FrameID != 20 {
		t.Fatal("order wrong")
	}
	if recs[0].Index != 0 || recs[1].Index != 1 {
		t.Fatal("indices wrong")
	}
	if recs[1].At != sim.Time(time.Millisecond) {
		t.Fatalf("timestamp = %v", recs[1].At)
	}
	p, err := recs[0].Decode()
	if err != nil || p.TCP.Seq != 1 {
		t.Fatalf("Decode: %v", err)
	}
}

func TestExchanged(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCapture("x")
	tap := c.Tap(loop, netem.Discard)
	tap.Input(tcpFrame(t, 2, 0)) // frame 2 arrives first
	tap.Input(tcpFrame(t, 1, 0)) // frame 1 (sent first) arrives second
	if ex, ok := c.Exchanged(1, 2); !ok || !ex {
		t.Fatalf("Exchanged(1,2) = %v,%v; want true,true", ex, ok)
	}
	if ex, ok := c.Exchanged(2, 1); !ok || ex {
		t.Fatalf("Exchanged(2,1) = %v,%v; want false,true", ex, ok)
	}
	if _, ok := c.Exchanged(1, 99); ok {
		t.Fatal("Exchanged with missing frame reported ok")
	}
}

func TestPosition(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCapture("x")
	tap := c.Tap(loop, netem.Discard)
	tap.Input(tcpFrame(t, 5, 0))
	if i, ok := c.Position(5); !ok || i != 0 {
		t.Fatalf("Position(5) = %d,%v", i, ok)
	}
	if _, ok := c.Position(6); ok {
		t.Fatal("Position of uncaptured frame ok")
	}
}

func TestReset(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCapture("x")
	tap := c.Tap(loop, netem.Discard)
	tap.Input(tcpFrame(t, 1, 0))
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not clear records")
	}
	if _, ok := c.Position(1); ok {
		t.Fatal("Reset did not clear index")
	}
}

func TestTapForwards(t *testing.T) {
	loop := sim.NewLoop()
	var forwarded int
	c := NewCapture("x")
	tap := c.Tap(loop, netem.NodeFunc(func(*netem.Frame) { forwarded++ }))
	tap.Input(tcpFrame(t, 1, 0))
	if forwarded != 1 {
		t.Fatal("tap swallowed the frame")
	}
}

func TestPcapRoundTrip(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCapture("x")
	tap := c.Tap(loop, netem.Discard)
	tap.Input(tcpFrame(t, 1, 100))
	loop.RunFor(1500 * time.Millisecond) // exercises sec + usec split
	tap.Input(tcpFrame(t, 2, 200))

	var buf bytes.Buffer
	if err := c.WritePcap(&buf); err != nil {
		t.Fatalf("WritePcap: %v", err)
	}
	back, err := ReadPcap(&buf)
	if err != nil {
		t.Fatalf("ReadPcap: %v", err)
	}
	if back.Len() != 2 {
		t.Fatalf("read %d records", back.Len())
	}
	r := back.Records()
	p0, err := r[0].Decode()
	if err != nil || p0.TCP.Seq != 100 {
		t.Fatalf("record 0: %v", err)
	}
	p1, err := r[1].Decode()
	if err != nil || p1.TCP.Seq != 200 {
		t.Fatalf("record 1: %v", err)
	}
	if r[1].At != sim.Time(1500*time.Millisecond) {
		t.Fatalf("timestamp = %v, want 1.5s", r[1].At)
	}
}

func TestPcapHeaderFields(t *testing.T) {
	c := NewCapture("x")
	var buf bytes.Buffer
	if err := c.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("empty capture file = %d bytes, want 24", len(b))
	}
	if b[0] != 0xd4 || b[1] != 0xc3 || b[2] != 0xb2 || b[3] != 0xa1 {
		t.Fatalf("magic bytes = % x", b[:4])
	}
	if b[20] != 101 {
		t.Fatalf("link type byte = %d, want 101 (raw IP)", b[20])
	}
}

func TestReadPcapErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", make([]byte, 10)},
		{"bad magic", make([]byte, 24)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadPcap(bytes.NewReader(tc.data)); !errors.Is(err, ErrBadPcap) {
				t.Fatalf("error = %v, want ErrBadPcap", err)
			}
		})
	}
}

func TestReadPcapTruncatedRecord(t *testing.T) {
	loop := sim.NewLoop()
	c := NewCapture("x")
	tap := c.Tap(loop, netem.Discard)
	tap.Input(tcpFrame(t, 1, 1))
	var buf bytes.Buffer
	if err := c.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadPcap(bytes.NewReader(cut)); !errors.Is(err, ErrBadPcap) {
		t.Fatalf("error = %v, want ErrBadPcap", err)
	}
}

func TestDuplicateFrameIDKeepsFirstPosition(t *testing.T) {
	// A retransmitted frame (same ID re-injected) must not move the
	// ground-truth position of its first arrival.
	loop := sim.NewLoop()
	c := NewCapture("x")
	tap := c.Tap(loop, netem.Discard)
	tap.Input(tcpFrame(t, 1, 0))
	tap.Input(tcpFrame(t, 2, 0))
	tap.Input(tcpFrame(t, 1, 0)) // duplicate
	if i, _ := c.Position(1); i != 0 {
		t.Fatalf("Position(1) = %d after duplicate, want 0", i)
	}
	if c.Len() != 3 {
		t.Fatal("duplicate not recorded in the log")
	}
}
