package host

import (
	"time"

	"reorder/internal/ipid"
	"reorder/internal/sim"
	"reorder/internal/tcpstack"
)

// Profile captures the externally observable implementation behaviour of an
// operating system's network stack — the axes along which the paper's
// techniques succeed or fail.
type Profile struct {
	// Name identifies the profile in survey reports (e.g. "freebsd4").
	Name string
	// TCP is the stack configuration.
	TCP tcpstack.Config
	// IPID constructs the IPID policy; stochastic policies draw from the
	// provided stream.
	IPID func(rng *sim.Rand) ipid.Generator
	// ICMP is the echo responder behaviour.
	ICMP ICMPConfig
	// Ports are the listening TCP ports (80 for the web-serving hosts).
	Ports []uint16
}

// The profile catalog models the OS mix of the paper's survey (§IV-B): all
// major server operating systems of the era plus the pathologies that rule
// tests out — Linux 2.4's constant-zero IPID (9 of 50 hosts) and the random
// IPIDs of hardened BSDs.

// FreeBSD4 models a FreeBSD 4.x server: global-counter IPID, 100ms delayed
// ACKs, always-RST second-SYN handling, SACK off (off by default then).
func FreeBSD4() Profile {
	return Profile{
		Name: "freebsd4",
		TCP: tcpstack.Config{
			DelAckThreshold: 2, DelAckTimeout: 100 * time.Millisecond,
			SYNPolicy: tcpstack.SYNPolicyRST,
		},
		IPID:  func(*sim.Rand) ipid.Generator { return ipid.NewGlobalCounter(1) },
		Ports: []uint16{80},
	}
}

// Linux22 models Linux 2.2: global-counter IPID, 200ms delayed ACKs, SACK on.
func Linux22() Profile {
	return Profile{
		Name: "linux22",
		TCP: tcpstack.Config{
			DelAckThreshold: 2, DelAckTimeout: 200 * time.Millisecond,
			SYNPolicy: tcpstack.SYNPolicyRST, SACK: true,
		},
		IPID:  func(*sim.Rand) ipid.Generator { return ipid.NewGlobalCounter(1) },
		Ports: []uint16{80},
	}
}

// Linux24 models Linux 2.4 with path MTU discovery: IPID constantly zero on
// DF packets, which rules out the dual connection test (§IV-B found 9 such
// hosts).
func Linux24() Profile {
	p := Linux22()
	p.Name = "linux24"
	p.IPID = func(*sim.Rand) ipid.Generator { return ipid.Zero{} }
	return p
}

// OpenBSD3 models OpenBSD with randomized IPIDs, which also rules out the
// dual connection test.
func OpenBSD3() Profile {
	return Profile{
		Name: "openbsd3",
		TCP: tcpstack.Config{
			DelAckThreshold: 2, DelAckTimeout: 200 * time.Millisecond,
			SYNPolicy: tcpstack.SYNPolicyRST,
		},
		IPID:  func(rng *sim.Rand) ipid.Generator { return ipid.NewRandom(rng) },
		Ports: []uint16{80},
	}
}

// Solaris8 models Solaris with per-destination IPID counters — fine for the
// dual connection test per the paper's footnote.
func Solaris8() Profile {
	return Profile{
		Name: "solaris8",
		TCP: tcpstack.Config{
			DelAckThreshold: 2, DelAckTimeout: 50 * time.Millisecond,
			SYNPolicy: tcpstack.SYNPolicySpec,
		},
		IPID:  func(*sim.Rand) ipid.Generator { return ipid.NewPerDestination(1) },
		Ports: []uint16{80},
	}
}

// Windows2000 models a Windows server: global-counter IPID, 200ms delayed
// ACKs, always-RST, SACK on.
func Windows2000() Profile {
	return Profile{
		Name: "win2000",
		TCP: tcpstack.Config{
			DelAckThreshold: 2, DelAckTimeout: 200 * time.Millisecond,
			SYNPolicy: tcpstack.SYNPolicyRST, SACK: true,
		},
		IPID:  func(*sim.Rand) ipid.Generator { return ipid.NewGlobalCounter(1) },
		Ports: []uint16{80},
	}
}

// SpecStack is a strictly spec-following implementation: per-spec second-SYN
// handling and maximal 500ms delayed ACKs. A small population exists to
// exercise the SYN test's "poorly understood" corner (§III-D).
func SpecStack() Profile {
	return Profile{
		Name: "spec",
		TCP: tcpstack.Config{
			DelAckThreshold: 2, DelAckTimeout: 500 * time.Millisecond,
			SYNPolicy: tcpstack.SYNPolicySpec, SACK: true,
		},
		IPID:  func(*sim.Rand) ipid.Generator { return ipid.NewGlobalCounter(1) },
		Ports: []uint16{80},
	}
}

// DualRSTStack models the small number of implementations that answer a
// second SYN with two RSTs.
func DualRSTStack() Profile {
	p := FreeBSD4()
	p.Name = "dual-rst"
	p.TCP.SYNPolicy = tcpstack.SYNPolicyDualRST
	return p
}

// FilteredICMP wraps a profile with ICMP filtering (security-conscious
// operators; breaks Bennett-style measurement, §II).
func FilteredICMP(p Profile) Profile {
	p.Name += "+icmp-filtered"
	p.ICMP.Filtered = true
	return p
}

// RateLimitedICMP wraps a profile with an ICMP rate limit.
func RateLimitedICMP(p Profile, perSec int) Profile {
	p.Name += "+icmp-ratelimited"
	p.ICMP.RatePerSec = perSec
	return p
}

// Catalog returns the full profile list used by the survey experiment.
func Catalog() []Profile {
	return []Profile{
		FreeBSD4(), Linux22(), Linux24(), OpenBSD3(), Solaris8(),
		Windows2000(), SpecStack(), DualRSTStack(),
	}
}
