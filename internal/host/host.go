// Package host assembles a simulated remote endpoint: a TCP stack with an
// implementation profile, an IPID generation policy, and an ICMP echo
// responder with optional rate limiting — everything the paper's techniques
// probe. A Host is a netem.Node: the network delivers frames to it and it
// transmits frames back through its configured egress.
package host

import (
	"net/netip"

	"reorder/internal/ipid"
	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/sim"
	"reorder/internal/tcpstack"
)

// ICMPConfig controls the echo responder. The zero value answers every
// request, unlimited — but see Profile defaults; many operators filter or
// rate-limit ICMP, which is one of the paper's arguments against
// ping-based measurement (§II).
type ICMPConfig struct {
	// Filtered drops all echo requests silently.
	Filtered bool
	// RatePerSec caps replies per second (token bucket of the same burst
	// size). Zero means unlimited.
	RatePerSec int
}

// Host is one simulated endpoint.
type Host struct {
	Stack *tcpstack.Stack

	loop    *sim.Loop
	addr    netip.Addr
	profile string
	gen     ipid.Generator
	ids     *netem.FrameIDs
	out     netem.Node
	icmp    ICMPConfig

	// ipidRng and isnRng are the two streams New forks from the build
	// stream, retained so Reset can reseed them in place instead of
	// allocating fresh forks (see sim.Rand.ForkInto).
	ipidRng, isnRng *sim.Rand

	reasm      *packet.Reassembler
	udpApps    map[uint16]func(*packet.Packet)
	tokens     float64
	lastRefill sim.Time

	arena *netem.Arena
	// rxPkt is the host's scratch decoded packet for the UDP/ICMP slow
	// path; nothing retains it past a handler call.
	rxPkt packet.Packet

	echoesAnswered uint64
	echoesDropped  uint64
}

// New builds a host at addr from a profile. The rng seeds the stack's ISN
// generator and any stochastic IPID policy. Frames are transmitted to out.
func New(loop *sim.Loop, p Profile, addr netip.Addr, rng *sim.Rand, ids *netem.FrameIDs, out netem.Node) *Host {
	h := &Host{
		loop: loop, addr: addr, profile: p.Name, ids: ids, out: out, icmp: p.ICMP,
		tokens:  float64(p.ICMP.RatePerSec),
		ipidRng: rng.Fork(forkIPID),
	}
	h.gen = p.IPID(h.ipidRng)
	h.isnRng = rng.Fork(forkISN)
	h.Stack = tcpstack.New(loop, p.TCP, addr, h.gen, ids, h.isnRng, out)
	for _, port := range p.Ports {
		h.Stack.Listen(port)
	}
	return h
}

// Reset returns the host to the state New(loop, p, addr, rng, ids, out)
// would produce at its existing address, reusing the TCP stack, connection
// pool and random stream objects. It consumes rng's draws in exactly the
// order New does, so a pooled host is observably identical to a fresh one.
// The caller is expected to reuse hosts for profiles of the same name (so
// stack shape matches), though any profile is handled correctly.
func (h *Host) Reset(p Profile, rng *sim.Rand, out netem.Node) {
	h.ResetAt(p, h.addr, rng, out)
}

// ResetAt is Reset with an address rebind. Topology-graph scenarios pool
// hosts by profile name and place them at build-assigned addresses, so a
// reused host (and its stack) must demultiplex on the new address.
func (h *Host) ResetAt(p Profile, addr netip.Addr, rng *sim.Rand, out netem.Node) {
	h.profile = p.Name
	h.addr = addr
	h.out = out
	h.icmp = p.ICMP
	h.tokens = float64(p.ICMP.RatePerSec)
	h.lastRefill = 0
	h.reasm = nil
	clear(h.udpApps)
	h.echoesAnswered, h.echoesDropped = 0, 0
	rng.ForkInto(h.ipidRng, forkIPID)
	h.gen = p.IPID(h.ipidRng)
	rng.ForkInto(h.isnRng, forkISN)
	h.Stack.ResetAt(p.TCP, addr, h.gen, out)
	for _, port := range p.Ports {
		h.Stack.Listen(port)
	}
}

// Profile returns the name of the profile the host was built (or last
// reset) from, the key scenario pools reuse hosts by.
func (h *Host) Profile() string { return h.profile }

// SetArena directs the host (and its TCP stack) to allocate transmitted
// datagrams and frames from a, typically the owning scenario's arena.
func (h *Host) SetArena(a *netem.Arena) {
	h.arena = a
	h.Stack.SetArena(a)
}

// Addr returns the host's address.
func (h *Host) Addr() netip.Addr { return h.addr }

// IPIDPolicy returns the name of the host's IPID generation policy.
func (h *Host) IPIDPolicy() string { return h.gen.Name() }

// EchoesAnswered returns how many echo requests were answered.
func (h *Host) EchoesAnswered() uint64 { return h.echoesAnswered }

// Input implements netem.Node: frames from the network. Frames carrying a
// decoded view demultiplex on the cached flow key with zero parsing (and
// skip reassembly outright — a view frame is never a fragment, and a whole
// datagram is a reassembler no-op). Byte-form frames are reassembled if
// fragmented, as the host's IP layer would; the reassembler is built lazily
// so fragment-free scenarios never pay for it.
func (h *Host) Input(f *netem.Frame) {
	if v := f.View(); v != nil {
		if v.IP.Dst != h.addr {
			return
		}
		switch v.IP.Protocol {
		case packet.ProtoTCP:
			h.Stack.Input(f)
		case packet.ProtoICMP:
			h.handleICMP(f)
		}
		// Views carry only TCP or ICMP; UDP always arrives in byte form.
		return
	}
	if h.reasm != nil || packet.IsFragment(f.Data) {
		if h.reasm == nil {
			h.reasm = packet.NewReassembler()
		}
		whole, err := h.reasm.Input(f.Data)
		if err != nil || whole == nil {
			return // malformed, or waiting for more fragments
		}
		if len(whole) != len(f.Data) {
			f = &netem.Frame{ID: f.ID, Data: whole, Born: f.Born}
		}
	}
	flow, ok := packet.PeekFlow(f.Data)
	if !ok || flow.Dst != h.addr {
		return
	}
	switch flow.Proto {
	case packet.ProtoTCP:
		h.Stack.Input(f)
	case packet.ProtoUDP:
		h.handleUDP(f)
	case packet.ProtoICMP:
		h.handleICMP(f)
	}
}

// HandleUDP registers an application for UDP datagrams addressed to port —
// the "deployment at each endpoint" the cooperative IETF measurement
// methodologies require (§II), which the paper's single-ended techniques
// exist to avoid. The packet passed to fn is the host's reused scratch
// decode; fn must consume it during the call, not retain it.
func (h *Host) HandleUDP(port uint16, fn func(*packet.Packet)) {
	if h.udpApps == nil {
		h.udpApps = make(map[uint16]func(*packet.Packet))
	}
	h.udpApps[port] = fn
}

// rx produces the host's scratch decoded form of f: the attached view when
// one exists, else a pooled DecodeInto — never an allocating Decode. The
// result is valid only until the next rx call; handlers (and registered UDP
// applications) must not retain it.
func (h *Host) rx(f *netem.Frame) (*packet.Packet, bool) {
	if v := f.View(); v != nil {
		v.ToPacket(&h.rxPkt)
		return &h.rxPkt, true
	}
	if err := packet.DecodeInto(&h.rxPkt, f.Data); err != nil {
		return nil, false
	}
	return &h.rxPkt, true
}

func (h *Host) handleUDP(f *netem.Frame) {
	p, ok := h.rx(f)
	if !ok || p.UDP == nil {
		return
	}
	if fn := h.udpApps[p.UDP.DstPort]; fn != nil {
		fn(p)
	}
	// No listener: drop silently (ICMP port-unreachable is out of scope).
}

func (h *Host) handleICMP(f *netem.Frame) {
	p, ok := h.rx(f)
	if !ok || p.ICMP == nil || !p.ICMP.IsRequest() {
		return
	}
	if h.icmp.Filtered || !h.takeToken() {
		h.echoesDropped++
		return
	}
	reply := packet.ICMPEcho{
		Type: packet.ICMPEchoReply, Ident: p.ICMP.Ident, Seq: p.ICMP.Seq,
		Payload: p.ICMP.Payload,
	}
	out, err := h.arena.NewICMPFrame(h.ids.Next(), h.loop.Now(), &packet.IPv4Header{
		Src: h.addr, Dst: p.IP.Src, ID: h.gen.Next(p.IP.Src),
	}, &reply)
	if err != nil {
		return
	}
	h.echoesAnswered++
	h.out.Input(out)
}

// takeToken implements the ICMP rate limiter as a token bucket refilled in
// virtual time.
func (h *Host) takeToken() bool {
	if h.icmp.RatePerSec <= 0 {
		return true
	}
	now := h.loop.Now()
	elapsed := now.Sub(h.lastRefill)
	h.lastRefill = now
	h.tokens += elapsed.Seconds() * float64(h.icmp.RatePerSec)
	if max := float64(h.icmp.RatePerSec); h.tokens > max {
		h.tokens = max
	}
	if h.tokens < 1 {
		return false
	}
	h.tokens--
	return true
}

// sim.Rand fork labels; distinct constants keep the host's random streams
// independent of one another.
const (
	forkIPID = 0x1d01
	forkISN  = 0x1d02
)
