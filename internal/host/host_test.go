package host

import (
	"net/netip"
	"testing"
	"time"

	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/sim"
)

var (
	probeAddr = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	hostAddr  = netip.AddrFrom4([4]byte{10, 0, 0, 2})
)

type sink struct {
	pkts []*packet.Packet
}

func (s *sink) Input(f *netem.Frame) {
	p, err := packet.Decode(f.Materialize())
	if err != nil {
		panic(err)
	}
	s.pkts = append(s.pkts, p)
}

func (s *sink) drain() []*packet.Packet {
	out := s.pkts
	s.pkts = nil
	return out
}

func newHost(t *testing.T, p Profile) (*Host, *sink, *sim.Loop, *netem.FrameIDs) {
	t.Helper()
	loop := sim.NewLoop()
	out := &sink{}
	var ids netem.FrameIDs
	h := New(loop, p, hostAddr, sim.NewRand(11, 12), &ids, out)
	return h, out, loop, &ids
}

func echoReq(t *testing.T, ids *netem.FrameIDs, ident, seq uint16, n int) *netem.Frame {
	t.Helper()
	raw, err := packet.EncodeICMP(&packet.IPv4Header{Src: probeAddr, Dst: hostAddr, ID: 1},
		&packet.ICMPEcho{Type: packet.ICMPEchoRequest, Ident: ident, Seq: seq, Payload: make([]byte, n)})
	if err != nil {
		t.Fatal(err)
	}
	return &netem.Frame{ID: ids.Next(), Data: raw}
}

func TestEchoReply(t *testing.T) {
	h, out, _, ids := newHost(t, FreeBSD4())
	h.Input(echoReq(t, ids, 77, 3, 48))
	got := out.drain()
	if len(got) != 1 || got[0].ICMP == nil {
		t.Fatalf("want 1 echo reply, got %d packets", len(got))
	}
	r := got[0].ICMP
	if r.Type != packet.ICMPEchoReply || r.Ident != 77 || r.Seq != 3 || len(r.Payload) != 48 {
		t.Fatalf("reply fields: %+v", r)
	}
	if got[0].IP.Src != hostAddr || got[0].IP.Dst != probeAddr {
		t.Fatal("reply addressing wrong")
	}
	if h.EchoesAnswered() != 1 {
		t.Fatalf("EchoesAnswered = %d", h.EchoesAnswered())
	}
}

func TestEchoFiltered(t *testing.T) {
	h, out, _, ids := newHost(t, FilteredICMP(FreeBSD4()))
	h.Input(echoReq(t, ids, 1, 1, 8))
	if len(out.drain()) != 0 {
		t.Fatal("filtered host answered ICMP")
	}
}

func TestEchoRateLimit(t *testing.T) {
	h, out, loop, ids := newHost(t, RateLimitedICMP(FreeBSD4(), 5))
	for i := 0; i < 20; i++ {
		h.Input(echoReq(t, ids, 1, uint16(i), 8))
	}
	if n := len(out.drain()); n != 5 {
		t.Fatalf("burst of 20: %d replies, want 5 (bucket size)", n)
	}
	// After a second of virtual time the bucket refills.
	loop.RunFor(time.Second)
	for i := 0; i < 20; i++ {
		h.Input(echoReq(t, ids, 1, uint16(100+i), 8))
	}
	if n := len(out.drain()); n != 5 {
		t.Fatalf("after refill: %d replies, want 5", n)
	}
}

func TestEchoRateLimitSpacedRequests(t *testing.T) {
	h, out, loop, ids := newHost(t, RateLimitedICMP(FreeBSD4(), 10))
	// One request every 200ms: well under 10/s, all answered.
	for i := 0; i < 10; i++ {
		loop.RunFor(200 * time.Millisecond)
		h.Input(echoReq(t, ids, 1, uint16(i), 8))
	}
	if n := len(out.drain()); n != 10 {
		t.Fatalf("spaced requests: %d replies, want 10", n)
	}
}

func TestTCPDispatch(t *testing.T) {
	h, out, _, ids := newHost(t, FreeBSD4())
	raw, err := packet.EncodeTCP(&packet.IPv4Header{Src: probeAddr, Dst: hostAddr},
		&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 1, Flags: packet.FlagSYN, Window: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Input(&netem.Frame{ID: ids.Next(), Data: raw})
	got := out.drain()
	if len(got) != 1 || !got[0].TCP.HasFlags(packet.FlagSYN|packet.FlagACK) {
		t.Fatal("SYN to listening port not answered")
	}
}

func TestIgnoresOtherDestinations(t *testing.T) {
	h, out, _, ids := newHost(t, FreeBSD4())
	other := netip.AddrFrom4([4]byte{10, 9, 9, 9})
	raw, err := packet.EncodeICMP(&packet.IPv4Header{Src: probeAddr, Dst: other},
		&packet.ICMPEcho{Type: packet.ICMPEchoRequest, Ident: 1, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.Input(&netem.Frame{ID: ids.Next(), Data: raw})
	if len(out.drain()) != 0 {
		t.Fatal("host answered traffic for another address")
	}
}

func TestEchoReplyCarriesIPID(t *testing.T) {
	h, out, _, ids := newHost(t, FreeBSD4()) // global counter from 1
	h.Input(echoReq(t, ids, 1, 1, 8))
	h.Input(echoReq(t, ids, 1, 2, 8))
	got := out.drain()
	if len(got) != 2 {
		t.Fatal("missing replies")
	}
	if got[1].IP.ID != got[0].IP.ID+1 {
		t.Fatalf("IPIDs %d,%d not sequential", got[0].IP.ID, got[1].IP.ID)
	}
}

func TestProfileCatalogDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Catalog() {
		if p.Name == "" || seen[p.Name] {
			t.Fatalf("profile name %q empty or duplicated", p.Name)
		}
		seen[p.Name] = true
		if p.IPID == nil {
			t.Fatalf("profile %s missing IPID factory", p.Name)
		}
		if len(p.Ports) == 0 {
			t.Fatalf("profile %s listens on no ports", p.Name)
		}
	}
}

func TestProfileIPIDPolicies(t *testing.T) {
	cases := map[string]string{
		"freebsd4": "global-counter",
		"linux24":  "zero",
		"openbsd3": "random",
		"solaris8": "per-destination",
	}
	for _, p := range Catalog() {
		want, ok := cases[p.Name]
		if !ok {
			continue
		}
		h, _, _, _ := newHost(t, p)
		if got := h.IPIDPolicy(); got != want {
			t.Errorf("%s IPID policy = %q, want %q", p.Name, got, want)
		}
	}
}

func TestHostDeterministic(t *testing.T) {
	// Two identically seeded hosts answer a SYN with the same ISS.
	mk := func() uint32 {
		h, out, _, ids := newHost(t, FreeBSD4())
		raw, _ := packet.EncodeTCP(&packet.IPv4Header{Src: probeAddr, Dst: hostAddr},
			&packet.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 1, Flags: packet.FlagSYN, Window: 1000}, nil)
		h.Input(&netem.Frame{ID: ids.Next(), Data: raw})
		return out.drain()[0].TCP.Seq
	}
	if mk() != mk() {
		t.Fatal("same-seeded hosts diverged")
	}
}
