//go:build linux

package livewire

import (
	"net/netip"
	"os"
	"testing"

	"reorder/internal/core"
)

// Conn must satisfy the measurement engine's Transport interface.
var _ core.Transport = (*Conn)(nil)

func TestDialRequiresIPv4(t *testing.T) {
	if _, err := Dial(netip.MustParseAddr("::1")); err == nil {
		t.Fatal("Dial accepted an IPv6 address")
	}
}

func TestDialPrivileges(t *testing.T) {
	c, err := Dial(netip.MustParseAddr("127.0.0.1"))
	if err != nil {
		// Expected without CAP_NET_RAW; the error must be descriptive.
		t.Logf("Dial failed as expected without privileges: %v", err)
		return
	}
	// Running privileged (e.g. in a root container): exercise the basics.
	defer c.Close()
	if c.LocalAddr() != netip.MustParseAddr("127.0.0.1") {
		t.Error("LocalAddr mismatch")
	}
	if c.Now() < 0 {
		t.Error("Now went backwards")
	}
	if os.Geteuid() != 0 {
		t.Log("raw sockets available without euid 0 (CAP_NET_RAW)")
	}
}
