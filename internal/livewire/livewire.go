//go:build linux

// Package livewire implements the core.Transport interface over Linux raw
// sockets, the real-network counterpart of internal/simnet. It is the
// moral equivalent of sting's packet-filter access: the prober crafts
// whole IPv4 datagrams and receives raw TCP and ICMP traffic without
// involving the kernel's TCP state machine.
//
// Requirements, exactly as the paper's tool had: CAP_NET_RAW (or root), a
// network vantage point, and firewall rules that keep the kernel from
// answering the prober's connections with RSTs (e.g. an iptables rule
// dropping outbound RST from the probe port range). None of this exists in
// the offline build/test environment, so this package is exercised only
// for compilation and graceful failure; all experiments run on simnet.
//
// Frame IDs are synthesized locally (send and receive counters) so that
// ground-truth-keyed code paths behave; there is of course no in-network
// capture to compare against on a live path.
package livewire

import (
	"errors"
	"fmt"
	"net/netip"
	"syscall"
	"time"

	"reorder/internal/sim"
)

// Conn is a raw-socket transport bound to a local IPv4 address.
type Conn struct {
	sendFD   int
	recvTCP  int
	recvICMP int
	local    netip.Addr
	start    time.Time
	nextID   uint64
}

// Dial opens the raw sockets. It fails with a permission error unless the
// process holds CAP_NET_RAW.
func Dial(local netip.Addr) (*Conn, error) {
	if !local.Is4() {
		return nil, errors.New("livewire: IPv4 local address required")
	}
	send, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_RAW)
	if err != nil {
		return nil, fmt.Errorf("livewire: send socket: %w", err)
	}
	// IPPROTO_RAW implies IP_HDRINCL: we provide complete datagrams.
	recvTCP, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_TCP)
	if err != nil {
		syscall.Close(send)
		return nil, fmt.Errorf("livewire: tcp receive socket: %w", err)
	}
	recvICMP, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_RAW, syscall.IPPROTO_ICMP)
	if err != nil {
		syscall.Close(send)
		syscall.Close(recvTCP)
		return nil, fmt.Errorf("livewire: icmp receive socket: %w", err)
	}
	return &Conn{
		sendFD: send, recvTCP: recvTCP, recvICMP: recvICMP,
		local: local, start: time.Now(),
	}, nil
}

// Close releases the sockets.
func (c *Conn) Close() error {
	var first error
	for _, fd := range []int{c.sendFD, c.recvTCP, c.recvICMP} {
		if err := syscall.Close(fd); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LocalAddr implements core.Transport.
func (c *Conn) LocalAddr() netip.Addr { return c.local }

// Send implements core.Transport: data must be a complete IPv4 datagram.
func (c *Conn) Send(data []byte) uint64 {
	if len(data) < 20 {
		return 0
	}
	var sa syscall.SockaddrInet4
	copy(sa.Addr[:], data[16:20])
	if err := syscall.Sendto(c.sendFD, data, 0, &sa); err != nil {
		return 0
	}
	c.nextID++
	return c.nextID
}

// Recv implements core.Transport: it polls both receive sockets until one
// has a datagram or the timeout expires.
func (c *Conn) Recv(timeout time.Duration) ([]byte, uint64, bool) {
	deadline := time.Now().Add(timeout)
	buf := make([]byte, 65536)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, 0, false
		}
		var fds syscall.FdSet
		nfds := 0
		for _, fd := range []int{c.recvTCP, c.recvICMP} {
			fds.Bits[fd/64] |= 1 << (uint(fd) % 64)
			if fd >= nfds {
				nfds = fd + 1
			}
		}
		tv := syscall.NsecToTimeval(remaining.Nanoseconds())
		n, err := syscall.Select(nfds, &fds, nil, nil, &tv)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return nil, 0, false
		}
		if n == 0 {
			return nil, 0, false // timeout
		}
		for _, fd := range []int{c.recvTCP, c.recvICMP} {
			if fds.Bits[fd/64]&(1<<(uint(fd)%64)) == 0 {
				continue
			}
			nr, _, err := syscall.Recvfrom(fd, buf, syscall.MSG_DONTWAIT)
			if err != nil || nr <= 0 {
				continue
			}
			data := make([]byte, nr)
			copy(data, buf[:nr])
			c.nextID++
			return data, c.nextID, true
		}
	}
}

// Sleep implements core.Transport with a real sleep; on a live path gap
// precision is limited by the host's timer resolution, a caveat the paper
// shares.
func (c *Conn) Sleep(d time.Duration) { time.Sleep(d) }

// Now implements core.Transport as nanoseconds since Dial.
func (c *Conn) Now() sim.Time { return sim.Time(time.Since(c.start)) }
