package simnet

import (
	"bytes"
	"testing"
	"time"

	"reorder/internal/host"
	"reorder/internal/packet"
)

// chainSpec is a three-router line with a cross host and one background
// flow — enough structure to exercise multi-hop forwarding, endpoint
// demultiplexing and flow scheduling at once.
func chainSpec() *TopologySpec {
	return &TopologySpec{
		Routers: []RouterSpec{{Name: "r0"}, {Name: "r1"}, {Name: "r2"}},
		Links: []LinkSpec{
			{A: "r0", B: "r1"},
			{A: "r1", B: "r2"},
		},
		CrossHosts: []CrossHostSpec{{Name: "x0", Router: "r1", Profile: host.Linux24()}},
		Flows:      []FlowSpec{{Router: "r0", To: "x0", Bytes: 64 << 10}},
	}
}

func graphConfig(seed uint64, spec *TopologySpec) Config {
	return Config{Seed: seed, Server: host.FreeBSD4(), Topology: spec}
}

func TestGraphRoundTrip(t *testing.T) {
	n := New(graphConfig(21, chainSpec()))
	if len(n.Routers) != 3 {
		t.Fatalf("Routers = %d, want 3", len(n.Routers))
	}
	if len(n.Senders) != 1 {
		t.Fatalf("Senders = %d, want 1", len(n.Senders))
	}
	p := n.Probe()
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
		&packet.TCPHeader{SrcPort: 5000, DstPort: 80, Seq: 9, Flags: packet.FlagSYN, Window: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Send(raw)
	data, _, ok := p.Recv(time.Second)
	if !ok {
		t.Fatal("no reply across the routed graph within 1s of virtual time")
	}
	reply, err := packet.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.TCP.HasFlags(packet.FlagSYN|packet.FlagACK) || reply.TCP.Ack != 10 {
		t.Fatalf("reply = %s", reply.Summary())
	}
	// Two inter-router hops at 1ms each plus two access hops each way: the
	// RTT must reflect the multi-hop path, not the p2p default.
	if rtt := p.Now().Duration(); rtt < 4*time.Millisecond {
		t.Errorf("virtual RTT = %v, implausibly short for a 3-router path", rtt)
	}
	st := n.Stats()
	if st.ElemIn == 0 || st.ElemOut == 0 {
		t.Fatalf("router/link counters empty: %+v", st)
	}
}

func TestGraphCrossTrafficCompletes(t *testing.T) {
	n := New(graphConfig(22, chainSpec()))
	n.Loop.RunUntil(60 * 1e9)
	s := n.Senders[0]
	if !s.Done() {
		t.Fatalf("background flow incomplete: %+v", s.Stats())
	}
	if got := s.Stats().BytesAcked; got != 64<<10 {
		t.Fatalf("BytesAcked = %d, want %d", got, 64<<10)
	}
}

func TestGraphResetMatchesFresh(t *testing.T) {
	specs := []Config{
		graphConfig(31, chainSpec()),
		{Seed: 32, Server: host.Linux24()}, // graph -> p2p transition
		graphConfig(33, &TopologySpec{
			Routers: []RouterSpec{{Name: "a"}, {Name: "b"}},
			Links:   []LinkSpec{{A: "a", B: "b", Parallel: 2, RateBps: 6_000_000}},
			CrossHosts: []CrossHostSpec{
				{Name: "x0", Router: "b", Profile: host.Linux24()},
				{Name: "x1", Router: "b", Profile: host.FreeBSD4()},
			},
			Flows: []FlowSpec{
				{Router: "a", To: "x0", Bytes: 96 << 10},
				{Router: "a", To: "x1", Bytes: 96 << 10, Start: 5 * time.Millisecond},
			},
		}),
		graphConfig(31, chainSpec()), // revisit: full pool reuse
	}
	reused := New(specs[0])
	for i, cfg := range specs {
		if i > 0 {
			// Leave the previous scenario mid-flight so Reset must recover
			// from scheduled events and partially run flows.
			reused.Loop.RunUntil(20 * 1e6)
			reused.Reset(cfg)
		}
		fresh := New(cfg)
		fd, fid, ft := synProbe(t, fresh)
		rd, rid, rt := synProbe(t, reused)
		if !bytes.Equal(fd, rd) {
			t.Fatalf("config %d: reset graph replied %x, fresh %x", i, rd, fd)
		}
		if fid != rid {
			t.Fatalf("config %d: frame IDs diverged: reset %d, fresh %d", i, rid, fid)
		}
		if ft != rt {
			t.Fatalf("config %d: receive times diverged: reset %v, fresh %v", i, rt, ft)
		}
	}
}

func TestGraphEmptySpecIsDegenerate(t *testing.T) {
	// An empty TopologySpec must take the exact point-to-point build path:
	// same reply bytes, frame IDs and timing as a nil Topology.
	base := Config{Seed: 41, Server: host.FreeBSD4(), Forward: PathSpec{SwapProb: 0.3}}
	withEmpty := base
	withEmpty.Topology = &TopologySpec{}
	d1, id1, t1 := synProbe(t, New(base))
	d2, id2, t2 := synProbe(t, New(withEmpty))
	if !bytes.Equal(d1, d2) || id1 != id2 || t1 != t2 {
		t.Fatal("empty TopologySpec diverged from the nil degenerate case")
	}
}

func TestGraphDeterminismAcrossRuns(t *testing.T) {
	run := func() (int, time.Duration) {
		n := New(graphConfig(51, chainSpec()))
		n.Loop.RunUntil(30 * 1e9)
		st := n.Senders[0].Stats()
		return st.BytesAcked, st.Elapsed
	}
	b1, e1 := run()
	b2, e2 := run()
	if b1 != b2 || e1 != e2 {
		t.Fatalf("same seed diverged: (%d, %v) vs (%d, %v)", b1, e1, b2, e2)
	}
}

func TestGraphDisconnectedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("disconnected topology did not panic")
		}
	}()
	New(graphConfig(61, &TopologySpec{
		Routers: []RouterSpec{{Name: "a"}, {Name: "b"}},
	}))
}
