package simnet

import (
	"testing"
	"time"

	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/packet"
)

func TestProbeSendRecvRoundTrip(t *testing.T) {
	n := New(Config{Seed: 1, Server: host.FreeBSD4()})
	p := n.Probe()

	// Hand-roll a SYN to the server and expect a SYN/ACK back through the
	// full path.
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
		&packet.TCPHeader{SrcPort: 5000, DstPort: 80, Seq: 9, Flags: packet.FlagSYN, Window: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := p.Send(raw)
	if id == 0 {
		t.Fatal("Send returned zero frame ID")
	}
	data, _, ok := p.Recv(time.Second)
	if !ok {
		t.Fatal("no reply within 1s of virtual time")
	}
	reply, err := packet.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.TCP.HasFlags(packet.FlagSYN|packet.FlagACK) || reply.TCP.Ack != 10 {
		t.Fatalf("reply = %s", reply.Summary())
	}
	// Round trip took two 5ms propagation delays plus serialization.
	if rtt := p.Now().Duration(); rtt < 10*time.Millisecond || rtt > 15*time.Millisecond {
		t.Errorf("virtual RTT = %v, want ≈10ms", rtt)
	}
}

func TestRecvTimeoutAdvancesClock(t *testing.T) {
	n := New(Config{Seed: 1, Server: host.FreeBSD4()})
	p := n.Probe()
	start := p.Now()
	if _, _, ok := p.Recv(100 * time.Millisecond); ok {
		t.Fatal("Recv returned data on an idle network")
	}
	if got := p.Now().Sub(start); got != 100*time.Millisecond {
		t.Fatalf("clock advanced %v, want exactly the timeout", got)
	}
}

func TestCapturesSeeTraffic(t *testing.T) {
	n := New(Config{Seed: 1, Server: host.FreeBSD4()})
	p := n.Probe()
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
		&packet.TCPHeader{SrcPort: 5000, DstPort: 80, Seq: 9, Flags: packet.FlagSYN, Window: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := p.Send(raw)
	p.Recv(time.Second)
	if n.ProbeEgress.Len() != 1 || n.HostIngress.Len() != 1 {
		t.Fatalf("forward captures: egress=%d ingress=%d", n.ProbeEgress.Len(), n.HostIngress.Len())
	}
	if n.HostEgress.Len() != 1 || n.ProbeIngress.Len() != 1 {
		t.Fatalf("reverse captures: egress=%d ingress=%d", n.HostEgress.Len(), n.ProbeIngress.Len())
	}
	if _, ok := n.HostIngress.Position(id); !ok {
		t.Fatal("sent frame ID not in host ingress capture")
	}
	n.ResetCaptures()
	if n.ProbeEgress.Len() != 0 {
		t.Fatal("ResetCaptures did not clear")
	}
}

func TestSleepAccumulatesInbox(t *testing.T) {
	n := New(Config{Seed: 1, Server: host.FreeBSD4()})
	p := n.Probe()
	raw, _ := packet.EncodeTCP(
		&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
		&packet.TCPHeader{SrcPort: 5001, DstPort: 80, Seq: 9, Flags: packet.FlagSYN, Window: 1000}, nil)
	p.Send(raw)
	p.Sleep(time.Second) // reply arrives during the sleep
	data, _, ok := p.Recv(0)
	if !ok || data == nil {
		t.Fatal("reply not queued in inbox during Sleep")
	}
	p.Flush()
	if _, _, ok := p.Recv(0); ok {
		t.Fatal("Flush did not empty the inbox")
	}
}

func TestForwardSwapperAffectsOnlyForwardPath(t *testing.T) {
	n := New(Config{
		Seed:    3,
		Server:  host.FreeBSD4(),
		Forward: PathSpec{SwapProb: 1.0},
	})
	p := n.Probe()
	mk := func(seq uint32) []byte {
		raw, err := packet.EncodeTCP(
			&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
			&packet.TCPHeader{SrcPort: 5002, DstPort: 80, Seq: seq, Flags: packet.FlagACK}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	id1 := p.Send(mk(1))
	id2 := p.Send(mk(2))
	p.Sleep(time.Second)
	ex, ok := n.HostIngress.Exchanged(id1, id2)
	if !ok {
		t.Fatal("frames not captured at host ingress")
	}
	if !ex {
		t.Fatal("always-swap forward path did not exchange the pair")
	}
}

func TestLoadBalancedScenario(t *testing.T) {
	n := New(Config{
		Seed:     4,
		Backends: []host.Profile{host.FreeBSD4(), host.Linux22(), host.Windows2000(), host.Solaris8()},
	})
	if n.LB == nil || len(n.Hosts) != 4 {
		t.Fatalf("LB=%v hosts=%d", n.LB, len(n.Hosts))
	}
	p := n.Probe()
	// Distinct source ports land on (generally) distinct backends, but a
	// single flow always reaches exactly one; every SYN gets one SYN/ACK.
	for sport := uint16(6000); sport < 6008; sport++ {
		raw, err := packet.EncodeTCP(
			&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
			&packet.TCPHeader{SrcPort: sport, DstPort: 80, Seq: 1, Flags: packet.FlagSYN, Window: 1000}, nil)
		if err != nil {
			t.Fatal(err)
		}
		p.Send(raw)
		if _, _, ok := p.Recv(time.Second); !ok {
			t.Fatalf("no SYN/ACK for sport %d", sport)
		}
	}
	st := n.LB.Stats()
	if st.In != 8 || st.Out != 8 {
		t.Fatalf("LB stats: %+v", st)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		n := New(Config{Seed: 42, Server: host.FreeBSD4(), Forward: PathSpec{SwapProb: 0.3}})
		p := n.Probe()
		var ids []uint64
		for i := uint32(0); i < 20; i++ {
			raw, _ := packet.EncodeTCP(
				&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
				&packet.TCPHeader{SrcPort: 7000, DstPort: 80, Seq: i, Flags: packet.FlagACK}, nil)
			p.Send(raw)
		}
		p.Sleep(time.Second)
		for _, r := range n.HostIngress.Records() {
			ids = append(ids, r.FrameID)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("capture lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different packet orders")
		}
	}
}

func TestTrunkPathSpec(t *testing.T) {
	n := New(Config{
		Seed:   5,
		Server: host.FreeBSD4(),
		Forward: PathSpec{
			Trunk: &netem.TrunkConfig{FanOut: 2, BurstProb: 0.5, MeanBurstBytes: 5000, RateBps: 100_000_000},
		},
	})
	p := n.Probe()
	// Pump pairs through; at least one should be exchanged by the trunk.
	exchanged := 0
	for i := 0; i < 50; i++ {
		mk := func(seq uint32) uint64 {
			raw, err := packet.EncodeTCP(
				&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
				&packet.TCPHeader{SrcPort: 7100, DstPort: 80, Seq: seq, Flags: packet.FlagACK}, nil)
			if err != nil {
				t.Fatal(err)
			}
			return p.Send(raw)
		}
		id1 := mk(1)
		id2 := mk(2)
		p.Sleep(50 * time.Millisecond)
		if ex, ok := n.HostIngress.Exchanged(id1, id2); ok && ex {
			exchanged++
		}
	}
	if exchanged == 0 {
		t.Fatal("striped trunk never exchanged a back-to-back pair in 50 tries")
	}
}
