package simnet

import (
	"reflect"
	"testing"
	"time"

	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/netem"
)

// runDiff probes the scenario twice — zero-copy views (the default) and
// netem.DebugForceMaterialize (every frame eagerly encoded and re-decoded)
// — and requires identical results. probe runs one measurement against a
// fresh Net built from cfg.
func runDiff(t *testing.T, name string, cfg Config, probe func(*core.Prober) (*core.Result, error)) {
	t.Helper()
	run := func(force bool) *core.Result {
		t.Helper()
		prev := netem.DebugForceMaterialize
		netem.DebugForceMaterialize = force
		defer func() { netem.DebugForceMaterialize = prev }()
		n := New(cfg)
		p := core.NewProber(n.Probe(), n.ServerAddr(), 4242)
		res, err := probe(p)
		if err != nil {
			t.Fatalf("%s (force=%v): %v", name, force, err)
		}
		return res
	}
	view := run(false)
	wire := run(true)
	if !reflect.DeepEqual(view, wire) {
		t.Errorf("%s: result differs between frame-view and force-materialize runs:\nview: %+v\nwire: %+v", name, view, wire)
	}
}

// TestViewDifferentialFragmentPath covers the mid-path materialization the
// campaign catalog does not reach: a small-MTU reverse hop fragments the
// server's data segments (the server runs without PMTUD so its packets
// carry no DF), the fragments ride an adjacent-swap hop, and the probe
// reassembles. View-built frames must materialize at the fragmenter and
// produce exactly the measurement the all-bytes path does.
func TestViewDifferentialFragmentPath(t *testing.T) {
	server := host.FreeBSD4()
	server.TCP.DisablePMTUD = true
	server.TCP.ObjectSize = 4096
	cfg := Config{
		Seed:    7,
		Server:  server,
		Forward: PathSpec{},
		Reverse: PathSpec{MTU: 128, SwapProb: 0.25},
	}
	runDiff(t, "fragment", cfg, func(p *core.Prober) (*core.Result, error) {
		return p.DataTransferTest(core.TransferOptions{IdleTimeout: 500 * time.Millisecond})
	})
}

// TestViewDifferentialCorruptPath covers the byte-mutating element: a
// Corrupter flips bits in flight on both directions, which forces
// materialization plus a copy, and the damaged datagrams must be dropped at
// the receivers' checksum validation exactly as the wire path drops them.
func TestViewDifferentialCorruptPath(t *testing.T) {
	cfg := Config{
		Seed:    11,
		Server:  host.Linux22(),
		Forward: PathSpec{Corrupt: 0.15},
		Reverse: PathSpec{Corrupt: 0.15, SwapProb: 0.1},
	}
	runDiff(t, "corrupt", cfg, func(p *core.Prober) (*core.Result, error) {
		return p.SingleConnectionTest(core.SCTOptions{Samples: 6, Reversed: true})
	})
	// The corrupting hops must actually have fired for the comparison to
	// mean anything.
	n := New(cfg)
	pr := core.NewProber(n.Probe(), n.ServerAddr(), 4242)
	if _, err := pr.SingleConnectionTest(core.SCTOptions{Samples: 6, Reversed: true}); err != nil {
		t.Fatal(err)
	}
	fired := false
	for _, c := range n.pool.usedCorrupters {
		if c.el.Stats().Swapped > 0 {
			fired = true
		}
	}
	if !fired {
		t.Fatal("corrupter never damaged a frame; the differential comparison is vacuous")
	}
}
