package simnet

import (
	"net/netip"
	"time"

	"reorder/internal/netem"
	"reorder/internal/sim"
)

// Dir names one direction of the probe's path.
type Dir int

const (
	// DirForward is probe → server, DirReverse is server → probe.
	DirForward Dir = iota
	DirReverse
)

// ScenarioOp is the kind of one timeline mutation.
type ScenarioOp int

const (
	// OpLinkRate retargets the direction's access-link rate (Rate; at or
	// below zero reasserts the current rate — a deliberate no-op edge).
	OpLinkRate ScenarioOp = iota
	// OpLinkQueue retargets the access link's droptail capacity (Queue;
	// negative keeps the current capacity, zero lifts the bound).
	OpLinkQueue
	// OpLoss retargets the direction's drop probability (Prob).
	OpLoss
	// OpCorrupt retargets the direction's corruption probability (Prob).
	OpCorrupt
	// OpSwap retargets the direction's adjacent-swap probability (Prob).
	OpSwap
	// OpRouteFlap repoints a topology router's route (Router, Dst) at the
	// port group of another spec link bundle (Link, an index into
	// TopologySpec.Links). Ignored on point-to-point scenarios and when the
	// named router does not terminate that bundle.
	OpRouteFlap
	// OpMiddlebox flips the direction's middlebox on or off (Active), the
	// hard start/stop edge for adversarial behavior.
	OpMiddlebox
)

// TimelineStep is one declarative mutation at virtual time At. Which other
// fields are read depends on Op; see the ScenarioOp constants.
type TimelineStep struct {
	At time.Duration
	Op ScenarioOp

	Dir    Dir
	Rate   int64
	Queue  int
	Prob   float64
	Router string
	Dst    string // route-flap destination: "server" or "probe"
	Link   int
	Active bool
}

// ScenarioSpec is the declarative time-varying/adversarial overlay on a
// scenario: optional per-direction middlebox elements plus a timeline of
// impairment mutations applied mid-flow by loop timers (netem.Schedule).
// A nil spec — and a spec with no middleboxes and no steps — is the static
// scenario, byte-identical to builds before scenarios existed. Specs are
// shared, read-only catalog values: the builder never mutates one.
type ScenarioSpec struct {
	// Middlebox and ReverseMiddlebox, when set, insert an adversarial
	// element (netem.Middlebox) at the probe-side entry of the forward
	// (resp. server-side entry of the reverse) path.
	Middlebox        *netem.MiddleboxConfig
	ReverseMiddlebox *netem.MiddleboxConfig
	// Steps is the timeline, applied in At order (stable for equal times).
	Steps []TimelineStep
}

// middlebox returns the middlebox config for direction d, nil for none.
func (s *ScenarioSpec) middlebox(d Dir) *netem.MiddleboxConfig {
	if s == nil {
		return nil
	}
	if d == DirForward {
		return s.Middlebox
	}
	return s.ReverseMiddlebox
}

// pathNeeds flags elements a direction's path must materialize even at zero
// static probability, because a timeline step retargets them mid-flow.
type pathNeeds struct {
	loss, corrupt, swap bool
}

// needs scans the timeline for elements direction d must pre-build. Forcing
// an element consumes an extra construction fork, which is why only
// scenario-bearing configs (whose campaign seeds are scenario-mixed) ever
// have non-zero needs.
func (s *ScenarioSpec) needs(d Dir) pathNeeds {
	var need pathNeeds
	if s == nil {
		return need
	}
	for i := range s.Steps {
		st := &s.Steps[i]
		if st.Dir != d {
			continue
		}
		switch st.Op {
		case OpLoss:
			need.loss = true
		case OpCorrupt:
			need.corrupt = true
		case OpSwap:
			need.swap = true
		}
	}
	return need
}

// dirElems records the retargetable elements of one direction of the live
// topology, filled during construction and consumed by timeline resolution.
type dirElems struct {
	link      *netem.Link
	loss      *netem.Loss
	corrupter *netem.Corrupter
	swapper   *netem.Swapper
	mb        *netem.Middlebox
}

// resolvedStep is a TimelineStep bound to the live topology: element
// pointers instead of names and indices, ready to apply without lookups.
type resolvedStep struct {
	at      sim.Time
	op      ScenarioOp
	link    *netem.Link
	loss    *netem.Loss
	corrupt *netem.Corrupter
	swap    *netem.Swapper
	mb      *netem.Middlebox
	router  *netem.Router
	dst     netip.Addr
	group   int
	rate    int64
	queue   int
	prob    float64
	active  bool
}

// startTimeline resolves cfg.Scenario's steps against the just-built
// topology and arms the pooled schedule. It draws no randomness — timeline
// resolution is pure plumbing, so a scenario's schedule never shifts the
// construction streams. Steps that reference elements the scenario did not
// materialize (or routes a point-to-point build has none of) are silently
// dropped: the catalog is declarative and a step that cannot bind is a
// no-op, not a panic, exactly like an impairment probability of zero.
func (n *Net) startTimeline(cfg Config) {
	n.scnLive = false
	scn := cfg.Scenario
	if scn == nil || len(scn.Steps) == 0 {
		return
	}
	n.scnLive = true
	if n.pool.schedule == nil {
		n.pool.schedule = netem.NewSchedule(n.Loop)
		n.applyFn = n.applyStep
	} else {
		n.pool.schedule.Reinit(n.Loop)
	}
	steps := n.pool.scnSteps[:0]
	for i := range scn.Steps {
		if rs, ok := n.resolveStep(cfg, &scn.Steps[i]); ok {
			steps = append(steps, rs)
		}
	}
	n.pool.scnSteps = steps
	// Pointers into scnSteps are taken only after the slice stops growing.
	for i := range steps {
		n.pool.schedule.Add(steps[i].at, n.applyFn, &steps[i])
	}
	n.pool.schedule.Start()
}

// resolveStep binds one spec step to live elements, reporting false when
// the step has nothing to act on in this build.
func (n *Net) resolveStep(cfg Config, st *TimelineStep) (resolvedStep, bool) {
	rs := resolvedStep{at: sim.Time(0).Add(st.At), op: st.Op}
	d := &n.dirs[dirIndex(st.Dir)]
	switch st.Op {
	case OpLinkRate:
		rs.link, rs.rate = d.link, st.Rate
		return rs, rs.link != nil
	case OpLinkQueue:
		rs.link, rs.queue = d.link, st.Queue
		return rs, rs.link != nil
	case OpLoss:
		rs.loss, rs.prob = d.loss, st.Prob
		return rs, rs.loss != nil
	case OpCorrupt:
		rs.corrupt, rs.prob = d.corrupter, st.Prob
		return rs, rs.corrupt != nil
	case OpSwap:
		rs.swap, rs.prob = d.swapper, st.Prob
		return rs, rs.swap != nil
	case OpMiddlebox:
		rs.mb, rs.active = d.mb, st.Active
		return rs, rs.mb != nil
	case OpRouteFlap:
		t := cfg.Topology
		if !t.isGraph() || st.Link < 0 || st.Link >= len(t.Links) {
			return rs, false
		}
		ri := t.routerIndex(st.Router)
		if ri < 0 {
			return rs, false
		}
		l := &t.Links[st.Link]
		g := &n.pool.graph
		switch ri {
		case t.routerIndex(l.A):
			rs.group = g.groupAB[st.Link]
		case t.routerIndex(l.B):
			rs.group = g.groupBA[st.Link]
		default:
			return rs, false // bundle does not terminate at this router
		}
		switch st.Dst {
		case "server":
			rs.dst = n.serverAddr
		case "probe":
			rs.dst = n.probeAddr
		default:
			return rs, false
		}
		rs.router = n.Routers[ri]
		return rs, true
	}
	return rs, false
}

// applyStep is the schedule's single cached callback: one switch over the
// bound step, no per-step closures.
func (n *Net) applyStep(arg any) {
	s := arg.(*resolvedStep)
	switch s.op {
	case OpLinkRate:
		if s.rate > 0 {
			s.link.SetRate(s.rate)
		} else {
			// Reassert the current rate: a genuine write, zero effect —
			// the edge the zero-magnitude differential tests ride.
			s.link.SetRate(s.link.Rate())
		}
	case OpLinkQueue:
		if s.queue >= 0 {
			s.link.SetQueueLimit(s.queue)
		} else {
			s.link.SetQueueLimit(s.link.QueueLimit())
		}
	case OpLoss:
		s.loss.SetProb(s.prob)
	case OpCorrupt:
		s.corrupt.SetProb(s.prob)
	case OpSwap:
		s.swap.SetProb(s.prob)
	case OpMiddlebox:
		s.mb.SetActive(s.active)
	case OpRouteFlap:
		s.router.SetRoute(s.dst, s.group)
	}
}

// dirIndex maps a Dir to its dirElems slot, tolerating out-of-range values
// from fuzzed specs.
func dirIndex(d Dir) int {
	if d == DirReverse {
		return 1
	}
	return 0
}

// ScenarioApplied returns how many timeline steps have fired in the current
// build (zero when the build carries no scenario).
func (n *Net) ScenarioApplied() uint64 {
	if !n.scnLive {
		return 0
	}
	return n.pool.schedule.Applied()
}
