package simnet

import (
	"net/netip"
	"time"

	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/sim"
	"reorder/internal/tcpsender"
	"reorder/internal/trace"
)

// TopologySpec describes a scenario as a routed graph instead of a single
// prober↔target pipe: named routers joined by bundles of parallel
// queue-limited links, with the probe and the published server attached at
// (possibly different) routers, optional cross-traffic hosts parked at
// routers, and background TCP flows loading the shared links while a probe
// runs. Queueing delay, droptail loss and — on multi-link bundles —
// reordering are all emergent: they happen because traffic contends for
// the same FIFO queues, not because any element drew a probability.
//
// The zero/empty spec (no routers) is the degenerate two-node case: the
// same constructor builds the classic point-to-point pipe, byte-identical
// to a nil Topology.
type TopologySpec struct {
	// Routers are the graph's forwarding nodes.
	Routers []RouterSpec
	// Links join routers with bundles of parallel equal-cost links.
	Links []LinkSpec
	// CrossHosts are additional addressable endpoints attached to routers,
	// the destinations cross-traffic flows pour into.
	CrossHosts []CrossHostSpec
	// Flows are background TCP transfers (tcpsender sources attached to
	// routers) that load the graph's links during a probe.
	Flows []FlowSpec
	// ProbeRouter and TargetRouter name the attachment points of the
	// probe's access path and the server's access link. Defaults: the
	// first and last router.
	ProbeRouter, TargetRouter string
	// AccessRate and AccessDelay parameterize every endpoint access link
	// (server, cross hosts, flow sources). Defaults: 1 Gbps, 200µs — fast
	// enough that endpoint attachment never masks the bottlenecks under
	// study.
	AccessRate  int64
	AccessDelay time.Duration
}

// RouterSpec names one forwarding node.
type RouterSpec struct {
	Name string
}

// LinkSpec is a bundle of Parallel equal-cost links joining routers A and
// B (both directions). Bundles with Parallel > 1 are sprayed per-packet
// round-robin by the upstream router — the §V "parallelism in network
// devices" reordering cause, here driven by real queue contention.
type LinkSpec struct {
	A, B string
	// Parallel is the number of equal-cost links in the bundle (default 1).
	Parallel int
	// RateBps is each link's line rate (default 10 Mbps).
	RateBps int64
	// Delay is each link's propagation delay (default 1ms).
	Delay time.Duration
	// QueueLimit is each link's droptail queue capacity in packets
	// (default 32).
	QueueLimit int
}

// CrossHostSpec parks an addressable endpoint at a router. Addresses are
// assigned by position: CrossHostAddr(i) for the i'th spec.
type CrossHostSpec struct {
	Name   string
	Router string
	// Profile is the host's implementation profile; it must listen on the
	// flow destination port (80) to sink cross traffic.
	Profile host.Profile
}

// FlowSpec is one background TCP transfer: a tcpsender attached at Router
// (address FlowSourceAddr(i)) pushing Bytes to the cross host named To.
type FlowSpec struct {
	Router string
	To     string
	// Bytes is the transfer size (default 256 KiB).
	Bytes int
	// MSS is the sender's segment size (default tcpsender's 1460).
	MSS int
	// Start is the virtual time the flow opens its connection.
	Start time.Duration
}

// Cross-traffic addressing: cross hosts and flow sources get fixed
// per-index addresses, disjoint from the probe (10.0.0.1) and server
// (10.0.1.1) blocks.
func CrossHostAddr(i int) netip.Addr { return netip.AddrFrom4([4]byte{10, 0, 2, byte(1 + i)}) }

// FlowSourceAddr returns the address of the i'th flow's sender.
func FlowSourceAddr(i int) netip.Addr { return netip.AddrFrom4([4]byte{10, 0, 3, byte(1 + i)}) }

// isGraph reports whether the spec describes a routed graph; nil and
// router-less specs build the degenerate point-to-point pipe.
func (t *TopologySpec) isGraph() bool { return t != nil && len(t.Routers) > 0 }

func (t *TopologySpec) accessLink() netem.LinkConfig {
	rate := t.AccessRate
	if rate == 0 {
		rate = 1_000_000_000
	}
	delay := t.AccessDelay
	if delay == 0 {
		delay = 200 * time.Microsecond
	}
	return netem.LinkConfig{RateBps: rate, PropDelay: delay}
}

func (l LinkSpec) config() netem.LinkConfig {
	cfg := netem.LinkConfig{RateBps: l.RateBps, PropDelay: l.Delay, QueueLimit: l.QueueLimit}
	if cfg.RateBps == 0 {
		cfg.RateBps = 10_000_000
	}
	if cfg.PropDelay == 0 {
		cfg.PropDelay = time.Millisecond
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = 32
	}
	return cfg
}

func (l LinkSpec) parallel() int {
	if l.Parallel <= 0 {
		return 1
	}
	return l.Parallel
}

func (t *TopologySpec) routerIndex(name string) int {
	for i := range t.Routers {
		if t.Routers[i].Name == name {
			return i
		}
	}
	return -1
}

func (t *TopologySpec) mustRouter(name, what string) int {
	if i := t.routerIndex(name); i >= 0 {
		return i
	}
	panic("simnet: topology " + what + " references unknown router " + name)
}

func (t *TopologySpec) probeRouter() int {
	if t.ProbeRouter == "" {
		return 0
	}
	return t.mustRouter(t.ProbeRouter, "probe attachment")
}

func (t *TopologySpec) targetRouter() int {
	if t.TargetRouter == "" {
		return len(t.Routers) - 1
	}
	return t.mustRouter(t.TargetRouter, "target attachment")
}

// senderEntry pairs a pooled cross-traffic sender with its retained random
// stream and a cached start closure, so rebuilding a graph schedules flow
// starts without per-build closure allocation.
type senderEntry struct {
	el      *tcpsender.Sender
	rng     *sim.Rand
	startFn func()
}

// graphScratch is the topology builder's reusable working storage: the
// per-edge port-group table and the BFS next-hop machinery.
type graphScratch struct {
	// groupAB and groupBA hold, per LinkSpec, the port-group index the
	// bundle registered on its A-side and B-side router.
	groupAB, groupBA []int
	// toward[r*nr+d] is the port group on router r leading toward router d
	// (unused for r == d).
	toward []int
	// prev and queue are the BFS scratch.
	prev, queue []int
}

// buildGraph wires a routed topology. Construction order — and therefore
// the order the build stream is consumed in — is frozen as part of the
// hermeticity contract: reverse probe access path, server host(s), cross
// hosts, flow senders, forward probe access path. Inter-router links and
// routing tables consume no randomness.
func (n *Net) buildGraph(cfg Config, rng *sim.Rand, tap func(*trace.Capture, netem.Node) netem.Node) {
	t := cfg.Topology
	nr := len(t.Routers)
	for i := range t.Routers {
		if t.routerIndex(t.Routers[i].Name) != i {
			panic("simnet: topology has duplicate router name " + t.Routers[i].Name)
		}
		n.Routers = append(n.Routers, n.getRouter())
	}
	pi, ti := t.probeRouter(), t.targetRouter()
	access := t.accessLink()

	// Inter-router bundles: one port group per spec link per direction,
	// each group holding Parallel queue-limited links into the far router.
	g := &n.pool.graph
	g.groupAB, g.groupBA = g.groupAB[:0], g.groupBA[:0]
	for _, l := range t.Links {
		a := t.mustRouter(l.A, "link")
		b := t.mustRouter(l.B, "link")
		lc := l.config()
		par := l.parallel()
		ab := make([]netem.Node, par)
		ba := make([]netem.Node, par)
		for p := 0; p < par; p++ {
			ab[p] = n.getLink(lc, n.Routers[b])
			ba[p] = n.getLink(lc, n.Routers[a])
		}
		g.groupAB = append(g.groupAB, n.Routers[a].AddGroup(ab...))
		g.groupBA = append(g.groupBA, n.Routers[b].AddGroup(ba...))
	}
	n.computeNextHops(t)

	// addRouteAll installs addr on every router: the local group at the
	// endpoint's home router, the precomputed next-hop group elsewhere.
	addRouteAll := func(addr netip.Addr, home, localGroup int) {
		for r := 0; r < nr; r++ {
			if r == home {
				n.Routers[r].AddRoute(addr, localGroup)
			} else {
				n.Routers[r].AddRoute(addr, g.toward[r*nr+home])
			}
		}
	}

	// Probe access, reverse direction: probe router -> [middlebox] ->
	// reverse path (the scenario's Reverse impairments) -> probe ingress
	// tap -> probe inbox.
	scn := cfg.Scenario
	revEntry := netem.Node(n.buildPath(n.pathRng(1, 2, rng), cfg.Reverse.defaults(), tap(n.ProbeIngress, n.probeSink), &n.dirs[1], scn.needs(DirReverse)))
	if mc := scn.middlebox(DirReverse); mc != nil {
		mb := n.getMiddlebox(*mc, rng, 9, revEntry)
		n.dirs[1].mb = mb
		revEntry = mb
	}
	addRouteAll(n.probeAddr, pi, n.Routers[pi].AddGroup(revEntry))

	// Server(s) behind the target router: host egress tap -> access uplink
	// -> target router; target router -> access downlink -> host ingress
	// tap -> server side.
	hostOut := tap(n.HostEgress, n.getLink(access, n.Routers[ti]))
	serverSide := n.buildServers(cfg, rng, hostOut)
	srvDown := n.getLink(access, tap(n.HostIngress, serverSide))
	addRouteAll(n.serverAddr, ti, n.Routers[ti].AddGroup(srvDown))

	// Cross hosts: plain endpoints, no capture taps.
	for i, ch := range t.CrossHosts {
		ri := t.mustRouter(ch.Router, "cross host "+ch.Name)
		addr := CrossHostAddr(i)
		up := n.getLink(access, n.Routers[ri])
		h := n.getHost(ch.Profile, addr, rng, uint64(200+i), up)
		n.Hosts = append(n.Hosts, h)
		down := n.getLink(access, h)
		addRouteAll(addr, ri, n.Routers[ri].AddGroup(down))
	}

	// Background flows: tcpsender sources, one per spec, started on the
	// loop at their configured times.
	for i, fl := range t.Flows {
		ri := t.mustRouter(fl.Router, "flow")
		dst := -1
		for j := range t.CrossHosts {
			if t.CrossHosts[j].Name == fl.To {
				dst = j
				break
			}
		}
		if dst < 0 {
			panic("simnet: topology flow references unknown cross host " + fl.To)
		}
		scfg := tcpsender.Config{Bytes: fl.Bytes, MSS: fl.MSS}
		if scfg.Bytes == 0 {
			scfg.Bytes = 256 << 10
		}
		src := FlowSourceAddr(i)
		up := n.getLink(access, n.Routers[ri])
		snd := n.getSender(scfg, src, CrossHostAddr(dst), rng, uint64(0x5e0d+i), up, fl.Start)
		down := n.getLink(access, snd)
		addRouteAll(src, ri, n.Routers[ri].AddGroup(down))
	}

	// Probe access, forward direction: probe egress tap -> [middlebox] ->
	// forward path (the scenario's Forward impairments) -> probe router.
	fwdEntry := netem.Node(n.buildPath(n.pathRng(0, 1, rng), cfg.Forward.defaults(), n.Routers[pi], &n.dirs[0], scn.needs(DirForward)))
	if mc := scn.middlebox(DirForward); mc != nil {
		mb := n.getMiddlebox(*mc, rng, 8, fwdEntry)
		n.dirs[0].mb = mb
		fwdEntry = mb
	}
	n.probe.egress = tap(n.ProbeEgress, fwdEntry)
}

// computeNextHops fills graph.toward with, for every (router r, destination
// router d) pair, the port group on r leading one hop closer to d — a BFS
// per destination over the link graph, neighbor order following spec order
// so routing is deterministic. Panics if the graph is disconnected.
func (n *Net) computeNextHops(t *TopologySpec) {
	g := &n.pool.graph
	nr := len(t.Routers)
	if cap(g.toward) < nr*nr {
		g.toward = make([]int, nr*nr)
		g.prev = make([]int, nr)
		g.queue = make([]int, 0, nr)
	}
	g.toward = g.toward[:nr*nr]
	g.prev = g.prev[:nr]

	// groupBetween returns the port group on router a for its first spec
	// bundle to neighbor b.
	groupBetween := func(a, b int) int {
		for li, l := range t.Links {
			la, lb := t.routerIndex(l.A), t.routerIndex(l.B)
			if la == a && lb == b {
				return g.groupAB[li]
			}
			if lb == a && la == b {
				return g.groupBA[li]
			}
		}
		return -1
	}

	for d := 0; d < nr; d++ {
		for i := range g.prev {
			g.prev[i] = -1
		}
		g.prev[d] = d
		q := append(g.queue[:0], d)
		for len(q) > 0 {
			x := q[0]
			q = q[1:]
			for _, l := range t.Links {
				a, b := t.mustRouter(l.A, "link"), t.mustRouter(l.B, "link")
				var nb int
				switch x {
				case a:
					nb = b
				case b:
					nb = a
				default:
					continue
				}
				if g.prev[nb] < 0 {
					g.prev[nb] = x
					q = append(q, nb)
				}
			}
		}
		for r := 0; r < nr; r++ {
			if r == d {
				continue
			}
			if g.prev[r] < 0 {
				panic("simnet: topology graph is disconnected (no route between " +
					t.Routers[r].Name + " and " + t.Routers[d].Name + ")")
			}
			// prev[r] was discovered from the d side, so it is r's next hop
			// toward d.
			g.toward[r*nr+d] = groupBetween(r, g.prev[r])
		}
	}
}

// getRouter returns a pooled router, Reinit'd for a fresh table.
func (n *Net) getRouter() *netem.Router {
	var r *netem.Router
	if k := len(n.pool.freeRouters); k > 0 {
		r = n.pool.freeRouters[k-1]
		n.pool.freeRouters = n.pool.freeRouters[:k-1]
		r.Reinit()
	} else {
		r = netem.NewRouter()
	}
	n.pool.usedRouters = append(n.pool.usedRouters, r)
	return r
}

// getSender returns a pooled cross-traffic sender reset for cfg (reseeding
// its retained stream exactly as a fresh fork would draw) and schedules its
// Start at the flow's configured virtual time.
func (n *Net) getSender(cfg tcpsender.Config, local, remote netip.Addr, rng *sim.Rand, label uint64, out netem.Node, start time.Duration) *tcpsender.Sender {
	var e senderEntry
	if k := len(n.pool.freeSenders); k > 0 {
		e = n.pool.freeSenders[k-1]
		n.pool.freeSenders = n.pool.freeSenders[:k-1]
		rng.ForkInto(e.rng, label)
		e.el.Reset(cfg, local, remote, e.rng, out)
	} else {
		child := rng.Fork(label)
		s := tcpsender.New(n.Loop, cfg, local, remote, n.IDs, child, out)
		e = senderEntry{el: s, rng: child, startFn: s.Start}
	}
	e.el.SetArena(n.arena)
	n.pool.usedSenders = append(n.pool.usedSenders, e)
	n.Senders = append(n.Senders, e.el)
	n.Loop.At(sim.Time(0).Add(start), e.startFn)
	return e.el
}
