// Package simnet assembles complete measurement scenarios: a probe host
// connected through configurable forward and reverse network paths to one
// simulated server (or a load-balanced pool of them), with ground-truth
// capture taps at the points the paper's controlled validation used
// (§IV-A). It provides the synchronous probe transport the measurement
// library (internal/core) drives.
package simnet

import (
	"net/netip"
	"time"

	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/sim"
	"reorder/internal/trace"
)

// PathSpec describes the impairments of one direction of the path.
type PathSpec struct {
	// LinkRate is the access link rate in bits per second (default 10 Mbps).
	LinkRate int64
	// Delay is the one-way propagation delay (default 5 ms).
	Delay time.Duration
	// Jitter adds uniform random extra delay in [0, Jitter) per packet.
	Jitter time.Duration
	// Loss is the independent drop probability.
	Loss float64
	// SwapProb enables a dummynet-style adjacent-packet swapper.
	SwapProb float64
	// SwapProbFn, if set, overrides SwapProb with a time-varying rate.
	SwapProbFn func(sim.Time) float64
	// Trunk, if set, inserts a striped parallel trunk (gap-dependent
	// reordering, Fig 7).
	Trunk *netem.TrunkConfig
	// MultiPath, if set, sprays packets per-packet across unequal paths
	// (the "multi-path routing" reordering cause).
	MultiPath *netem.MultiPathConfig
	// ARQ, if set, inserts a lossy layer-2 link with retransmission (the
	// "layer 2 retransmission" cause; wireless-style).
	ARQ *netem.ARQConfig
	// MTU, when nonzero, fragments oversized frames at the path entrance;
	// fragments traverse (and may be reordered by) the rest of the path.
	MTU int
	// Priority, if set, inserts a DiffServ-style strict-priority
	// scheduler (the remaining §V reordering cause; only flows with mixed
	// TOS markings are affected).
	Priority *netem.PriorityConfig
}

func (s PathSpec) defaults() PathSpec {
	if s.LinkRate == 0 {
		s.LinkRate = 10_000_000
	}
	if s.Delay == 0 {
		s.Delay = 5 * time.Millisecond
	}
	return s
}

// Config describes a scenario.
type Config struct {
	// Seed makes the whole scenario deterministic.
	Seed uint64
	// Forward and Reverse are the path impairments in each direction.
	Forward, Reverse PathSpec
	// Server is the host profile. Ignored if Backends is non-empty.
	Server host.Profile
	// Backends, when non-empty, places a transparent load balancer in
	// front of len(Backends) hosts that all answer as the server address.
	Backends []host.Profile
	// LBMode selects the balancing strategy (default HashFourTuple).
	LBMode netem.BalanceMode
	// DisableCaptures skips wiring the four ground-truth capture taps.
	// Taps are synchronous pass-throughs — they schedule no events and
	// consume no randomness — so disabling them changes nothing observable
	// about a measurement; campaigns, which never read captures, set this
	// to shed per-frame recording cost. The Net's capture fields remain
	// non-nil but stay empty.
	DisableCaptures bool
}

// Net is a wired-up scenario.
type Net struct {
	Loop *sim.Loop
	IDs  *netem.FrameIDs

	// Ground-truth captures, in the direction of travel:
	// HostIngress sees forward-path packets as the server receives them;
	// HostEgress sees reverse-path packets as the server sends them;
	// ProbeIngress sees reverse-path packets as the probe receives them;
	// ProbeEgress sees forward-path packets as the probe sends them.
	ProbeEgress, HostIngress, HostEgress, ProbeIngress *trace.Capture

	// Hosts are the servers behind the published address.
	Hosts []*host.Host

	// LB is the load balancer, if the scenario has one.
	LB *netem.LoadBalancer

	probe      *Probe
	endpoint   netem.Node // event-driven replacement for the probe inbox
	probeAddr  netip.Addr
	serverAddr netip.Addr

	// arena supplies the frames and wire bytes of everything transmitted
	// in this scenario; Reset rewinds it, which is what makes a reused Net
	// allocation-free at steady state.
	arena *netem.Arena
}

// Default addressing: one probe, one published server address.
var (
	DefaultProbeAddr  = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	DefaultServerAddr = netip.AddrFrom4([4]byte{10, 0, 1, 1})
)

// New builds the scenario.
func New(cfg Config) *Net {
	n := &Net{
		Loop:         sim.NewLoop(),
		IDs:          &netem.FrameIDs{},
		ProbeEgress:  trace.NewCapture("probe-egress"),
		HostIngress:  trace.NewCapture("host-ingress"),
		HostEgress:   trace.NewCapture("host-egress"),
		ProbeIngress: trace.NewCapture("probe-ingress"),
		probeAddr:    DefaultProbeAddr,
		serverAddr:   DefaultServerAddr,
		arena:        &netem.Arena{},
	}
	n.probe = &Probe{net: n, addr: n.probeAddr}
	n.build(cfg)
	return n
}

// Reset rewinds the scenario containers — event loop, frame arena, frame
// IDs, captures, probe inbox — and rebuilds the topology for cfg, exactly
// as New would. A reset Net is observably identical to a fresh New(cfg):
// construction consumes the seed's random streams in the same order, the
// clock restarts at zero and frame IDs restart at one. Campaign workers
// reuse one Net across thousands of targets this way, turning per-target
// scenario construction from the dominant allocation cost into a handful
// of small element structs.
func (n *Net) Reset(cfg Config) {
	n.Loop.Reset()
	n.arena.Reset()
	*n.IDs = netem.FrameIDs{}
	n.ProbeEgress.Reset()
	n.HostIngress.Reset()
	n.HostEgress.Reset()
	n.ProbeIngress.Reset()
	n.Hosts = n.Hosts[:0]
	n.LB = nil
	n.endpoint = nil
	n.probe.reset()
	n.build(cfg)
}

// build wires the topology for cfg onto the (fresh or reset) containers.
// The order of random-stream forks here is part of the hermeticity
// contract: Reset must consume cfg.Seed's streams exactly as New does.
func (n *Net) build(cfg Config) {
	loop := n.Loop
	rng := sim.NewRand(cfg.Seed, 0x5eed)

	// tap wires a capture point, or passes through untapped when captures
	// are disabled.
	tap := func(c *trace.Capture, next netem.Node) netem.Node {
		if cfg.DisableCaptures {
			return next
		}
		return c.Tap(loop, next)
	}

	// Reverse direction: host egress tap -> reverse path -> probe ingress
	// tap -> probe inbox.
	probeSink := netem.NodeFunc(func(f *netem.Frame) { n.probe.deliver(f) })
	revEntry := buildPath(loop, rng.Fork(2), cfg.Reverse.defaults(), tap(n.ProbeIngress, probeSink))
	hostOut := tap(n.HostEgress, revEntry)

	// Servers.
	var serverSide netem.Node
	if len(cfg.Backends) > 0 {
		backends := make([]netem.Node, len(cfg.Backends))
		for i, p := range cfg.Backends {
			h := host.New(loop, p, n.serverAddr, rng.Fork(uint64(100+i)), n.IDs, hostOut)
			h.SetArena(n.arena)
			n.Hosts = append(n.Hosts, h)
			backends[i] = h
		}
		n.LB = netem.NewLoadBalancer(cfg.LBMode, backends...)
		serverSide = n.LB
	} else {
		h := host.New(loop, cfg.Server, n.serverAddr, rng.Fork(100), n.IDs, hostOut)
		h.SetArena(n.arena)
		n.Hosts = append(n.Hosts, h)
		serverSide = h
	}

	// Forward direction: probe egress tap -> forward path -> host ingress
	// tap -> server side.
	fwdEntry := buildPath(loop, rng.Fork(1), cfg.Forward.defaults(), tap(n.HostIngress, serverSide))
	n.probe.egress = tap(n.ProbeEgress, fwdEntry)
}

// buildPath composes a direction's elements ending at dst and returns the
// entry node. Element order: access link (serialization + propagation),
// jitter, loss, swapper, striped trunk.
func buildPath(loop *sim.Loop, rng *sim.Rand, spec PathSpec, dst netem.Node) netem.Node {
	node := dst
	if spec.Trunk != nil {
		node = netem.NewStripedTrunk(loop, *spec.Trunk, rng.Fork(4), node)
	}
	if spec.MultiPath != nil {
		node = netem.NewMultiPath(loop, *spec.MultiPath, rng.Fork(6), node)
	}
	if spec.ARQ != nil {
		node = netem.NewARQLink(loop, *spec.ARQ, rng.Fork(5), node)
	}
	if spec.Priority != nil {
		node = netem.NewPriorityQueue(loop, *spec.Priority, node)
	}
	if spec.SwapProbFn != nil {
		node = netem.NewSwapperFunc(loop, spec.SwapProbFn, rng.Fork(3), node)
	} else if spec.SwapProb > 0 {
		node = netem.NewSwapper(loop, spec.SwapProb, rng.Fork(3), node)
	}
	if spec.Loss > 0 {
		node = netem.NewLoss(spec.Loss, rng.Fork(2), node)
	}
	if spec.Jitter > 0 {
		node = netem.NewDelay(loop, 0, spec.Jitter, rng.Fork(1), node)
	}
	if spec.MTU > 0 {
		node = netem.NewFragmenter(spec.MTU, node)
	}
	return netem.NewLink(loop, netem.LinkConfig{RateBps: spec.LinkRate, PropDelay: spec.Delay}, node)
}

// Probe returns the probe-side transport.
func (n *Net) Probe() *Probe { return n.probe }

// AttachEndpoint replaces the probe-side transport with an event-driven
// endpoint (e.g. a TCP sender under test): frames arriving on the reverse
// path are delivered to ingress instead of the probe inbox, and the
// returned node is the forward-path entry the endpoint transmits into.
// The probe transport must not be used afterwards.
func (n *Net) AttachEndpoint(ingress netem.Node) netem.Node {
	n.endpoint = ingress
	return n.probe.egress
}

// ProbeAddr returns the probe host's address.
func (n *Net) ProbeAddr() netip.Addr { return n.probeAddr }

// ServerAddr returns the published server address.
func (n *Net) ServerAddr() netip.Addr { return n.serverAddr }

// ResetCaptures clears all four ground-truth captures.
func (n *Net) ResetCaptures() {
	n.ProbeEgress.Reset()
	n.HostIngress.Reset()
	n.HostEgress.Reset()
	n.ProbeIngress.Reset()
}
