// Package simnet assembles complete measurement scenarios: a probe host
// connected through configurable forward and reverse network paths to one
// simulated server (or a load-balanced pool of them), with ground-truth
// capture taps at the points the paper's controlled validation used
// (§IV-A). It provides the synchronous probe transport the measurement
// library (internal/core) drives.
package simnet

import (
	"net/netip"
	"time"

	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/sim"
	"reorder/internal/tcpsender"
	"reorder/internal/trace"
)

// PathSpec describes the impairments of one direction of the path.
type PathSpec struct {
	// LinkRate is the access link rate in bits per second (default 10 Mbps).
	LinkRate int64
	// Delay is the one-way propagation delay (default 5 ms).
	Delay time.Duration
	// Jitter adds uniform random extra delay in [0, Jitter) per packet.
	Jitter time.Duration
	// Loss is the independent drop probability.
	Loss float64
	// Corrupt is the probability a datagram has one bit flipped in flight;
	// receivers drop damaged datagrams at checksum validation, so corruption
	// reads as loss. Corruption mutates wire bytes, which is what forces a
	// zero-copy frame view to materialize mid-path.
	Corrupt float64
	// SwapProb enables a dummynet-style adjacent-packet swapper.
	SwapProb float64
	// SwapProbFn, if set, overrides SwapProb with a time-varying rate.
	SwapProbFn func(sim.Time) float64
	// Trunk, if set, inserts a striped parallel trunk (gap-dependent
	// reordering, Fig 7).
	Trunk *netem.TrunkConfig
	// MultiPath, if set, sprays packets per-packet across unequal paths
	// (the "multi-path routing" reordering cause).
	MultiPath *netem.MultiPathConfig
	// ARQ, if set, inserts a lossy layer-2 link with retransmission (the
	// "layer 2 retransmission" cause; wireless-style).
	ARQ *netem.ARQConfig
	// MTU, when nonzero, fragments oversized frames at the path entrance;
	// fragments traverse (and may be reordered by) the rest of the path.
	MTU int
	// Priority, if set, inserts a DiffServ-style strict-priority
	// scheduler (the remaining §V reordering cause; only flows with mixed
	// TOS markings are affected).
	Priority *netem.PriorityConfig
}

func (s PathSpec) defaults() PathSpec {
	if s.LinkRate == 0 {
		s.LinkRate = 10_000_000
	}
	if s.Delay == 0 {
		s.Delay = 5 * time.Millisecond
	}
	return s
}

// Config describes a scenario.
type Config struct {
	// Seed makes the whole scenario deterministic.
	Seed uint64
	// Forward and Reverse are the path impairments in each direction.
	Forward, Reverse PathSpec
	// Topology, when it describes a routed graph (at least one router),
	// replaces the point-to-point wiring: the probe and server attach to
	// routers through their access paths (Forward/Reverse still apply to
	// the probe's access), and cross-traffic hosts, flows and shared
	// bottleneck links live between them. A nil or empty Topology is the
	// degenerate two-node case — the same constructor builds the classic
	// prober↔target pipe, byte-identically.
	Topology *TopologySpec
	// Scenario, when set, overlays a time-varying/adversarial scenario on
	// the topology: per-direction middlebox elements plus a timeline of
	// impairment mutations driven by loop timers. A nil Scenario is the
	// static case, byte-identical to builds before scenarios existed.
	Scenario *ScenarioSpec
	// Server is the host profile. Ignored if Backends is non-empty.
	Server host.Profile
	// Backends, when non-empty, places a transparent load balancer in
	// front of len(Backends) hosts that all answer as the server address.
	Backends []host.Profile
	// LBMode selects the balancing strategy (default HashFourTuple).
	LBMode netem.BalanceMode
	// DisableCaptures skips wiring the four ground-truth capture taps.
	// Taps are synchronous pass-throughs — they schedule no events and
	// consume no randomness — so disabling them changes nothing observable
	// about a measurement; campaigns, which never read captures, set this
	// to shed per-frame recording cost. The Net's capture fields remain
	// non-nil but stay empty.
	DisableCaptures bool
}

// Net is a wired-up scenario.
type Net struct {
	Loop *sim.Loop
	IDs  *netem.FrameIDs

	// Ground-truth captures, in the direction of travel:
	// HostIngress sees forward-path packets as the server receives them;
	// HostEgress sees reverse-path packets as the server sends them;
	// ProbeIngress sees reverse-path packets as the probe receives them;
	// ProbeEgress sees forward-path packets as the probe sends them.
	ProbeEgress, HostIngress, HostEgress, ProbeIngress *trace.Capture

	// Hosts are the servers behind the published address. In a topology
	// graph they are followed by the graph's cross-traffic hosts, in spec
	// order.
	Hosts []*host.Host

	// LB is the load balancer, if the scenario has one.
	LB *netem.LoadBalancer

	// Routers and Senders are the topology graph's forwarding nodes and
	// cross-traffic sources, in spec order; empty for point-to-point
	// scenarios.
	Routers []*netem.Router
	Senders []*tcpsender.Sender

	probe      *Probe
	endpoint   netem.Node // event-driven replacement for the probe inbox
	probeAddr  netip.Addr
	serverAddr netip.Addr

	// arena supplies the frames and wire bytes of everything transmitted
	// in this scenario; Reset rewinds it, which is what makes a reused Net
	// allocation-free at steady state.
	arena *netem.Arena

	// pool retains the topology object graph across Resets: network
	// elements (with their random streams), hosts (with their TCP stacks
	// and connection pools) and the capture taps. build draws from it, so
	// a reused Net rebuilds an arbitrary topology with almost no
	// allocation — the elements are reinitialized, not reconstructed.
	pool topoPool

	// buildRng is the construction stream, reseeded per build.
	buildRng *sim.Rand

	// probeSink is the reverse path's terminal node, built once.
	probeSink netem.Node

	// dirs records each direction's retargetable elements (access link,
	// loss, corrupter, swapper, middlebox) as the current build wires them,
	// for scenario-timeline resolution. Cleared per build.
	dirs [2]dirElems

	// applyFn is the schedule's cached step callback; scnLive reports
	// whether the current build armed a timeline.
	applyFn func(any)
	scnLive bool
}

// elemRng pairs a pooled element with the random stream it was built on;
// reuse reseeds the stream in place (sim.Rand.ForkInto) so a rebuilt
// element draws exactly what a fresh fork would.
type elemRng[E any] struct {
	el  E
	rng *sim.Rand
}

// topoPool holds free and in-use topology objects by type. Reset moves
// every in-use object back to its free list before rebuilding.
type topoPool struct {
	freeLinks, usedLinks             []*netem.Link
	freeDelays, usedDelays           []elemRng[*netem.Delay]
	freeLosses, usedLosses           []elemRng[*netem.Loss]
	freeSwappers, usedSwappers       []elemRng[*netem.Swapper]
	freeCorrupters, usedCorrupters   []elemRng[*netem.Corrupter]
	freeTrunks, usedTrunks           []elemRng[*netem.StripedTrunk]
	freeMultiPaths, usedMultiPaths   []elemRng[*netem.MultiPath]
	freeARQs, usedARQs               []elemRng[*netem.ARQLink]
	freePriorities, usedPriorities   []*netem.PriorityQueue
	freeFragmenters, usedFragmenters []*netem.Fragmenter
	freeRouters, usedRouters         []*netem.Router
	freeSenders, usedSenders         []senderEntry
	freeMiddleboxes, usedMiddleboxes []elemRng[*netem.Middlebox]

	// schedule and scnSteps persist the scenario timeline machinery; one
	// schedule per net, reinitialized per scenario-bearing build.
	schedule *netem.Schedule
	scnSteps []resolvedStep

	// graph holds the topology builder's reusable scratch (next-hop
	// tables, BFS queues), so rebuilding a routed graph per Reset stays
	// cheap.
	graph graphScratch

	// hosts are pooled by profile name so a reused host's stack shape
	// matches the profile it is reset to (several identically named
	// backends pool as distinct instances). Each host keeps the build
	// stream it was constructed from, reseeded on reuse.
	freeHosts map[string][]elemRng[*host.Host]
	usedHosts []elemRng[*host.Host]

	// lb and lbBackends persist the load balancer and its backend slice.
	lb         *netem.LoadBalancer
	lbBackends []netem.Node

	// pathRngs are the two per-direction construction streams (forward,
	// reverse), reseeded per build.
	pathRngs [2]*sim.Rand

	// taps caches the four capture pass-throughs, keyed by capture.
	taps map[*trace.Capture]*netem.Tap
}

// recycle moves every in-use element to its free list.
func (p *topoPool) recycle() {
	p.freeLinks = append(p.freeLinks, p.usedLinks...)
	p.usedLinks = p.usedLinks[:0]
	p.freeDelays = append(p.freeDelays, p.usedDelays...)
	p.usedDelays = p.usedDelays[:0]
	p.freeLosses = append(p.freeLosses, p.usedLosses...)
	p.usedLosses = p.usedLosses[:0]
	p.freeSwappers = append(p.freeSwappers, p.usedSwappers...)
	p.usedSwappers = p.usedSwappers[:0]
	p.freeCorrupters = append(p.freeCorrupters, p.usedCorrupters...)
	p.usedCorrupters = p.usedCorrupters[:0]
	p.freeTrunks = append(p.freeTrunks, p.usedTrunks...)
	p.usedTrunks = p.usedTrunks[:0]
	p.freeMultiPaths = append(p.freeMultiPaths, p.usedMultiPaths...)
	p.usedMultiPaths = p.usedMultiPaths[:0]
	p.freeARQs = append(p.freeARQs, p.usedARQs...)
	p.usedARQs = p.usedARQs[:0]
	p.freePriorities = append(p.freePriorities, p.usedPriorities...)
	p.usedPriorities = p.usedPriorities[:0]
	p.freeFragmenters = append(p.freeFragmenters, p.usedFragmenters...)
	p.usedFragmenters = p.usedFragmenters[:0]
	p.freeRouters = append(p.freeRouters, p.usedRouters...)
	p.usedRouters = p.usedRouters[:0]
	p.freeSenders = append(p.freeSenders, p.usedSenders...)
	p.usedSenders = p.usedSenders[:0]
	p.freeMiddleboxes = append(p.freeMiddleboxes, p.usedMiddleboxes...)
	p.usedMiddleboxes = p.usedMiddleboxes[:0]
	if len(p.usedHosts) > 0 && p.freeHosts == nil {
		p.freeHosts = make(map[string][]elemRng[*host.Host])
	}
	for _, h := range p.usedHosts {
		p.freeHosts[h.el.Profile()] = append(p.freeHosts[h.el.Profile()], h)
	}
	p.usedHosts = p.usedHosts[:0]
}

// Default addressing: one probe, one published server address.
var (
	DefaultProbeAddr  = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	DefaultServerAddr = netip.AddrFrom4([4]byte{10, 0, 1, 1})
)

// New builds the scenario.
func New(cfg Config) *Net {
	n := &Net{
		Loop:         sim.NewLoop(),
		IDs:          &netem.FrameIDs{},
		ProbeEgress:  trace.NewCapture("probe-egress"),
		HostIngress:  trace.NewCapture("host-ingress"),
		HostEgress:   trace.NewCapture("host-egress"),
		ProbeIngress: trace.NewCapture("probe-ingress"),
		probeAddr:    DefaultProbeAddr,
		serverAddr:   DefaultServerAddr,
		arena:        &netem.Arena{},
	}
	n.probe = &Probe{net: n, addr: n.probeAddr}
	n.build(cfg)
	return n
}

// Reset rewinds the scenario containers — event loop, frame arena, frame
// IDs, captures, probe inbox — and rebuilds the topology for cfg, exactly
// as New would. A reset Net is observably identical to a fresh New(cfg):
// construction consumes the seed's random streams in the same order, the
// clock restarts at zero and frame IDs restart at one. The topology object
// graph — network elements, hosts with their TCP stacks, capture taps —
// is pooled across Resets and reinitialized rather than rebuilt, so
// campaign workers reusing one Net across thousands of targets pay almost
// no allocation for per-target scenario construction.
func (n *Net) Reset(cfg Config) {
	n.Loop.Reset()
	n.arena.Reset()
	*n.IDs = netem.FrameIDs{}
	n.ProbeEgress.Reset()
	n.HostIngress.Reset()
	n.HostEgress.Reset()
	n.ProbeIngress.Reset()
	n.Hosts = n.Hosts[:0]
	n.LB = nil
	n.Routers = n.Routers[:0]
	n.Senders = n.Senders[:0]
	n.endpoint = nil
	n.probe.reset()
	n.pool.recycle()
	n.build(cfg)
}

// build wires the topology for cfg onto the (fresh or reset) containers.
// The order of random-stream forks here is part of the hermeticity
// contract: Reset must consume cfg.Seed's streams exactly as New does —
// pooled elements reseed the same streams a fresh construction would fork
// (sim.Rand.ForkInto draws from the parent exactly as Fork does).
func (n *Net) build(cfg Config) {
	if n.buildRng == nil {
		n.buildRng = sim.NewRand(cfg.Seed, 0x5eed)
	} else {
		n.buildRng.Reseed(cfg.Seed, 0x5eed)
	}
	rng := n.buildRng

	// tap wires a capture point, or passes through untapped when captures
	// are disabled.
	tap := func(c *trace.Capture, next netem.Node) netem.Node {
		if cfg.DisableCaptures {
			return next
		}
		return n.getTap(c, next)
	}

	if n.probeSink == nil {
		n.probeSink = netem.NodeFunc(func(f *netem.Frame) { n.probe.deliver(f) })
	}

	n.dirs = [2]dirElems{}
	scn := cfg.Scenario

	// Routed graphs take the topology builder; everything else — including
	// an explicit empty TopologySpec, the degenerate two-node case — is the
	// classic point-to-point pipe. Both wire any scenario middleboxes at
	// the probe-access path entries and finish by arming the scenario
	// timeline (a no-op without one).
	if cfg.Topology.isGraph() {
		n.buildGraph(cfg, rng, tap)
		n.startTimeline(cfg)
		return
	}

	// Reverse direction: host egress tap -> [middlebox] -> reverse path ->
	// probe ingress tap -> probe inbox.
	revEntry := n.buildPath(n.pathRng(1, 2, rng), cfg.Reverse.defaults(), tap(n.ProbeIngress, n.probeSink), &n.dirs[1], scn.needs(DirReverse))
	if mc := scn.middlebox(DirReverse); mc != nil {
		mb := n.getMiddlebox(*mc, rng, 9, revEntry)
		n.dirs[1].mb = mb
		revEntry = mb
	}
	hostOut := tap(n.HostEgress, revEntry)

	serverSide := n.buildServers(cfg, rng, hostOut)

	// Forward direction: probe egress tap -> [middlebox] -> forward path ->
	// host ingress tap -> server side.
	fwdEntry := n.buildPath(n.pathRng(0, 1, rng), cfg.Forward.defaults(), tap(n.HostIngress, serverSide), &n.dirs[0], scn.needs(DirForward))
	if mc := scn.middlebox(DirForward); mc != nil {
		mb := n.getMiddlebox(*mc, rng, 8, fwdEntry)
		n.dirs[0].mb = mb
		fwdEntry = mb
	}
	n.probe.egress = tap(n.ProbeEgress, fwdEntry)
	n.startTimeline(cfg)
}

// buildServers constructs the published-address endpoint — one host, or a
// load balancer fronting the backend pool — transmitting into hostOut, and
// returns the node forward-path traffic terminates at. Shared verbatim by
// the point-to-point and graph builders so both consume the build stream
// identically.
func (n *Net) buildServers(cfg Config, rng *sim.Rand, hostOut netem.Node) netem.Node {
	if len(cfg.Backends) > 0 {
		backends := n.pool.lbBackends[:0]
		for i, p := range cfg.Backends {
			h := n.getHost(p, n.serverAddr, rng, uint64(100+i), hostOut)
			n.Hosts = append(n.Hosts, h)
			backends = append(backends, h)
		}
		n.pool.lbBackends = backends
		if n.pool.lb == nil {
			n.pool.lb = netem.NewLoadBalancer(cfg.LBMode, backends...)
		} else {
			n.pool.lb.Reinit(cfg.LBMode, backends)
		}
		n.LB = n.pool.lb
		return n.LB
	}
	h := n.getHost(cfg.Server, n.serverAddr, rng, 100, hostOut)
	n.Hosts = append(n.Hosts, h)
	return h
}

// pathRng returns the per-direction construction stream idx, forked from
// rng with the given label — reseeding the retained stream object when one
// exists.
func (n *Net) pathRng(idx int, label uint64, rng *sim.Rand) *sim.Rand {
	n.pool.pathRngs[idx] = rng.ForkInto(n.pool.pathRngs[idx], label)
	return n.pool.pathRngs[idx]
}

// getTap returns the pooled capture tap for c rewired to next, creating it
// on first use.
func (n *Net) getTap(c *trace.Capture, next netem.Node) netem.Node {
	if t := n.pool.taps[c]; t != nil {
		t.SetNext(next)
		return t
	}
	if n.pool.taps == nil {
		n.pool.taps = make(map[*trace.Capture]*netem.Tap, 4)
	}
	t := c.Tap(n.Loop, next)
	n.pool.taps[c] = t
	return t
}

// getHost returns a host for profile p at addr transmitting to out — a
// pooled one of the same profile name rebound in place when available, else
// a fresh build. Either way it consumes one draw of rng (the host's build
// fork).
func (n *Net) getHost(p host.Profile, addr netip.Addr, rng *sim.Rand, label uint64, out netem.Node) *host.Host {
	if free := n.pool.freeHosts[p.Name]; len(free) > 0 {
		hr := free[len(free)-1]
		n.pool.freeHosts[p.Name] = free[:len(free)-1]
		rng.ForkInto(hr.rng, label)
		hr.el.ResetAt(p, addr, hr.rng, out)
		hr.el.SetArena(n.arena)
		n.pool.usedHosts = append(n.pool.usedHosts, hr)
		return hr.el
	}
	child := rng.Fork(label)
	h := host.New(n.Loop, p, addr, child, n.IDs, out)
	h.SetArena(n.arena)
	n.pool.usedHosts = append(n.pool.usedHosts, elemRng[*host.Host]{el: h, rng: child})
	return h
}

// buildPath composes a direction's elements ending at dst and returns the
// entry node, drawing every element from the topology pool. Element order:
// access link (serialization + propagation), jitter, loss, swapper,
// striped trunk. The direction's retargetable elements are recorded in d
// for scenario-timeline resolution, and need forces loss/corrupter/swapper
// construction at probability zero (rng-inert at runtime) so a timeline
// has an element to retarget mid-flow.
func (n *Net) buildPath(rng *sim.Rand, spec PathSpec, dst netem.Node, d *dirElems, need pathNeeds) netem.Node {
	node := dst
	if spec.Trunk != nil {
		node = n.getTrunk(*spec.Trunk, rng, 4, node)
	}
	if spec.MultiPath != nil {
		node = n.getMultiPath(*spec.MultiPath, rng, 6, node)
	}
	if spec.ARQ != nil {
		node = n.getARQ(*spec.ARQ, rng, 5, node)
	}
	if spec.Priority != nil {
		node = n.getPriority(*spec.Priority, node)
	}
	if spec.SwapProbFn != nil {
		d.swapper = n.getSwapper(spec.SwapProbFn, 0, rng, 3, node)
		node = d.swapper
	} else if spec.SwapProb > 0 || need.swap {
		d.swapper = n.getSwapper(nil, spec.SwapProb, rng, 3, node)
		node = d.swapper
	}
	if spec.Corrupt > 0 || need.corrupt {
		d.corrupter = n.getCorrupter(spec.Corrupt, rng, 7, node)
		node = d.corrupter
	}
	if spec.Loss > 0 || need.loss {
		d.loss = n.getLoss(spec.Loss, rng, 2, node)
		node = d.loss
	}
	if spec.Jitter > 0 {
		node = n.getDelay(0, spec.Jitter, rng, 1, node)
	}
	if spec.MTU > 0 {
		node = n.getFragmenter(spec.MTU, node)
	}
	d.link = n.getLink(netem.LinkConfig{RateBps: spec.LinkRate, PropDelay: spec.Delay}, node)
	return d.link
}

// The pooled element getters below all follow one shape: pop a free
// element and Reinit it (reseeding its retained stream exactly as a fresh
// fork would draw), or construct one and remember it; either way the
// element lands on the in-use list for the next recycle.

func (n *Net) getLink(cfg netem.LinkConfig, next netem.Node) *netem.Link {
	var l *netem.Link
	if k := len(n.pool.freeLinks); k > 0 {
		l = n.pool.freeLinks[k-1]
		n.pool.freeLinks = n.pool.freeLinks[:k-1]
		l.Reinit(cfg, next)
	} else {
		l = netem.NewLink(n.Loop, cfg, next)
	}
	n.pool.usedLinks = append(n.pool.usedLinks, l)
	return l
}

func (n *Net) getDelay(base, jitter time.Duration, rng *sim.Rand, label uint64, next netem.Node) *netem.Delay {
	if k := len(n.pool.freeDelays); k > 0 {
		p := n.pool.freeDelays[k-1]
		n.pool.freeDelays = n.pool.freeDelays[:k-1]
		rng.ForkInto(p.rng, label)
		p.el.Reinit(base, jitter, p.rng, next)
		n.pool.usedDelays = append(n.pool.usedDelays, p)
		return p.el
	}
	child := rng.Fork(label)
	d := netem.NewDelay(n.Loop, base, jitter, child, next)
	n.pool.usedDelays = append(n.pool.usedDelays, elemRng[*netem.Delay]{el: d, rng: child})
	return d
}

func (n *Net) getLoss(prob float64, rng *sim.Rand, label uint64, next netem.Node) *netem.Loss {
	if k := len(n.pool.freeLosses); k > 0 {
		p := n.pool.freeLosses[k-1]
		n.pool.freeLosses = n.pool.freeLosses[:k-1]
		rng.ForkInto(p.rng, label)
		p.el.Reinit(prob, p.rng, next)
		n.pool.usedLosses = append(n.pool.usedLosses, p)
		return p.el
	}
	child := rng.Fork(label)
	l := netem.NewLoss(prob, child, next)
	n.pool.usedLosses = append(n.pool.usedLosses, elemRng[*netem.Loss]{el: l, rng: child})
	return l
}

func (n *Net) getSwapper(probFn func(sim.Time) float64, prob float64, rng *sim.Rand, label uint64, next netem.Node) *netem.Swapper {
	if k := len(n.pool.freeSwappers); k > 0 {
		p := n.pool.freeSwappers[k-1]
		n.pool.freeSwappers = n.pool.freeSwappers[:k-1]
		rng.ForkInto(p.rng, label)
		p.el.Reinit(probFn, prob, p.rng, next)
		n.pool.usedSwappers = append(n.pool.usedSwappers, p)
		return p.el
	}
	child := rng.Fork(label)
	var s *netem.Swapper
	if probFn != nil {
		s = netem.NewSwapperFunc(n.Loop, probFn, child, next)
	} else {
		s = netem.NewSwapper(n.Loop, prob, child, next)
	}
	n.pool.usedSwappers = append(n.pool.usedSwappers, elemRng[*netem.Swapper]{el: s, rng: child})
	return s
}

func (n *Net) getCorrupter(prob float64, rng *sim.Rand, label uint64, next netem.Node) *netem.Corrupter {
	if k := len(n.pool.freeCorrupters); k > 0 {
		p := n.pool.freeCorrupters[k-1]
		n.pool.freeCorrupters = n.pool.freeCorrupters[:k-1]
		rng.ForkInto(p.rng, label)
		p.el.Reinit(prob, p.rng, n.arena, next)
		n.pool.usedCorrupters = append(n.pool.usedCorrupters, p)
		return p.el
	}
	child := rng.Fork(label)
	c := netem.NewCorrupter(prob, child, n.arena, next)
	n.pool.usedCorrupters = append(n.pool.usedCorrupters, elemRng[*netem.Corrupter]{el: c, rng: child})
	return c
}

func (n *Net) getTrunk(cfg netem.TrunkConfig, rng *sim.Rand, label uint64, next netem.Node) *netem.StripedTrunk {
	if k := len(n.pool.freeTrunks); k > 0 {
		p := n.pool.freeTrunks[k-1]
		n.pool.freeTrunks = n.pool.freeTrunks[:k-1]
		rng.ForkInto(p.rng, label)
		p.el.Reinit(cfg, p.rng, next)
		n.pool.usedTrunks = append(n.pool.usedTrunks, p)
		return p.el
	}
	child := rng.Fork(label)
	t := netem.NewStripedTrunk(n.Loop, cfg, child, next)
	n.pool.usedTrunks = append(n.pool.usedTrunks, elemRng[*netem.StripedTrunk]{el: t, rng: child})
	return t
}

func (n *Net) getMultiPath(cfg netem.MultiPathConfig, rng *sim.Rand, label uint64, next netem.Node) *netem.MultiPath {
	if k := len(n.pool.freeMultiPaths); k > 0 {
		p := n.pool.freeMultiPaths[k-1]
		n.pool.freeMultiPaths = n.pool.freeMultiPaths[:k-1]
		rng.ForkInto(p.rng, label)
		p.el.Reinit(cfg, p.rng, next)
		n.pool.usedMultiPaths = append(n.pool.usedMultiPaths, p)
		return p.el
	}
	child := rng.Fork(label)
	m := netem.NewMultiPath(n.Loop, cfg, child, next)
	n.pool.usedMultiPaths = append(n.pool.usedMultiPaths, elemRng[*netem.MultiPath]{el: m, rng: child})
	return m
}

func (n *Net) getARQ(cfg netem.ARQConfig, rng *sim.Rand, label uint64, next netem.Node) *netem.ARQLink {
	if k := len(n.pool.freeARQs); k > 0 {
		p := n.pool.freeARQs[k-1]
		n.pool.freeARQs = n.pool.freeARQs[:k-1]
		rng.ForkInto(p.rng, label)
		p.el.Reinit(cfg, p.rng, next)
		n.pool.usedARQs = append(n.pool.usedARQs, p)
		return p.el
	}
	child := rng.Fork(label)
	l := netem.NewARQLink(n.Loop, cfg, child, next)
	n.pool.usedARQs = append(n.pool.usedARQs, elemRng[*netem.ARQLink]{el: l, rng: child})
	return l
}

func (n *Net) getMiddlebox(cfg netem.MiddleboxConfig, rng *sim.Rand, label uint64, next netem.Node) *netem.Middlebox {
	if k := len(n.pool.freeMiddleboxes); k > 0 {
		p := n.pool.freeMiddleboxes[k-1]
		n.pool.freeMiddleboxes = n.pool.freeMiddleboxes[:k-1]
		rng.ForkInto(p.rng, label)
		p.el.Reinit(cfg, n.Loop, p.rng, n.arena, n.IDs, next)
		n.pool.usedMiddleboxes = append(n.pool.usedMiddleboxes, p)
		return p.el
	}
	child := rng.Fork(label)
	m := netem.NewMiddlebox(cfg, n.Loop, child, n.arena, n.IDs, next)
	n.pool.usedMiddleboxes = append(n.pool.usedMiddleboxes, elemRng[*netem.Middlebox]{el: m, rng: child})
	return m
}

func (n *Net) getPriority(cfg netem.PriorityConfig, next netem.Node) *netem.PriorityQueue {
	var q *netem.PriorityQueue
	if k := len(n.pool.freePriorities); k > 0 {
		q = n.pool.freePriorities[k-1]
		n.pool.freePriorities = n.pool.freePriorities[:k-1]
		q.Reinit(cfg, next)
	} else {
		q = netem.NewPriorityQueue(n.Loop, cfg, next)
	}
	n.pool.usedPriorities = append(n.pool.usedPriorities, q)
	return q
}

func (n *Net) getFragmenter(mtu int, next netem.Node) *netem.Fragmenter {
	var f *netem.Fragmenter
	if k := len(n.pool.freeFragmenters); k > 0 {
		f = n.pool.freeFragmenters[k-1]
		n.pool.freeFragmenters = n.pool.freeFragmenters[:k-1]
		f.Reinit(mtu, next)
	} else {
		f = netem.NewFragmenter(mtu, next)
	}
	n.pool.usedFragmenters = append(n.pool.usedFragmenters, f)
	return f
}

// Probe returns the probe-side transport.
func (n *Net) Probe() *Probe { return n.probe }

// AttachEndpoint replaces the probe-side transport with an event-driven
// endpoint (e.g. a TCP sender under test): frames arriving on the reverse
// path are delivered to ingress instead of the probe inbox, and the
// returned node is the forward-path entry the endpoint transmits into.
// The probe transport must not be used afterwards.
func (n *Net) AttachEndpoint(ingress netem.Node) netem.Node {
	n.endpoint = ingress
	return n.probe.egress
}

// ProbeAddr returns the probe host's address.
func (n *Net) ProbeAddr() netip.Addr { return n.probeAddr }

// ServerAddr returns the published server address.
func (n *Net) ServerAddr() netip.Addr { return n.serverAddr }

// ResetCaptures clears all four ground-truth captures.
func (n *Net) ResetCaptures() {
	n.ProbeEgress.Reset()
	n.HostIngress.Reset()
	n.HostEgress.Reset()
	n.ProbeIngress.Reset()
}
