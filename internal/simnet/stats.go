package simnet

import "reorder/internal/netem"

// Stats is the aggregate frame flow of one scenario run: every live element's
// netem.Counters summed, plus the arena's lazy materialization count and the
// number of frames born into the network. Element counters are zeroed when an
// element is reinitialized for the next build, so a Stats taken after a run
// (and before the next Reset) covers exactly that run.
type Stats struct {
	ElemIn       uint64 // frames accepted across all elements
	ElemOut      uint64 // frames forwarded downstream across all elements
	ElemDropped  uint64 // frames discarded (loss, overflow, corruption)
	ElemSwapped  uint64 // adjacent exchanges performed
	Materialized uint64 // lazy wire-byte encodes (zero-copy escape hatch)
	FramesBorn   uint64 // frame IDs issued

	// Adversarial-middlebox action counts (zero without a scenario).
	MiddleboxInjected  uint64 // forged RST/FIN segments originated
	MiddleboxHoles     uint64 // data segments swallowed
	MiddleboxRewritten uint64 // segments forwarded with rewritten headers
}

func (s *Stats) add(c netem.Counters) {
	s.ElemIn += c.In
	s.ElemOut += c.Out
	s.ElemDropped += c.Dropped
	s.ElemSwapped += c.Swapped
}

// Stats sums frame counters over the scenario's live topology.
func (n *Net) Stats() Stats {
	var s Stats
	p := &n.pool
	for _, e := range p.usedLinks {
		s.add(e.Stats())
	}
	for _, e := range p.usedDelays {
		s.add(e.el.Stats())
	}
	for _, e := range p.usedLosses {
		s.add(e.el.Stats())
	}
	for _, e := range p.usedSwappers {
		s.add(e.el.Stats())
	}
	for _, e := range p.usedCorrupters {
		s.add(e.el.Stats())
	}
	for _, e := range p.usedTrunks {
		s.add(e.el.Stats())
	}
	for _, e := range p.usedMultiPaths {
		s.add(e.el.Stats())
	}
	for _, e := range p.usedARQs {
		s.add(e.el.Stats())
	}
	for _, e := range p.usedPriorities {
		s.add(e.Stats())
	}
	for _, e := range p.usedFragmenters {
		s.add(e.Stats())
	}
	for _, e := range p.usedRouters {
		s.add(e.Stats())
	}
	for _, e := range p.usedMiddleboxes {
		s.add(e.el.Stats())
		mb := e.el.MiddleboxStats()
		s.MiddleboxInjected += mb.Injected
		s.MiddleboxHoles += mb.Holes
		s.MiddleboxRewritten += mb.Rewritten
	}
	if n.LB != nil {
		s.add(n.LB.Stats())
	}
	s.Materialized = n.arena.Materialized()
	s.FramesBorn = n.IDs.Issued()
	return s
}
