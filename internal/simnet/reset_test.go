package simnet

import (
	"bytes"
	"testing"
	"time"

	"reorder/internal/host"
	"reorder/internal/packet"
)

// synProbe hand-rolls a SYN through the scenario and returns the reply
// bytes, the frame ID assigned, and the virtual receive time — enough
// state to detect any divergence between a fresh and a reset scenario.
func synProbe(t *testing.T, n *Net) ([]byte, uint64, time.Duration) {
	t.Helper()
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
		&packet.TCPHeader{SrcPort: 5000, DstPort: 80, Seq: 9, Flags: packet.FlagSYN, Window: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Probe()
	id := p.Send(raw)
	data, _, ok := p.Recv(time.Second)
	if !ok {
		t.Fatal("no reply within 1s of virtual time")
	}
	return append([]byte(nil), data...), id, p.Now().Duration()
}

// TestResetMatchesFresh is the scenario-arena hermeticity contract at the
// simnet layer: a Net reset to a config is observably identical to a Net
// freshly built from it — same clock, same frame IDs, same reply bytes —
// even when the reset crosses configs (different impairments, different
// host profiles, load-balanced pools) and the previous run stopped with
// events still in flight.
func TestResetMatchesFresh(t *testing.T) {
	configs := []Config{
		{Seed: 1, Server: host.FreeBSD4()},
		{Seed: 2, Server: host.Linux24(), Forward: PathSpec{SwapProb: 0.4}},
		{Seed: 3, Backends: []host.Profile{host.FreeBSD4(), host.Linux22()}},
		{Seed: 4, Server: host.SpecStack(), Reverse: PathSpec{Jitter: 2 * time.Millisecond}},
		{Seed: 1, Server: host.FreeBSD4()}, // revisit the first config
	}
	reused := New(configs[0])
	for i, cfg := range configs {
		if i > 0 {
			// Leave traffic in flight before the reset: send without
			// draining, so the loop still holds scheduled events.
			raw, err := packet.EncodeTCP(
				&packet.IPv4Header{Src: reused.ProbeAddr(), Dst: reused.ServerAddr()},
				&packet.TCPHeader{SrcPort: 6000, DstPort: 80, Seq: 1, Flags: packet.FlagSYN, Window: 512}, nil)
			if err != nil {
				t.Fatal(err)
			}
			reused.Probe().Send(raw)
			reused.Reset(cfg)
		}
		fresh := New(cfg)
		fd, fid, ft := synProbe(t, fresh)
		rd, rid, rt := synProbe(t, reused)
		if !bytes.Equal(fd, rd) {
			t.Fatalf("config %d: reset scenario replied %x, fresh %x", i, rd, fd)
		}
		if fid != rid {
			t.Fatalf("config %d: frame IDs diverged: reset %d, fresh %d", i, rid, fid)
		}
		if ft != rt {
			t.Fatalf("config %d: receive times diverged: reset %v, fresh %v", i, rt, ft)
		}
	}
}

// TestDisableCaptures checks that skipping capture taps changes nothing
// about the traffic — replies, IDs and timing are identical — while the
// captures stay empty.
func TestDisableCaptures(t *testing.T) {
	cfg := Config{Seed: 7, Server: host.FreeBSD4(), Forward: PathSpec{SwapProb: 0.3}}
	on := New(cfg)
	cfg.DisableCaptures = true
	off := New(cfg)

	d1, id1, t1 := synProbe(t, on)
	d2, id2, t2 := synProbe(t, off)
	if !bytes.Equal(d1, d2) || id1 != id2 || t1 != t2 {
		t.Fatal("disabling captures changed observable traffic")
	}
	if on.ProbeEgress.Len() == 0 || on.HostIngress.Len() == 0 {
		t.Fatal("captures empty with captures enabled")
	}
	if off.ProbeEgress.Len() != 0 || off.HostIngress.Len() != 0 ||
		off.HostEgress.Len() != 0 || off.ProbeIngress.Len() != 0 {
		t.Fatal("captures recorded frames while disabled")
	}
}
