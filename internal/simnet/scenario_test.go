package simnet

import (
	"bytes"
	"testing"
	"time"

	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/packet"
)

// scenarioConfigs is a reusable spread of scenario-bearing configs: timeline
// mutations over both directions, middleboxes on each side, route flaps over
// a routed graph, and the degenerate empty spec.
func scenarioConfigs() []Config {
	diamond := &TopologySpec{
		Routers: []RouterSpec{{Name: "r0"}, {Name: "r1"}},
		Links: []LinkSpec{
			{A: "r0", B: "r1", RateBps: 20_000_000, Delay: 8 * time.Millisecond, QueueLimit: 64},
			{A: "r0", B: "r1", RateBps: 20_000_000, Delay: time.Millisecond, QueueLimit: 64},
		},
	}
	return []Config{
		{Seed: 11, Server: host.FreeBSD4(), Scenario: &ScenarioSpec{Steps: []TimelineStep{
			{At: 2 * time.Millisecond, Op: OpLinkRate, Dir: DirForward, Rate: 1_000_000},
			{At: 4 * time.Millisecond, Op: OpLoss, Dir: DirReverse, Prob: 0.5},
			{At: 6 * time.Millisecond, Op: OpSwap, Dir: DirForward, Prob: 0.7},
			{At: 8 * time.Millisecond, Op: OpCorrupt, Dir: DirReverse, Prob: 0.2},
		}}},
		{Seed: 12, Server: host.Linux24(), Forward: PathSpec{SwapProb: 0.3}, Scenario: &ScenarioSpec{
			Middlebox:        &netem.MiddleboxConfig{TTLClamp: 12},
			ReverseMiddlebox: &netem.MiddleboxConfig{RSTProb: 0.2},
			Steps: []TimelineStep{
				{At: 3 * time.Millisecond, Op: OpLinkQueue, Dir: DirForward, Queue: 4},
				{At: 9 * time.Millisecond, Op: OpLinkQueue, Dir: DirForward, Queue: 0},
			},
		}},
		{Seed: 13, Server: host.FreeBSD4(), Topology: diamond, Scenario: &ScenarioSpec{Steps: []TimelineStep{
			{At: 5 * time.Millisecond, Op: OpRouteFlap, Router: "r0", Dst: "server", Link: 1},
			{At: 5 * time.Millisecond, Op: OpRouteFlap, Router: "r1", Dst: "probe", Link: 1},
		}}},
		{Seed: 14, Server: host.FreeBSD4(), Scenario: &ScenarioSpec{}}, // degenerate
		{Seed: 11, Server: host.FreeBSD4(), Scenario: &ScenarioSpec{Steps: []TimelineStep{
			{At: 2 * time.Millisecond, Op: OpLinkRate, Dir: DirForward, Rate: 1_000_000},
			{At: 4 * time.Millisecond, Op: OpLoss, Dir: DirReverse, Prob: 0.5},
			{At: 6 * time.Millisecond, Op: OpSwap, Dir: DirForward, Prob: 0.7},
			{At: 8 * time.Millisecond, Op: OpCorrupt, Dir: DirReverse, Prob: 0.2},
		}}}, // revisit the first
	}
}

// TestScenarioResetMatchesFresh extends the Reset==New contract to
// scenario-bearing configs: pooled middleboxes and the pooled schedule must
// be observably identical to freshly built ones, across cross-config resets
// with events still in flight.
func TestScenarioResetMatchesFresh(t *testing.T) {
	configs := scenarioConfigs()
	reused := New(configs[0])
	for i, cfg := range configs {
		if i > 0 {
			raw, err := packet.EncodeTCP(
				&packet.IPv4Header{Src: reused.ProbeAddr(), Dst: reused.ServerAddr()},
				&packet.TCPHeader{SrcPort: 6000, DstPort: 80, Seq: 1, Flags: packet.FlagSYN, Window: 512}, nil)
			if err != nil {
				t.Fatal(err)
			}
			reused.Probe().Send(raw)
			reused.Reset(cfg)
		}
		fresh := New(cfg)
		fd, fid, ft := synProbe(t, fresh)
		rd, rid, rt := synProbe(t, reused)
		if !bytes.Equal(fd, rd) {
			t.Fatalf("config %d: reset scenario replied %x, fresh %x", i, rd, fd)
		}
		if fid != rid || ft != rt {
			t.Fatalf("config %d: id/time diverged: reset (%d,%v), fresh (%d,%v)", i, rid, rt, fid, ft)
		}
	}
}

// TestScenarioNilAndEmptyAreStatic pins the degenerate path: a nil spec, an
// empty spec, and a spec whose steps cannot bind must all be byte-identical
// to a scenario-free build.
func TestScenarioNilAndEmptyAreStatic(t *testing.T) {
	base := Config{Seed: 21, Server: host.FreeBSD4(), Forward: PathSpec{SwapProb: 0.25}}
	bd, bid, bt := synProbe(t, New(base))
	for name, scn := range map[string]*ScenarioSpec{
		"nil":   nil,
		"empty": {},
		"unbindable": {Steps: []TimelineStep{
			// Route flaps on a point-to-point build have nothing to act on.
			{At: time.Millisecond, Op: OpRouteFlap, Router: "r0", Dst: "server", Link: 0},
		}},
	} {
		cfg := base
		cfg.Scenario = scn
		d, id, at := synProbe(t, New(cfg))
		if !bytes.Equal(d, bd) || id != bid || at != bt {
			t.Fatalf("%s scenario diverged from static build", name)
		}
	}
}

// TestScenarioTimelineRetargetsLoss proves a schedule edge lands: loss
// forced to 1.0 at t=0 on both directions kills the handshake that a static
// build of the same config completes.
func TestScenarioTimelineRetargetsLoss(t *testing.T) {
	cfg := Config{Seed: 31, Server: host.FreeBSD4(), Scenario: &ScenarioSpec{Steps: []TimelineStep{
		{At: 0, Op: OpLoss, Dir: DirForward, Prob: 1},
		{At: 0, Op: OpLoss, Dir: DirReverse, Prob: 1},
	}}}
	n := New(cfg)
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
		&packet.TCPHeader{SrcPort: 5000, DstPort: 80, Seq: 9, Flags: packet.FlagSYN, Window: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Probe()
	p.Send(raw)
	if _, _, ok := p.Recv(200 * time.Millisecond); ok {
		t.Fatal("reply arrived through a path forced to 100% loss")
	}
	if n.ScenarioApplied() != 2 {
		t.Fatalf("ScenarioApplied = %d, want 2", n.ScenarioApplied())
	}
}

// TestScenarioMiddleboxOnPath proves the adversarial element is actually in
// the forward path: a TTL clamp rewrites the probe's SYN yet the handshake
// still completes (the rewrite re-checksums).
func TestScenarioMiddleboxOnPath(t *testing.T) {
	cfg := Config{Seed: 41, Server: host.FreeBSD4(), Scenario: &ScenarioSpec{
		Middlebox: &netem.MiddleboxConfig{TTLClamp: 5},
	}}
	n := New(cfg)
	synProbe(t, n) // fails the test if no reply arrives
	st := n.Stats()
	if st.MiddleboxRewritten == 0 {
		t.Fatal("forward middlebox rewrote nothing")
	}
}

// TestScenarioRouteFlapChangesPath proves a mid-flow route flap re-routes
// live traffic: over a diamond of 8ms and 1ms paths, a probe sent after the
// flap edge completes its exchange faster than on the static build.
func TestScenarioRouteFlapChangesPath(t *testing.T) {
	diamond := func() *TopologySpec {
		return &TopologySpec{
			Routers: []RouterSpec{{Name: "r0"}, {Name: "r1"}},
			Links: []LinkSpec{
				{A: "r0", B: "r1", RateBps: 20_000_000, Delay: 8 * time.Millisecond, QueueLimit: 64},
				{A: "r0", B: "r1", RateBps: 20_000_000, Delay: time.Millisecond, QueueLimit: 64},
			},
		}
	}
	static := Config{Seed: 51, Server: host.FreeBSD4(), Topology: diamond()}
	flapped := static
	flapped.Topology = diamond()
	flapped.Scenario = &ScenarioSpec{Steps: []TimelineStep{
		{At: 0, Op: OpRouteFlap, Router: "r0", Dst: "server", Link: 1},
		{At: 0, Op: OpRouteFlap, Router: "r1", Dst: "probe", Link: 1},
	}}
	_, _, slow := synProbe(t, New(static))
	nf := New(flapped)
	_, _, fast := synProbe(t, nf)
	if fast >= slow {
		t.Fatalf("flapped path no faster: %v vs static %v", fast, slow)
	}
	if nf.ScenarioApplied() != 2 {
		t.Fatalf("ScenarioApplied = %d, want 2", nf.ScenarioApplied())
	}
}

// FuzzScenarioSpec throws arbitrary timelines at the builder: whatever the
// fields say, construction must not panic, the probe exchange must stay
// deterministic, and Reset must equal New.
func FuzzScenarioSpec(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), int64(2_000_000), -1, 0.5, uint8(0), true)
	f.Add(int64(2), uint8(5), uint8(1), int64(0), 16, 1.5, uint8(3), false)
	f.Add(int64(3), uint8(6), uint8(2), int64(-7), 0, -0.5, uint8(200), true)
	f.Fuzz(func(t *testing.T, at int64, op, dir uint8, rate int64, queue int, prob float64, ttl uint8, active bool) {
		spec := &ScenarioSpec{
			Middlebox: &netem.MiddleboxConfig{TTLClamp: ttl, Inactive: !active},
			Steps: []TimelineStep{
				{At: time.Duration(at) * time.Microsecond, Op: ScenarioOp(op), Dir: Dir(dir),
					Rate: rate, Queue: queue, Prob: prob,
					Router: "r0", Dst: "server", Link: int(queue), Active: active},
				{At: time.Duration(-at) * time.Microsecond, Op: OpMiddlebox, Dir: Dir(dir), Active: active},
			},
		}
		cfg := Config{Seed: uint64(at)*31 + uint64(op), Server: host.FreeBSD4(), Scenario: spec}
		fresh := New(cfg)
		fd, fid, ft := synProbe0(fresh)
		reused := New(cfg)
		synProbe0(reused) // dirty the pools
		reused.Reset(cfg)
		rd, rid, rt := synProbe0(reused)
		if !bytes.Equal(fd, rd) || fid != rid || ft != rt {
			t.Fatalf("fuzzed scenario: reset diverged from fresh (id %d vs %d, t %v vs %v)", rid, fid, rt, ft)
		}
	})
}

// synProbe0 is synProbe without the testing.T plumbing (fuzz targets may
// legitimately lose the reply to a fuzzed 100%-loss schedule).
func synProbe0(n *Net) ([]byte, uint64, time.Duration) {
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: n.ProbeAddr(), Dst: n.ServerAddr()},
		&packet.TCPHeader{SrcPort: 5000, DstPort: 80, Seq: 9, Flags: packet.FlagSYN, Window: 1000}, nil)
	if err != nil {
		return nil, 0, 0
	}
	p := n.Probe()
	id := p.Send(raw)
	data, _, ok := p.Recv(100 * time.Millisecond)
	if !ok {
		return nil, id, p.Now().Duration()
	}
	return append([]byte(nil), data...), id, p.Now().Duration()
}
