package simnet

import (
	"net/netip"
	"time"

	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/sim"
)

// Probe is the probe host's raw-packet interface, the simulated equivalent
// of sting's packet-filter access to the wire. It satisfies the measurement
// library's Transport interface: Send injects a raw datagram into the
// forward path; Recv pumps the event loop until a packet arrives for the
// probe or the timeout elapses in virtual time.
type Probe struct {
	net    *Net
	addr   netip.Addr
	egress netem.Node
	// inbox is a head-indexed queue so steady-state receive pops without
	// reslicing the backing array away from reuse.
	inbox     []*netem.Frame
	inboxHead int
	reasm     *packet.Reassembler
}

// reset clears the probe's receive state for scenario reuse.
func (p *Probe) reset() {
	p.inbox = p.inbox[:0]
	p.inboxHead = 0
	p.reasm = nil
	p.egress = nil
}

// deliver is the reverse path's terminal node. Fragmented datagrams are
// reassembled here, the probe host's IP layer; the reassembler is built
// lazily so fragment-free scenarios never pay for it, and frames carrying a
// decoded view skip it outright (a view frame is never a fragment, and a
// whole datagram is a reassembler no-op).
func (p *Probe) deliver(f *netem.Frame) {
	if p.net.endpoint != nil {
		p.net.endpoint.Input(f)
		return
	}
	if f.View() == nil && (p.reasm != nil || packet.IsFragment(f.Data)) {
		if p.reasm == nil {
			p.reasm = packet.NewReassembler()
		}
		whole, err := p.reasm.Input(f.Data)
		if err != nil || whole == nil {
			return // malformed, or waiting for more fragments
		}
		if len(whole) != len(f.Data) {
			f = &netem.Frame{ID: f.ID, Data: whole, Born: f.Born}
		}
	}
	p.inbox = append(p.inbox, f)
}

// LocalAddr returns the probe's address.
func (p *Probe) LocalAddr() netip.Addr { return p.addr }

// Send injects one raw IP datagram and returns its network frame ID, which
// ground-truth captures key on. The bytes are copied into the scenario's
// arena, so the caller may reuse data immediately (the Transport contract).
func (p *Probe) Send(data []byte) uint64 {
	id := p.net.IDs.Next()
	a := p.net.arena
	p.egress.Input(a.NewFrame(id, a.CopyBytes(data), p.net.Loop.Now()))
	return id
}

// SendView injects one IPv4+TCP datagram given in decoded form — the
// zero-copy counterpart of Send implementing core.FrameTransport. The
// headers and payload are copied into an arena-owned frame view; wire
// bytes are encoded only if an element on the path needs them. ip, tcp and
// payload may be reused immediately.
func (p *Probe) SendView(ip *packet.IPv4Header, tcp *packet.TCPHeader, payload []byte) uint64 {
	id := p.net.IDs.Next()
	f, err := p.net.arena.NewTCPFrame(id, p.net.Loop.Now(), ip, tcp, payload)
	if err != nil {
		panic("simnet: encode: " + err.Error())
	}
	p.egress.Input(f)
	return id
}

// Recv returns the next packet addressed to the probe along with its frame
// ID, driving the simulation forward up to timeout of virtual time. It
// reports ok=false on timeout. Byte-oriented callers pay materialization
// for view-built frames; the measurement engine uses RecvFrame instead.
func (p *Probe) Recv(timeout time.Duration) ([]byte, uint64, bool) {
	f, ok := p.RecvFrame(timeout)
	if !ok {
		return nil, 0, false
	}
	return f.Materialize(), f.ID, true
}

// RecvFrame is Recv returning the frame itself, whose decoded view — when
// present — spares the receiver the decode round trip entirely
// (core.FrameTransport).
func (p *Probe) RecvFrame(timeout time.Duration) (*netem.Frame, bool) {
	loop := p.net.Loop
	deadline := loop.Now().Add(timeout)
	for p.inboxHead == len(p.inbox) {
		if !loop.StepBefore(deadline) {
			loop.RunUntil(deadline)
			break
		}
	}
	if p.inboxHead == len(p.inbox) {
		return nil, false
	}
	f := p.inbox[p.inboxHead]
	p.inbox[p.inboxHead] = nil
	p.inboxHead++
	if p.inboxHead == len(p.inbox) {
		p.inbox = p.inbox[:0]
		p.inboxHead = 0
	}
	return f, true
}

// Sleep advances virtual time by d, processing any network activity due in
// the interval. Received packets accumulate in the inbox.
func (p *Probe) Sleep(d time.Duration) { p.net.Loop.RunFor(d) }

// Now returns the current virtual time.
func (p *Probe) Now() sim.Time { return p.net.Loop.Now() }

// Flush discards any queued received packets (between tests).
func (p *Probe) Flush() {
	p.inbox = p.inbox[:0]
	p.inboxHead = 0
}
