package simnet

import (
	"net/netip"
	"time"

	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/sim"
)

// Probe is the probe host's raw-packet interface, the simulated equivalent
// of sting's packet-filter access to the wire. It satisfies the measurement
// library's Transport interface: Send injects a raw datagram into the
// forward path; Recv pumps the event loop until a packet arrives for the
// probe or the timeout elapses in virtual time.
type Probe struct {
	net    *Net
	addr   netip.Addr
	egress netem.Node
	// inbox is a head-indexed queue so steady-state receive pops without
	// reslicing the backing array away from reuse.
	inbox     []*netem.Frame
	inboxHead int
	reasm     *packet.Reassembler
}

// reset clears the probe's receive state for scenario reuse.
func (p *Probe) reset() {
	p.inbox = p.inbox[:0]
	p.inboxHead = 0
	p.reasm = nil
	p.egress = nil
}

// deliver is the reverse path's terminal node. Fragmented datagrams are
// reassembled here, the probe host's IP layer; the reassembler is built
// lazily so fragment-free scenarios never pay for it.
func (p *Probe) deliver(f *netem.Frame) {
	if p.net.endpoint != nil {
		p.net.endpoint.Input(f)
		return
	}
	if p.reasm != nil || packet.IsFragment(f.Data) {
		if p.reasm == nil {
			p.reasm = packet.NewReassembler()
		}
		whole, err := p.reasm.Input(f.Data)
		if err != nil || whole == nil {
			return // malformed, or waiting for more fragments
		}
		if len(whole) != len(f.Data) {
			f = &netem.Frame{ID: f.ID, Data: whole, Born: f.Born}
		}
	}
	p.inbox = append(p.inbox, f)
}

// LocalAddr returns the probe's address.
func (p *Probe) LocalAddr() netip.Addr { return p.addr }

// Send injects one raw IP datagram and returns its network frame ID, which
// ground-truth captures key on. The bytes are copied into the scenario's
// arena, so the caller may reuse data immediately (the Transport contract).
func (p *Probe) Send(data []byte) uint64 {
	id := p.net.IDs.Next()
	a := p.net.arena
	p.egress.Input(a.NewFrame(id, a.CopyBytes(data), p.net.Loop.Now()))
	return id
}

// Recv returns the next packet addressed to the probe along with its frame
// ID, driving the simulation forward up to timeout of virtual time. It
// reports ok=false on timeout.
func (p *Probe) Recv(timeout time.Duration) ([]byte, uint64, bool) {
	loop := p.net.Loop
	deadline := loop.Now().Add(timeout)
	for p.inboxHead == len(p.inbox) {
		at, ok := loop.NextEventAt()
		if !ok || at > deadline {
			loop.RunUntil(deadline)
			break
		}
		loop.Step()
	}
	if p.inboxHead == len(p.inbox) {
		return nil, 0, false
	}
	f := p.inbox[p.inboxHead]
	p.inbox[p.inboxHead] = nil
	p.inboxHead++
	if p.inboxHead == len(p.inbox) {
		p.inbox = p.inbox[:0]
		p.inboxHead = 0
	}
	return f.Data, f.ID, true
}

// Sleep advances virtual time by d, processing any network activity due in
// the interval. Received packets accumulate in the inbox.
func (p *Probe) Sleep(d time.Duration) { p.net.Loop.RunFor(d) }

// Now returns the current virtual time.
func (p *Probe) Now() sim.Time { return p.net.Loop.Now() }

// Flush discards any queued received packets (between tests).
func (p *Probe) Flush() {
	p.inbox = p.inbox[:0]
	p.inboxHead = 0
}
