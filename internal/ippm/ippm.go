// Package ippm implements a cooperative one-way active measurement session
// in the style of the IETF IPPM work the paper cites ([8], the
// Morton/Ciavattone/Ramachandran reordering-metrics draft that became RFC
// 4737): a sender emits sequence-numbered, timestamped UDP test packets,
// and a receiver process running on the remote host records arrival order
// and computes the reordering metrics exactly.
//
// This methodology is the paper's §II foil: it yields precise one-way
// results but "still require[s] deployment at each endpoint measured" —
// the receiver here literally has to be registered on the simulated host
// (host.HandleUDP), whereas the paper's techniques need nothing remote.
// The cooperative experiment (E10) uses it as ground truth to validate the
// single-ended tools against.
package ippm

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/metrics"
	"reorder/internal/packet"
	"reorder/internal/sim"
	"reorder/internal/stats"
)

// DefaultPort is the session receiver's UDP port.
const DefaultPort = 8620

// payload layout: magic(2) seq(4) sendTimestampNanos(8), zero-padded to
// the configured size.
const (
	magic          = 0x1990 // the year of RFC 1141; arbitrary but fixed
	minPayloadSize = 14
)

// SessionConfig describes one test stream.
type SessionConfig struct {
	// Count is the number of test packets (default 100).
	Count int
	// Gap is the inter-packet spacing (default 0: back to back).
	Gap time.Duration
	// PayloadSize pads test packets (default minimum, 14 bytes; set
	// larger to probe size-dependent reordering).
	PayloadSize int
	// Port is the receiver's UDP port (default DefaultPort).
	Port uint16
	// Drain bounds the wait for in-flight packets after the last send
	// (default 2s).
	Drain time.Duration
}

func (c SessionConfig) defaults() SessionConfig {
	if c.Count == 0 {
		c.Count = 100
	}
	if c.PayloadSize < minPayloadSize {
		c.PayloadSize = minPayloadSize
	}
	if c.Port == 0 {
		c.Port = DefaultPort
	}
	if c.Drain == 0 {
		c.Drain = 2 * time.Second
	}
	return c
}

// Receiver is the remote-side process: register its Handle method with the
// host. It records arrivals and one-way delays.
type Receiver struct {
	clock    *sim.Loop
	arrivals []int
	delays   []float64 // seconds; virtual clocks are perfectly synchronized
	seen     map[uint32]bool
}

// NewReceiver returns a receiver reading timestamps from the shared
// virtual clock. (A real deployment needs synchronized clocks — another
// operational cost of the cooperative methodology.)
func NewReceiver(clock *sim.Loop) *Receiver {
	return &Receiver{clock: clock, seen: make(map[uint32]bool)}
}

// Handle is the host.HandleUDP callback.
func (r *Receiver) Handle(p *packet.Packet) {
	if len(p.Payload) < minPayloadSize {
		return
	}
	if binary.BigEndian.Uint16(p.Payload[0:2]) != magic {
		return
	}
	seq := binary.BigEndian.Uint32(p.Payload[2:6])
	if r.seen[seq] {
		return // duplicate
	}
	r.seen[seq] = true
	sentAt := sim.Time(binary.BigEndian.Uint64(p.Payload[6:14]))
	r.arrivals = append(r.arrivals, int(seq))
	r.delays = append(r.delays, r.clock.Now().Sub(sentAt).Seconds())
}

// Report is the receiver-side analysis of one session.
type Report struct {
	Sent, Received int
	// Metrics are the exact sequence metrics over the arrival order.
	Metrics *metrics.Report
	// Delay summarizes the one-way delays in seconds.
	Delay stats.Summary
}

// String renders the report on one line.
func (r *Report) String() string {
	return fmt.Sprintf("ippm: %d/%d received; %v; one-way delay mean %.3fms",
		r.Received, r.Sent, r.Metrics, r.Delay.Mean*1e3)
}

// RunSession sends the test stream through the transport to target and
// returns the receiver-side report. The receiver must already be
// registered on the remote host (see Attach).
func RunSession(tp core.Transport, target netip.Addr, recv *Receiver, cfg SessionConfig) (*Report, error) {
	cfg = cfg.defaults()
	for i := 0; i < cfg.Count; i++ {
		if i > 0 && cfg.Gap > 0 {
			tp.Sleep(cfg.Gap)
		}
		if err := sendOne(tp, target, uint32(i), cfg); err != nil {
			return nil, err
		}
	}
	tp.Sleep(cfg.Drain)
	return &Report{
		Sent:     cfg.Count,
		Received: len(recv.arrivals),
		Metrics:  metrics.Analyze(recv.arrivals),
		Delay:    stats.Summarize(recv.delays),
	}, nil
}

func sendOne(tp core.Transport, dst netip.Addr, seq uint32, cfg SessionConfig) error {
	payload := make([]byte, cfg.PayloadSize)
	binary.BigEndian.PutUint16(payload[0:2], magic)
	binary.BigEndian.PutUint32(payload[2:6], seq)
	binary.BigEndian.PutUint64(payload[6:14], uint64(tp.Now()))
	raw, err := packet.EncodeUDP(&packet.IPv4Header{
		Src: tp.LocalAddr(),
		Dst: dst,
	}, &packet.UDPHeader{SrcPort: 41999, DstPort: cfg.Port}, payload)
	if err != nil {
		return err
	}
	tp.Send(raw)
	return nil
}

// Attach registers a fresh receiver on the host for the session port and
// returns it — the "deploy software at the remote endpoint" step.
func Attach(h *host.Host, clock *sim.Loop, port uint16) *Receiver {
	if port == 0 {
		port = DefaultPort
	}
	r := NewReceiver(clock)
	h.HandleUDP(port, r.Handle)
	return r
}
